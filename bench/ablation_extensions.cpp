// Extension ablations for the design choices DESIGN.md calls out, beyond the
// paper's own Fig. 4:
//   (a) hyperparameters — learning-rate and init-std sweeps around the
//       paper's lr=10 setting (unique yield of a single fixed-size round);
//   (b) the AIG structural-hashing pass between Algorithm 1 and the
//       probabilistic compiler (op counts before/after);
//   (c) SatELite-style preprocessing ahead of the CDCL baselines (formula
//       shrinkage and its effect on CMSGen-like throughput).

#include <cstdio>

#include "aig/aig.hpp"
#include "bench_common.hpp"
#include "core/circuit_sampler.hpp"
#include "solver/preprocess.hpp"
#include "transform/transform.hpp"

namespace {

using namespace hts;

/// Unique yield of one fixed round at the given GD hyperparameters.
std::size_t yield_one_round(const cnf::Formula& formula, float lr, float init_std,
                            std::size_t batch, std::uint64_t seed) {
  sampler::GradientConfig config;
  config.batch = batch;
  config.learning_rate = lr;
  config.init_std = init_std;
  config.max_rounds = 1;
  sampler::GradientSampler sampler(config);
  sampler::RunOptions options;
  options.min_solutions = 0;
  options.budget_ms = -1.0;
  options.seed = seed;
  return sampler.run(formula, options).n_unique;
}

}  // namespace

int main() {
  using namespace hts;
  const bench::BenchEnv env;
  const std::size_t batch = 16384;

  std::printf("=== Extension ablations (scale %.2f) ===\n\n", env.scale);

  // ---------------------------------------------------------------- (a) ----
  std::printf("--- (a) learning-rate sweep, one round of batch %zu ---\n", batch);
  util::Table lr_table({"Instance", "lr=0.5", "lr=2", "lr=10 (paper)", "lr=50"});
  for (const std::string& name : {std::string("or-100-20-8-UC-10"),
                                  std::string("90-10-10-q")}) {
    const benchgen::Instance instance = bench::make_scaled_instance(name, env);
    std::vector<std::string> row{name};
    for (const float lr : {0.5f, 2.0f, 10.0f, 50.0f}) {
      row.push_back(std::to_string(
          yield_one_round(instance.formula, lr, 2.0f, batch, env.seed)));
    }
    lr_table.add_row(std::move(row));
  }
  std::printf("%s\n", lr_table.to_string().c_str());

  std::printf("--- (a') init-std sweep at lr=10 ---\n");
  util::Table std_table({"Instance", "std=0.5", "std=1", "std=2 (default)", "std=4"});
  for (const std::string& name : {std::string("or-100-20-8-UC-10"),
                                  std::string("90-10-10-q")}) {
    const benchgen::Instance instance = bench::make_scaled_instance(name, env);
    std::vector<std::string> row{name};
    for (const float init_std : {0.5f, 1.0f, 2.0f, 4.0f}) {
      row.push_back(std::to_string(
          yield_one_round(instance.formula, 10.0f, init_std, batch, env.seed)));
    }
    std_table.add_row(std::move(row));
  }
  std::printf("%s\n", std_table.to_string().c_str());

  // ---------------------------------------------------------------- (b) ----
  std::printf("--- (b) AIG structural-hashing pass after Algorithm 1 ---\n");
  util::Table aig_table({"Instance", "Circuit ops", "AIG ANDs", "Change",
                         "Sampler throughput", "with AIG pass"});
  for (const std::string& name : benchgen::ablation_names()) {
    const benchgen::Instance instance = bench::make_scaled_instance(name, env);
    const transform::Result tr = transform::transform_cnf(instance.formula);
    const aig::OptimizeResult opt = aig::optimize_with_aig(tr.circuit);

    auto run_circuit = [&](const circuit::Circuit& c) {
      sampler::CircuitSamplerConfig config;
      config.batch = bench::pick_batch(env, instance.formula.n_vars());
      sampler::CircuitSampler sampler(c, config);
      sampler::RunOptions options;
      options.min_solutions = env.min_solutions;
      options.budget_ms = env.budget_ms;
      options.seed = env.seed;
      return sampler.run(options).throughput();
    };
    const double before = run_circuit(tr.circuit);
    const double after = run_circuit(opt.circuit);
    const double ratio = opt.ands_before > 0
                             ? static_cast<double>(opt.ands_after) /
                                   static_cast<double>(opt.ands_before)
                             : 1.0;
    aig_table.add_row({name, std::to_string(opt.ands_before),
                       std::to_string(opt.ands_after),
                       util::format_fixed(100.0 * (ratio - 1.0), 1) + "%",
                       util::format_grouped(before, 1),
                       util::format_grouped(after, 1)});
  }
  std::printf("%s\n", aig_table.to_string().c_str());
  std::printf("(negative change = strashing removed shared logic; positive =\n"
              "AND/NOT decomposition of XOR-rich logic costs more ops than the\n"
              "native probabilistic XOR — the pass pays off only on redundant\n"
              "netlists, so the pipeline keeps whichever form is cheaper.)\n\n");

  // ---------------------------------------------------------------- (c) ----
  std::printf("--- (c) SatELite-style preprocessing before the CDCL baseline ---\n");
  util::Table pp_table({"Instance", "Vars", "Clauses", "Clauses after",
                        "Eliminated", "CMSGen sol/s", "after preprocess"});
  for (const std::string& name : {std::string("or-100-20-8-UC-10"),
                                  std::string("75-10-1-q")}) {
    const benchgen::Instance instance = bench::make_scaled_instance(name, env);
    cnf::Formula simplified = instance.formula;
    solver::Preprocessor pp;
    const bool sat = pp.simplify(simplified);

    baselines::CmsGenLike cmsgen;
    sampler::RunOptions options = bench::run_options(env);
    const double before = cmsgen.run(instance.formula, options).throughput();
    const double after = sat ? cmsgen.run(simplified, options).throughput() : 0.0;
    pp_table.add_row({name, std::to_string(instance.formula.n_vars()),
                      std::to_string(instance.formula.n_clauses()),
                      std::to_string(simplified.n_clauses()),
                      std::to_string(pp.stats().vars_eliminated),
                      util::format_grouped(before, 1),
                      util::format_grouped(after, 1)});
  }
  std::printf("%s\n", pp_table.to_string().c_str());
  std::printf("(preprocessed throughput counts solutions of the simplified\n"
              "formula; extend_model maps each back to the original space.)\n");
  return 0;
}
