#pragma once

// Shared plumbing for the paper-reproduction bench harnesses.
//
// Environment knobs (same spelling everywhere):
//   HTS_BENCH_BUDGET_MS      per sampler-instance time budget (default 1500;
//                            the paper used 2 h — raise this to approach it)
//   HTS_BENCH_MIN_SOLUTIONS  unique-solution target per run (paper: 1000)
//   HTS_BENCH_SCALE          size multiplier for the big instance families
//   HTS_BENCH_SEED           base RNG seed
//   HTS_BENCH_BATCH          gradient sampler batch size (0 = per-instance)

#include <memory>
#include <string>
#include <vector>

#include "baselines/cmsgen_like.hpp"
#include "baselines/diff_sampler.hpp"
#include "baselines/unigen_like.hpp"
#include "benchgen/families.hpp"
#include "benchgen/suite.hpp"
#include "core/gradient_sampler.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

namespace hts::bench {

struct BenchEnv {
  double budget_ms = util::env_double("HTS_BENCH_BUDGET_MS", 1500.0);
  std::size_t min_solutions = static_cast<std::size_t>(
      util::env_int("HTS_BENCH_MIN_SOLUTIONS", 1000));
  double scale = util::env_double("HTS_BENCH_SCALE", 1.0);
  std::uint64_t seed =
      static_cast<std::uint64_t>(util::env_int("HTS_BENCH_SEED", 42));
  std::size_t batch =
      static_cast<std::size_t>(util::env_int("HTS_BENCH_BATCH", 0));
};

/// Batch size heuristic mirroring the paper's "100 to 1,000,000 depending on
/// the instance": big batches for small circuits, smaller for giants.
inline std::size_t pick_batch(const BenchEnv& env, std::size_t n_vars) {
  if (env.batch != 0) return env.batch;
  if (n_vars < 1000) return 65536;
  if (n_vars < 20000) return 8192;
  return 2048;
}

inline benchgen::Instance make_scaled_instance(const std::string& name,
                                               const BenchEnv& env) {
  benchgen::GenOptions options;
  options.scale = env.scale;
  return benchgen::make_instance(name, options);
}

inline sampler::RunOptions run_options(const BenchEnv& env) {
  sampler::RunOptions options;
  options.min_solutions = env.min_solutions;
  options.budget_ms = env.budget_ms;
  options.seed = env.seed;
  return options;
}

inline std::unique_ptr<sampler::GradientSampler> make_ours(
    const BenchEnv& env, std::size_t n_vars,
    tensor::Policy policy = tensor::Policy::kDataParallel) {
  sampler::GradientConfig config;
  config.batch = pick_batch(env, n_vars);
  config.policy = policy;
  return std::make_unique<sampler::GradientSampler>(config);
}

inline std::vector<std::unique_ptr<sampler::Sampler>> make_baselines(
    const BenchEnv& env, std::size_t n_vars) {
  std::vector<std::unique_ptr<sampler::Sampler>> list;
  list.push_back(std::make_unique<baselines::UniGenLike>());
  list.push_back(std::make_unique<baselines::CmsGenLike>());
  baselines::DiffSamplerConfig diff;
  diff.batch = pick_batch(env, n_vars);
  list.push_back(std::make_unique<baselines::DiffSampler>(diff));
  return list;
}

/// "TO" when a sampler timed out below the target with (near-)zero yield,
/// mirroring the paper's Table II cells.
inline std::string throughput_cell(const sampler::RunResult& result,
                                   std::size_t min_solutions) {
  if (result.n_unique == 0) return "TO";
  if (result.timed_out && result.n_unique < min_solutions / 20) return "TO";
  return util::format_grouped(result.throughput(), 1);
}

}  // namespace hts::bench
