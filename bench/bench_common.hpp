#pragma once

// Shared plumbing for the paper-reproduction bench harnesses.
//
// Environment knobs (same spelling everywhere):
//   HTS_BENCH_BUDGET_MS      per sampler-instance time budget (default 1500;
//                            the paper used 2 h — raise this to approach it)
//   HTS_BENCH_MIN_SOLUTIONS  unique-solution target per run (paper: 1000)
//   HTS_BENCH_SCALE          size multiplier for the big instance families
//   HTS_BENCH_SEED           base RNG seed
//   HTS_BENCH_BATCH          gradient sampler batch size (0 = per-instance)

#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "baselines/cmsgen_like.hpp"
#include "baselines/diff_sampler.hpp"
#include "baselines/unigen_like.hpp"
#include "benchgen/families.hpp"
#include "benchgen/suite.hpp"
#include "core/gradient_sampler.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

namespace hts::bench {

struct BenchEnv {
  double budget_ms = util::env_double("HTS_BENCH_BUDGET_MS", 1500.0);
  std::size_t min_solutions = static_cast<std::size_t>(
      util::env_int("HTS_BENCH_MIN_SOLUTIONS", 1000));
  double scale = util::env_double("HTS_BENCH_SCALE", 1.0);
  std::uint64_t seed =
      static_cast<std::uint64_t>(util::env_int("HTS_BENCH_SEED", 42));
  std::size_t batch =
      static_cast<std::size_t>(util::env_int("HTS_BENCH_BATCH", 0));
};

/// Batch size heuristic mirroring the paper's "100 to 1,000,000 depending on
/// the instance": big batches for small circuits, smaller for giants.
inline std::size_t pick_batch(const BenchEnv& env, std::size_t n_vars) {
  if (env.batch != 0) return env.batch;
  if (n_vars < 1000) return 65536;
  if (n_vars < 20000) return 8192;
  return 2048;
}

inline benchgen::Instance make_scaled_instance(const std::string& name,
                                               const BenchEnv& env) {
  benchgen::GenOptions options;
  options.scale = env.scale;
  return benchgen::make_instance(name, options);
}

inline sampler::RunOptions run_options(const BenchEnv& env) {
  sampler::RunOptions options;
  options.min_solutions = env.min_solutions;
  options.budget_ms = env.budget_ms;
  options.seed = env.seed;
  return options;
}

inline std::unique_ptr<sampler::GradientSampler> make_ours(
    const BenchEnv& env, std::size_t n_vars,
    tensor::Policy policy = tensor::Policy::kDataParallel) {
  sampler::GradientConfig config;
  config.batch = pick_batch(env, n_vars);
  config.policy = policy;
  return std::make_unique<sampler::GradientSampler>(config);
}

inline std::vector<std::unique_ptr<sampler::Sampler>> make_baselines(
    const BenchEnv& env, std::size_t n_vars) {
  std::vector<std::unique_ptr<sampler::Sampler>> list;
  list.push_back(std::make_unique<baselines::UniGenLike>());
  list.push_back(std::make_unique<baselines::CmsGenLike>());
  baselines::DiffSamplerConfig diff;
  diff.batch = pick_batch(env, n_vars);
  list.push_back(std::make_unique<baselines::DiffSampler>(diff));
  return list;
}

/// "TO" when a sampler timed out below the target with (near-)zero yield,
/// mirroring the paper's Table II cells.
inline std::string throughput_cell(const sampler::RunResult& result,
                                   std::size_t min_solutions) {
  if (result.n_unique == 0) return "TO";
  if (result.timed_out && result.n_unique < min_solutions / 20) return "TO";
  return util::format_grouped(result.throughput(), 1);
}

// --- machine-readable results -------------------------------------------------
//
// Benches accept `--json <path>` and mirror their result rows into
//   { "bench": <name>, "env": {...}, "records": [ {...}, ... ] }
// so runs can be archived as BENCH_<name>.json and diffed across commits —
// the perf trajectory lives next to the human-readable tables.

/// One flat JSON object built field by field (insertion order preserved).
class JsonRecord {
 public:
  JsonRecord& field(const std::string& name, const std::string& value) {
    std::string escaped;
    escaped.reserve(value.size() + 2);
    for (const char ch : value) {
      if (ch == '"' || ch == '\\') {
        escaped += '\\';
        escaped += ch;
      } else if (static_cast<unsigned char>(ch) < 0x20) {
        char buffer[8];
        std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(ch)));
        escaped += buffer;
      } else {
        escaped += ch;
      }
    }
    return raw(name, "\"" + escaped + "\"");
  }
  JsonRecord& field(const std::string& name, const char* value) {
    return field(name, std::string(value));
  }
  JsonRecord& field(const std::string& name, double value) {
    if (!std::isfinite(value)) return raw(name, "null");  // JSON has no Inf/NaN
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.10g", value);
    return raw(name, buffer);
  }
  template <typename T, typename = std::enable_if_t<std::is_integral_v<T>>>
  JsonRecord& field(const std::string& name, T value) {
    return raw(name, std::to_string(value));
  }
  JsonRecord& field(const std::string& name, bool value) {
    return raw(name, value ? "true" : "false");
  }

  [[nodiscard]] std::string str() const { return "{" + body_ + "}"; }

 private:
  JsonRecord& raw(const std::string& name, const std::string& value) {
    if (!body_.empty()) body_ += ", ";
    body_ += "\"" + name + "\": " + value;
    return *this;
  }
  std::string body_;
};

/// Collects records and writes the bench JSON file.  Inactive (all calls
/// no-ops) unless `--json <path>` was passed on the command line.
class JsonWriter {
 public:
  JsonWriter(int argc, char** argv, std::string bench_name)
      : bench_name_(std::move(bench_name)) {
    for (int i = 1; i < argc; ++i) {
      if (std::string(argv[i]) == "--json") {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "[%s] --json requires a path argument\n",
                       bench_name_.c_str());
          missing_path_ = true;
          break;
        }
        path_ = argv[i + 1];
        break;
      }
    }
  }

  [[nodiscard]] bool active() const { return !path_.empty(); }

  void add(const JsonRecord& record) {
    if (active()) records_.push_back(record.str());
  }

  /// Writes the file and reports where; returns false (with a message on
  /// stderr) when the path is not writable or `--json` came without one.
  bool write(const BenchEnv& env) const {
    if (!active()) return !missing_path_;
    std::ofstream out(path_);
    if (!out) {
      std::fprintf(stderr, "[%s] cannot write %s\n", bench_name_.c_str(),
                   path_.c_str());
      return false;
    }
    JsonRecord env_record;
    env_record.field("budget_ms", env.budget_ms)
        .field("min_solutions", env.min_solutions)
        .field("scale", env.scale)
        .field("seed", env.seed)
        .field("batch", env.batch);
    out << "{\n  \"bench\": \"" << bench_name_ << "\",\n  \"env\": "
        << env_record.str() << ",\n  \"records\": [\n";
    for (std::size_t i = 0; i < records_.size(); ++i) {
      out << "    " << records_[i] << (i + 1 < records_.size() ? "," : "")
          << "\n";
    }
    out << "  ]\n}\n";
    std::printf("wrote %s (%zu records)\n", path_.c_str(), records_.size());
    return true;
  }

 private:
  std::string bench_name_;
  std::string path_;
  bool missing_path_ = false;
  std::vector<std::string> records_;
};

}  // namespace hts::bench
