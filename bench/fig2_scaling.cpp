// Reproduces Fig. 2: log-log scatter of latency (ms) vs number of unique
// satisfying solutions for each sampler across the 60-instance suite, plus
// per-sampler log-log trend lines (least-squares fit, like the paper's
// dotted lines).
//
// One row per (instance, sampler): latency to reach its final unique count
// within the budget.  The paper's shape: "this work" sits orders of
// magnitude right/below the CPU samplers — high solution counts at low
// latency — with the flattest trend.

#include <cmath>
#include <cstdio>
#include <map>

#include "bench_common.hpp"

namespace {

struct Point {
  double uniques;
  double latency_ms;
};

/// Least-squares fit of log10(latency) = a + b * log10(uniques).
void fit_loglog(const std::vector<Point>& points, double& a, double& b) {
  double sx = 0;
  double sy = 0;
  double sxx = 0;
  double sxy = 0;
  std::size_t n = 0;
  for (const Point& p : points) {
    if (p.uniques <= 0 || p.latency_ms <= 0) continue;
    const double x = std::log10(p.uniques);
    const double y = std::log10(p.latency_ms);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++n;
  }
  if (n < 2) {
    a = 0;
    b = 0;
    return;
  }
  const double dn = static_cast<double>(n);
  b = (dn * sxy - sx * sy) / std::max(1e-12, dn * sxx - sx * sx);
  a = (sy - b * sx) / dn;
}

}  // namespace

int main() {
  using namespace hts;
  bench::BenchEnv env;
  // Fig. 2 visits 60 instances x 4 samplers: default to a tighter budget so
  // the whole sweep stays tractable; HTS_BENCH_BUDGET_MS still overrides.
  env.budget_ms = util::env_double("HTS_BENCH_BUDGET_MS", 600.0);

  std::printf("=== Fig. 2: latency vs unique solutions (60 instances) ===\n");
  std::printf("budget %.0f ms per run, target %zu uniques, scale %.2f\n\n",
              env.budget_ms, env.min_solutions, env.scale);

  util::Table table({"Instance", "Sampler", "Unique", "Latency(ms)"});
  std::map<std::string, std::vector<Point>> series;

  for (const std::string& name : benchgen::suite60_names()) {
    std::fprintf(stderr, "[fig2] %s ...\n", name.c_str());
    const benchgen::Instance instance = bench::make_scaled_instance(name, env);
    const auto& formula = instance.formula;

    std::vector<std::pair<std::string, sampler::RunResult>> results;
    {
      auto ours = bench::make_ours(env, formula.n_vars());
      results.emplace_back(ours->name(), ours->run(formula, bench::run_options(env)));
    }
    for (const auto& baseline : bench::make_baselines(env, formula.n_vars())) {
      results.emplace_back(baseline->name(),
                           baseline->run(formula, bench::run_options(env)));
    }
    for (const auto& [sampler_name, result] : results) {
      table.add_row({name, sampler_name, std::to_string(result.n_unique),
                     util::format_fixed(result.elapsed_ms, 2)});
      series[sampler_name].push_back(
          Point{static_cast<double>(result.n_unique), result.elapsed_ms});
    }
  }

  std::printf("%s\n", table.to_string().c_str());

  std::printf("log-log trend lines  log10(latency_ms) = a + b*log10(uniques):\n");
  for (const auto& [sampler_name, points] : series) {
    double a = 0;
    double b = 0;
    fit_loglog(points, a, b);
    double total_uniques = 0;
    double total_ms = 0;
    for (const Point& p : points) {
      total_uniques += p.uniques;
      total_ms += p.latency_ms;
    }
    std::printf("  %-22s a=%7.3f  b=%6.3f   (suite total: %.0f uniques in %.0f ms"
                " -> %.1f sol/s)\n",
                sampler_name.c_str(), a, b, total_uniques, total_ms,
                total_ms > 0 ? total_uniques / (total_ms / 1e3) : 0.0);
  }
  std::printf("\nCSV:\n%s", table.to_csv().c_str());
  std::printf("\nPaper reference: 'this work' reaches 1e5-1e7 uniques at latencies\n"
              "where the CPU samplers deliver 1e1-1e3, with only a slight latency\n"
              "increase as the solution count grows (flattest trend line).\n");
  return 0;
}
