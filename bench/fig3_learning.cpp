// Reproduces Fig. 3 on the paper's 4 ablation instances:
//   (left)  learning curve — cumulative unique satisfying solutions after
//           each GD iteration (0..10) of a single batch round;
//   (right) engine memory vs batch size, swept geometrically 1e2..1e6
//           (allocations above HTS_BENCH_MEM_CAP_MB are reported from the
//           exact closed-form predictor instead of being allocated).

#include <cstdio>

#include "bench_common.hpp"
#include "prob/compiled.hpp"
#include "prob/engine.hpp"
#include "transform/transform.hpp"

int main() {
  using namespace hts;
  const bench::BenchEnv env;
  const double mem_cap_mb = util::env_double("HTS_BENCH_MEM_CAP_MB", 2048.0);

  std::printf("=== Fig. 3 (left): unique solutions vs GD iterations ===\n");
  std::printf("single round, batch per instance, iterations 0..10, scale %.2f\n\n",
              env.scale);

  util::Table learn({"Instance", "Batch", "it0", "it1", "it2", "it3", "it4", "it5",
                     "it6", "it7", "it8", "it9", "it10"});
  for (const std::string& name : benchgen::ablation_names()) {
    std::fprintf(stderr, "[fig3] learning curve %s ...\n", name.c_str());
    const benchgen::Instance instance = bench::make_scaled_instance(name, env);

    sampler::GradientConfig config;
    config.batch = bench::pick_batch(env, instance.formula.n_vars());
    config.iterations = 10;
    config.collect_each_iteration = true;
    config.max_rounds = 1;  // exactly one round: the Fig. 3 learning curve
    sampler::GradientSampler sampler(config);

    sampler::RunOptions options;
    options.min_solutions = 0;
    options.budget_ms = -1.0;
    options.seed = env.seed;
    (void)sampler.run(instance.formula, options);

    const auto& curve = sampler.uniques_per_iteration();
    std::vector<std::string> row{name, std::to_string(config.batch)};
    for (std::size_t i = 0; i <= 10; ++i) {
      row.push_back(i < curve.size() ? std::to_string(curve[i]) : "-");
    }
    learn.add_row(std::move(row));
  }
  std::printf("%s\n", learn.to_string().c_str());
  std::printf("Paper reference: counts grow with iterations and begin to plateau\n"
              "toward iteration 10 (Fig. 3 left shows 2,000 -> 5,000 uniques).\n\n");

  std::printf("=== Fig. 3 (right): engine memory (MB) vs batch size ===\n\n");
  util::Table mem({"Instance", "Batch", "Memory(MB)", "Measured"});
  for (const std::string& name : benchgen::ablation_names()) {
    std::fprintf(stderr, "[fig3] memory sweep %s ...\n", name.c_str());
    const benchgen::Instance instance = bench::make_scaled_instance(name, env);
    const transform::Result tr = transform::transform_cnf(instance.formula);
    const prob::CompiledCircuit compiled(tr.circuit);

    for (std::size_t batch = 100; batch <= 1000000; batch *= 10) {
      const std::size_t predicted = prob::Engine::predicted_bytes(compiled, batch);
      const double predicted_mb = static_cast<double>(predicted) / (1024.0 * 1024.0);
      bool measured = false;
      double mb = predicted_mb;
      if (predicted_mb <= mem_cap_mb) {
        prob::Engine::Config config;
        config.batch = batch;
        const prob::Engine engine(compiled, config);
        mb = static_cast<double>(engine.memory_bytes()) / (1024.0 * 1024.0);
        measured = true;
      }
      mem.add_row({name, std::to_string(batch), util::format_fixed(mb, 2),
                   measured ? "yes" : "predicted"});
    }
  }
  std::printf("%s\n", mem.to_string().c_str());
  std::printf("CSV:\n%s", mem.to_csv().c_str());
  std::printf("\nPaper reference: memory grows linearly with batch size and with\n"
              "circuit complexity (log-log slope 1; Prod-32 tops the chart).\n");
  return 0;
}
