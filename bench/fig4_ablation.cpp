// Reproduces Fig. 4 on the paper's 4 ablation instances:
//   (left)   data-parallel-over-serial speedup of the identical GD sampling
//            kernels (the paper's GPU-over-CPU bars, avg 6.8x on a V100);
//   (middle) bit-wise op reduction rate of the transformation in 2-input
//            gate equivalents (paper avg 4.2x);
//   (right)  transformation time, CNF -> multi-level function (paper: 2.1 s
//            to 292.2 s under Python/SymPy; this C++ engine is far faster).
//
// Extension ablation (called out in DESIGN.md): GD over the full circuit vs
// GD restricted to the constrained cone (cone-only compilation).

#include <cstdio>

#include "bench_common.hpp"
#include "transform/transform.hpp"
#include "util/timer.hpp"

namespace {

using namespace hts;

/// Wall time of a fixed number of GD rounds under a policy.
double time_rounds(const cnf::Formula& formula, const bench::BenchEnv& env,
                   tensor::Policy policy, bool cone_only, bool optimize_tape,
                   std::uint64_t rounds) {
  sampler::GradientConfig config;
  config.batch = bench::pick_batch(env, formula.n_vars());
  config.policy = policy;
  config.cone_only = cone_only;
  config.optimize_tape = optimize_tape;
  config.max_rounds = rounds;
  config.collect_each_iteration = false;  // time the learning, not harvesting
  sampler::GradientSampler sampler(config);
  sampler::RunOptions options;
  options.min_solutions = 0;
  options.budget_ms = -1.0;
  options.seed = env.seed;
  const sampler::RunResult result = sampler.run(formula, options);
  return result.elapsed_ms;
}

}  // namespace

int main() {
  using namespace hts;
  const bench::BenchEnv env;
  const auto rounds =
      static_cast<std::uint64_t>(util::env_int("HTS_BENCH_ABLATION_ROUNDS", 3));

  std::printf("=== Fig. 4: ablation on 4 instances (scale %.2f) ===\n\n", env.scale);

  util::Table table({"Instance", "Parallel(ms)", "Serial(ms)", "Speedup",
                     "CNF ops", "Circuit ops", "Ops reduction", "Transform(s)",
                     "ConeOnly(ms)", "Cone speedup"});

  double speedup_sum = 0.0;
  double reduction_sum = 0.0;
  std::size_t n = 0;
  for (const std::string& name : benchgen::ablation_names()) {
    std::fprintf(stderr, "[fig4] %s ...\n", name.c_str());
    const benchgen::Instance instance = bench::make_scaled_instance(name, env);
    const auto& formula = instance.formula;

    // (middle) + (right): transformation statistics.
    const transform::Result tr = transform::transform_cnf(formula);

    // (left): identical kernels, serial vs data-parallel.
    const double parallel_ms = time_rounds(
        formula, env, tensor::Policy::kDataParallel, false, true, rounds);
    const double serial_ms =
        time_rounds(formula, env, tensor::Policy::kSerial, false, true, rounds);
    // Extension: constrained-cone-only compilation (parallel policy).  Both
    // arms disable the tape optimizer: its dead-code elimination prunes the
    // same unconstrained logic cone_only skips, so optimized full-vs-cone
    // would compare two identical tapes.
    const double full_unopt_ms = time_rounds(
        formula, env, tensor::Policy::kDataParallel, false, false, rounds);
    const double cone_ms = time_rounds(formula, env,
                                       tensor::Policy::kDataParallel, true,
                                       false, rounds);

    const double speedup = parallel_ms > 0 ? serial_ms / parallel_ms : 0.0;
    speedup_sum += speedup;
    reduction_sum += tr.stats.ops_reduction();
    ++n;

    table.add_row({name, util::format_fixed(parallel_ms, 1),
                   util::format_fixed(serial_ms, 1), util::format_speedup(speedup),
                   std::to_string(tr.stats.cnf_ops),
                   std::to_string(tr.stats.circuit_ops),
                   util::format_speedup(tr.stats.ops_reduction()),
                   util::format_fixed(tr.stats.transform_ms / 1e3, 3),
                   util::format_fixed(cone_ms, 1),
                   util::format_speedup(cone_ms > 0 ? full_unopt_ms / cone_ms
                                                    : 0.0)});
  }

  std::printf("%s\n", table.to_string().c_str());
  if (n > 0) {
    std::printf("average parallel-over-serial speedup : %.1fx (paper: 6.8x GPU/CPU)\n",
                speedup_sum / static_cast<double>(n));
    std::printf("average ops reduction                : %.1fx (paper: 4.2x)\n",
                reduction_sum / static_cast<double>(n));
  }
  std::printf("\nPaper reference: per-instance GPU speedups 2.5x/4.5x/8.1x/11.9x;\n"
              "ops reductions 3.6x-4.5x; transform times 2.1s-292.2s (SymPy).\n");
  return 0;
}
