// Google-benchmark micro-kernels backing the headline numbers: probabilistic
// gate ops (forward+backward), sigmoid embedding, bit-parallel circuit
// evaluation, CDCL propagation, and the transformation itself on a
// mid-size instance.

#include <benchmark/benchmark.h>

#include "benchgen/families.hpp"
#include "circuit/tseitin.hpp"
#include "prob/compiled.hpp"
#include "prob/engine.hpp"
#include "solver/cdcl.hpp"
#include "tensor/tensor.hpp"
#include "transform/transform.hpp"
#include "util/rng.hpp"

namespace {

using namespace hts;

void BM_SigmoidKernel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<float> in(n);
  std::vector<float> out(n);
  util::Rng rng(1);
  for (auto& x : in) x = static_cast<float>(rng.next_gaussian());
  for (auto _ : state) {
    tensor::sigmoid(tensor::Policy::kSerial, in.data(), out.data(), n);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SigmoidKernel)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

/// One full GD iteration (embed + forward + backward + update) on a
/// generated q-family circuit; items = probabilistic ops executed.
void BM_GdIteration(benchmark::State& state) {
  const benchgen::Instance instance = benchgen::make_instance("75-10-1-q");
  const transform::Result tr = transform::transform_cnf(instance.formula);
  const prob::CompiledCircuit compiled(tr.circuit);
  prob::Engine::Config config;
  config.batch = static_cast<std::size_t>(state.range(0));
  config.policy = state.range(1) != 0 ? tensor::Policy::kDataParallel
                                      : tensor::Policy::kSerial;
  prob::Engine engine(compiled, config);
  util::Rng rng(2);
  engine.randomize(rng);
  for (auto _ : state) {
    engine.run_iteration();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(compiled.n_ops()) *
                          state.range(0));
  state.SetLabel(state.range(1) != 0 ? "data_parallel" : "serial");
}
BENCHMARK(BM_GdIteration)
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Args({16384, 0})
    ->Args({16384, 1});

void BM_CircuitEval64(benchmark::State& state) {
  const benchgen::Instance instance = benchgen::make_instance("75-10-1-q");
  util::Rng rng(3);
  std::vector<std::uint64_t> inputs(instance.circuit.n_inputs());
  for (auto& word : inputs) word = rng.next_u64();
  for (auto _ : state) {
    benchmark::DoNotOptimize(instance.circuit.eval64(inputs));
  }
  // 64 samples per call.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_CircuitEval64);

void BM_CdclSolveRandomized(benchmark::State& state) {
  const benchgen::Instance instance = benchgen::make_instance("or-50-10-7-UC-10");
  solver::CdclConfig config;
  config.polarity = solver::CdclConfig::Polarity::kRandom;
  solver::CdclSolver solver(config);
  solver.add_formula(instance.formula);
  util::Rng rng(4);
  std::uint64_t solutions = 0;
  for (auto _ : state) {
    solver.reshuffle(rng.next_u64());
    if (solver.solve() == solver::Status::kSat) ++solutions;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(solutions));
}
BENCHMARK(BM_CdclSolveRandomized);

void BM_TransformQFamily(benchmark::State& state) {
  const benchgen::Instance instance = benchgen::make_instance("75-10-1-q");
  for (auto _ : state) {
    benchmark::DoNotOptimize(transform::transform_cnf(instance.formula));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(instance.formula.n_clauses()));
}
BENCHMARK(BM_TransformQFamily);

void BM_TseitinEncode(benchmark::State& state) {
  const benchgen::Instance instance = benchgen::make_instance("75-10-1-q");
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuit::tseitin_encode(instance.circuit));
  }
}
BENCHMARK(BM_TseitinEncode);

void BM_RngBulk(benchmark::State& state) {
  util::Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_u64());
  }
}
BENCHMARK(BM_RngBulk);

}  // namespace

BENCHMARK_MAIN();
