#!/usr/bin/env python3
"""Merge archived bench JSON files into a per-commit trajectory table.

Each input is a bench_common.hpp JSON document:

    { "bench": "tape_engine", "env": {...}, "records": [ {...}, ... ] }

CI's perf-smoke job uploads ``BENCH_<name>.json`` per commit; collect a few
of those (one directory per commit, e.g. ``runs/<sha>/BENCH_*.json``) and
this script pivots them into one table — rows are (instance, mode/policy)
metric keys, columns are commits — so throughput regressions read straight
off the diff.  Standard library only.

Usage:
    plot_trajectory.py [--output FILE] [--format {tsv,markdown}] JSON...

Column labels default to the file's parent directory name (the per-commit
directory); files living in the working directory fall back to the file
stem.
"""

import argparse
import json
import os
import re
import sys

# bench name -> (key fields joined into the row label, metric fields; each
# metric present in a record becomes one trajectory row)
KNOWN_BENCHES = {
    "tape_engine": (("instance", "mode"),
                    ("iters_per_sec", "harvest_rows_per_sec")),
    "round_parallel": (("instance", "policy", "workers"),
                       ("sol_per_sec", "harvest_rows_per_worker_sec")),
    "service_throughput": (("instance", "mode"),
                           ("svc_uniques_per_sec", "req_per_sec",
                            "multiplier", "overhead_pct")),
}
# Fallback metric candidates for benches this script does not know yet.
FALLBACK_METRICS = ("iters_per_sec", "sol_per_sec", "throughput", "elapsed_ms")
# Histogram-percentile fields (p50_ms, slice_p99_ms, ...) are always picked
# up in addition to the declared metrics: telemetry histograms surface as
# pNN summaries in bench records, and every one of them is a trajectory.
PERCENTILE_RE = re.compile(r"(?:^|_)p\d{1,3}(?:_|$)")


def label_for(path):
    parent = os.path.basename(os.path.dirname(os.path.abspath(path)))
    stem = os.path.splitext(os.path.basename(path))[0]
    cwd = os.path.basename(os.getcwd())
    return stem if parent in ("", ".", cwd) else parent


def rows_from(doc):
    bench = doc.get("bench", "?")
    key_fields, metrics = KNOWN_BENCHES.get(bench, (None, None))
    for record in doc.get("records", []):
        if key_fields is None:
            metric = next((m for m in FALLBACK_METRICS if m in record), None)
            if metric is None:
                continue
            fields = [str(v) for k, v in record.items()
                      if isinstance(v, str)][:2]
            record_metrics = (metric,)
        else:
            fields = [str(record.get(k, "?")) for k in key_fields]
            record_metrics = metrics
        percentiles = tuple(
            k for k in record
            if k not in record_metrics and PERCENTILE_RE.search(k))
        for metric in record_metrics + percentiles:
            value = record.get(metric)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                yield f"{bench}:{'/'.join(fields)} [{metric}]", float(value)


def render(table, labels, fmt):
    keys = sorted(table)
    widths = [max([len("metric")] + [len(k) for k in keys])]
    widths += [max(len(lbl), 10) for lbl in labels]

    def fmt_value(key, lbl):
        value = table[key].get(lbl)
        return "-" if value is None else f"{value:.1f}"

    lines = []
    if fmt == "markdown":
        lines.append("| " + " | ".join(["metric"] + labels) + " |")
        lines.append("|" + "|".join("---" for _ in range(len(labels) + 1)) + "|")
        for key in keys:
            cells = [key] + [fmt_value(key, lbl) for lbl in labels]
            lines.append("| " + " | ".join(cells) + " |")
    else:
        lines.append("\t".join(["metric"] + labels))
        for key in keys:
            lines.append(
                "\t".join([key] + [fmt_value(key, lbl) for lbl in labels]))
    return "\n".join(lines) + "\n"


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="+", metavar="JSON")
    parser.add_argument("--output", help="write the table here (default stdout)")
    parser.add_argument("--format", choices=("tsv", "markdown"), default="tsv")
    args = parser.parse_args(argv)

    table = {}  # key -> {label -> value}
    labels = []
    for path in args.paths:
        try:
            with open(path, encoding="utf-8") as handle:
                doc = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            print(f"plot_trajectory: skipping {path}: {error}", file=sys.stderr)
            continue
        label = label_for(path)
        if label not in labels:
            labels.append(label)
        for key, value in rows_from(doc):
            table.setdefault(key, {})[label] = value

    if not table:
        print("plot_trajectory: no usable records", file=sys.stderr)
        return 1
    out = render(table, labels, args.format)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(out)
        print(f"wrote {args.output} ({len(table)} metrics x {len(labels)} runs)")
    else:
        sys.stdout.write(out)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
