// Round-parallel scaling bench: unique-solutions/sec of the gradient sampler
// as GdLoopConfig::n_workers grows, on one representative instance per
// benchgen family.  The DEMOTIC observation this reproduces: rounds of the
// GD loop are embarrassingly parallel, so on a W-core machine W workers with
// decorrelated streams should multiply unique throughput until the bank or
// the memory bandwidth saturates.
//
// Extra knobs on top of bench_common's:
//   HTS_BENCH_WORKERS  comma-free max worker count to sweep to
//                      (default: hardware concurrency)
//   HTS_BENCH_POLICY   per-engine kernel scheduling under the workers:
//                      serial (default) | tiles | level — recorded in the
//                      JSON so trajectory plots can segment by mode
//
// Accepts `--json <path>` to mirror the result rows machine-readably (see
// bench_common.hpp's JsonWriter).  Records carry the harvest pipeline's
// throughput (rows_validated, harvest_ms, harvest_rows_per_worker_sec from
// the loop's extras — rows and wall-clock are summed across workers, so the
// rate is per worker) and the engine plan's opcode-run stats, so the perf
// trajectory tracks both halves of the loop.

#include <cstdio>
#include <string>
#include <thread>

#include "bench_common.hpp"
#include "prob/compiled.hpp"
#include "transform/transform.hpp"

namespace {

using namespace hts;

tensor::Policy policy_from_env() {
  const std::string name = util::env_string("HTS_BENCH_POLICY", "serial");
  if (name == "tiles") return tensor::Policy::kDataParallel;
  if (name == "level") return tensor::Policy::kLevelParallel;
  if (name != "serial") {
    std::fprintf(stderr,
                 "[round_parallel] unknown HTS_BENCH_POLICY '%s', using "
                 "serial\n",
                 name.c_str());
  }
  return tensor::Policy::kSerial;
}

struct WorkerRun {
  sampler::RunResult result;
  /// Harvest accounting of the run (rows validated across all workers and
  /// the wall-clock spent validating them).
  sampler::GdLoopExtras extras;
};

WorkerRun run_with_workers(const cnf::Formula& formula,
                           const bench::BenchEnv& env, std::size_t n_vars,
                           std::size_t n_workers, tensor::Policy policy,
                           bool amplify = false) {
  sampler::GradientConfig config;
  config.batch = bench::pick_batch(env, n_vars);
  config.n_workers = n_workers;
  // Default keeps each engine's kernels on the caller thread: round-parallel
  // workers are the parallelism axis under test, so stacking a pool policy
  // on top would blur whose speedup is measured.  HTS_BENCH_POLICY overrides
  // to measure the composition deliberately.
  config.policy = policy;
  config.amplify.enabled = amplify;
  sampler::GradientSampler sampler(config);
  WorkerRun run;
  run.result = sampler.run(formula, bench::run_options(env));
  run.extras = sampler.extras();
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchEnv env;
  bench::JsonWriter json(argc, argv, "round_parallel");
  const std::size_t hardware =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const auto max_workers = static_cast<std::size_t>(util::env_int(
      "HTS_BENCH_WORKERS", static_cast<long long>(hardware)));
  const tensor::Policy policy = policy_from_env();

  std::printf("=== Round-parallel scaling: unique sol/s vs n_workers ===\n");
  std::printf(
      "budget %.0f ms, target %zu uniques, hardware threads %zu, "
      "engine policy %s\n\n",
      env.budget_ms, env.min_solutions, hardware, tensor::policy_name(policy));

  const std::vector<std::string> instances = {"or-50-10-7-UC-10", "75-10-1-q",
                                              "s15850a_3_2", "Prod-8"};
  util::Table table({"Instance", "Workers", "Unique", "Latency(ms)", "Sol/s",
                     "Speedup"});
  util::Table amp_table({"Instance", "Unique", "Amplified", "Sol/s",
                         "vs serial"});

  for (const std::string& name : instances) {
    std::fprintf(stderr, "[round_parallel] %s ...\n", name.c_str());
    const benchgen::Instance instance = bench::make_scaled_instance(name, env);
    const auto& formula = instance.formula;
    // Compile the same transformed circuit the sampler will run, so the
    // recorded plan shape matches the measured engine exactly.
    const transform::Result transformed =
        transform::transform_cnf(formula, {});
    const prob::CompiledCircuit compiled(transformed.circuit);
    const prob::ExecPlan& plan = compiled.plan();

    double serial_throughput = 0.0;
    for (std::size_t workers = 1; workers <= max_workers; workers *= 2) {
      const WorkerRun run =
          run_with_workers(formula, env, formula.n_vars(), workers, policy);
      const sampler::RunResult& result = run.result;
      const double throughput = result.throughput();
      // rows_validated and harvest_ms are both summed across workers, so the
      // ratio is the mean per-worker validation rate — comparable across the
      // worker sweep, unlike an aggregate rate would be.
      const double harvest_rows_per_worker_sec =
          run.extras.harvest_ms > 0.0
              ? 1000.0 * static_cast<double>(run.extras.rows_validated) /
                    run.extras.harvest_ms
              : 0.0;
      if (workers == 1) serial_throughput = throughput;
      table.add_row({name, std::to_string(workers),
                     std::to_string(result.n_unique),
                     util::format_fixed(result.elapsed_ms, 2),
                     util::format_grouped(throughput, 1),
                     serial_throughput > 0.0
                         ? util::format_speedup(throughput / serial_throughput)
                         : "n/a"});
      bench::JsonRecord record;
      record.field("instance", name)
          .field("workers", workers)
          .field("policy", tensor::policy_name(policy))
          .field("unique", result.n_unique)
          .field("elapsed_ms", result.elapsed_ms)
          .field("sol_per_sec", throughput)
          .field("speedup_vs_serial",
                 serial_throughput > 0.0 ? throughput / serial_throughput : 0.0)
          .field("timed_out", result.timed_out)
          .field("tape_ops", compiled.n_ops())
          .field("cse_eliminated", compiled.opt_stats().cse_eliminated)
          .field("n_levels", plan.n_levels())
          .field("max_level_width", plan.max_width())
          .field("n_opcode_runs", compiled.opt_stats().n_opcode_runs)
          .field("max_run_length", compiled.opt_stats().max_run_length)
          .field("rows_validated", run.extras.rows_validated)
          .field("harvest_ms", run.extras.harvest_ms)
          .field("harvest_rows_per_worker_sec", harvest_rows_per_worker_sec);
      json.add(record);
    }

    // Flip-amplification rider: one serial run with the word-parallel
    // amplifier on, against the serial baseline above.  Records carry the
    // amplified counters so the perf trajectory can segment harvested vs
    // amplified uniques per family.
    const WorkerRun amp = run_with_workers(formula, env, formula.n_vars(), 1,
                                           policy, /*amplify=*/true);
    const double amp_throughput = amp.result.throughput();
    const double amp_vs_serial =
        serial_throughput > 0.0 ? amp_throughput / serial_throughput : 0.0;
    amp_table.add_row({name, std::to_string(amp.result.n_unique),
                       std::to_string(amp.extras.amplified_uniques),
                       util::format_grouped(amp_throughput, 1),
                       serial_throughput > 0.0
                           ? util::format_speedup(amp_vs_serial)
                           : "n/a"});
    bench::JsonRecord amp_record;
    amp_record.field("instance", name)
        .field("workers", std::size_t{1})
        .field("policy", tensor::policy_name(policy))
        .field("amplify", true)
        .field("unique", amp.result.n_unique)
        .field("elapsed_ms", amp.result.elapsed_ms)
        .field("sol_per_sec", amp_throughput)
        .field("amplified_candidates", amp.extras.amplified_candidates)
        .field("amplified_uniques", amp.extras.amplified_uniques)
        .field("amplify_ms", amp.extras.amplify_ms)
        .field("speedup_vs_serial", amp_vs_serial)
        .field("timed_out", amp.result.timed_out);
    json.add(amp_record);
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf("flip amplification (serial round loop, amplifier on):\n%s\n",
              amp_table.to_string().c_str());
  std::printf("CSV:\n%s", table.to_csv().c_str());
  std::printf("\nReading: speedup ~W on a W-core machine means round-parallel\n"
              "sampling is compute-bound and scaling cleanly; a flat line on a\n"
              "single-core host only confirms the serial path's overheads are\n"
              "not regressed by the worker machinery.\n");
  if (!json.write(env)) return 1;
  return 0;
}
