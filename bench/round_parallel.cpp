// Round-parallel scaling bench: unique-solutions/sec of the gradient sampler
// as GdLoopConfig::n_workers grows, on one representative instance per
// benchgen family.  The DEMOTIC observation this reproduces: rounds of the
// GD loop are embarrassingly parallel, so on a W-core machine W workers with
// decorrelated streams should multiply unique throughput until the bank or
// the memory bandwidth saturates.
//
// Extra knobs on top of bench_common's:
//   HTS_BENCH_WORKERS  comma-free max worker count to sweep to
//                      (default: hardware concurrency)
//
// Accepts `--json <path>` to mirror the result rows machine-readably (see
// bench_common.hpp's JsonWriter).

#include <cstdio>
#include <thread>

#include "bench_common.hpp"

namespace {

using namespace hts;

sampler::RunResult run_with_workers(const cnf::Formula& formula,
                                    const bench::BenchEnv& env,
                                    std::size_t n_vars, std::size_t n_workers) {
  sampler::GradientConfig config;
  config.batch = bench::pick_batch(env, n_vars);
  config.n_workers = n_workers;
  // Keep each engine's kernels on the caller thread: round-parallel workers
  // are the parallelism axis under test, so stacking the data-parallel pool
  // on top would blur whose speedup is measured.
  config.policy = tensor::Policy::kSerial;
  sampler::GradientSampler sampler(config);
  return sampler.run(formula, bench::run_options(env));
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchEnv env;
  bench::JsonWriter json(argc, argv, "round_parallel");
  const std::size_t hardware =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const auto max_workers = static_cast<std::size_t>(util::env_int(
      "HTS_BENCH_WORKERS", static_cast<long long>(hardware)));

  std::printf("=== Round-parallel scaling: unique sol/s vs n_workers ===\n");
  std::printf("budget %.0f ms, target %zu uniques, hardware threads %zu\n\n",
              env.budget_ms, env.min_solutions, hardware);

  const std::vector<std::string> instances = {"or-50-10-7-UC-10", "75-10-1-q",
                                              "s15850a_3_2", "Prod-8"};
  util::Table table({"Instance", "Workers", "Unique", "Latency(ms)", "Sol/s",
                     "Speedup"});

  for (const std::string& name : instances) {
    std::fprintf(stderr, "[round_parallel] %s ...\n", name.c_str());
    const benchgen::Instance instance = bench::make_scaled_instance(name, env);
    const auto& formula = instance.formula;

    double serial_throughput = 0.0;
    for (std::size_t workers = 1; workers <= max_workers; workers *= 2) {
      const sampler::RunResult result =
          run_with_workers(formula, env, formula.n_vars(), workers);
      const double throughput = result.throughput();
      if (workers == 1) serial_throughput = throughput;
      table.add_row({name, std::to_string(workers),
                     std::to_string(result.n_unique),
                     util::format_fixed(result.elapsed_ms, 2),
                     util::format_grouped(throughput, 1),
                     serial_throughput > 0.0
                         ? util::format_speedup(throughput / serial_throughput)
                         : "n/a"});
      bench::JsonRecord record;
      record.field("instance", name)
          .field("workers", workers)
          .field("unique", result.n_unique)
          .field("elapsed_ms", result.elapsed_ms)
          .field("sol_per_sec", throughput)
          .field("speedup_vs_serial",
                 serial_throughput > 0.0 ? throughput / serial_throughput : 0.0)
          .field("timed_out", result.timed_out);
      json.add(record);
    }
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf("CSV:\n%s", table.to_csv().c_str());
  std::printf("\nReading: speedup ~W on a W-core machine means round-parallel\n"
              "sampling is compute-bound and scaling cleanly; a flat line on a\n"
              "single-core host only confirms the serial path's overheads are\n"
              "not regressed by the worker machinery.\n");
  if (!json.write(env)) return 1;
  return 0;
}
