// Sampling-service bench: what the shared fleet + compiled-plan cache buy
// over stand-alone sequential sampling, and what the EDF slicing costs a
// short job stuck behind a long one.
//
// Three scenarios, all mirrored into `--json` records (see bench_common):
//
//   aggregate-throughput  N concurrent same-formula requests (distinct
//                         seeds) through one Server vs N sequential cold
//                         GradientSampler runs (each paying its own
//                         transform+compile).  Metric: aggregate unique
//                         solutions per second of wall clock; the service
//                         compiles once and overlaps execution across the
//                         fleet.  Acceptance bar: >= 1.5x.
//   hol-fairness          a short job submitted while a long batch job is
//                         mid-flight, on a single-worker server (the
//                         worst case): time-sliced EDF must complete it
//                         within 2x its solo latency.
//   latency-distribution  a burst of small requests from several clients:
//                         requests/sec and p50/p99 completion latency.
//   overload-shedding     demand ~4x what the fleet can serve within the
//                         deadline, with admission control on: infeasible
//                         requests must bounce at submit() (no compile, no
//                         rounds, sub-millisecond), and >= 90% of the jobs
//                         the server *did* accept must meet their deadline.
//                         This scenario asserts (exit nonzero on violation),
//                         so the perf-smoke CTest run gates on it.
//   flip-amplification    equal wall budget, amplifier off vs on; asserts
//                         >= 3x uniques on >= 2 of 3 families.
//   projected-sampling    equal wall budget with a sampling set over a
//                         slice of the primary inputs; full-dedup baseline
//                         vs projected dedup + diversity objective.
//                         Asserts: no duplicate projections delivered, and
//                         >= 1.5x distinct projected uniques on >= 2 of 3
//                         families.
//   telemetry-overhead    the identical fixed-work fleet with telemetry
//                         (metrics + tracing) off vs on, min-of-3 each,
//                         interleaved.  Asserts the enabled-path overhead
//                         bar (<= 2%, plus a small absolute allowance for
//                         timer granularity), records the slice-duration
//                         p50/p99 the registry exported, and cross-checks
//                         the delivered-solutions counter against the sum
//                         of the fleet's JobStats.
//
// Extra knobs on top of bench_common's:
//   HTS_BENCH_SERVICE_REQUESTS  concurrent requests in the throughput
//                               scenario (default 8)
//   HTS_BENCH_SERVICE_WORKERS   fleet size (default: hardware concurrency)
//
// `--trace FILE` writes the Chrome trace-event JSON the telemetry-overhead
// scenario's traced runs recorded (Perfetto-loadable; CI validates it).

#include <algorithm>
#include <cstdio>
#include <iterator>
#include <string>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "service/server.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace {

using namespace hts;

struct Aggregate {
  double wall_ms = 0.0;
  std::size_t uniques = 0;

  [[nodiscard]] double uniques_per_sec() const {
    return wall_ms > 0.0 ? 1000.0 * static_cast<double>(uniques) / wall_ms
                         : 0.0;
  }
};

service::SamplingRequest make_request(const cnf::Formula& formula,
                                      std::size_t target, std::uint64_t seed,
                                      std::size_t batch) {
  service::SamplingRequest request;
  request.formula = formula;
  request.seed = seed;
  request.target_uniques = target;
  // Safety valve only: every scenario is sized to finish on target, but a
  // misconfigured environment must not hang the bench.
  request.deadline_ms = 120000.0;
  request.deliver_solutions = false;  // throughput of *finding*, not copying
  request.config.batch = batch;
  return request;
}

/// N back-to-back stand-alone runs, each paying transform+compile ("cold"):
/// the pre-service deployment model.
Aggregate run_sequential_cold(const cnf::Formula& formula, std::size_t n_requests,
                              std::size_t target, std::size_t batch,
                              std::uint64_t base_seed) {
  Aggregate aggregate;
  const util::Timer timer;
  for (std::size_t i = 0; i < n_requests; ++i) {
    sampler::GradientConfig config;
    config.batch = batch;
    config.policy = tensor::Policy::kSerial;
    sampler::GradientSampler sampler(config);
    sampler::RunOptions options;
    options.min_solutions = target;
    options.budget_ms = 120000.0;
    options.seed = base_seed + i;
    const sampler::RunResult result = sampler.run(formula, options);
    aggregate.uniques += result.n_unique;
  }
  aggregate.wall_ms = timer.milliseconds();
  return aggregate;
}

Aggregate run_service_concurrent(const cnf::Formula& formula,
                                 std::size_t n_requests, std::size_t target,
                                 std::size_t batch, std::uint64_t base_seed,
                                 std::size_t n_workers,
                                 service::PlanCache::Stats* cache_stats) {
  Aggregate aggregate;
  service::Server server({.n_workers = n_workers});
  const util::Timer timer;
  std::vector<service::JobHandle> handles;
  handles.reserve(n_requests);
  for (std::size_t i = 0; i < n_requests; ++i) {
    service::SamplingRequest request =
        make_request(formula, target, base_seed + i, batch);
    request.client_id = i;
    handles.push_back(server.submit(std::move(request)));
  }
  for (const service::JobHandle& handle : handles) {
    (void)handle.wait();
    aggregate.uniques += handle.stats().n_unique;
  }
  aggregate.wall_ms = timer.milliseconds();
  if (cache_stats != nullptr) *cache_stats = server.plan_cache_stats();
  return aggregate;
}

[[nodiscard]] double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto index = static_cast<std::size_t>(
      p * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(index, values.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchEnv env;
  bench::JsonWriter json(argc, argv, "service_throughput");
  std::string trace_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--trace") trace_path = argv[i + 1];
  }
  const std::size_t hardware =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const auto n_workers = static_cast<std::size_t>(util::env_int(
      "HTS_BENCH_SERVICE_WORKERS", static_cast<long long>(hardware)));
  const auto n_requests = static_cast<std::size_t>(
      util::env_int("HTS_BENCH_SERVICE_REQUESTS", 8));

  std::printf("=== Sampling service: shared fleet + plan cache ===\n");
  std::printf("workers %zu, %zu concurrent requests, target %zu uniques/request\n\n",
              n_workers, n_requests, env.min_solutions);

  // --- scenario 1: aggregate throughput, concurrent vs sequential cold ------
  // s15850a is the family where compilation is a real fraction of a
  // request (ISCAS'89-scale netlist): exactly the compile-once-sample-many
  // regime the plan cache exists for.
  const benchgen::Instance instance =
      bench::make_scaled_instance("s15850a_3_2", env);
  // Latency-regime batch: a service request wants its target promptly, not
  // the biggest bulk harvest per round — and a smaller per-job footprint is
  // what lets 8 engines coexist.  (pick_batch targets stand-alone bulk
  // sampling; HTS_BENCH_BATCH still overrides.)
  const std::size_t batch = env.batch != 0 ? env.batch : 2048;
  const std::size_t target = env.min_solutions;

  std::fprintf(stderr, "[service_throughput] sequential cold x%zu ...\n",
               n_requests);
  const Aggregate sequential = run_sequential_cold(
      instance.formula, n_requests, target, batch, env.seed);
  std::fprintf(stderr, "[service_throughput] service concurrent x%zu ...\n",
               n_requests);
  service::PlanCache::Stats cache_stats;
  const Aggregate concurrent = run_service_concurrent(
      instance.formula, n_requests, target, batch, env.seed, n_workers,
      &cache_stats);
  const double speedup =
      sequential.uniques_per_sec() > 0.0
          ? concurrent.uniques_per_sec() / sequential.uniques_per_sec()
          : 0.0;

  util::Table throughput_table({"Mode", "Uniques", "Wall(ms)", "Uniq/s"});
  throughput_table.add_row({"sequential-cold", std::to_string(sequential.uniques),
                            util::format_fixed(sequential.wall_ms, 1),
                            util::format_grouped(sequential.uniques_per_sec(), 1)});
  throughput_table.add_row({"service-concurrent", std::to_string(concurrent.uniques),
                            util::format_fixed(concurrent.wall_ms, 1),
                            util::format_grouped(concurrent.uniques_per_sec(), 1)});
  std::printf("%s\naggregate speedup: %s (plan cache: %llu hits / %llu misses)\n\n",
              throughput_table.to_string().c_str(),
              util::format_speedup(speedup).c_str(),
              static_cast<unsigned long long>(cache_stats.hits),
              static_cast<unsigned long long>(cache_stats.misses));
  {
    bench::JsonRecord record;
    record.field("mode", "aggregate-throughput")
        .field("instance", instance.name)
        .field("requests", n_requests)
        .field("workers", n_workers)
        .field("target_uniques", target)
        .field("batch", batch)
        .field("seq_uniques", sequential.uniques)
        .field("seq_wall_ms", sequential.wall_ms)
        .field("seq_uniques_per_sec", sequential.uniques_per_sec())
        .field("svc_uniques", concurrent.uniques)
        .field("svc_wall_ms", concurrent.wall_ms)
        .field("svc_uniques_per_sec", concurrent.uniques_per_sec())
        .field("speedup", speedup)
        .field("cache_hits", cache_stats.hits)
        .field("cache_misses", cache_stats.misses);
    json.add(record);
  }

  // --- scenario 2: no head-of-line blocking ---------------------------------
  // Single worker on purpose: with any second worker the short job simply
  // takes a free slot, so one worker is the configuration where only
  // time-sliced EDF can save it.
  // The short job is real work (a full 16k-row harvest on the q-chain
  // family), not a no-op: its solo latency is the denominator of the
  // fairness ratio, so it must dwarf scheduling noise.  The long job runs
  // a moderate batch — its *slice* length, one GD round, is what bounds
  // the short job's wait under time-sliced EDF.
  const benchgen::Instance short_instance =
      bench::make_scaled_instance("75-10-1-q", env);
  const std::size_t short_target =
      std::min<std::size_t>(2 * env.min_solutions, 2000);
  const std::size_t short_batch = 16384;
  const std::size_t long_batch = 256;

  double solo_ms = 0.0;
  {
    service::Server server({.n_workers = 1});
    service::SamplingRequest request = make_request(
        short_instance.formula, short_target, env.seed, short_batch);
    request.deadline_ms = 60000.0;
    const util::Timer timer;
    const service::JobHandle handle = server.submit(std::move(request));
    (void)handle.wait();
    solo_ms = timer.milliseconds();
  }
  double behind_ms = 0.0;
  std::uint64_t long_rounds = 0;
  {
    service::Server server({.n_workers = 1});
    service::SamplingRequest long_request =
        make_request(instance.formula, 0, env.seed + 100, long_batch);
    long_request.deadline_ms = 0.0;     // pure batch job: runs until cancel
    long_request.max_uniques = 0;
    const service::JobHandle long_handle = server.submit(std::move(long_request));
    // The long job must be mid-slice when the short one arrives.
    while (long_handle.stats().rounds == 0 &&
           !service::job_status_terminal(long_handle.status())) {
      std::this_thread::yield();
    }
    service::SamplingRequest short_request = make_request(
        short_instance.formula, short_target, env.seed, short_batch);
    short_request.deadline_ms = 60000.0;  // EDF priority over the batch job
    const util::Timer timer;
    const service::JobHandle short_handle =
        server.submit(std::move(short_request));
    (void)short_handle.wait();
    behind_ms = timer.milliseconds();
    long_rounds = long_handle.stats().rounds;
    long_handle.cancel();
    (void)long_handle.wait();
  }
  const double hol_ratio = solo_ms > 0.0 ? behind_ms / solo_ms : 0.0;
  std::printf("head-of-line check (1 worker): solo %.1f ms, behind long job "
              "%.1f ms -> ratio %.2f (bar: <= 2)\n\n",
              solo_ms, behind_ms, hol_ratio);
  {
    bench::JsonRecord record;
    record.field("mode", "hol-fairness")
        .field("short_instance", short_instance.name)
        .field("long_instance", instance.name)
        .field("solo_ms", solo_ms)
        .field("behind_ms", behind_ms)
        .field("ratio", hol_ratio)
        .field("long_rounds_before_cancel", long_rounds);
    json.add(record);
  }

  // --- scenario 3: burst latency distribution -------------------------------
  const std::size_t burst = 2 * n_requests;
  std::vector<double> latencies;
  double burst_wall_ms = 0.0;
  {
    service::Server server({.n_workers = n_workers});
    std::vector<service::JobHandle> handles;
    handles.reserve(burst);
    const util::Timer timer;
    for (std::size_t i = 0; i < burst; ++i) {
      service::SamplingRequest request = make_request(
          short_instance.formula, short_target, env.seed + i, short_batch);
      request.client_id = i % 4;
      handles.push_back(server.submit(std::move(request)));
    }
    for (const service::JobHandle& handle : handles) {
      (void)handle.wait();
      latencies.push_back(handle.stats().wall_ms);
    }
    burst_wall_ms = timer.milliseconds();
  }
  const double p50 = percentile(latencies, 0.50);
  const double p99 = percentile(latencies, 0.99);
  const double requests_per_sec =
      burst_wall_ms > 0.0 ? 1000.0 * static_cast<double>(burst) / burst_wall_ms
                          : 0.0;
  std::printf("burst of %zu small requests: %.1f req/s, latency p50 %.1f ms, "
              "p99 %.1f ms\n",
              burst, requests_per_sec, p50, p99);
  {
    bench::JsonRecord record;
    record.field("mode", "latency-distribution")
        .field("instance", short_instance.name)
        .field("requests", burst)
        .field("workers", n_workers)
        .field("req_per_sec", requests_per_sec)
        .field("p50_ms", p50)
        .field("p99_ms", p99);
    json.add(record);
  }

  // --- scenario 4: overload shedding under admission control ----------------
  // A two-worker fleet is offered ~4x the work it can finish inside the
  // deadline.  Calibration first: a few sequential warmup jobs measure the
  // true per-job cost on this machine, so the deadline below scales with
  // host speed (and sanitizer overhead) instead of hardcoding milliseconds.
  // The overload server is then constructed with that measurement as its
  // cost prior — the bench tests shedding accuracy, not how fast the EWMA
  // converges from a cold prior.
  {
    constexpr std::size_t kWarmup = 4;
    double cost_ms = 0.0;
    {
      service::Server warmup_server({.n_workers = 2});
      for (std::size_t i = 0; i < kWarmup; ++i) {
        service::SamplingRequest request = make_request(
            short_instance.formula, short_target, env.seed + i, short_batch);
        const service::JobHandle handle = warmup_server.submit(std::move(request));
        (void)handle.wait();
        cost_ms = std::max(cost_ms, handle.stats().wall_ms);
      }
    }
    service::ServerConfig config{.n_workers = 2};
    config.admission.enabled = true;
    config.admission.initial_job_cost_ms = cost_ms;
    service::Server server(std::move(config));

    // deadline = 4x one job's cost => the two workers can finish ~8 jobs
    // in time; offering 32 makes demand ~4x capacity.
    const double deadline_ms = std::max(4.0 * cost_ms, 1.0);
    constexpr std::size_t kOffered = 32;
    std::vector<service::JobHandle> handles;
    std::vector<double> submit_us;
    handles.reserve(kOffered);
    for (std::size_t i = 0; i < kOffered; ++i) {
      service::SamplingRequest request = make_request(
          short_instance.formula, short_target, env.seed + 100 + i, short_batch);
      request.client_id = i % 4;
      request.deadline_ms = deadline_ms;
      const util::Timer submit_timer;
      handles.push_back(server.submit(std::move(request)));
      submit_us.push_back(1000.0 * submit_timer.milliseconds());
    }

    std::size_t rejected = 0;
    std::size_t accepted = 0;
    std::size_t met = 0;
    double reject_max_us = 0.0;
    bool reject_did_work = false;
    for (std::size_t i = 0; i < kOffered; ++i) {
      const service::JobStatus status = handles[i].wait();
      const service::JobStats stats = handles[i].stats();
      if (status == service::JobStatus::kRejected) {
        ++rejected;
        reject_max_us = std::max(reject_max_us, submit_us[i]);
        // Load shedding is only cheap if it happens *before* any compile or
        // execution; a reject that burned worker time defeats the point.
        if (stats.compile_ms > 0.0 || stats.rounds > 0) reject_did_work = true;
      } else {
        ++accepted;
        if (status == service::JobStatus::kCompleted) ++met;
      }
    }
    const double met_fraction =
        accepted > 0 ? static_cast<double>(met) / static_cast<double>(accepted)
                     : 0.0;
    std::printf("\noverload (2 workers, %zu offered, deadline %.1f ms = 4x "
                "calibrated cost %.1f ms):\n  accepted %zu (%.0f%% met "
                "deadline), rejected %zu at submit (max %.0f us)\n",
                kOffered, deadline_ms, cost_ms, accepted, 100.0 * met_fraction,
                rejected, reject_max_us);
    {
      bench::JsonRecord record;
      record.field("mode", "overload-shedding")
          .field("instance", short_instance.name)
          .field("offered", kOffered)
          .field("workers", std::size_t{2})
          .field("calibrated_cost_ms", cost_ms)
          .field("deadline_ms", deadline_ms)
          .field("accepted", accepted)
          .field("rejected", rejected)
          .field("deadline_met_fraction", met_fraction)
          .field("reject_max_us", reject_max_us);
      json.add(record);
    }
    // The acceptance bars, enforced here so perf-smoke CI gates on them.
    bool ok = true;
    if (rejected == 0) {
      std::fprintf(stderr, "[service_throughput] FAIL: overload shed nothing "
                           "(admission control never rejected)\n");
      ok = false;
    }
    if (reject_did_work) {
      std::fprintf(stderr, "[service_throughput] FAIL: a rejected job compiled "
                           "or ran rounds before bouncing\n");
      ok = false;
    }
    // Sub-ms is the design target; 10 ms is the hard bar so sanitizer and
    // loaded-CI builds do not flake on scheduler noise.
    if (reject_max_us > 10000.0) {
      std::fprintf(stderr, "[service_throughput] FAIL: slowest rejection took "
                           "%.0f us (bar: 10000)\n", reject_max_us);
      ok = false;
    }
    if (met_fraction < 0.9) {
      std::fprintf(stderr, "[service_throughput] FAIL: only %.0f%% of accepted "
                           "jobs met their deadline (bar: 90%%)\n",
                   100.0 * met_fraction);
      ok = false;
    }
    if (!ok) return 1;
  }

  // --- scenario 5: flip amplification at equal wall budget ------------------
  // Same formula, same seed, same wall budget; the only difference is
  // config.amplify.  The plan cache is pre-warmed per family so neither
  // timed run pays the compile, making the comparison pure sampling
  // throughput.  Acceptance bar (asserted, so perf-smoke CI gates on it):
  // >= 3x uniques on at least 2 of the 3 families.
  {
    const double amp_budget_ms = std::max(env.budget_ms, 10.0);
    constexpr const char* kAmpFamilies[] = {"or-50-10-7-UC-10", "75-10-1-q",
                                            "Prod-8"};
    std::size_t families_over_bar = 0;
    service::Server amp_server({.n_workers = 2});
    util::Table amp_table(
        {"Instance", "Off uniq", "On uniq", "Amplified", "Multiplier"});
    for (const char* family : kAmpFamilies) {
      const benchgen::Instance amp_instance =
          bench::make_scaled_instance(family, env);
      {
        service::SamplingRequest warm =
            make_request(amp_instance.formula, 1, env.seed, 2048);
        (void)amp_server.submit(std::move(warm)).wait();
      }
      auto timed_uniques = [&](bool amplify, std::uint64_t* amplified) {
        service::SamplingRequest request =
            make_request(amp_instance.formula, 0, env.seed + 9, 2048);
        request.deadline_ms = amp_budget_ms;  // the budget is the only stop
        request.config.amplify.enabled = amplify;
        const service::JobHandle handle = amp_server.submit(std::move(request));
        (void)handle.wait();
        if (amplified != nullptr) *amplified = handle.stats().amplified_uniques;
        return handle.stats().n_unique;
      };
      const std::size_t off_uniques = timed_uniques(false, nullptr);
      std::uint64_t amplified = 0;
      const std::size_t on_uniques = timed_uniques(true, &amplified);
      const double multiplier = static_cast<double>(on_uniques) /
                                std::max<double>(1.0, static_cast<double>(off_uniques));
      if (multiplier >= 3.0) ++families_over_bar;
      amp_table.add_row({amp_instance.name, std::to_string(off_uniques),
                         std::to_string(on_uniques), std::to_string(amplified),
                         util::format_fixed(multiplier, 2)});
      bench::JsonRecord record;
      record.field("mode", "flip-amplification")
          .field("instance", amp_instance.name)
          .field("budget_ms", amp_budget_ms)
          .field("off_uniques", off_uniques)
          .field("on_uniques", on_uniques)
          .field("amplified_uniques", amplified)
          .field("multiplier", multiplier);
      json.add(record);
    }
    std::printf("\nflip amplification (equal %.0f ms budget per job):\n%s\n"
                "%zu of %zu families at >= 3x (bar: 2)\n",
                amp_budget_ms, amp_table.to_string().c_str(),
                families_over_bar, std::size(kAmpFamilies));
    if (families_over_bar < 2) {
      std::fprintf(stderr, "[service_throughput] FAIL: flip amplification hit "
                           ">= 3x uniques on only %zu of %zu families "
                           "(bar: 2)\n",
                   families_over_bar, std::size(kAmpFamilies));
      return 1;
    }
  }

  // --- scenario 6: projected sampling at equal wall budget ------------------
  // Same formula, same seed, same wall budget; the request carries a
  // sampling set over a slice of the circuit's primary inputs.  The
  // baseline keeps full-assignment dedup (projected_dedup off) and its
  // distinct projections are counted externally from the delivered stream;
  // the projected run keys the bank on the projection and turns the
  // diversity objective on.  Two asserted bars (perf-smoke CI gates here):
  // the projected stream must never deliver the same projection twice, and
  // projected+diversity must find >= 1.5x the distinct projected uniques
  // on at least 2 of the 3 families.
  {
    // Twice the smoke budget: the off-run's duplicate waste compounds with
    // coverage, so the gap the diversity objective closes needs enough wall
    // time to open up (both runs always get the identical budget).
    const double proj_budget_ms = std::max(2.0 * env.budget_ms, 20.0);
    struct ProjFamily {
      const char* name;
      std::size_t set_bits;  // leading primary inputs projected onto
      std::size_t batch;     // GD batch (a round checkpoint must fit the
                             // deadline, so big circuits take a small batch)
    };
    // set_bits targets a projected space comparable to what one budget's
    // worth of valid draws can cover: small enough that an unguided run
    // wastes draws on already-seen classes, large enough that neither run
    // saturates instantly.  The two or-* entries are free-input-rich — the
    // regime projection diversity is built for: valid throughput is huge
    // relative to the projected space, so the guided neighbor walk converts
    // nearly every draw into a fresh class (~1.7x measured) while the
    // unguided run pays the coupon-collector tax.  s15850a projects onto
    // constrained gate-cone inputs of a 10k-var circuit: there the batch
    // must shrink so the first round checkpoint lands inside the deadline
    // at all, and the walk's cheap re-convergence near known solutions is
    // worth ~1.9-2.5x over re-paying full descent per class.
    constexpr ProjFamily kProjFamilies[] = {{"or-60-20-9-UC-20", 16, 2048},
                                            {"or-75-10-7-UC-15", 16, 2048},
                                            {"s15850a_3_2", 12, 512}};
    struct PackedHash {
      std::size_t operator()(const std::vector<std::uint64_t>& key) const noexcept {
        std::uint64_t h = 0xcbf29ce484222325ULL;
        for (const std::uint64_t w : key) {
          h ^= w;
          h *= 0x100000001b3ULL;
        }
        return static_cast<std::size_t>(h);
      }
    };
    std::size_t families_over_bar = 0;
    std::size_t duplicate_projections = 0;
    service::Server proj_server({.n_workers = 2});
    util::Table proj_table({"Instance", "SetBits", "Off proj", "On proj",
                            "Div rows", "Multiplier"});
    for (const ProjFamily& family : kProjFamilies) {
      const benchgen::Instance proj_instance =
          bench::make_scaled_instance(family.name, env);
      // Project onto the formula variables of the first set_bits primary
      // inputs (every generator registers inputs before gates).
      std::vector<cnf::Var> sampling_set;
      const std::vector<circuit::SignalId>& inputs = proj_instance.circuit.inputs();
      for (std::size_t i = 0; i < inputs.size() && i < family.set_bits; ++i) {
        sampling_set.push_back(proj_instance.signal_var[inputs[i]]);
      }
      {
        service::SamplingRequest warm =
            make_request(proj_instance.formula, 1, env.seed, family.batch);
        (void)proj_server.submit(std::move(warm)).wait();
      }
      // Runs one job to the wall budget, streaming every delivered witness
      // through a projection counter.  Returns (distinct, duplicates).
      auto timed_projections = [&](bool projected, std::uint64_t* div_rows) {
        std::unordered_set<std::vector<std::uint64_t>, PackedHash> seen;
        std::size_t duplicates = 0;
        const std::size_t n_words = (sampling_set.size() + 63) / 64;
        service::SamplingRequest request =
            make_request(proj_instance.formula, 0, env.seed + 11, family.batch);
        request.deadline_ms = proj_budget_ms;  // the budget is the only stop
        request.sampling_set = sampling_set;
        request.config.projected_dedup = projected;
        request.config.diversity_restart = projected;
        request.deliver_solutions = true;
        request.on_solution = [&](const cnf::Assignment& draw) {
          std::vector<std::uint64_t> key(n_words, 0);
          for (std::size_t j = 0; j < sampling_set.size(); ++j) {
            if (draw[sampling_set[j]] != 0) key[j >> 6] |= (1ULL << (j & 63));
          }
          if (!seen.insert(std::move(key)).second) ++duplicates;
        };
        const service::JobHandle handle = proj_server.submit(std::move(request));
        (void)handle.wait();
        if (div_rows != nullptr) *div_rows = handle.stats().diversity_restarted_rows;
        return std::make_pair(seen.size(), duplicates);
      };
      const auto [off_distinct, off_dups] = timed_projections(false, nullptr);
      std::uint64_t div_rows = 0;
      const auto [on_distinct, on_dups] = timed_projections(true, &div_rows);
      duplicate_projections += on_dups;
      const double multiplier =
          static_cast<double>(on_distinct) /
          std::max<double>(1.0, static_cast<double>(off_distinct));
      if (multiplier >= 1.5) ++families_over_bar;
      proj_table.add_row({proj_instance.name, std::to_string(sampling_set.size()),
                          std::to_string(off_distinct), std::to_string(on_distinct),
                          std::to_string(div_rows),
                          util::format_fixed(multiplier, 2)});
      bench::JsonRecord record;
      record.field("mode", "projected-sampling")
          .field("instance", proj_instance.name)
          .field("budget_ms", proj_budget_ms)
          .field("set_bits", sampling_set.size())
          .field("off_distinct_projections", off_distinct)
          .field("on_distinct_projections", on_distinct)
          .field("on_distinct_per_sec",
                 1000.0 * static_cast<double>(on_distinct) / proj_budget_ms)
          .field("duplicate_projections_delivered", on_dups)
          .field("diversity_restarted_rows", div_rows)
          .field("multiplier", multiplier);
      json.add(record);
      (void)off_dups;  // full-dedup baseline may legitimately repeat projections
    }
    std::printf("\nprojected sampling (equal %.0f ms budget per job):\n%s\n"
                "%zu of %zu families at >= 1.5x (bar: 2); duplicate projections "
                "delivered: %zu (bar: 0)\n",
                proj_budget_ms, proj_table.to_string().c_str(),
                families_over_bar, std::size(kProjFamilies),
                duplicate_projections);
    if (duplicate_projections != 0) {
      std::fprintf(stderr, "[service_throughput] FAIL: projected streams "
                           "delivered %zu duplicate projections (bar: 0)\n",
                   duplicate_projections);
      return 1;
    }
    if (families_over_bar < 2) {
      std::fprintf(stderr, "[service_throughput] FAIL: projected+diversity hit "
                           ">= 1.5x distinct projections on only %zu of %zu "
                           "families (bar: 2)\n",
                   families_over_bar, std::size(kProjFamilies));
      return 1;
    }
  }

  // --- scenario 7: telemetry overhead at fixed work -------------------------
  // The same fleet (same formulas, seeds, targets — fixed work, not fixed
  // time) runs with telemetry fully off and fully on (metrics + tracing),
  // interleaved min-of-3 per mode so machine drift hits both sides.  The
  // contract under test: every record site is one relaxed-load branch when
  // off and a couple of relaxed atomic ops when on, so the enabled run must
  // stay within 2% of the disabled run plus the machine's own measured
  // noise floor (see `allowance` below).
  {
    const bool metrics_before = telemetry::metrics_enabled();
    const bool trace_before = telemetry::trace_enabled();
    telemetry::Registry::global().reset_values();
    telemetry::TraceSink::global().clear();
    constexpr std::size_t kReps = 3;
    constexpr std::size_t kFleet = 4;
    std::uint64_t delivered_stats = 0;  // JobStats sum over the traced reps
    auto fleet_ms = [&](bool count_delivered) {
      service::Server server({.n_workers = 2});
      const util::Timer timer;
      std::vector<service::JobHandle> handles;
      handles.reserve(kFleet);
      for (std::size_t i = 0; i < kFleet; ++i) {
        service::SamplingRequest request = make_request(
            short_instance.formula, short_target, env.seed + 200 + i,
            short_batch);
        request.client_id = i;
        request.deliver_solutions = true;  // exercise the stream seam too
        handles.push_back(server.submit(std::move(request)));
      }
      for (const service::JobHandle& handle : handles) {
        (void)handle.wait();
        if (count_delivered) delivered_stats += handle.stats().delivered;
        handle.stream().cancel();  // undelivered tail is not the subject
      }
      return timer.milliseconds();
    };
    double off_min = std::numeric_limits<double>::infinity();
    double off_max = 0.0;
    double on_min = std::numeric_limits<double>::infinity();
    for (std::size_t rep = 0; rep < kReps; ++rep) {
      telemetry::set_metrics_enabled(false);
      telemetry::set_trace_enabled(false);
      const double off = fleet_ms(/*count_delivered=*/false);
      off_min = std::min(off_min, off);
      off_max = std::max(off_max, off);
      telemetry::set_metrics_enabled(true);
      telemetry::set_trace_enabled(true);
      on_min = std::min(on_min, fleet_ms(/*count_delivered=*/true));
    }
    telemetry::set_metrics_enabled(metrics_before);
    telemetry::set_trace_enabled(trace_before);
    const double overhead_pct =
        off_min > 0.0 ? 100.0 * (on_min - off_min) / off_min : 0.0;
    // Self-calibrating noise allowance: identical work repeated in the same
    // mode already spreads by off_max - off_min on a loaded host, so the 2%
    // bar is only meaningful above that floor (2 ms minimum for timer
    // granularity at smoke budgets).
    const double allowance =
        off_min * 0.02 + std::max(2.0, off_max - off_min);

    // The enabled runs populated the registry: export the percentile view
    // an operator would read off the slice-duration histogram, and
    // cross-check the delivered counter against the fleet's own JobStats.
    telemetry::Registry& registry = telemetry::Registry::global();
    telemetry::Histogram& slice_hist = registry.histogram(
        "hts_scheduler_slice_ms",
        {0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0});
    const double slice_p50 = slice_hist.percentile(50.0);
    const double slice_p99 = slice_hist.percentile(99.0);
    const std::uint64_t delivered_metric =
        registry.counter("hts_stream_delivered_total").value();

    std::printf("\ntelemetry overhead (fixed work, min of %zu): off %.1f ms "
                "(spread %.1f), on %.1f ms -> %+.2f%% (bar: <= 2%% + noise "
                "floor); slice p50 %.2f ms, p99 %.2f ms\n",
                kReps, off_min, off_max - off_min, on_min, overhead_pct,
                slice_p50, slice_p99);
    {
      bench::JsonRecord record;
      record.field("mode", "telemetry-overhead")
          .field("instance", short_instance.name)
          .field("fleet", kFleet)
          .field("reps", kReps)
          .field("off_ms", off_min)
          .field("off_spread_ms", off_max - off_min)
          .field("on_ms", on_min)
          .field("overhead_pct", overhead_pct)
          .field("allowance_ms", allowance)
          .field("slice_p50_ms", slice_p50)
          .field("slice_p99_ms", slice_p99)
          .field("slice_count", slice_hist.count())
          .field("delivered_metric", delivered_metric)
          .field("delivered_stats", delivered_stats)
          .field("trace_dropped", telemetry::TraceSink::global().dropped());
      json.add(record);
    }
    bool ok = true;
    if (on_min > off_min + allowance) {
      std::fprintf(stderr, "[service_throughput] FAIL: telemetry-on run took "
                           "%.1f ms vs %.1f ms off (bar: +2%% + %.1f ms "
                           "noise floor)\n",
                   on_min, off_min, std::max(2.0, off_max - off_min));
      ok = false;
    }
    if (delivered_metric != delivered_stats) {
      std::fprintf(stderr, "[service_throughput] FAIL: delivered counter %llu "
                           "!= JobStats sum %llu\n",
                   static_cast<unsigned long long>(delivered_metric),
                   static_cast<unsigned long long>(delivered_stats));
      ok = false;
    }
    if (!trace_path.empty() &&
        !telemetry::TraceSink::global().write_chrome_json(trace_path)) {
      std::fprintf(stderr, "[service_throughput] FAIL: cannot write trace to "
                           "%s\n", trace_path.c_str());
      ok = false;
    }
    if (!ok) return 1;
    if (!trace_path.empty()) {
      std::printf("trace written to %s (load in ui.perfetto.dev)\n",
                  trace_path.c_str());
    }
  }

  std::printf("\nReading: the throughput speedup is compile-amortization plus\n"
              "fleet concurrency (>= 1.5x is the acceptance bar; single-core\n"
              "hosts see mostly the cache term).  The HOL ratio shows EDF\n"
              "time-slicing keeping short jobs out from behind batch jobs.\n");
  if (!json.write(env)) return 1;
  return 0;
}
