// Reproduces Table II: unique-solution throughput of the gradient sampler
// vs UNIGEN3-like, CMSGEN-like and DIFFSAMPLER-like baselines on the 14
// representative instances, each tasked with >= HTS_BENCH_MIN_SOLUTIONS
// unique solutions within HTS_BENCH_BUDGET_MS.
//
// Columns mirror the paper: instance, #primary inputs / outputs recovered by
// the transformation, CNF size, our throughput with the speedup over the
// best baseline, then the three baselines' throughputs.

#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace hts;
  const bench::BenchEnv env;

  std::printf("=== Table II: unique-solution throughput ===\n");
  std::printf("budget %.0f ms per sampler-instance, target %zu unique solutions, "
              "scale %.2f\n\n",
              env.budget_ms, env.min_solutions, env.scale);

  util::Table table({"Instance", "#PI", "#PO", "Vars", "Clauses",
                     "This work (Speedup)", "UniGen3-like", "CMSGen-like",
                     "DiffSampler-like"});

  for (const std::string& name : benchgen::table2_names()) {
    std::fprintf(stderr, "[table2] %s ...\n", name.c_str());
    const benchgen::Instance instance = bench::make_scaled_instance(name, env);
    const auto& formula = instance.formula;

    auto ours = bench::make_ours(env, formula.n_vars());
    const sampler::RunResult our_result = ours->run(formula, bench::run_options(env));
    const auto& tstats = ours->transform_stats();

    std::vector<std::string> row{
        name,
        std::to_string(tstats.has_value() ? tstats->n_primary_inputs : 0),
        std::to_string(tstats.has_value() ? tstats->n_primary_outputs : 0),
        std::to_string(formula.n_vars()),
        std::to_string(formula.n_clauses()),
    };

    double best_baseline = 0.0;
    std::vector<std::string> baseline_cells;
    for (const auto& baseline : bench::make_baselines(env, formula.n_vars())) {
      const sampler::RunResult result =
          baseline->run(formula, bench::run_options(env));
      baseline_cells.push_back(bench::throughput_cell(result, env.min_solutions));
      best_baseline = std::max(best_baseline, result.throughput());
    }

    std::string ours_cell = bench::throughput_cell(our_result, env.min_solutions);
    if (ours_cell != "TO" && best_baseline > 0.0) {
      ours_cell +=
          " (" + util::format_speedup(our_result.throughput() / best_baseline) + ")";
    }
    row.push_back(ours_cell);
    for (auto& cell : baseline_cells) row.push_back(std::move(cell));
    table.add_row(std::move(row));
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf("CSV:\n%s", table.to_csv().c_str());
  std::printf("\nPaper reference (V100 + 2h budget): speedups 33.6x-523.6x over the\n"
              "best baseline; UniGen3 0.2-95 sol/s; CMSGen TOs on Prod-20/32;\n"
              "DiffSampler TOs on s15850a_* and Prod-*.\n");
  return 0;
}
