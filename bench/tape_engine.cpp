// Tape-engine bench: GD iterations/sec of the vectorized engine vs the
// pre-optimization baseline, on one representative instance per benchgen
// family (same batch, same circuit), plus a scheduling-policy sweep of the
// levelized execution plan.
//
// Modes:
//   baseline   raw gate-per-gate tape, exact std::exp sigmoid, serial —
//              the pre-optimizer engine's opset and numerics
//   opt        optimized tape (copy-prop, folds, CSE, fused NOTs, DCE),
//              exact sigmoid, serial — isolates the tape optimizer
//   opt+fsig   optimized tape + fast polynomial sigmoid, serial per-tile —
//              the default engine configuration every sampler runs
//   tiles      opt+fsig dispatched per tile across the thread pool
//   level      opt+fsig on the level-parallel plan: wide levels split into
//              (tile x op-range) work items, narrow level runs fused
//
// Besides GD iterations/sec the bench measures the *harvest* side of the
// loop: rows validated/sec of the scalar Circuit::eval64 walk vs the
// compiled word-parallel circuit::EvalPlan (single thread — the acceptance
// comparison), recorded as two extra JSON records per instance (modes
// `harvest-scalar` and `harvest-plan`).  Opcode-run statistics of the
// engine plan (run count, longest/mean run) ride along on every record.
//
// The per-instance header reports the plan shape (level count, width
// histogram): wide-but-shallow families are where `level` can beat the
// per-tile policies, because parallelism stops being capped at batch/64.
//
// Accepts `--json <path>` (bench_common JSON schema) so the perf trajectory
// can be archived; CI's perf-smoke job runs this bench with a tiny budget
// and uploads the JSON as a workflow artifact.

#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "circuit/eval_plan.hpp"
#include "prob/compiled.hpp"
#include "prob/engine.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace hts;

struct ModeResult {
  std::size_t iterations = 0;
  double elapsed_ms = 0.0;
  double iters_per_sec = 0.0;
};

/// Ops per kernel-dispatch switch; one definition serves the JSON records,
/// the stderr summary, and the harvest table so they can never drift.
double mean_run_length(std::size_t n_ops, std::size_t n_runs) {
  return n_runs > 0
             ? static_cast<double>(n_ops) / static_cast<double>(n_runs)
             : 0.0;
}

ModeResult time_iterations(const prob::CompiledCircuit& compiled,
                           std::size_t batch, bool fast_sigmoid,
                           tensor::Policy policy, double budget_ms,
                           std::uint64_t seed) {
  prob::Engine::Config config;
  config.batch = batch;
  config.policy = policy;
  config.fast_sigmoid = fast_sigmoid;
  prob::Engine engine(compiled, config);
  util::Rng rng(seed);
  engine.randomize(rng);
  engine.run_iteration();  // warm up caches and page in the buffers

  ModeResult result;
  util::Timer timer;
  do {
    engine.run_iteration();
    ++result.iterations;
    result.elapsed_ms = timer.milliseconds();
  } while (result.elapsed_ms < budget_ms);
  result.iters_per_sec = result.elapsed_ms > 0.0
                             ? 1000.0 * static_cast<double>(result.iterations) /
                                   result.elapsed_ms
                             : 0.0;
  return result;
}

struct HarvestResult {
  std::uint64_t rows = 0;
  double elapsed_ms = 0.0;
  [[nodiscard]] double rows_per_sec() const {
    return elapsed_ms > 0.0 ? 1000.0 * static_cast<double>(rows) / elapsed_ms
                            : 0.0;
  }
};

/// Rows validated/sec of the scalar reference: per word, gather the input
/// words, interpret the circuit with eval64, and reduce the satisfied mask —
/// the pre-EvalPlan harvest inner loop.  Only real batch rows count (the
/// final word's padding lanes are computed but not validated rows, matching
/// Harvester::rows_validated's definition).
HarvestResult time_harvest_scalar(const circuit::Circuit& circuit,
                                  const std::vector<std::uint64_t>& packed,
                                  std::size_t n_words, std::size_t batch,
                                  double budget_ms) {
  std::vector<std::uint64_t> input_words(circuit.n_inputs());
  HarvestResult result;
  std::uint64_t sink = 0;
  util::Timer timer;
  do {
    for (std::size_t w = 0; w < n_words; ++w) {
      for (std::size_t i = 0; i < circuit.n_inputs(); ++i) {
        input_words[i] = packed[i * n_words + w];
      }
      sink ^= circuit.outputs_satisfied64(circuit.eval64(input_words));
      result.rows += std::min<std::size_t>(64, batch - w * 64);
    }
    result.elapsed_ms = timer.milliseconds();
  } while (result.elapsed_ms < budget_ms);
  if (sink == 0x5eedULL) std::fprintf(stderr, "(sink)\n");  // keep sink live
  return result;
}

/// Rows validated/sec of the compiled plan: block evaluation through the
/// opcode-batched u64x4 kernels over reused scratch — the Harvester's
/// phase-1 inner loop, single thread.
HarvestResult time_harvest_plan(const circuit::EvalPlan& plan,
                                const std::vector<std::uint64_t>& packed,
                                std::size_t n_words, std::size_t batch,
                                double budget_ms) {
  std::vector<std::uint64_t> slots(plan.scratch_words());
  HarvestResult result;
  std::uint64_t sink = 0;
  util::Timer timer;
  do {
    for (std::size_t w0 = 0; w0 < n_words;
         w0 += circuit::EvalPlan::kBlockWords) {
      const std::size_t count =
          std::min(circuit::EvalPlan::kBlockWords, n_words - w0);
      plan.eval_block(packed.data(), n_words, w0, count, slots.data());
      for (std::size_t lane = 0; lane < count; ++lane) {
        sink ^= plan.satisfied(slots.data(), lane);
        result.rows += std::min<std::size_t>(64, batch - (w0 + lane) * 64);
      }
    }
    result.elapsed_ms = timer.milliseconds();
  } while (result.elapsed_ms < budget_ms);
  if (sink == 0x5eedULL) std::fprintf(stderr, "(sink)\n");
  return result;
}

/// Compact power-of-two histogram of level widths, e.g. "1:120 2-3:40 4-7:9".
std::string width_histogram(const prob::ExecPlan& plan) {
  std::vector<std::size_t> buckets;
  for (std::size_t l = 0; l < plan.n_levels(); ++l) {
    std::size_t w = plan.width(l);
    std::size_t bucket = 0;
    while (w > 1) {
      w >>= 1;
      ++bucket;
    }
    if (bucket >= buckets.size()) buckets.resize(bucket + 1, 0);
    ++buckets[bucket];
  }
  std::string out;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    const std::size_t lo = 1ULL << b;
    const std::size_t hi = (2ULL << b) - 1;
    if (!out.empty()) out += ' ';
    out += lo == hi ? std::to_string(lo)
                    : std::to_string(lo) + "-" + std::to_string(hi);
    out += ':';
    out += std::to_string(buckets[b]);
  }
  return out.empty() ? "(empty)" : out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchEnv env;
  bench::JsonWriter json(argc, argv, "tape_engine");
  // A fraction of the sampler budget per (instance, mode) keeps the default
  // full sweep near the usual bench runtime.
  const double budget_ms = env.budget_ms / 8.0;

  std::printf("=== Tape engine: GD iterations/sec by tape and schedule ===\n");
  std::printf("budget %.0f ms per mode\n\n", budget_ms);

  const std::vector<std::string> instances = {"or-50-10-7-UC-10", "75-10-1-q",
                                              "s15850a_3_2", "Prod-8"};
  util::Table table(
      {"Instance", "Mode", "Policy", "Ops", "Iters/s", "vs base", "vs pertile"});
  util::Table harvest_table(
      {"Instance", "Backend", "Ops", "Runs", "MeanRun", "Rows/s", "Speedup"});

  bool any_doubled = false;
  std::size_t harvest_doubled = 0;
  for (const std::string& name : instances) {
    std::fprintf(stderr, "[tape_engine] %s ...\n", name.c_str());
    const benchgen::Instance instance = bench::make_scaled_instance(name, env);
    const std::size_t batch =
        bench::pick_batch(env, instance.formula.n_vars());

    const prob::CompiledCircuit raw(
        instance.circuit, prob::CompiledCircuit::Options{false, false});
    const prob::CompiledCircuit opt(instance.circuit);
    const prob::OptStats& stats = opt.opt_stats();
    const prob::ExecPlan& plan = opt.plan();
    auto plan_mean_width = [](const prob::ExecPlan& p) {
      return p.n_levels() > 0 ? static_cast<double>(p.n_ops()) /
                                    static_cast<double>(p.n_levels())
                              : 0.0;
    };
    const double mean_width = plan_mean_width(plan);

    const ModeResult base =
        time_iterations(raw, batch, /*fast_sigmoid=*/false,
                        tensor::Policy::kSerial, budget_ms, env.seed);
    const ModeResult opt_exact =
        time_iterations(opt, batch, /*fast_sigmoid=*/false,
                        tensor::Policy::kSerial, budget_ms, env.seed);
    const ModeResult opt_fast =
        time_iterations(opt, batch, /*fast_sigmoid=*/true,
                        tensor::Policy::kSerial, budget_ms, env.seed);
    const ModeResult opt_tiles =
        time_iterations(opt, batch, /*fast_sigmoid=*/true,
                        tensor::Policy::kDataParallel, budget_ms, env.seed);
    const ModeResult opt_level =
        time_iterations(opt, batch, /*fast_sigmoid=*/true,
                        tensor::Policy::kLevelParallel, budget_ms, env.seed);

    struct Row {
      const char* mode;
      tensor::Policy policy;
      const prob::CompiledCircuit* compiled;
      const ModeResult* result;
    };
    const Row rows[] = {
        {"baseline", tensor::Policy::kSerial, &raw, &base},
        {"opt", tensor::Policy::kSerial, &opt, &opt_exact},
        {"opt+fsig", tensor::Policy::kSerial, &opt, &opt_fast},
        {"tiles", tensor::Policy::kDataParallel, &opt, &opt_tiles},
        {"level", tensor::Policy::kLevelParallel, &opt, &opt_level}};
    for (const Row& row : rows) {
      const double speedup = base.iters_per_sec > 0.0
                                 ? row.result->iters_per_sec / base.iters_per_sec
                                 : 0.0;
      const double vs_pertile =
          opt_fast.iters_per_sec > 0.0
              ? row.result->iters_per_sec / opt_fast.iters_per_sec
              : 0.0;
      table.add_row({name, row.mode, tensor::policy_name(row.policy),
                     std::to_string(row.compiled->n_ops()),
                     util::format_grouped(row.result->iters_per_sec, 1),
                     util::format_speedup(speedup),
                     util::format_speedup(vs_pertile)});
      bench::JsonRecord record;
      record.field("instance", name)
          .field("mode", row.mode)
          .field("policy", tensor::policy_name(row.policy))
          .field("batch", batch)
          .field("ops", row.compiled->n_ops())
          .field("slots", row.compiled->n_slots())
          .field("iterations", row.result->iterations)
          .field("elapsed_ms", row.result->elapsed_ms)
          .field("iters_per_sec", row.result->iters_per_sec)
          .field("speedup_vs_baseline", speedup)
          .field("speedup_vs_pertile", vs_pertile)
          .field("tape_ops_removed", stats.ops_before - stats.ops_after)
          .field("slots_removed", stats.slots_before - stats.slots_after)
          .field("copies_propagated", stats.copies_propagated)
          .field("consts_folded", stats.consts_folded)
          .field("cse_eliminated", stats.cse_eliminated)
          .field("nots_fused", stats.nots_fused)
          .field("ops_dead", stats.ops_dead)
          .field("n_levels", row.compiled->plan().n_levels())
          .field("max_level_width", row.compiled->plan().max_width())
          .field("mean_level_width", plan_mean_width(row.compiled->plan()))
          .field("n_opcode_runs", row.compiled->opt_stats().n_opcode_runs)
          .field("max_run_length", row.compiled->opt_stats().max_run_length)
          .field("mean_run_length",
                 mean_run_length(row.compiled->n_ops(),
                                 row.compiled->opt_stats().n_opcode_runs));
      json.add(record);
      // The optimizer acceptance bar counts serial rows only — a pooled
      // policy doubling over baseline is thread parallelism, not the tape
      // optimizer this bench exists to gate.
      if (row.policy == tensor::Policy::kSerial && speedup >= 2.0) {
        any_doubled = true;
      }
    }
    std::printf("%s: tape %zu -> %zu ops (%.1f%%); copy-prop %zu, folded %zu, "
                "cse %zu, fused %zu, dead %zu\n",
                name.c_str(), stats.ops_before, stats.ops_after,
                100.0 * static_cast<double>(stats.ops_before - stats.ops_after) /
                    static_cast<double>(stats.ops_before == 0 ? 1
                                                              : stats.ops_before),
                stats.copies_propagated, stats.consts_folded,
                stats.cse_eliminated, stats.nots_fused, stats.ops_dead);
    std::printf("  plan: %zu levels, width max %zu mean %.1f, histogram %s\n",
                plan.n_levels(), plan.max_width(), mean_width,
                width_histogram(plan).c_str());
    std::printf("  engine runs: %zu (max %zu, mean %.1f per switch)\n",
                stats.n_opcode_runs, stats.max_run_length,
                mean_run_length(opt.n_ops(), stats.n_opcode_runs));

    // ---- harvest throughput: scalar eval64 vs compiled word plan ----
    const circuit::EvalPlan eval_plan(instance.circuit);
    const std::size_t n_words = (batch + 63) / 64;
    util::Rng rng(env.seed);
    std::vector<std::uint64_t> packed(instance.circuit.n_inputs() * n_words);
    for (std::uint64_t& word : packed) word = rng.next_u64();
    const HarvestResult scalar =
        time_harvest_scalar(instance.circuit, packed, n_words, batch, budget_ms);
    const HarvestResult compiled_harvest =
        time_harvest_plan(eval_plan, packed, n_words, batch, budget_ms);
    const double harvest_speedup =
        scalar.rows_per_sec() > 0.0
            ? compiled_harvest.rows_per_sec() / scalar.rows_per_sec()
            : 0.0;
    if (harvest_speedup >= 2.0) ++harvest_doubled;
    const circuit::EvalPlanStats& hstats = eval_plan.stats();
    const double mean_run = mean_run_length(hstats.n_ops, hstats.n_runs);
    harvest_table.add_row({name, "scalar", std::to_string(hstats.n_ops), "-",
                           "-", util::format_grouped(scalar.rows_per_sec(), 1),
                           "1.00x"});
    harvest_table.add_row(
        {name, "plan", std::to_string(hstats.n_ops),
         std::to_string(hstats.n_runs), util::format_fixed(mean_run, 1),
         util::format_grouped(compiled_harvest.rows_per_sec(), 1),
         util::format_speedup(harvest_speedup)});
    const HarvestResult* harvest_rows[] = {&scalar, &compiled_harvest};
    const char* harvest_modes[] = {"harvest-scalar", "harvest-plan"};
    for (int h = 0; h < 2; ++h) {
      bench::JsonRecord record;
      record.field("instance", name)
          .field("mode", harvest_modes[h])
          .field("batch", batch)
          .field("rows_validated", harvest_rows[h]->rows)
          .field("elapsed_ms", harvest_rows[h]->elapsed_ms)
          .field("harvest_rows_per_sec", harvest_rows[h]->rows_per_sec())
          .field("harvest_speedup", h == 0 ? 1.0 : harvest_speedup)
          .field("eval_ops", hstats.n_ops)
          .field("eval_levels", hstats.n_levels)
          .field("eval_runs", hstats.n_runs)
          .field("eval_mean_run_length", mean_run)
          .field("eval_temp_slots", hstats.n_temp_slots);
      json.add(record);
    }
  }

  std::printf("\n%s\n", table.to_string().c_str());
  std::printf("CSV:\n%s", table.to_csv().c_str());
  std::printf("\n=== Harvest: rows validated/sec, scalar eval64 vs compiled "
              "plan (single thread) ===\n%s\n",
              harvest_table.to_string().c_str());
  std::printf(
      "Harvest acceptance bar: >= 2x rows-validated/sec on >= 2 families -- "
      "%s (%zu/4 doubled).\n",
      harvest_doubled >= 2 ? "met" : "NOT met at this budget", harvest_doubled);
  std::printf(
      "\nReading: `opt` isolates the tape optimizer, `opt+fsig` is the serial\n"
      "per-tile engine every sampler runs by default, `tiles`/`level` put the\n"
      "same tape on the thread pool.  `level` pays one barrier per wide level\n"
      "and wins on wide-but-shallow plans with multiple cores (parallelism\n"
      "scales with level width, not just batch/64 tiles); on a single\n"
      "hardware thread it degenerates to the serial plan walk, so `vs\n"
      "pertile` ~1.0x there only confirms the scheduler adds no overhead.\n"
      "The optimizer acceptance bar is >= 2x iterations/sec over baseline on\n"
      "at least one family%s.\n",
      any_doubled ? " -- met" : " -- NOT met at this budget");
  if (!json.write(env)) return 1;
  return 0;
}
