// Tape-engine bench: GD iterations/sec of the vectorized engine vs the
// pre-optimization baseline, on one representative instance per benchgen
// family (serial policy, same batch, same circuit — the speedup isolates the
// tape optimizer + SIMD kernels + fast sigmoid, not parallelism).
//
// Modes:
//   baseline   raw gate-per-gate tape, exact std::exp sigmoid — the pre-PR
//              engine's opset and numerics
//   opt        optimized tape (copy-prop, folds, fused NOTs, DCE), exact
//              sigmoid — isolates the tape optimizer
//   opt+fsig   optimized tape + fast polynomial sigmoid — the default
//              engine configuration every sampler now runs
//
// Accepts `--json <path>` (bench_common JSON schema) so the perf trajectory
// can be archived; CI's perf-smoke job runs this bench with a tiny budget.

#include <cstdio>

#include "bench_common.hpp"
#include "prob/compiled.hpp"
#include "prob/engine.hpp"
#include "util/timer.hpp"

namespace {

using namespace hts;

struct ModeResult {
  std::size_t iterations = 0;
  double elapsed_ms = 0.0;
  double iters_per_sec = 0.0;
};

ModeResult time_iterations(const prob::CompiledCircuit& compiled,
                           std::size_t batch, bool fast_sigmoid,
                           double budget_ms, std::uint64_t seed) {
  prob::Engine::Config config;
  config.batch = batch;
  config.policy = tensor::Policy::kSerial;
  config.fast_sigmoid = fast_sigmoid;
  prob::Engine engine(compiled, config);
  util::Rng rng(seed);
  engine.randomize(rng);
  engine.run_iteration();  // warm up caches and page in the buffers

  ModeResult result;
  util::Timer timer;
  do {
    engine.run_iteration();
    ++result.iterations;
    result.elapsed_ms = timer.milliseconds();
  } while (result.elapsed_ms < budget_ms);
  result.iters_per_sec = result.elapsed_ms > 0.0
                             ? 1000.0 * static_cast<double>(result.iterations) /
                                   result.elapsed_ms
                             : 0.0;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchEnv env;
  bench::JsonWriter json(argc, argv, "tape_engine");
  // A fraction of the sampler budget per (instance, mode) keeps the default
  // full sweep near the usual bench runtime.
  const double budget_ms = env.budget_ms / 5.0;

  std::printf("=== Tape engine: GD iterations/sec, optimized vs baseline ===\n");
  std::printf("budget %.0f ms per mode, serial policy\n\n", budget_ms);

  const std::vector<std::string> instances = {"or-50-10-7-UC-10", "75-10-1-q",
                                              "s15850a_3_2", "Prod-8"};
  util::Table table({"Instance", "Mode", "Ops", "Slots", "Iters/s", "Speedup"});

  bool any_doubled = false;
  for (const std::string& name : instances) {
    std::fprintf(stderr, "[tape_engine] %s ...\n", name.c_str());
    const benchgen::Instance instance = bench::make_scaled_instance(name, env);
    const std::size_t batch =
        bench::pick_batch(env, instance.formula.n_vars());

    const prob::CompiledCircuit raw(
        instance.circuit, prob::CompiledCircuit::Options{false, false});
    const prob::CompiledCircuit opt(instance.circuit);
    const prob::OptStats& stats = opt.opt_stats();

    const ModeResult base =
        time_iterations(raw, batch, /*fast_sigmoid=*/false, budget_ms, env.seed);
    const ModeResult opt_exact =
        time_iterations(opt, batch, /*fast_sigmoid=*/false, budget_ms, env.seed);
    const ModeResult opt_fast =
        time_iterations(opt, batch, /*fast_sigmoid=*/true, budget_ms, env.seed);

    struct Row {
      const char* mode;
      const prob::CompiledCircuit* compiled;
      const ModeResult* result;
    };
    const Row rows[] = {{"baseline", &raw, &base},
                        {"opt", &opt, &opt_exact},
                        {"opt+fsig", &opt, &opt_fast}};
    for (const Row& row : rows) {
      const double speedup = base.iters_per_sec > 0.0
                                 ? row.result->iters_per_sec / base.iters_per_sec
                                 : 0.0;
      table.add_row({name, row.mode, std::to_string(row.compiled->n_ops()),
                     std::to_string(row.compiled->n_slots()),
                     util::format_grouped(row.result->iters_per_sec, 1),
                     util::format_speedup(speedup)});
      bench::JsonRecord record;
      record.field("instance", name)
          .field("mode", row.mode)
          .field("batch", batch)
          .field("ops", row.compiled->n_ops())
          .field("slots", row.compiled->n_slots())
          .field("iterations", row.result->iterations)
          .field("elapsed_ms", row.result->elapsed_ms)
          .field("iters_per_sec", row.result->iters_per_sec)
          .field("speedup_vs_baseline", speedup)
          .field("tape_ops_removed", stats.ops_before - stats.ops_after)
          .field("slots_removed", stats.slots_before - stats.slots_after)
          .field("copies_propagated", stats.copies_propagated)
          .field("consts_folded", stats.consts_folded)
          .field("nots_fused", stats.nots_fused)
          .field("ops_dead", stats.ops_dead);
      json.add(record);
      if (speedup >= 2.0) any_doubled = true;
    }
    std::printf("%s: tape %zu -> %zu ops (%.1f%%), %zu -> %zu slots; "
                "copy-prop %zu, folded %zu, fused %zu, dead %zu\n",
                name.c_str(), stats.ops_before, stats.ops_after,
                100.0 * static_cast<double>(stats.ops_before - stats.ops_after) /
                    static_cast<double>(stats.ops_before == 0 ? 1
                                                              : stats.ops_before),
                stats.slots_before, stats.slots_after, stats.copies_propagated,
                stats.consts_folded, stats.nots_fused, stats.ops_dead);
  }

  std::printf("\n%s\n", table.to_string().c_str());
  std::printf("CSV:\n%s", table.to_csv().c_str());
  std::printf("\nReading: `opt` isolates the tape optimizer, `opt+fsig` is the\n"
              "engine every sampler now runs.  The acceptance bar is >= 2x\n"
              "iterations/sec over baseline on at least one family%s.\n",
              any_doubled ? " -- met" : " -- NOT met at this budget");
  if (!json.write(env)) return 1;
  return 0;
}
