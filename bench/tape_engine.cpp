// Tape-engine bench: GD iterations/sec of the vectorized engine vs the
// pre-optimization baseline, on one representative instance per benchgen
// family (same batch, same circuit), plus a scheduling-policy sweep of the
// levelized execution plan.
//
// Modes:
//   baseline   raw gate-per-gate tape, exact std::exp sigmoid, serial —
//              the pre-optimizer engine's opset and numerics
//   opt        optimized tape (copy-prop, folds, CSE, fused NOTs, DCE),
//              exact sigmoid, serial — isolates the tape optimizer
//   opt+fsig   optimized tape + fast polynomial sigmoid, serial per-tile —
//              the default engine configuration every sampler runs
//   tiles      opt+fsig dispatched per tile across the thread pool
//   level      opt+fsig on the level-parallel plan: wide levels split into
//              (tile x op-range) work items, narrow level runs fused
//
// The per-instance header reports the plan shape (level count, width
// histogram): wide-but-shallow families are where `level` can beat the
// per-tile policies, because parallelism stops being capped at batch/64.
//
// Accepts `--json <path>` (bench_common JSON schema) so the perf trajectory
// can be archived; CI's perf-smoke job runs this bench with a tiny budget
// and uploads the JSON as a workflow artifact.

#include <cstdio>

#include "bench_common.hpp"
#include "prob/compiled.hpp"
#include "prob/engine.hpp"
#include "util/timer.hpp"

namespace {

using namespace hts;

struct ModeResult {
  std::size_t iterations = 0;
  double elapsed_ms = 0.0;
  double iters_per_sec = 0.0;
};

ModeResult time_iterations(const prob::CompiledCircuit& compiled,
                           std::size_t batch, bool fast_sigmoid,
                           tensor::Policy policy, double budget_ms,
                           std::uint64_t seed) {
  prob::Engine::Config config;
  config.batch = batch;
  config.policy = policy;
  config.fast_sigmoid = fast_sigmoid;
  prob::Engine engine(compiled, config);
  util::Rng rng(seed);
  engine.randomize(rng);
  engine.run_iteration();  // warm up caches and page in the buffers

  ModeResult result;
  util::Timer timer;
  do {
    engine.run_iteration();
    ++result.iterations;
    result.elapsed_ms = timer.milliseconds();
  } while (result.elapsed_ms < budget_ms);
  result.iters_per_sec = result.elapsed_ms > 0.0
                             ? 1000.0 * static_cast<double>(result.iterations) /
                                   result.elapsed_ms
                             : 0.0;
  return result;
}

/// Compact power-of-two histogram of level widths, e.g. "1:120 2-3:40 4-7:9".
std::string width_histogram(const prob::ExecPlan& plan) {
  std::vector<std::size_t> buckets;
  for (std::size_t l = 0; l < plan.n_levels(); ++l) {
    std::size_t w = plan.width(l);
    std::size_t bucket = 0;
    while (w > 1) {
      w >>= 1;
      ++bucket;
    }
    if (bucket >= buckets.size()) buckets.resize(bucket + 1, 0);
    ++buckets[bucket];
  }
  std::string out;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    const std::size_t lo = 1ULL << b;
    const std::size_t hi = (2ULL << b) - 1;
    if (!out.empty()) out += ' ';
    out += lo == hi ? std::to_string(lo)
                    : std::to_string(lo) + "-" + std::to_string(hi);
    out += ':';
    out += std::to_string(buckets[b]);
  }
  return out.empty() ? "(empty)" : out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchEnv env;
  bench::JsonWriter json(argc, argv, "tape_engine");
  // A fraction of the sampler budget per (instance, mode) keeps the default
  // full sweep near the usual bench runtime.
  const double budget_ms = env.budget_ms / 8.0;

  std::printf("=== Tape engine: GD iterations/sec by tape and schedule ===\n");
  std::printf("budget %.0f ms per mode\n\n", budget_ms);

  const std::vector<std::string> instances = {"or-50-10-7-UC-10", "75-10-1-q",
                                              "s15850a_3_2", "Prod-8"};
  util::Table table(
      {"Instance", "Mode", "Policy", "Ops", "Iters/s", "vs base", "vs pertile"});

  bool any_doubled = false;
  for (const std::string& name : instances) {
    std::fprintf(stderr, "[tape_engine] %s ...\n", name.c_str());
    const benchgen::Instance instance = bench::make_scaled_instance(name, env);
    const std::size_t batch =
        bench::pick_batch(env, instance.formula.n_vars());

    const prob::CompiledCircuit raw(
        instance.circuit, prob::CompiledCircuit::Options{false, false});
    const prob::CompiledCircuit opt(instance.circuit);
    const prob::OptStats& stats = opt.opt_stats();
    const prob::ExecPlan& plan = opt.plan();
    auto plan_mean_width = [](const prob::ExecPlan& p) {
      return p.n_levels() > 0 ? static_cast<double>(p.n_ops()) /
                                    static_cast<double>(p.n_levels())
                              : 0.0;
    };
    const double mean_width = plan_mean_width(plan);

    const ModeResult base =
        time_iterations(raw, batch, /*fast_sigmoid=*/false,
                        tensor::Policy::kSerial, budget_ms, env.seed);
    const ModeResult opt_exact =
        time_iterations(opt, batch, /*fast_sigmoid=*/false,
                        tensor::Policy::kSerial, budget_ms, env.seed);
    const ModeResult opt_fast =
        time_iterations(opt, batch, /*fast_sigmoid=*/true,
                        tensor::Policy::kSerial, budget_ms, env.seed);
    const ModeResult opt_tiles =
        time_iterations(opt, batch, /*fast_sigmoid=*/true,
                        tensor::Policy::kDataParallel, budget_ms, env.seed);
    const ModeResult opt_level =
        time_iterations(opt, batch, /*fast_sigmoid=*/true,
                        tensor::Policy::kLevelParallel, budget_ms, env.seed);

    struct Row {
      const char* mode;
      tensor::Policy policy;
      const prob::CompiledCircuit* compiled;
      const ModeResult* result;
    };
    const Row rows[] = {
        {"baseline", tensor::Policy::kSerial, &raw, &base},
        {"opt", tensor::Policy::kSerial, &opt, &opt_exact},
        {"opt+fsig", tensor::Policy::kSerial, &opt, &opt_fast},
        {"tiles", tensor::Policy::kDataParallel, &opt, &opt_tiles},
        {"level", tensor::Policy::kLevelParallel, &opt, &opt_level}};
    for (const Row& row : rows) {
      const double speedup = base.iters_per_sec > 0.0
                                 ? row.result->iters_per_sec / base.iters_per_sec
                                 : 0.0;
      const double vs_pertile =
          opt_fast.iters_per_sec > 0.0
              ? row.result->iters_per_sec / opt_fast.iters_per_sec
              : 0.0;
      table.add_row({name, row.mode, tensor::policy_name(row.policy),
                     std::to_string(row.compiled->n_ops()),
                     util::format_grouped(row.result->iters_per_sec, 1),
                     util::format_speedup(speedup),
                     util::format_speedup(vs_pertile)});
      bench::JsonRecord record;
      record.field("instance", name)
          .field("mode", row.mode)
          .field("policy", tensor::policy_name(row.policy))
          .field("batch", batch)
          .field("ops", row.compiled->n_ops())
          .field("slots", row.compiled->n_slots())
          .field("iterations", row.result->iterations)
          .field("elapsed_ms", row.result->elapsed_ms)
          .field("iters_per_sec", row.result->iters_per_sec)
          .field("speedup_vs_baseline", speedup)
          .field("speedup_vs_pertile", vs_pertile)
          .field("tape_ops_removed", stats.ops_before - stats.ops_after)
          .field("slots_removed", stats.slots_before - stats.slots_after)
          .field("copies_propagated", stats.copies_propagated)
          .field("consts_folded", stats.consts_folded)
          .field("cse_eliminated", stats.cse_eliminated)
          .field("nots_fused", stats.nots_fused)
          .field("ops_dead", stats.ops_dead)
          .field("n_levels", row.compiled->plan().n_levels())
          .field("max_level_width", row.compiled->plan().max_width())
          .field("mean_level_width", plan_mean_width(row.compiled->plan()));
      json.add(record);
      // The optimizer acceptance bar counts serial rows only — a pooled
      // policy doubling over baseline is thread parallelism, not the tape
      // optimizer this bench exists to gate.
      if (row.policy == tensor::Policy::kSerial && speedup >= 2.0) {
        any_doubled = true;
      }
    }
    std::printf("%s: tape %zu -> %zu ops (%.1f%%); copy-prop %zu, folded %zu, "
                "cse %zu, fused %zu, dead %zu\n",
                name.c_str(), stats.ops_before, stats.ops_after,
                100.0 * static_cast<double>(stats.ops_before - stats.ops_after) /
                    static_cast<double>(stats.ops_before == 0 ? 1
                                                              : stats.ops_before),
                stats.copies_propagated, stats.consts_folded,
                stats.cse_eliminated, stats.nots_fused, stats.ops_dead);
    std::printf("  plan: %zu levels, width max %zu mean %.1f, histogram %s\n",
                plan.n_levels(), plan.max_width(), mean_width,
                width_histogram(plan).c_str());
  }

  std::printf("\n%s\n", table.to_string().c_str());
  std::printf("CSV:\n%s", table.to_csv().c_str());
  std::printf(
      "\nReading: `opt` isolates the tape optimizer, `opt+fsig` is the serial\n"
      "per-tile engine every sampler runs by default, `tiles`/`level` put the\n"
      "same tape on the thread pool.  `level` pays one barrier per wide level\n"
      "and wins on wide-but-shallow plans with multiple cores (parallelism\n"
      "scales with level width, not just batch/64 tiles); on a single\n"
      "hardware thread it degenerates to the serial plan walk, so `vs\n"
      "pertile` ~1.0x there only confirms the scheduler adds no overhead.\n"
      "The optimizer acceptance bar is >= 2x iterations/sec over baseline on\n"
      "at least one family%s.\n",
      any_doubled ? " -- met" : " -- NOT met at this budget");
  if (!json.write(env)) return 1;
  return 0;
}
