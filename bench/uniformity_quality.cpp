// Extension bench (beyond the paper's figures): distribution quality of all
// samplers on exactly-countable instances.  Quantifies the
// throughput-vs-uniformity trade the paper's related-work section discusses:
// UniGen-like should score flattest (lowest KL), the gradient sampler and
// CMSGen-like trade uniformity for speed.

#include <cstdio>
#include <memory>

#include "analysis/uniformity.hpp"
#include "baselines/walksat_sampler.hpp"
#include "bench_common.hpp"
#include "cnf/dimacs.hpp"

int main() {
  using namespace hts;
  const bench::BenchEnv env;
  const auto n_draws =
      static_cast<std::size_t>(util::env_int("HTS_BENCH_UNIFORMITY_DRAWS", 20000));

  std::printf("=== Extension: sampler distribution quality ===\n");
  std::printf("exactly-countable instances; %zu draws per sampler (duplicates "
              "kept)\n\n", n_draws);

  // Small, countable instances with interesting structure.
  struct Problem {
    const char* name;
    cnf::Formula formula;
  };
  std::vector<Problem> problems;
  problems.push_back(
      {"or2-free", cnf::parse_dimacs_string("p cnf 6 2\n1 2 0\n3 4 0\n")});
  problems.push_back(
      {"xor-chain", cnf::parse_dimacs_string(
                        "p cnf 6 8\n1 2 3 0\n1 -2 -3 0\n-1 2 -3 0\n-1 -2 3 0\n"
                        "4 5 6 0\n4 -5 -6 0\n-4 5 -6 0\n-4 -5 6 0\n")});
  problems.push_back(
      {"mux-cnf", cnf::parse_dimacs_string(
                      "p cnf 5 5\n-1 -2 4 0\n-1 2 -4 0\n1 -3 4 0\n1 3 -4 0\n"
                      "4 5 0\n")});

  util::Table table({"Instance", "Sampler", "Models", "Draws", "Distinct",
                     "Coverage", "ChiSq/df", "KL(nats)", "min/max"});

  for (const Problem& problem : problems) {
    std::vector<std::unique_ptr<sampler::Sampler>> samplers;
    {
      sampler::GradientConfig config;
      config.batch = 4096;
      samplers.push_back(std::make_unique<sampler::GradientSampler>(config));
    }
    samplers.push_back(std::make_unique<baselines::UniGenLike>());
    samplers.push_back(std::make_unique<baselines::CmsGenLike>());
    {
      baselines::DiffSamplerConfig config;
      config.batch = 4096;
      samplers.push_back(std::make_unique<baselines::DiffSampler>(config));
    }
    samplers.push_back(std::make_unique<baselines::WalkSatSampler>());

    for (const auto& s : samplers) {
      sampler::RunOptions options;
      options.min_solutions = 0;  // run to the budget, gathering draws
      options.budget_ms = env.budget_ms;
      options.store_limit = n_draws;
      options.store_all_draws = true;
      options.seed = env.seed;
      const sampler::RunResult result = s->run(problem.formula, options);
      const analysis::UniformityReport report =
          analysis::analyze_uniformity(problem.formula, result.solutions);
      const double df = report.n_models > 1
                            ? static_cast<double>(report.n_models - 1)
                            : 1.0;
      table.add_row({problem.name, s->name(),
                     std::to_string(report.n_models),
                     std::to_string(report.n_draws),
                     std::to_string(report.n_distinct),
                     util::format_fixed(report.coverage, 3),
                     util::format_fixed(report.chi_square / df, 2),
                     util::format_fixed(report.kl_divergence, 4),
                     util::format_fixed(report.min_max_ratio, 3)});
    }
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf("Reading: chi-square/df near 1 and KL near 0 indicate near-uniform\n"
              "sampling.  Expected ordering: UniGen-like flattest; the gradient\n"
              "sampler and CMSGen-like trade uniformity for raw throughput —\n"
              "the trade-off the paper's related-work section describes.\n");
  return 0;
}
