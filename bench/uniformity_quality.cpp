// Extension bench (beyond the paper's figures): distribution quality of all
// samplers on exactly-countable instances.  Quantifies the
// throughput-vs-uniformity trade the paper's related-work section discusses:
// UniGen-like should score flattest (lowest KL), the gradient sampler and
// CMSGen-like trade uniformity for speed.
//
// The gradient sampler runs twice — flip amplification off and on — so the
// bench JSON records how much uniformity the word-parallel amplifier costs
// (mutants cluster around harvested bases, so some skew is expected; the
// trajectory tracks that it stays bounded while throughput multiplies).
//
// Accepts `--json <path>` to mirror the result rows machine-readably (see
// bench_common.hpp's JsonWriter).

#include <cstdio>
#include <memory>
#include <string>

#include "analysis/uniformity.hpp"
#include "baselines/walksat_sampler.hpp"
#include "bench_common.hpp"
#include "cnf/dimacs.hpp"

int main(int argc, char** argv) {
  using namespace hts;
  const bench::BenchEnv env;
  bench::JsonWriter json(argc, argv, "uniformity_quality");
  const auto n_draws =
      static_cast<std::size_t>(util::env_int("HTS_BENCH_UNIFORMITY_DRAWS", 20000));

  std::printf("=== Extension: sampler distribution quality ===\n");
  std::printf("exactly-countable instances; %zu draws per sampler (duplicates "
              "kept)\n\n", n_draws);

  // Small, countable instances with interesting structure.
  struct Problem {
    const char* name;
    cnf::Formula formula;
  };
  std::vector<Problem> problems;
  problems.push_back(
      {"or2-free", cnf::parse_dimacs_string("p cnf 6 2\n1 2 0\n3 4 0\n")});
  problems.push_back(
      {"xor-chain", cnf::parse_dimacs_string(
                        "p cnf 6 8\n1 2 3 0\n1 -2 -3 0\n-1 2 -3 0\n-1 -2 3 0\n"
                        "4 5 6 0\n4 -5 -6 0\n-4 5 -6 0\n-4 -5 6 0\n")});
  problems.push_back(
      {"mux-cnf", cnf::parse_dimacs_string(
                      "p cnf 5 5\n-1 -2 4 0\n-1 2 -4 0\n1 -3 4 0\n1 3 -4 0\n"
                      "4 5 0\n")});

  util::Table table({"Instance", "Sampler", "Models", "Draws", "Distinct",
                     "Coverage", "ChiSq/df", "KL(nats)", "min/max"});

  for (const Problem& problem : problems) {
    struct Entry {
      std::unique_ptr<sampler::Sampler> sampler;
      bool amplify = false;
    };
    std::vector<Entry> entries;
    {
      sampler::GradientConfig config;
      config.batch = 4096;
      entries.push_back(
          {std::make_unique<sampler::GradientSampler>(config), false});
      config.amplify.enabled = true;
      entries.push_back(
          {std::make_unique<sampler::GradientSampler>(config), true});
    }
    entries.push_back({std::make_unique<baselines::UniGenLike>(), false});
    entries.push_back({std::make_unique<baselines::CmsGenLike>(), false});
    {
      baselines::DiffSamplerConfig config;
      config.batch = 4096;
      entries.push_back({std::make_unique<baselines::DiffSampler>(config), false});
    }
    entries.push_back({std::make_unique<baselines::WalkSatSampler>(), false});

    for (const Entry& entry : entries) {
      const std::string label =
          entry.sampler->name() + (entry.amplify ? "+amp" : "");
      sampler::RunOptions options;
      options.min_solutions = 0;  // run to the budget, gathering draws
      options.budget_ms = env.budget_ms;
      options.store_limit = n_draws;
      options.store_all_draws = true;
      options.seed = env.seed;
      const sampler::RunResult result =
          entry.sampler->run(problem.formula, options);
      const analysis::UniformityReport report =
          analysis::analyze_uniformity(problem.formula, result.solutions);
      const double df = report.n_models > 1
                            ? static_cast<double>(report.n_models - 1)
                            : 1.0;
      table.add_row({problem.name, label,
                     std::to_string(report.n_models),
                     std::to_string(report.n_draws),
                     std::to_string(report.n_distinct),
                     util::format_fixed(report.coverage, 3),
                     util::format_fixed(report.chi_square / df, 2),
                     util::format_fixed(report.kl_divergence, 4),
                     util::format_fixed(report.min_max_ratio, 3)});
      bench::JsonRecord record;
      record.field("instance", problem.name)
          .field("sampler", label)
          .field("amplify", entry.amplify)
          .field("n_models", report.n_models)
          .field("draws", report.n_draws)
          .field("distinct", report.n_distinct)
          .field("coverage", report.coverage)
          .field("chi_square_per_df", report.chi_square / df)
          .field("kl_nats", report.kl_divergence)
          .field("min_max_ratio", report.min_max_ratio);
      json.add(record);
    }
  }

  std::printf("%s\n", table.to_string().c_str());

  // --- projected-space quality ------------------------------------------
  // Each instance gets a 'c ind'-style sampling set; draws are scored over
  // the *projected* space (distinct classes counted by BDD quantification).
  // The gradient sampler runs with projected dedup (the default once the
  // formula declares a set) and again with the diversity objective, so the
  // JSON tracks what diversity restarts buy in projected coverage.
  struct ProjectedCase {
    const char* instance;
    std::vector<cnf::Var> sampling_set;
  };
  const std::vector<ProjectedCase> projected_cases = {
      {"or2-free", {0, 1, 2}},
      {"xor-chain", {0, 1, 3}},
      {"mux-cnf", {0, 3, 4}},
  };
  util::Table proj_table({"Instance", "Mode", "Classes", "Draws", "Distinct",
                          "Coverage", "ChiSq/df", "KL(nats)", "min/max"});
  for (const ProjectedCase& pc : projected_cases) {
    const Problem* base = nullptr;
    for (const Problem& problem : problems) {
      if (std::string(problem.name) == pc.instance) base = &problem;
    }
    if (base == nullptr) continue;
    cnf::Formula formula = base->formula;
    formula.set_sampling_set(pc.sampling_set);

    for (const bool diversity : {false, true}) {
      sampler::GradientConfig config;
      config.batch = 4096;
      config.diversity_restart = diversity;
      sampler::GradientSampler grad(config);
      sampler::RunOptions options;
      options.min_solutions = 0;
      options.budget_ms = env.budget_ms;
      options.store_limit = n_draws;
      options.store_all_draws = true;
      options.seed = env.seed;
      const sampler::RunResult result = grad.run(formula, options);
      const analysis::UniformityReport report =
          analysis::analyze_projected_uniformity(formula, pc.sampling_set,
                                                 result.solutions);
      const double df = report.n_models > 1
                            ? static_cast<double>(report.n_models - 1)
                            : 1.0;
      const std::string mode_label =
          diversity ? "projected+div" : "projected";
      proj_table.add_row({pc.instance, mode_label,
                          std::to_string(report.n_models),
                          std::to_string(report.n_draws),
                          std::to_string(report.n_distinct),
                          util::format_fixed(report.coverage, 3),
                          util::format_fixed(report.chi_square / df, 2),
                          util::format_fixed(report.kl_divergence, 4),
                          util::format_fixed(report.min_max_ratio, 3)});
      bench::JsonRecord record;
      record.field("mode", "projected")
          .field("instance", pc.instance)
          .field("sampler", "HTS-GD")
          .field("diversity", diversity)
          .field("set_size", pc.sampling_set.size())
          .field("n_models", report.n_models)
          .field("draws", report.n_draws)
          .field("distinct", report.n_distinct)
          .field("n_unique", result.n_unique)
          .field("coverage", report.coverage)
          .field("chi_square_per_df", report.chi_square / df)
          .field("kl_nats", report.kl_divergence)
          .field("min_max_ratio", report.min_max_ratio)
          .field("n_invalid", report.n_invalid);
      json.add(record);
    }
  }
  std::printf("%s\n", proj_table.to_string().c_str());

  std::printf("Reading: chi-square/df near 1 and KL near 0 indicate near-uniform\n"
              "sampling.  Expected ordering: UniGen-like flattest; the gradient\n"
              "sampler and CMSGen-like trade uniformity for raw throughput —\n"
              "the trade-off the paper's related-work section describes.  The\n"
              "amplified gradient run shows what the flip mutants cost on top.\n");
  if (!json.write(env)) return 1;
  return 0;
}
