// Circuit extraction demo: runs Algorithm 1 on a CNF and prints the
// recovered multi-level, multi-output Boolean function — the repo's
// equivalent of the paper's Fig. 1(a) -> Fig. 1(b) step — together with the
// op-reduction statistics of Fig. 4 (middle).
//
//   ./circuit_extraction [instance.cnf]

#include <cstdio>
#include <string>

#include "benchgen/families.hpp"
#include "cnf/dimacs.hpp"
#include "transform/transform.hpp"

namespace {

const char* role_name(hts::transform::VarRole role) {
  using hts::transform::VarRole;
  switch (role) {
    case VarRole::kPrimaryInput:
      return "primary input";
    case VarRole::kIntermediate:
      return "intermediate";
    case VarRole::kPrimaryOutput:
      return "primary output";
    case VarRole::kUnseen:
      return "free";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hts;

  cnf::Formula formula;
  std::string source;
  if (argc > 1) {
    formula = cnf::parse_dimacs_file(argv[1]);
    source = argv[1];
  } else {
    // Default: a small instance of the paper's q-family (the family its
    // Eq. 5 example comes from).
    const benchgen::Instance instance = benchgen::make_instance("75-10-1-q");
    formula = instance.formula;
    source = instance.name + " (generated)";
  }

  std::printf("CNF %s: %u variables, %zu clauses\n", source.c_str(),
              formula.n_vars(), formula.n_clauses());

  const transform::Result result = transform::transform_cnf(formula);
  const auto& stats = result.stats;

  std::printf("\n=== Algorithm 1 result ===\n");
  std::printf("transformation time        : %.2f ms\n", stats.transform_ms);
  std::printf("gate definitions recovered : %zu\n", stats.n_gate_definitions);
  std::printf("constant promotions (POs)  : %zu\n", stats.n_const_promotions);
  std::printf("flushed (aux) blocks       : %zu\n", stats.n_flushed_blocks);
  std::printf("CNF ops (2-input equiv)    : %llu\n",
              static_cast<unsigned long long>(stats.cnf_ops));
  std::printf("circuit ops (2-input equiv): %llu\n",
              static_cast<unsigned long long>(stats.circuit_ops));
  std::printf("ops reduction              : %.2fx\n", stats.ops_reduction());

  const circuit::Circuit& c = result.circuit;
  std::printf("\n=== circuit ===\n");
  std::printf("primary inputs : %zu\n", c.n_inputs());
  std::printf("gates          : %zu\n", c.n_gates());
  std::printf("outputs        : %zu (constrained)\n", c.outputs().size());
  std::printf("logic depth    : %u\n", c.depth());

  // Constrained vs unconstrained split (Fig. 1(b)'s red/blue paths).
  const auto cone = c.constrained_cone();
  std::size_t constrained_inputs = 0;
  for (const auto input : c.inputs()) {
    if (cone[input] != 0) ++constrained_inputs;
  }
  std::printf("inputs on constrained paths   : %zu\n", constrained_inputs);
  std::printf("inputs on unconstrained paths : %zu\n",
              c.n_inputs() - constrained_inputs);

  // Variable role summary.
  std::size_t n_pi = 0;
  std::size_t n_iv = 0;
  std::size_t n_po = 0;
  for (const auto role : result.roles) {
    n_pi += role == transform::VarRole::kPrimaryInput;
    n_iv += role == transform::VarRole::kIntermediate;
    n_po += role == transform::VarRole::kPrimaryOutput;
  }
  std::printf("\nvariable roles: %zu primary inputs, %zu intermediates, "
              "%zu primary outputs\n",
              n_pi, n_iv, n_po);

  // For small instances, print the gate list like Fig. 1(c).
  if (c.n_signals() <= 48) {
    std::printf("\n=== netlist ===\n");
    for (circuit::SignalId sid = 0; sid < c.n_signals(); ++sid) {
      const circuit::Gate& gate = c.gate(sid);
      std::printf("  %-10s %-6s", c.name(sid).empty() ? ("s" + std::to_string(sid)).c_str()
                                                      : c.name(sid).c_str(),
                  circuit::gate_type_name(gate.type));
      for (const auto fanin : gate.fanins) {
        std::printf(" %s", c.name(fanin).empty()
                               ? ("s" + std::to_string(fanin)).c_str()
                               : c.name(fanin).c_str());
      }
      std::printf("\n");
    }
    std::printf("\nvariable roles (first 14):\n");
    for (cnf::Var v = 0; v < std::min<cnf::Var>(14, formula.n_vars()); ++v) {
      std::printf("  x%-3u : %s\n", v + 1, role_name(result.roles[v]));
    }
  }
  return 0;
}
