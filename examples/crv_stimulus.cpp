// Constrained-random verification (CRV) stimulus generation — the paper's
// motivating hardware-verification use case.
//
// Scenario: a DUT ALU command decoder accepts a 24-bit command word, but
// legal commands must satisfy interface constraints (one-hot mode field,
// opcode/mode compatibility, parity).  The testbench needs *many diverse
// legal commands per second*.  We express the constraints as a circuit,
// Tseitin-encode them, and let the gradient sampler mass-produce stimuli;
// a coverage report shows how well the samples spread over the legal space.
//
//   ./crv_stimulus [n_stimuli]

#include <cstdio>
#include <map>
#include <string>

#include "circuit/circuit.hpp"
#include "circuit/tseitin.hpp"
#include "core/gradient_sampler.hpp"

namespace {

using namespace hts;
using circuit::GateType;
using circuit::SignalId;

struct CommandWord {
  // Bit layout of the 24-bit command.
  std::vector<SignalId> mode;    // 4 bits, must be one-hot
  std::vector<SignalId> opcode;  // 4 bits
  std::vector<SignalId> payload; // 15 bits
  SignalId parity;               // 1 bit, even parity over the whole word
};

/// Builds the constraint circuit; returns the "legal" signal.
SignalId build_constraints(circuit::Circuit& c, CommandWord& cmd) {
  for (int i = 0; i < 4; ++i) cmd.mode.push_back(c.add_input("mode" + std::to_string(i)));
  for (int i = 0; i < 4; ++i) cmd.opcode.push_back(c.add_input("op" + std::to_string(i)));
  for (int i = 0; i < 15; ++i) cmd.payload.push_back(c.add_input("p" + std::to_string(i)));
  cmd.parity = c.add_input("parity");

  // (1) mode is one-hot: OR of modes AND no pair set.
  const SignalId any_mode = c.add_gate(GateType::kOr, cmd.mode);
  std::vector<SignalId> pair_free;
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) {
      pair_free.push_back(c.add_gate(GateType::kNand, {cmd.mode[i], cmd.mode[j]}));
    }
  }
  pair_free.push_back(any_mode);
  const SignalId one_hot = c.add_gate(GateType::kAnd, pair_free);

  // (2) opcode/mode compatibility: mode3 (debug) only allows opcodes with
  // op3 = 0; mode0 (idle) requires opcode == 0.
  const SignalId debug_ok =
      c.add_gate(GateType::kNand, {cmd.mode[3], cmd.opcode[3]});
  const SignalId op_any = c.add_gate(GateType::kOr, cmd.opcode);
  const SignalId idle_ok = c.add_gate(GateType::kNand, {cmd.mode[0], op_any});

  // (3) even parity over all 24 bits.
  std::vector<SignalId> all_bits;
  for (const auto s : cmd.mode) all_bits.push_back(s);
  for (const auto s : cmd.opcode) all_bits.push_back(s);
  for (const auto s : cmd.payload) all_bits.push_back(s);
  all_bits.push_back(cmd.parity);
  const SignalId parity_bit = c.add_gate(GateType::kXor, all_bits);
  const SignalId parity_ok = c.add_gate(GateType::kNot, {parity_bit});

  return c.add_gate(GateType::kAnd, {one_hot, debug_ok, idle_ok, parity_ok});
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n_stimuli =
      argc > 1 ? static_cast<std::size_t>(std::stoul(argv[1])) : 5000;

  circuit::Circuit dut;
  CommandWord cmd;
  const SignalId legal = build_constraints(dut, cmd);
  dut.add_output(legal, true);

  const circuit::TseitinResult enc = circuit::tseitin_encode(dut);
  std::printf("constraint CNF: %u vars, %zu clauses\n", enc.formula.n_vars(),
              enc.formula.n_clauses());

  sampler::GradientConfig config;
  config.batch = 8192;
  sampler::GradientSampler sampler(config);
  sampler::RunOptions options;
  options.min_solutions = n_stimuli;
  options.budget_ms = 20000.0;
  options.store_limit = n_stimuli;
  const sampler::RunResult result = sampler.run(enc.formula, options);

  std::printf("generated %zu unique legal commands in %.1f ms (%.0f/s)\n\n",
              result.n_unique, result.elapsed_ms, result.throughput());

  // Coverage report: every mode x opcode-class bin a verification plan would
  // track.  Diverse samplers fill all bins; a biased one leaves holes.
  std::map<std::string, std::size_t> bins;
  std::size_t checked = 0;
  for (const cnf::Assignment& solution : result.solutions) {
    auto bit = [&](SignalId s) { return solution[enc.signal_var[s]] != 0; };
    int mode = -1;
    for (int i = 0; i < 4; ++i) {
      if (bit(cmd.mode[i])) mode = i;
    }
    int opcode = 0;
    for (int i = 0; i < 4; ++i) opcode |= bit(cmd.opcode[i]) ? (1 << i) : 0;
    bins["mode" + std::to_string(mode) + "/op" +
         (opcode == 0 ? std::string("0") : opcode < 8 ? "1-7" : "8-15")]++;
    ++checked;
  }
  std::printf("coverage over %zu stored stimuli:\n", checked);
  for (const auto& [bin, count] : bins) {
    std::printf("  %-14s %6zu (%.1f%%)\n", bin.c_str(), count,
                100.0 * static_cast<double>(count) / static_cast<double>(checked));
  }
  // Legal-space sanity: mode0 forces op0, so mode0/op>0 bins must be absent.
  if (bins.contains("mode0/op1-7") || bins.contains("mode0/op8-15")) {
    std::printf("\nERROR: sampler produced an illegal mode0 command!\n");
    return 1;
  }
  std::printf("\nall stimuli satisfy the interface constraints.\n");
  return 0;
}
