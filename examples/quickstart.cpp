// Quickstart: load a CNF (from a file or a built-in demo), sample satisfying
// assignments with the gradient sampler, and print them.
//
//   ./quickstart [instance.cnf] [n_samples]
//
// This is the smallest end-to-end use of the public API:
//   parse -> GradientSampler::run -> RunResult.

#include <cstdio>
#include <string>

#include "cnf/dimacs.hpp"
#include "core/gradient_sampler.hpp"
#include "util/table.hpp"

namespace {

/// The paper's Fig. 1(a) example instance (14 vars, 21 clauses): two MUX
/// chains, one constrained to 1.
const char* kDemoCnf =
    "c Fig. 1(a) demo instance from the paper\n"
    "p cnf 14 21\n"
    "-1 -2 0\n1 2 0\n"
    "-2 3 0\n2 -3 0\n"
    "-3 4 0\n3 -4 0\n"
    "-4 -11 5 0\n-4 11 -5 0\n4 -12 5 0\n4 12 -5 0\n"
    "-6 7 0\n6 -7 0\n"
    "-7 8 0\n7 -8 0\n"
    "-8 -9 0\n8 9 0\n"
    "-9 -13 10 0\n-9 13 -10 0\n9 -14 10 0\n9 14 -10 0\n"
    "10 0\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace hts;

  cnf::Formula formula;
  if (argc > 1) {
    formula = cnf::parse_dimacs_file(argv[1]);
    std::printf("loaded %s: %u variables, %zu clauses\n", argv[1],
                formula.n_vars(), formula.n_clauses());
  } else {
    formula = cnf::parse_dimacs_string(kDemoCnf);
    std::printf("using the built-in Fig. 1 demo instance (%u vars, %zu clauses)\n",
                formula.n_vars(), formula.n_clauses());
  }
  const std::size_t n_samples =
      argc > 2 ? static_cast<std::size_t>(std::stoul(argv[2])) : 10;

  sampler::GradientConfig config;  // paper defaults: lr=10, 5 iterations
  config.batch = 4096;
  sampler::GradientSampler sampler(config);

  sampler::RunOptions options;
  options.min_solutions = n_samples;
  options.budget_ms = 10000.0;
  options.store_limit = n_samples;

  const sampler::RunResult result = sampler.run(formula, options);

  if (result.proven_unsat) {
    std::printf("instance is UNSAT — nothing to sample\n");
    return 1;
  }
  std::printf("\n%zu unique solutions in %.2f ms (%.0f solutions/s); "
              "transformation took %.2f ms\n\n",
              result.n_unique, result.elapsed_ms, result.throughput(),
              result.setup_ms);

  for (std::size_t i = 0; i < result.solutions.size(); ++i) {
    std::printf("solution %2zu: ", i + 1);
    for (cnf::Var v = 0; v < formula.n_vars(); ++v) {
      std::printf("%s%d", result.solutions[i][v] != 0 ? "" : "-",
                  static_cast<int>(v) + 1);
      if (v + 1 < formula.n_vars()) std::printf(" ");
    }
    std::printf("\n");
  }
  return 0;
}
