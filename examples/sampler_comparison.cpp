// Side-by-side sampler comparison on one benchmark instance — a one-row
// preview of the paper's Table II.
//
//   ./sampler_comparison [instance-name] [budget-ms]
//
// Instance names follow the paper's grammar (or-50-10-7-UC-10, 75-10-1-q,
// s15850a_3_2, Prod-8, ...); the instance is synthesized by hts::benchgen.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "baselines/cmsgen_like.hpp"
#include "baselines/diff_sampler.hpp"
#include "baselines/unigen_like.hpp"
#include "baselines/walksat_sampler.hpp"
#include "benchgen/families.hpp"
#include "core/gradient_sampler.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hts;

  const std::string name = argc > 1 ? argv[1] : "or-50-10-7-UC-10";
  const double budget_ms = argc > 2 ? std::stod(argv[2]) : 2000.0;

  std::printf("synthesizing instance %s ...\n", name.c_str());
  const benchgen::Instance instance = benchgen::make_instance(name);
  std::printf("  %zu circuit inputs, %zu outputs, CNF: %u vars, %zu clauses\n\n",
              instance.circuit.n_inputs(), instance.circuit.outputs().size(),
              instance.formula.n_vars(), instance.formula.n_clauses());

  std::vector<std::unique_ptr<sampler::Sampler>> samplers;
  samplers.push_back(std::make_unique<sampler::GradientSampler>());
  samplers.push_back(std::make_unique<baselines::UniGenLike>());
  samplers.push_back(std::make_unique<baselines::CmsGenLike>());
  samplers.push_back(std::make_unique<baselines::DiffSampler>());
  samplers.push_back(std::make_unique<baselines::WalkSatSampler>());

  util::Table table({"Sampler", "Unique", "Valid", "Time(ms)", "Setup(ms)",
                     "Throughput(sol/s)"});
  double best = 0.0;
  for (const auto& s : samplers) {
    sampler::RunOptions options;
    options.min_solutions = 1000;
    options.budget_ms = budget_ms;
    options.seed = 42;
    const sampler::RunResult result = s->run(instance.formula, options);
    best = std::max(best, result.throughput());
    table.add_row({result.sampler_name.empty() ? s->name() : result.sampler_name,
                   std::to_string(result.n_unique), std::to_string(result.n_valid),
                   util::format_fixed(result.elapsed_ms, 1),
                   util::format_fixed(result.setup_ms, 1),
                   util::format_grouped(result.throughput(), 1)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("best throughput: %s unique solutions/s\n",
              util::format_grouped(best, 1).c_str());
  return 0;
}
