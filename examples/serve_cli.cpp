// serve_cli: drive the in-process sampling service with a batch of jobs.
//
//   ./serve_cli [--workers N] [--admission] [--amplify] [--project]
//               [--fault SPEC] [--metrics [FILE]] [--trace FILE]
//               [jobspec-file]
//
// --admission turns on deadline-aware admission control (infeasible requests
// come back `rejected` at submit, before any compile); --amplify turns on
// word-parallel flip amplification for every job (the Amp column then counts
// the uniques the amplifier contributed); --project turns on projected
// dedup + the diversity restart objective for every job — jobs whose DIMACS
// carries a `c ind` sampling set then dedup on the projection and the Div
// column counts diversity-restarted rows (jobs without a set are
// unaffected); --fault arms the deterministic fault injector with SPEC
// (same grammar as HTS_FAULT_SPEC, e.g.
// 'compile:every=3;slice:every=5:kind=transient') so the failure paths in
// the table below can be exercised from the command line.
//
// Observability: --metrics enables the telemetry registry and, after the
// fleet drains, emits the Prometheus text exposition (to FILE when the next
// argument names one, else to stdout); --trace FILE enables per-job span
// tracing and writes a Chrome trace-event JSON loadable in Perfetto (one
// track per worker, one async track per job covering submit -> finalize).
// Both flags must take effect before the Server is constructed, and neither
// perturbs the sampled streams (see README "Observability").
//
// Each non-comment line of the jobspec file is one request:
//
//   <instance> <target> <deadline_ms> [seed] [client]
//
// where <instance> is either a path to a DIMACS .cnf file or '@name' for a
// built-in benchgen instance (e.g. @or-50-10-7-UC-10, @75-10-1-q,
// @s15850a_3_2, @Prod-8), <target> is the unique-solution goal (0 = run to
// the deadline), and <deadline_ms> is the per-job budget (0 = none).
// Without a file, a built-in demo batch of mixed-family clients runs.
//
// All jobs are submitted up front — the point of the service layer — and
// stream their unique solutions concurrently; the CLI prints a live
// completion log and a final per-job accounting table.

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "benchgen/families.hpp"
#include "cnf/dimacs.hpp"
#include "service/server.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "util/table.hpp"

namespace {

using namespace hts;

struct JobSpec {
  std::string instance;
  std::size_t target = 1000;
  double deadline_ms = 0.0;
  std::uint64_t seed = 0x5eed;
  std::uint64_t client = 0;
};

const char* kDemoSpec =
    "# instance            target  deadline_ms  seed  client\n"
    "@or-50-10-7-UC-10     500     0            1     0\n"
    "@or-50-10-7-UC-10     500     0            2     0\n"
    "@75-10-1-q            800     0            3     1\n"
    "@75-10-1-q            800     0            4     1\n"
    "@s15850a_3_2          400     10000        5     2\n"
    "@s15850a_3_2          400     10000        6     2\n"
    "@75-10-1-q            0       1500         7     3\n";

std::vector<JobSpec> parse_specs(std::istream& in) {
  std::vector<JobSpec> specs;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    JobSpec spec;
    if (!(fields >> spec.instance >> spec.target >> spec.deadline_ms)) {
      std::fprintf(stderr, "skipping malformed jobspec line: %s\n", line.c_str());
      continue;
    }
    fields >> spec.seed >> spec.client;  // optional; defaults stand
    specs.push_back(std::move(spec));
  }
  return specs;
}

cnf::Formula load_formula(const std::string& instance) {
  if (!instance.empty() && instance[0] == '@') {
    return benchgen::make_instance(instance.substr(1), {}).formula;
  }
  return cnf::parse_dimacs_file(instance);
}

/// One cell summarizing a job's error, empty when it finished clean:
/// "category@site: message" is exactly what an operator greps logs for.
std::string error_cell(const service::ErrorInfo& error) {
  if (error.ok()) return "-";
  std::string cell = service::error_category_name(error.category);
  if (!error.site.empty()) cell += "@" + error.site;
  if (!error.message.empty()) cell += ": " + error.message;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n_workers = 0;  // hardware
  std::string spec_path;
  std::string fault_spec;
  std::string metrics_path;
  std::string trace_path;
  bool admission = false;
  bool amplify = false;
  bool project = false;
  bool metrics = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--workers" && i + 1 < argc) {
      n_workers = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (arg == "--fault" && i + 1 < argc) {
      fault_spec = argv[++i];
    } else if (arg == "--admission") {
      admission = true;
    } else if (arg == "--amplify") {
      amplify = true;
    } else if (arg == "--project") {
      project = true;
    } else if (arg == "--metrics") {
      metrics = true;
      // Optional output file: consume the next argument unless it is a flag
      // or the (sole) jobspec positional at the end.
      if (i + 1 < argc && argv[i + 1][0] != '-' && i + 2 < argc) {
        metrics_path = argv[++i];
      }
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else {
      spec_path = arg;
    }
  }
  // Enable telemetry before the Server (and its workers) exist so every
  // record site sees the flag from the first slice on.
  if (metrics) telemetry::set_metrics_enabled(true);
  if (!trace_path.empty()) telemetry::set_trace_enabled(true);

  std::vector<JobSpec> specs;
  if (spec_path.empty()) {
    std::printf("no jobspec file given - running the built-in demo batch\n");
    std::istringstream demo(kDemoSpec);
    specs = parse_specs(demo);
  } else {
    std::ifstream file(spec_path);
    if (!file) {
      std::fprintf(stderr, "cannot read %s\n", spec_path.c_str());
      return 1;
    }
    specs = parse_specs(file);
  }
  if (specs.empty()) {
    std::fprintf(stderr, "no jobs to run\n");
    return 1;
  }

  service::ServerConfig server_config{.n_workers = n_workers};
  server_config.fault_spec = fault_spec;
  server_config.admission.enabled = admission;
  service::Server server(std::move(server_config));
  std::printf("service up: %zu workers, %zu jobs%s%s%s%s\n\n",
              server.n_workers(), specs.size(),
              admission ? ", admission control on" : "",
              amplify ? ", flip amplification on" : "",
              project ? ", projected sampling on" : "",
              server.fault_injector().armed() ? ", fault injector armed" : "");

  struct Submitted {
    JobSpec spec;
    service::JobHandle handle;
  };
  std::vector<Submitted> jobs;
  jobs.reserve(specs.size());
  for (JobSpec& spec : specs) {
    service::SamplingRequest request;
    try {
      request.formula = load_formula(spec.instance);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "skipping %s: %s\n", spec.instance.c_str(),
                   error.what());
      continue;
    }
    request.seed = spec.seed;
    request.client_id = spec.client;
    request.target_uniques = spec.target;
    request.deadline_ms = spec.deadline_ms;
    request.config.batch = 2048;
    request.config.amplify.enabled = amplify;
    if (project) {
      // Dedup on the formula's own `c ind` set (no-op without one) and
      // re-seed rows whose projection is already banked at each restart.
      request.config.projected_dedup = true;
      request.config.diversity_restart = true;
    }
    jobs.push_back(Submitted{spec, server.submit(std::move(request))});
  }

  // Wait in submission order; print as each job lands.  (Completions happen
  // in scheduler order, not submission order — the table below is the
  // consolidated view.)
  util::Table table({"Job", "Client", "Instance", "Status", "Unique", "Amp",
                     "Div", "Wait(ms)", "Wall(ms)", "Cache", "Error"});
  for (const Submitted& job : jobs) {
    const service::JobStatus status = job.handle.wait();
    const service::JobStats stats = job.handle.stats();
    std::printf("job %llu (%s) -> %s: %zu uniques in %.1f ms\n",
                static_cast<unsigned long long>(job.handle.id()),
                job.spec.instance.c_str(), service::job_status_name(status),
                stats.n_unique, stats.wall_ms);
    table.add_row({std::to_string(job.handle.id()),
                   std::to_string(job.spec.client), job.spec.instance,
                   service::job_status_name(status),
                   std::to_string(stats.n_unique),
                   std::to_string(stats.amplified_uniques),
                   std::to_string(stats.diversity_restarted_rows),
                   util::format_fixed(stats.queue_wait_ms, 1),
                   util::format_fixed(stats.wall_ms, 1),
                   stats.plan_cache_hit ? "hit" : "miss",
                   error_cell(stats.error)});
  }

  const service::ServerStats stats = server.stats();
  const service::PlanCache::Stats cache = server.plan_cache_stats();
  std::printf("\n%s\n", table.to_string().c_str());
  std::printf("fleet: %llu jobs, %llu completed, %llu expired, %llu failed, "
              "%llu rejected, %llu retried; plan cache %llu hits / %llu misses\n",
              static_cast<unsigned long long>(stats.submitted),
              static_cast<unsigned long long>(stats.completed),
              static_cast<unsigned long long>(stats.deadline_expired),
              static_cast<unsigned long long>(stats.failed),
              static_cast<unsigned long long>(stats.rejected),
              static_cast<unsigned long long>(stats.retried),
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.misses));

  if (metrics) {
    // Pull the same snapshot an embedding process would poll live; the
    // Prometheus rendering is what a /metrics endpoint will serve.
    const service::StatsSnapshot snapshot = server.stats_snapshot();
    if (metrics_path.empty()) {
      std::printf("\n%s", snapshot.metrics_prometheus.c_str());
    } else {
      std::ofstream out(metrics_path);
      out << snapshot.metrics_prometheus;
      std::printf("metrics written to %s\n", metrics_path.c_str());
    }
  }
  if (!trace_path.empty()) {
    // Every job finalized above, so every async track is closed; quiesce the
    // workers before draining the per-thread rings.
    server.shutdown();
    telemetry::TraceSink::global().write_chrome_json(trace_path);
    std::printf("trace written to %s (load in ui.perfetto.dev)\n",
                trace_path.c_str());
  }
  return 0;
}
