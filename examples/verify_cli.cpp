// verify_cli: lints a CNF's compiled artifacts with the plan-IR verifier.
//
//   ./verify_cli <instance.cnf | benchgen-name>
//
// An argument naming an existing file is parsed as DIMACS and transformed
// (Algorithm 1) into a circuit; anything else is treated as a benchgen
// family name ("Prod-8", "or-50-10-7-UC-10", ...).  The circuit is then
// compiled every way the samplers compile it — raw tape, optimized tape,
// optimized constrained-cone tape, and the word-parallel EvalPlan — and
// each artifact runs through the full verifier rule set.  Exit status 0
// means every plan is well-formed; any diagnostic prints and fails the run,
// so the binary doubles as a CI lint step (see verify_cli_smoke in
// CMakeLists.txt).

#include <cstdio>
#include <filesystem>
#include <string>

#include "benchgen/families.hpp"
#include "circuit/eval_plan.hpp"
#include "cnf/dimacs.hpp"
#include "prob/compiled.hpp"
#include "transform/transform.hpp"
#include "verify/plan_verifier.hpp"

namespace {

using namespace hts;

bool report_exec(const char* label, const prob::CompiledCircuit& compiled) {
  const verify::Report report = verify::verify_exec_plan(compiled);
  const prob::OptStats& stats = compiled.opt_stats();
  std::printf("%-22s %6zu ops  %5zu slots  %4zu levels  %5zu runs : %s\n",
              label, compiled.n_ops(), compiled.n_slots(), stats.n_levels,
              stats.n_opcode_runs, report.ok() ? "ok" : "FAILED");
  if (!report.ok()) std::printf("%s\n", report.to_string().c_str());
  return report.ok();
}

bool report_eval(const char* label, const circuit::EvalPlan& plan) {
  const verify::Report report = verify::verify_eval_plan(plan);
  const circuit::EvalPlanStats& stats = plan.stats();
  std::printf("%-22s %6zu ops  %5zu slots  %4zu levels  %5zu runs : %s\n",
              label, stats.n_ops, plan.n_slots(), stats.n_levels,
              stats.n_runs, report.ok() ? "ok" : "FAILED");
  if (!report.ok()) std::printf("%s\n", report.to_string().c_str());
  return report.ok();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <instance.cnf | benchgen-name>\n",
                 argv[0]);
    return 2;
  }
  const std::string target = argv[1];

  // The constructor self-check hooks would abort on the first violation;
  // keep them off so this tool reports *all* diagnostics and exits cleanly.
  verify::set_verify_plans(false);

  circuit::Circuit circuit;
  if (std::filesystem::exists(target)) {
    const cnf::Formula formula = cnf::parse_dimacs_file(target);
    std::printf("loaded %s: %u variables, %zu clauses\n", target.c_str(),
                formula.n_vars(), formula.n_clauses());
    transform::Result problem = transform::transform_cnf(formula, {});
    std::printf("transformed: %zu inputs, %zu outputs, %zu signals\n",
                problem.circuit.inputs().size(),
                problem.circuit.outputs().size(),
                static_cast<std::size_t>(problem.circuit.n_signals()));
    circuit = std::move(problem.circuit);
  } else {
    benchgen::Instance instance = benchgen::make_instance(target);
    std::printf("generated %s (%s family): %zu inputs, %zu outputs, %zu "
                "signals\n",
                instance.name.c_str(), instance.family.c_str(),
                instance.circuit.inputs().size(),
                instance.circuit.outputs().size(),
                static_cast<std::size_t>(instance.circuit.n_signals()));
    circuit = std::move(instance.circuit);
  }

  using Options = prob::CompiledCircuit::Options;
  bool ok = true;
  ok = report_exec("tape (raw)",
                   prob::CompiledCircuit(circuit, Options{false, false})) &&
       ok;
  ok = report_exec("tape (optimized)",
                   prob::CompiledCircuit(circuit, Options{false, true})) &&
       ok;
  ok = report_exec("tape (cone, optimized)",
                   prob::CompiledCircuit(circuit, Options{true, true})) &&
       ok;
  ok = report_eval("eval plan (word)", circuit::EvalPlan(circuit)) && ok;

  std::printf("%s\n", ok ? "all plans verified" : "plan verification FAILED");
  return ok ? 0 : 1;
}
