// HDL-to-stimulus flow (the DEMOTIC-style workflow from the paper's related
// work): parse a gate-level Verilog netlist, constrain its outputs, and
// sample satisfying input vectors directly from the circuit — no CNF round
// trip.  Also dumps the netlist back out to show the writer.
//
//   ./verilog_sampler [netlist.v] [n_samples]
//
// Without arguments a built-in priority-arbiter netlist is used: the
// constraint "grant2 must fire" forces req2 high and req0/req1 low — the
// sampler must discover that while freely randomizing the enable logic.

#include <cstdio>
#include <string>

#include "core/circuit_sampler.hpp"
#include "verilog/verilog.hpp"

namespace {

/// A 3-way priority arbiter with an enable tree plus a free datapath
/// parity cone.  Constraining grant2 pins the request/enable inputs (the
/// constrained paths); the d0-d2 parity cone stays unconstrained, so the
/// sampler free-randomizes it — the paper's Fig. 1(b) red/blue path split
/// in miniature.
const char* kArbiterNetlist = R"(
// priority arbiter + datapath parity, gate level
module arbiter (req0, req1, req2, en_a, en_b, d0, d1, d2,
                grant0, grant1, dpar, grant2);
  input req0, req1, req2, en_a, en_b, d0, d1, d2;
  output grant0, grant1, dpar, grant2;
  wire en, nreq0, nreq1, g1pre, g2pre, g2pre2, dx;
  and ge (en, en_a, en_b);
  and g0 (grant0, req0, en);
  not n0 (nreq0, req0);
  and gp1 (g1pre, req1, nreq0);
  and g1 (grant1, g1pre, en);
  not n1 (nreq1, req1);
  and gp2 (g2pre, req2, nreq1);
  and gp3 (g2pre2, g2pre, nreq0);
  and g2 (grant2, g2pre2, en);
  xor dx1 (dx, d0, d1);
  xor dx2 (dpar, dx, d2);
endmodule
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace hts;

  verilog::Module module;
  if (argc > 1) {
    module = verilog::parse_file(argv[1]);
    std::printf("parsed %s: module %s\n", argv[1], module.name.c_str());
  } else {
    module = verilog::parse_module(kArbiterNetlist);
    std::printf("using the built-in '%s' netlist\n", module.name.c_str());
  }
  const std::size_t n_samples =
      argc > 2 ? static_cast<std::size_t>(std::stoul(argv[2])) : 8;

  std::printf("  inputs : %zu (", module.input_names.size());
  for (std::size_t i = 0; i < module.input_names.size(); ++i) {
    std::printf("%s%s", i > 0 ? ", " : "", module.input_names[i].c_str());
  }
  std::printf(")\n  outputs: %zu\n", module.output_names.size());

  // Constraint: the *last* declared output must be 1 (for the arbiter:
  // grant2 fires), everything else is free.
  const circuit::SignalId target = module.output_ports.back();
  module.circuit.add_output(target, true);
  std::printf("  constraint: %s == 1\n\n", module.output_names.back().c_str());

  sampler::CircuitSampler sampler(module.circuit);
  sampler::RunOptions options;
  options.min_solutions = n_samples;
  options.budget_ms = 10000.0;
  options.store_limit = n_samples;
  const sampler::RunResult result = sampler.run(options);

  if (result.n_unique == 0) {
    std::printf("constraint unsatisfiable within budget\n");
    return 1;
  }
  std::printf("%zu unique stimuli in %.2f ms (%.0f/s):\n\n", result.n_unique,
              result.elapsed_ms, result.throughput());
  std::printf("  ");
  for (const std::string& name : module.input_names) std::printf("%6s", name.c_str());
  std::printf("\n");
  for (const cnf::Assignment& stimulus : result.solutions) {
    std::printf("  ");
    for (const std::uint8_t bit : stimulus) std::printf("%6d", bit);
    std::printf("\n");
  }

  std::printf("\n--- netlist round trip (writer output) ---\n%s",
              verilog::write_module(module.circuit, module.name + "_rt").c_str());
  return 0;
}
