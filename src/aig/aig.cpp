#include "aig/aig.hpp"

#include <algorithm>

namespace hts::aig {

Lit Aig::add_input() {
  const auto node = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(Node{0, 0});
  inputs_.push_back(node);
  return node << 1;
}

Lit Aig::land(Lit a, Lit b) {
  // Normalize operand order for the strash key.
  if (a > b) std::swap(a, b);
  // Boundary cases.
  if (a == kLitFalse) return kLitFalse;
  if (a == kLitTrue) return b;
  if (a == b) return a;
  if (a == lit_not(b)) return kLitFalse;

  const std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) | b;
  if (const auto it = strash_.find(key); it != strash_.end()) {
    return it->second << 1;
  }
  const auto node = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(Node{a, b});
  strash_.emplace(key, node);
  return node << 1;
}

bool Aig::eval(Lit lit, const std::vector<std::uint8_t>& input_values) const {
  HTS_CHECK(input_values.size() == inputs_.size());
  std::vector<std::uint8_t> value(nodes_.size(), 0);
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    value[inputs_[i]] = input_values[i] != 0 ? 1 : 0;
  }
  // Nodes are created in topological order.
  for (std::uint32_t n = 1; n < nodes_.size(); ++n) {
    if (is_input(n)) continue;
    const Node& node = nodes_[n];
    const bool f0 = (value[lit_node(node.fanin0)] != 0) ^ lit_complemented(node.fanin0);
    const bool f1 = (value[lit_node(node.fanin1)] != 0) ^ lit_complemented(node.fanin1);
    value[n] = (f0 && f1) ? 1 : 0;
  }
  return (value[lit_node(lit)] != 0) ^ lit_complemented(lit);
}

namespace {

using circuit::Circuit;
using circuit::GateType;
using circuit::SignalId;

/// Lowers one circuit gate onto AIG literals.
Lit lower_gate(Aig& aig, const circuit::Gate& gate, const std::vector<Lit>& lit_of) {
  auto fanin = [&](std::size_t i) { return lit_of[gate.fanins[i]]; };
  switch (gate.type) {
    case GateType::kInput:
      HTS_CHECK_MSG(false, "inputs are pre-seeded");
      return kLitFalse;
    case GateType::kConst0:
      return kLitFalse;
    case GateType::kConst1:
      return kLitTrue;
    case GateType::kBuf:
      return fanin(0);
    case GateType::kNot:
      return lit_not(fanin(0));
    case GateType::kAnd:
    case GateType::kNand: {
      Lit acc = kLitTrue;
      for (std::size_t i = 0; i < gate.fanins.size(); ++i) acc = aig.land(acc, fanin(i));
      return gate.type == GateType::kNand ? lit_not(acc) : acc;
    }
    case GateType::kOr:
    case GateType::kNor: {
      Lit acc = kLitFalse;
      for (std::size_t i = 0; i < gate.fanins.size(); ++i) acc = aig.lor(acc, fanin(i));
      return gate.type == GateType::kNor ? lit_not(acc) : acc;
    }
    case GateType::kXor:
    case GateType::kXnor: {
      Lit acc = kLitFalse;
      for (std::size_t i = 0; i < gate.fanins.size(); ++i) acc = aig.lxor(acc, fanin(i));
      return gate.type == GateType::kXnor ? lit_not(acc) : acc;
    }
  }
  return kLitFalse;
}

}  // namespace

OptimizeResult optimize_with_aig(const Circuit& original) {
  OptimizeResult result;
  Aig aig;

  // Forward pass: circuit signal -> AIG literal (strashing dedupes).
  std::vector<Lit> lit_of(original.n_signals(), kLitFalse);
  for (const SignalId input : original.inputs()) lit_of[input] = aig.add_input();
  for (SignalId s = 0; s < original.n_signals(); ++s) {
    if (original.is_input(s)) continue;
    lit_of[s] = lower_gate(aig, original.gate(s), lit_of);
  }

  // Backward pass: materialize one circuit signal per referenced AIG node.
  Circuit& rebuilt = result.circuit;
  std::vector<SignalId> node_signal(aig.n_nodes(), circuit::kNoSignal);
  SignalId const0 = circuit::kNoSignal;
  for (const SignalId input : original.inputs()) {
    node_signal[lit_node(lit_of[input])] = rebuilt.add_input(original.name(input));
  }
  auto ensure_const0 = [&] {
    if (const0 == circuit::kNoSignal) const0 = rebuilt.add_const(false);
    return const0;
  };
  // AND nodes were created in topological order; rebuild in node order.
  for (std::uint32_t n = 1; n < aig.n_nodes(); ++n) {
    if (aig.is_input(n) || node_signal[n] != circuit::kNoSignal) continue;
    const Aig::Node& node = aig.node(n);
    auto signal_of_lit = [&](Lit lit) -> SignalId {
      SignalId s = lit_node(lit) == 0 ? ensure_const0() : node_signal[lit_node(lit)];
      HTS_DCHECK(s != circuit::kNoSignal);
      if (lit_complemented(lit)) s = rebuilt.add_gate(GateType::kNot, {s});
      return s;
    };
    const SignalId a = signal_of_lit(node.fanin0);
    const SignalId b = signal_of_lit(node.fanin1);
    node_signal[n] = rebuilt.add_gate(GateType::kAnd, {a, b});
  }

  // Map every original signal to its representative (inserting inverters /
  // constants for complemented or constant literals).
  result.signal_map.assign(original.n_signals(), circuit::kNoSignal);
  std::unordered_map<Lit, SignalId> lit_signal_cache;
  for (SignalId s = 0; s < original.n_signals(); ++s) {
    const Lit lit = lit_of[s];
    if (const auto it = lit_signal_cache.find(lit); it != lit_signal_cache.end()) {
      result.signal_map[s] = it->second;
      continue;
    }
    SignalId mapped = circuit::kNoSignal;
    if (lit == kLitFalse) {
      mapped = ensure_const0();
    } else if (lit == kLitTrue) {
      mapped = rebuilt.add_gate(GateType::kNot, {ensure_const0()});
    } else {
      mapped = node_signal[lit_node(lit)];
      HTS_DCHECK(mapped != circuit::kNoSignal);
      if (lit_complemented(lit)) {
        mapped = rebuilt.add_gate(GateType::kNot, {mapped});
      }
    }
    lit_signal_cache.emplace(lit, mapped);
    result.signal_map[s] = mapped;
  }

  // Carry over the output constraints.
  for (const circuit::OutputConstraint& out : original.outputs()) {
    rebuilt.add_output(result.signal_map[out.signal], out.target);
  }

  result.ands_before = original.op_count_2input(/*count_nots=*/false);
  result.ands_after = aig.n_ands();
  return result;
}

}  // namespace hts::aig
