#pragma once

// And-Inverter Graph with structural hashing.
//
// The paper notes its extracted multi-level functions "can be further
// optimized by leveraging other techniques [ABC, DAG-aware rewriting,
// don't-care-based optimization]".  This module implements that hook: a
// classic strashed AIG with constant propagation and common-subexpression
// elimination, plus lossless round-trips from/to the circuit IR so the
// optimization can sit between Algorithm 1 and the probabilistic compiler.
//
// Literal encoding follows AIGER: lit = 2*node + complement; node 0 is the
// constant-false node, so lit 0 = false and lit 1 = true.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "circuit/circuit.hpp"
#include "util/check.hpp"

namespace hts::aig {

using Lit = std::uint32_t;

inline constexpr Lit kLitFalse = 0;
inline constexpr Lit kLitTrue = 1;

[[nodiscard]] constexpr Lit lit_not(Lit lit) { return lit ^ 1u; }
[[nodiscard]] constexpr std::uint32_t lit_node(Lit lit) { return lit >> 1; }
[[nodiscard]] constexpr bool lit_complemented(Lit lit) { return (lit & 1u) != 0; }

class Aig {
 public:
  Aig() {
    // Node 0: constant false.
    nodes_.push_back(Node{0, 0});
  }

  /// Fresh primary input; returns its positive literal.
  Lit add_input();

  /// Strashed AND with the standard simplifications (constants, idempotence,
  /// complement annihilation); returns an existing literal when the
  /// structure is already present.
  [[nodiscard]] Lit land(Lit a, Lit b);

  [[nodiscard]] Lit lor(Lit a, Lit b) { return lit_not(land(lit_not(a), lit_not(b))); }
  [[nodiscard]] Lit lxor(Lit a, Lit b) {
    return lor(land(a, lit_not(b)), land(lit_not(a), b));
  }

  [[nodiscard]] std::size_t n_nodes() const { return nodes_.size(); }
  [[nodiscard]] std::size_t n_inputs() const { return inputs_.size(); }
  /// AND nodes only (the AIG size metric).
  [[nodiscard]] std::size_t n_ands() const {
    return nodes_.size() - inputs_.size() - 1;
  }

  [[nodiscard]] bool is_input(std::uint32_t node) const {
    return node != 0 && nodes_[node].fanin0 == 0 && nodes_[node].fanin1 == 0;
  }

  struct Node {
    Lit fanin0;
    Lit fanin1;
  };
  [[nodiscard]] const Node& node(std::uint32_t index) const { return nodes_[index]; }
  [[nodiscard]] const std::vector<std::uint32_t>& inputs() const { return inputs_; }

  /// Evaluates a literal under input values (indexed like inputs()).
  [[nodiscard]] bool eval(Lit lit, const std::vector<std::uint8_t>& input_values) const;

 private:
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> inputs_;
  std::unordered_map<std::uint64_t, std::uint32_t> strash_;
};

/// Result of an AIG round-trip optimization of a circuit.
struct OptimizeResult {
  circuit::Circuit circuit;
  /// old signal -> new signal (every old signal keeps a representative, so
  /// transform::Result::var_signal maps can be rewritten).
  std::vector<circuit::SignalId> signal_map;
  std::size_t ands_before = 0;  // 2-input-equivalent ops before
  std::size_t ands_after = 0;   // AND nodes after strashing
};

/// circuit -> AIG (strash, constant-fold, CSE) -> circuit of AND/NOT gates.
/// Inputs keep their order; output constraints are carried over.  The
/// result is logically equivalent signal-by-signal.
[[nodiscard]] OptimizeResult optimize_with_aig(const circuit::Circuit& circuit);

}  // namespace hts::aig
