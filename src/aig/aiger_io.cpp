#include "aig/aiger_io.hpp"

#include <sstream>
#include <unordered_map>

namespace hts::aig {

namespace {

/// Renumbering for the writer: our node index -> aiger variable index.
struct Renumber {
  std::vector<std::uint32_t> node_to_var;

  explicit Renumber(const Aig& aig) : node_to_var(aig.n_nodes(), 0) {
    std::uint32_t next = 1;
    for (const std::uint32_t input : aig.inputs()) node_to_var[input] = next++;
    for (std::uint32_t n = 1; n < aig.n_nodes(); ++n) {
      if (!aig.is_input(n)) node_to_var[n] = next++;
    }
  }

  [[nodiscard]] std::uint32_t map_lit(Lit lit) const {
    return (node_to_var[lit_node(lit)] << 1) | (lit & 1u);
  }
};

}  // namespace

std::string write_aiger(const Aig& aig, const std::vector<Lit>& outputs,
                        const std::vector<std::string>& input_names,
                        const std::vector<std::string>& output_names) {
  const Renumber renumber(aig);
  const std::size_t n_inputs = aig.n_inputs();
  const std::size_t n_ands = aig.n_ands();
  const std::size_t max_var = n_inputs + n_ands;

  std::ostringstream out;
  out << "aag " << max_var << ' ' << n_inputs << " 0 " << outputs.size() << ' '
      << n_ands << '\n';
  for (const std::uint32_t input : aig.inputs()) {
    out << (renumber.node_to_var[input] << 1) << '\n';
  }
  for (const Lit output : outputs) out << renumber.map_lit(output) << '\n';
  for (std::uint32_t n = 1; n < aig.n_nodes(); ++n) {
    if (aig.is_input(n)) continue;
    const Aig::Node& node = aig.node(n);
    out << (renumber.node_to_var[n] << 1) << ' ' << renumber.map_lit(node.fanin0)
        << ' ' << renumber.map_lit(node.fanin1) << '\n';
  }
  for (std::size_t i = 0; i < input_names.size() && i < n_inputs; ++i) {
    if (!input_names[i].empty()) out << 'i' << i << ' ' << input_names[i] << '\n';
  }
  for (std::size_t i = 0; i < output_names.size() && i < outputs.size(); ++i) {
    if (!output_names[i].empty()) out << 'o' << i << ' ' << output_names[i] << '\n';
  }
  out << "c\nwritten by hts-sat-sampling\n";
  return out.str();
}

AigerModule parse_aiger(const std::string& text) {
  std::istringstream in(text);
  std::string magic;
  std::size_t max_var = 0;
  std::size_t n_inputs = 0;
  std::size_t n_latches = 0;
  std::size_t n_outputs = 0;
  std::size_t n_ands = 0;
  if (!(in >> magic >> max_var >> n_inputs >> n_latches >> n_outputs >> n_ands)) {
    throw AigerError("malformed header");
  }
  if (magic != "aag") throw AigerError("only ASCII 'aag' files are supported");
  if (n_latches != 0) throw AigerError("latches are not supported");
  if (max_var < n_inputs + n_ands) throw AigerError("inconsistent header counts");

  AigerModule module;
  // aiger var index -> our literal; folded ANDs may legitimately map to
  // constants, so definedness is tracked separately.
  std::vector<Lit> var_lit(max_var + 1, kLitFalse);
  std::vector<std::uint8_t> var_defined(max_var + 1, 0);

  std::vector<std::uint32_t> input_vars;
  for (std::size_t i = 0; i < n_inputs; ++i) {
    std::uint64_t lit = 0;
    if (!(in >> lit)) throw AigerError("missing input literal");
    if (lit == 0 || (lit & 1u) != 0) throw AigerError("input literal must be even");
    const auto var = static_cast<std::uint32_t>(lit >> 1);
    if (var > max_var) throw AigerError("input variable out of range");
    input_vars.push_back(var);
    var_lit[var] = module.aig.add_input();
    var_defined[var] = 1;
  }

  std::vector<std::uint64_t> raw_outputs(n_outputs);
  for (auto& lit : raw_outputs) {
    if (!(in >> lit)) throw AigerError("missing output literal");
    if ((lit >> 1) > max_var) throw AigerError("output literal out of range");
  }

  struct RawAnd {
    std::uint32_t lhs_var;
    std::uint64_t rhs0;
    std::uint64_t rhs1;
  };
  std::vector<RawAnd> raw_ands;
  raw_ands.reserve(n_ands);
  for (std::size_t i = 0; i < n_ands; ++i) {
    std::uint64_t lhs = 0;
    std::uint64_t rhs0 = 0;
    std::uint64_t rhs1 = 0;
    if (!(in >> lhs >> rhs0 >> rhs1)) throw AigerError("missing AND row");
    if ((lhs & 1u) != 0 || lhs == 0) throw AigerError("AND lhs must be even");
    raw_ands.push_back(RawAnd{static_cast<std::uint32_t>(lhs >> 1), rhs0, rhs1});
  }

  // AIGER requires fanins to be defined before use, so one pass suffices.
  auto to_lit = [&](std::uint64_t aiger_lit) -> Lit {
    if (aiger_lit <= 1) return aiger_lit == 0 ? kLitFalse : kLitTrue;
    const auto var = static_cast<std::uint32_t>(aiger_lit >> 1);
    if (var_defined[var] == 0) {
      throw AigerError("fanin " + std::to_string(aiger_lit) +
                       " referenced before definition");
    }
    const Lit base = var_lit[var];
    return (aiger_lit & 1u) != 0 ? lit_not(base) : base;
  };
  for (const RawAnd& row : raw_ands) {
    var_lit[row.lhs_var] = module.aig.land(to_lit(row.rhs0), to_lit(row.rhs1));
    var_defined[row.lhs_var] = 1;
  }
  for (const std::uint64_t lit : raw_outputs) module.outputs.push_back(to_lit(lit));

  // Optional symbol table.
  module.input_names.assign(n_inputs, "");
  module.output_names.assign(n_outputs, "");
  std::string token;
  while (in >> token) {
    if (token == "c") break;  // comment section: ignore the rest
    if (token.size() >= 2 && (token[0] == 'i' || token[0] == 'o')) {
      std::size_t index = 0;
      try {
        index = std::stoul(token.substr(1));
      } catch (const std::exception&) {
        throw AigerError("bad symbol-table entry '" + token + "'");
      }
      std::string name;
      if (!(in >> name)) throw AigerError("symbol entry missing name");
      if (token[0] == 'i' && index < n_inputs) module.input_names[index] = name;
      if (token[0] == 'o' && index < n_outputs) module.output_names[index] = name;
      continue;
    }
    throw AigerError("unexpected trailer token '" + token + "'");
  }
  return module;
}

}  // namespace hts::aig
