#pragma once

// ASCII AIGER (aag) reader/writer for the AIG.
//
// AIGER is the lingua franca of the open-source logic-synthesis world
// (ABC, the aiger utilities, hardware model checkers).  Emitting it lets
// users push the circuits extracted by Algorithm 1 through external
// optimizers — the exact workflow the paper points at when it says the
// extracted functions "can be further optimized" with ABC-style tools —
// and pull the results back in for sampling.
//
// Supported subset: combinational aag (no latches), with an optional
// symbol table and comment section.

#include <stdexcept>
#include <string>
#include <vector>

#include "aig/aig.hpp"

namespace hts::aig {

class AigerError : public std::runtime_error {
 public:
  explicit AigerError(const std::string& message)
      : std::runtime_error("aiger: " + message) {}
};

struct AigerModule {
  Aig aig;
  /// Output literals, in file order.
  std::vector<Lit> outputs;
  std::vector<std::string> input_names;   // empty strings when unnamed
  std::vector<std::string> output_names;
};

/// Serializes to ASCII AIGER.  Nodes are renumbered to the AIGER convention
/// (inputs 1..I, ANDs I+1..I+A in topological order).
[[nodiscard]] std::string write_aiger(const Aig& aig, const std::vector<Lit>& outputs,
                                      const std::vector<std::string>& input_names = {},
                                      const std::vector<std::string>& output_names = {});

/// Parses an ASCII AIGER file (combinational only; latches are rejected).
[[nodiscard]] AigerModule parse_aiger(const std::string& text);

}  // namespace hts::aig
