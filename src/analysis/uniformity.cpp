#include "analysis/uniformity.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "bdd/bdd.hpp"
#include "bdd/builder.hpp"
#include "util/check.hpp"

namespace hts::analysis {

UniformityReport analyze_uniformity(const cnf::Formula& formula,
                                    const std::vector<cnf::Assignment>& draws,
                                    std::size_t bdd_node_limit) {
  return analyze_projected_uniformity(formula, {}, draws, bdd_node_limit);
}

UniformityReport analyze_projected_uniformity(
    const cnf::Formula& formula, std::vector<cnf::Var> sampling_set,
    const std::vector<cnf::Assignment>& draws, std::size_t bdd_node_limit) {
  UniformityReport report;

  // Normalize the set the same way the sampler does (sorted, deduped,
  // out-of-range dropped); empty means "all variables" — the identity
  // projection, bit-identical to the original full-space analysis.
  std::sort(sampling_set.begin(), sampling_set.end());
  sampling_set.erase(std::unique(sampling_set.begin(), sampling_set.end()),
                     sampling_set.end());
  sampling_set.erase(
      std::remove_if(sampling_set.begin(), sampling_set.end(),
                     [&](cnf::Var v) {
                       return v == cnf::kInvalidVar ||
                              static_cast<std::size_t>(v) >=
                                  static_cast<std::size_t>(formula.n_vars());
                     }),
      sampling_set.end());
  if (sampling_set.empty()) {
    sampling_set.resize(formula.n_vars());
    for (cnf::Var v = 0; v < formula.n_vars(); ++v) sampling_set[v] = v;
  }

  bdd::Manager mgr(formula.n_vars(), bdd_node_limit);
  bdd::NodeId space = bdd::build_from_cnf(mgr, formula);

  // Quantify the non-set variables out.  satcount still ranges over all
  // n_vars assignments, so after quantification every projected class is
  // counted once per assignment of the (now don't-care) quantified
  // variables — divide by 2^quantified to get the class count.  Both
  // operands are exact powers-of-two scaled doubles, so the division is
  // exact whenever the class count fits the checked 9e15 budget.
  std::size_t n_quantified = 0;
  if (sampling_set.size() < static_cast<std::size_t>(formula.n_vars())) {
    std::vector<bool> in_set(formula.n_vars(), false);
    for (const cnf::Var v : sampling_set) in_set[v] = true;
    for (cnf::Var v = 0; v < formula.n_vars(); ++v) {
      if (!in_set[v]) {
        space = mgr.exists(space, v);
        ++n_quantified;
      }
    }
  }
  const double count =
      mgr.satcount(space) / std::pow(2.0, static_cast<double>(n_quantified));
  HTS_CHECK_MSG(count < 9e15, "solution space too large for exact analysis");
  report.n_models = static_cast<std::uint64_t>(count);

  // Histogram over packed *projected* assignments (bit j = sampling_set[j]).
  struct VecHash {
    std::size_t operator()(const std::vector<std::uint64_t>& key) const noexcept {
      std::uint64_t h = 0xcbf29ce484222325ULL;
      for (const std::uint64_t w : key) {
        h ^= w;
        h *= 0x100000001b3ULL;
      }
      return static_cast<std::size_t>(h);
    }
  };
  std::unordered_map<std::vector<std::uint64_t>, std::size_t, VecHash> histogram;
  const std::size_t n_words = (sampling_set.size() + 63) / 64;
  for (const cnf::Assignment& draw : draws) {
    if (!formula.satisfied_by(draw)) {
      ++report.n_invalid;
      continue;
    }
    std::vector<std::uint64_t> key(n_words, 0);
    for (std::size_t j = 0; j < sampling_set.size(); ++j) {
      if (draw[sampling_set[j]] != 0) key[j >> 6] |= (1ULL << (j & 63));
    }
    ++histogram[key];
    ++report.n_draws;
  }
  report.n_distinct = histogram.size();
  if (report.n_models > 0) {
    report.coverage = static_cast<double>(report.n_distinct) /
                      static_cast<double>(report.n_models);
  }
  if (report.n_draws == 0 || report.n_models == 0) return report;

  const double expected = static_cast<double>(report.n_draws) /
                          static_cast<double>(report.n_models);
  double chi = 0.0;
  double kl = 0.0;
  std::size_t min_freq = static_cast<std::size_t>(-1);
  std::size_t max_freq = 0;
  for (const auto& [key, freq] : histogram) {
    const double diff = static_cast<double>(freq) - expected;
    chi += diff * diff / expected;
    const double p = static_cast<double>(freq) / static_cast<double>(report.n_draws);
    kl += p * std::log(p * static_cast<double>(report.n_models));
    min_freq = std::min(min_freq, freq);
    max_freq = std::max(max_freq, freq);
  }
  // Unobserved solutions contribute (0 - expected)^2 / expected each.
  const double unobserved =
      static_cast<double>(report.n_models) - static_cast<double>(report.n_distinct);
  chi += unobserved * expected;
  report.chi_square = chi;
  report.kl_divergence = kl;
  report.min_max_ratio = max_freq > 0 ? static_cast<double>(min_freq) /
                                            static_cast<double>(max_freq)
                                      : 0.0;
  return report;
}

}  // namespace hts::analysis
