#pragma once

// Sampler-quality analysis: how close is a sampler's output distribution to
// uniform over the solution space?
//
// The paper's baselines span the uniformity spectrum (UniGen3 guarantees
// near-uniformity; CMSGen and the gradient sampler trade it away for
// throughput).  This module quantifies the trade on exactly-countable
// instances: the solution space is enumerated through the BDD package, and
// the sampler's draw stream is scored with standard statistics (chi-square
// against uniform, KL divergence, coverage, min/max frequency ratio) — the
// methodology of sampler-testing work like Barbarik (Pote et al.).

#include <cstdint>
#include <vector>

#include "cnf/formula.hpp"

namespace hts::analysis {

struct UniformityReport {
  std::uint64_t n_models = 0;   // exact solution count
  std::size_t n_draws = 0;      // samples analyzed (duplicates included)
  std::size_t n_distinct = 0;   // distinct solutions observed
  double coverage = 0.0;        // n_distinct / n_models

  /// Pearson chi-square statistic of the draw histogram against the uniform
  /// distribution over all n_models solutions (df = n_models - 1).
  double chi_square = 0.0;

  /// KL(empirical || uniform) in nats; 0 for a perfectly uniform stream.
  double kl_divergence = 0.0;

  /// min observed frequency / max observed frequency among *observed*
  /// solutions (1.0 = flat; small = spiky).
  double min_max_ratio = 0.0;

  /// Draws that were not solutions of the formula (must be 0 for sound
  /// samplers).
  std::size_t n_invalid = 0;
};

/// Scores a draw stream against the formula's exact solution space.
/// Requires the formula's BDD to fit in `bdd_node_limit` nodes; throws
/// bdd::CapacityError otherwise.  Intended for small analysis instances.
[[nodiscard]] UniformityReport analyze_uniformity(
    const cnf::Formula& formula, const std::vector<cnf::Assignment>& draws,
    std::size_t bdd_node_limit = 1u << 20);

/// Scores a draw stream against the formula's solution space *projected*
/// onto `sampling_set` (0-based variables; empty means all variables, which
/// is exactly analyze_uniformity).  Draws are full assignments: validity is
/// still checked against the whole formula, then the histogram keys on the
/// projection only, and n_models counts distinct projected classes —
/// computed by existentially quantifying the non-set variables out of the
/// formula's BDD.  This is the quality metric for projected sampling: a
/// stream with perfect full-space uniformity can still be badly skewed over
/// the projection when class sizes differ.
[[nodiscard]] UniformityReport analyze_projected_uniformity(
    const cnf::Formula& formula, std::vector<cnf::Var> sampling_set,
    const std::vector<cnf::Assignment>& draws,
    std::size_t bdd_node_limit = 1u << 20);

}  // namespace hts::analysis
