#include "baselines/cmsgen_like.hpp"

#include "core/unique_bank.hpp"
#include "util/timer.hpp"

namespace hts::baselines {

sampler::RunResult CmsGenLike::run(const cnf::Formula& formula,
                                   const sampler::RunOptions& options) {
  sampler::RunResult result;
  result.sampler_name = name();

  util::Timer setup_timer;
  solver::CdclConfig solver_config;
  solver_config.polarity = solver::CdclConfig::Polarity::kRandom;
  solver_config.random_decision_freq = config_.random_decision_freq;
  solver_config.seed = options.seed;
  solver::CdclSolver solver(solver_config);
  solver.add_formula(formula);
  result.setup_ms = setup_timer.milliseconds();

  util::Rng rng(options.seed ^ 0xc35e6e5aULL);
  util::Deadline deadline(options.budget_ms);
  util::Timer timer;
  sampler::UniqueBank bank(formula.n_vars());

  std::size_t since_reshuffle = 0;
  while (!deadline.expired()) {
    if (options.min_solutions > 0 && bank.size() >= options.min_solutions) break;
    const solver::Status status = solver.solve({}, &deadline);
    if (status == solver::Status::kUnsat) {
      result.proven_unsat = bank.size() == 0 && result.n_valid == 0;
      break;
    }
    if (status == solver::Status::kUnknown) break;  // deadline hit mid-search
    const cnf::Assignment& model = solver.model();
    ++result.n_valid;
    if (options.verify_against_cnf && !formula.satisfied_by(model)) {
      ++result.n_invalid;
    }
    const bool is_new = bank.insert_bits(model);
    if (is_new || options.store_all_draws) {
      if (result.solutions.size() < options.store_limit) {
        result.solutions.push_back(model);
      }
    }
    if (is_new) {
      result.progress.push_back(
          sampler::ProgressPoint{timer.milliseconds(), bank.size()});
    }
    // Restart-with-fresh-randomization after every solution is what turns
    // the solver into a (non-uniform but diverse) sampler.
    if (++since_reshuffle >= config_.reshuffle_period) since_reshuffle = 0;
    solver.reshuffle(rng.next_u64());
  }

  result.n_unique = bank.size();
  result.elapsed_ms = timer.milliseconds();
  result.timed_out = options.min_solutions > 0 && result.n_unique < options.min_solutions;
  return result;
}

}  // namespace hts::baselines
