#pragma once

// CMSGen-style baseline: a CDCL solver turned into a sampler by
// randomization alone (Golia et al., FMCAD'21: random polarities, random
// decision mixing, restart after every solution, no uniformity guarantee).
// Fast but CPU-sequential — the behaviour the paper's Table II column shows.

#include "core/sampler.hpp"
#include "solver/cdcl.hpp"

namespace hts::baselines {

struct CmsGenConfig {
  /// Fraction of branching decisions taken at random.
  double random_decision_freq = 0.15;
  /// Reshuffle activities/phases every this many solutions (diversity).
  std::size_t reshuffle_period = 32;
};

class CmsGenLike : public sampler::Sampler {
 public:
  explicit CmsGenLike(CmsGenConfig config = {}) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "CMSGen-like"; }
  [[nodiscard]] sampler::RunResult run(const cnf::Formula& formula,
                                       const sampler::RunOptions& options) override;

 private:
  CmsGenConfig config_;
};

}  // namespace hts::baselines
