#include "baselines/diff_sampler.hpp"

#include "util/timer.hpp"

namespace hts::baselines {

FlatProblem build_flat_problem(const cnf::Formula& formula) {
  FlatProblem problem;
  problem.var_signal.resize(formula.n_vars());
  // Inputs: one per original variable.
  for (cnf::Var v = 0; v < formula.n_vars(); ++v) {
    problem.var_signal[v] =
        problem.circuit.add_input("x" + std::to_string(v + 1));
  }
  // Shared inverters per variable (built lazily).
  std::vector<circuit::SignalId> negated(formula.n_vars(), circuit::kNoSignal);
  auto literal_signal = [&](cnf::Lit lit) {
    if (!lit.negated()) return problem.var_signal[lit.var()];
    circuit::SignalId& slot = negated[lit.var()];
    if (slot == circuit::kNoSignal) {
      slot = problem.circuit.add_gate(circuit::GateType::kNot,
                                      {problem.var_signal[lit.var()]});
    }
    return slot;
  };
  for (const cnf::Clause& clause : formula.clauses()) {
    std::vector<circuit::SignalId> fanins;
    fanins.reserve(clause.size());
    for (const cnf::Lit lit : clause) fanins.push_back(literal_signal(lit));
    const circuit::SignalId out =
        clause.size() == 1
            ? fanins[0]
            : problem.circuit.add_gate(circuit::GateType::kOr, std::move(fanins));
    problem.circuit.add_output(out, true);
  }
  return problem;
}

sampler::RunResult DiffSampler::run(const cnf::Formula& formula,
                                    const sampler::RunOptions& options) {
  util::Timer setup_timer;
  const FlatProblem problem = build_flat_problem(formula);
  const double setup_ms = setup_timer.milliseconds();

  sampler::GdProblem gd_problem;
  gd_problem.circuit = &problem.circuit;
  gd_problem.var_signal = &problem.var_signal;
  // Flat problem: input i IS variable i, so the identity default of
  // GdProblem::input_vars applies.
  if (formula.has_sampling_set()) {
    // Copied by value (the problem owns its set); already normalized by
    // Formula::set_sampling_set.
    gd_problem.sampling_set = formula.sampling_set();
  }

  sampler::GdLoopConfig loop_config;
  loop_config.batch = config_.batch;
  loop_config.iterations = config_.iterations;
  loop_config.learning_rate = config_.learning_rate;
  loop_config.init_std = config_.init_std;
  loop_config.policy = config_.policy;
  loop_config.n_workers = config_.n_workers;
  loop_config.restart_solved = config_.restart_solved;
  loop_config.restart_plateau = config_.restart_plateau;
  loop_config.fast_sigmoid = config_.fast_sigmoid;
  loop_config.amplify = config_.amplify;
  loop_config.projected_dedup = config_.projected_dedup;
  loop_config.diversity_restart = config_.diversity_restart;
  loop_config.lit_weights = config_.lit_weights;

  sampler::RunResult result =
      run_gd_loop(gd_problem, formula, options, loop_config, nullptr);
  result.sampler_name = name();
  result.setup_ms = setup_ms;
  return result;
}

}  // namespace hts::baselines
