#pragma once

// DiffSampler-style baseline (Ardakani et al., DAC'24 late-breaking): batched
// gradient descent directly on the *flat CNF* relaxation — every clause
// becomes an OR gate constrained to 1, with no multi-level extraction.
//
// Runs on the exact same tensor/prob kernels as the paper's sampler, so the
// throughput gap between the two isolates the contribution of the CNF ->
// multi-level transformation (more ops per pass + a much harder loss
// landscape for the flat form).

#include "core/gd_loop.hpp"
#include "core/sampler.hpp"

namespace hts::baselines {

struct DiffSamplerConfig {
  std::size_t batch = 4096;
  /// Flat-CNF GD needs more iterations to zero in than the circuit form;
  /// the original DiffSampler runs tens of optimizer steps.
  int iterations = 20;
  float learning_rate = 10.0f;
  float init_std = 2.0f;
  tensor::Policy policy = tensor::Policy::kDataParallel;
  /// Round-parallel workers (see GdLoopConfig::n_workers) — the DEMOTIC-style
  /// baseline scales the same way the paper's sampler does.
  std::size_t n_workers = 1;
  /// Solved-row restarts (see GdLoopConfig::restart_solved).
  bool restart_solved = true;
  /// Plateau restarts in harvest windows; 0 disables (see
  /// GdLoopConfig::restart_plateau).  The flat-CNF landscape is exactly
  /// where stuck basins show up, so this knob matters most here.
  std::size_t restart_plateau = 0;
  /// Vectorized fast sigmoid for the embed step (see Engine::Config).
  bool fast_sigmoid = true;
  /// Flip-amplify freshly banked solutions after every harvest (see
  /// sampler::AmplifyConfig; the formula's 'c ind' set scopes the flips).
  sampler::AmplifyConfig amplify;
  /// Key unique solutions on the sampling-set projection when the formula
  /// declares a 'c ind' set (see GdLoopConfig::projected_dedup).
  bool projected_dedup = true;
  /// Re-seed rows descending into already-banked projected classes (see
  /// GdLoopConfig::diversity_restart).
  bool diversity_restart = false;
  /// Per-literal loss weights (see sampler::LitWeight).
  std::vector<sampler::LitWeight> lit_weights;
};

/// Builds the flat problem: inputs = original variables, one OR gate per
/// clause, every clause constrained to 1.  Exposed for tests/benches.
struct FlatProblem {
  circuit::Circuit circuit;
  std::vector<circuit::SignalId> var_signal;
};
[[nodiscard]] FlatProblem build_flat_problem(const cnf::Formula& formula);

class DiffSampler : public sampler::Sampler {
 public:
  explicit DiffSampler(DiffSamplerConfig config = {}) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "DiffSampler-like"; }
  [[nodiscard]] sampler::RunResult run(const cnf::Formula& formula,
                                       const sampler::RunOptions& options) override;

 private:
  DiffSamplerConfig config_;
};

}  // namespace hts::baselines
