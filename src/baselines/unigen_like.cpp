#include "baselines/unigen_like.hpp"

#include <algorithm>

#include "core/unique_bank.hpp"
#include "solver/cdcl.hpp"
#include "util/timer.hpp"

namespace hts::baselines {

namespace {

using cnf::Lit;
using cnf::Var;

/// Appends a random parity constraint over the original variables to the
/// formula: a random subset of up to max_width variables with a random
/// even/odd parity, encoded as an XOR chain with auxiliary variables.
void add_random_xor(cnf::Formula& formula, Var n_original, std::size_t max_width,
                    util::Rng& rng) {
  std::vector<Var> vars;
  if (n_original / 2 <= max_width) {
    for (Var v = 0; v < n_original; ++v) {
      if (rng.next_bool()) vars.push_back(v);
    }
  } else {
    // Sparse hash: sample max_width distinct variables.
    std::vector<Var> all(n_original);
    for (Var v = 0; v < n_original; ++v) all[v] = v;
    rng.shuffle(all);
    vars.assign(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(max_width));
  }
  const bool parity = rng.next_bool();  // required XOR value
  if (vars.empty()) return;             // trivially true half the time; skip
  if (vars.size() == 1) {
    formula.add_clause({Lit(vars[0], !parity)});
    return;
  }
  // Chain: t1 = v0 ^ v1, t2 = t1 ^ v2, ...; final aux constrained to parity.
  auto emit_xor2 = [&formula](Var c, Var a, Var b) {
    formula.add_clause({Lit(c, true), Lit(a, false), Lit(b, false)});
    formula.add_clause({Lit(c, true), Lit(a, true), Lit(b, true)});
    formula.add_clause({Lit(c, false), Lit(a, true), Lit(b, false)});
    formula.add_clause({Lit(c, false), Lit(a, false), Lit(b, true)});
  };
  Var acc = vars[0];
  for (std::size_t i = 1; i < vars.size(); ++i) {
    const Var t = formula.new_var();
    emit_xor2(t, acc, vars[i]);
    acc = t;
  }
  formula.add_clause({Lit(acc, !parity)});
}

}  // namespace

sampler::RunResult UniGenLike::run(const cnf::Formula& formula,
                                   const sampler::RunOptions& options) {
  sampler::RunResult result;
  result.sampler_name = name();

  util::Rng rng(options.seed ^ 0x0169e40fULL);
  util::Deadline deadline(options.budget_ms);
  util::Timer timer;
  sampler::UniqueBank bank(formula.n_vars());

  std::vector<Var> original_vars(formula.n_vars());
  for (Var v = 0; v < formula.n_vars(); ++v) original_vars[v] = v;

  // Adaptive number of hash constraints: gallop upward while cells
  // overflow, then binary-search between the tightest known bounds (real
  // UniGen gets this from an ApproxMC count; the search reconverges here
  // because the model count is unknown).
  std::size_t m = 0;
  std::size_t overflow_below = 0;                     // largest m seen to overflow
  std::size_t empty_above = formula.n_vars() + 1;     // smallest m seen empty
  bool any_sat_seen = false;

  while (!deadline.expired()) {
    if (options.min_solutions > 0 && bank.size() >= options.min_solutions) break;

    // Build the hashed formula for this round.
    cnf::Formula hashed = formula;
    for (std::size_t i = 0; i < m; ++i) {
      add_random_xor(hashed, formula.n_vars(), config_.max_xor_width, rng);
    }

    solver::CdclConfig solver_config;
    solver_config.seed = rng.next_u64();
    solver_config.polarity = solver::CdclConfig::Polarity::kRandom;
    solver_config.conflict_budget = config_.conflict_budget;
    solver::CdclSolver solver(solver_config);
    solver.add_formula(hashed);

    // Enumerate the cell up to pivot+1 models (projected onto originals).
    std::vector<cnf::Assignment> cell;
    bool overflow = false;
    bool interrupted = false;
    for (;;) {
      const solver::Status status = solver.solve({}, &deadline);
      if (status == solver::Status::kUnknown) {
        interrupted = true;
        break;
      }
      if (status == solver::Status::kUnsat) break;
      any_sat_seen = true;
      cnf::Assignment projected(solver.model().begin(),
                                solver.model().begin() + formula.n_vars());
      cell.push_back(std::move(projected));
      if (cell.size() > config_.pivot) {
        overflow = true;
        break;
      }
      if (!solver.block_model(original_vars)) break;  // cell exhausted
    }

    if (interrupted) {
      // Salvage what was found before the interruption.  Partial cells are
      // search-order-biased, so like overflow cells below they are banked
      // for the unique count but kept out of the emitted `solutions` stream
      // — except at deadline expiry, where nothing further will be emitted
      // anyway and the salvage is the run's last word (legacy behaviour).
      const bool emit = deadline.expired();
      for (const cnf::Assignment& model : cell) {
        ++result.n_valid;
        if (bank.insert_bits(model) && emit &&
            result.solutions.size() < options.store_limit) {
          result.solutions.push_back(model);
        }
      }
      if (!emit) {
        // kUnknown without an expired deadline means the per-cell conflict
        // budget ran out: this m's XOR-hashed formula is too hard for plain
        // CDCL.  Retrying the same m would loop forever on the same wall;
        // bisect back toward the largest m known to overflow, where cells
        // are cheap again.
        if (m > overflow_below) m = (overflow_below + m) / 2;
      }
      continue;
    }
    if (overflow) {
      // The cell is too big to emit from uniformly, but its models are
      // perfectly valid solutions; bank them for the unique count (the
      // sampler's throughput metric) while keeping them out of the emitted
      // `solutions` stream so distribution analyses still see only
      // cell-uniform UniGen-style output.
      for (const cnf::Assignment& model : cell) {
        ++result.n_valid;
        if (bank.insert_bits(model)) {
          result.progress.push_back(
              sampler::ProgressPoint{timer.milliseconds(), bank.size()});
        }
      }
      overflow_below = std::max(overflow_below, m);
      if (empty_above > formula.n_vars()) {
        m = m * 2 + 1;  // gallop until an upper bound exists
      } else {
        m = (m + empty_above + 1) / 2;
      }
      if (m > formula.n_vars()) m = formula.n_vars();
      continue;
    }
    if (cell.empty()) {
      if (m == 0) {
        // No hashing and no model: the formula itself is UNSAT.
        result.proven_unsat = !any_sat_seen;
        break;
      }
      empty_above = std::min(empty_above, m);
      m = (overflow_below + m) / 2;  // back off toward the overflow bound
      continue;
    }

    // Emit a random subset of the cell (UniGen picks uniformly inside it).
    rng.shuffle(cell);
    const std::size_t take = std::min(config_.samples_per_cell, cell.size());
    for (std::size_t i = 0; i < take; ++i) {
      ++result.n_valid;
      if (options.verify_against_cnf && !formula.satisfied_by(cell[i])) {
        ++result.n_invalid;
      }
      const bool is_new = bank.insert_bits(cell[i]);
      if ((is_new || options.store_all_draws) &&
          result.solutions.size() < options.store_limit) {
        result.solutions.push_back(cell[i]);
      }
      if (is_new) {
        result.progress.push_back(
            sampler::ProgressPoint{timer.milliseconds(), bank.size()});
      }
    }
  }

  result.n_unique = bank.size();
  result.elapsed_ms = timer.milliseconds();
  result.timed_out =
      options.min_solutions > 0 && result.n_unique < options.min_solutions;
  return result;
}

}  // namespace hts::baselines
