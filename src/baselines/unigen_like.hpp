#pragma once

// UniGen3-style baseline: approximately-uniform sampling via universal
// (XOR) hashing over a CDCL oracle (Soos et al., CAV'20 lineage).
//
// Each round draws m random parity constraints that partition the solution
// space into ~2^m cells, enumerates the current cell (bounded by `pivot`),
// and emits a random subset of it.  m adapts until cells are small enough to
// enumerate yet non-empty.  Strong uniformity, but every sample costs solver
// enumeration over a formula enlarged by XOR chains — which is exactly why
// the real UniGen3 sits at ~0.2-100 solutions/s in the paper's Table II.

#include "core/sampler.hpp"

namespace hts::baselines {

struct UniGenConfig {
  /// Cell-size ceiling: enumeration stops at pivot+1 models.
  std::size_t pivot = 32;
  /// Samples emitted per successfully enumerated cell.
  std::size_t samples_per_cell = 8;
  /// Per-cell conflict budget (keeps a pathological cell from eating the
  /// whole time budget).
  std::int64_t conflict_budget = 200000;
  /// Maximum variables per parity constraint.  Dense (n/2-wide) hashes give
  /// the strongest uniformity but are hopeless for plain CDCL — real UniGen
  /// leans on CryptoMiniSat's Gaussian elimination.  Sparse hashing is the
  /// standard workaround (cf. Meel et al. on sparse XORs) and preserves the
  /// sampler's qualitative behaviour.
  std::size_t max_xor_width = 24;
};

class UniGenLike : public sampler::Sampler {
 public:
  explicit UniGenLike(UniGenConfig config = {}) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "UniGen3-like"; }
  [[nodiscard]] sampler::RunResult run(const cnf::Formula& formula,
                                       const sampler::RunOptions& options) override;

 private:
  UniGenConfig config_;
};

}  // namespace hts::baselines
