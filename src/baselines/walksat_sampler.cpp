#include "baselines/walksat_sampler.hpp"

#include "core/unique_bank.hpp"
#include "util/timer.hpp"

namespace hts::baselines {

sampler::RunResult WalkSatSampler::run(const cnf::Formula& formula,
                                       const sampler::RunOptions& options) {
  sampler::RunResult result;
  result.sampler_name = name();

  solver::WalkSatConfig ws_config;
  ws_config.noise = config_.noise;
  ws_config.max_flips = config_.max_flips_per_restart;
  ws_config.seed = options.seed ^ 0x3a1c5ULL;
  solver::WalkSat walksat(formula, ws_config);

  util::Deadline deadline(options.budget_ms);
  util::Timer timer;
  sampler::UniqueBank bank(formula.n_vars());

  while (!deadline.expired()) {
    if (options.min_solutions > 0 && bank.size() >= options.min_solutions) break;
    const auto model = walksat.search(&deadline);
    if (!model.has_value()) continue;  // restart exhausted its flip budget
    ++result.n_valid;
    if (options.verify_against_cnf && !formula.satisfied_by(*model)) {
      ++result.n_invalid;
    }
    const bool is_new = bank.insert_bits(*model);
    if ((is_new || options.store_all_draws) &&
        result.solutions.size() < options.store_limit) {
      result.solutions.push_back(*model);
    }
    if (is_new) {
      result.progress.push_back(
          sampler::ProgressPoint{timer.milliseconds(), bank.size()});
    }
  }

  result.n_unique = bank.size();
  result.elapsed_ms = timer.milliseconds();
  result.timed_out =
      options.min_solutions > 0 && result.n_unique < options.min_solutions;
  return result;
}

}  // namespace hts::baselines
