#pragma once

// WalkSAT-restart sampler (extension beyond the paper's Table II set): each
// solution is an independent local-search run from a random start.  Anchors
// the "cheap stochastic heuristic" end of the sampler spectrum in the
// extension benches.

#include "core/sampler.hpp"
#include "solver/walksat.hpp"

namespace hts::baselines {

struct WalkSatSamplerConfig {
  double noise = 0.5;
  std::uint64_t max_flips_per_restart = 200000;
};

class WalkSatSampler : public sampler::Sampler {
 public:
  explicit WalkSatSampler(WalkSatSamplerConfig config = {}) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "WalkSAT-restart"; }
  [[nodiscard]] sampler::RunResult run(const cnf::Formula& formula,
                                       const sampler::RunOptions& options) override;

 private:
  WalkSatSamplerConfig config_;
};

}  // namespace hts::baselines
