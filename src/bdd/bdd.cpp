#include "bdd/bdd.hpp"

#include <algorithm>
#include <cmath>

namespace hts::bdd {

Manager::Manager(std::uint32_t n_vars, std::size_t max_nodes)
    : n_vars_(n_vars), max_nodes_(max_nodes) {
  HTS_CHECK_MSG(n_vars < (1u << 21), "BDD variable count exceeds packing width");
  // Terminals live at fixed ids; their 'var' is the past-the-end level so the
  // cofactor logic treats them as below every real variable.
  nodes_.push_back(Node{n_vars_, kFalse, kFalse});  // id 0 = false
  nodes_.push_back(Node{n_vars_, kTrue, kTrue});    // id 1 = true
}

NodeId Manager::make_node(std::uint32_t var, NodeId low, NodeId high) {
  if (low == high) return low;  // reduction rule
  const std::uint64_t key = pack3(var, low, high);
  auto [it, inserted] = unique_.try_emplace(key, static_cast<NodeId>(nodes_.size()));
  if (!inserted) return it->second;
  if (nodes_.size() >= max_nodes_) {
    unique_.erase(it);
    throw CapacityError(max_nodes_);
  }
  nodes_.push_back(Node{var, low, high});
  return it->second;
}

NodeId Manager::make_var(std::uint32_t var) {
  HTS_CHECK(var < n_vars_);
  return make_node(var, kFalse, kTrue);
}

NodeId Manager::ite(NodeId f, NodeId g, NodeId h) {
  // Terminal cases.
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  if (g == kTrue && h == kFalse) return f;

  const std::uint64_t key = pack3(f, g, h);
  if (auto it = ite_cache_.find(key); it != ite_cache_.end()) return it->second;

  const std::uint32_t top =
      std::min({level(f), level(g), level(h)});
  auto cofactor = [&](NodeId id, bool positive) -> NodeId {
    if (level(id) != top) return id;
    return positive ? nodes_[id].high : nodes_[id].low;
  };
  const NodeId high = ite(cofactor(f, true), cofactor(g, true), cofactor(h, true));
  const NodeId low = ite(cofactor(f, false), cofactor(g, false), cofactor(h, false));
  const NodeId result = make_node(top, low, high);
  ite_cache_.emplace(key, result);
  return result;
}

NodeId Manager::apply_xor(NodeId f, NodeId g) { return ite(f, apply_not(g), g); }

NodeId Manager::restrict_var(NodeId f, std::uint32_t var, bool value) {
  if (level(f) > var) return f;  // f does not depend on var (or is terminal)
  if (level(f) == var) return value ? nodes_[f].high : nodes_[f].low;
  const NodeId low = restrict_var(nodes_[f].low, var, value);
  const NodeId high = restrict_var(nodes_[f].high, var, value);
  return make_node(nodes_[f].var, low, high);
}

NodeId Manager::exists(NodeId f, std::uint32_t var) {
  return apply_or(restrict_var(f, var, false), restrict_var(f, var, true));
}

bool Manager::eval(NodeId f, const std::vector<std::uint8_t>& assignment) const {
  while (f > kTrue) {
    const Node& n = nodes_[f];
    HTS_DCHECK(n.var < assignment.size());
    f = assignment[n.var] != 0 ? n.high : n.low;
  }
  return f == kTrue;
}

double Manager::satcount(NodeId f) const { return satcount_below(f, 0); }

double Manager::satcount_below(NodeId id, std::uint32_t from_var) const {
  HTS_DCHECK(level(id) >= from_var);
  struct Rec {
    const Manager* mgr;
    double operator()(NodeId node) const {
      if (node == kFalse) return 0.0;
      if (node == kTrue) return 1.0;
      auto& cache = mgr->count_cache_;
      if (auto it = cache.find(node); it != cache.end()) return it->second;
      const Node& n = mgr->nodes_[node];
      const double low =
          (*this)(n.low) * std::pow(2.0, mgr->level(n.low) - n.var - 1);
      const double high =
          (*this)(n.high) * std::pow(2.0, mgr->level(n.high) - n.var - 1);
      const double total = low + high;
      cache.emplace(node, total);
      return total;
    }
  };
  return Rec{this}(id) * std::pow(2.0, level(id) - from_var);
}

std::vector<std::uint32_t> Manager::support(NodeId f) const {
  std::vector<std::uint8_t> seen_node(nodes_.size(), 0);
  std::vector<std::uint8_t> in_support(n_vars_, 0);
  std::vector<NodeId> stack{f};
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    if (id <= kTrue || seen_node[id] != 0) continue;
    seen_node[id] = 1;
    in_support[nodes_[id].var] = 1;
    stack.push_back(nodes_[id].low);
    stack.push_back(nodes_[id].high);
  }
  std::vector<std::uint32_t> vars;
  for (std::uint32_t v = 0; v < n_vars_; ++v) {
    if (in_support[v] != 0) vars.push_back(v);
  }
  return vars;
}

bool Manager::pick_model(NodeId f, std::vector<std::uint8_t>& model_out) const {
  model_out.assign(n_vars_, 0);
  if (f == kFalse) return false;
  while (f > kTrue) {
    const Node& n = nodes_[f];
    if (n.low != kFalse) {
      model_out[n.var] = 0;
      f = n.low;
    } else {
      model_out[n.var] = 1;
      f = n.high;
    }
  }
  return true;
}

std::vector<std::uint8_t> Manager::nth_model(NodeId f, std::uint64_t index) const {
  HTS_CHECK_MSG(f != kFalse, "nth_model on unsatisfiable BDD");
  std::vector<std::uint8_t> model(n_vars_, 0);
  double remaining = static_cast<double>(index);
  std::uint32_t var = 0;
  NodeId node = f;
  while (var < n_vars_) {
    if (node <= kTrue || nodes_[node].var != var) {
      // node does not branch on var: both values equally split the models.
      const double half = satcount_below(node, var + 1);
      if (remaining < half) {
        model[var] = 0;
      } else {
        model[var] = 1;
        remaining -= half;
      }
      ++var;
      continue;
    }
    const double low_models = satcount_below(nodes_[node].low, var + 1);
    if (remaining < low_models) {
      model[var] = 0;
      node = nodes_[node].low;
    } else {
      model[var] = 1;
      remaining -= low_models;
      node = nodes_[node].high;
    }
    ++var;
  }
  HTS_CHECK_MSG(node == kTrue, "nth_model index out of range");
  return model;
}

}  // namespace hts::bdd
