#pragma once

// A compact ROBDD (reduced ordered binary decision diagram) package.
//
// Role in this repo: the paper performs all "Boolean manipulations, such as
// simplification and complement checking" with SymPy.  Our expression engine
// (hts::expr) answers small-support queries with truth tables and delegates
// larger ones here, where canonicity makes equivalence a pointer comparison.
// The BDD is also used by tests and benches for exact model counting
// (solution-space sizes for uniformity checks).
//
// Design: classic unique-table + computed-cache apply, identity variable
// order (variable index == level), no complement edges.  Node ids are
// indices into a flat vector; ids 0 and 1 are the terminals.

#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "util/check.hpp"

namespace hts::bdd {

using NodeId = std::uint32_t;

inline constexpr NodeId kFalse = 0;
inline constexpr NodeId kTrue = 1;

/// Thrown when a manager exceeds its node budget; callers (e.g. the expr
/// equivalence check) treat this as "query too large", not a fatal error.
class CapacityError : public std::runtime_error {
 public:
  explicit CapacityError(std::size_t limit)
      : std::runtime_error("BDD node limit exceeded (" + std::to_string(limit) +
                           ")") {}
};

class Manager {
 public:
  /// max_nodes bounds total unique nodes (terminals included).
  explicit Manager(std::uint32_t n_vars, std::size_t max_nodes = 1u << 22);

  [[nodiscard]] std::uint32_t n_vars() const { return n_vars_; }
  [[nodiscard]] std::size_t n_nodes() const { return nodes_.size(); }

  /// The BDD for variable `var` (level == var).
  [[nodiscard]] NodeId make_var(std::uint32_t var);

  [[nodiscard]] NodeId ite(NodeId f, NodeId g, NodeId h);
  [[nodiscard]] NodeId apply_and(NodeId f, NodeId g) { return ite(f, g, kFalse); }
  [[nodiscard]] NodeId apply_or(NodeId f, NodeId g) { return ite(f, kTrue, g); }
  [[nodiscard]] NodeId apply_xor(NodeId f, NodeId g);
  [[nodiscard]] NodeId apply_not(NodeId f) { return ite(f, kFalse, kTrue); }

  /// Shannon cofactor of f with respect to var=value.
  [[nodiscard]] NodeId restrict_var(NodeId f, std::uint32_t var, bool value);

  /// Existential quantification of var.
  [[nodiscard]] NodeId exists(NodeId f, std::uint32_t var);

  /// Evaluates under a complete assignment (index = variable).
  [[nodiscard]] bool eval(NodeId f, const std::vector<std::uint8_t>& assignment) const;

  /// Number of satisfying assignments over all n_vars() variables.
  [[nodiscard]] double satcount(NodeId f) const;

  /// Sorted list of variables f depends on.
  [[nodiscard]] std::vector<std::uint32_t> support(NodeId f) const;

  /// One satisfying assignment (any), or false if f == kFalse.  Variables
  /// outside the support are set to 0.
  [[nodiscard]] bool pick_model(NodeId f, std::vector<std::uint8_t>& model_out) const;

  /// The index-th satisfying assignment in lexicographic order; index must be
  /// < satcount(f).  Used to draw *exactly uniform* reference samples in
  /// sampler-uniformity tests.
  [[nodiscard]] std::vector<std::uint8_t> nth_model(NodeId f, std::uint64_t index) const;

  struct Node {
    std::uint32_t var;  // level; terminals use n_vars()
    NodeId low;
    NodeId high;
  };
  [[nodiscard]] const Node& node(NodeId id) const { return nodes_[id]; }

 private:
  [[nodiscard]] NodeId make_node(std::uint32_t var, NodeId low, NodeId high);
  [[nodiscard]] std::uint32_t level(NodeId id) const { return nodes_[id].var; }

  /// Models of `id` counted over variables [from_var, n_vars()); requires
  /// level(id) >= from_var.
  [[nodiscard]] double satcount_below(NodeId id, std::uint32_t from_var) const;

  static std::uint64_t pack3(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
    // 21 bits per field is plenty under the node budget; mix to one key.
    return (a << 42) | (b << 21) | c;
  }

  std::uint32_t n_vars_;
  std::size_t max_nodes_;
  std::vector<Node> nodes_;
  std::unordered_map<std::uint64_t, NodeId> unique_;
  std::unordered_map<std::uint64_t, NodeId> ite_cache_;
  mutable std::unordered_map<NodeId, double> count_cache_;
};

}  // namespace hts::bdd
