#include "bdd/builder.hpp"

namespace hts::bdd {

NodeId build_from_cnf(Manager& mgr, const cnf::Formula& formula) {
  HTS_CHECK(mgr.n_vars() >= formula.n_vars());
  NodeId conjunction = kTrue;
  for (const cnf::Clause& clause : formula.clauses()) {
    NodeId disjunction = kFalse;
    for (const cnf::Lit lit : clause) {
      NodeId leaf = mgr.make_var(lit.var());
      if (lit.negated()) leaf = mgr.apply_not(leaf);
      disjunction = mgr.apply_or(disjunction, leaf);
    }
    conjunction = mgr.apply_and(conjunction, disjunction);
    if (conjunction == kFalse) break;
  }
  return conjunction;
}

}  // namespace hts::bdd
