#pragma once

// Convenience constructions: CNF formula -> BDD.  Used by tests/benches for
// exact model counting and equisatisfiability checks on small instances.

#include "bdd/bdd.hpp"
#include "cnf/formula.hpp"

namespace hts::bdd {

/// Conjunction of all clauses.  Throws CapacityError if the formula's BDD
/// exceeds the manager's node budget.
[[nodiscard]] NodeId build_from_cnf(Manager& mgr, const cnf::Formula& formula);

}  // namespace hts::bdd
