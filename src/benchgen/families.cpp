#include "benchgen/families.hpp"

#include <algorithm>
#include <stdexcept>

#include "circuit/tseitin.hpp"
#include "util/rng.hpp"

namespace hts::benchgen {

namespace {

using circuit::Circuit;
using circuit::GateType;
using circuit::SignalId;

/// FNV-1a over the name: per-instance deterministic seed.
std::uint64_t name_seed(const std::string& name, std::uint64_t mix) {
  std::uint64_t h = 0xcbf29ce484222325ULL ^ mix;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Evaluates the circuit on a random input vector, constrains the chosen
/// outputs to the observed values (instance SAT by construction), encodes
/// to CNF, and assembles the witness over formula variables.
Instance finalize(std::string name, std::string family, Circuit&& circuit,
                  const std::vector<SignalId>& output_signals, util::Rng& rng) {
  std::vector<std::uint8_t> input_values(circuit.n_inputs());
  for (auto& bit : input_values) bit = rng.next_bool() ? 1 : 0;
  const std::vector<std::uint8_t> values = circuit.eval(input_values);
  for (const SignalId out : output_signals) {
    circuit.add_output(out, values[out] != 0);
  }

  circuit::TseitinResult encoded = circuit::tseitin_encode(circuit);

  Instance instance;
  instance.name = std::move(name);
  instance.family = std::move(family);
  instance.witness.assign(encoded.formula.n_vars(), 0);
  for (SignalId s = 0; s < circuit.n_signals(); ++s) {
    instance.witness[encoded.signal_var[s]] = values[s];
  }
  instance.signal_var = std::move(encoded.signal_var);
  instance.formula = std::move(encoded.formula);
  instance.circuit = std::move(circuit);
  return instance;
}

/// A random fanin drawn with locality bias: mostly from the trailing
/// `window` signals, occasionally anywhere.
SignalId biased_pick(util::Rng& rng, std::size_t n_signals, std::size_t window) {
  if (n_signals == 1 || rng.next_bool(0.2)) {
    return static_cast<SignalId>(rng.next_below(n_signals));
  }
  const std::size_t lo = n_signals > window ? n_signals - window : 0;
  return static_cast<SignalId>(lo + rng.next_below(n_signals - lo));
}

}  // namespace

// --- or-k-a-b-UC-c -----------------------------------------------------------

Instance make_or_instance(std::size_t n_inputs, std::size_t variant_a,
                          std::size_t variant_b, std::size_t variant_c,
                          const GenOptions& options) {
  const std::string name = "or-" + std::to_string(n_inputs) + "-" +
                           std::to_string(variant_a) + "-" +
                           std::to_string(variant_b) + "-UC-" +
                           std::to_string(variant_c);
  util::Rng rng(name_seed(name, options.seed_mix));

  Circuit circuit;
  std::vector<SignalId> inputs;
  inputs.reserve(n_inputs);
  for (std::size_t i = 0; i < n_inputs; ++i) inputs.push_back(circuit.add_input());

  // Unconstrained chains ("UC"): short buffer/inverter runs off a few inputs
  // that feed nothing downstream.
  const std::size_t n_chains = 2 + variant_c % 4;
  for (std::size_t c = 0; c < n_chains; ++c) {
    SignalId cur = inputs[rng.next_below(inputs.size())];
    const std::size_t len = 2 + rng.next_below(4);
    for (std::size_t step = 0; step < len; ++step) {
      cur = circuit.add_gate(rng.next_bool() ? GateType::kBuf : GateType::kNot, {cur});
    }
  }

  // Constrained cones: one OR/AND tree per output over random input subsets.
  const std::size_t n_outputs = std::max<std::size_t>(2, n_inputs / 13);
  std::vector<SignalId> output_signals;
  for (std::size_t o = 0; o < n_outputs; ++o) {
    // Leaf layer: a random subset of inputs, some inverted.
    std::vector<SignalId> layer;
    const std::size_t leaves =
        std::max<std::size_t>(4, n_inputs / n_outputs + rng.next_below(4));
    for (std::size_t l = 0; l < leaves; ++l) {
      SignalId leaf = inputs[rng.next_below(inputs.size())];
      if (rng.next_bool(0.3)) leaf = circuit.add_gate(GateType::kNot, {leaf});
      layer.push_back(leaf);
    }
    // Reduce with alternating OR-heavy trees of fanin 2-3.
    bool use_or = true;
    while (layer.size() > 1) {
      std::vector<SignalId> next;
      for (std::size_t i = 0; i < layer.size();) {
        const std::size_t take = std::min<std::size_t>(
            layer.size() - i, 2 + (rng.next_bool(0.3) ? 1 : 0));
        if (take == 1) {
          next.push_back(layer[i]);
          ++i;
          continue;
        }
        std::vector<SignalId> fanins(layer.begin() + static_cast<std::ptrdiff_t>(i),
                                     layer.begin() + static_cast<std::ptrdiff_t>(i + take));
        const GateType type = use_or ? (rng.next_bool(0.8) ? GateType::kOr : GateType::kAnd)
                                     : (rng.next_bool(0.8) ? GateType::kAnd : GateType::kOr);
        next.push_back(circuit.add_gate(type, std::move(fanins)));
        i += take;
      }
      layer = std::move(next);
      use_or = !use_or;
    }
    output_signals.push_back(layer[0]);
  }

  return finalize(name, "or", std::move(circuit), output_signals, rng);
}

// --- w-10-i-q ---------------------------------------------------------------

Instance make_q_instance(std::size_t width, std::size_t variant,
                         const GenOptions& options) {
  const std::string name =
      std::to_string(width) + "-10-" + std::to_string(variant) + "-q";
  util::Rng rng(name_seed(name, options.seed_mix));

  Circuit circuit;
  // Size model: ~440 total signals (published instances hold ~430-456 vars
  // for both widths); the variant scales the MUX density downward, which
  // lowers the PI count the way the published instances do (83 PIs for
  // 75-10-1-q vs 31 for 90-10-10-q).
  const std::size_t target_signals = 410 + (width % 37);
  const double mux_rate =
      0.17 - 0.015 * static_cast<double>((variant - 1) % 10);
  const std::size_t n_chains = 3 + variant % 3;
  const std::size_t per_chain = target_signals / n_chains;

  std::vector<SignalId> chain_tail;
  for (std::size_t c = 0; c < n_chains; ++c) {
    SignalId cur = circuit.add_input();
    const std::size_t chain_start = circuit.n_signals();
    while (circuit.n_signals() - chain_start < per_chain) {
      if (rng.next_bool(mux_rate)) {
        // 2:1 MUX: cur selects between two fresh inputs —
        // (cur & a) | (~cur & b), the paper's Eq. 5 shape.  Adds 6 signals.
        const SignalId a = circuit.add_input();
        const SignalId b = circuit.add_input();
        const SignalId t0 = circuit.add_gate(GateType::kAnd, {cur, a});
        const SignalId inv = circuit.add_gate(GateType::kNot, {cur});
        const SignalId t1 = circuit.add_gate(GateType::kAnd, {inv, b});
        cur = circuit.add_gate(GateType::kOr, {t0, t1});
      } else {
        cur = circuit.add_gate(rng.next_bool() ? GateType::kBuf : GateType::kNot,
                               {cur});
      }
    }
    chain_tail.push_back(cur);
  }

  // One constrained output: combine a subset of the chain tails; the
  // remaining chains dangle as unconstrained paths.
  const std::size_t combine = 1 + rng.next_below(chain_tail.size());
  std::vector<SignalId> fanins(chain_tail.begin(),
                               chain_tail.begin() + static_cast<std::ptrdiff_t>(combine));
  const SignalId po =
      combine == 1 ? fanins[0]
                   : circuit.add_gate(rng.next_bool() ? GateType::kOr : GateType::kAnd,
                                      std::move(fanins));
  return finalize(name, "q", std::move(circuit), {po}, rng);
}

// --- s15850a_x_y --------------------------------------------------------------

Instance make_s15850_instance(std::size_t n_outputs, std::size_t variant,
                              const GenOptions& options) {
  const std::string name =
      "s15850a_" + std::to_string(n_outputs) + "_" + std::to_string(variant);
  util::Rng rng(name_seed(name, options.seed_mix));

  Circuit circuit;
  const std::size_t n_inputs =
      std::max<std::size_t>(8, static_cast<std::size_t>(600 * options.scale));
  const std::size_t n_gates = std::max<std::size_t>(
      32, static_cast<std::size_t>((10300.0 + 25.0 * static_cast<double>(n_outputs)) *
                                   options.scale));
  for (std::size_t i = 0; i < n_inputs; ++i) circuit.add_input();

  for (std::size_t g = 0; g < n_gates; ++g) {
    const std::size_t n_signals = circuit.n_signals();
    const double roll = rng.next_double();
    if (roll < 0.12) {
      circuit.add_gate(GateType::kNot,
                       {biased_pick(rng, n_signals, 200)});
    } else if (roll < 0.18) {
      circuit.add_gate(GateType::kBuf, {biased_pick(rng, n_signals, 200)});
    } else {
      const SignalId a = biased_pick(rng, n_signals, 200);
      SignalId b = biased_pick(rng, n_signals, 200);
      if (b == a) b = static_cast<SignalId>(rng.next_below(n_signals));
      GateType type = GateType::kAnd;
      const double t = rng.next_double();
      if (t < 0.30) {
        type = GateType::kAnd;
      } else if (t < 0.60) {
        type = GateType::kOr;
      } else if (t < 0.75) {
        type = GateType::kNand;
      } else if (t < 0.90) {
        type = GateType::kNor;
      } else {
        type = GateType::kXor;
      }
      if (a == b) {
        circuit.add_gate(GateType::kNot, {a});
      } else {
        circuit.add_gate(type, {a, b});
      }
    }
  }

  // Constrained outputs sampled from the deep end of the netlist.
  std::vector<SignalId> output_signals;
  const std::size_t tail_lo = circuit.n_signals() * 3 / 4;
  for (std::size_t o = 0; o < n_outputs; ++o) {
    output_signals.push_back(static_cast<SignalId>(
        tail_lo + rng.next_below(circuit.n_signals() - tail_lo)));
  }
  std::sort(output_signals.begin(), output_signals.end());
  output_signals.erase(std::unique(output_signals.begin(), output_signals.end()),
                       output_signals.end());

  return finalize(name, "s15850a", std::move(circuit), output_signals, rng);
}

// --- Prod-n --------------------------------------------------------------------

Instance make_prod_instance(std::size_t n_modules, const GenOptions& options) {
  const std::string name = "Prod-" + std::to_string(n_modules);
  util::Rng rng(name_seed(name, options.seed_mix));

  Circuit circuit;
  const std::size_t shared = std::max<std::size_t>(
      4, static_cast<std::size_t>(40 * options.scale));
  const std::size_t locals_per_module = std::max<std::size_t>(
      4, static_cast<std::size_t>(32 * options.scale));
  const std::size_t gates_per_module = std::max<std::size_t>(
      16, static_cast<std::size_t>(1800 * options.scale));

  std::vector<SignalId> shared_inputs;
  for (std::size_t i = 0; i < shared; ++i) shared_inputs.push_back(circuit.add_input());

  std::vector<SignalId> module_outputs;
  std::vector<SignalId> probe_signals;  // deep internal signals for output 2
  for (std::size_t mod = 0; mod < n_modules; ++mod) {
    std::vector<SignalId> pool = shared_inputs;
    for (std::size_t i = 0; i < locals_per_module; ++i) {
      pool.push_back(circuit.add_input());
    }
    for (std::size_t g = 0; g < gates_per_module; ++g) {
      const double roll = rng.next_double();
      SignalId made = circuit::kNoSignal;
      if (roll < 0.25) {
        // Wide OR/AND (4-7 fanins): pushes the clause/variable ratio toward
        // the published Prod profile (~5 clauses per variable).
        const std::size_t width = 4 + rng.next_below(4);
        std::vector<SignalId> fanins;
        for (std::size_t i = 0; i < width; ++i) {
          fanins.push_back(pool[rng.next_below(pool.size())]);
        }
        std::sort(fanins.begin(), fanins.end());
        fanins.erase(std::unique(fanins.begin(), fanins.end()), fanins.end());
        if (fanins.size() < 2) fanins.push_back(pool[rng.next_below(pool.size())]);
        made = circuit.add_gate(rng.next_bool() ? GateType::kOr : GateType::kAnd,
                                fanins);
      } else if (roll < 0.45) {
        const SignalId a = pool[rng.next_below(pool.size())];
        SignalId b = pool[rng.next_below(pool.size())];
        if (a == b) {
          made = circuit.add_gate(GateType::kNot, {a});
        } else {
          made = circuit.add_gate(GateType::kXor, {a, b});
        }
      } else if (roll < 0.55) {
        made = circuit.add_gate(GateType::kNot, {pool[rng.next_below(pool.size())]});
      } else {
        const SignalId a = pool[rng.next_below(pool.size())];
        SignalId b = pool[rng.next_below(pool.size())];
        if (a == b) {
          made = circuit.add_gate(GateType::kBuf, {a});
        } else {
          made = circuit.add_gate(
              rng.next_bool() ? GateType::kAnd : GateType::kOr, {a, b});
        }
      }
      pool.push_back(made);
      // Keep the pool biased toward recent logic.
      if (pool.size() > 256 && rng.next_bool(0.5)) {
        pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(
                                      rng.next_below(pool.size() / 2)));
      }
    }
    module_outputs.push_back(pool.back());
    probe_signals.push_back(pool[pool.size() / 2]);
  }

  // Output 1: conjunction of all module validity bits.
  const SignalId po1 = module_outputs.size() == 1
                           ? module_outputs[0]
                           : circuit.add_gate(GateType::kAnd, module_outputs);
  // Output 2: parity probe across module internals, built as a balanced
  // 2-input XOR tree.  (Wide XOR gates would make the Tseitin encoder add
  // chain variables that the signal-value witness cannot cover.)
  std::vector<SignalId> layer = probe_signals;
  while (layer.size() > 1) {
    std::vector<SignalId> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(circuit.add_gate(GateType::kXor, {layer[i], layer[i + 1]}));
    }
    if (layer.size() % 2 == 1) next.push_back(layer.back());
    layer = std::move(next);
  }
  const SignalId po2 = layer[0];
  return finalize(name, "prod", std::move(circuit), {po1, po2}, rng);
}

// --- name dispatch ---------------------------------------------------------------

Instance make_instance(const std::string& name, const GenOptions& options) {
  auto split = [](const std::string& text, char sep) {
    std::vector<std::string> parts;
    std::size_t begin = 0;
    for (std::size_t i = 0; i <= text.size(); ++i) {
      if (i == text.size() || text[i] == sep) {
        parts.push_back(text.substr(begin, i - begin));
        begin = i + 1;
      }
    }
    return parts;
  };
  auto to_num = [&name](const std::string& token) -> std::size_t {
    try {
      return static_cast<std::size_t>(std::stoul(token));
    } catch (const std::exception&) {
      throw std::invalid_argument("bad number '" + token + "' in instance name " +
                                  name);
    }
  };

  if (name.rfind("or-", 0) == 0) {
    const auto parts = split(name, '-');  // or k a b UC c
    if (parts.size() == 6 && parts[4] == "UC") {
      return make_or_instance(to_num(parts[1]), to_num(parts[2]), to_num(parts[3]),
                              to_num(parts[5]), options);
    }
  } else if (name.size() > 2 && name.rfind("-q") == name.size() - 2) {
    const auto parts = split(name, '-');  // w 10 i q
    if (parts.size() == 4) {
      return make_q_instance(to_num(parts[0]), to_num(parts[2]), options);
    }
  } else if (name.rfind("s15850a_", 0) == 0) {
    const auto parts = split(name.substr(8), '_');  // x y
    if (parts.size() == 2) {
      return make_s15850_instance(to_num(parts[0]), to_num(parts[1]), options);
    }
  } else if (name.rfind("Prod-", 0) == 0) {
    return make_prod_instance(to_num(name.substr(5)), options);
  }
  throw std::invalid_argument("unrecognized benchmark instance name: " + name);
}

}  // namespace hts::benchgen
