#pragma once

// Synthetic reproductions of the four benchmark families the paper samples
// from (Meel's public model-counting/sampling suite).  The originals are
// Tseitin-encoded circuit CNFs; we rebuild each family's circuit *structure*
// and Tseitin-encode it ourselves, matching the published instance
// statistics (PI/PO/variable/clause counts of Table II) so the
// transformation and samplers exercise the same code paths.
//
// Every instance carries a witness: output targets are fixed by evaluating
// the circuit on a random input vector, so instances are satisfiable by
// construction and the witness doubles as a test oracle.
//
// Families:
//   or-k-a-b-UC-c  : OR/AND cone networks over k inputs, several outputs,
//                    plus dangling unconstrained chains ("UC").
//   w-10-i-q       : long buffer/inverter chains with embedded 2:1 MUXes
//                    (the paper's Eq. 5 comes from 75-10-1-q), one output.
//   s15850a_x_y    : ISCAS'89-scale random multi-level netlist, 600 inputs,
//                    x constrained outputs.
//   Prod-n         : n conjoined constraint modules over shared+local
//                    inputs, wide gates, 2 outputs (product-configuration
//                    style).

#include <cstdint>
#include <string>

#include "circuit/circuit.hpp"
#include "cnf/formula.hpp"

namespace hts::benchgen {

struct Instance {
  std::string name;
  std::string family;  // "or" | "q" | "s15850a" | "prod"
  /// Ground-truth circuit (pre-Tseitin) — what the transformation should
  /// approximately recover.
  circuit::Circuit circuit;
  /// Tseitin encoding of `circuit` including output-target unit clauses.
  cnf::Formula formula;
  /// circuit signal -> formula variable.
  std::vector<cnf::Var> signal_var;
  /// A satisfying assignment of `formula` (complete witness).
  cnf::Assignment witness;
};

struct GenOptions {
  /// Linear size multiplier for the two big families (s15850a, Prod); 1.0
  /// reproduces the paper's instance sizes.
  double scale = 1.0;
  /// Extra entropy mixed into the name-derived seed.
  std::uint64_t seed_mix = 0;
};

/// Builds an instance from its paper-style name (see family grammar above).
/// Throws std::invalid_argument for unrecognized names.
[[nodiscard]] Instance make_instance(const std::string& name,
                                     const GenOptions& options = {});

// Family builders (exposed for direct use in tests).
[[nodiscard]] Instance make_or_instance(std::size_t n_inputs, std::size_t variant_a,
                                        std::size_t variant_b, std::size_t variant_c,
                                        const GenOptions& options = {});
[[nodiscard]] Instance make_q_instance(std::size_t width, std::size_t variant,
                                       const GenOptions& options = {});
[[nodiscard]] Instance make_s15850_instance(std::size_t n_outputs, std::size_t variant,
                                            const GenOptions& options = {});
[[nodiscard]] Instance make_prod_instance(std::size_t n_modules,
                                          const GenOptions& options = {});

}  // namespace hts::benchgen
