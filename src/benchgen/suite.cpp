#include "benchgen/suite.hpp"

namespace hts::benchgen {

std::vector<std::string> table2_names() {
  return {
      "or-50-10-7-UC-10", "or-60-20-10-UC-10", "or-70-5-5-UC-10",
      "or-100-20-8-UC-10", "75-10-1-q",        "75-10-10-q",
      "90-10-1-q",         "90-10-10-q",       "s15850a_3_2",
      "s15850a_7_4",       "s15850a_15_7",     "Prod-8",
      "Prod-20",           "Prod-32",
  };
}

std::vector<std::string> ablation_names() {
  return {"or-100-20-8-UC-10", "90-10-10-q", "s15850a_15_7", "Prod-32"};
}

std::vector<std::string> suite60_names() {
  std::vector<std::string> names;
  // 28 or-instances: four input widths x seven variants.
  for (const int k : {50, 60, 70, 100}) {
    for (int i = 1; i <= 7; ++i) {
      names.push_back("or-" + std::to_string(k) + "-10-" + std::to_string(i) +
                      "-UC-10");
    }
  }
  // 20 q-instances: 75-10-i-q and 90-10-i-q, i = 1..10.
  for (const int w : {75, 90}) {
    for (int i = 1; i <= 10; ++i) {
      names.push_back(std::to_string(w) + "-10-" + std::to_string(i) + "-q");
    }
  }
  // 6 s15850a instances.
  for (const auto& suffix : {"3_2", "5_3", "7_4", "10_5", "15_7", "20_9"}) {
    names.push_back(std::string("s15850a_") + suffix);
  }
  // 6 Prod instances.
  for (const int n : {8, 12, 16, 20, 24, 32}) {
    names.push_back("Prod-" + std::to_string(n));
  }
  return names;
}

}  // namespace hts::benchgen
