#pragma once

// Benchmark suite manifests: the 14 Table II instances and the 60-instance
// set behind Fig. 2, mirroring the paper's evaluation scope.

#include <string>
#include <vector>

namespace hts::benchgen {

/// The 14 representative instances of Table II, in table order.
[[nodiscard]] std::vector<std::string> table2_names();

/// The 4 instances used by Figs. 3 and 4.
[[nodiscard]] std::vector<std::string> ablation_names();

/// 60 instances across the four families (Fig. 2's population).
[[nodiscard]] std::vector<std::string> suite60_names();

}  // namespace hts::benchgen
