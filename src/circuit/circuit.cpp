#include "circuit/circuit.hpp"

#include <algorithm>

namespace hts::circuit {

const char* gate_type_name(GateType type) {
  switch (type) {
    case GateType::kInput:
      return "INPUT";
    case GateType::kConst0:
      return "CONST0";
    case GateType::kConst1:
      return "CONST1";
    case GateType::kBuf:
      return "BUF";
    case GateType::kNot:
      return "NOT";
    case GateType::kAnd:
      return "AND";
    case GateType::kOr:
      return "OR";
    case GateType::kXor:
      return "XOR";
    case GateType::kNand:
      return "NAND";
    case GateType::kNor:
      return "NOR";
    case GateType::kXnor:
      return "XNOR";
  }
  return "?";
}

SignalId Circuit::add_input(std::string name) {
  const auto id = static_cast<SignalId>(gates_.size());
  gates_.push_back(Gate{GateType::kInput, {}});
  names_.push_back(std::move(name));
  inputs_.push_back(id);
  return id;
}

SignalId Circuit::add_const(bool value) {
  const auto id = static_cast<SignalId>(gates_.size());
  gates_.push_back(Gate{value ? GateType::kConst1 : GateType::kConst0, {}});
  names_.emplace_back();
  return id;
}

SignalId Circuit::add_gate(GateType type, std::vector<SignalId> fanins,
                           std::string name) {
  HTS_CHECK_MSG(type != GateType::kInput, "use add_input for primary inputs");
  const auto id = static_cast<SignalId>(gates_.size());
  for (const SignalId fanin : fanins) {
    HTS_CHECK_MSG(fanin < id, "gate fanin must reference an existing signal");
  }
  switch (type) {
    case GateType::kBuf:
    case GateType::kNot:
      HTS_CHECK_MSG(fanins.size() == 1, "BUF/NOT take exactly one fanin");
      break;
    case GateType::kConst0:
    case GateType::kConst1:
      HTS_CHECK_MSG(fanins.empty(), "constants take no fanin");
      break;
    default:
      HTS_CHECK_MSG(!fanins.empty(), "n-ary gate needs at least one fanin");
      break;
  }
  gates_.push_back(Gate{type, std::move(fanins)});
  names_.push_back(std::move(name));
  return id;
}

void Circuit::add_output(SignalId signal, bool target) {
  HTS_CHECK(signal < gates_.size());
  outputs_.push_back(OutputConstraint{signal, target});
}

std::vector<std::uint8_t> Circuit::constrained_cone() const {
  std::vector<std::uint8_t> in_cone(gates_.size(), 0);
  std::vector<SignalId> stack;
  for (const OutputConstraint& out : outputs_) stack.push_back(out.signal);
  while (!stack.empty()) {
    const SignalId id = stack.back();
    stack.pop_back();
    if (in_cone[id] != 0) continue;
    in_cone[id] = 1;
    for (const SignalId fanin : gates_[id].fanins) stack.push_back(fanin);
  }
  return in_cone;
}

std::vector<std::uint32_t> Circuit::levels() const {
  std::vector<std::uint32_t> level(gates_.size(), 0);
  for (SignalId id = 0; id < gates_.size(); ++id) {
    std::uint32_t max_fanin = 0;
    for (const SignalId fanin : gates_[id].fanins) {
      max_fanin = std::max(max_fanin, level[fanin] + 1);
    }
    level[id] = max_fanin;
  }
  return level;
}

std::uint32_t Circuit::depth() const {
  const auto lv = levels();
  return lv.empty() ? 0 : *std::max_element(lv.begin(), lv.end());
}

std::uint64_t Circuit::op_count_2input(bool count_nots) const {
  std::uint64_t ops = 0;
  for (const Gate& g : gates_) {
    switch (g.type) {
      case GateType::kInput:
      case GateType::kConst0:
      case GateType::kConst1:
      case GateType::kBuf:
        break;
      case GateType::kNot:
        if (count_nots) ops += 1;
        break;
      case GateType::kAnd:
      case GateType::kOr:
      case GateType::kXor:
        ops += g.fanins.size() - 1;
        break;
      case GateType::kNand:
      case GateType::kNor:
      case GateType::kXnor:
        ops += g.fanins.size() - 1;
        if (count_nots) ops += 1;
        break;
    }
  }
  return ops;
}

namespace {

template <typename Word>
Word eval_gate(const Gate& g, const std::vector<Word>& value, Word ones) {
  switch (g.type) {
    case GateType::kInput:
    case GateType::kConst0:
      return 0;
    case GateType::kConst1:
      return ones;
    case GateType::kBuf:
      return value[g.fanins[0]];
    case GateType::kNot:
      return static_cast<Word>(value[g.fanins[0]] ^ ones);
    case GateType::kAnd:
    case GateType::kNand: {
      Word acc = ones;
      for (const SignalId f : g.fanins) acc &= value[f];
      return g.type == GateType::kNand ? static_cast<Word>(acc ^ ones) : acc;
    }
    case GateType::kOr:
    case GateType::kNor: {
      Word acc = 0;
      for (const SignalId f : g.fanins) acc |= value[f];
      return g.type == GateType::kNor ? static_cast<Word>(acc ^ ones) : acc;
    }
    case GateType::kXor:
    case GateType::kXnor: {
      Word acc = 0;
      for (const SignalId f : g.fanins) acc ^= value[f];
      return g.type == GateType::kXnor ? static_cast<Word>(acc ^ ones) : acc;
    }
  }
  return 0;
}

}  // namespace

std::vector<std::uint8_t> Circuit::eval(
    const std::vector<std::uint8_t>& input_values) const {
  HTS_CHECK(input_values.size() == inputs_.size());
  std::vector<std::uint8_t> value(gates_.size(), 0);
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    value[inputs_[i]] = input_values[i] != 0 ? 1 : 0;
  }
  for (SignalId id = 0; id < gates_.size(); ++id) {
    if (gates_[id].type == GateType::kInput) continue;
    value[id] = eval_gate<std::uint8_t>(gates_[id], value, 1);
  }
  return value;
}

std::vector<std::uint64_t> Circuit::eval64(
    const std::vector<std::uint64_t>& input_words) const {
  HTS_CHECK(input_words.size() == inputs_.size());
  std::vector<std::uint64_t> value(gates_.size(), 0);
  for (std::size_t i = 0; i < inputs_.size(); ++i) value[inputs_[i]] = input_words[i];
  for (SignalId id = 0; id < gates_.size(); ++id) {
    if (gates_[id].type == GateType::kInput) continue;
    value[id] = eval_gate<std::uint64_t>(gates_[id], value, ~0ULL);
  }
  return value;
}

bool Circuit::outputs_satisfied(const std::vector<std::uint8_t>& signal_values) const {
  for (const OutputConstraint& out : outputs_) {
    if ((signal_values[out.signal] != 0) != out.target) return false;
  }
  return true;
}

std::uint64_t Circuit::outputs_satisfied64(
    const std::vector<std::uint64_t>& signal_words) const {
  std::uint64_t ok = ~0ULL;
  for (const OutputConstraint& out : outputs_) {
    const std::uint64_t word = signal_words[out.signal];
    ok &= out.target ? word : ~word;
  }
  return ok;
}

}  // namespace hts::circuit
