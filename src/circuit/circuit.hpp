#pragma once

// Multi-level, multi-output Boolean network IR.
//
// This is the target representation of the paper's transformation: gates
// over signals, primary inputs, and a list of (output signal, target value)
// constraints.  Signals are created in topological order by construction
// (a gate may only reference existing signals), so evaluation is a single
// forward sweep.  Gates are n-ary; the probabilistic compiler (hts::prob)
// binarizes them.

#include <cstdint>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace hts::circuit {

using SignalId = std::uint32_t;
inline constexpr SignalId kNoSignal = static_cast<SignalId>(-1);

enum class GateType : std::uint8_t {
  kInput,   // primary input; no fanin
  kConst0,  // constant driver
  kConst1,
  kBuf,  // identity (1 fanin)
  kNot,  // inverter (1 fanin)
  kAnd,  // n-ary
  kOr,
  kXor,
  kNand,
  kNor,
  kXnor,
};

[[nodiscard]] const char* gate_type_name(GateType type);

struct Gate {
  GateType type = GateType::kInput;
  std::vector<SignalId> fanins;
};

/// An output constraint: this signal must evaluate to `target`.
struct OutputConstraint {
  SignalId signal = kNoSignal;
  bool target = true;
};

class Circuit {
 public:
  // --- construction -------------------------------------------------------

  SignalId add_input(std::string name = "");
  SignalId add_const(bool value);
  /// Fanins must all be < current signal count (enforces acyclicity).
  SignalId add_gate(GateType type, std::vector<SignalId> fanins,
                    std::string name = "");

  void add_output(SignalId signal, bool target = true);

  void set_name(SignalId signal, std::string name) { names_[signal] = std::move(name); }

  // --- structure ----------------------------------------------------------

  [[nodiscard]] std::size_t n_signals() const { return gates_.size(); }
  [[nodiscard]] std::size_t n_inputs() const { return inputs_.size(); }
  [[nodiscard]] std::size_t n_gates() const { return gates_.size() - inputs_.size(); }
  [[nodiscard]] const std::vector<SignalId>& inputs() const { return inputs_; }
  [[nodiscard]] const std::vector<OutputConstraint>& outputs() const { return outputs_; }
  [[nodiscard]] const Gate& gate(SignalId id) const { return gates_[id]; }
  [[nodiscard]] const std::string& name(SignalId id) const { return names_[id]; }
  [[nodiscard]] bool is_input(SignalId id) const {
    return gates_[id].type == GateType::kInput;
  }

  /// Signals in the transitive fanin of any constrained output, including
  /// the outputs themselves ("constrained paths" in the paper; everything
  /// else lies on unconstrained paths).
  [[nodiscard]] std::vector<std::uint8_t> constrained_cone() const;

  /// Logic depth (inputs/constants at level 0).
  [[nodiscard]] std::vector<std::uint32_t> levels() const;
  [[nodiscard]] std::uint32_t depth() const;

  /// 2-input gate-equivalent op count: n-ary gates cost (n-1), BUF costs 0,
  /// NOT costs count_nots; NAND/NOR/XNOR cost (n-1)+count_nots.  This is the
  /// denominator of the paper's Fig. 4 (middle) reduction rate.
  [[nodiscard]] std::uint64_t op_count_2input(bool count_nots = true) const;

  // --- evaluation ----------------------------------------------------------

  /// Forward-evaluates all signals given values for inputs() in order.
  [[nodiscard]] std::vector<std::uint8_t> eval(
      const std::vector<std::uint8_t>& input_values) const;

  /// Bit-parallel forward evaluation: each word carries 64 independent
  /// samples.  input_words is indexed like inputs(); returns per-signal
  /// words.  This is the hardened-solution verification backend.
  [[nodiscard]] std::vector<std::uint64_t> eval64(
      const std::vector<std::uint64_t>& input_words) const;

  /// True iff the evaluation (per-signal values) meets every output
  /// constraint.
  [[nodiscard]] bool outputs_satisfied(const std::vector<std::uint8_t>& signal_values) const;

  /// Bitmask (per sample lane) of lanes meeting all output constraints.
  [[nodiscard]] std::uint64_t outputs_satisfied64(
      const std::vector<std::uint64_t>& signal_words) const;

 private:
  std::vector<Gate> gates_;
  std::vector<std::string> names_;
  std::vector<SignalId> inputs_;
  std::vector<OutputConstraint> outputs_;
};

}  // namespace hts::circuit
