#include "circuit/eval_plan.hpp"

#include <algorithm>

#include "tensor/simd.hpp"
#include "util/check.hpp"
#include "util/plan_order.hpp"
#include "verify/plan_verifier.hpp"

namespace hts::circuit {

static_assert(EvalPlan::kBlockWords == tensor::simd::kWordLanes,
              "eval_block packs one u64x4 vector per op");

namespace {

/// Base (non-inverted) tree opcode of an n-ary gate, and whether the gate
/// complements its final result.
struct GateLowering {
  WordOp base;
  bool invert;
};

GateLowering lower_gate(GateType type) {
  switch (type) {
    case GateType::kAnd:
      return {WordOp::kAnd, false};
    case GateType::kNand:
      return {WordOp::kAnd, true};
    case GateType::kOr:
      return {WordOp::kOr, false};
    case GateType::kNor:
      return {WordOp::kOr, true};
    case GateType::kXor:
      return {WordOp::kXor, false};
    case GateType::kXnor:
      return {WordOp::kXor, true};
    default:
      return {WordOp::kCopy, false};  // unreachable for n-ary callers
  }
}

WordOp inverted(WordOp base) {
  switch (base) {
    case WordOp::kAnd:
      return WordOp::kNand;
    case WordOp::kOr:
      return WordOp::kNor;
    case WordOp::kXor:
      return WordOp::kXnor;
    default:
      return WordOp::kNot;
  }
}

}  // namespace

EvalPlan::EvalPlan(const Circuit& circuit) {
  n_signals_ = circuit.n_signals();
  n_slots_ = n_signals_;
  input_signal_ = circuit.inputs();
  outputs_ = circuit.outputs();

  // ---- binarize: one 2-input word op per tree node ----
  // Ops are emitted in topological order (operands always reference existing
  // slots), unsorted; levelization below reorders them.
  std::vector<WordOp> op;
  std::vector<std::uint32_t> dst;
  std::vector<std::uint32_t> a;
  std::vector<std::uint32_t> b;
  auto emit = [&](WordOp o, std::uint32_t d, std::uint32_t x, std::uint32_t y) {
    op.push_back(o);
    dst.push_back(d);
    a.push_back(x);
    b.push_back(y);
  };
  std::vector<std::uint32_t> frontier;
  for (SignalId s = 0; s < circuit.n_signals(); ++s) {
    const Gate& gate = circuit.gate(s);
    switch (gate.type) {
      case GateType::kInput:
        break;
      case GateType::kConst0:
      case GateType::kConst1:
        const_slots_.push_back(
            ConstSlot{s, gate.type == GateType::kConst1 ? ~0ULL : 0ULL});
        break;
      case GateType::kBuf:
        emit(WordOp::kCopy, s, gate.fanins[0], gate.fanins[0]);
        break;
      case GateType::kNot:
        emit(WordOp::kNot, s, gate.fanins[0], gate.fanins[0]);
        break;
      default: {
        const GateLowering lowering = lower_gate(gate.type);
        // Balanced pairwise reduction: bitwise AND/OR/XOR are associative and
        // commutative, so any tree computes eval64's left fold exactly, and
        // the balanced shape keeps the plan ceil(log2 n) levels deep.
        frontier.assign(gate.fanins.begin(), gate.fanins.end());
        if (frontier.size() == 1) {
          // eval_gate folds a 1-fanin NAND/NOR/XNOR to NOT, AND/OR/XOR to
          // the fanin itself.
          emit(lowering.invert ? WordOp::kNot : WordOp::kCopy, s, frontier[0],
               frontier[0]);
          break;
        }
        while (frontier.size() > 2) {
          std::size_t out = 0;
          for (std::size_t i = 0; i + 1 < frontier.size(); i += 2) {
            const auto temp = static_cast<std::uint32_t>(n_slots_++);
            emit(lowering.base, temp, frontier[i], frontier[i + 1]);
            frontier[out++] = temp;
          }
          if (frontier.size() % 2 != 0) frontier[out++] = frontier.back();
          frontier.resize(out);
        }
        emit(lowering.invert ? inverted(lowering.base) : lowering.base, s,
             frontier[0], frontier[1]);
        break;
      }
    }
  }

  // ---- levelize: ASAP levels over the slot dependency DAG (shared rule,
  // util/plan_order.hpp), then an opcode sort inside each level so
  // same-opcode ops sit contiguously — the run-length dispatch below
  // executes one switch per run, not per op.  Ops of one level are mutually
  // independent, so any within-level order is exact.
  const std::size_t n = op.size();
  util::LevelOrder levels = util::levelize_asap(
      n, n_slots_,
      [&op, &a, &b](std::size_t i,
                    const std::vector<std::uint32_t>& slot_level) {
        std::uint32_t lvl = slot_level[a[i]];
        if (word_op_is_binary(op[i])) lvl = std::max(lvl, slot_level[b[i]]);
        return lvl;
      },
      [&dst](std::size_t i) { return dst[i]; });
  const auto n_levels = static_cast<std::uint32_t>(levels.n_levels());
  const std::vector<std::uint32_t>& level_begin = levels.level_begin;
  std::vector<std::uint32_t>& order = levels.order;
  for (std::uint32_t l = 0; l < n_levels; ++l) {
    std::stable_sort(order.begin() + level_begin[l],
                     order.begin() + level_begin[l + 1],
                     [&op](std::uint32_t x, std::uint32_t y) {
                       return static_cast<std::uint8_t>(op[x]) <
                              static_cast<std::uint8_t>(op[y]);
                     });
  }

  op_.resize(n);
  dst_.resize(n);
  a_.resize(n);
  b_.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::uint32_t i = order[k];
    op_[k] = op[i];
    dst_[k] = dst[i];
    a_[k] = a[i];
    b_[k] = b[i];
  }

  // ---- run boundaries: maximal same-opcode stretches within a level ----
  run_begin_ = util::partition_opcode_runs(op_, level_begin);

  stats_.n_ops = n;
  stats_.n_temp_slots = n_slots_ - n_signals_;
  stats_.n_levels = n_levels;
  for (std::size_t l = 0; l < n_levels; ++l) {
    stats_.max_level_width = std::max<std::size_t>(
        stats_.max_level_width, level_begin[l + 1] - level_begin[l]);
  }
  stats_.n_runs = run_begin_.size() - 1;
  stats_.max_run_length = util::max_run_length(run_begin_);

  // Self-check hook: every plan this process builds is proven well-formed
  // when plan verification is on (Debug default; HTS_VERIFY_PLANS
  // overrides).  A violation is a compiler bug, not an input error — abort
  // with the structured report.
  if (verify::plans_verified()) {
    const verify::Report report = verify::verify_eval_plan(*this);
    HTS_CHECK_MSG(report.ok(), report.to_string().c_str());
  }
}

void EvalPlan::eval_block(const std::uint64_t* packed, std::size_t n_words,
                          std::size_t w0, std::size_t count,
                          std::uint64_t* slots) const {
  namespace simd = tensor::simd;
  using simd::u64x4;

  for (const ConstSlot& c : const_slots_) {
    simd::store_u64(slots + c.slot * kBlockWords, simd::broadcast_u64(c.value));
  }
  // Unpack: the packed layout keeps a block's words contiguous per input.
  for (std::size_t i = 0; i < input_signal_.size(); ++i) {
    std::uint64_t* row =
        slots + static_cast<std::size_t>(input_signal_[i]) * kBlockWords;
    const std::uint64_t* src = packed + i * n_words + w0;
    for (std::size_t lane = 0; lane < kBlockWords; ++lane) {
      row[lane] = lane < count ? src[lane] : 0;
    }
  }

  // Run-length dispatch: one opcode switch per run, a branch-free inner loop
  // per run body, one u64x4 op per (plan op, block).  Unary plan entries
  // mirror `a` into `b`, so every kernel can take both operands.
  auto run = [this, slots](std::uint32_t begin, std::uint32_t end,
                           auto&& kernel) {
    for (std::uint32_t i = begin; i < end; ++i) {
      simd::store_u64(slots + dst_[i] * kBlockWords,
                      kernel(simd::load_u64(slots + a_[i] * kBlockWords),
                             simd::load_u64(slots + b_[i] * kBlockWords)));
    }
  };
  const std::size_t n_runs = run_begin_.size() - 1;
  for (std::size_t k = 0; k < n_runs; ++k) {
    const std::uint32_t begin = run_begin_[k];
    const std::uint32_t end = run_begin_[k + 1];
    switch (op_[begin]) {
      case WordOp::kCopy:
        run(begin, end, [](u64x4 a, u64x4) { return a; });
        break;
      case WordOp::kNot:
        run(begin, end, [](u64x4 a, u64x4) { return ~a; });
        break;
      case WordOp::kAnd:
        run(begin, end, [](u64x4 a, u64x4 b) { return a & b; });
        break;
      case WordOp::kOr:
        run(begin, end, [](u64x4 a, u64x4 b) { return a | b; });
        break;
      case WordOp::kXor:
        run(begin, end, [](u64x4 a, u64x4 b) { return a ^ b; });
        break;
      case WordOp::kNand:
        run(begin, end, [](u64x4 a, u64x4 b) { return ~(a & b); });
        break;
      case WordOp::kNor:
        run(begin, end, [](u64x4 a, u64x4 b) { return ~(a | b); });
        break;
      case WordOp::kXnor:
        run(begin, end, [](u64x4 a, u64x4 b) { return ~(a ^ b); });
        break;
    }
  }
}

std::uint64_t EvalPlan::satisfied(const std::uint64_t* slots,
                                  std::size_t lane) const {
  std::uint64_t ok = ~0ULL;
  for (const OutputConstraint& out : outputs_) {
    const std::uint64_t word = signal_word(slots, out.signal, lane);
    ok &= out.target ? word : ~word;
  }
  return ok;
}

std::vector<std::uint64_t> EvalPlan::eval64(
    const std::vector<std::uint64_t>& input_words) const {
  HTS_CHECK(input_words.size() == input_signal_.size());
  // One lane of one block; `packed` with n_words == 1 is exactly the
  // per-input word vector.
  std::vector<std::uint64_t> slots(scratch_words(), 0);
  eval_block(input_words.data(), 1, 0, 1, slots.data());
  std::vector<std::uint64_t> values(n_signals_);
  for (SignalId s = 0; s < n_signals_; ++s) {
    values[s] = signal_word(slots.data(), s, 0);
  }
  return values;
}

}  // namespace hts::circuit
