#pragma once

// Compiled, levelized, word-parallel evaluation plan for circuit::Circuit.
//
// Circuit::eval64 is a faithful but slow reference: every call re-allocates a
// per-signal value vector, walks the gate list with a per-gate type switch,
// and loops n-ary fanins one at a time.  That interpreter sits on the harvest
// hot path — every hardened batch is validated 64 rows per word — so this
// module is its compiled analogue of prob::CompiledCircuit/ExecPlan for the
// discrete side of the loop:
//
//   - gates binarize into 2-input word ops (balanced reduction trees, so an
//     n-ary gate costs ceil(log2 n) levels instead of a depth-(n-1) chain;
//     bitwise logic is associative, so the result is exactly eval64's),
//   - ops are assigned ASAP levels and regrouped level by level, and inside
//     each level sorted by opcode so same-opcode *runs* emerge; execution
//     dispatches once per run and streams the run body through a tight inner
//     loop instead of switching per op,
//   - evaluation is blocked kBlockWords words at a time: one tensor::simd
//     u64x4 op evaluates a gate for 4 x 64 = 256 batch rows.
//
// Signal s lives in slot s (temporaries for binarized trees are appended
// after the signals), so per-signal words read straight out of the scratch
// buffer — the harvester projects solutions and the differential tests
// compare against eval64 without any translation table.  All ops are exact
// bitwise logic: the plan is bit-identical to Circuit::eval64 by
// construction, and tests/harvest_diff_test.cpp fuzzes that claim.

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"

namespace hts::circuit {

/// 2-input bitwise opcodes of the compiled plan.  The inverted forms fold a
/// NAND/NOR/XNOR gate's trailing complement into its final tree op, so an
/// inverted gate costs no extra op.
enum class WordOp : std::uint8_t {
  kCopy,
  kNot,
  kAnd,
  kOr,
  kXor,
  kNand,
  kNor,
  kXnor,
};

[[nodiscard]] constexpr bool word_op_is_binary(WordOp op) {
  return op != WordOp::kCopy && op != WordOp::kNot;
}

/// Plan shape, for bench JSON and tests (mean run length = n_ops / n_runs).
struct EvalPlanStats {
  std::size_t n_ops = 0;
  std::size_t n_temp_slots = 0;
  std::size_t n_levels = 0;
  std::size_t max_level_width = 0;
  std::size_t n_runs = 0;
  std::size_t max_run_length = 0;
};

class EvalPlan {
 public:
  /// Words evaluated per block: one u64x4 vector op per plan op.
  static constexpr std::size_t kBlockWords = 4;

  struct ConstSlot {
    std::uint32_t slot;
    std::uint64_t value;  // 0 or ~0
  };

  explicit EvalPlan(const Circuit& circuit);

  [[nodiscard]] std::size_t n_slots() const { return n_slots_; }
  [[nodiscard]] std::size_t n_signals() const { return n_signals_; }
  [[nodiscard]] std::size_t n_inputs() const { return input_signal_.size(); }
  [[nodiscard]] const EvalPlanStats& stats() const { return stats_; }

  /// Scratch u64s one eval_block call needs (layout: slot-major,
  /// slots[slot * kBlockWords + lane]).
  [[nodiscard]] std::size_t scratch_words() const {
    return n_slots_ * kBlockWords;
  }

  /// Evaluates words [w0, w0 + count) of a packed batch into `slots`
  /// (scratch_words() u64s; lane = word - w0).  `packed` is the harden()
  /// layout: packed[input * n_words + w] carries rows [64w, 64w + 63] of
  /// circuit input `input`.  count <= kBlockWords; lanes past count hold
  /// zero-input evaluations and must not be read.
  void eval_block(const std::uint64_t* packed, std::size_t n_words,
                  std::size_t w0, std::size_t count,
                  std::uint64_t* slots) const;

  /// Per-row satisfied mask of one evaluated lane — bit r set iff row r of
  /// that word meets every output constraint (Circuit::outputs_satisfied64).
  [[nodiscard]] std::uint64_t satisfied(const std::uint64_t* slots,
                                        std::size_t lane) const;

  /// Word of signal `id` in evaluated lane `lane` (signal s == slot s).
  [[nodiscard]] static std::uint64_t signal_word(const std::uint64_t* slots,
                                                 SignalId id,
                                                 std::size_t lane) {
    return slots[static_cast<std::size_t>(id) * kBlockWords + lane];
  }

  /// Drop-in replacement for Circuit::eval64 (allocates; for tests and
  /// one-off callers — the hot path is eval_block over reused scratch).
  [[nodiscard]] std::vector<std::uint64_t> eval64(
      const std::vector<std::uint64_t>& input_words) const;

  // Read-only plan internals, exposed for the plan-IR verifier
  // (verify/plan_verifier.hpp) and structural tests.
  [[nodiscard]] const std::vector<WordOp>& ops() const { return op_; }
  [[nodiscard]] const std::vector<std::uint32_t>& dsts() const { return dst_; }
  [[nodiscard]] const std::vector<std::uint32_t>& operand_a() const {
    return a_;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& operand_b() const {
    return b_;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& run_begin() const {
    return run_begin_;
  }
  [[nodiscard]] const std::vector<SignalId>& input_signals() const {
    return input_signal_;
  }
  [[nodiscard]] const std::vector<ConstSlot>& const_slots() const {
    return const_slots_;
  }
  [[nodiscard]] const std::vector<OutputConstraint>& output_constraints()
      const {
    return outputs_;
  }

 private:
  std::size_t n_signals_ = 0;
  std::size_t n_slots_ = 0;
  /// Parallel arrays ordered by (level, opcode): the compiled plan.
  std::vector<WordOp> op_;
  std::vector<std::uint32_t> dst_;
  std::vector<std::uint32_t> a_;
  std::vector<std::uint32_t> b_;
  /// Run k spans plan indices [run_begin_[k], run_begin_[k + 1]); all ops of
  /// a run share one opcode and one level.
  std::vector<std::uint32_t> run_begin_;
  /// Signal ids of the circuit's inputs, in inputs() order.
  std::vector<SignalId> input_signal_;
  std::vector<ConstSlot> const_slots_;
  std::vector<OutputConstraint> outputs_;
  EvalPlanStats stats_;
};

}  // namespace hts::circuit
