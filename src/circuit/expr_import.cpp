#include "circuit/expr_import.hpp"

#include <vector>

namespace hts::circuit {

SignalId lower_expr(Circuit& circuit, const expr::Manager& exprs, expr::ExprId root,
                    const std::unordered_map<std::uint32_t, SignalId>& var_to_signal,
                    std::unordered_map<expr::ExprId, SignalId>& memo) {
  using expr::ExprId;
  using expr::Kind;

  std::vector<std::pair<ExprId, bool>> stack{{root, false}};
  while (!stack.empty()) {
    auto [cur, expanded] = stack.back();
    stack.pop_back();
    if (memo.contains(cur)) continue;
    if (!expanded) {
      stack.push_back({cur, true});
      for (const ExprId c : exprs.children(cur)) stack.push_back({c, false});
      continue;
    }
    SignalId signal = kNoSignal;
    switch (exprs.kind(cur)) {
      case Kind::kConst0:
        signal = circuit.add_const(false);
        break;
      case Kind::kConst1:
        signal = circuit.add_const(true);
        break;
      case Kind::kVar: {
        const auto it = var_to_signal.find(exprs.var_index(cur));
        HTS_CHECK_MSG(it != var_to_signal.end(),
                      "expression variable has no driving signal");
        signal = it->second;
        break;
      }
      case Kind::kNot:
        signal = circuit.add_gate(GateType::kNot,
                                  {memo.at(exprs.children(cur)[0])});
        break;
      case Kind::kAnd:
      case Kind::kOr:
      case Kind::kXor: {
        std::vector<SignalId> fanins;
        fanins.reserve(exprs.children(cur).size());
        for (const ExprId c : exprs.children(cur)) fanins.push_back(memo.at(c));
        const GateType type = exprs.kind(cur) == Kind::kAnd  ? GateType::kAnd
                              : exprs.kind(cur) == Kind::kOr ? GateType::kOr
                                                             : GateType::kXor;
        signal = circuit.add_gate(type, std::move(fanins));
        break;
      }
    }
    memo.emplace(cur, signal);
  }
  return memo.at(root);
}

}  // namespace hts::circuit
