#pragma once

// Lowers hts::expr DAGs into circuit gates.  Used by the transformation to
// materialize each recovered Boolean sub-expression.

#include <unordered_map>

#include "circuit/circuit.hpp"
#include "expr/expr.hpp"

namespace hts::circuit {

/// Builds gates computing `root` inside `circuit`.  Leaves (expression
/// variables) are resolved through var_to_signal, which must cover the
/// support of root.  `memo` caches expression -> signal across calls so
/// shared sub-expressions lower once; pass a fresh memo if var_to_signal
/// entries may be rebound between calls.
[[nodiscard]] SignalId lower_expr(Circuit& circuit, const expr::Manager& exprs,
                                  expr::ExprId root,
                                  const std::unordered_map<std::uint32_t, SignalId>& var_to_signal,
                                  std::unordered_map<expr::ExprId, SignalId>& memo);

}  // namespace hts::circuit
