#include "circuit/tseitin.hpp"

namespace hts::circuit {

namespace {

using cnf::Clause;
using cnf::Formula;
using cnf::Lit;
using cnf::Var;

/// Emits the 4-clause signature of c = a XOR b.
void emit_xor2(Formula& formula, Var c, Var a, Var b) {
  formula.add_clause({Lit(c, true), Lit(a, false), Lit(b, false)});
  formula.add_clause({Lit(c, true), Lit(a, true), Lit(b, true)});
  formula.add_clause({Lit(c, false), Lit(a, true), Lit(b, false)});
  formula.add_clause({Lit(c, false), Lit(a, false), Lit(b, true)});
}

/// AND signature (Eq. 3) with optional output inversion (covers NAND):
/// (f | ~x1 | ... | ~xn) and (~f | xi) for each i; NAND flips f.
void emit_and(Formula& formula, Var out, bool invert_out,
              const std::vector<Var>& xs) {
  Clause big;
  big.reserve(xs.size() + 1);
  big.push_back(Lit(out, invert_out));
  for (const Var x : xs) {
    big.push_back(Lit(x, true));
    formula.add_clause({Lit(out, !invert_out), Lit(x, false)});
  }
  formula.add_clause(big);
}

/// OR signature (Eq. 2) with optional output inversion (covers NOR):
/// (~f | x1 | ... | xn) and (f | ~xi) for each i; NOR flips f.
void emit_or(Formula& formula, Var out, bool invert_out,
             const std::vector<Var>& xs) {
  Clause big;
  big.reserve(xs.size() + 1);
  big.push_back(Lit(out, !invert_out));
  for (const Var x : xs) {
    big.push_back(Lit(x, false));
    formula.add_clause({Lit(out, invert_out), Lit(x, true)});
  }
  formula.add_clause(big);
}

}  // namespace

TseitinResult tseitin_encode(const Circuit& circuit, bool include_output_units) {
  TseitinResult result;
  Formula& formula = result.formula;
  result.signal_var.resize(circuit.n_signals());
  for (SignalId s = 0; s < circuit.n_signals(); ++s) {
    result.signal_var[s] = formula.new_var();
  }

  auto fanin_vars = [&](const Gate& g) {
    std::vector<Var> vars;
    vars.reserve(g.fanins.size());
    for (const SignalId f : g.fanins) vars.push_back(result.signal_var[f]);
    return vars;
  };

  for (SignalId s = 0; s < circuit.n_signals(); ++s) {
    const Gate& g = circuit.gate(s);
    const Var out = result.signal_var[s];
    switch (g.type) {
      case GateType::kInput:
        break;
      case GateType::kConst0:
        formula.add_clause({Lit(out, true)});
        break;
      case GateType::kConst1:
        formula.add_clause({Lit(out, false)});
        break;
      case GateType::kBuf: {
        const Var x = result.signal_var[g.fanins[0]];
        formula.add_clause({Lit(out, true), Lit(x, false)});
        formula.add_clause({Lit(out, false), Lit(x, true)});
        break;
      }
      case GateType::kNot: {
        // Eq. (1): (f | x)(~f | ~x).
        const Var x = result.signal_var[g.fanins[0]];
        formula.add_clause({Lit(out, false), Lit(x, false)});
        formula.add_clause({Lit(out, true), Lit(x, true)});
        break;
      }
      case GateType::kAnd:
      case GateType::kNand:
        emit_and(formula, out, g.type == GateType::kNand, fanin_vars(g));
        break;
      case GateType::kOr:
      case GateType::kNor:
        emit_or(formula, out, g.type == GateType::kNor, fanin_vars(g));
        break;
      case GateType::kXor:
      case GateType::kXnor: {
        // Chain through aux variables: t1 = x1^x2, t2 = t1^x3, ...; the
        // output equals the last chain var (XOR) or its inverse (XNOR).
        const std::vector<Var> xs = fanin_vars(g);
        Var acc = xs[0];
        if (xs.size() == 1) {
          // Degenerate single-input XOR == BUF (XNOR == NOT).
          const bool invert = g.type == GateType::kXnor;
          formula.add_clause({Lit(out, true), Lit(acc, invert)});
          formula.add_clause({Lit(out, false), Lit(acc, !invert)});
          break;
        }
        for (std::size_t i = 1; i < xs.size(); ++i) {
          const bool last = i + 1 == xs.size();
          if (last && g.type == GateType::kXor) {
            emit_xor2(formula, out, acc, xs[i]);
          } else if (last) {
            // XNOR: out = ~(acc ^ xs[i]) — swap polarity by encoding
            // out ^ acc ^ xs[i] = 1, i.e. xor2 with inverted out.
            formula.add_clause({Lit(out, false), Lit(acc, false), Lit(xs[i], false)});
            formula.add_clause({Lit(out, false), Lit(acc, true), Lit(xs[i], true)});
            formula.add_clause({Lit(out, true), Lit(acc, true), Lit(xs[i], false)});
            formula.add_clause({Lit(out, true), Lit(acc, false), Lit(xs[i], true)});
          } else {
            const Var t = formula.new_var();
            emit_xor2(formula, t, acc, xs[i]);
            acc = t;
          }
        }
        break;
      }
    }
  }

  if (include_output_units) {
    for (const OutputConstraint& out : circuit.outputs()) {
      formula.add_clause({Lit(result.signal_var[out.signal], !out.target)});
    }
  }
  return result;
}

}  // namespace hts::circuit
