#pragma once

// Tseitin encoding: circuit -> equisatisfiable CNF.
//
// Emits exactly the clause signatures the paper lists in Eqs. (1)-(4): one
// variable per circuit signal, the AND/OR/NOT/XOR gate signatures, and unit
// clauses for output constraints.  This is both a substrate (the benchmark
// generator synthesizes circuits and ships their CNF, as the original suite
// did) and the ground truth for round-trip tests of the transformation.

#include <vector>

#include "circuit/circuit.hpp"
#include "cnf/formula.hpp"

namespace hts::circuit {

struct TseitinResult {
  cnf::Formula formula;
  /// signal -> CNF variable.  XOR/XNOR gates with >2 fanins introduce extra
  /// chain variables beyond these.
  std::vector<cnf::Var> signal_var;
};

/// include_output_units: when true (default), each output constraint becomes
/// a unit clause, making the CNF's solutions exactly the circuit's
/// satisfying input assignments (extended to all signals).
[[nodiscard]] TseitinResult tseitin_encode(const Circuit& circuit,
                                           bool include_output_units = true);

}  // namespace hts::circuit
