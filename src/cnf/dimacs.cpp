#include "cnf/dimacs.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

namespace hts::cnf {

namespace {

struct Cursor {
  std::istream* in;
  std::size_t line = 1;
  bool at_line_start = true;
  /// Whether the most recent token was the first on its line (distinguishes
  /// a SATLIB '%' footer line from a stray '%' inside a clause line).
  bool token_started_line = false;

  /// Reads the next whitespace-delimited token, tracking line numbers and
  /// skipping comment lines (a 'c' in the first column).  Returns false at
  /// end of input.
  bool next_token(std::string& token) {
    token.clear();
    int ch = in->get();
    for (;;) {
      while (ch != EOF && std::isspace(ch) != 0) {
        if (ch == '\n') {
          ++line;
          at_line_start = true;
        }
        ch = in->get();
      }
      if (ch == 'c' && at_line_start) {
        // Comment: swallow the rest of the line.
        while (ch != EOF && ch != '\n') ch = in->get();
        continue;
      }
      break;
    }
    if (ch == EOF) return false;
    token_started_line = at_line_start;
    at_line_start = false;
    while (ch != EOF && std::isspace(ch) == 0) {
      token.push_back(static_cast<char>(ch));
      ch = in->get();
    }
    if (ch == '\n') {
      ++line;
      at_line_start = true;
    }
    return true;
  }
};

[[nodiscard]] long long parse_int(const std::string& token, std::size_t line) {
  std::size_t pos = 0;
  long long value = 0;
  try {
    value = std::stoll(token, &pos);
  } catch (const std::exception&) {
    throw DimacsError("expected integer, got '" + token + "'", line);
  }
  if (pos != token.size()) {
    throw DimacsError("trailing junk in integer '" + token + "'", line);
  }
  return value;
}

}  // namespace

Formula parse_dimacs(std::istream& in) {
  Cursor cursor{&in};
  std::string token;

  // Header: "p cnf <vars> <clauses>".
  long long declared_vars = -1;
  long long declared_clauses = -1;
  while (cursor.next_token(token)) {
    if (token == "p") {
      if (!cursor.next_token(token) || token != "cnf") {
        throw DimacsError("expected 'cnf' after 'p'", cursor.line);
      }
      if (!cursor.next_token(token)) throw DimacsError("missing var count", cursor.line);
      declared_vars = parse_int(token, cursor.line);
      if (!cursor.next_token(token)) {
        throw DimacsError("missing clause count", cursor.line);
      }
      declared_clauses = parse_int(token, cursor.line);
      break;
    }
    throw DimacsError("expected 'p cnf' header, got '" + token + "'", cursor.line);
  }
  if (declared_vars < 0 || declared_clauses < 0) {
    throw DimacsError("missing 'p cnf' header", cursor.line);
  }

  Formula formula(static_cast<Var>(declared_vars));
  Clause current;
  bool clause_open = false;
  while (cursor.next_token(token)) {
    if (token == "%" && cursor.token_started_line) {
      // SATLIB footer: a '%' starting a line ends the clause section;
      // whatever follows (conventionally a lone '0' and blank lines) is
      // ignored.  A '%' elsewhere still falls through to parse_int's error —
      // mid-line it marks corruption, not a footer.
      if (clause_open) {
        throw DimacsError("last clause missing terminating 0", cursor.line);
      }
      if (static_cast<long long>(formula.n_clauses()) < declared_clauses) {
        // A footer before all declared clauses arrived marks a truncated
        // file, not a SATLIB ending (real SATLIB footers follow the full
        // clause list).  Surplus clauses stay tolerated, matching the
        // parser's leniency at EOF.
        throw DimacsError("'%' footer after only " +
                              std::to_string(formula.n_clauses()) + " of " +
                              std::to_string(declared_clauses) +
                              " declared clauses",
                          cursor.line);
      }
      return formula;
    }
    const long long value = parse_int(token, cursor.line);
    if (value == 0) {
      formula.add_clause(current);
      current.clear();
      clause_open = false;
      continue;
    }
    const long long var_1based = value > 0 ? value : -value;
    if (var_1based > declared_vars) {
      throw DimacsError("literal " + token + " exceeds declared variable count " +
                            std::to_string(declared_vars),
                        cursor.line);
    }
    current.push_back(Lit::from_dimacs(static_cast<int>(value)));
    clause_open = true;
  }
  if (clause_open) {
    throw DimacsError("last clause missing terminating 0", cursor.line);
  }
  return formula;
}

Formula parse_dimacs_string(const std::string& text) {
  std::istringstream in(text);
  return parse_dimacs(in);
}

Formula parse_dimacs_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open DIMACS file: " + path);
  return parse_dimacs(in);
}

void write_dimacs(const Formula& formula, std::ostream& out,
                  const std::string& comment) {
  if (!comment.empty()) {
    std::istringstream lines(comment);
    std::string line;
    while (std::getline(lines, line)) out << "c " << line << '\n';
  }
  out << "p cnf " << formula.n_vars() << ' ' << formula.n_clauses() << '\n';
  for (const Clause& clause : formula.clauses()) {
    for (const Lit lit : clause) out << lit.to_dimacs() << ' ';
    out << "0\n";
  }
}

std::string to_dimacs_string(const Formula& formula, const std::string& comment) {
  std::ostringstream out;
  write_dimacs(formula, out, comment);
  return out.str();
}

}  // namespace hts::cnf
