#include "cnf/dimacs.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

namespace hts::cnf {

namespace {

[[nodiscard]] long long parse_int(const std::string& token, std::size_t line) {
  std::size_t pos = 0;
  long long value = 0;
  try {
    value = std::stoll(token, &pos);
  } catch (const std::exception&) {
    throw DimacsError("expected integer, got '" + token + "'", line);
  }
  if (pos != token.size()) {
    throw DimacsError("trailing junk in integer '" + token + "'", line);
  }
  return value;
}

struct Cursor {
  std::istream* in = nullptr;
  std::size_t line = 1;
  bool at_line_start = true;
  /// Whether the most recent token was the first on its line (distinguishes
  /// a SATLIB '%' footer line from a stray '%' inside a clause line).
  bool token_started_line = false;
  /// 1-based variables accumulated from 'c ind' declarations, with the line
  /// each appeared on (range validation happens once the header is known).
  std::vector<std::pair<long long, std::size_t>> ind;

  /// Reads the next whitespace-delimited token, tracking line numbers and
  /// consuming comment lines (a 'c' in the first column).  'c ind'
  /// declarations are collected; other comments are discarded.  Returns
  /// false at end of input.
  bool next_token(std::string& token) {
    token.clear();
    int ch = in->get();
    for (;;) {
      while (ch != EOF && std::isspace(ch) != 0) {
        if (ch == '\n') {
          ++line;
          at_line_start = true;
        }
        ch = in->get();
      }
      if (ch == 'c' && at_line_start) {
        // Comment: capture the rest of the line (the '\n' stays unconsumed
        // for the whitespace loop's line accounting) and inspect it for a
        // sampling-set declaration.
        const std::size_t comment_line = line;
        std::string rest;
        ch = in->get();
        while (ch != EOF && ch != '\n') {
          rest.push_back(static_cast<char>(ch));
          ch = in->get();
        }
        note_comment(rest, comment_line);
        continue;
      }
      break;
    }
    if (ch == EOF) return false;
    token_started_line = at_line_start;
    at_line_start = false;
    while (ch != EOF && std::isspace(ch) == 0) {
      token.push_back(static_cast<char>(ch));
      ch = in->get();
    }
    if (ch == '\n') {
      ++line;
      at_line_start = true;
    }
    return true;
  }

  /// QuickSampler/UniGen sampling-set declaration: "c ind v1 v2 ... 0".  The
  /// first word must be exactly "ind" (prose like "c independent study" is
  /// an ordinary comment); after that every word must be a positive integer,
  /// up to an optional conventional "0" terminator.  Declarations may span
  /// multiple 'c ind' lines; variables accumulate.
  void note_comment(const std::string& rest, std::size_t comment_line) {
    std::istringstream words(rest);
    std::string word;
    if (!(words >> word) || word != "ind") return;
    while (words >> word) {
      if (word == "0") return;  // terminator; anything after it is junk we skip
      const long long value = parse_int(word, comment_line);
      if (value <= 0) {
        throw DimacsError(
            "'c ind' variable must be positive, got '" + word + "'",
            comment_line);
      }
      ind.emplace_back(value, comment_line);
    }
  }
};

}  // namespace

Formula parse_dimacs(std::istream& in) {
  Cursor cursor;
  cursor.in = &in;
  std::string token;

  // Header: "p cnf <vars> <clauses>".
  long long declared_vars = -1;
  long long declared_clauses = -1;
  while (cursor.next_token(token)) {
    if (token == "p") {
      if (!cursor.next_token(token) || token != "cnf") {
        throw DimacsError("expected 'cnf' after 'p'", cursor.line);
      }
      if (!cursor.next_token(token)) throw DimacsError("missing var count", cursor.line);
      declared_vars = parse_int(token, cursor.line);
      if (!cursor.next_token(token)) {
        throw DimacsError("missing clause count", cursor.line);
      }
      declared_clauses = parse_int(token, cursor.line);
      break;
    }
    throw DimacsError("expected 'p cnf' header, got '" + token + "'", cursor.line);
  }
  if (declared_vars < 0 || declared_clauses < 0) {
    throw DimacsError("missing 'p cnf' header", cursor.line);
  }

  Formula formula(static_cast<Var>(declared_vars));
  // 'c ind' ranges are checked against the header once the clause section
  // ends (declarations legally precede the header, and more may follow
  // between clauses).
  auto apply_sampling_set = [&] {
    if (cursor.ind.empty()) return;
    std::vector<Var> vars;
    vars.reserve(cursor.ind.size());
    for (const auto& [value, ind_line] : cursor.ind) {
      if (value > declared_vars) {
        throw DimacsError("'c ind' variable " + std::to_string(value) +
                              " exceeds declared variable count " +
                              std::to_string(declared_vars),
                          ind_line);
      }
      vars.push_back(static_cast<Var>(value - 1));
    }
    formula.set_sampling_set(std::move(vars));
  };
  Clause current;
  bool clause_open = false;
  while (cursor.next_token(token)) {
    if (token == "%" && cursor.token_started_line) {
      // SATLIB footer: a '%' starting a line ends the clause section;
      // whatever follows (conventionally a lone '0' and blank lines) is
      // ignored.  A '%' elsewhere still falls through to parse_int's error —
      // mid-line it marks corruption, not a footer.
      if (clause_open) {
        throw DimacsError("last clause missing terminating 0", cursor.line);
      }
      if (static_cast<long long>(formula.n_clauses()) < declared_clauses) {
        // A footer before all declared clauses arrived marks a truncated
        // file, not a SATLIB ending (real SATLIB footers follow the full
        // clause list).  Surplus clauses stay tolerated, matching the
        // parser's leniency at EOF.
        throw DimacsError("'%' footer after only " +
                              std::to_string(formula.n_clauses()) + " of " +
                              std::to_string(declared_clauses) +
                              " declared clauses",
                          cursor.line);
      }
      apply_sampling_set();
      return formula;
    }
    const long long value = parse_int(token, cursor.line);
    if (value == 0) {
      formula.add_clause(current);
      current.clear();
      clause_open = false;
      continue;
    }
    const long long var_1based = value > 0 ? value : -value;
    if (var_1based > declared_vars) {
      throw DimacsError("literal " + token + " exceeds declared variable count " +
                            std::to_string(declared_vars),
                        cursor.line);
    }
    current.push_back(Lit::from_dimacs(static_cast<int>(value)));
    clause_open = true;
  }
  if (clause_open) {
    throw DimacsError("last clause missing terminating 0", cursor.line);
  }
  apply_sampling_set();
  return formula;
}

Formula parse_dimacs_string(const std::string& text) {
  std::istringstream in(text);
  return parse_dimacs(in);
}

Formula parse_dimacs_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open DIMACS file: " + path);
  return parse_dimacs(in);
}

void write_dimacs(const Formula& formula, std::ostream& out,
                  const std::string& comment) {
  if (!comment.empty()) {
    std::istringstream lines(comment);
    std::string line;
    while (std::getline(lines, line)) out << "c " << line << '\n';
  }
  out << "p cnf " << formula.n_vars() << ' ' << formula.n_clauses() << '\n';
  if (formula.has_sampling_set()) {
    // QuickSampler-style declaration, chunked so lines stay readable; each
    // chunk is a complete "c ind ... 0" directive and parsing accumulates.
    constexpr std::size_t kPerLine = 10;
    const std::vector<Var>& set = formula.sampling_set();
    for (std::size_t begin = 0; begin < set.size(); begin += kPerLine) {
      out << "c ind";
      const std::size_t end = std::min(begin + kPerLine, set.size());
      for (std::size_t i = begin; i < end; ++i) out << ' ' << set[i] + 1;
      out << " 0\n";
    }
  }
  for (const Clause& clause : formula.clauses()) {
    for (const Lit lit : clause) out << lit.to_dimacs() << ' ';
    out << "0\n";
  }
}

std::string to_dimacs_string(const Formula& formula, const std::string& comment) {
  std::ostringstream out;
  write_dimacs(formula, out, comment);
  return out.str();
}

}  // namespace hts::cnf
