#pragma once

// DIMACS CNF reader/writer.  Tolerant of comments, blank lines, and clause
// counts that disagree with the header (both occur in public benchmark
// suites); strict about structural errors (literals past the declared
// variable count, missing terminating 0).  'c ind v1 v2 ... 0' comment
// lines (the QuickSampler/UniGen sampling-set convention) are parsed into
// Formula::sampling_set() and round-tripped by the writer; multiple lines
// accumulate, the trailing 0 is optional, and out-of-range or non-numeric
// entries are DimacsErrors.

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "cnf/formula.hpp"

namespace hts::cnf {

class DimacsError : public std::runtime_error {
 public:
  DimacsError(const std::string& message, std::size_t line)
      : std::runtime_error("DIMACS line " + std::to_string(line) + ": " + message),
        line_(line) {}
  [[nodiscard]] std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// Parses a DIMACS CNF stream.  Throws DimacsError on malformed input.
[[nodiscard]] Formula parse_dimacs(std::istream& in);

/// Parses DIMACS text held in memory.
[[nodiscard]] Formula parse_dimacs_string(const std::string& text);

/// Parses a .cnf file from disk.  Throws std::runtime_error if unreadable.
[[nodiscard]] Formula parse_dimacs_file(const std::string& path);

/// Serializes to DIMACS, optionally with a leading comment block.
void write_dimacs(const Formula& formula, std::ostream& out,
                  const std::string& comment = "");

[[nodiscard]] std::string to_dimacs_string(const Formula& formula,
                                           const std::string& comment = "");

}  // namespace hts::cnf
