#include "cnf/formula.hpp"

#include <algorithm>
#include <stdexcept>

namespace hts::cnf {

void Formula::add_clause(Clause clause) {
  for (const Lit lit : clause) {
    HTS_CHECK_MSG(lit.var() < n_vars_, "clause literal references unknown variable");
  }
  clauses_.push_back(std::move(clause));
}

bool Formula::satisfied_by(const Assignment& assignment) const {
  return first_falsified(assignment) == clauses_.size();
}

std::size_t Formula::count_satisfied(const Assignment& assignment) const {
  HTS_CHECK(assignment.size() >= n_vars_);
  std::size_t satisfied = 0;
  for (const Clause& clause : clauses_) {
    for (const Lit lit : clause) {
      if (lit.value_under(assignment[lit.var()] != 0)) {
        ++satisfied;
        break;
      }
    }
  }
  return satisfied;
}

std::size_t Formula::first_falsified(const Assignment& assignment) const {
  HTS_CHECK(assignment.size() >= n_vars_);
  for (std::size_t i = 0; i < clauses_.size(); ++i) {
    bool clause_sat = false;
    for (const Lit lit : clauses_[i]) {
      if (lit.value_under(assignment[lit.var()] != 0)) {
        clause_sat = true;
        break;
      }
    }
    if (!clause_sat) return i;
  }
  return clauses_.size();
}

std::size_t Formula::n_literals() const {
  std::size_t total = 0;
  for (const Clause& clause : clauses_) total += clause.size();
  return total;
}

std::uint64_t Formula::op_count_2input(bool count_nots) const {
  std::uint64_t ops = 0;
  for (const Clause& clause : clauses_) {
    if (clause.size() > 1) ops += clause.size() - 1;  // OR tree
    if (count_nots) {
      for (const Lit lit : clause) {
        if (lit.negated()) ++ops;
      }
    }
  }
  if (!clauses_.empty()) ops += clauses_.size() - 1;  // AND tree
  return ops;
}

std::vector<Formula::Occurrence> Formula::occurrences() const {
  std::vector<Occurrence> occ(n_vars_);
  for (const Clause& clause : clauses_) {
    for (const Lit lit : clause) {
      if (lit.negated()) {
        ++occ[lit.var()].negative;
      } else {
        ++occ[lit.var()].positive;
      }
    }
  }
  return occ;
}

std::vector<Var> Formula::compact() {
  std::vector<std::uint8_t> used(n_vars_, 0);
  for (const Clause& clause : clauses_) {
    for (const Lit lit : clause) used[lit.var()] = 1;
  }
  std::vector<Var> remap(n_vars_, kInvalidVar);
  Var next = 0;
  for (Var v = 0; v < n_vars_; ++v) {
    if (used[v] != 0) remap[v] = next++;
  }
  for (Clause& clause : clauses_) {
    for (Lit& lit : clause) lit = Lit(remap[lit.var()], lit.negated());
  }
  if (!sampling_set_.empty()) {
    std::vector<Var> remapped;
    remapped.reserve(sampling_set_.size());
    for (const Var v : sampling_set_) {
      if (remap[v] != kInvalidVar) remapped.push_back(remap[v]);
    }
    sampling_set_ = std::move(remapped);  // remap preserves order/uniqueness
  }
  n_vars_ = next;
  return remap;
}

void Formula::set_sampling_set(std::vector<Var> vars) {
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  for (const Var v : vars) {
    if (v >= n_vars_) {
      throw std::invalid_argument(
          "sampling set references variable beyond n_vars");
    }
  }
  sampling_set_ = std::move(vars);
}

}  // namespace hts::cnf
