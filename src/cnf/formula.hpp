#pragma once

// CNF formula container plus the operation accounting the paper uses for its
// Fig. 4 (middle) ops-reduction ablation.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "cnf/types.hpp"

namespace hts::cnf {

class Formula {
 public:
  Formula() = default;
  explicit Formula(Var n_vars) : n_vars_(n_vars) {}

  [[nodiscard]] Var n_vars() const { return n_vars_; }
  [[nodiscard]] std::size_t n_clauses() const { return clauses_.size(); }
  [[nodiscard]] const std::vector<Clause>& clauses() const { return clauses_; }
  [[nodiscard]] const Clause& clause(std::size_t index) const {
    return clauses_[index];
  }

  /// Grows the variable universe to at least n_vars variables.
  void ensure_vars(Var n_vars) {
    if (n_vars > n_vars_) n_vars_ = n_vars;
  }

  /// Allocates a fresh variable and returns it.
  Var new_var() { return n_vars_++; }

  /// Adds a clause; literals must reference existing variables.
  void add_clause(Clause clause);

  /// Convenience for small clauses.
  void add_clause(std::initializer_list<Lit> lits) { add_clause(Clause(lits)); }

  /// True iff the assignment satisfies every clause. assignment.size() must
  /// be >= n_vars().
  [[nodiscard]] bool satisfied_by(const Assignment& assignment) const;

  /// Number of clauses the assignment satisfies (useful for local search and
  /// for diagnosing near-misses from the gradient sampler).
  [[nodiscard]] std::size_t count_satisfied(const Assignment& assignment) const;

  /// Index of the first clause the assignment falsifies, or n_clauses().
  [[nodiscard]] std::size_t first_falsified(const Assignment& assignment) const;

  /// Total literal occurrences across all clauses.
  [[nodiscard]] std::size_t n_literals() const;

  /// Bit-wise operation count of the flat CNF in 2-input gate equivalents:
  /// (k-1) ORs per k-literal clause, (#clauses - 1) ANDs for the conjunction,
  /// plus one NOT per negative literal (the probabilistic model executes
  /// those as 1-x).  This is the numerator of the paper's Fig. 4 (middle)
  /// reduction rate.
  [[nodiscard]] std::uint64_t op_count_2input(bool count_nots = true) const;

  /// Per-variable occurrence counts (positive, negative).
  struct Occurrence {
    std::uint32_t positive = 0;
    std::uint32_t negative = 0;
  };
  [[nodiscard]] std::vector<Occurrence> occurrences() const;

  /// Renumbers variables so that the used ones are contiguous; returns the
  /// old->new map (kInvalidVar for unused).  Unused variables commonly appear
  /// after benchmark preprocessing.  A sampling set is remapped through the
  /// same table, dropping members that became unused.
  std::vector<Var> compact();

  /// Sampling (projection) set — the variables a DIMACS 'c ind' declaration
  /// marks as the ones whose assignments matter (QuickSampler / UniGen
  /// convention).  Empty = no declaration = every variable.  Today it scopes
  /// the amplifier's flip support; solutions still assign every variable.
  [[nodiscard]] bool has_sampling_set() const { return !sampling_set_.empty(); }
  [[nodiscard]] const std::vector<Var>& sampling_set() const {
    return sampling_set_;
  }
  /// Replaces the sampling set.  Variables are deduplicated and sorted; each
  /// must be < n_vars() (throws std::invalid_argument otherwise).  An empty
  /// vector clears the declaration.
  void set_sampling_set(std::vector<Var> vars);

 private:
  Var n_vars_ = 0;
  std::vector<Clause> clauses_;
  std::vector<Var> sampling_set_;
};

}  // namespace hts::cnf
