#pragma once

// Core SAT types shared by the whole library.
//
// Variables are 0-based indices internally; DIMACS 1-based numbering is
// confined to the parser/writer.  Literals use the MiniSat encoding
// lit = 2*var + sign so that negation is an XOR and literals index arrays
// directly (watch lists, polarity tables).

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace hts::cnf {

using Var = std::uint32_t;

inline constexpr Var kInvalidVar = static_cast<Var>(-1);

class Lit {
 public:
  constexpr Lit() = default;

  constexpr Lit(Var var, bool negated) : code_(2 * var + (negated ? 1u : 0u)) {}

  /// Builds from a DIMACS-style signed integer (nonzero; 1-based).
  [[nodiscard]] static constexpr Lit from_dimacs(int dimacs) {
    const auto var = static_cast<Var>((dimacs > 0 ? dimacs : -dimacs) - 1);
    return Lit(var, dimacs < 0);
  }

  [[nodiscard]] constexpr Var var() const { return code_ >> 1; }
  [[nodiscard]] constexpr bool negated() const { return (code_ & 1u) != 0; }
  [[nodiscard]] constexpr Lit operator~() const { return Lit(code_ ^ 1u); }

  /// Raw code for direct array indexing (2*var + sign).
  [[nodiscard]] constexpr std::uint32_t code() const { return code_; }
  [[nodiscard]] static constexpr Lit from_code(std::uint32_t code) { return Lit(code); }

  [[nodiscard]] constexpr int to_dimacs() const {
    const int v = static_cast<int>(var()) + 1;
    return negated() ? -v : v;
  }

  /// Truth value of this literal under a 0/1 assignment to its variable.
  [[nodiscard]] constexpr bool value_under(bool var_value) const {
    return negated() ? !var_value : var_value;
  }

  constexpr auto operator<=>(const Lit&) const = default;

 private:
  explicit constexpr Lit(std::uint32_t code) : code_(code) {}
  std::uint32_t code_ = static_cast<std::uint32_t>(-1);
};

using Clause = std::vector<Lit>;

/// A complete 0/1 assignment; index = variable.
using Assignment = std::vector<std::uint8_t>;

/// Three-valued assignment used by the solver (0=false, 1=true, 2=unassigned).
enum class LBool : std::uint8_t { kFalse = 0, kTrue = 1, kUndef = 2 };

[[nodiscard]] inline std::string to_string(Lit lit) {
  return std::to_string(lit.to_dimacs());
}

}  // namespace hts::cnf

template <>
struct std::hash<hts::cnf::Lit> {
  std::size_t operator()(hts::cnf::Lit lit) const noexcept {
    return std::hash<std::uint32_t>()(lit.code());
  }
};
