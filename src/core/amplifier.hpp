#pragma once

// Word-parallel flip amplification of harvested solutions.
//
// QuickSampler (Dutra et al.) showed that mutating individual bits of a
// known solution and cheaply re-validating yields hundreds of extra valid
// samples per solver call.  Here the idea runs at EvalPlan speed: after each
// GD harvest's accept phase, every solution the collect freshly banked
// becomes a *base*; the amplifier generates its single-bit-flip mutants over
// the sampling-set inputs, packs them 64 per word into
// EvalPlan::kBlockWords-word chunks (256 mutants per chunk), validates them
// through the harvester's own phase-1/phase-2 machinery, and banks the
// survivors.  Single flips that stayed satisfying are then combined into
// double flips (capped pairs, lexicographic), the same escalation
// QuickSampler's epochs/flips/samples loop performs one candidate at a time.
//
// Determinism contract: amplification is a pure function of the bases — it
// consumes no RNG draws, evaluates inline on the calling thread (never the
// global pool), and accepts mutants in a fixed order (bases in
// bank-insertion order, singles in input order, pairs lexicographic over
// successful singles).  A job's amplified solution stream therefore stays a
// pure function of (formula, seed, config) under any thread count or
// service fleet size.
//
// Allocation contract: all scratch (the packed mutant buffer, the
// CollectScratch, the base/pair/success lists) is per-instance and reused;
// once warm, repeated amplified collects perform no heap allocation beyond
// what the bank needs for genuinely new solutions — the same bar the
// harvester itself meets (tests/amplifier_test.cpp pins this with an
// operator-new hook).
//
// Accounting: amplified candidate rows and amplified uniques are billed
// separately (GdLoopExtras / service::JobStats) and are *not* added to
// Harvester::rows_validated(), so the GD pipeline's rows/sec metric stays
// honest.  Wall-clock spent amplifying lands inside the round, so the
// service's EDF slice accounting and admission cost-EWMA see it naturally.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "circuit/eval_plan.hpp"
#include "cnf/types.hpp"
#include "core/gd_loop.hpp"
#include "core/harvester.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "util/timer.hpp"

namespace hts::sampler {

template <typename Bank>
class Amplifier {
 public:
  /// Registers itself as the harvester's fresh-key sink: every solution a
  /// subsequent collect() newly banks is recorded as an amplification base
  /// until amplify() consumes the batch.  The harvester is borrowed for the
  /// amplifier's lifetime.
  Amplifier(const GdLoopConfig& config, Harvester<Bank>& harvester)
      : config_(config.amplify), harvester_(harvester) {
    const GdProblem& problem = harvester.problem();
    const std::size_t n_inputs = problem.circuit->n_inputs();
    key_words_ = (n_inputs + 63) / 64;
    // Flip support: circuit inputs whose original variable is in the
    // sampling set, in input order.  No (or an empty) set means every
    // input; auxiliary inputs (no original variable) are only flipped in
    // that unrestricted case.
    const bool restricted = !problem.sampling_set.empty();
    if (restricted) {
      // The membership bitmap is bounded by the largest variable an input
      // actually maps to, so an out-of-range set entry costs nothing — it
      // can never match an input anyway.
      cnf::Var max_var = 0;
      for (std::size_t i = 0; i < n_inputs; ++i) {
        const cnf::Var var = problem.input_vars != nullptr
                                 ? (*problem.input_vars)[i]
                                 : static_cast<cnf::Var>(i);
        if (var != cnf::kInvalidVar && var > max_var) max_var = var;
      }
      std::vector<std::uint8_t> in_set;
      for (const cnf::Var v : problem.sampling_set) {
        if (v == cnf::kInvalidVar || v > max_var) continue;
        if (v >= in_set.size()) in_set.resize(v + 1, 0);
        in_set[v] = 1;
      }
      for (std::size_t i = 0; i < n_inputs; ++i) {
        const cnf::Var var = problem.input_vars != nullptr
                                 ? (*problem.input_vars)[i]
                                 : static_cast<cnf::Var>(i);
        if (var != cnf::kInvalidVar && var < in_set.size() && in_set[var]) {
          support_.push_back(i);
        }
      }
    } else {
      support_.resize(n_inputs);
      for (std::size_t i = 0; i < n_inputs; ++i) support_[i] = i;
    }
    harvester_.set_fresh_sink(&bases_);
  }

  ~Amplifier() { harvester_.set_fresh_sink(nullptr); }
  Amplifier(const Amplifier&) = delete;
  Amplifier& operator=(const Amplifier&) = delete;

  /// Amplifies every base banked since the previous call (subject to
  /// AmplifyConfig::max_bases_per_collect) and clears the base buffer.
  /// Call once per harvest, right after Harvester::collect().
  void amplify() {
    const util::Timer timer;
    const std::size_t n_bases = bases_.size() / key_words_;
    std::size_t limit = n_bases;
    if (config_.max_bases_per_collect > 0) {
      limit = std::min(limit, config_.max_bases_per_collect);
    }
    const std::uint64_t candidates_before = amplified_candidates_;
    const std::uint64_t uniques_before = amplified_uniques_;
    for (std::size_t b = 0; b < limit; ++b) {
      if (harvester_.options().stop.stop_requested()) break;
      amplify_base(bases_.data() + b * key_words_);
    }
    bases_.clear();
    amplify_ms_ += timer.milliseconds();
    if (limit == 0) return;  // nothing fresh to amplify: no events, no cells
    // Telemetry is delta-based reads of the counters above — never a write
    // the sampling path observes, so amplified streams stay bit-identical.
    if (telemetry::metrics_enabled()) {
      telemetry::Registry& reg = telemetry::Registry::global();
      static telemetry::Histogram& wave_rows = reg.histogram(
          "hts_amplify_wave_rows",
          {64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0});
      static telemetry::Counter& survivors =
          reg.counter("hts_amplify_survivors_total");
      wave_rows.observe(
          static_cast<double>(amplified_candidates_ - candidates_before));
      survivors.add(amplified_uniques_ - uniques_before);
    }
    if (telemetry::trace_enabled()) {
      telemetry::TraceSink::global().complete("amplify", "gd",
                                              timer.start_ns(),
                                              util::monotonic_ns());
    }
  }

  /// Amplifies one explicit base key (bank word layout: bit i of word i/64
  /// is circuit input i).  amplify() calls this per fresh base; it is also
  /// the seam the allocation-profile test drives directly, since a repeated
  /// collect of an already-banked batch yields no fresh bases.
  void amplify_key(const std::uint64_t* key) { amplify_base(key); }

  /// Inputs the amplifier flips, in input order (the sampling-set support).
  [[nodiscard]] const std::vector<std::size_t>& support() const {
    return support_;
  }

  /// Mutant rows generated and validated over the amplifier's lifetime.
  [[nodiscard]] std::uint64_t amplified_candidates() const {
    return amplified_candidates_;
  }
  /// Mutants that were genuinely new to the bank.
  [[nodiscard]] std::uint64_t amplified_uniques() const {
    return amplified_uniques_;
  }
  /// Wall-clock milliseconds spent inside amplify() over the lifetime.
  [[nodiscard]] double amplify_ms() const { return amplify_ms_; }

 private:
  void amplify_base(const std::uint64_t* base) {
    if (support_.empty()) return;
    // Wave 1 — single flips over the support, recording the ones that
    // stayed satisfying.  Success depends only on the circuit, never on
    // bank state, so the pair wave below is deterministic too.
    flip_ok_.clear();
    run_wave(base, support_.data(), nullptr, support_.size(), true);
    // Wave 2 — double flips: pairs (i, j), i < j lexicographic, of the
    // successful singles, capped.
    if (config_.max_pairs_per_base == 0 || flip_ok_.size() < 2) return;
    pair_a_.clear();
    pair_b_.clear();
    const std::size_t cap = config_.max_pairs_per_base;
    for (std::size_t x = 0; x + 1 < flip_ok_.size() && pair_a_.size() < cap;
         ++x) {
      for (std::size_t y = x + 1; y < flip_ok_.size() && pair_a_.size() < cap;
           ++y) {
        pair_a_.push_back(flip_ok_[x]);
        pair_b_.push_back(flip_ok_[y]);
      }
    }
    run_wave(base, pair_a_.data(), pair_b_.data(), pair_a_.size(), false);
  }

  /// Packs and validates one wave of mutants: mutant m flips input a[m]
  /// (and input b[m] when b is non-null), in chunks of 256 rows (one
  /// EvalPlan block).  When record_ok is set, the flipped input of every
  /// satisfying single lands in flip_ok_.
  void run_wave(const std::uint64_t* base, const std::size_t* a,
                const std::size_t* b, std::size_t n_mutants, bool record_ok) {
    const std::size_t n_inputs = harvester_.problem().circuit->n_inputs();
    constexpr std::size_t kChunkWords = circuit::EvalPlan::kBlockWords;
    constexpr std::size_t kChunkRows = 64 * kChunkWords;
    if (packed_.size() < n_inputs * kChunkWords) {
      packed_.resize(n_inputs * kChunkWords);
    }
    for (std::size_t begin = 0; begin < n_mutants; begin += kChunkRows) {
      if (harvester_.options().stop.stop_requested()) return;
      const std::size_t count = std::min(kChunkRows, n_mutants - begin);
      const std::size_t n_words = (count + 63) / 64;
      // Broadcast the base row into every lane, then toggle the flipped
      // input bit(s) of each mutant row.
      for (std::size_t i = 0; i < n_inputs; ++i) {
        const std::uint64_t word =
            ((base[i >> 6] >> (i & 63)) & 1ULL) != 0 ? ~0ULL : 0ULL;
        for (std::size_t w = 0; w < n_words; ++w) {
          packed_[i * n_words + w] = word;
        }
      }
      for (std::size_t m = 0; m < count; ++m) {
        const std::uint64_t bit = 1ULL << (m & 63);
        packed_[a[begin + m] * n_words + (m >> 6)] ^= bit;
        if (b != nullptr) packed_[b[begin + m] * n_words + (m >> 6)] ^= bit;
      }
      amplified_uniques_ +=
          harvester_.collect_candidates(packed_, n_words, count, scratch_);
      amplified_candidates_ += count;
      if (record_ok) {
        for (std::size_t m = 0; m < count; ++m) {
          if (((scratch_.solved_mask[m >> 6] >> (m & 63)) & 1ULL) != 0) {
            flip_ok_.push_back(a[begin + m]);
          }
        }
      }
    }
  }

  AmplifyConfig config_;
  Harvester<Bank>& harvester_;
  std::size_t key_words_ = 0;
  /// Circuit input indices eligible for flipping, ascending.
  std::vector<std::size_t> support_;
  /// Fresh-key buffer the harvester appends to (key_words_ words per base).
  std::vector<std::uint64_t> bases_;
  /// Packed mutant chunk: n_inputs x (chunk words), harden() layout.
  std::vector<std::uint64_t> packed_;
  CollectScratch scratch_;
  /// Inputs whose single flip of the current base stayed satisfying.
  std::vector<std::size_t> flip_ok_;
  std::vector<std::size_t> pair_a_;
  std::vector<std::size_t> pair_b_;
  std::uint64_t amplified_candidates_ = 0;
  std::uint64_t amplified_uniques_ = 0;
  double amplify_ms_ = 0.0;
};

}  // namespace hts::sampler
