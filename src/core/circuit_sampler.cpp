#include "core/circuit_sampler.hpp"

namespace hts::sampler {

CircuitSampler::CircuitSampler(const circuit::Circuit& circuit,
                               CircuitSamplerConfig config)
    : circuit_(&circuit), config_(config) {
  // Map pseudo-variable i to circuit input i so gd_loop's projection yields
  // an input-indexed assignment.
  input_signals_ = circuit.inputs();
  empty_formula_.ensure_vars(static_cast<cnf::Var>(input_signals_.size()));
}

RunResult CircuitSampler::run(const RunOptions& options) {
  GdProblem problem;
  problem.circuit = circuit_;
  problem.var_signal = &input_signals_;
  // Wire the configured sampling set (input positions = pseudo-variables)
  // into the problem so the amplifier's flip support and projected dedup
  // see it — historically this path dropped the set on the floor.
  problem.sampling_set =
      normalize_sampling_set(config_.sampling_set, input_signals_.size());

  GdLoopConfig loop_config;
  loop_config.batch = config_.batch;
  loop_config.iterations = config_.iterations;
  loop_config.learning_rate = config_.learning_rate;
  loop_config.init_std = config_.init_std;
  loop_config.cone_only = config_.cone_only;
  loop_config.policy = config_.policy;
  loop_config.max_rounds = config_.max_rounds;
  loop_config.n_workers = config_.n_workers;
  loop_config.restart_solved = config_.restart_solved;
  loop_config.restart_plateau = config_.restart_plateau;
  loop_config.fast_sigmoid = config_.fast_sigmoid;
  loop_config.amplify = config_.amplify;
  loop_config.projected_dedup = config_.projected_dedup;
  loop_config.diversity_restart = config_.diversity_restart;
  loop_config.lit_weights = config_.lit_weights;

  // verify_against_cnf is meaningless here (there is no CNF); the loop
  // already verifies every row against the circuit's output constraints.
  RunOptions effective = options;
  effective.verify_against_cnf = false;

  RunResult result =
      run_gd_loop(problem, empty_formula_, effective, loop_config, &extras_);
  result.sampler_name = "HTS-GD(circuit)";
  return result;
}

}  // namespace hts::sampler
