#pragma once

// Direct circuit sampling — the paper's closing suggestion implemented:
// "SAT applications in high-level logical formats could be directly
// transformed into a multi-level, multi-output Boolean function", skipping
// the CNF round trip entirely (the DEMOTIC direction for CRV workloads).
//
// CircuitSampler runs the same batched GD loop as GradientSampler but takes
// a circuit::Circuit with output constraints as the problem statement.
// Solutions are assignments to the circuit's primary inputs (optionally
// extended to all signals).

#include "circuit/circuit.hpp"
#include "core/gd_loop.hpp"
#include "core/sampler.hpp"

namespace hts::sampler {

struct CircuitSamplerConfig {
  std::size_t batch = 4096;
  int iterations = 5;
  float learning_rate = 10.0f;
  float init_std = 2.0f;
  bool cone_only = false;
  tensor::Policy policy = tensor::Policy::kDataParallel;
  std::uint64_t max_rounds = 0;
  /// Round-parallel workers (see GdLoopConfig::n_workers).
  std::size_t n_workers = 1;
  /// Solved-row restarts (see GdLoopConfig::restart_solved).
  bool restart_solved = true;
  /// Plateau restarts in harvest windows; 0 disables (see
  /// GdLoopConfig::restart_plateau).
  std::size_t restart_plateau = 0;
  /// Vectorized fast sigmoid for the embed step (see Engine::Config).
  bool fast_sigmoid = true;
  /// Flip-amplify freshly banked solutions after every harvest (see
  /// AmplifyConfig; the flip support is sampling_set when one is given,
  /// every circuit input otherwise).
  AmplifyConfig amplify;
  /// Sampling/projection set over circuit input *positions* (the circuit
  /// path's counterpart of a CNF 'c ind' set; input i is pseudo-variable
  /// i).  Empty means every input.  Scopes the amplifier's flip support
  /// and, with projected_dedup, keys unique solutions on the projection.
  /// Unsorted/duplicate/out-of-range entries are normalized away.
  std::vector<cnf::Var> sampling_set;
  /// Key unique solutions on the sampling-set projection when
  /// sampling_set is non-empty (see GdLoopConfig::projected_dedup).
  bool projected_dedup = true;
  /// Re-seed rows descending into already-banked projected classes (see
  /// GdLoopConfig::diversity_restart).
  bool diversity_restart = false;
  /// Per-literal loss weights over input positions (see LitWeight).
  std::vector<LitWeight> lit_weights;
};

class CircuitSampler {
 public:
  /// The circuit must already carry its output constraints
  /// (circuit.add_output).  The reference is held; it must outlive the
  /// sampler.
  explicit CircuitSampler(const circuit::Circuit& circuit,
                          CircuitSamplerConfig config = {});

  /// Samples input assignments meeting every output constraint.  Solutions
  /// in RunResult::solutions are indexed by circuit input position (i.e.
  /// solutions[k][i] is the bit of circuit.inputs()[i]).
  [[nodiscard]] RunResult run(const RunOptions& options);

  /// Learning-curve / memory metrics of the most recent run.
  [[nodiscard]] const GdLoopExtras& extras() const { return extras_; }

 private:
  const circuit::Circuit* circuit_;
  CircuitSamplerConfig config_;
  /// Identity "projection": input i <-> pseudo-variable i.
  std::vector<circuit::SignalId> input_signals_;
  cnf::Formula empty_formula_;
  GdLoopExtras extras_;
};

}  // namespace hts::sampler
