#include "core/gd_loop.hpp"

#include <algorithm>
#include <bit>

#include "core/unique_bank.hpp"
#include "prob/engine.hpp"
#include "util/timer.hpp"

namespace hts::sampler {

namespace {

/// Harvests valid, new solutions out of a hardened batch.
class Harvester {
 public:
  Harvester(const GdProblem& problem, const cnf::Formula& formula,
            const RunOptions& options, RunResult& result)
      : problem_(problem),
        formula_(formula),
        options_(options),
        result_(result),
        bank_(problem.circuit->n_inputs()) {}

  [[nodiscard]] std::size_t n_unique() const { return bank_.size(); }

  /// packed: n_inputs x n_words hardened input bits covering `batch` rows.
  void collect(const std::vector<std::uint64_t>& packed, std::size_t n_words,
               std::size_t batch) {
    const circuit::Circuit& circuit = *problem_.circuit;
    const std::size_t n_inputs = circuit.n_inputs();
    std::vector<std::uint64_t> input_words(n_inputs);
    for (std::size_t w = 0; w < n_words; ++w) {
      for (std::size_t i = 0; i < n_inputs; ++i) {
        input_words[i] = packed[i * n_words + w];
      }
      const std::vector<std::uint64_t> values = circuit.eval64(input_words);
      std::uint64_t ok = circuit.outputs_satisfied64(values);
      // Mask off lanes past the batch in the final partial word.
      const std::size_t rows_here = std::min<std::size_t>(64, batch - w * 64);
      if (rows_here < 64) ok &= (1ULL << rows_here) - 1;
      while (ok != 0) {
        const int r = std::countr_zero(ok);
        ok &= ok - 1;
        accept_row(input_words, values, static_cast<std::size_t>(r));
      }
    }
  }

 private:
  void accept_row(const std::vector<std::uint64_t>& input_words,
                  const std::vector<std::uint64_t>& values, std::size_t r) {
    std::vector<std::uint64_t> key(bank_.n_words(), 0);
    for (std::size_t i = 0; i < input_words.size(); ++i) {
      if (((input_words[i] >> r) & 1ULL) != 0) key[i >> 6] |= (1ULL << (i & 63));
    }
    ++result_.n_valid;
    const bool is_new = bank_.insert(key);
    if (!is_new && !options_.store_all_draws) return;

    const bool want_assignment = result_.solutions.size() < options_.store_limit ||
                                 (is_new && options_.verify_against_cnf);
    if (!want_assignment) return;
    const auto& var_signal = *problem_.var_signal;
    cnf::Assignment assignment(var_signal.size(), 0);
    for (cnf::Var v = 0; v < var_signal.size(); ++v) {
      assignment[v] = static_cast<std::uint8_t>((values[var_signal[v]] >> r) & 1ULL);
    }
    if (options_.verify_against_cnf && !formula_.satisfied_by(assignment)) {
      ++result_.n_invalid;
    }
    if (result_.solutions.size() < options_.store_limit) {
      result_.solutions.push_back(std::move(assignment));
    }
  }

  const GdProblem& problem_;
  const cnf::Formula& formula_;
  const RunOptions& options_;
  RunResult& result_;
  UniqueBank bank_;
};

}  // namespace

RunResult run_gd_loop(const GdProblem& problem, const cnf::Formula& formula,
                      const RunOptions& options, const GdLoopConfig& config,
                      GdLoopExtras* extras) {
  RunResult result;

  prob::CompiledCircuit compiled(*problem.circuit,
                                 prob::CompiledCircuit::Options{config.cone_only});
  prob::Engine::Config engine_config;
  engine_config.batch = config.batch;
  engine_config.learning_rate = config.learning_rate;
  engine_config.init_std = config.init_std;
  engine_config.policy = config.policy;
  prob::Engine engine(compiled, engine_config);

  util::Rng rng(options.seed);
  util::Deadline deadline(options.budget_ms);
  util::Timer timer;
  Harvester harvester(problem, formula, options, result);

  std::vector<std::size_t> uniques_per_iteration(
      static_cast<std::size_t>(config.iterations) + 1, 0);
  std::uint64_t rounds = 0;
  std::vector<std::uint64_t> packed;

  auto reached_target = [&] {
    return options.min_solutions > 0 &&
           harvester.n_unique() >= options.min_solutions;
  };

  while (!reached_target() && !deadline.expired() &&
         (config.max_rounds == 0 || rounds < config.max_rounds)) {
    ++rounds;
    engine.randomize(rng);
    // Iteration-0 checkpoint: random initialization already satisfies the
    // unconstrained paths (and occasionally everything).
    if (config.collect_each_iteration) {
      engine.harden(packed);
      harvester.collect(packed, engine.n_words(), config.batch);
      uniques_per_iteration[0] =
          std::max(uniques_per_iteration[0], harvester.n_unique());
    }
    for (int iter = 1; iter <= config.iterations; ++iter) {
      engine.run_iteration();
      if (config.collect_each_iteration || iter == config.iterations) {
        engine.harden(packed);
        harvester.collect(packed, engine.n_words(), config.batch);
        const auto slot = static_cast<std::size_t>(iter);
        uniques_per_iteration[slot] =
            std::max(uniques_per_iteration[slot], harvester.n_unique());
        result.progress.push_back(
            ProgressPoint{timer.milliseconds(), harvester.n_unique()});
      }
      if (reached_target() || deadline.expired()) break;
    }
  }

  result.n_unique = harvester.n_unique();
  result.elapsed_ms = timer.milliseconds();
  result.timed_out = !reached_target() && options.min_solutions > 0;
  // Rounds may end early (target/deadline) before filling late iteration
  // slots; present the curve as a cumulative maximum so it reads as "uniques
  // available by iteration i".
  for (std::size_t i = 1; i < uniques_per_iteration.size(); ++i) {
    uniques_per_iteration[i] =
        std::max(uniques_per_iteration[i], uniques_per_iteration[i - 1]);
  }
  if (extras != nullptr) {
    extras->uniques_per_iteration = std::move(uniques_per_iteration);
    extras->engine_memory_bytes = engine.memory_bytes();
    extras->rounds = rounds;
  }
  return result;
}

}  // namespace hts::sampler
