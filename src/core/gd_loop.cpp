#include "core/gd_loop.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>

#include "circuit/eval_plan.hpp"
#include "core/harvester.hpp"
#include "core/round_runner.hpp"
#include "core/unique_bank.hpp"
#include "prob/engine.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace hts::sampler {

namespace {

/// The legacy single-thread loop, kept so n_workers == 1 reproduces
/// pre-refactor results bit for bit (same RNG consumption order, same bank
/// insertion order, same progress checkpoints).  The round body itself
/// lives in RoundRunner (shared with the round-parallel workers and the
/// sampling service); this function owns the across-round policy: when to
/// start another round and what a checkpoint records.
RunResult run_serial(const GdProblem& problem, const cnf::Formula& formula,
                     const RunOptions& options, const GdLoopConfig& config,
                     const prob::CompiledCircuit& compiled,
                     const circuit::EvalPlan& eval_plan, GdLoopExtras* extras) {
  RunResult result;
  prob::Engine engine(compiled, engine_config_for(config, problem));

  util::Rng rng(options.seed);
  util::Deadline deadline(options.budget_ms);
  util::Timer timer;
  UniqueBank bank(bank_key_bits(problem, config));
  Harvester<UniqueBank> harvester(problem, formula, options, bank, result,
                                  &eval_plan, /*inline_eval=*/false,
                                  harvest_mode_for(problem, config));
  RoundRunner<UniqueBank> runner(config, engine, harvester);

  std::vector<std::size_t> uniques_per_iteration(
      static_cast<std::size_t>(config.iterations) + 1, 0);
  std::uint64_t rounds = 0;

  auto reached_target = [&] {
    return options.min_solutions > 0 &&
           harvester.n_unique() >= options.min_solutions;
  };
  auto checkpoint = [&](int iter) {
    const auto slot = static_cast<std::size_t>(iter);
    uniques_per_iteration[slot] =
        std::max(uniques_per_iteration[slot], harvester.n_unique());
    if (iter > 0) {
      result.progress.push_back(
          ProgressPoint{timer.milliseconds(), harvester.n_unique()});
    }
  };
  auto stop_now = [&] {
    return reached_target() || deadline.expired() ||
           options.stop.stop_requested();
  };

  while (!reached_target() && !deadline.expired() &&
         !options.stop.stop_requested() &&
         (config.max_rounds == 0 || rounds < config.max_rounds)) {
    ++rounds;
    runner.run_round(rng, checkpoint, stop_now);
  }

  result.n_unique = harvester.n_unique();
  result.elapsed_ms = timer.milliseconds();
  result.timed_out = !reached_target() && options.min_solutions > 0;
  // Rounds may end early (target/deadline) before filling late iteration
  // slots; present the curve as a cumulative maximum so it reads as "uniques
  // available by iteration i".
  for (std::size_t i = 1; i < uniques_per_iteration.size(); ++i) {
    uniques_per_iteration[i] =
        std::max(uniques_per_iteration[i], uniques_per_iteration[i - 1]);
  }
  if (extras != nullptr) {
    extras->uniques_per_iteration = std::move(uniques_per_iteration);
    extras->engine_memory_bytes = engine.memory_bytes();
    extras->rounds = rounds;
    extras->restarted_rows = runner.restarted_rows();
    extras->plateau_restarted_rows = runner.plateau_restarted_rows();
    extras->gd_iterations = runner.gd_iterations();
    extras->rows_validated = harvester.rows_validated();
    extras->harvest_ms = harvester.harvest_ms();
    extras->amplified_candidates = runner.amplified_candidates();
    extras->amplified_uniques = runner.amplified_uniques();
    extras->amplify_ms = runner.amplify_ms();
    extras->diversity_restarted_rows = runner.diversity_restarted_rows();
    extras->weighted_inputs = engine.n_weighted_inputs();
  }
  return result;
}

/// Round-parallel execution: N workers, each owning an engine and a
/// decorrelated RNG stream, race through independent randomize -> iterate ->
/// harden rounds and merge uniques into one shared sharded bank.  Rounds are
/// claimed from a shared counter (so max_rounds bounds the total), and the
/// target / deadline / cancellation checks read the *global* state, so
/// workers stop as soon as the fleet collectively reaches the goal.
RunResult run_parallel(const GdProblem& problem, const cnf::Formula& formula,
                       const RunOptions& options, const GdLoopConfig& config,
                       const prob::CompiledCircuit& compiled,
                       const circuit::EvalPlan& eval_plan,
                       std::size_t n_workers, GdLoopExtras* extras) {
  struct WorkerOutput {
    RunResult result;
    std::vector<std::size_t> uniques_per_iteration;
    std::size_t engine_bytes = 0;
    std::uint64_t rounds = 0;
    std::uint64_t restarted_rows = 0;
    std::uint64_t plateau_restarted_rows = 0;
    std::uint64_t gd_iterations = 0;
    std::uint64_t rows_validated = 0;
    double harvest_ms = 0.0;
    std::uint64_t amplified_candidates = 0;
    std::uint64_t amplified_uniques = 0;
    double amplify_ms = 0.0;
    std::uint64_t diversity_restarted_rows = 0;
  };

  const std::size_t n_slots = static_cast<std::size_t>(config.iterations) + 1;
  std::vector<WorkerOutput> outputs(n_workers);
  for (WorkerOutput& out : outputs) out.uniques_per_iteration.assign(n_slots, 0);

  // Synchronization audit (Clang -Wthread-safety covers the mutex-based
  // components; this function is lock-free by design, so the contract lives
  // here): each worker writes only outputs[w] — its private slot — while it
  // runs; the merge below reads all slots only after join(), which carries
  // the happens-before edge.  The bank serializes internally per shard,
  // `stop`/`next_round` are atomics, and everything else the workers touch
  // (compiled plans, options, deadline) is read-only for the whole run.
  ShardedUniqueBank bank(bank_key_bits(problem, config));
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> next_round{0};

  // Engines are built before the clock starts, mirroring the serial path
  // where construction precedes the Deadline: buffer allocation for a large
  // instance can cost more than a tight budget, and a worker that wakes up
  // already expired would contribute nothing.
  std::vector<std::unique_ptr<prob::Engine>> engines;
  engines.reserve(n_workers);
  for (std::size_t w = 0; w < n_workers; ++w) {
    engines.push_back(std::make_unique<prob::Engine>(
        compiled, engine_config_for(config, problem)));
  }

  util::Deadline deadline(options.budget_ms);
  util::Timer timer;

  auto reached_target = [&] {
    return options.min_solutions > 0 && bank.size() >= options.min_solutions;
  };

  auto worker_fn = [&](std::size_t w) {
    WorkerOutput& out = outputs[w];
    prob::Engine& engine = *engines[w];
    util::Rng rng = util::Rng::stream(options.seed, w);
    Harvester<ShardedUniqueBank> harvester(
        problem, formula, options, bank, out.result, &eval_plan,
        /*inline_eval=*/false, harvest_mode_for(problem, config));
    RoundRunner<ShardedUniqueBank> runner(config, engine, harvester);

    auto checkpoint = [&](int iter) {
      const auto slot = static_cast<std::size_t>(iter);
      out.uniques_per_iteration[slot] =
          std::max(out.uniques_per_iteration[slot], bank.size());
      if (iter > 0) {
        out.result.progress.push_back(
            ProgressPoint{timer.milliseconds(), bank.size()});
      }
    };
    auto stop_now = [&] {
      if (reached_target() || deadline.expired() ||
          options.stop.stop_requested()) {
        stop.store(true, std::memory_order_relaxed);
        return true;
      }
      return false;
    };

    while (!stop.load(std::memory_order_relaxed)) {
      if (stop_now()) break;
      const std::uint64_t round = next_round.fetch_add(1);
      if (config.max_rounds != 0 && round >= config.max_rounds) break;
      ++out.rounds;
      runner.run_round(rng, checkpoint, stop_now);
    }
    out.engine_bytes = engine.memory_bytes();
    out.restarted_rows = runner.restarted_rows();
    out.plateau_restarted_rows = runner.plateau_restarted_rows();
    out.gd_iterations = runner.gd_iterations();
    out.rows_validated = harvester.rows_validated();
    out.harvest_ms = harvester.harvest_ms();
    out.amplified_candidates = runner.amplified_candidates();
    out.amplified_uniques = runner.amplified_uniques();
    out.amplify_ms = runner.amplify_ms();
    out.diversity_restarted_rows = runner.diversity_restarted_rows();
  };

  std::vector<std::thread> threads;
  threads.reserve(n_workers - 1);
  for (std::size_t w = 1; w < n_workers; ++w) threads.emplace_back(worker_fn, w);
  worker_fn(0);
  for (std::thread& t : threads) t.join();

  // ---- merge ----
  RunResult result;
  std::vector<std::size_t> uniques_per_iteration(n_slots, 0);
  std::uint64_t rounds = 0;
  std::uint64_t restarted_rows = 0;
  std::uint64_t plateau_restarted_rows = 0;
  std::uint64_t gd_iterations = 0;
  std::uint64_t rows_validated = 0;
  double harvest_ms = 0.0;
  std::uint64_t amplified_candidates = 0;
  std::uint64_t amplified_uniques = 0;
  double amplify_ms = 0.0;
  std::uint64_t diversity_restarted_rows = 0;
  std::size_t engine_bytes = 0;
  for (WorkerOutput& out : outputs) {
    result.n_valid += out.result.n_valid;
    result.n_invalid += out.result.n_invalid;
    result.progress.insert(result.progress.end(), out.result.progress.begin(),
                           out.result.progress.end());
    for (cnf::Assignment& solution : out.result.solutions) {
      if (result.solutions.size() >= options.store_limit) break;
      result.solutions.push_back(std::move(solution));
    }
    for (std::size_t i = 0; i < n_slots; ++i) {
      uniques_per_iteration[i] =
          std::max(uniques_per_iteration[i], out.uniques_per_iteration[i]);
    }
    rounds += out.rounds;
    restarted_rows += out.restarted_rows;
    plateau_restarted_rows += out.plateau_restarted_rows;
    gd_iterations += out.gd_iterations;
    rows_validated += out.rows_validated;
    harvest_ms += out.harvest_ms;
    amplified_candidates += out.amplified_candidates;
    amplified_uniques += out.amplified_uniques;
    amplify_ms += out.amplify_ms;
    diversity_restarted_rows += out.diversity_restarted_rows;
    engine_bytes += out.engine_bytes;
  }
  // Each worker's checkpoints are individually chronological; interleave
  // them into one timeline.  Counts are global-bank snapshots, so enforcing
  // a running maximum restores monotonicity across the interleaving.
  std::sort(result.progress.begin(), result.progress.end(),
            [](const ProgressPoint& a, const ProgressPoint& b) {
              return a.elapsed_ms < b.elapsed_ms;
            });
  std::size_t running_max = 0;
  for (ProgressPoint& point : result.progress) {
    running_max = std::max(running_max, point.n_unique);
    point.n_unique = running_max;
  }

  result.n_unique = bank.size();
  result.elapsed_ms = timer.milliseconds();
  result.timed_out = !reached_target() && options.min_solutions > 0;
  for (std::size_t i = 1; i < n_slots; ++i) {
    uniques_per_iteration[i] =
        std::max(uniques_per_iteration[i], uniques_per_iteration[i - 1]);
  }
  if (extras != nullptr) {
    extras->uniques_per_iteration = std::move(uniques_per_iteration);
    // Total footprint of the fleet (the Fig. 3 memory metric scales with
    // workers just as batch does).
    extras->engine_memory_bytes = engine_bytes;
    extras->rounds = rounds;
    extras->restarted_rows = restarted_rows;
    extras->plateau_restarted_rows = plateau_restarted_rows;
    extras->gd_iterations = gd_iterations;
    extras->rows_validated = rows_validated;
    extras->harvest_ms = harvest_ms;
    extras->amplified_candidates = amplified_candidates;
    extras->amplified_uniques = amplified_uniques;
    extras->amplify_ms = amplify_ms;
    extras->diversity_restarted_rows = diversity_restarted_rows;
    extras->weighted_inputs = engines[0]->n_weighted_inputs();
  }
  return result;
}

}  // namespace

std::vector<cnf::Var> normalize_sampling_set(std::vector<cnf::Var> set,
                                             std::size_t n_vars) {
  std::sort(set.begin(), set.end());
  set.erase(std::unique(set.begin(), set.end()), set.end());
  set.erase(std::remove_if(set.begin(), set.end(),
                           [n_vars](cnf::Var v) {
                             return v == cnf::kInvalidVar ||
                                    static_cast<std::size_t>(v) >= n_vars;
                           }),
            set.end());
  return set;
}

RunResult run_gd_loop(const GdProblem& problem, const cnf::Formula& formula,
                      const RunOptions& options, const GdLoopConfig& config,
                      GdLoopExtras* extras) {
  prob::CompiledCircuit compiled(
      *problem.circuit,
      prob::CompiledCircuit::Options{config.cone_only, config.optimize_tape});
  // One compiled word-parallel evaluator per run, shared by every worker's
  // harvester (immutable after construction, so concurrent reads are free).
  const circuit::EvalPlan eval_plan(*problem.circuit);
  std::size_t n_workers = config.n_workers;
  if (n_workers == 0) {
    n_workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  if (config.max_rounds != 0 && n_workers > config.max_rounds) {
    // A worker that can never claim a round would still pay for a full
    // engine allocation and inflate the reported memory footprint.
    n_workers = static_cast<std::size_t>(config.max_rounds);
  }
  if (n_workers <= 1) {
    return run_serial(problem, formula, options, config, compiled, eval_plan,
                      extras);
  }
  return run_parallel(problem, formula, options, config, compiled, eval_plan,
                      n_workers, extras);
}

}  // namespace hts::sampler
