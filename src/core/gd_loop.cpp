#include "core/gd_loop.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <memory>
#include <optional>
#include <thread>

#include "circuit/eval_plan.hpp"
#include "core/harvester.hpp"
#include "core/unique_bank.hpp"
#include "prob/engine.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace hts::sampler {

namespace {

[[nodiscard]] prob::Engine::Config make_engine_config(const GdLoopConfig& config) {
  prob::Engine::Config engine_config;
  engine_config.batch = config.batch;
  engine_config.learning_rate = config.learning_rate;
  engine_config.init_std = config.init_std;
  engine_config.policy = config.policy;
  engine_config.fast_sigmoid = config.fast_sigmoid;
  return engine_config;
}

/// Tracks per-row loss progress between harvest windows for plateau
/// restarts (GdLoopConfig::restart_plateau).  A row "improves" when its
/// loss drops below its best-so-far by more than a small epsilon; after k
/// consecutive windows without improvement the row is flagged for
/// re-seeding.  Solved rows are restart_solved's business: they reset their
/// tracker and are never flagged here.  Trackers reset every round — a
/// fresh random V owes no progress to the previous basin.
class PlateauTracker {
 public:
  PlateauTracker(std::size_t batch, std::size_t n_words, std::size_t k)
      : k_(k), batch_(batch), best_(batch), age_(batch), mask_(n_words) {}

  void begin_round() {
    std::fill(best_.begin(), best_.end(),
              std::numeric_limits<float>::infinity());
    std::fill(age_.begin(), age_.end(), 0u);
  }

  /// Observes the engine's current per-row losses; returns the mask (same
  /// word layout as harden()) of rows stuck for >= k windows.
  const std::vector<std::uint64_t>& observe(
      const prob::Engine& engine, const std::vector<std::uint64_t>& solved) {
    // Loss improvements below this are float jitter, not progress.
    constexpr float kEps = 1e-6f;
    engine.row_losses(losses_);
    std::fill(mask_.begin(), mask_.end(), 0);
    for (std::size_t r = 0; r < batch_; ++r) {
      const std::size_t word = r / 64;
      const std::uint64_t bit = 1ULL << (r % 64);
      if (word < solved.size() && (solved[word] & bit) != 0) {
        best_[r] = std::numeric_limits<float>::infinity();
        age_[r] = 0;
        continue;
      }
      if (losses_[r] < best_[r] - kEps) {
        best_[r] = losses_[r];
        age_[r] = 0;
        continue;
      }
      if (++age_[r] >= k_) {
        mask_[word] |= bit;
        best_[r] = std::numeric_limits<float>::infinity();
        age_[r] = 0;
      }
    }
    return mask_;
  }

 private:
  std::size_t k_;
  std::size_t batch_;
  std::vector<float> best_;
  std::vector<std::uint32_t> age_;
  std::vector<std::uint64_t> mask_;
  std::vector<float> losses_;
};

/// The legacy single-thread loop, kept verbatim so n_workers == 1 reproduces
/// pre-refactor results bit for bit (same RNG consumption order, same bank
/// insertion order, same progress checkpoints).
RunResult run_serial(const GdProblem& problem, const cnf::Formula& formula,
                     const RunOptions& options, const GdLoopConfig& config,
                     const prob::CompiledCircuit& compiled,
                     const circuit::EvalPlan& eval_plan, GdLoopExtras* extras) {
  RunResult result;
  prob::Engine engine(compiled, make_engine_config(config));

  util::Rng rng(options.seed);
  util::Deadline deadline(options.budget_ms);
  util::Timer timer;
  UniqueBank bank(problem.circuit->n_inputs());
  Harvester<UniqueBank> harvester(problem, formula, options, bank, result,
                                  &eval_plan);

  std::vector<std::size_t> uniques_per_iteration(
      static_cast<std::size_t>(config.iterations) + 1, 0);
  std::uint64_t rounds = 0;
  std::uint64_t restarted_rows = 0;
  std::uint64_t plateau_restarted_rows = 0;
  std::vector<std::uint64_t> packed;
  std::optional<PlateauTracker> plateau;
  if (config.restart_plateau > 0) {
    plateau.emplace(config.batch, engine.n_words(), config.restart_plateau);
  }

  auto reached_target = [&] {
    return options.min_solutions > 0 &&
           harvester.n_unique() >= options.min_solutions;
  };

  // Solved rows have been banked; re-seeding them starts fresh descents in
  // the remaining iterations instead of re-converging to the same basin.
  // Skipped after the round's final harvest — randomize() follows anyway.
  auto restart_solved_rows = [&] {
    if (config.restart_solved) {
      restarted_rows += engine.rerandomize_rows(harvester.last_solved(), rng);
    }
  };
  // Plateaued rows follow; only meaningful at mid-round harvests, where the
  // engine's activations come from this round's own forward pass.
  auto restart_plateau_rows = [&] {
    if (plateau) {
      plateau_restarted_rows += engine.rerandomize_rows(
          plateau->observe(engine, harvester.last_solved()), rng);
    }
  };

  while (!reached_target() && !deadline.expired() &&
         (config.max_rounds == 0 || rounds < config.max_rounds)) {
    ++rounds;
    engine.randomize(rng);
    if (plateau) plateau->begin_round();
    // Iteration-0 checkpoint: random initialization already satisfies the
    // unconstrained paths (and occasionally everything).
    if (config.collect_each_iteration) {
      engine.harden(packed);
      harvester.collect(packed, engine.n_words(), config.batch);
      uniques_per_iteration[0] =
          std::max(uniques_per_iteration[0], harvester.n_unique());
      restart_solved_rows();
    }
    for (int iter = 1; iter <= config.iterations; ++iter) {
      engine.run_iteration();
      if (config.collect_each_iteration || iter == config.iterations) {
        engine.harden(packed);
        harvester.collect(packed, engine.n_words(), config.batch);
        const auto slot = static_cast<std::size_t>(iter);
        uniques_per_iteration[slot] =
            std::max(uniques_per_iteration[slot], harvester.n_unique());
        result.progress.push_back(
            ProgressPoint{timer.milliseconds(), harvester.n_unique()});
        if (iter != config.iterations) {
          restart_solved_rows();
          restart_plateau_rows();
        }
      }
      if (reached_target() || deadline.expired()) break;
    }
  }

  result.n_unique = harvester.n_unique();
  result.elapsed_ms = timer.milliseconds();
  result.timed_out = !reached_target() && options.min_solutions > 0;
  // Rounds may end early (target/deadline) before filling late iteration
  // slots; present the curve as a cumulative maximum so it reads as "uniques
  // available by iteration i".
  for (std::size_t i = 1; i < uniques_per_iteration.size(); ++i) {
    uniques_per_iteration[i] =
        std::max(uniques_per_iteration[i], uniques_per_iteration[i - 1]);
  }
  if (extras != nullptr) {
    extras->uniques_per_iteration = std::move(uniques_per_iteration);
    extras->engine_memory_bytes = engine.memory_bytes();
    extras->rounds = rounds;
    extras->restarted_rows = restarted_rows;
    extras->plateau_restarted_rows = plateau_restarted_rows;
    extras->rows_validated = harvester.rows_validated();
    extras->harvest_ms = harvester.harvest_ms();
  }
  return result;
}

/// Round-parallel execution: N workers, each owning an engine and a
/// decorrelated RNG stream, race through independent randomize -> iterate ->
/// harden rounds and merge uniques into one shared sharded bank.  Rounds are
/// claimed from a shared counter (so max_rounds bounds the total), and the
/// target / deadline checks read the *global* unique count, so workers stop
/// as soon as the fleet collectively reaches the goal.
RunResult run_parallel(const GdProblem& problem, const cnf::Formula& formula,
                       const RunOptions& options, const GdLoopConfig& config,
                       const prob::CompiledCircuit& compiled,
                       const circuit::EvalPlan& eval_plan,
                       std::size_t n_workers, GdLoopExtras* extras) {
  struct WorkerOutput {
    RunResult result;
    std::vector<std::size_t> uniques_per_iteration;
    std::size_t engine_bytes = 0;
    std::uint64_t rounds = 0;
    std::uint64_t restarted_rows = 0;
    std::uint64_t plateau_restarted_rows = 0;
    std::uint64_t rows_validated = 0;
    double harvest_ms = 0.0;
  };

  const std::size_t n_slots = static_cast<std::size_t>(config.iterations) + 1;
  std::vector<WorkerOutput> outputs(n_workers);
  for (WorkerOutput& out : outputs) out.uniques_per_iteration.assign(n_slots, 0);

  ShardedUniqueBank bank(problem.circuit->n_inputs());
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> next_round{0};

  // Engines are built before the clock starts, mirroring the serial path
  // where construction precedes the Deadline: buffer allocation for a large
  // instance can cost more than a tight budget, and a worker that wakes up
  // already expired would contribute nothing.
  std::vector<std::unique_ptr<prob::Engine>> engines;
  engines.reserve(n_workers);
  for (std::size_t w = 0; w < n_workers; ++w) {
    engines.push_back(
        std::make_unique<prob::Engine>(compiled, make_engine_config(config)));
  }

  util::Deadline deadline(options.budget_ms);
  util::Timer timer;

  auto reached_target = [&] {
    return options.min_solutions > 0 && bank.size() >= options.min_solutions;
  };

  auto worker_fn = [&](std::size_t w) {
    WorkerOutput& out = outputs[w];
    prob::Engine& engine = *engines[w];
    util::Rng rng = util::Rng::stream(options.seed, w);
    Harvester<ShardedUniqueBank> harvester(problem, formula, options, bank,
                                           out.result, &eval_plan);
    std::vector<std::uint64_t> packed;
    std::optional<PlateauTracker> plateau;
    if (config.restart_plateau > 0) {
      plateau.emplace(config.batch, engine.n_words(), config.restart_plateau);
    }

    while (!stop.load(std::memory_order_relaxed)) {
      if (reached_target() || deadline.expired()) {
        stop.store(true, std::memory_order_relaxed);
        break;
      }
      const std::uint64_t round = next_round.fetch_add(1);
      if (config.max_rounds != 0 && round >= config.max_rounds) break;
      ++out.rounds;
      engine.randomize(rng);
      if (plateau) plateau->begin_round();
      // See run_serial: solved rows restart mid-round; the round's final
      // harvest skips it because randomize() follows.
      auto restart_solved_rows = [&] {
        if (config.restart_solved) {
          out.restarted_rows +=
              engine.rerandomize_rows(harvester.last_solved(), rng);
        }
      };
      auto restart_plateau_rows = [&] {
        if (plateau) {
          out.plateau_restarted_rows += engine.rerandomize_rows(
              plateau->observe(engine, harvester.last_solved()), rng);
        }
      };
      if (config.collect_each_iteration) {
        engine.harden(packed);
        harvester.collect(packed, engine.n_words(), config.batch);
        out.uniques_per_iteration[0] =
            std::max(out.uniques_per_iteration[0], bank.size());
        restart_solved_rows();
      }
      for (int iter = 1; iter <= config.iterations; ++iter) {
        engine.run_iteration();
        if (config.collect_each_iteration || iter == config.iterations) {
          engine.harden(packed);
          harvester.collect(packed, engine.n_words(), config.batch);
          const auto slot = static_cast<std::size_t>(iter);
          out.uniques_per_iteration[slot] =
              std::max(out.uniques_per_iteration[slot], bank.size());
          out.result.progress.push_back(
              ProgressPoint{timer.milliseconds(), bank.size()});
          if (iter != config.iterations) {
            restart_solved_rows();
            restart_plateau_rows();
          }
        }
        if (reached_target() || deadline.expired()) {
          stop.store(true, std::memory_order_relaxed);
          break;
        }
      }
    }
    out.engine_bytes = engine.memory_bytes();
    out.rows_validated = harvester.rows_validated();
    out.harvest_ms = harvester.harvest_ms();
  };

  std::vector<std::thread> threads;
  threads.reserve(n_workers - 1);
  for (std::size_t w = 1; w < n_workers; ++w) threads.emplace_back(worker_fn, w);
  worker_fn(0);
  for (std::thread& t : threads) t.join();

  // ---- merge ----
  RunResult result;
  std::vector<std::size_t> uniques_per_iteration(n_slots, 0);
  std::uint64_t rounds = 0;
  std::uint64_t restarted_rows = 0;
  std::uint64_t plateau_restarted_rows = 0;
  std::uint64_t rows_validated = 0;
  double harvest_ms = 0.0;
  std::size_t engine_bytes = 0;
  for (WorkerOutput& out : outputs) {
    result.n_valid += out.result.n_valid;
    result.n_invalid += out.result.n_invalid;
    result.progress.insert(result.progress.end(), out.result.progress.begin(),
                           out.result.progress.end());
    for (cnf::Assignment& solution : out.result.solutions) {
      if (result.solutions.size() >= options.store_limit) break;
      result.solutions.push_back(std::move(solution));
    }
    for (std::size_t i = 0; i < n_slots; ++i) {
      uniques_per_iteration[i] =
          std::max(uniques_per_iteration[i], out.uniques_per_iteration[i]);
    }
    rounds += out.rounds;
    restarted_rows += out.restarted_rows;
    plateau_restarted_rows += out.plateau_restarted_rows;
    rows_validated += out.rows_validated;
    harvest_ms += out.harvest_ms;
    engine_bytes += out.engine_bytes;
  }
  // Each worker's checkpoints are individually chronological; interleave
  // them into one timeline.  Counts are global-bank snapshots, so enforcing
  // a running maximum restores monotonicity across the interleaving.
  std::sort(result.progress.begin(), result.progress.end(),
            [](const ProgressPoint& a, const ProgressPoint& b) {
              return a.elapsed_ms < b.elapsed_ms;
            });
  std::size_t running_max = 0;
  for (ProgressPoint& point : result.progress) {
    running_max = std::max(running_max, point.n_unique);
    point.n_unique = running_max;
  }

  result.n_unique = bank.size();
  result.elapsed_ms = timer.milliseconds();
  result.timed_out = !reached_target() && options.min_solutions > 0;
  for (std::size_t i = 1; i < n_slots; ++i) {
    uniques_per_iteration[i] =
        std::max(uniques_per_iteration[i], uniques_per_iteration[i - 1]);
  }
  if (extras != nullptr) {
    extras->uniques_per_iteration = std::move(uniques_per_iteration);
    // Total footprint of the fleet (the Fig. 3 memory metric scales with
    // workers just as batch does).
    extras->engine_memory_bytes = engine_bytes;
    extras->rounds = rounds;
    extras->restarted_rows = restarted_rows;
    extras->plateau_restarted_rows = plateau_restarted_rows;
    extras->rows_validated = rows_validated;
    extras->harvest_ms = harvest_ms;
  }
  return result;
}

}  // namespace

RunResult run_gd_loop(const GdProblem& problem, const cnf::Formula& formula,
                      const RunOptions& options, const GdLoopConfig& config,
                      GdLoopExtras* extras) {
  prob::CompiledCircuit compiled(
      *problem.circuit,
      prob::CompiledCircuit::Options{config.cone_only, config.optimize_tape});
  // One compiled word-parallel evaluator per run, shared by every worker's
  // harvester (immutable after construction, so concurrent reads are free).
  const circuit::EvalPlan eval_plan(*problem.circuit);
  std::size_t n_workers = config.n_workers;
  if (n_workers == 0) {
    n_workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  if (config.max_rounds != 0 && n_workers > config.max_rounds) {
    // A worker that can never claim a round would still pay for a full
    // engine allocation and inflate the reported memory footprint.
    n_workers = static_cast<std::size_t>(config.max_rounds);
  }
  if (n_workers <= 1) {
    return run_serial(problem, formula, options, config, compiled, eval_plan,
                      extras);
  }
  return run_parallel(problem, formula, options, config, compiled, eval_plan,
                      n_workers, extras);
}

}  // namespace hts::sampler
