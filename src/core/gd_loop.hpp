#pragma once

// Shared gradient-descent sampling loop.
//
// Both the paper's sampler (on the transformed multi-level circuit) and the
// DiffSampler baseline (on the flat CNF relaxation) are "batched GD +
// harden + verify" loops over a circuit; they differ only in the circuit
// handed in.  Keeping one loop guarantees the Table II / Fig. 4 comparisons
// measure the transformation, not incidental implementation differences.

#include "core/sampler.hpp"
#include "circuit/circuit.hpp"
#include "tensor/tensor.hpp"

namespace hts::sampler {

struct GdProblem {
  const circuit::Circuit* circuit = nullptr;
  /// Original CNF variable -> circuit signal (for projecting solutions).
  const std::vector<circuit::SignalId>* var_signal = nullptr;
  /// Circuit input i -> original CNF variable (cnf::kInvalidVar for
  /// auxiliary inputs).  Null means the identity mapping, which holds for
  /// the flat-CNF and direct-circuit samplers; the paper's transform fills
  /// it from transform::Result::input_vars.
  const std::vector<cnf::Var>* input_vars = nullptr;
  /// Sampling/projection set over original variables (a DIMACS 'c ind'
  /// declaration or a per-request override).  Owned by value — the problem
  /// outlives any request buffer it was copied from, so retry replay and
  /// job moves can never dangle.  Empty means every variable.  It scopes
  /// the amplifier's flip support and, when GdLoopConfig::projected_dedup
  /// is on, keys the unique bank on the projection.  Invariant: sorted,
  /// deduplicated, every entry < var_signal->size(); run unvalidated
  /// caller input through normalize_sampling_set() first.
  std::vector<cnf::Var> sampling_set;
};

/// Sorts, deduplicates, and drops out-of-range entries from a
/// caller-supplied sampling set, establishing GdProblem::sampling_set's
/// invariant.  Formula::set_sampling_set already enforces the same shape,
/// so formula-borne sets can be copied verbatim.
[[nodiscard]] std::vector<cnf::Var> normalize_sampling_set(
    std::vector<cnf::Var> set, std::size_t n_vars);

/// A literal-weight request: an extra loss term weight * (p_var - target)^2
/// per batch row, where target is 0 for a negated literal and 1 otherwise.
/// The GD descent then steers variable `var` toward the literal's phase
/// with strength `weight` — including variables outside every constraint
/// (free variables), which plain descent never moves.  Weights on
/// variables that never became circuit inputs are ignored.
struct LitWeight {
  cnf::Var var = 0;
  bool negated = false;
  float weight = 1.0f;
};

/// Flip amplification of harvested solutions — QuickSampler's idea run in
/// the word domain.  Every solution freshly banked by a GD harvest becomes
/// a base: its single-bit flips over the sampling-set inputs, plus pairs of
/// the single flips that stayed satisfying, are packed 64 mutants per word
/// into EvalPlan blocks and validated at harvest speed, with survivors fed
/// to the unique bank in a deterministic order (bases in bank-insertion
/// order, singles in input order, pairs lexicographic).  Amplification
/// never consumes RNG draws, so `enabled = false` (the default) is
/// bit-identical to the pre-amplifier loop.
struct AmplifyConfig {
  bool enabled = false;
  /// Cap on double-flip mutants per base (combinations of its *successful*
  /// single flips, in lexicographic order).  0 skips the double wave.
  std::size_t max_pairs_per_base = 256;
  /// Cap on bases amplified per harvest, taking the first N freshly banked
  /// solutions in bank-insertion order (0 = all of them).
  std::size_t max_bases_per_collect = 0;
};

struct GdLoopConfig {
  std::size_t batch = 4096;
  int iterations = 5;
  float learning_rate = 10.0f;
  float init_std = 2.0f;
  bool collect_each_iteration = true;
  bool cone_only = false;
  tensor::Policy policy = tensor::Policy::kDataParallel;
  /// Stop after this many randomize->iterate rounds (0 = unlimited).  Used
  /// by the Fig. 3 learning-curve harness to observe exactly one round.
  std::uint64_t max_rounds = 0;
  /// Round-parallel workers.  1 (default) runs the exact legacy serial loop
  /// (bit-identical results for a fixed seed); 0 selects the hardware
  /// concurrency; N > 1 runs N workers, each owning a prob::Engine and a
  /// decorrelated RNG stream (util::Rng::stream(seed, worker)), merging
  /// uniques into one shared ShardedUniqueBank.  Rounds are claimed from a
  /// shared counter so max_rounds bounds the *total* across workers.
  std::size_t n_workers = 1;
  /// Solved-row restarts: after each mid-round harvest, rows whose hardened
  /// assignment already satisfied get fresh random V instead of re-descending
  /// a converged basin, turning wasted converged iterations into fresh
  /// unique-solution throughput.  Off reproduces the pre-restart loop bit
  /// for bit (no extra RNG draws).
  bool restart_solved = true;
  /// Plateau restarts: a row whose per-row loss has not improved for this
  /// many consecutive harvest windows is stuck in a basin and gets fresh
  /// random V, like a solved row would.  0 (default) disables — the loop is
  /// then bit-identical to the pre-plateau implementation (no extra RNG
  /// draws).  Trackers reset every round; solved rows are restart_solved's
  /// business and are never counted here.
  std::size_t restart_plateau = 0;
  /// Embed with the vectorized fast sigmoid (see Engine::Config).
  bool fast_sigmoid = true;
  /// Run the tape optimizer after compilation (see CompiledCircuit::Options).
  /// Off keeps the raw gate-per-gate tape — note its DCE prunes the same
  /// unconstrained logic cone_only skips, so cone ablations must disable it.
  bool optimize_tape = true;
  /// Flip-amplify freshly banked solutions after every harvest (see
  /// AmplifyConfig; off by default, and off is bit-identical to the
  /// pre-amplifier loop).
  AmplifyConfig amplify;
  /// When a sampling set is active, key the unique bank on the projection
  /// onto that set: two solutions identical over the set count as one
  /// unique, and exactly one full witness per projection is stored and
  /// delivered.  With no sampling set (or with this off) dedup stays over
  /// full input assignments, bit-identical to the pre-projection loop.
  bool projected_dedup = true;
  /// Diversity objective: at the existing restart points, also re-seed rows
  /// whose hardened projection is already banked — they are descending into
  /// an already-collected projected class and would only produce duplicate
  /// projections.  Requires an active sampling set and projected_dedup
  /// (no-op otherwise).  Off (default) consumes no extra RNG draws and is
  /// bit-identical to the pre-diversity loop.
  bool diversity_restart = false;
  /// Per-literal loss weights (see LitWeight).  Empty (default) adds zero
  /// float ops — bit-identical to the unweighted loop; so are entries with
  /// weight 0.  Applied per tile inside the engine, so all scheduling
  /// policies remain bit-identical to each other.
  std::vector<LitWeight> lit_weights;
};

struct GdLoopExtras {
  /// Cumulative unique count observed at iteration i (Fig. 3 left).
  std::vector<std::size_t> uniques_per_iteration;
  std::size_t engine_memory_bytes = 0;
  std::uint64_t rounds = 0;
  /// Rows re-seeded by solved-row restarts (0 when the knob is off).
  std::uint64_t restarted_rows = 0;
  /// Rows re-seeded by plateau restarts (0 when restart_plateau is off).
  std::uint64_t plateau_restarted_rows = 0;
  /// Engine iterations executed across all workers (each is one full
  /// embed/forward/backward/update sweep over the batch).
  std::uint64_t gd_iterations = 0;
  /// Batch rows validated by the harvest pipeline and the wall-clock spent
  /// doing it, both summed across workers.  Their ratio is the *mean
  /// per-worker* validation throughput (one engine's counterpart of GD
  /// iterations/sec); concurrent workers overlap in time, so it is not an
  /// aggregate fleet rate.
  std::uint64_t rows_validated = 0;
  double harvest_ms = 0.0;
  /// Flip-mutant rows the amplifier generated and validated, the unique
  /// solutions among them, and the wall-clock spent doing it (all zero when
  /// AmplifyConfig::enabled is off).  Candidates are billed separately from
  /// rows_validated so harvest rows/sec keeps measuring the GD pipeline.
  std::uint64_t amplified_candidates = 0;
  std::uint64_t amplified_uniques = 0;
  double amplify_ms = 0.0;
  /// Rows re-seeded by the diversity objective (0 when diversity_restart is
  /// off or no sampling set is active).
  std::uint64_t diversity_restarted_rows = 0;
  /// Engine inputs carrying a literal-weight bias (0 when lit_weights is
  /// empty or nothing resolved onto a circuit input).
  std::size_t weighted_inputs = 0;
};

/// True when the bank keys on the sampling-set projection: a set is active
/// and projected_dedup is on.
[[nodiscard]] inline bool projection_active(const GdProblem& problem,
                                            const GdLoopConfig& config) {
  return config.projected_dedup && !problem.sampling_set.empty();
}

/// Bits per unique-bank key for this (problem, config): the sampling-set
/// size under projected dedup, the full circuit input count otherwise.
/// Every bank construction site must agree with the harvester through this
/// one function.
[[nodiscard]] inline std::size_t bank_key_bits(const GdProblem& problem,
                                               const GdLoopConfig& config) {
  return projection_active(problem, config) ? problem.sampling_set.size()
                                            : problem.circuit->n_inputs();
}

/// Runs rounds of randomize -> iterate -> harden -> verify -> bank until
/// options.min_solutions unique solutions are collected, the deadline
/// expires, or options.stop requests cancellation (polled at round and
/// iteration boundaries; partial results are returned cleanly).  `formula`
/// is only consulted for RunOptions::verify_against_cnf.
[[nodiscard]] RunResult run_gd_loop(const GdProblem& problem,
                                    const cnf::Formula& formula,
                                    const RunOptions& options,
                                    const GdLoopConfig& config,
                                    GdLoopExtras* extras = nullptr);

}  // namespace hts::sampler
