#include "core/gradient_sampler.hpp"

#include "core/gd_loop.hpp"
#include "util/timer.hpp"

namespace hts::sampler {

GdLoopConfig make_gd_loop_config(const GradientConfig& config) {
  GdLoopConfig loop_config;
  loop_config.batch = config.batch;
  loop_config.iterations = config.iterations;
  loop_config.learning_rate = config.learning_rate;
  loop_config.init_std = config.init_std;
  loop_config.collect_each_iteration = config.collect_each_iteration;
  loop_config.cone_only = config.cone_only;
  loop_config.policy = config.policy;
  loop_config.max_rounds = config.max_rounds;
  loop_config.n_workers = config.n_workers;
  loop_config.restart_solved = config.restart_solved;
  loop_config.restart_plateau = config.restart_plateau;
  loop_config.fast_sigmoid = config.fast_sigmoid;
  loop_config.optimize_tape = config.optimize_tape;
  loop_config.amplify = config.amplify;
  loop_config.projected_dedup = config.projected_dedup;
  loop_config.diversity_restart = config.diversity_restart;
  loop_config.lit_weights = config.lit_weights;
  return loop_config;
}

RunResult GradientSampler::run(const cnf::Formula& formula,
                               const RunOptions& options) {
  RunResult result;
  result.sampler_name = name();

  util::Timer setup_timer;
  const transform::Result problem = transform_cnf(formula, config_.transform);
  transform_stats_ = problem.stats;
  const double setup_ms = setup_timer.milliseconds();
  if (problem.proven_unsat) {
    result.proven_unsat = true;
    result.setup_ms = setup_ms;
    return result;
  }

  GdProblem gd_problem;
  gd_problem.circuit = &problem.circuit;
  gd_problem.var_signal = &problem.var_signal;
  gd_problem.input_vars = &problem.input_vars;
  if (formula.has_sampling_set()) {
    // Copied by value (the problem owns its set); already normalized by
    // Formula::set_sampling_set.
    gd_problem.sampling_set = formula.sampling_set();
  }

  const GdLoopConfig loop_config = make_gd_loop_config(config_);

  extras_ = GdLoopExtras{};
  result = run_gd_loop(gd_problem, formula, options, loop_config, &extras_);
  result.sampler_name = name();
  result.setup_ms = setup_ms;
  return result;
}

}  // namespace hts::sampler
