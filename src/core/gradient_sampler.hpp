#pragma once

// The paper's sampler: CNF -> multi-level circuit (Algorithm 1) ->
// probabilistic relaxation -> batched gradient descent -> harden & verify.
//
// Each batch row is an independent regression problem; after every GD
// iteration the soft inputs are hardened (V > 0), the circuit is evaluated
// bit-parallel (64 rows per machine word), rows meeting all output
// constraints are projected back to original-variable assignments, and new
// unique solutions are banked.  Rounds of fresh random initializations run
// until the target count or deadline is reached.

#include <optional>

#include "core/gd_loop.hpp"
#include "core/sampler.hpp"
#include "prob/engine.hpp"
#include "tensor/tensor.hpp"
#include "transform/transform.hpp"

namespace hts::sampler {

struct GradientConfig {
  std::size_t batch = 4096;
  int iterations = 5;           // the paper's setting
  float learning_rate = 10.0f;  // the paper's setting
  float init_std = 2.0f;
  /// Harden-and-collect after every iteration (the Fig. 3 learning curve
  /// harvests per-iteration; disabling collects only after the last one).
  bool collect_each_iteration = true;
  /// Compile only the constrained cone for GD (ablation; unconstrained
  /// inputs stay at their random initialization either way).
  bool cone_only = false;
  tensor::Policy policy = tensor::Policy::kDataParallel;
  /// Stop after this many rounds regardless of targets (0 = unlimited).
  std::uint64_t max_rounds = 0;
  /// Round-parallel workers (see GdLoopConfig::n_workers): 1 = the legacy
  /// serial loop, 0 = hardware concurrency, N > 1 = N engines racing through
  /// decorrelated rounds into a shared unique bank.
  std::size_t n_workers = 1;
  /// Re-seed rows that already satisfied after each mid-round harvest
  /// (see GdLoopConfig::restart_solved).
  bool restart_solved = true;
  /// Re-seed rows whose per-row loss plateaued above zero for this many
  /// harvest windows; 0 disables (see GdLoopConfig::restart_plateau).
  std::size_t restart_plateau = 0;
  /// Vectorized fast sigmoid for the embed step (see Engine::Config).
  bool fast_sigmoid = true;
  /// Tape optimizer (see GdLoopConfig::optimize_tape).
  bool optimize_tape = true;
  /// Flip-amplify freshly banked solutions after every harvest (see
  /// AmplifyConfig; off = bit-identical legacy stream).  The flip support is
  /// the formula's sampling set ('c ind') when one is declared.
  AmplifyConfig amplify;
  /// Key unique solutions on the sampling-set projection when a set is
  /// active (see GdLoopConfig::projected_dedup).
  bool projected_dedup = true;
  /// Re-seed rows descending into already-banked projected classes (see
  /// GdLoopConfig::diversity_restart; needs a sampling set + projected
  /// dedup, off by default).
  bool diversity_restart = false;
  /// Per-literal loss weights (see LitWeight; empty = unweighted,
  /// bit-identical stream).
  std::vector<LitWeight> lit_weights;
  transform::Config transform;
};

/// Loop configuration implied by a sampler configuration.  One mapping,
/// shared by GradientSampler::run and the sampling service's job runner, so
/// a GradientConfig knob can never silently stop reaching the loop on one
/// of the two paths.  (transform is consumed earlier, at circuit-extraction
/// time, and n_workers is ignored by the service — its parallelism axis is
/// concurrent requests, not round-parallel workers within one.)
[[nodiscard]] GdLoopConfig make_gd_loop_config(const GradientConfig& config);

class GradientSampler : public Sampler {
 public:
  explicit GradientSampler(GradientConfig config = {}) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "HTS-GD(this work)"; }
  [[nodiscard]] RunResult run(const cnf::Formula& formula,
                              const RunOptions& options) override;

  /// Per-iteration unique counts of the most recent run (cumulative), for
  /// the Fig. 3 learning curve.
  [[nodiscard]] const std::vector<std::size_t>& uniques_per_iteration() const {
    return extras_.uniques_per_iteration;
  }

  /// Engine buffer bytes of the most recent run (Fig. 3 memory metric).
  [[nodiscard]] std::size_t engine_memory_bytes() const {
    return extras_.engine_memory_bytes;
  }

  /// Full loop accounting of the most recent run (restart volumes, harvest
  /// rows/time for the rows-validated/sec bench metric, ...).
  [[nodiscard]] const GdLoopExtras& extras() const { return extras_; }

  /// Transformation statistics of the most recent run.
  [[nodiscard]] const std::optional<transform::Stats>& transform_stats() const {
    return transform_stats_;
  }

 private:
  GradientConfig config_;
  GdLoopExtras extras_;
  std::optional<transform::Stats> transform_stats_;
};

}  // namespace hts::sampler
