#pragma once

// Harvests valid, new solutions out of a hardened batch.
//
// Extracted from the GD loop so the serial path (one Harvester over a plain
// UniqueBank) and the round-parallel path (one Harvester per worker, all
// merging into a shared ShardedUniqueBank) run the identical
// unpack -> evaluate -> mask -> project pipeline.  `Bank` only needs
// insert(key), contains(key), size() and n_words(); uniqueness is decided
// wherever the bank lives, so a worker's duplicate of another worker's
// solution is rejected at the merge point, not after.
//
// When a sampling set is active and HarvestMode::projected is set, the bank
// key is the row's projection onto the set (bit k = set variable k) rather
// than the full input assignment: two solutions identical over the set
// count as one unique, and the first full witness per projection is what
// gets stored.  Amplifier bases stay full input keys either way.
//
// Validation runs on the circuit's compiled word-parallel plan
// (circuit::EvalPlan): blocks of EvalPlan::kBlockWords words (4 x 64 = 256
// rows) are evaluated through opcode-batched u64x4 kernels, and large
// batches split their blocks across the global ThreadPool.  collect() is
// two-phase — a (possibly parallel) evaluation phase writes only
// per-word solved masks and projection words, then a serial accept phase
// walks words in order — so counts, bank insertion order, and stored
// solutions are bit-identical to the historical scalar eval64 walk under
// every thread count (tests/harvest_diff_test.cpp pins this down).
//
// All scratch (evaluation slots, solved masks, projection words, the key
// buffer) is per-instance and reused: after the first collect() of a given
// batch shape, repeated harvests perform no heap allocation beyond what the
// bank needs for genuinely new solutions.

#include <algorithm>
#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "circuit/eval_plan.hpp"
#include "core/gd_loop.hpp"
#include "core/unique_bank.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace hts::sampler {

/// Caller-owned scratch for Harvester::collect_candidates.  The amplifier
/// keeps one per instance so repeated amplified collects perform no heap
/// allocation once the buffers are warm — the same bar collect() meets with
/// its member scratch.
struct CollectScratch {
  std::vector<std::uint64_t> solved_mask;
  std::vector<std::uint64_t> proj;
  std::vector<std::uint64_t> slots;
};

/// How the accept phase keys the bank and what phase 1 must stash for it.
/// Derive from the loop config with harvest_mode_for() so every bank
/// construction site (sized by bank_key_bits) agrees with the harvester.
struct HarvestMode {
  /// Key the bank on the sampling-set projection.  The bank must then be
  /// bank_key_bits(problem, config) bits wide.  Off keys on the full input
  /// assignment, bit-identical to the pre-projection accept path.
  bool projected = false;
  /// Also stash sampling-set bits for *unsolved* rows so
  /// banked_projection_mask() can answer "is this row descending into an
  /// already-banked projected class?" — the diversity objective's probe.
  bool probe_projections = false;
};

/// The harvest mode a (problem, config) pair implies: projected keying when
/// projection_active(), plus the diversity probe when diversity_restart
/// asks for it.
[[nodiscard]] inline HarvestMode harvest_mode_for(const GdProblem& problem,
                                                  const GdLoopConfig& config) {
  HarvestMode mode;
  mode.projected = projection_active(problem, config);
  mode.probe_projections = mode.projected && config.diversity_restart;
  return mode;
}

template <typename Bank>
class Harvester {
 public:
  /// `result` receives per-harvester accounting (n_valid, n_invalid, stored
  /// solutions); in the round-parallel path it is a worker-local RunResult
  /// merged after the join.  `bank` decides uniqueness and may be shared.
  /// `plan` is the circuit's compiled evaluator; pass one to share it across
  /// workers (it is immutable after construction), or leave it null and the
  /// harvester compiles its own.
  /// `inline_eval` keeps the evaluation phase on the calling thread even
  /// when the global pool is real: the sampling service sets it for the
  /// same reason its engines default to kSerial — concurrent jobs are the
  /// parallelism axis, and a loaded fleet fanning every harvest out to one
  /// shared pool only adds queue contention and oversubscription.
  Harvester(const GdProblem& problem, const cnf::Formula& formula,
            const RunOptions& options, Bank& bank, RunResult& result,
            const circuit::EvalPlan* plan = nullptr, bool inline_eval = false,
            HarvestMode mode = {})
      : problem_(problem),
        formula_(formula),
        options_(options),
        result_(result),
        bank_(bank),
        plan_(plan),
        inline_eval_(inline_eval),
        mode_(mode),
        // accept_row wants a full projected assignment only to store or
        // verify it; projected keying and the diversity probe additionally
        // need the sampling-set bits.  A keys-only full-assignment
        // configuration never reads the stash, so phase 1 can skip writing
        // (and allocating) it entirely.
        stash_all_(options.store_limit > 0 || options.verify_against_cnf),
        key_((problem.circuit->n_inputs() + 63) / 64, 0) {
    // Projected keying without a set would collapse every solution onto one
    // empty key; treat it as full-assignment mode (harvest_mode_for never
    // produces this, but direct constructions might).
    if (problem_.sampling_set.empty()) {
      mode_.projected = false;
      mode_.probe_projections = false;
    }
    if (mode_.projected) proj_key_.assign(bank.n_words(), 0);
    if (plan_ == nullptr) {
      owned_plan_ = std::make_unique<circuit::EvalPlan>(*problem.circuit);
      plan_ = owned_plan_.get();
    }
  }

  [[nodiscard]] std::size_t n_unique() const { return bank_.size(); }

  /// packed: n_inputs x n_words hardened input bits covering `batch` rows.
  ///
  /// Honours RunOptions::stop at block boundaries: a cancelled collect stops
  /// evaluating further blocks and accepts only the rows already validated
  /// (unevaluated words read as unsolved), so a request abort never waits
  /// for a full batch validation.  rows_validated() is not advanced by a
  /// cancelled collect.
  void collect(const std::vector<std::uint64_t>& packed, std::size_t n_words,
               std::size_t batch) {
    if (options_.stop.stop_requested()) return;
    const util::Timer harvest_timer;
    constexpr std::size_t kB = circuit::EvalPlan::kBlockWords;
    const circuit::EvalPlan& plan = *plan_;
    const std::vector<circuit::SignalId>& var_signal = *problem_.var_signal;
    const std::size_t n_proj = var_signal.size();
    const std::size_t n_blocks = (n_words + kB - 1) / kB;

    solved_mask_.assign(n_words, 0);
    last_n_words_ = n_words;
    last_batch_ = batch;
    if (need_stash() && proj_.size() < n_words * n_proj) {
      proj_.resize(n_words * n_proj);
    }

    // Phase 1 — evaluate.  Writes are per-word disjoint (solved mask +
    // projection stash), so the block partition never affects results; it
    // only decides how many scratch buffers work in parallel.
    util::ThreadPool& pool = util::ThreadPool::global();
    std::size_t n_parts = std::min(n_blocks, pool.size());
    if (pool.size() <= 1 || inline_eval_) n_parts = 1;
    if (scratch_.size() < n_parts) scratch_.resize(n_parts);
    auto eval_part = [&](std::size_t part) {
      std::vector<std::uint64_t>& slots = scratch_[part];
      if (slots.size() < plan.scratch_words()) {
        slots.resize(plan.scratch_words());
      }
      const std::size_t block_begin = n_blocks * part / n_parts;
      const std::size_t block_end = n_blocks * (part + 1) / n_parts;
      eval_blocks(packed, n_words, batch, block_begin, block_end, slots.data(),
                  solved_mask_.data(), proj_.data(),
                  /*probe=*/mode_.probe_projections);
    };
    if (n_parts <= 1) {
      // Inline: one scratch, no dispatch (also the no-allocation fast path
      // the repeated-harvest test asserts).
      eval_part(0);
    } else {
      pool.parallel_for(n_parts, [&](std::size_t begin, std::size_t end) {
        for (std::size_t part = begin; part < end; ++part) eval_part(part);
      });
    }

    // Phase 2 — accept, serially and in word order: bank insertion order and
    // stored-solution order match the historical single-thread walk exactly.
    accept_words(packed, n_words, n_proj, solved_mask_.data(), proj_.data(),
                 /*record_fresh=*/true);
    if (!options_.stop.stop_requested()) rows_validated_ += batch;
    harvest_ms_ += harvest_timer.milliseconds();
    // Telemetry mirrors the stats above from the same timer — reads only,
    // after the accept phase, so instrumented harvests are bit-identical.
    if (telemetry::metrics_enabled() && !options_.stop.stop_requested()) {
      telemetry::Registry& reg = telemetry::Registry::global();
      static telemetry::Counter& rows =
          reg.counter("hts_harvest_rows_validated_total");
      static telemetry::Histogram& collect_ms = reg.histogram(
          "hts_harvest_collect_ms",
          {0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0});
      rows.add(batch);
      collect_ms.observe(harvest_timer.milliseconds());
    }
    if (telemetry::trace_enabled()) {
      telemetry::TraceSink::global().complete("harvest", "gd",
                                              harvest_timer.start_ns(),
                                              util::monotonic_ns());
    }
  }

  /// Validates an externally packed candidate batch (the amplifier's flip
  /// mutants) through the identical evaluate -> mask -> accept pipeline and
  /// banks the survivors; returns how many were genuinely new to the bank.
  /// Differences from collect(): evaluation always runs inline on the
  /// calling thread with the caller's scratch (deterministic and
  /// allocation-free under any pool size), last_solved() / rows_validated()
  /// / harvest_ms() are untouched (they describe GD batches — solved-row
  /// restarts and the rows/sec metric must not see mutants), and newly
  /// banked keys are not reported to the fresh sink (mutants never
  /// recursively become amplification bases).  scratch.solved_mask holds
  /// the per-row satisfied mask afterwards, so the caller can read which
  /// candidates survived.
  std::size_t collect_candidates(const std::vector<std::uint64_t>& packed,
                                 std::size_t n_words, std::size_t batch,
                                 CollectScratch& scratch) {
    if (options_.stop.stop_requested()) return 0;
    const circuit::EvalPlan& plan = *plan_;
    const std::size_t n_proj = problem_.var_signal->size();
    const std::size_t n_blocks =
        (n_words + circuit::EvalPlan::kBlockWords - 1) /
        circuit::EvalPlan::kBlockWords;
    scratch.solved_mask.assign(n_words, 0);
    if (need_stash() && scratch.proj.size() < n_words * n_proj) {
      scratch.proj.resize(n_words * n_proj);
    }
    if (scratch.slots.size() < plan.scratch_words()) {
      scratch.slots.resize(plan.scratch_words());
    }
    // Candidate batches never feed the diversity probe (the mask describes
    // GD rows), so unsolved candidate words skip the stash.
    eval_blocks(packed, n_words, batch, 0, n_blocks, scratch.slots.data(),
                scratch.solved_mask.data(), scratch.proj.data(),
                /*probe=*/false);
    return accept_words(packed, n_words, n_proj, scratch.solved_mask.data(),
                        scratch.proj.data(), /*record_fresh=*/false);
  }

  /// Registers a buffer that receives a copy of every newly banked key
  /// (bank n_words() words per solution, appended in insertion order)
  /// during collect().  The amplifier points this at its base buffer; null
  /// (the default) disables the copy entirely, so the legacy accept path is
  /// untouched when amplification is off.
  void set_fresh_sink(std::vector<std::uint64_t>* sink) { fresh_sink_ = sink; }

  /// The projection mapping (original variable -> circuit signal) the
  /// accept phase projects solutions through.  The amplifier reads this —
  /// and problem() below — instead of duplicating the projection wiring.
  [[nodiscard]] const std::vector<circuit::SignalId>& var_signal() const {
    return *problem_.var_signal;
  }

  [[nodiscard]] const GdProblem& problem() const { return problem_; }

  [[nodiscard]] const RunOptions& options() const { return options_; }

  /// The mode this harvester accepts under (after the empty-set downgrade).
  [[nodiscard]] const HarvestMode& mode() const { return mode_; }

  /// Per-row mask (same word layout as the packed batch) over the most
  /// recent collect(): rows that did NOT satisfy the circuit but whose
  /// hardened projection is already banked.  Those rows are descending into
  /// an already-collected projected class — re-seeding them is the
  /// diversity objective.  Solved rows are excluded (they are
  /// restart_solved's business); padding rows are always clear.  Meaningful
  /// only under HarvestMode::probe_projections (the stash holds sampling-set
  /// bits for unsolved rows only then); probes the bank at call time, so
  /// call it after any same-harvest amplification to see the freshest state.
  [[nodiscard]] const std::vector<std::uint64_t>& banked_projection_mask() {
    dup_mask_.assign(last_n_words_, 0);
    if (!mode_.probe_projections) return dup_mask_;
    const std::vector<cnf::Var>& set = problem_.sampling_set;
    const std::size_t n_proj = problem_.var_signal->size();
    for (std::size_t w = 0; w < last_n_words_; ++w) {
      const std::size_t rows_here =
          std::min<std::size_t>(64, last_batch_ - w * 64);
      std::uint64_t cand =
          (rows_here < 64 ? (1ULL << rows_here) - 1 : ~0ULL) & ~solved_mask_[w];
      if (cand == 0) continue;
      const std::uint64_t* stash = proj_.data() + w * n_proj;
      std::uint64_t hit = 0;
      while (cand != 0) {
        const int r = std::countr_zero(cand);
        cand &= cand - 1;
        build_proj_key(stash, static_cast<std::size_t>(r), set);
        if (bank_.contains(proj_key_)) hit |= 1ULL << r;
      }
      dup_mask_[w] = hit;
    }
    return dup_mask_;
  }

  /// Engine input slot for each sampling-set position (slot k drives the
  /// projection bit of set variable k), prob::Engine::kNoPinSlot-compatible
  /// sentinel (0xffffffff) where the set variable has no circuit input.
  /// Built lazily on first use; empty when no sampling set is active.  The
  /// diversity objective hands this to Engine::pin_row_inputs together with
  /// a propose_fresh_neighbor() pattern.
  [[nodiscard]] const std::vector<std::uint32_t>& projection_slots() {
    if (proj_slots_built_ || problem_.sampling_set.empty()) return proj_slots_;
    proj_slots_built_ = true;
    const std::size_t n_inputs = problem_.circuit->n_inputs();
    // var -> input, mirroring the amplifier's flip-support mapping.
    std::vector<std::uint32_t> input_of;
    for (std::size_t i = 0; i < n_inputs; ++i) {
      const cnf::Var var = problem_.input_vars != nullptr
                               ? (*problem_.input_vars)[i]
                               : static_cast<cnf::Var>(i);
      if (var == cnf::kInvalidVar) continue;
      if (var >= input_of.size()) input_of.resize(var + 1, 0xffffffffu);
      input_of[var] = static_cast<std::uint32_t>(i);
    }
    proj_slots_.reserve(problem_.sampling_set.size());
    for (const cnf::Var v : problem_.sampling_set) {
      proj_slots_.push_back(v < input_of.size() ? input_of[v] : 0xffffffffu);
    }
    return proj_slots_;
  }

  /// Proposes a not-yet-banked projection pattern *near* row (w, r)'s
  /// current hardened projection from the most recent collect(): try t
  /// flips 1 + t/2 random set positions of the row's own projection and
  /// checks the bank, so early tries are single-bit neighbors — almost
  /// always as completable as the solution the row just reached — and
  /// later tries widen the radius.  Returns the pattern in bank key layout
  /// (n_words() words, valid until the next call), or nullptr when every
  /// try was banked (saturated neighborhood; the caller should fall back
  /// to a plain random re-seed).  Draw count varies with bank state, which
  /// is fine: the serial loop and the service see a deterministic bank,
  /// and the round-parallel path already trades cross-fleet stream
  /// identity for racing workers.  Meaningful only under
  /// probe_projections, where phase 1 stashes set bits for every row.
  [[nodiscard]] const std::uint64_t* propose_fresh_neighbor(std::size_t w,
                                                            std::size_t r,
                                                            util::Rng& rng,
                                                            int tries) {
    if (!mode_.probe_projections) return nullptr;
    const std::vector<cnf::Var>& set = problem_.sampling_set;
    const std::size_t n_bits = set.size();
    const std::size_t n_proj = problem_.var_signal->size();
    build_proj_key(proj_.data() + w * n_proj, r, set);
    fresh_key_.resize(proj_key_.size());
    for (int t = 0; t < tries; ++t) {
      std::copy(proj_key_.begin(), proj_key_.end(), fresh_key_.begin());
      const int n_flips = 1 + t / 2;
      for (int f = 0; f < n_flips; ++f) {
        const std::size_t k = rng.next_below(n_bits);
        fresh_key_[k >> 6] ^= 1ULL << (k & 63);
      }
      if (!bank_.contains(fresh_key_)) return fresh_key_.data();
    }
    return nullptr;
  }

  /// Per-row satisfied mask of the most recent collect() (same word layout
  /// as the packed input; padding rows are always clear).  The GD loop feeds
  /// this to Engine::rerandomize_rows for solved-row restarts.
  [[nodiscard]] const std::vector<std::uint64_t>& last_solved() const {
    return solved_mask_;
  }

  /// Total batch rows validated over the harvester's lifetime (every row of
  /// every collect() is checked against all output constraints).
  [[nodiscard]] std::uint64_t rows_validated() const { return rows_validated_; }

  /// Wall-clock milliseconds spent inside collect() over the lifetime.
  [[nodiscard]] double harvest_ms() const { return harvest_ms_; }

 private:
  /// Phase-1 core shared by collect() and collect_candidates(): evaluates
  /// blocks [block_begin, block_end) of the packed batch into `slots`,
  /// writing per-word solved masks and (when projections are needed) the
  /// projection stash.  Writes are per-word disjoint, so collect() may run
  /// several ranges concurrently over distinct slot buffers.
  void eval_blocks(const std::vector<std::uint64_t>& packed,
                   std::size_t n_words, std::size_t batch,
                   std::size_t block_begin, std::size_t block_end,
                   std::uint64_t* slots, std::uint64_t* solved_mask,
                   std::uint64_t* proj, bool probe) const {
    constexpr std::size_t kB = circuit::EvalPlan::kBlockWords;
    const circuit::EvalPlan& plan = *plan_;
    const std::vector<circuit::SignalId>& var_signal = *problem_.var_signal;
    const std::size_t n_proj = var_signal.size();
    for (std::size_t block = block_begin; block < block_end; ++block) {
      if (options_.stop.stop_requested()) return;
      const std::size_t w0 = block * kB;
      const std::size_t count = std::min(kB, n_words - w0);
      plan.eval_block(packed.data(), n_words, w0, count, slots);
      for (std::size_t lane = 0; lane < count; ++lane) {
        const std::size_t w = w0 + lane;
        std::uint64_t ok = plan.satisfied(slots, lane);
        // Mask off lanes past the batch in the final partial word.
        const std::size_t rows_here = std::min<std::size_t>(64, batch - w * 64);
        if (rows_here < 64) ok &= (1ULL << rows_here) - 1;
        solved_mask[w] = ok;
        std::uint64_t* stash = proj + w * n_proj;
        if (ok != 0 && stash_all_) {
          // Store/verify wants the whole projected assignment; the sampling
          // set is a subset, so this also covers projected keys and probes.
          for (std::size_t v = 0; v < n_proj; ++v) {
            stash[v] =
                circuit::EvalPlan::signal_word(slots, var_signal[v], lane);
          }
        } else if ((ok != 0 && mode_.projected) || probe) {
          // Keys-only projected accept needs set bits of solved rows; the
          // diversity probe needs them for every row (unsolved included).
          for (const cnf::Var v : problem_.sampling_set) {
            stash[v] =
                circuit::EvalPlan::signal_word(slots, var_signal[v], lane);
          }
        }
      }
    }
  }

  /// Phase-2 core: accepts the solved rows serially in word order; returns
  /// how many were new to the bank.
  std::size_t accept_words(const std::vector<std::uint64_t>& packed,
                           std::size_t n_words, std::size_t n_proj,
                           const std::uint64_t* solved_mask,
                           const std::uint64_t* proj, bool record_fresh) {
    std::size_t fresh = 0;
    for (std::size_t w = 0; w < n_words; ++w) {
      std::uint64_t ok = solved_mask[w];
      while (ok != 0) {
        const int r = std::countr_zero(ok);
        ok &= ok - 1;
        fresh += accept_row(packed, n_words, n_proj, w,
                            static_cast<std::size_t>(r), proj, record_fresh)
                     ? 1
                     : 0;
      }
    }
    return fresh;
  }

  bool accept_row(const std::vector<std::uint64_t>& packed, std::size_t n_words,
                  std::size_t n_proj, std::size_t w, std::size_t r,
                  const std::uint64_t* proj, bool record_fresh) {
    ++result_.n_valid;
    const std::uint64_t* stash = proj + w * n_proj;
    bool is_new = false;
    if (mode_.projected) {
      build_proj_key(stash, r, problem_.sampling_set);
      is_new = bank_.insert(proj_key_);
    } else {
      build_full_key(packed, n_words, w, r);
      is_new = bank_.insert(key_);
    }
    if (is_new && record_fresh && fresh_sink_ != nullptr) {
      // Amplification bases are always FULL input keys (the amplifier
      // broadcasts them row-wise and flips input bits), independent of what
      // the bank keys on.
      if (mode_.projected) build_full_key(packed, n_words, w, r);
      fresh_sink_->insert(fresh_sink_->end(), key_.begin(), key_.end());
    }
    if (!is_new && !options_.store_all_draws) return is_new;

    const bool want_assignment = result_.solutions.size() < options_.store_limit ||
                                 (is_new && options_.verify_against_cnf);
    if (!want_assignment) return is_new;
    cnf::Assignment assignment(n_proj, 0);
    for (cnf::Var v = 0; v < n_proj; ++v) {
      assignment[v] = static_cast<std::uint8_t>((stash[v] >> r) & 1ULL);
    }
    if (options_.verify_against_cnf && !formula_.satisfied_by(assignment)) {
      ++result_.n_invalid;
    }
    if (result_.solutions.size() < options_.store_limit) {
      result_.solutions.push_back(std::move(assignment));
    }
    return is_new;
  }

  /// Packs the full hardened input row (w, r) into key_ — the bank key in
  /// full-assignment mode, and always the amplifier's base layout.
  void build_full_key(const std::vector<std::uint64_t>& packed,
                      std::size_t n_words, std::size_t w, std::size_t r) {
    const std::size_t n_inputs = problem_.circuit->n_inputs();
    std::fill(key_.begin(), key_.end(), 0);
    for (std::size_t i = 0; i < n_inputs; ++i) {
      if (((packed[i * n_words + w] >> r) & 1ULL) != 0) {
        key_[i >> 6] |= (1ULL << (i & 63));
      }
    }
  }

  /// Packs row r's sampling-set bits out of a word stash into proj_key_:
  /// bit k of the key is set variable set[k], so the key layout is a pure
  /// function of the (sorted, deduplicated) set.
  void build_proj_key(const std::uint64_t* stash, std::size_t r,
                      const std::vector<cnf::Var>& set) {
    std::fill(proj_key_.begin(), proj_key_.end(), 0);
    for (std::size_t k = 0; k < set.size(); ++k) {
      if (((stash[set[k]] >> r) & 1ULL) != 0) {
        proj_key_[k >> 6] |= (1ULL << (k & 63));
      }
    }
  }

  /// Whether phase 1 must write the projection stash at all.
  [[nodiscard]] bool need_stash() const { return stash_all_ || mode_.projected; }

  const GdProblem& problem_;
  const cnf::Formula& formula_;
  const RunOptions& options_;
  RunResult& result_;
  Bank& bank_;
  const circuit::EvalPlan* plan_;
  std::unique_ptr<circuit::EvalPlan> owned_plan_;
  bool inline_eval_;
  HarvestMode mode_;
  bool stash_all_;
  /// Amplifier base buffer (see set_fresh_sink); null when amplification is
  /// off, and then never touched on the accept path.
  std::vector<std::uint64_t>* fresh_sink_ = nullptr;
  /// Full-input key scratch, (n_inputs + 63) / 64 words.
  std::vector<std::uint64_t> key_;
  /// Projected key scratch, bank n_words() words; empty unless projected.
  std::vector<std::uint64_t> proj_key_;
  std::vector<std::uint64_t> solved_mask_;
  /// Shape of the most recent collect(), for banked_projection_mask().
  std::size_t last_n_words_ = 0;
  std::size_t last_batch_ = 0;
  /// Already-banked-projection row mask scratch (see
  /// banked_projection_mask).
  std::vector<std::uint64_t> dup_mask_;
  /// Sampling-set position -> engine input slot (see projection_slots).
  std::vector<std::uint32_t> proj_slots_;
  bool proj_slots_built_ = false;
  /// Candidate-pattern scratch for propose_fresh_neighbor.
  std::vector<std::uint64_t> fresh_key_;
  /// Projection stash: var_signal words of every solved word of the current
  /// batch (proj_[w * n_proj + v]); phase 2 reads bits out of it instead of
  /// re-evaluating the circuit.
  std::vector<std::uint64_t> proj_;
  /// One evaluation scratch per parallel part, reused across collects.
  std::vector<std::vector<std::uint64_t>> scratch_;
  std::uint64_t rows_validated_ = 0;
  double harvest_ms_ = 0.0;
};

}  // namespace hts::sampler
