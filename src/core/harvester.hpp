#pragma once

// Harvests valid, new solutions out of a hardened batch.
//
// Extracted from the GD loop so the serial path (one Harvester over a plain
// UniqueBank) and the round-parallel path (one Harvester per worker, all
// merging into a shared ShardedUniqueBank) run the identical
// unpack -> evaluate -> mask -> project pipeline.  `Bank` only needs
// insert(key), size() and n_words(); uniqueness is decided wherever the bank
// lives, so a worker's duplicate of another worker's solution is rejected at
// the merge point, not after.
//
// Validation runs on the circuit's compiled word-parallel plan
// (circuit::EvalPlan): blocks of EvalPlan::kBlockWords words (4 x 64 = 256
// rows) are evaluated through opcode-batched u64x4 kernels, and large
// batches split their blocks across the global ThreadPool.  collect() is
// two-phase — a (possibly parallel) evaluation phase writes only
// per-word solved masks and projection words, then a serial accept phase
// walks words in order — so counts, bank insertion order, and stored
// solutions are bit-identical to the historical scalar eval64 walk under
// every thread count (tests/harvest_diff_test.cpp pins this down).
//
// All scratch (evaluation slots, solved masks, projection words, the key
// buffer) is per-instance and reused: after the first collect() of a given
// batch shape, repeated harvests perform no heap allocation beyond what the
// bank needs for genuinely new solutions.

#include <algorithm>
#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "circuit/eval_plan.hpp"
#include "core/gd_loop.hpp"
#include "core/unique_bank.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace hts::sampler {

/// Caller-owned scratch for Harvester::collect_candidates.  The amplifier
/// keeps one per instance so repeated amplified collects perform no heap
/// allocation once the buffers are warm — the same bar collect() meets with
/// its member scratch.
struct CollectScratch {
  std::vector<std::uint64_t> solved_mask;
  std::vector<std::uint64_t> proj;
  std::vector<std::uint64_t> slots;
};

template <typename Bank>
class Harvester {
 public:
  /// `result` receives per-harvester accounting (n_valid, n_invalid, stored
  /// solutions); in the round-parallel path it is a worker-local RunResult
  /// merged after the join.  `bank` decides uniqueness and may be shared.
  /// `plan` is the circuit's compiled evaluator; pass one to share it across
  /// workers (it is immutable after construction), or leave it null and the
  /// harvester compiles its own.
  /// `inline_eval` keeps the evaluation phase on the calling thread even
  /// when the global pool is real: the sampling service sets it for the
  /// same reason its engines default to kSerial — concurrent jobs are the
  /// parallelism axis, and a loaded fleet fanning every harvest out to one
  /// shared pool only adds queue contention and oversubscription.
  Harvester(const GdProblem& problem, const cnf::Formula& formula,
            const RunOptions& options, Bank& bank, RunResult& result,
            const circuit::EvalPlan* plan = nullptr, bool inline_eval = false)
      : problem_(problem),
        formula_(formula),
        options_(options),
        result_(result),
        bank_(bank),
        plan_(plan),
        inline_eval_(inline_eval),
        // accept_row wants a projected assignment only to store or verify
        // it; a keys-only configuration never reads the stash, so phase 1
        // can skip writing (and allocating) it entirely.
        need_proj_(options.store_limit > 0 || options.verify_against_cnf),
        key_(bank.n_words(), 0) {
    if (plan_ == nullptr) {
      owned_plan_ = std::make_unique<circuit::EvalPlan>(*problem.circuit);
      plan_ = owned_plan_.get();
    }
  }

  [[nodiscard]] std::size_t n_unique() const { return bank_.size(); }

  /// packed: n_inputs x n_words hardened input bits covering `batch` rows.
  ///
  /// Honours RunOptions::stop at block boundaries: a cancelled collect stops
  /// evaluating further blocks and accepts only the rows already validated
  /// (unevaluated words read as unsolved), so a request abort never waits
  /// for a full batch validation.  rows_validated() is not advanced by a
  /// cancelled collect.
  void collect(const std::vector<std::uint64_t>& packed, std::size_t n_words,
               std::size_t batch) {
    if (options_.stop.stop_requested()) return;
    const util::Timer harvest_timer;
    constexpr std::size_t kB = circuit::EvalPlan::kBlockWords;
    const circuit::EvalPlan& plan = *plan_;
    const std::vector<circuit::SignalId>& var_signal = *problem_.var_signal;
    const std::size_t n_proj = var_signal.size();
    const std::size_t n_blocks = (n_words + kB - 1) / kB;

    solved_mask_.assign(n_words, 0);
    if (need_proj_ && proj_.size() < n_words * n_proj) {
      proj_.resize(n_words * n_proj);
    }

    // Phase 1 — evaluate.  Writes are per-word disjoint (solved mask +
    // projection stash), so the block partition never affects results; it
    // only decides how many scratch buffers work in parallel.
    util::ThreadPool& pool = util::ThreadPool::global();
    std::size_t n_parts = std::min(n_blocks, pool.size());
    if (pool.size() <= 1 || inline_eval_) n_parts = 1;
    if (scratch_.size() < n_parts) scratch_.resize(n_parts);
    auto eval_part = [&](std::size_t part) {
      std::vector<std::uint64_t>& slots = scratch_[part];
      if (slots.size() < plan.scratch_words()) {
        slots.resize(plan.scratch_words());
      }
      const std::size_t block_begin = n_blocks * part / n_parts;
      const std::size_t block_end = n_blocks * (part + 1) / n_parts;
      eval_blocks(packed, n_words, batch, block_begin, block_end, slots.data(),
                  solved_mask_.data(), proj_.data());
    };
    if (n_parts <= 1) {
      // Inline: one scratch, no dispatch (also the no-allocation fast path
      // the repeated-harvest test asserts).
      eval_part(0);
    } else {
      pool.parallel_for(n_parts, [&](std::size_t begin, std::size_t end) {
        for (std::size_t part = begin; part < end; ++part) eval_part(part);
      });
    }

    // Phase 2 — accept, serially and in word order: bank insertion order and
    // stored-solution order match the historical single-thread walk exactly.
    accept_words(packed, n_words, n_proj, solved_mask_.data(), proj_.data(),
                 /*record_fresh=*/true);
    if (!options_.stop.stop_requested()) rows_validated_ += batch;
    harvest_ms_ += harvest_timer.milliseconds();
  }

  /// Validates an externally packed candidate batch (the amplifier's flip
  /// mutants) through the identical evaluate -> mask -> accept pipeline and
  /// banks the survivors; returns how many were genuinely new to the bank.
  /// Differences from collect(): evaluation always runs inline on the
  /// calling thread with the caller's scratch (deterministic and
  /// allocation-free under any pool size), last_solved() / rows_validated()
  /// / harvest_ms() are untouched (they describe GD batches — solved-row
  /// restarts and the rows/sec metric must not see mutants), and newly
  /// banked keys are not reported to the fresh sink (mutants never
  /// recursively become amplification bases).  scratch.solved_mask holds
  /// the per-row satisfied mask afterwards, so the caller can read which
  /// candidates survived.
  std::size_t collect_candidates(const std::vector<std::uint64_t>& packed,
                                 std::size_t n_words, std::size_t batch,
                                 CollectScratch& scratch) {
    if (options_.stop.stop_requested()) return 0;
    const circuit::EvalPlan& plan = *plan_;
    const std::size_t n_proj = problem_.var_signal->size();
    const std::size_t n_blocks =
        (n_words + circuit::EvalPlan::kBlockWords - 1) /
        circuit::EvalPlan::kBlockWords;
    scratch.solved_mask.assign(n_words, 0);
    if (need_proj_ && scratch.proj.size() < n_words * n_proj) {
      scratch.proj.resize(n_words * n_proj);
    }
    if (scratch.slots.size() < plan.scratch_words()) {
      scratch.slots.resize(plan.scratch_words());
    }
    eval_blocks(packed, n_words, batch, 0, n_blocks, scratch.slots.data(),
                scratch.solved_mask.data(), scratch.proj.data());
    return accept_words(packed, n_words, n_proj, scratch.solved_mask.data(),
                        scratch.proj.data(), /*record_fresh=*/false);
  }

  /// Registers a buffer that receives a copy of every newly banked key
  /// (bank n_words() words per solution, appended in insertion order)
  /// during collect().  The amplifier points this at its base buffer; null
  /// (the default) disables the copy entirely, so the legacy accept path is
  /// untouched when amplification is off.
  void set_fresh_sink(std::vector<std::uint64_t>* sink) { fresh_sink_ = sink; }

  /// The projection mapping (original variable -> circuit signal) the
  /// accept phase projects solutions through.  The amplifier reads this —
  /// and problem() below — instead of duplicating the projection wiring.
  [[nodiscard]] const std::vector<circuit::SignalId>& var_signal() const {
    return *problem_.var_signal;
  }

  [[nodiscard]] const GdProblem& problem() const { return problem_; }

  [[nodiscard]] const RunOptions& options() const { return options_; }

  /// Per-row satisfied mask of the most recent collect() (same word layout
  /// as the packed input; padding rows are always clear).  The GD loop feeds
  /// this to Engine::rerandomize_rows for solved-row restarts.
  [[nodiscard]] const std::vector<std::uint64_t>& last_solved() const {
    return solved_mask_;
  }

  /// Total batch rows validated over the harvester's lifetime (every row of
  /// every collect() is checked against all output constraints).
  [[nodiscard]] std::uint64_t rows_validated() const { return rows_validated_; }

  /// Wall-clock milliseconds spent inside collect() over the lifetime.
  [[nodiscard]] double harvest_ms() const { return harvest_ms_; }

 private:
  /// Phase-1 core shared by collect() and collect_candidates(): evaluates
  /// blocks [block_begin, block_end) of the packed batch into `slots`,
  /// writing per-word solved masks and (when projections are needed) the
  /// projection stash.  Writes are per-word disjoint, so collect() may run
  /// several ranges concurrently over distinct slot buffers.
  void eval_blocks(const std::vector<std::uint64_t>& packed,
                   std::size_t n_words, std::size_t batch,
                   std::size_t block_begin, std::size_t block_end,
                   std::uint64_t* slots, std::uint64_t* solved_mask,
                   std::uint64_t* proj) const {
    constexpr std::size_t kB = circuit::EvalPlan::kBlockWords;
    const circuit::EvalPlan& plan = *plan_;
    const std::vector<circuit::SignalId>& var_signal = *problem_.var_signal;
    const std::size_t n_proj = var_signal.size();
    for (std::size_t block = block_begin; block < block_end; ++block) {
      if (options_.stop.stop_requested()) return;
      const std::size_t w0 = block * kB;
      const std::size_t count = std::min(kB, n_words - w0);
      plan.eval_block(packed.data(), n_words, w0, count, slots);
      for (std::size_t lane = 0; lane < count; ++lane) {
        const std::size_t w = w0 + lane;
        std::uint64_t ok = plan.satisfied(slots, lane);
        // Mask off lanes past the batch in the final partial word.
        const std::size_t rows_here = std::min<std::size_t>(64, batch - w * 64);
        if (rows_here < 64) ok &= (1ULL << rows_here) - 1;
        solved_mask[w] = ok;
        if (ok == 0 || !need_proj_) continue;
        std::uint64_t* stash = proj + w * n_proj;
        for (std::size_t v = 0; v < n_proj; ++v) {
          stash[v] = circuit::EvalPlan::signal_word(slots, var_signal[v], lane);
        }
      }
    }
  }

  /// Phase-2 core: accepts the solved rows serially in word order; returns
  /// how many were new to the bank.
  std::size_t accept_words(const std::vector<std::uint64_t>& packed,
                           std::size_t n_words, std::size_t n_proj,
                           const std::uint64_t* solved_mask,
                           const std::uint64_t* proj, bool record_fresh) {
    std::size_t fresh = 0;
    for (std::size_t w = 0; w < n_words; ++w) {
      std::uint64_t ok = solved_mask[w];
      while (ok != 0) {
        const int r = std::countr_zero(ok);
        ok &= ok - 1;
        fresh += accept_row(packed, n_words, n_proj, w,
                            static_cast<std::size_t>(r), proj, record_fresh)
                     ? 1
                     : 0;
      }
    }
    return fresh;
  }

  bool accept_row(const std::vector<std::uint64_t>& packed, std::size_t n_words,
                  std::size_t n_proj, std::size_t w, std::size_t r,
                  const std::uint64_t* proj, bool record_fresh) {
    const circuit::Circuit& circuit = *problem_.circuit;
    const std::size_t n_inputs = circuit.n_inputs();
    std::fill(key_.begin(), key_.end(), 0);
    for (std::size_t i = 0; i < n_inputs; ++i) {
      if (((packed[i * n_words + w] >> r) & 1ULL) != 0) {
        key_[i >> 6] |= (1ULL << (i & 63));
      }
    }
    ++result_.n_valid;
    const bool is_new = bank_.insert(key_);
    if (is_new && record_fresh && fresh_sink_ != nullptr) {
      fresh_sink_->insert(fresh_sink_->end(), key_.begin(), key_.end());
    }
    if (!is_new && !options_.store_all_draws) return is_new;

    const bool want_assignment = result_.solutions.size() < options_.store_limit ||
                                 (is_new && options_.verify_against_cnf);
    if (!want_assignment) return is_new;
    const std::uint64_t* stash = proj + w * n_proj;
    cnf::Assignment assignment(n_proj, 0);
    for (cnf::Var v = 0; v < n_proj; ++v) {
      assignment[v] = static_cast<std::uint8_t>((stash[v] >> r) & 1ULL);
    }
    if (options_.verify_against_cnf && !formula_.satisfied_by(assignment)) {
      ++result_.n_invalid;
    }
    if (result_.solutions.size() < options_.store_limit) {
      result_.solutions.push_back(std::move(assignment));
    }
    return is_new;
  }

  const GdProblem& problem_;
  const cnf::Formula& formula_;
  const RunOptions& options_;
  RunResult& result_;
  Bank& bank_;
  const circuit::EvalPlan* plan_;
  std::unique_ptr<circuit::EvalPlan> owned_plan_;
  bool inline_eval_;
  bool need_proj_;
  /// Amplifier base buffer (see set_fresh_sink); null when amplification is
  /// off, and then never touched on the accept path.
  std::vector<std::uint64_t>* fresh_sink_ = nullptr;
  std::vector<std::uint64_t> key_;
  std::vector<std::uint64_t> solved_mask_;
  /// Projection stash: var_signal words of every solved word of the current
  /// batch (proj_[w * n_proj + v]); phase 2 reads bits out of it instead of
  /// re-evaluating the circuit.
  std::vector<std::uint64_t> proj_;
  /// One evaluation scratch per parallel part, reused across collects.
  std::vector<std::vector<std::uint64_t>> scratch_;
  std::uint64_t rows_validated_ = 0;
  double harvest_ms_ = 0.0;
};

}  // namespace hts::sampler
