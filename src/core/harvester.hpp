#pragma once

// Harvests valid, new solutions out of a hardened batch.
//
// Extracted from the GD loop so the serial path (one Harvester over a plain
// UniqueBank) and the round-parallel path (one Harvester per worker, all
// merging into a shared ShardedUniqueBank) run the identical
// unpack -> eval64 -> mask -> project pipeline.  `Bank` only needs
// insert(key), size() and n_words(); uniqueness is decided wherever the bank
// lives, so a worker's duplicate of another worker's solution is rejected at
// the merge point, not after.

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "core/gd_loop.hpp"
#include "core/unique_bank.hpp"

namespace hts::sampler {

template <typename Bank>
class Harvester {
 public:
  /// `result` receives per-harvester accounting (n_valid, n_invalid, stored
  /// solutions); in the round-parallel path it is a worker-local RunResult
  /// merged after the join.  `bank` decides uniqueness and may be shared.
  Harvester(const GdProblem& problem, const cnf::Formula& formula,
            const RunOptions& options, Bank& bank, RunResult& result)
      : problem_(problem),
        formula_(formula),
        options_(options),
        result_(result),
        bank_(bank) {}

  [[nodiscard]] std::size_t n_unique() const { return bank_.size(); }

  /// packed: n_inputs x n_words hardened input bits covering `batch` rows.
  void collect(const std::vector<std::uint64_t>& packed, std::size_t n_words,
               std::size_t batch) {
    const circuit::Circuit& circuit = *problem_.circuit;
    const std::size_t n_inputs = circuit.n_inputs();
    std::vector<std::uint64_t> input_words(n_inputs);
    solved_mask_.assign(n_words, 0);
    for (std::size_t w = 0; w < n_words; ++w) {
      for (std::size_t i = 0; i < n_inputs; ++i) {
        input_words[i] = packed[i * n_words + w];
      }
      const std::vector<std::uint64_t> values = circuit.eval64(input_words);
      std::uint64_t ok = circuit.outputs_satisfied64(values);
      // Mask off lanes past the batch in the final partial word.
      const std::size_t rows_here = std::min<std::size_t>(64, batch - w * 64);
      if (rows_here < 64) ok &= (1ULL << rows_here) - 1;
      solved_mask_[w] = ok;
      while (ok != 0) {
        const int r = std::countr_zero(ok);
        ok &= ok - 1;
        accept_row(input_words, values, static_cast<std::size_t>(r));
      }
    }
  }

  /// Per-row satisfied mask of the most recent collect() (same word layout
  /// as the packed input; padding rows are always clear).  The GD loop feeds
  /// this to Engine::rerandomize_rows for solved-row restarts.
  [[nodiscard]] const std::vector<std::uint64_t>& last_solved() const {
    return solved_mask_;
  }

 private:
  void accept_row(const std::vector<std::uint64_t>& input_words,
                  const std::vector<std::uint64_t>& values, std::size_t r) {
    std::vector<std::uint64_t> key(bank_.n_words(), 0);
    for (std::size_t i = 0; i < input_words.size(); ++i) {
      if (((input_words[i] >> r) & 1ULL) != 0) key[i >> 6] |= (1ULL << (i & 63));
    }
    ++result_.n_valid;
    const bool is_new = bank_.insert(key);
    if (!is_new && !options_.store_all_draws) return;

    const bool want_assignment = result_.solutions.size() < options_.store_limit ||
                                 (is_new && options_.verify_against_cnf);
    if (!want_assignment) return;
    const auto& var_signal = *problem_.var_signal;
    cnf::Assignment assignment(var_signal.size(), 0);
    for (cnf::Var v = 0; v < var_signal.size(); ++v) {
      assignment[v] = static_cast<std::uint8_t>((values[var_signal[v]] >> r) & 1ULL);
    }
    if (options_.verify_against_cnf && !formula_.satisfied_by(assignment)) {
      ++result_.n_invalid;
    }
    if (result_.solutions.size() < options_.store_limit) {
      result_.solutions.push_back(std::move(assignment));
    }
  }

  const GdProblem& problem_;
  const cnf::Formula& formula_;
  const RunOptions& options_;
  RunResult& result_;
  Bank& bank_;
  std::vector<std::uint64_t> solved_mask_;
};

}  // namespace hts::sampler
