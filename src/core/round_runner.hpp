#pragma once

// One GD round (randomize -> iterate -> harden -> harvest, with restarts),
// extracted from the run-to-completion loops of gd_loop.cpp so a third
// caller — the sampling service, which time-slices jobs at round
// granularity — executes the *identical* round body instead of a paraphrase
// of it.  The serial loop, the round-parallel workers, and a service job
// all construct a RoundRunner over their own engine/harvester pair and
// drive it one round at a time; what differs between them (where the
// unique count lives, what a checkpoint records, when to bail out) enters
// through the two callbacks.
//
// Determinism contract: for a fixed RNG state the runner consumes random
// draws in exactly the historical order (randomize, then restart draws per
// harvest window), calls collect() at exactly the historical points, and
// never draws on behalf of bookkeeping — so run_serial stays bit-identical
// to the pre-extraction loop, and a service job whose rounds are seeded
// per-round (util::Rng::stream(seed, round)) produces one well-defined
// solution stream no matter which worker runs which slice.

#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "core/amplifier.hpp"
#include "core/gd_loop.hpp"
#include "core/harvester.hpp"
#include "prob/engine.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace hts::sampler {

/// Engine configuration implied by a loop configuration; shared by every
/// call site that builds an Engine for the GD loop (serial, round-parallel
/// workers, service jobs), so a config knob can never reach one path but
/// not another.
[[nodiscard]] inline prob::Engine::Config engine_config_for(
    const GdLoopConfig& config) {
  prob::Engine::Config engine_config;
  engine_config.batch = config.batch;
  engine_config.learning_rate = config.learning_rate;
  engine_config.init_std = config.init_std;
  engine_config.policy = config.policy;
  engine_config.fast_sigmoid = config.fast_sigmoid;
  return engine_config;
}

/// Problem-aware overload: additionally resolves GdLoopConfig::lit_weights
/// through the problem's input -> variable mapping into engine bias terms.
/// Variables that never became circuit inputs are dropped (there is nothing
/// to steer); several weights on one variable simply stack.
[[nodiscard]] inline prob::Engine::Config engine_config_for(
    const GdLoopConfig& config, const GdProblem& problem) {
  prob::Engine::Config engine_config = engine_config_for(config);
  if (config.lit_weights.empty()) return engine_config;
  const std::size_t n_inputs = problem.circuit->n_inputs();
  for (std::size_t i = 0; i < n_inputs; ++i) {
    const cnf::Var var = problem.input_vars != nullptr
                             ? (*problem.input_vars)[i]
                             : static_cast<cnf::Var>(i);
    if (var == cnf::kInvalidVar) continue;
    for (const LitWeight& lw : config.lit_weights) {
      if (lw.var != var || lw.weight == 0.0f) continue;
      engine_config.input_biases.push_back(
          {static_cast<std::uint32_t>(i), lw.negated ? 0.0f : 1.0f,
           lw.weight});
    }
  }
  return engine_config;
}

namespace detail {

/// Tracks per-row loss progress between harvest windows for plateau
/// restarts (GdLoopConfig::restart_plateau).  A row "improves" when its
/// loss drops below its best-so-far by more than a small epsilon; after k
/// consecutive windows without improvement the row is flagged for
/// re-seeding.  Solved rows are restart_solved's business: they reset their
/// tracker and are never flagged here.  Trackers reset every round — a
/// fresh random V owes no progress to the previous basin.
class PlateauTracker {
 public:
  PlateauTracker(std::size_t batch, std::size_t n_words, std::size_t k)
      : k_(k), batch_(batch), best_(batch), age_(batch), mask_(n_words) {}

  void begin_round() {
    std::fill(best_.begin(), best_.end(),
              std::numeric_limits<float>::infinity());
    std::fill(age_.begin(), age_.end(), 0u);
  }

  /// Observes the engine's current per-row losses; returns the mask (same
  /// word layout as harden()) of rows stuck for >= k windows.
  const std::vector<std::uint64_t>& observe(
      const prob::Engine& engine, const std::vector<std::uint64_t>& solved) {
    // Loss improvements below this are float jitter, not progress.
    constexpr float kEps = 1e-6f;
    engine.row_losses(losses_);
    std::fill(mask_.begin(), mask_.end(), 0);
    for (std::size_t r = 0; r < batch_; ++r) {
      const std::size_t word = r / 64;
      const std::uint64_t bit = 1ULL << (r % 64);
      if (word < solved.size() && (solved[word] & bit) != 0) {
        best_[r] = std::numeric_limits<float>::infinity();
        age_[r] = 0;
        continue;
      }
      if (losses_[r] < best_[r] - kEps) {
        best_[r] = losses_[r];
        age_[r] = 0;
        continue;
      }
      if (++age_[r] >= k_) {
        mask_[word] |= bit;
        best_[r] = std::numeric_limits<float>::infinity();
        age_[r] = 0;
      }
    }
    return mask_;
  }

 private:
  std::size_t k_;
  std::size_t batch_;
  std::vector<float> best_;
  std::vector<std::uint32_t> age_;
  std::vector<std::uint64_t> mask_;
  std::vector<float> losses_;
};

}  // namespace detail

template <typename Bank>
class RoundRunner {
 public:
  /// The engine and harvester are borrowed for the runner's lifetime; the
  /// packed-bits buffer and plateau tracker are owned here and reused
  /// across rounds (no per-round allocation after the first).
  RoundRunner(const GdLoopConfig& config, prob::Engine& engine,
              Harvester<Bank>& harvester)
      : config_(config), engine_(engine), harvester_(harvester) {
    if (config.restart_plateau > 0) {
      plateau_.emplace(config.batch, engine.n_words(), config.restart_plateau);
    }
    if (config.amplify.enabled) amplifier_.emplace(config, harvester);
  }

  /// Runs one randomize -> iterate -> harden -> harvest round.
  ///
  /// `checkpoint(iter)` fires after the harvest of iteration `iter` (0 is
  /// the pre-descent collect of the fresh randomization) and is where the
  /// caller records unique counts / progress / streams solutions out; it
  /// must not consume `rng`.  `stop_now()` is polled once per iteration
  /// *after* its checkpoint — returning true ends the round early (target
  /// reached, deadline, cooperative cancel).  The historical loop shape is
  /// preserved exactly: the iteration-0 collect has no stop poll (descent
  /// always gets its first iteration), and the round's final harvest skips
  /// the restart draws because a fresh randomize() follows anyway.
  template <typename Checkpoint, typename Stop>
  void run_round(util::Rng& rng, Checkpoint&& checkpoint, Stop&& stop_now) {
    // Telemetry reads the clock and counters only — never the RNG, never
    // the harvest order — so instrumented and plain rounds are bit-identical.
    const bool traced = telemetry::trace_enabled();
    const std::uint64_t round_begin_ns = traced ? util::monotonic_ns() : 0;
    const std::uint64_t iters_before = gd_iterations_;
    const std::uint64_t solved_before = restarted_rows_;
    const std::uint64_t plateau_before = plateau_restarted_rows_;
    const std::uint64_t diversity_before = diversity_restarted_rows_;
    engine_.randomize(rng);
    if (plateau_) plateau_->begin_round();
    // Whether the diversity objective can steer projections at all: it
    // needs the probe (sampling set + diversity_restart) and at least one
    // set variable that is a live engine input to pin.
    const bool diversity_steers = harvester_.mode().probe_projections &&
                                  !harvester_.projection_slots().empty();
    // Solved rows have been banked; re-seeding them starts fresh descents in
    // the remaining iterations instead of re-converging to the same basin.
    // When the diversity objective steers, it takes over solved rows
    // entirely (mutating them in place instead of redrawing them), so the
    // plain restart is skipped and restarted_rows() reads ~0 for such runs —
    // the recycling shows up in diversity_restarted_rows() instead.
    auto restart_solved_rows = [&] {
      if (config_.restart_solved && !diversity_steers) {
        restarted_rows_ +=
            engine_.rerandomize_rows(harvester_.last_solved(), rng);
      }
    };
    // Plateaued rows follow; only meaningful at mid-round harvests, where
    // the engine's activations come from this round's own forward pass.
    auto restart_plateau_rows = [&] {
      if (plateau_) {
        plateau_restarted_rows_ += engine_.rerandomize_rows(
            plateau_->observe(engine_, harvester_.last_solved()), rng);
      }
    };
    // Diversity objective: unsolved rows whose hardened projection is
    // already banked are descending into an already-collected projected
    // class — any solution they reach is a duplicate projection.  Instead
    // of redrawing such rows (a plain restart is just another coupon-
    // collector draw and re-pays full convergence), mutate them in place:
    // keep the row's converged V and pin only its projection inputs toward
    // a bank-checked flip-neighbor of the row's own projection
    // (Harvester::propose_fresh_neighbor).  A one- or two-bit neighbor of
    // a reachable pattern is almost always reachable too, and the rest of
    // the row's V is already deep in a satisfying basin, so the next
    // descent completes in a handful of iterations — the batch walks the
    // projected space word-parallel instead of re-collecting coupons.
    // Solved rows get the same treatment (their V is *exactly* a solution,
    // so a neighbor pin converges fastest of all); restart_solved_rows
    // above cedes them to this pass.  Rows whose whole neighborhood is
    // already banked fall back to a plain re-seed, which keeps the walk
    // ergodic near saturation.  The pass walks rows in word/bit order and
    // draws from the round RNG only, so the stream stays deterministic.
    auto count_rows = [](const std::vector<std::uint64_t>& mask) {
      std::uint64_t n = 0;
      for (const std::uint64_t w : mask) n += std::popcount(w);
      return n;
    };
    auto restart_diversity_rows = [&] {
      if (!harvester_.mode().probe_projections) return;
      const std::vector<std::uint64_t>& flagged =
          harvester_.banked_projection_mask();
      const std::vector<std::uint32_t>& slots = harvester_.projection_slots();
      if (slots.empty()) {
        // No set variable survives as an engine input: nothing to pin, so
        // re-seeding the flagged rows is all the steering available.
        diversity_restarted_rows_ += count_rows(flagged);
        engine_.rerandomize_rows(flagged, rng);
        return;
      }
      const std::vector<std::uint64_t>& solved = harvester_.last_solved();
      fallback_mask_.assign(flagged.size(), 0);
      for (std::size_t w = 0; w < flagged.size(); ++w) {
        std::uint64_t mutate = flagged[w];
        if (config_.restart_solved && w < solved.size()) mutate |= solved[w];
        while (mutate != 0) {
          const auto r = static_cast<std::size_t>(std::countr_zero(mutate));
          mutate &= mutate - 1;
          const std::uint64_t* pattern =
              harvester_.propose_fresh_neighbor(w, r, rng, /*tries=*/6);
          if (pattern == nullptr) {
            fallback_mask_[w] |= 1ULL << r;
            continue;
          }
          engine_.pin_row_inputs(w * 64 + r, slots, pattern);
          ++diversity_restarted_rows_;
        }
      }
      diversity_restarted_rows_ += engine_.rerandomize_rows(fallback_mask_, rng);
    };
    // Iteration-0 checkpoint: random initialization already satisfies the
    // unconstrained paths (and occasionally everything).
    if (config_.collect_each_iteration) {
      engine_.harden(packed_);
      harvester_.collect(packed_, engine_.n_words(), config_.batch);
      // Amplify before the checkpoint so a service slice streams the
      // amplified uniques with the harvest that seeded them, and the
      // round's wall-clock (EDF slice accounting) includes the work.
      if (amplifier_) amplifier_->amplify();
      checkpoint(0);
      restart_solved_rows();
      restart_diversity_rows();
    }
    for (int iter = 1; iter <= config_.iterations; ++iter) {
      engine_.run_iteration();
      ++gd_iterations_;
      if (config_.collect_each_iteration || iter == config_.iterations) {
        engine_.harden(packed_);
        harvester_.collect(packed_, engine_.n_words(), config_.batch);
        if (amplifier_) amplifier_->amplify();
        checkpoint(iter);
        if (iter != config_.iterations) {
          restart_solved_rows();
          restart_plateau_rows();
          restart_diversity_rows();
        }
      }
      if (stop_now()) break;
    }
    if (telemetry::metrics_enabled()) record_round_metrics(
        gd_iterations_ - iters_before, restarted_rows_ - solved_before,
        plateau_restarted_rows_ - plateau_before,
        diversity_restarted_rows_ - diversity_before);
    if (traced) {
      telemetry::TraceSink::global().complete("gd_round", "gd", round_begin_ns,
                                              util::monotonic_ns());
    }
  }

  /// Rows re-seeded by solved-row restarts over the runner's lifetime.
  [[nodiscard]] std::uint64_t restarted_rows() const { return restarted_rows_; }
  /// Rows re-seeded by plateau restarts over the runner's lifetime.
  [[nodiscard]] std::uint64_t plateau_restarted_rows() const {
    return plateau_restarted_rows_;
  }
  /// Rows re-seeded by the diversity objective over the runner's lifetime.
  [[nodiscard]] std::uint64_t diversity_restarted_rows() const {
    return diversity_restarted_rows_;
  }
  /// Engine iterations executed over the runner's lifetime (JobStats fuel
  /// gauge for the service).
  [[nodiscard]] std::uint64_t gd_iterations() const { return gd_iterations_; }

  /// Amplifier billing over the runner's lifetime; all zero when
  /// GdLoopConfig::amplify is off.
  [[nodiscard]] std::uint64_t amplified_candidates() const {
    return amplifier_ ? amplifier_->amplified_candidates() : 0;
  }
  [[nodiscard]] std::uint64_t amplified_uniques() const {
    return amplifier_ ? amplifier_->amplified_uniques() : 0;
  }
  [[nodiscard]] double amplify_ms() const {
    return amplifier_ ? amplifier_->amplify_ms() : 0.0;
  }

 private:
  /// One registry lookup per process (function-local statics), then sharded
  /// relaxed adds; deltas are computed by run_round so a partially executed
  /// round still bills exactly what it did.
  static void record_round_metrics(std::uint64_t iterations,
                                   std::uint64_t solved, std::uint64_t plateau,
                                   std::uint64_t diversity) {
    telemetry::Registry& reg = telemetry::Registry::global();
    static telemetry::Counter& rounds = reg.counter("hts_gd_rounds_total");
    static telemetry::Counter& iters = reg.counter("hts_gd_iterations_total");
    static telemetry::Counter& restarts_solved =
        reg.counter("hts_gd_restarts_total", {{"kind", "solved"}});
    static telemetry::Counter& restarts_plateau =
        reg.counter("hts_gd_restarts_total", {{"kind", "plateau"}});
    static telemetry::Counter& restarts_diversity =
        reg.counter("hts_gd_restarts_total", {{"kind", "diversity"}});
    rounds.increment();
    iters.add(iterations);
    if (solved != 0) restarts_solved.add(solved);
    if (plateau != 0) restarts_plateau.add(plateau);
    if (diversity != 0) restarts_diversity.add(diversity);
  }

  const GdLoopConfig& config_;
  prob::Engine& engine_;
  Harvester<Bank>& harvester_;
  std::optional<Amplifier<Bank>> amplifier_;
  std::optional<detail::PlateauTracker> plateau_;
  std::vector<std::uint64_t> packed_;
  /// Diversity rows whose banked neighborhood exhausted the proposal tries;
  /// they take a plain re-seed instead (see restart_diversity_rows).
  std::vector<std::uint64_t> fallback_mask_;
  std::uint64_t restarted_rows_ = 0;
  std::uint64_t plateau_restarted_rows_ = 0;
  std::uint64_t diversity_restarted_rows_ = 0;
  std::uint64_t gd_iterations_ = 0;
};

}  // namespace hts::sampler
