#pragma once

// Common SAT-sampler interface and result accounting.
//
// Every sampler in the repo (the paper's gradient sampler and the three
// baselines) implements Sampler::run with the same contract as the paper's
// evaluation: generate satisfying assignments of the input CNF until at
// least min_solutions *unique* ones are found or the time budget expires,
// and report unique-solution throughput.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cnf/formula.hpp"
#include "util/stop_token.hpp"

namespace hts::sampler {

struct RunOptions {
  /// Stop once this many unique solutions are collected (the paper uses
  /// 1000).  0 means "run until the budget expires".
  std::size_t min_solutions = 1000;
  /// Wall-clock budget in milliseconds (the paper's timeout is 2 h; the
  /// bench harnesses scale this down).  <= 0 disables the deadline.
  double budget_ms = 2000.0;
  std::uint64_t seed = 0x5eed;
  /// Keep at most this many full assignments in RunResult::solutions
  /// (uniqueness is still tracked beyond it).
  std::size_t store_limit = 0;
  /// Store every valid draw (duplicates included) instead of only new unique
  /// solutions — the raw stream distribution-quality analysis needs
  /// (hts::analysis).  Still bounded by store_limit.
  bool store_all_draws = false;
  /// Re-check every emitted solution against the original CNF and count
  /// failures in n_invalid (all samplers must keep this at 0; enabled by
  /// tests, costs one formula evaluation per solution).
  bool verify_against_cnf = false;
  /// Cooperative cancellation: samplers poll this at their natural yield
  /// points (the GD loop checks it at round and iteration boundaries, the
  /// harvester between evaluation blocks) and return partial results when a
  /// stop is requested.  The default token never fires, so existing callers
  /// are unaffected; the service layer wires each request's abort source
  /// (client cancel or deadline reaper) in here.
  util::StopToken stop;
};

struct ProgressPoint {
  double elapsed_ms;
  std::size_t n_unique;
};

struct RunResult {
  std::string sampler_name;
  std::size_t n_unique = 0;
  std::size_t n_valid = 0;    // valid solutions incl. duplicates
  std::size_t n_invalid = 0;  // only populated under verify_against_cnf
  double elapsed_ms = 0.0;
  /// One-off preprocessing (e.g. the CNF->circuit transformation) excluded
  /// from elapsed_ms, reported separately like the paper's Fig. 4 (right).
  double setup_ms = 0.0;
  bool timed_out = false;
  bool proven_unsat = false;

  /// Unique solutions per second (the paper's Table II metric).
  [[nodiscard]] double throughput() const {
    return elapsed_ms <= 0.0 ? 0.0
                             : static_cast<double>(n_unique) / (elapsed_ms / 1e3);
  }

  /// (elapsed, uniques) checkpoints, for Fig. 2 / Fig. 3 style curves.
  std::vector<ProgressPoint> progress;

  /// Up to RunOptions::store_limit full assignments over original variables.
  std::vector<cnf::Assignment> solutions;
};

class Sampler {
 public:
  virtual ~Sampler() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual RunResult run(const cnf::Formula& formula,
                                      const RunOptions& options) = 0;
};

}  // namespace hts::sampler
