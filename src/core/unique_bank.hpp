#pragma once

// Deduplicating store for sampled solutions.
//
// Keys are packed bit vectors (one bit per tracked variable).  The paper
// reports *unique* solution throughput, so the bank is on the hot path of
// every sampler; it hashes whole keys (no lossy fingerprints — an
// overcounted unique would inflate throughput).

#include <cstdint>
#include <unordered_set>
#include <vector>

namespace hts::sampler {

class UniqueBank {
 public:
  explicit UniqueBank(std::size_t n_bits)
      : n_bits_(n_bits), n_words_((n_bits + 63) / 64) {}

  /// Inserts a packed key; returns true when it was new.
  bool insert(const std::vector<std::uint64_t>& key) {
    return set_.insert(key).second;
  }

  /// Packs a byte-per-bit assignment and inserts it.
  bool insert_bits(const std::vector<std::uint8_t>& bits) {
    std::vector<std::uint64_t> key(n_words_, 0);
    for (std::size_t i = 0; i < n_bits_; ++i) {
      if (bits[i] != 0) key[i >> 6] |= (1ULL << (i & 63));
    }
    return insert(key);
  }

  [[nodiscard]] std::size_t size() const { return set_.size(); }
  [[nodiscard]] std::size_t n_words() const { return n_words_; }

 private:
  struct KeyHash {
    std::size_t operator()(const std::vector<std::uint64_t>& key) const noexcept {
      std::uint64_t h = 0xcbf29ce484222325ULL;
      for (const std::uint64_t word : key) {
        h ^= word;
        h *= 0x100000001b3ULL;
        h ^= h >> 29;
      }
      return static_cast<std::size_t>(h);
    }
  };

  std::size_t n_bits_;
  std::size_t n_words_;
  std::unordered_set<std::vector<std::uint64_t>, KeyHash> set_;
};

}  // namespace hts::sampler
