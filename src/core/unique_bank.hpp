#pragma once

// Deduplicating store for sampled solutions.
//
// Keys are packed bit vectors (one bit per tracked variable).  The paper
// reports *unique* solution throughput, so the bank is on the hot path of
// every sampler; it hashes whole keys (no lossy fingerprints — an
// overcounted unique would inflate throughput).
//
// Two variants share the interface:
//   UniqueBank         single-thread, zero synchronization (the serial loop).
//   ShardedUniqueBank  mutex-per-shard, for round-parallel workers merging
//                      concurrently; shard selection reuses the key hash so
//                      uncorrelated solutions spread across shards and
//                      contention stays proportional to 1/n_shards.

#include <atomic>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace hts::sampler {

namespace detail {

/// FNV-1a over the packed words with an extra avalanche xor-shift; shared by
/// both bank variants so a key lands in the same shard its set hash implies.
struct PackedKeyHash {
  std::size_t operator()(const std::vector<std::uint64_t>& key) const noexcept {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const std::uint64_t word : key) {
      h ^= word;
      h *= 0x100000001b3ULL;
      h ^= h >> 29;
    }
    return static_cast<std::size_t>(h);
  }
};

/// Approximate heap bytes one banked key costs: the packed words, the
/// std::vector header, and the unordered_set node (stored hash + bucket
/// chain pointer + allocator rounding).  Shared by both bank variants so
/// size_bytes() means the same thing everywhere; it is an accounting
/// estimate for per-client memory caps, not an allocator audit.
[[nodiscard]] inline std::size_t key_footprint_bytes(std::size_t n_words) {
  constexpr std::size_t kNodeOverhead = 32;
  return n_words * sizeof(std::uint64_t) + sizeof(std::vector<std::uint64_t>) +
         kNodeOverhead;
}

/// Packs a byte-per-bit assignment into the canonical key layout.  Shared by
/// both bank variants so they can never disagree on key identity.
[[nodiscard]] inline std::vector<std::uint64_t> pack_bits(
    const std::vector<std::uint8_t>& bits, std::size_t n_bits,
    std::size_t n_words) {
  std::vector<std::uint64_t> key(n_words, 0);
  for (std::size_t i = 0; i < n_bits; ++i) {
    if (bits[i] != 0) key[i >> 6] |= (1ULL << (i & 63));
  }
  return key;
}

}  // namespace detail

class UniqueBank {
 public:
  explicit UniqueBank(std::size_t n_bits)
      : n_bits_(n_bits), n_words_((n_bits + 63) / 64) {}

  /// Inserts a packed key; returns true when it was new.
  bool insert(const std::vector<std::uint64_t>& key) {
    return set_.insert(key).second;
  }

  /// Packs a byte-per-bit assignment and inserts it.
  bool insert_bits(const std::vector<std::uint8_t>& bits) {
    return insert(detail::pack_bits(bits, n_bits_, n_words_));
  }

  /// True when the key is already banked.  Powers the diversity objective's
  /// restart probe (is this row's projection already collected?).
  [[nodiscard]] bool contains(const std::vector<std::uint64_t>& key) const {
    return set_.find(key) != set_.end();
  }

  [[nodiscard]] std::size_t size() const { return set_.size(); }
  [[nodiscard]] std::size_t n_words() const { return n_words_; }

  /// Approximate heap footprint of the banked keys (see
  /// detail::key_footprint_bytes); grows linearly with size().
  [[nodiscard]] std::size_t size_bytes() const {
    return set_.size() * detail::key_footprint_bytes(n_words_);
  }

 private:
  std::size_t n_bits_;
  std::size_t n_words_;
  std::unordered_set<std::vector<std::uint64_t>, detail::PackedKeyHash> set_;
};

/// Concurrent UniqueBank: the key hash picks a shard, the shard's mutex
/// serializes only the colliding sliver of traffic, and a relaxed atomic
/// keeps size() O(1) so the round-parallel target check (`bank.size() >=
/// min_solutions`, polled every iteration by every worker) never touches a
/// lock.
class ShardedUniqueBank {
 public:
  static constexpr std::size_t kDefaultShards = 64;

  explicit ShardedUniqueBank(std::size_t n_bits,
                             std::size_t n_shards = kDefaultShards)
      : n_bits_(n_bits),
        n_words_((n_bits + 63) / 64),
        shards_(round_up_pow2(n_shards)) {}

  /// Inserts a packed key; returns true when it was new.  Safe to call from
  /// any number of threads concurrently.
  bool insert(const std::vector<std::uint64_t>& key) {
    const std::size_t h = detail::PackedKeyHash{}(key);
    // High bits pick the shard; unordered_set consumes the low bits, so the
    // two decisions stay independent.
    Shard& shard = shards_[(h >> 48) & (shards_.size() - 1)];
    bool is_new = false;
    {
      util::LockGuard lock(shard.mutex);
      is_new = shard.set.insert(key).second;
    }
    if (is_new) size_.fetch_add(1, std::memory_order_relaxed);
    return is_new;
  }

  /// Packs a byte-per-bit assignment and inserts it.
  bool insert_bits(const std::vector<std::uint8_t>& bits) {
    return insert(detail::pack_bits(bits, n_bits_, n_words_));
  }

  /// True when the key is already banked — a point-in-time answer under
  /// concurrent inserts (another thread may bank the key right after).  The
  /// diversity probe only uses it as a restart heuristic, so a stale miss
  /// costs one wasted descent, never a duplicate unique.
  [[nodiscard]] bool contains(const std::vector<std::uint64_t>& key) {
    const std::size_t h = detail::PackedKeyHash{}(key);
    Shard& shard = shards_[(h >> 48) & (shards_.size() - 1)];
    util::LockGuard lock(shard.mutex);
    return shard.set.find(key) != shard.set.end();
  }

  [[nodiscard]] std::size_t size() const {
    return size_.load(std::memory_order_relaxed);
  }

  /// Approximate heap footprint of the banked keys (see
  /// detail::key_footprint_bytes).  Lock-free like size(), so the service
  /// can poll per-request memory caps from any thread.
  [[nodiscard]] std::size_t size_bytes() const {
    return size() * detail::key_footprint_bytes(n_words_);
  }

  [[nodiscard]] std::size_t n_words() const { return n_words_; }
  [[nodiscard]] std::size_t n_shards() const { return shards_.size(); }

 private:
  /// Shard mutexes are leaf locks: at most one shard is held at a time and
  /// nothing else is acquired under it (see util/mutex.hpp's lock order).
  struct Shard {
    util::Mutex mutex;
    std::unordered_set<std::vector<std::uint64_t>, detail::PackedKeyHash> set
        HTS_GUARDED_BY(mutex);
  };

  [[nodiscard]] static std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  std::size_t n_bits_;
  std::size_t n_words_;
  std::vector<Shard> shards_;
  std::atomic<std::size_t> size_{0};
};

}  // namespace hts::sampler
