#include "expr/expr.hpp"

#include <algorithm>
#include <sstream>

#include "bdd/bdd.hpp"

namespace hts::expr {

Manager::Manager() {
  nodes_.push_back(Node{Kind::kConst0, 0, 0, 0});
  nodes_.push_back(Node{Kind::kConst1, 0, 0, 0});
}

std::uint32_t Manager::var_index(ExprId id) const {
  HTS_DCHECK(kind(id) == Kind::kVar);
  return nodes_[id].var;
}

std::span<const ExprId> Manager::children(ExprId id) const {
  const Node& n = nodes_[id];
  return {child_pool_.data() + n.child_begin, n.child_count};
}

std::uint64_t Manager::node_key(Kind kind, std::uint32_t var,
                                std::span<const ExprId> children) const {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ static_cast<std::uint64_t>(kind);
  h = (h ^ var) * 0xbf58476d1ce4e5b9ULL;
  for (const ExprId c : children) {
    h = (h ^ c) * 0x94d049bb133111ebULL;
    h ^= h >> 29;
  }
  return h;
}

ExprId Manager::intern(Kind kind, std::uint32_t var,
                       std::span<const ExprId> children) {
  const std::uint64_t key = node_key(kind, var, children);
  auto& bucket = unique_[key];
  for (const ExprId candidate : bucket) {
    const Node& n = nodes_[candidate];
    if (n.kind != kind || n.var != var || n.child_count != children.size()) continue;
    bool same = true;
    for (std::uint32_t i = 0; i < n.child_count; ++i) {
      if (child_pool_[n.child_begin + i] != children[i]) {
        same = false;
        break;
      }
    }
    if (same) return candidate;
  }
  Node node;
  node.kind = kind;
  node.var = var;
  node.child_begin = static_cast<std::uint32_t>(child_pool_.size());
  node.child_count = static_cast<std::uint32_t>(children.size());
  child_pool_.insert(child_pool_.end(), children.begin(), children.end());
  const auto id = static_cast<ExprId>(nodes_.size());
  nodes_.push_back(node);
  bucket.push_back(id);
  return id;
}

ExprId Manager::var(std::uint32_t v) {
  auto [it, inserted] = var_nodes_.try_emplace(v, kNoExpr);
  if (inserted) it->second = intern(Kind::kVar, v, {});
  return it->second;
}

ExprId Manager::mk_not(ExprId a) {
  if (a == const0()) return const1();
  if (a == const1()) return const0();
  if (kind(a) == Kind::kNot) return children(a)[0];
  const ExprId child[1] = {a};
  return intern(Kind::kNot, 0, child);
}

ExprId Manager::mk_andor(Kind op, std::vector<ExprId> items) {
  HTS_DCHECK(op == Kind::kAnd || op == Kind::kOr);
  const ExprId absorbing = (op == Kind::kAnd) ? const0() : const1();
  const ExprId identity = (op == Kind::kAnd) ? const1() : const0();

  // Flatten nested same-op nodes.
  std::vector<ExprId> flat;
  flat.reserve(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    const ExprId item = items[i];
    if (kind(item) == op) {
      for (const ExprId c : children(item)) items.push_back(c);
      continue;
    }
    if (item == absorbing) return absorbing;
    if (item == identity) continue;
    flat.push_back(item);
  }

  std::sort(flat.begin(), flat.end());
  flat.erase(std::unique(flat.begin(), flat.end()), flat.end());

  // Complement annihilation: x op ~x.
  for (const ExprId item : flat) {
    if (kind(item) == Kind::kNot &&
        std::binary_search(flat.begin(), flat.end(), children(item)[0])) {
      return absorbing;
    }
  }

  // Absorption: under AND drop any child OR(...) that contains another
  // child; dually under OR.
  const Kind dual = (op == Kind::kAnd) ? Kind::kOr : Kind::kAnd;
  std::vector<ExprId> kept;
  kept.reserve(flat.size());
  for (const ExprId item : flat) {
    bool absorbed = false;
    if (kind(item) == dual) {
      for (const ExprId inner : children(item)) {
        if (std::binary_search(flat.begin(), flat.end(), inner)) {
          absorbed = true;
          break;
        }
      }
    }
    if (!absorbed) kept.push_back(item);
  }

  if (kept.empty()) return identity;
  if (kept.size() == 1) return kept[0];
  return intern(op, 0, kept);
}

ExprId Manager::mk_and(std::vector<ExprId> items) {
  return mk_andor(Kind::kAnd, std::move(items));
}

ExprId Manager::mk_or(std::vector<ExprId> items) {
  return mk_andor(Kind::kOr, std::move(items));
}

ExprId Manager::mk_xor(std::vector<ExprId> items) {
  // Flatten, strip negations into a parity bit, cancel duplicate pairs.
  bool parity = false;  // true: result complemented
  std::vector<ExprId> flat;
  for (std::size_t i = 0; i < items.size(); ++i) {
    ExprId item = items[i];
    if (item == const1()) {
      parity = !parity;
      continue;
    }
    if (item == const0()) continue;
    if (kind(item) == Kind::kNot) {
      parity = !parity;
      item = children(item)[0];
    }
    if (kind(item) == Kind::kXor) {
      for (const ExprId c : children(item)) items.push_back(c);
      continue;
    }
    flat.push_back(item);
  }
  std::sort(flat.begin(), flat.end());
  // xor(x, x) = 0: drop pairs.
  std::vector<ExprId> kept;
  for (std::size_t i = 0; i < flat.size();) {
    if (i + 1 < flat.size() && flat[i] == flat[i + 1]) {
      i += 2;
      continue;
    }
    kept.push_back(flat[i]);
    ++i;
  }
  ExprId result;
  if (kept.empty()) {
    result = const0();
  } else if (kept.size() == 1) {
    result = kept[0];
  } else {
    result = intern(Kind::kXor, 0, kept);
  }
  return parity ? mk_not(result) : result;
}

std::vector<std::uint32_t> Manager::support(ExprId id) const {
  std::vector<std::uint32_t> vars;
  std::vector<ExprId> stack{id};
  std::unordered_map<ExprId, bool> seen;
  while (!stack.empty()) {
    const ExprId cur = stack.back();
    stack.pop_back();
    if (seen[cur]) continue;
    seen[cur] = true;
    if (kind(cur) == Kind::kVar) {
      vars.push_back(var_index(cur));
    } else {
      for (const ExprId c : children(cur)) stack.push_back(c);
    }
  }
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  return vars;
}

bool Manager::eval(ExprId id, const std::vector<std::uint8_t>& assignment) const {
  switch (kind(id)) {
    case Kind::kConst0:
      return false;
    case Kind::kConst1:
      return true;
    case Kind::kVar:
      HTS_DCHECK(var_index(id) < assignment.size());
      return assignment[var_index(id)] != 0;
    case Kind::kNot:
      return !eval(children(id)[0], assignment);
    case Kind::kAnd:
      for (const ExprId c : children(id)) {
        if (!eval(c, assignment)) return false;
      }
      return true;
    case Kind::kOr:
      for (const ExprId c : children(id)) {
        if (eval(c, assignment)) return true;
      }
      return false;
    case Kind::kXor: {
      bool acc = false;
      for (const ExprId c : children(id)) acc ^= eval(c, assignment);
      return acc;
    }
  }
  HTS_CHECK_MSG(false, "unreachable expr kind");
  return false;
}

TruthTable Manager::truth_table(ExprId id,
                                std::span<const std::uint32_t> support_vars) const {
  const auto n = static_cast<std::uint32_t>(support_vars.size());
  HTS_CHECK(n <= kMaxTruthTableVars);
  std::unordered_map<std::uint32_t, std::uint32_t> var_to_slot;
  for (std::uint32_t j = 0; j < n; ++j) var_to_slot[support_vars[j]] = j;

  std::unordered_map<ExprId, TruthTable> memo;
  // Post-order evaluation with an explicit stack to avoid deep recursion on
  // chain-shaped circuits.
  std::vector<std::pair<ExprId, bool>> stack{{id, false}};
  while (!stack.empty()) {
    auto [cur, expanded] = stack.back();
    stack.pop_back();
    if (memo.contains(cur)) continue;
    if (!expanded) {
      stack.push_back({cur, true});
      for (const ExprId c : children(cur)) stack.push_back({c, false});
      continue;
    }
    TruthTable tt;
    switch (kind(cur)) {
      case Kind::kConst0:
        tt = TruthTable::constant(n, false);
        break;
      case Kind::kConst1:
        tt = TruthTable::constant(n, true);
        break;
      case Kind::kVar: {
        const auto it = var_to_slot.find(var_index(cur));
        HTS_CHECK_MSG(it != var_to_slot.end(),
                      "truth_table support does not cover expression");
        tt = TruthTable::projection(n, it->second);
        break;
      }
      case Kind::kNot:
        tt = ~memo.at(children(cur)[0]);
        break;
      case Kind::kAnd: {
        tt = TruthTable::constant(n, true);
        for (const ExprId c : children(cur)) tt = tt & memo.at(c);
        break;
      }
      case Kind::kOr: {
        tt = TruthTable::constant(n, false);
        for (const ExprId c : children(cur)) tt = tt | memo.at(c);
        break;
      }
      case Kind::kXor: {
        tt = TruthTable::constant(n, false);
        for (const ExprId c : children(cur)) tt = tt ^ memo.at(c);
        break;
      }
    }
    memo.emplace(cur, std::move(tt));
  }
  return memo.at(id);
}

ExprId Manager::negate(ExprId id) {
  if (auto it = negate_cache_.find(id); it != negate_cache_.end()) return it->second;
  ExprId result = kNoExpr;
  switch (kind(id)) {
    case Kind::kConst0:
      result = const1();
      break;
    case Kind::kConst1:
      result = const0();
      break;
    case Kind::kVar:
      result = mk_not(id);
      break;
    case Kind::kNot:
      result = children(id)[0];
      break;
    case Kind::kAnd:
    case Kind::kOr: {
      // Copy the children before recursing: negate() allocates nodes, which
      // can reallocate the child pool under a live children() span.
      const auto kids = children(id);
      std::vector<ExprId> negated(kids.begin(), kids.end());
      for (ExprId& child : negated) child = negate(child);
      result = (kind(id) == Kind::kAnd) ? mk_or(std::move(negated))
                                        : mk_and(std::move(negated));
      break;
    }
    case Kind::kXor:
      result = mk_not(id);
      break;
  }
  negate_cache_.emplace(id, result);
  return result;
}

bool Manager::equivalent(ExprId a, ExprId b) {
  if (a == b) return true;
  std::vector<std::uint32_t> sa = support(a);
  std::vector<std::uint32_t> sb = support(b);
  std::vector<std::uint32_t> united;
  united.reserve(sa.size() + sb.size());
  std::set_union(sa.begin(), sa.end(), sb.begin(), sb.end(),
                 std::back_inserter(united));
  if (united.size() <= kMaxTruthTableVars) {
    return truth_table(a, united) == truth_table(b, united);
  }
  return equivalent_by_bdd(a, b, united);
}

bool Manager::equivalent_by_bdd(ExprId a, ExprId b,
                                std::span<const std::uint32_t> support_vars) {
  bdd::Manager mgr(static_cast<std::uint32_t>(support_vars.size()));
  std::unordered_map<std::uint32_t, std::uint32_t> var_to_level;
  for (std::uint32_t j = 0; j < support_vars.size(); ++j) {
    var_to_level[support_vars[j]] = j;
  }
  // Iterative post-order construction for each root.
  auto build = [&](ExprId root) -> bdd::NodeId {
    std::unordered_map<ExprId, bdd::NodeId> memo;
    std::vector<std::pair<ExprId, bool>> stack{{root, false}};
    while (!stack.empty()) {
      auto [cur, expanded] = stack.back();
      stack.pop_back();
      if (memo.contains(cur)) continue;
      if (!expanded) {
        stack.push_back({cur, true});
        for (const ExprId c : children(cur)) stack.push_back({c, false});
        continue;
      }
      bdd::NodeId node = bdd::kFalse;
      switch (kind(cur)) {
        case Kind::kConst0:
          node = bdd::kFalse;
          break;
        case Kind::kConst1:
          node = bdd::kTrue;
          break;
        case Kind::kVar:
          node = mgr.make_var(var_to_level.at(var_index(cur)));
          break;
        case Kind::kNot:
          node = mgr.apply_not(memo.at(children(cur)[0]));
          break;
        case Kind::kAnd: {
          node = bdd::kTrue;
          for (const ExprId c : children(cur)) node = mgr.apply_and(node, memo.at(c));
          break;
        }
        case Kind::kOr: {
          node = bdd::kFalse;
          for (const ExprId c : children(cur)) node = mgr.apply_or(node, memo.at(c));
          break;
        }
        case Kind::kXor: {
          node = bdd::kFalse;
          for (const ExprId c : children(cur)) node = mgr.apply_xor(node, memo.at(c));
          break;
        }
      }
      memo.emplace(cur, node);
    }
    return memo.at(root);
  };
  return build(a) == build(b);
}

ExprId Manager::from_sop(std::span<const Cube> cover,
                         std::span<const std::uint32_t> support_vars) {
  if (cover.empty()) return const0();
  std::vector<ExprId> terms;
  terms.reserve(cover.size());
  for (const Cube& cube : cover) {
    std::vector<ExprId> lits;
    for (std::uint32_t j = 0; j < support_vars.size(); ++j) {
      if (((cube.mask >> j) & 1u) == 0) continue;
      const ExprId leaf = var(support_vars[j]);
      lits.push_back(((cube.value >> j) & 1u) != 0 ? leaf : mk_not(leaf));
    }
    terms.push_back(mk_and(std::move(lits)));
  }
  return mk_or(std::move(terms));
}

ExprId Manager::simplify(ExprId id, std::uint32_t max_resynth_vars) {
  const std::vector<std::uint32_t> vars = support(id);
  if (vars.size() > max_resynth_vars) return id;

  const TruthTable tt = truth_table(id, vars);
  if (tt.is_constant_false()) return const0();
  if (tt.is_constant_true()) return const1();

  const std::vector<Cube> sop = minimize_sop(tt);
  const std::vector<Cube> complement_sop = minimize_sop(~tt);

  const ExprId sop_expr = from_sop(sop, vars);
  const ExprId pos_expr = negate(from_sop(complement_sop, vars));

  ExprId best = id;
  std::uint64_t best_cost = op_count_2input(id);
  if (const auto cost = op_count_2input(sop_expr); cost < best_cost) {
    best = sop_expr;
    best_cost = cost;
  }
  if (const auto cost = op_count_2input(pos_expr); cost < best_cost) {
    best = pos_expr;
    best_cost = cost;
  }
  return best;
}

std::uint64_t Manager::op_count_2input(ExprId id, bool count_nots) const {
  const ExprId roots[1] = {id};
  return op_count_2input(std::span<const ExprId>(roots), count_nots);
}

std::uint64_t Manager::op_count_2input(std::span<const ExprId> roots,
                                       bool count_nots) const {
  std::uint64_t ops = 0;
  std::unordered_map<ExprId, bool> seen;
  std::vector<ExprId> stack(roots.begin(), roots.end());
  while (!stack.empty()) {
    const ExprId cur = stack.back();
    stack.pop_back();
    if (seen[cur]) continue;
    seen[cur] = true;
    switch (kind(cur)) {
      case Kind::kConst0:
      case Kind::kConst1:
      case Kind::kVar:
        break;
      case Kind::kNot:
        if (count_nots) ops += 1;
        break;
      case Kind::kAnd:
      case Kind::kOr:
      case Kind::kXor:
        ops += children(cur).size() - 1;
        break;
    }
    for (const ExprId c : children(cur)) stack.push_back(c);
  }
  return ops;
}

std::string Manager::to_string(ExprId id) const {
  switch (kind(id)) {
    case Kind::kConst0:
      return "0";
    case Kind::kConst1:
      return "1";
    case Kind::kVar:
      return "x" + std::to_string(var_index(id));
    case Kind::kNot: {
      const ExprId c = children(id)[0];
      if (kind(c) == Kind::kVar) return "~x" + std::to_string(var_index(c));
      return "~(" + to_string(c) + ")";
    }
    case Kind::kAnd:
    case Kind::kOr:
    case Kind::kXor: {
      const char* sep = kind(id) == Kind::kAnd ? " & "
                        : kind(id) == Kind::kOr ? " | "
                                                : " ^ ";
      std::ostringstream out;
      out << '(';
      bool first = true;
      for (const ExprId c : children(id)) {
        if (!first) out << sep;
        first = false;
        out << to_string(c);
      }
      out << ')';
      return out.str();
    }
  }
  return "?";
}

}  // namespace hts::expr
