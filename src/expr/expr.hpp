#pragma once

// Hash-consed Boolean expression DAG with algebraic simplification and exact
// semantic queries — the repo's replacement for the paper's use of SymPy.
//
// Expressions are immutable nodes owned by a Manager; ExprId is an index
// into its node table.  Construction applies local algebraic rules
// (flattening, unit/zero elements, complement annihilation, absorption, XOR
// parity normalization) so structurally-different but trivially-equal inputs
// intern to one node.  Exact equivalence / complement checks use truth
// tables when the combined support is small and fall back to BDDs.

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "expr/qm.hpp"
#include "expr/truth_table.hpp"

namespace hts::expr {

enum class Kind : std::uint8_t { kConst0, kConst1, kVar, kNot, kAnd, kOr, kXor };

using ExprId = std::uint32_t;
inline constexpr ExprId kNoExpr = static_cast<ExprId>(-1);

class Manager {
 public:
  Manager();

  // --- node constructors -------------------------------------------------

  [[nodiscard]] ExprId const0() const { return 0; }
  [[nodiscard]] ExprId const1() const { return 1; }
  [[nodiscard]] ExprId var(std::uint32_t v);

  [[nodiscard]] ExprId mk_not(ExprId a);
  [[nodiscard]] ExprId mk_and(std::vector<ExprId> children);
  [[nodiscard]] ExprId mk_or(std::vector<ExprId> children);
  [[nodiscard]] ExprId mk_xor(std::vector<ExprId> children);

  [[nodiscard]] ExprId mk_and2(ExprId a, ExprId b) { return mk_and({a, b}); }
  [[nodiscard]] ExprId mk_or2(ExprId a, ExprId b) { return mk_or({a, b}); }
  [[nodiscard]] ExprId mk_xor2(ExprId a, ExprId b) { return mk_xor({a, b}); }
  /// if s then a else b.
  [[nodiscard]] ExprId mk_mux(ExprId s, ExprId a, ExprId b) {
    return mk_or2(mk_and2(s, a), mk_and2(mk_not(s), b));
  }

  // --- accessors ----------------------------------------------------------

  [[nodiscard]] Kind kind(ExprId id) const { return nodes_[id].kind; }
  [[nodiscard]] std::uint32_t var_index(ExprId id) const;
  [[nodiscard]] std::span<const ExprId> children(ExprId id) const;
  [[nodiscard]] bool is_const(ExprId id) const {
    return kind(id) == Kind::kConst0 || kind(id) == Kind::kConst1;
  }
  [[nodiscard]] std::size_t n_nodes() const { return nodes_.size(); }

  // --- semantics ----------------------------------------------------------

  /// Sorted list of variables the expression depends on (structurally).
  [[nodiscard]] std::vector<std::uint32_t> support(ExprId id) const;

  /// Evaluates under a complete assignment (index = variable).
  [[nodiscard]] bool eval(ExprId id, const std::vector<std::uint8_t>& assignment) const;

  /// Truth table of id over support_vars (sorted ascending; must cover the
  /// structural support).  support_vars.size() <= kMaxTruthTableVars.
  [[nodiscard]] TruthTable truth_table(ExprId id,
                                       std::span<const std::uint32_t> support_vars) const;

  /// Negation pushed into the DAG via De Morgan / XOR parity, memoized.
  /// Unlike mk_not this never produces a top-level kNot over AND/OR, which
  /// lets complement checks of factored forms succeed structurally.
  [[nodiscard]] ExprId negate(ExprId id);

  /// Exact equivalence.  Truth tables when the union support is <=
  /// kMaxTruthTableVars; otherwise a BDD check (node-budgeted; throws
  /// bdd::CapacityError if the query is too large — callers treat that as
  /// "unknown").
  [[nodiscard]] bool equivalent(ExprId a, ExprId b);

  /// True iff a == NOT b (exactly).
  [[nodiscard]] bool complementary(ExprId a, ExprId b) {
    return equivalent(a, negate(b));
  }

  /// Semantic simplification: for supports <= max_resynth_vars the function
  /// is resynthesized from its truth table via Quine-McCluskey (best of SOP
  /// and POS); the cheaper of {input, resynthesis} in 2-input-equivalent ops
  /// is returned.  Larger supports keep the (already locally simplified)
  /// input.  This mirrors the paper's SymPy `simplify` step.
  [[nodiscard]] ExprId simplify(ExprId id, std::uint32_t max_resynth_vars = 12);

  /// 2-input gate-equivalent cost of the sub-DAG under id (shared nodes
  /// counted once).  NOT costs 1 when count_nots.
  [[nodiscard]] std::uint64_t op_count_2input(ExprId id, bool count_nots = true) const;

  /// As above for a multi-rooted DAG (shared logic across roots counted once).
  [[nodiscard]] std::uint64_t op_count_2input(std::span<const ExprId> roots,
                                              bool count_nots = true) const;

  /// Human-readable infix form with ~ & | ^ and x<i> variables.
  [[nodiscard]] std::string to_string(ExprId id) const;

  /// Builds an expression from a SOP cover over the given support variables.
  [[nodiscard]] ExprId from_sop(std::span<const Cube> cover,
                                std::span<const std::uint32_t> support_vars);

 private:
  struct Node {
    Kind kind;
    std::uint32_t var = 0;         // for kVar
    std::uint32_t child_begin = 0; // into child_pool_
    std::uint32_t child_count = 0;
  };

  [[nodiscard]] ExprId intern(Kind kind, std::uint32_t var,
                              std::span<const ExprId> children);
  [[nodiscard]] std::uint64_t node_key(Kind kind, std::uint32_t var,
                                       std::span<const ExprId> children) const;

  /// Shared flatten/sort/dedupe/annihilate machinery for AND/OR.
  [[nodiscard]] ExprId mk_andor(Kind op, std::vector<ExprId> children);

  [[nodiscard]] bool equivalent_by_bdd(ExprId a, ExprId b,
                                       std::span<const std::uint32_t> support_vars);

  std::vector<Node> nodes_;
  std::vector<ExprId> child_pool_;
  std::unordered_map<std::uint64_t, std::vector<ExprId>> unique_;  // key -> candidates
  std::unordered_map<ExprId, ExprId> negate_cache_;
  std::unordered_map<std::uint32_t, ExprId> var_nodes_;
};

}  // namespace hts::expr
