#include "expr/qm.hpp"

#include <algorithm>
#include <bit>
#include <unordered_set>

namespace hts::expr {

int Cube::n_literals() const { return std::popcount(mask); }

namespace {

struct CubeKey {
  std::size_t operator()(const Cube& c) const noexcept {
    return std::hash<std::uint64_t>()((std::uint64_t{c.mask} << 32) | c.value);
  }
};

/// All prime implicants of tt by iterative pairwise merging.
std::vector<Cube> prime_implicants(const TruthTable& tt) {
  const std::uint32_t n = tt.n_vars();
  const std::uint32_t full_mask =
      n >= 32 ? ~0u : ((n == 0) ? 0u : ((1u << n) - 1));

  std::unordered_set<Cube, CubeKey> current;
  for (const std::uint64_t m : tt.minterms()) {
    current.insert(Cube{full_mask, static_cast<std::uint32_t>(m)});
  }

  std::vector<Cube> primes;
  while (!current.empty()) {
    std::unordered_set<Cube, CubeKey> next;
    std::unordered_set<Cube, CubeKey> merged;
    const std::vector<Cube> cubes(current.begin(), current.end());
    // Group-by-mask then try merging cubes that differ in exactly one tested
    // bit.  The quadratic scan is fine at QM's intended scale (<= 12 vars).
    for (std::size_t i = 0; i < cubes.size(); ++i) {
      for (std::size_t j = i + 1; j < cubes.size(); ++j) {
        if (cubes[i].mask != cubes[j].mask) continue;
        const std::uint32_t diff = cubes[i].value ^ cubes[j].value;
        if (std::popcount(diff) != 1) continue;
        next.insert(Cube{cubes[i].mask & ~diff, cubes[i].value & ~diff});
        merged.insert(cubes[i]);
        merged.insert(cubes[j]);
      }
    }
    for (const Cube& c : cubes) {
      if (!merged.contains(c)) primes.push_back(c);
    }
    current = std::move(next);
  }
  return primes;
}

}  // namespace

std::vector<Cube> minimize_sop(const TruthTable& tt) {
  if (tt.is_constant_false()) return {};
  if (tt.is_constant_true()) return {Cube{0, 0}};

  const std::vector<std::uint64_t> minterms = tt.minterms();
  std::vector<Cube> primes = prime_implicants(tt);

  // Coverage matrix: which primes cover each minterm.
  std::vector<std::vector<std::size_t>> covering(minterms.size());
  for (std::size_t p = 0; p < primes.size(); ++p) {
    for (std::size_t m = 0; m < minterms.size(); ++m) {
      if (primes[p].covers(minterms[m])) covering[m].push_back(p);
    }
  }

  std::vector<Cube> cover;
  std::vector<std::uint8_t> minterm_done(minterms.size(), 0);
  std::vector<std::uint8_t> prime_used(primes.size(), 0);

  // Essential primes: the sole cover of some minterm.
  for (std::size_t m = 0; m < minterms.size(); ++m) {
    if (covering[m].size() == 1) {
      const std::size_t p = covering[m][0];
      if (prime_used[p] == 0) {
        prime_used[p] = 1;
        cover.push_back(primes[p]);
      }
    }
  }
  for (std::size_t m = 0; m < minterms.size(); ++m) {
    for (const std::size_t p : covering[m]) {
      if (prime_used[p] != 0) {
        minterm_done[m] = 1;
        break;
      }
    }
  }

  // Greedy set cover for the rest: widest (fewest literals, then most new
  // minterms) first.
  for (;;) {
    std::size_t best = primes.size();
    std::size_t best_gain = 0;
    for (std::size_t p = 0; p < primes.size(); ++p) {
      if (prime_used[p] != 0) continue;
      std::size_t gain = 0;
      for (std::size_t m = 0; m < minterms.size(); ++m) {
        if (minterm_done[m] == 0 && primes[p].covers(minterms[m])) ++gain;
      }
      if (gain > best_gain ||
          (gain == best_gain && gain > 0 && best < primes.size() &&
           primes[p].n_literals() < primes[best].n_literals())) {
        best_gain = gain;
        best = p;
      }
    }
    if (best == primes.size() || best_gain == 0) break;
    prime_used[best] = 1;
    cover.push_back(primes[best]);
    for (std::size_t m = 0; m < minterms.size(); ++m) {
      if (minterm_done[m] == 0 && primes[best].covers(minterms[m])) {
        minterm_done[m] = 1;
      }
    }
  }

  // Irredundancy pass: drop cubes whose minterms are all covered elsewhere.
  for (std::size_t i = cover.size(); i-- > 0;) {
    bool redundant = true;
    for (const std::uint64_t m : minterms) {
      if (!cover[i].covers(m)) continue;
      bool covered_elsewhere = false;
      for (std::size_t j = 0; j < cover.size(); ++j) {
        if (j != i && cover[j].covers(m)) {
          covered_elsewhere = true;
          break;
        }
      }
      if (!covered_elsewhere) {
        redundant = false;
        break;
      }
    }
    if (redundant) cover.erase(cover.begin() + static_cast<std::ptrdiff_t>(i));
  }

  std::sort(cover.begin(), cover.end(), [](const Cube& a, const Cube& b) {
    return std::tie(a.value, a.mask) < std::tie(b.value, b.mask);
  });
  return cover;
}

std::uint64_t sop_cost(const std::vector<Cube>& cover, bool count_nots) {
  if (cover.empty()) return 0;
  std::uint64_t cost = cover.size() - 1;  // OR tree
  for (const Cube& cube : cover) {
    const int lits = cube.n_literals();
    if (lits > 1) cost += static_cast<std::uint64_t>(lits) - 1;  // AND tree
    if (count_nots) {
      cost += static_cast<std::uint64_t>(
          std::popcount(cube.mask & ~cube.value));  // negated literals
    }
  }
  return cost;
}

}  // namespace hts::expr
