#pragma once

// Quine-McCluskey two-level minimization on dense truth tables.
//
// Used by hts::expr::Manager::simplify to resynthesize small-support
// sub-expressions recovered by the CNF transformation into compact SOP/POS
// form — the step the paper delegates to SymPy's simplify.  Exact prime
// implicant generation; cover selection takes essentials first, then a
// greedy set cover (optimal enough for the <= 12-variable functions the
// transformation produces, and always correct).

#include <cstdint>
#include <vector>

#include "expr/truth_table.hpp"

namespace hts::expr {

/// A product term (cube) over n support variables: for variable j,
/// (mask >> j) & 1 says whether the cube tests j; (value >> j) & 1 gives the
/// tested polarity.
struct Cube {
  std::uint32_t mask = 0;
  std::uint32_t value = 0;

  [[nodiscard]] bool covers(std::uint64_t minterm) const {
    return (static_cast<std::uint32_t>(minterm) & mask) == value;
  }

  /// Number of tested literals.
  [[nodiscard]] int n_literals() const;

  bool operator==(const Cube&) const = default;
};

/// Minimal (irredundant) sum-of-products cover of tt.  Empty vector means
/// constant false; a single all-dont-care cube means constant true.
[[nodiscard]] std::vector<Cube> minimize_sop(const TruthTable& tt);

/// Cost of a SOP cover in 2-input gate equivalents: per cube
/// (#literals - 1) ANDs + #negated literals NOTs, plus (#cubes - 1) ORs.
[[nodiscard]] std::uint64_t sop_cost(const std::vector<Cube>& cover,
                                     bool count_nots = true);

}  // namespace hts::expr
