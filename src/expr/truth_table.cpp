#include "expr/truth_table.hpp"

#include <bit>

namespace hts::expr {

namespace {

/// The canonical 64-row pattern of variable j (valid for j < 6).
constexpr std::uint64_t kVarPattern[6] = {
    0xaaaaaaaaaaaaaaaaULL, 0xccccccccccccccccULL, 0xf0f0f0f0f0f0f0f0ULL,
    0xff00ff00ff00ff00ULL, 0xffff0000ffff0000ULL, 0xffffffff00000000ULL,
};

}  // namespace

void TruthTable::trim() {
  if (n_vars_ >= 6) return;
  const std::uint64_t rows = n_rows();
  if (rows < 64) bits_[0] &= (1ULL << rows) - 1;
}

TruthTable TruthTable::projection(std::uint32_t n_vars, std::uint32_t j) {
  HTS_CHECK(j < n_vars);
  TruthTable tt(n_vars);
  if (j < 6) {
    for (auto& word : tt.bits_) word = kVarPattern[j];
  } else {
    // Variable j toggles every 2^j rows == every 2^(j-6) words.
    const std::size_t block = std::size_t{1} << (j - 6);
    for (std::size_t w = 0; w < tt.bits_.size(); ++w) {
      tt.bits_[w] = ((w / block) & 1) != 0 ? ~0ULL : 0ULL;
    }
  }
  tt.trim();
  return tt;
}

TruthTable TruthTable::constant(std::uint32_t n_vars, bool value) {
  TruthTable tt(n_vars);
  if (value) {
    for (auto& word : tt.bits_) word = ~0ULL;
    tt.trim();
  }
  return tt;
}

TruthTable TruthTable::operator~() const {
  TruthTable result(n_vars_);
  for (std::size_t w = 0; w < bits_.size(); ++w) result.bits_[w] = ~bits_[w];
  result.trim();
  return result;
}

TruthTable TruthTable::operator&(const TruthTable& other) const {
  HTS_CHECK(n_vars_ == other.n_vars_);
  TruthTable result(n_vars_);
  for (std::size_t w = 0; w < bits_.size(); ++w) {
    result.bits_[w] = bits_[w] & other.bits_[w];
  }
  return result;
}

TruthTable TruthTable::operator|(const TruthTable& other) const {
  HTS_CHECK(n_vars_ == other.n_vars_);
  TruthTable result(n_vars_);
  for (std::size_t w = 0; w < bits_.size(); ++w) {
    result.bits_[w] = bits_[w] | other.bits_[w];
  }
  return result;
}

TruthTable TruthTable::operator^(const TruthTable& other) const {
  HTS_CHECK(n_vars_ == other.n_vars_);
  TruthTable result(n_vars_);
  for (std::size_t w = 0; w < bits_.size(); ++w) {
    result.bits_[w] = bits_[w] ^ other.bits_[w];
  }
  return result;
}

bool TruthTable::operator==(const TruthTable& other) const {
  return n_vars_ == other.n_vars_ && bits_ == other.bits_;
}

bool TruthTable::is_constant_false() const {
  for (const auto word : bits_) {
    if (word != 0) return false;
  }
  return true;
}

bool TruthTable::is_constant_true() const { return *this == constant(n_vars_, true); }

std::uint64_t TruthTable::popcount() const {
  std::uint64_t total = 0;
  for (const auto word : bits_) total += std::popcount(word);
  return total;
}

std::vector<std::uint64_t> TruthTable::minterms() const {
  std::vector<std::uint64_t> rows;
  rows.reserve(popcount());
  for (std::uint64_t row = 0; row < n_rows(); ++row) {
    if (get(row)) rows.push_back(row);
  }
  return rows;
}

}  // namespace hts::expr
