#pragma once

// Dense truth tables over a small ordered support (<= 20 variables).
//
// Row index encodes the assignment: bit j of the row index is the value of
// the j-th support variable.  Tables are the exact semantic backend for
// small expressions: equivalence, complement checks, and Quine-McCluskey
// resynthesis all operate on them.

#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace hts::expr {

inline constexpr std::uint32_t kMaxTruthTableVars = 20;

class TruthTable {
 public:
  TruthTable() = default;

  explicit TruthTable(std::uint32_t n_vars) : n_vars_(n_vars) {
    HTS_CHECK_MSG(n_vars <= kMaxTruthTableVars, "truth table support too large");
    bits_.assign(word_count(), 0);
  }

  [[nodiscard]] std::uint32_t n_vars() const { return n_vars_; }
  [[nodiscard]] std::uint64_t n_rows() const { return 1ULL << n_vars_; }

  [[nodiscard]] bool get(std::uint64_t row) const {
    HTS_DCHECK(row < n_rows());
    return ((bits_[row >> 6] >> (row & 63)) & 1ULL) != 0;
  }

  void set(std::uint64_t row, bool value) {
    HTS_DCHECK(row < n_rows());
    const std::uint64_t mask = 1ULL << (row & 63);
    if (value) {
      bits_[row >> 6] |= mask;
    } else {
      bits_[row >> 6] &= ~mask;
    }
  }

  /// Builds the table of the j-th support variable (the classic 0101.. /
  /// 00110011.. patterns).
  [[nodiscard]] static TruthTable projection(std::uint32_t n_vars, std::uint32_t j);

  [[nodiscard]] static TruthTable constant(std::uint32_t n_vars, bool value);

  [[nodiscard]] TruthTable operator~() const;
  [[nodiscard]] TruthTable operator&(const TruthTable& other) const;
  [[nodiscard]] TruthTable operator|(const TruthTable& other) const;
  [[nodiscard]] TruthTable operator^(const TruthTable& other) const;

  [[nodiscard]] bool operator==(const TruthTable& other) const;

  [[nodiscard]] bool is_constant_false() const;
  [[nodiscard]] bool is_constant_true() const;

  /// Number of rows set to 1.
  [[nodiscard]] std::uint64_t popcount() const;

  /// Row indices of all ones (the minterms).
  [[nodiscard]] std::vector<std::uint64_t> minterms() const;

 private:
  [[nodiscard]] std::size_t word_count() const {
    return static_cast<std::size_t>((n_rows() + 63) >> 6);
  }
  /// Masks off the unused tail bits of the last word for n_vars < 6.
  void trim();

  std::uint32_t n_vars_ = 0;
  std::vector<std::uint64_t> bits_;
};

}  // namespace hts::expr
