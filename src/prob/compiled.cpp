#include "prob/compiled.hpp"

namespace hts::prob {

CompiledCircuit::CompiledCircuit(const circuit::Circuit& circuit, Options options) {
  const std::vector<std::uint8_t> cone =
      options.cone_only ? circuit.constrained_cone()
                        : std::vector<std::uint8_t>(circuit.n_signals(), 1);

  signal_slot_.assign(circuit.n_signals(), kNoSlot);
  input_slot_.assign(circuit.n_inputs(), kNoSlot);

  auto fresh_slot = [this] { return static_cast<std::uint32_t>(n_slots_++); };

  for (circuit::SignalId s = 0; s < circuit.n_signals(); ++s) {
    if (cone[s] == 0) continue;
    const circuit::Gate& gate = circuit.gate(s);
    using circuit::GateType;
    switch (gate.type) {
      case GateType::kInput:
        signal_slot_[s] = static_cast<std::int32_t>(fresh_slot());
        break;
      case GateType::kConst0:
      case GateType::kConst1: {
        const std::uint32_t slot = fresh_slot();
        signal_slot_[s] = static_cast<std::int32_t>(slot);
        const_slots_.push_back(
            ConstSlot{slot, gate.type == GateType::kConst1 ? 1.0f : 0.0f});
        break;
      }
      case GateType::kBuf: {
        const std::uint32_t slot = fresh_slot();
        signal_slot_[s] = static_cast<std::int32_t>(slot);
        tape_.push_back(TapeOp{OpCode::kCopy, slot,
                               static_cast<std::uint32_t>(signal_slot_[gate.fanins[0]]),
                               0});
        break;
      }
      case GateType::kNot: {
        const std::uint32_t slot = fresh_slot();
        signal_slot_[s] = static_cast<std::int32_t>(slot);
        tape_.push_back(TapeOp{OpCode::kNot, slot,
                               static_cast<std::uint32_t>(signal_slot_[gate.fanins[0]]),
                               0});
        break;
      }
      case GateType::kAnd:
      case GateType::kOr:
      case GateType::kXor:
      case GateType::kNand:
      case GateType::kNor:
      case GateType::kXnor: {
        const OpCode op = (gate.type == GateType::kAnd || gate.type == GateType::kNand)
                              ? OpCode::kAnd
                          : (gate.type == GateType::kOr || gate.type == GateType::kNor)
                              ? OpCode::kOr
                              : OpCode::kXor;
        const bool invert = gate.type == GateType::kNand ||
                            gate.type == GateType::kNor ||
                            gate.type == GateType::kXnor;
        // Left-to-right chain over temporaries; the final op (or a trailing
        // NOT) lands in the gate's own slot.
        std::uint32_t acc = static_cast<std::uint32_t>(signal_slot_[gate.fanins[0]]);
        if (gate.fanins.size() == 1) {
          const std::uint32_t slot = fresh_slot();
          signal_slot_[s] = static_cast<std::int32_t>(slot);
          tape_.push_back(TapeOp{invert ? OpCode::kNot : OpCode::kCopy, slot, acc, 0});
          break;
        }
        for (std::size_t i = 1; i < gate.fanins.size(); ++i) {
          const std::uint32_t dst = fresh_slot();
          tape_.push_back(TapeOp{
              op, dst, acc,
              static_cast<std::uint32_t>(signal_slot_[gate.fanins[i]])});
          acc = dst;
        }
        if (invert) {
          const std::uint32_t dst = fresh_slot();
          tape_.push_back(TapeOp{OpCode::kNot, dst, acc, 0});
          acc = dst;
        }
        signal_slot_[s] = static_cast<std::int32_t>(acc);
        break;
      }
    }
  }

  for (std::size_t i = 0; i < circuit.inputs().size(); ++i) {
    input_slot_[i] = signal_slot_[circuit.inputs()[i]];
  }
  for (const circuit::OutputConstraint& out : circuit.outputs()) {
    HTS_CHECK_MSG(signal_slot_[out.signal] != kNoSlot,
                  "output signal missing from compiled cone");
    outputs_.push_back(Output{static_cast<std::uint32_t>(signal_slot_[out.signal]),
                              out.target ? 1.0f : 0.0f});
  }
}

}  // namespace hts::prob
