#include "prob/compiled.hpp"

#include <algorithm>
#include <array>
#include <numeric>
#include <unordered_map>

#include "util/plan_order.hpp"
#include "verify/plan_verifier.hpp"

namespace hts::prob {

CompiledCircuit::CompiledCircuit(const circuit::Circuit& circuit, Options options)
    : options_(options) {
  const std::vector<std::uint8_t> cone =
      options.cone_only ? circuit.constrained_cone()
                        : std::vector<std::uint8_t>(circuit.n_signals(), 1);

  signal_slot_.assign(circuit.n_signals(), kNoSlot);
  input_slot_.assign(circuit.n_inputs(), kNoSlot);

  auto fresh_slot = [this] { return static_cast<std::uint32_t>(n_slots_++); };

  for (circuit::SignalId s = 0; s < circuit.n_signals(); ++s) {
    if (cone[s] == 0) continue;
    const circuit::Gate& gate = circuit.gate(s);
    using circuit::GateType;
    switch (gate.type) {
      case GateType::kInput:
        signal_slot_[s] = static_cast<std::int32_t>(fresh_slot());
        break;
      case GateType::kConst0:
      case GateType::kConst1: {
        const std::uint32_t slot = fresh_slot();
        signal_slot_[s] = static_cast<std::int32_t>(slot);
        const_slots_.push_back(
            ConstSlot{slot, gate.type == GateType::kConst1 ? 1.0f : 0.0f});
        break;
      }
      case GateType::kBuf: {
        const std::uint32_t slot = fresh_slot();
        signal_slot_[s] = static_cast<std::int32_t>(slot);
        tape_.push_back(TapeOp{OpCode::kCopy, slot,
                               static_cast<std::uint32_t>(signal_slot_[gate.fanins[0]]),
                               0});
        break;
      }
      case GateType::kNot: {
        const std::uint32_t slot = fresh_slot();
        signal_slot_[s] = static_cast<std::int32_t>(slot);
        tape_.push_back(TapeOp{OpCode::kNot, slot,
                               static_cast<std::uint32_t>(signal_slot_[gate.fanins[0]]),
                               0});
        break;
      }
      case GateType::kAnd:
      case GateType::kOr:
      case GateType::kXor:
      case GateType::kNand:
      case GateType::kNor:
      case GateType::kXnor: {
        const OpCode op = (gate.type == GateType::kAnd || gate.type == GateType::kNand)
                              ? OpCode::kAnd
                          : (gate.type == GateType::kOr || gate.type == GateType::kNor)
                              ? OpCode::kOr
                              : OpCode::kXor;
        const bool invert = gate.type == GateType::kNand ||
                            gate.type == GateType::kNor ||
                            gate.type == GateType::kXnor;
        // Left-to-right chain over temporaries; the final op (or a trailing
        // NOT) lands in the gate's own slot.
        std::uint32_t acc = static_cast<std::uint32_t>(signal_slot_[gate.fanins[0]]);
        if (gate.fanins.size() == 1) {
          const std::uint32_t slot = fresh_slot();
          signal_slot_[s] = static_cast<std::int32_t>(slot);
          tape_.push_back(TapeOp{invert ? OpCode::kNot : OpCode::kCopy, slot, acc, 0});
          break;
        }
        for (std::size_t i = 1; i < gate.fanins.size(); ++i) {
          const std::uint32_t dst = fresh_slot();
          tape_.push_back(TapeOp{
              op, dst, acc,
              static_cast<std::uint32_t>(signal_slot_[gate.fanins[i]])});
          acc = dst;
        }
        if (invert) {
          const std::uint32_t dst = fresh_slot();
          tape_.push_back(TapeOp{OpCode::kNot, dst, acc, 0});
          acc = dst;
        }
        signal_slot_[s] = static_cast<std::int32_t>(acc);
        break;
      }
    }
  }

  for (std::size_t i = 0; i < circuit.inputs().size(); ++i) {
    input_slot_[i] = signal_slot_[circuit.inputs()[i]];
  }
  for (const circuit::OutputConstraint& out : circuit.outputs()) {
    HTS_CHECK_MSG(signal_slot_[out.signal] != kNoSlot,
                  "output signal missing from compiled cone");
    outputs_.push_back(Output{static_cast<std::uint32_t>(signal_slot_[out.signal]),
                              out.target ? 1.0f : 0.0f});
  }

  if (options.optimize) optimize();
  build_plan();

  // Self-check hook: prove the finished tape + plan well-formed when plan
  // verification is on (Debug default; HTS_VERIFY_PLANS overrides).  A
  // violation is a compiler/optimizer bug, not an input error — abort with
  // the structured report.
  if (verify::plans_verified()) {
    const verify::Report report = verify::verify_exec_plan(*this);
    HTS_CHECK_MSG(report.ok(), report.to_string().c_str());
  }
}

// Post-compile tape optimization.  Every rewrite here is *exactly* value
// preserving: folds replicate the kernels' float expressions verbatim, and
// only folds whose result is bit-identical for activations in [0, 1] are
// applied (all tape values are probabilities, so e.g. x * 0 == +0 holds).
// See compiled.hpp for the pass list.
void CompiledCircuit::optimize() {
  opt_stats_.ops_before = tape_.size();
  opt_stats_.slots_before = n_slots_;

  // ---- copy propagation + exact constant folding (one forward walk) ----
  std::vector<std::uint32_t> alias(n_slots_);
  std::iota(alias.begin(), alias.end(), 0u);
  std::vector<std::uint8_t> is_const(n_slots_, 0);
  std::vector<float> const_val(n_slots_, 0.0f);
  for (const ConstSlot& c : const_slots_) {
    is_const[c.slot] = 1;
    const_val[c.slot] = c.value;
  }
  // Aliases always point at earlier, already-resolved slots, so one hop
  // suffices — but folded chains can stack, hence the loop.
  auto resolve = [&alias](std::uint32_t s) {
    while (alias[s] != s) s = alias[s];
    return s;
  };

  std::vector<TapeOp> ops;
  ops.reserve(tape_.size());
  for (const TapeOp& raw : tape_) {
    TapeOp op = raw;
    op.a = resolve(op.a);
    if (op_is_binary(op.op)) op.b = resolve(op.b);

    auto fold_alias = [&](std::uint32_t src) {
      alias[op.dst] = src;
      ++opt_stats_.consts_folded;
    };
    auto fold_const = [&](float value) {
      is_const[op.dst] = 1;
      const_val[op.dst] = value;
      ++opt_stats_.consts_folded;
    };

    switch (op.op) {
      case OpCode::kCopy:
        alias[op.dst] = op.a;
        ++opt_stats_.copies_propagated;
        continue;
      case OpCode::kNot:
        if (is_const[op.a]) {
          fold_const(1.0f - const_val[op.a]);
          continue;
        }
        break;
      case OpCode::kAnd: {
        if (is_const[op.a] && is_const[op.b]) {
          fold_const(const_val[op.a] * const_val[op.b]);
          continue;
        }
        const bool ca = is_const[op.a];
        if (ca || is_const[op.b]) {
          const float c = ca ? const_val[op.a] : const_val[op.b];
          const std::uint32_t other = ca ? op.b : op.a;
          if (c == 1.0f) {  // x * 1 == x
            fold_alias(other);
            continue;
          }
          if (c == 0.0f) {  // x * 0 == +0 (x is never negative)
            fold_const(0.0f);
            continue;
          }
        }
        break;
      }
      case OpCode::kOr: {
        if (is_const[op.a] && is_const[op.b]) {
          fold_const(const_val[op.a] + const_val[op.b] -
                     const_val[op.a] * const_val[op.b]);
          continue;
        }
        const bool ca = is_const[op.a];
        if (ca || is_const[op.b]) {
          const float c = ca ? const_val[op.a] : const_val[op.b];
          const std::uint32_t other = ca ? op.b : op.a;
          if (c == 0.0f) {  // x + 0 - x*0 == x
            fold_alias(other);
            continue;
          }
          // OR with 1 is constant 1 mathematically, but (x + 1) - x*1 can
          // round below 1 for tiny x; keep the op for exactness.
        }
        break;
      }
      case OpCode::kXor: {
        if (is_const[op.a] && is_const[op.b]) {
          fold_const(const_val[op.a] + const_val[op.b] -
                     2.0f * const_val[op.a] * const_val[op.b]);
          continue;
        }
        const bool ca = is_const[op.a];
        if (ca || is_const[op.b]) {
          const float c = ca ? const_val[op.a] : const_val[op.b];
          const std::uint32_t other = ca ? op.b : op.a;
          if (c == 0.0f) {  // x + 0 - 2*x*0 == x
            fold_alias(other);
            continue;
          }
          // XOR with 1 is NOT(x) mathematically, but (x + 1) - 2x rounds
          // differently from 1 - x; keep the op for exactness.
        }
        break;
      }
      case OpCode::kAndNot:
      case OpCode::kOrNot:
      case OpCode::kXnor:
        break;  // fused forms never exist pre-optimization
    }
    ops.push_back(op);
  }

  // ---- common-subexpression elimination (local value numbering) ----
  // Identical (op, a, b) triples compute bit-identical values, so later
  // duplicates alias the first occurrence.  Commutative operand pairs are
  // canonicalized (sorted) first: a*b and b*a round identically, as do the
  // OR/XOR polynomials, so swapped-operand duplicates collapse too.  Ops are
  // topologically ordered and operands re-resolved through the alias map,
  // hence one forward walk also catches chains of duplicates (two identical
  // ANDs make their downstream NOTs identical, and so on).
  {
    std::vector<TapeOp> deduped;
    deduped.reserve(ops.size());
    // One map per opcode; the key packs both (already-resolved) operands.
    std::array<std::unordered_map<std::uint64_t, std::uint32_t>, 8> seen;
    for (TapeOp op : ops) {
      op.a = resolve(op.a);
      if (op_is_binary(op.op)) {
        op.b = resolve(op.b);
        if (op_is_commutative(op.op) && op.a > op.b) std::swap(op.a, op.b);
      }
      const std::uint64_t key =
          (static_cast<std::uint64_t>(op.a) << 32) | op.b;
      auto [it, fresh] =
          seen[static_cast<std::size_t>(op.op)].try_emplace(key, op.dst);
      if (!fresh) {
        alias[op.dst] = it->second;
        ++opt_stats_.cse_eliminated;
        continue;
      }
      deduped.push_back(op);
    }
    ops = std::move(deduped);
  }

  // Re-anchor outputs through the alias map before use/liveness analysis.
  for (Output& out : outputs_) out.slot = resolve(out.slot);

  // ---- NOT fusion: merge single-use kAnd/kOr/kXor + kNot pairs ----
  std::vector<std::int32_t> producer(n_slots_, -1);
  std::vector<std::uint32_t> uses(n_slots_, 0);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    producer[ops[i].dst] = static_cast<std::int32_t>(i);
    ++uses[ops[i].a];
    if (op_is_binary(ops[i].op)) ++uses[ops[i].b];
  }
  std::vector<std::uint8_t> is_output(n_slots_, 0);
  for (const Output& out : outputs_) is_output[out.slot] = 1;

  std::vector<std::uint8_t> removed(ops.size(), 0);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].op != OpCode::kNot) continue;
    const std::uint32_t src = ops[i].a;
    const std::int32_t p = producer[src];
    if (p < 0 || uses[src] != 1 || is_output[src] != 0) continue;
    TapeOp& prod = ops[static_cast<std::size_t>(p)];
    OpCode fused;
    switch (prod.op) {
      case OpCode::kAnd:
        fused = OpCode::kAndNot;
        break;
      case OpCode::kOr:
        fused = OpCode::kOrNot;
        break;
      case OpCode::kXor:
        fused = OpCode::kXnor;
        break;
      default:
        continue;  // copies, NOTs, and already-fused ops stay as they are
    }
    prod.op = fused;
    prod.dst = ops[i].dst;
    producer[prod.dst] = p;
    producer[src] = -1;
    uses[src] = 0;
    removed[i] = 1;
    ++opt_stats_.nots_fused;
  }

  // ---- dead-code elimination: drop ops that never reach an output ----
  std::vector<std::uint8_t> live(n_slots_, 0);
  for (const Output& out : outputs_) live[out.slot] = 1;
  for (std::size_t i = ops.size(); i-- > 0;) {
    if (removed[i] != 0) continue;
    if (live[ops[i].dst] == 0) {
      removed[i] = 1;
      ++opt_stats_.ops_dead;
      continue;
    }
    live[ops[i].a] = 1;
    if (op_is_binary(ops[i].op)) live[ops[i].b] = 1;
  }

  // ---- liveness renumbering: compact the surviving slots ----
  std::vector<std::uint8_t> defined(n_slots_, 0);
  for (const std::int32_t slot : input_slot_) {
    if (slot != kNoSlot) defined[static_cast<std::size_t>(slot)] = 1;
  }
  for (std::uint32_t s = 0; s < n_slots_; ++s) {
    if (is_const[s] != 0) defined[s] = 1;
  }
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (removed[i] == 0) defined[ops[i].dst] = 1;
  }
  std::vector<std::int32_t> remap(n_slots_, kNoSlot);
  std::uint32_t next = 0;
  for (std::uint32_t s = 0; s < n_slots_; ++s) {
    if (defined[s] != 0 && live[s] != 0) remap[s] = static_cast<std::int32_t>(next++);
  }
  auto remapped = [&remap](std::uint32_t s) {
    return static_cast<std::uint32_t>(remap[s]);
  };

  std::vector<TapeOp> new_tape;
  new_tape.reserve(ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (removed[i] != 0) continue;
    const TapeOp& op = ops[i];
    new_tape.push_back(TapeOp{op.op, remapped(op.dst), remapped(op.a),
                              op_is_binary(op.op) ? remapped(op.b) : 0});
  }
  tape_ = std::move(new_tape);

  std::vector<ConstSlot> new_consts;
  for (std::uint32_t s = 0; s < n_slots_; ++s) {
    if (is_const[s] != 0 && remap[s] != kNoSlot) {
      new_consts.push_back(ConstSlot{remapped(s), const_val[s]});
    }
  }
  const_slots_ = std::move(new_consts);

  for (Output& out : outputs_) out.slot = remapped(out.slot);
  for (std::int32_t& slot : input_slot_) {
    if (slot != kNoSlot) slot = remap[static_cast<std::size_t>(slot)];
  }
  for (std::int32_t& slot : signal_slot_) {
    if (slot != kNoSlot) {
      slot = remap[resolve(static_cast<std::uint32_t>(slot))];
    }
  }

  n_slots_ = next;
  opt_stats_.ops_after = tape_.size();
  opt_stats_.slots_after = n_slots_;
}

// Levelization: ASAP levels over the slot dependency DAG (inputs and
// constants sit below level 0; an op's level is the max of its operand
// producers' levels).  The tape is already topologically ordered, so one
// forward walk assigns every level; a stable counting sort then regroups
// ops by level, and a per-level union-find over operand slots orders each
// level's ops into operand-disjoint groups for race-free backward chunking.
void CompiledCircuit::build_plan() {
  plan_ = ExecPlan{};
  const std::size_t n = tape_.size();
  util::LevelOrder levels = util::levelize_asap(
      n, n_slots_,
      [this](std::size_t i, const std::vector<std::uint32_t>& slot_level) {
        const TapeOp& t = tape_[i];
        std::uint32_t lvl = slot_level[t.a];
        if (op_is_binary(t.op)) lvl = std::max(lvl, slot_level[t.b]);
        return lvl;
      },
      [this](std::size_t i) { return tape_[i].dst; });
  const std::uint32_t n_levels = static_cast<std::uint32_t>(levels.n_levels());
  plan_.level_begin = std::move(levels.level_begin);
  const std::vector<std::uint32_t>& order = levels.order;

  plan_.op.resize(n);
  plan_.dst.resize(n);
  plan_.a.resize(n);
  plan_.b.resize(n);
  plan_.level_group.assign(static_cast<std::size_t>(n_levels) + 1, 0);

  constexpr std::uint32_t kNoDense = 0xffffffffu;
  std::vector<std::uint32_t> parent;
  std::vector<std::uint32_t> root;
  std::vector<std::uint32_t> dense;
  std::vector<std::uint32_t> local;
  std::unordered_map<std::uint32_t, std::uint32_t> slot_owner;
  auto find = [&parent](std::uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };

  for (std::uint32_t lvl = 0; lvl < n_levels; ++lvl) {
    const std::uint32_t begin = plan_.level_begin[lvl];
    const std::uint32_t end = plan_.level_begin[lvl + 1];
    const std::uint32_t m = end - begin;
    parent.resize(m);
    std::iota(parent.begin(), parent.end(), 0u);
    slot_owner.clear();
    auto claim = [&](std::uint32_t slot, std::uint32_t j) {
      const auto [it, fresh] = slot_owner.try_emplace(slot, j);
      if (!fresh) parent[find(j)] = find(it->second);
    };
    for (std::uint32_t j = 0; j < m; ++j) {
      const TapeOp& t = tape_[order[begin + j]];
      claim(t.a, j);
      if (op_is_binary(t.op)) claim(t.b, j);
    }
    // Cluster each connected component contiguously, components ordered by
    // first appearance and members kept in tape order — the closest the
    // grouped layout can stay to the original op order (locality).
    root.resize(m);
    dense.assign(m, kNoDense);
    std::uint32_t next_dense = 0;
    for (std::uint32_t j = 0; j < m; ++j) {
      const std::uint32_t r = find(j);
      if (dense[r] == kNoDense) dense[r] = next_dense++;
      root[j] = dense[r];
    }
    // Secondary key: opcode.  Ops within a group may run in any fixed order
    // (the plan order is canonical for determinism); clustering same-opcode
    // runs keeps the kernel dispatch branch predictable.
    local.resize(m);
    std::iota(local.begin(), local.end(), 0u);
    auto opcode_of = [this, &order, begin](std::uint32_t j) {
      return static_cast<std::uint32_t>(tape_[order[begin + j]].op);
    };
    std::stable_sort(local.begin(), local.end(),
                     [&root, &opcode_of](std::uint32_t x, std::uint32_t y) {
                       if (root[x] != root[y]) return root[x] < root[y];
                       return opcode_of(x) < opcode_of(y);
                     });
    for (std::uint32_t jj = 0; jj < m; ++jj) {
      const std::uint32_t k = begin + jj;
      const TapeOp& t = tape_[order[begin + local[jj]]];
      plan_.op[k] = t.op;
      plan_.dst[k] = t.dst;
      plan_.a[k] = t.a;
      plan_.b[k] = op_is_binary(t.op) ? t.b : t.a;
      if (jj == 0 || root[local[jj]] != root[local[jj - 1]]) {
        plan_.group_begin.push_back(k);
      }
    }
    plan_.level_group[lvl + 1] =
        static_cast<std::uint32_t>(plan_.group_begin.size());
  }
  plan_.group_begin.push_back(static_cast<std::uint32_t>(n));

  // Opcode runs: maximal same-opcode stretches of the plan order, split at
  // level boundaries (a fused narrow-level range may still execute several
  // runs back to back; the run iterator clamps to any [begin, end) range).
  plan_.run_begin = util::partition_opcode_runs(plan_.op, plan_.level_begin);

  opt_stats_.n_levels = plan_.n_levels();
  opt_stats_.max_level_width = plan_.max_width();
  opt_stats_.n_opcode_runs = plan_.n_runs();
  opt_stats_.max_run_length = util::max_run_length(plan_.run_begin);
}

}  // namespace hts::prob
