#pragma once

// Compiles a circuit into a flat tape of binary probabilistic operations.
//
// Gates are relaxed per Table I of the paper (AND -> P1*P2, OR ->
// 1-(1-P1)(1-P2), NOT -> 1-P, XOR -> P1+P2-2*P1*P2); n-ary gates binarize
// into chains over temporary slots.  The tape is evaluated row-independently
// across the batch, which is exactly what makes the method data-parallel
// ("GPU-friendly").
//
// After raw compilation an optional optimization pass (Options::optimize,
// default on) rewrites the tape:
//   - copy propagation: kCopy ops (Buf gates, 1-ary chains) vanish; consumers
//     read the source slot directly,
//   - exact constant folding: ops over kConst0/kConst1 operands fold when the
//     float result is bit-identical to executing them (x*1 = x, x*0 = 0,
//     x+0-x*0 = x, ...); inexact folds (e.g. OR with 1) are left alone so an
//     optimized tape always computes bit-identical activations,
//   - NOT fusion: a kNot whose operand has no other reader merges into the
//     producing kAnd/kOr/kXor as kAndNot/kOrNot/kXnor, so NAND/NOR/XNOR
//     gates cost one tape op instead of two,
//   - common-subexpression elimination: identical (op, a, b) triples —
//     commutative operands canonicalized — compute bit-identical values, so
//     later duplicates alias the first occurrence (duplicate Tseitin logic
//     collapses; one topological walk catches chains of duplicates),
//   - dead-code elimination: ops not reaching any output are dropped
//     (unconstrained paths need no learning; they harden from random V),
//   - liveness renumbering: surviving slots are compacted so n_slots — and
//     with it activation/gradient memory and the engine's cache footprint —
//     shrinks with the tape.
// Every rewrite preserves forward activations bit-for-bit; OptStats records
// what the pass did for benches and tests.
//
// After optimization (or directly after raw compilation when the optimizer
// is off) the tape is *levelized*: ops are assigned ASAP levels over the
// slot dependency DAG and regrouped into a structure-of-arrays ExecPlan.
// Ops within a level are mutually independent (every operand is produced at
// a strictly lower level), which is what lets the engine's kLevelParallel
// policy split a level's ops across threads *within* one 64-row tile
// instead of only across tiles.

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"

namespace hts::prob {

enum class OpCode : std::uint8_t {
  kCopy,
  kNot,
  kAnd,
  kOr,
  kXor,
  // Fused inverted forms, introduced by the optimizer only.  Their kernels
  // replay the exact float sequence of the two-op versions (e.g. kAndNot is
  // 1 - a*b with the product rounded first), keeping optimized and raw tapes
  // bit-identical.
  kAndNot,
  kOrNot,
  kXnor,
};

struct TapeOp {
  OpCode op;
  std::uint32_t dst;
  std::uint32_t a;
  std::uint32_t b;  // unused for kCopy/kNot
};

/// True for the opcodes that read two operand slots.
[[nodiscard]] constexpr bool op_is_binary(OpCode op) {
  return op != OpCode::kCopy && op != OpCode::kNot;
}

inline constexpr std::int32_t kNoSlot = -1;

/// What the post-compile optimization pass did (bench/tape_engine reports
/// these; the acceptance bar is a non-trivial ops_before -> ops_after drop).
/// The level fields at the bottom describe the execution plan and are filled
/// for raw tapes too; everything else is zero when Options::optimize is off.
struct OptStats {
  std::size_t ops_before = 0;
  std::size_t ops_after = 0;
  std::size_t slots_before = 0;
  std::size_t slots_after = 0;
  std::size_t copies_propagated = 0;
  std::size_t consts_folded = 0;
  std::size_t cse_eliminated = 0;
  std::size_t nots_fused = 0;
  std::size_t ops_dead = 0;
  // Execution-plan shape (see ExecPlan): level count and the widest level.
  std::size_t n_levels = 0;
  std::size_t max_level_width = 0;
  // Opcode-run shape (see ExecPlan::run_begin): how many same-opcode runs
  // the plan order produces and the longest one.  Mean run length is
  // ops_after / n_opcode_runs; longer runs mean fewer kernel-dispatch
  // switches per sweep.
  std::size_t n_opcode_runs = 0;
  std::size_t max_run_length = 0;
};

/// Levelized, structure-of-arrays view of the tape.
///
/// Ops are regrouped by ASAP level; within a level every operand slot is
/// produced at a strictly lower level, so the level's ops can execute in any
/// order (or concurrently) for the *forward* pass.  The backward pass
/// accumulates gradients into operand slots, and two ops of one level may
/// share an operand — ops are therefore clustered (union-find over operand
/// slots) into *groups* whose operand sets are disjoint across groups:
/// chunking the backward sweep along group boundaries is race-free and
/// deterministic.
struct ExecPlan {
  // Parallel arrays, one entry per tape op, ordered by (level, group).
  std::vector<OpCode> op;
  std::vector<std::uint32_t> dst;
  std::vector<std::uint32_t> a;
  std::vector<std::uint32_t> b;
  /// Level l spans plan indices [level_begin[l], level_begin[l + 1]).
  std::vector<std::uint32_t> level_begin;
  /// Group g spans plan indices [group_begin[g], group_begin[g + 1]); the
  /// groups of level l are [level_group[l], level_group[l + 1]).
  std::vector<std::uint32_t> group_begin;
  std::vector<std::uint32_t> level_group;
  /// Opcode runs: run k spans plan indices [run_begin[k], run_begin[k + 1]),
  /// every op of a run shares one opcode, and runs never cross a level
  /// boundary.  The engine dispatches kernels once per run (a run-length
  /// inner loop replaces the per-op switch); the plan's within-level
  /// (group, opcode) order is what makes runs long.
  std::vector<std::uint32_t> run_begin;

  [[nodiscard]] std::size_t n_ops() const { return op.size(); }
  [[nodiscard]] std::size_t n_runs() const {
    return run_begin.empty() ? 0 : run_begin.size() - 1;
  }
  [[nodiscard]] std::size_t n_levels() const {
    return level_begin.empty() ? 0 : level_begin.size() - 1;
  }
  [[nodiscard]] std::size_t width(std::size_t level) const {
    return level_begin[level + 1] - level_begin[level];
  }
  [[nodiscard]] std::size_t max_width() const {
    std::size_t w = 0;
    for (std::size_t l = 0; l < n_levels(); ++l) w = std::max(w, width(l));
    return w;
  }
};

class CompiledCircuit {
 public:
  struct Options {
    /// Compile only the constrained cone (ablation: unconstrained paths need
    /// no learning, so their gates can be skipped during GD and evaluated
    /// only at hardening time).
    bool cone_only = false;
    /// Run the tape optimizer after compilation (see file comment).  Off
    /// preserves the raw gate-per-gate tape for A/B tests.
    bool optimize = true;
  };

  explicit CompiledCircuit(const circuit::Circuit& circuit)
      : CompiledCircuit(circuit, Options{}) {}
  CompiledCircuit(const circuit::Circuit& circuit, Options options);

  /// The options this circuit was compiled with (the plan-IR verifier keys
  /// its optimized-only rules off Options::optimize).
  [[nodiscard]] const Options& options() const { return options_; }

  [[nodiscard]] std::size_t n_slots() const { return n_slots_; }
  [[nodiscard]] std::size_t n_circuit_inputs() const { return input_slot_.size(); }
  [[nodiscard]] const std::vector<TapeOp>& tape() const { return tape_; }

  /// Slot of circuit input i, or kNoSlot when outside the compiled cone (or
  /// optimized away because nothing constrained reads it).
  [[nodiscard]] const std::vector<std::int32_t>& input_slot() const {
    return input_slot_;
  }

  /// Slot of a circuit signal (kNoSlot if not compiled or optimized away).
  [[nodiscard]] std::int32_t signal_slot(circuit::SignalId id) const {
    return signal_slot_[id];
  }

  struct Output {
    std::uint32_t slot;
    float target;  // 0.0 or 1.0
  };
  [[nodiscard]] const std::vector<Output>& outputs() const { return outputs_; }

  struct ConstSlot {
    std::uint32_t slot;
    float value;
  };
  [[nodiscard]] const std::vector<ConstSlot>& const_slots() const {
    return const_slots_;
  }

  /// Number of executed probabilistic ops per batch row per forward pass.
  [[nodiscard]] std::size_t n_ops() const { return tape_.size(); }

  /// Optimization-pass statistics; the level fields are filled for raw
  /// tapes too, the rewrite counters only when Options::optimize is on.
  [[nodiscard]] const OptStats& opt_stats() const { return opt_stats_; }

  /// Levelized execution plan over tape(); always built (raw or optimized)
  /// so any tape can run under tensor::Policy::kLevelParallel.
  [[nodiscard]] const ExecPlan& plan() const { return plan_; }

 private:
  void optimize();
  void build_plan();

  Options options_;
  std::size_t n_slots_ = 0;
  std::vector<TapeOp> tape_;
  std::vector<std::int32_t> input_slot_;
  std::vector<std::int32_t> signal_slot_;
  std::vector<Output> outputs_;
  std::vector<ConstSlot> const_slots_;
  OptStats opt_stats_;
  ExecPlan plan_;
};

/// True for opcodes whose operands may be swapped without changing the
/// kernel's float result bit-for-bit (multiplication and addition are IEEE
/// commutative, and the XOR kernel rounds the product once either way).
[[nodiscard]] constexpr bool op_is_commutative(OpCode op) {
  return op == OpCode::kAnd || op == OpCode::kOr || op == OpCode::kXor ||
         op == OpCode::kAndNot || op == OpCode::kOrNot || op == OpCode::kXnor;
}

}  // namespace hts::prob
