#pragma once

// Compiles a circuit into a flat tape of binary probabilistic operations.
//
// Gates are relaxed per Table I of the paper (AND -> P1*P2, OR ->
// 1-(1-P1)(1-P2), NOT -> 1-P, XOR -> P1+P2-2*P1*P2); n-ary gates binarize
// into chains over temporary slots, NAND/NOR/XNOR append a NOT.  The tape is
// evaluated row-independently across the batch, which is exactly what makes
// the method data-parallel ("GPU-friendly").

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"

namespace hts::prob {

enum class OpCode : std::uint8_t { kCopy, kNot, kAnd, kOr, kXor };

struct TapeOp {
  OpCode op;
  std::uint32_t dst;
  std::uint32_t a;
  std::uint32_t b;  // unused for kCopy/kNot
};

inline constexpr std::int32_t kNoSlot = -1;

class CompiledCircuit {
 public:
  struct Options {
    /// Compile only the constrained cone (ablation: unconstrained paths need
    /// no learning, so their gates can be skipped during GD and evaluated
    /// only at hardening time).
    bool cone_only = false;
  };

  explicit CompiledCircuit(const circuit::Circuit& circuit)
      : CompiledCircuit(circuit, Options{}) {}
  CompiledCircuit(const circuit::Circuit& circuit, Options options);

  [[nodiscard]] std::size_t n_slots() const { return n_slots_; }
  [[nodiscard]] std::size_t n_circuit_inputs() const { return input_slot_.size(); }
  [[nodiscard]] const std::vector<TapeOp>& tape() const { return tape_; }

  /// Slot of circuit input i, or kNoSlot when outside the compiled cone.
  [[nodiscard]] const std::vector<std::int32_t>& input_slot() const {
    return input_slot_;
  }

  /// Slot of a circuit signal (kNoSlot if not compiled).
  [[nodiscard]] std::int32_t signal_slot(circuit::SignalId id) const {
    return signal_slot_[id];
  }

  struct Output {
    std::uint32_t slot;
    float target;  // 0.0 or 1.0
  };
  [[nodiscard]] const std::vector<Output>& outputs() const { return outputs_; }

  struct ConstSlot {
    std::uint32_t slot;
    float value;
  };
  [[nodiscard]] const std::vector<ConstSlot>& const_slots() const {
    return const_slots_;
  }

  /// Number of executed probabilistic ops per batch row per forward pass.
  [[nodiscard]] std::size_t n_ops() const { return tape_.size(); }

 private:
  std::size_t n_slots_ = 0;
  std::vector<TapeOp> tape_;
  std::vector<std::int32_t> input_slot_;
  std::vector<std::int32_t> signal_slot_;
  std::vector<Output> outputs_;
  std::vector<ConstSlot> const_slots_;
};

}  // namespace hts::prob
