#include "prob/engine.hpp"

#include <bit>
#include <cmath>

#include "tensor/simd.hpp"

namespace hts::prob {

// Storage is tiled: the batch is cut into tiles of kTileRows rows, and each
// tile stores all of its slots contiguously ([tile][slot][row-in-tile]).
// A GD iteration touches one tile at a time, so the working set per thread
// is slots * kTileRows * 4 bytes * 2 (activations + gradients) — cache
// resident for typical circuits — instead of streaming the whole batch per
// op.  kTileRows == 64 also makes hardening emit exactly one machine word
// per (input, tile).
//
// Kernels process a tile as kTileRows / 8 width-8 SIMD vectors (see
// tensor/simd.hpp).  Per lane every kernel performs the same float
// operations in the same order as the scalar reference expressions from
// Table I, so vectorization changes no results; the only approximation in
// the engine is the optional fast sigmoid, which Config::fast_sigmoid
// switches off.  The library builds with -ffp-contract=off so fused ops
// (kAndNot = 1 - a*b, ...) round exactly like their two-op expansions.

namespace {

constexpr std::size_t kTileRows = prob::Engine::kTileRows;

using tensor::simd::broadcast;
using tensor::simd::f32x8;
using tensor::simd::load;
using tensor::simd::store;

constexpr std::size_t kStep = tensor::simd::kWidth;
static_assert(kTileRows % kStep == 0);

}  // namespace

Engine::Engine(const CompiledCircuit& compiled, Config config)
    : compiled_(&compiled), config_(config) {
  HTS_CHECK(config_.batch > 0);
  n_tiles_ = (config_.batch + kTileRows - 1) / kTileRows;
  const std::size_t padded = n_tiles_ * kTileRows;
  v_.resize(compiled_->n_circuit_inputs() * padded);
  activations_.resize(compiled_->n_slots() * padded);
  gradients_.resize(compiled_->n_slots() * padded);
  v_grad_.resize(compiled_->n_circuit_inputs() * padded);
  tile_loss_.assign(n_tiles_, 0.0);
  // Constant slots never change: fill once, per tile.
  for (const CompiledCircuit::ConstSlot& c : compiled_->const_slots()) {
    for (std::size_t t = 0; t < n_tiles_; ++t) {
      float* row = activations_.data() +
                   (t * compiled_->n_slots() + c.slot) * kTileRows;
      std::fill(row, row + kTileRows, c.value);
    }
  }
}

std::size_t Engine::act_index(std::uint32_t slot, std::size_t row) const {
  const std::size_t tile = row / kTileRows;
  return (tile * compiled_->n_slots() + slot) * kTileRows + (row % kTileRows);
}

std::size_t Engine::v_index(std::size_t input, std::size_t row) const {
  const std::size_t tile = row / kTileRows;
  return (tile * compiled_->n_circuit_inputs() + input) * kTileRows +
         (row % kTileRows);
}

void Engine::randomize(util::Rng& rng) {
  for (std::size_t i = 0; i < v_.size(); ++i) {
    v_[i] = static_cast<float>(rng.next_gaussian()) * config_.init_std;
  }
}

std::size_t Engine::rerandomize_rows(const std::vector<std::uint64_t>& mask,
                                     util::Rng& rng) {
  const std::size_t n_inputs = compiled_->n_circuit_inputs();
  std::size_t n_rows = 0;
  const std::size_t words = std::min(mask.size(), n_tiles_);
  for (std::size_t t = 0; t < words; ++t) {
    std::uint64_t bits = mask[t];
    while (bits != 0) {
      const auto r = static_cast<std::size_t>(std::countr_zero(bits));
      bits &= bits - 1;
      float* v = v_.data() + t * n_inputs * kTileRows + r;
      for (std::size_t i = 0; i < n_inputs; ++i) {
        v[i * kTileRows] =
            static_cast<float>(rng.next_gaussian()) * config_.init_std;
      }
      ++n_rows;
    }
  }
  return n_rows;
}

void Engine::process_tile(std::size_t tile, bool with_grad, double* loss_accum) {
  const std::size_t n_slots = compiled_->n_slots();
  const std::size_t n_inputs = compiled_->n_circuit_inputs();
  const auto& tape = compiled_->tape();
  float* act = activations_.data() + tile * n_slots * kTileRows;
  float* grad = gradients_.data() + tile * n_slots * kTileRows;
  float* v = v_.data() + tile * n_inputs * kTileRows;
  // Rows past the batch in the final tile are computed but never harvested
  // and excluded from the loss.
  const std::size_t rows =
      std::min(kTileRows, config_.batch - tile * kTileRows);

  const f32x8 one = broadcast(1.0f);
  const f32x8 two = broadcast(2.0f);

  // Embed: input slots get sigmoid(V).
  const auto& input_slots = compiled_->input_slot();
  for (std::size_t i = 0; i < n_inputs; ++i) {
    if (input_slots[i] == kNoSlot) continue;
    const float* v_row = v + i * kTileRows;
    float* a_row = act + static_cast<std::size_t>(input_slots[i]) * kTileRows;
    if (config_.fast_sigmoid) {
      for (std::size_t x = 0; x < kTileRows; x += kStep) {
        store(a_row + x, tensor::simd::fast_sigmoid(load(v_row + x)));
      }
    } else {
      for (std::size_t r = 0; r < kTileRows; ++r) {
        a_row[r] = 1.0f / (1.0f + std::exp(-v_row[r]));
      }
    }
  }

  // Forward sweep.
  for (const TapeOp& op : tape) {
    float* dst = act + static_cast<std::size_t>(op.dst) * kTileRows;
    const float* a = act + static_cast<std::size_t>(op.a) * kTileRows;
    const float* b = act + static_cast<std::size_t>(op.b) * kTileRows;
    switch (op.op) {
      case OpCode::kCopy:
        for (std::size_t x = 0; x < kTileRows; x += kStep) {
          store(dst + x, load(a + x));
        }
        break;
      case OpCode::kNot:
        for (std::size_t x = 0; x < kTileRows; x += kStep) {
          store(dst + x, one - load(a + x));
        }
        break;
      case OpCode::kAnd:
        for (std::size_t x = 0; x < kTileRows; x += kStep) {
          store(dst + x, load(a + x) * load(b + x));
        }
        break;
      case OpCode::kOr:
        for (std::size_t x = 0; x < kTileRows; x += kStep) {
          const f32x8 va = load(a + x);
          const f32x8 vb = load(b + x);
          store(dst + x, va + vb - va * vb);
        }
        break;
      case OpCode::kXor:
        for (std::size_t x = 0; x < kTileRows; x += kStep) {
          const f32x8 va = load(a + x);
          const f32x8 vb = load(b + x);
          store(dst + x, va + vb - two * va * vb);
        }
        break;
      case OpCode::kAndNot:
        for (std::size_t x = 0; x < kTileRows; x += kStep) {
          store(dst + x, one - load(a + x) * load(b + x));
        }
        break;
      case OpCode::kOrNot:
        for (std::size_t x = 0; x < kTileRows; x += kStep) {
          const f32x8 va = load(a + x);
          const f32x8 vb = load(b + x);
          store(dst + x, one - (va + vb - va * vb));
        }
        break;
      case OpCode::kXnor:
        for (std::size_t x = 0; x < kTileRows; x += kStep) {
          const f32x8 va = load(a + x);
          const f32x8 vb = load(b + x);
          store(dst + x, one - (va + vb - two * va * vb));
        }
        break;
    }
  }

  // Loss (optional, over valid rows only).
  if (loss_accum != nullptr) {
    double local_loss = 0.0;
    for (const CompiledCircuit::Output& out : compiled_->outputs()) {
      const float* y = act + static_cast<std::size_t>(out.slot) * kTileRows;
      for (std::size_t r = 0; r < rows; ++r) {
        const double diff = static_cast<double>(y[r]) - out.target;
        local_loss += diff * diff;
      }
    }
    *loss_accum = local_loss;
  }
  if (!with_grad) return;

  // Zero the tile's gradients, then seed dL/dy = 2 (y - t).
  std::fill(grad, grad + n_slots * kTileRows, 0.0f);
  for (const CompiledCircuit::Output& out : compiled_->outputs()) {
    const float* y = act + static_cast<std::size_t>(out.slot) * kTileRows;
    float* g_row = grad + static_cast<std::size_t>(out.slot) * kTileRows;
    const f32x8 target = broadcast(out.target);
    for (std::size_t x = 0; x < kTileRows; x += kStep) {
      store(g_row + x, load(g_row + x) + two * (load(y + x) - target));
    }
  }

  // Backward sweep (Table I derivatives; fused ops negate the upstream
  // gradient exactly as their trailing NOT would have).
  for (auto it = tape.rbegin(); it != tape.rend(); ++it) {
    const TapeOp& op = *it;
    const float* gy = grad + static_cast<std::size_t>(op.dst) * kTileRows;
    float* ga = grad + static_cast<std::size_t>(op.a) * kTileRows;
    const float* a = act + static_cast<std::size_t>(op.a) * kTileRows;
    float* gb = grad + static_cast<std::size_t>(op.b) * kTileRows;
    const float* bv = act + static_cast<std::size_t>(op.b) * kTileRows;
    switch (op.op) {
      case OpCode::kCopy:
        for (std::size_t x = 0; x < kTileRows; x += kStep) {
          store(ga + x, load(ga + x) + load(gy + x));
        }
        break;
      case OpCode::kNot:
        for (std::size_t x = 0; x < kTileRows; x += kStep) {
          store(ga + x, load(ga + x) - load(gy + x));
        }
        break;
      case OpCode::kAnd:
        for (std::size_t x = 0; x < kTileRows; x += kStep) {
          const f32x8 g = load(gy + x);
          store(ga + x, load(ga + x) + g * load(bv + x));
          store(gb + x, load(gb + x) + g * load(a + x));
        }
        break;
      case OpCode::kOr:
        for (std::size_t x = 0; x < kTileRows; x += kStep) {
          const f32x8 g = load(gy + x);
          store(ga + x, load(ga + x) + g * (one - load(bv + x)));
          store(gb + x, load(gb + x) + g * (one - load(a + x)));
        }
        break;
      case OpCode::kXor:
        for (std::size_t x = 0; x < kTileRows; x += kStep) {
          const f32x8 g = load(gy + x);
          store(ga + x, load(ga + x) + g * (one - two * load(bv + x)));
          store(gb + x, load(gb + x) + g * (one - two * load(a + x)));
        }
        break;
      case OpCode::kAndNot:
        for (std::size_t x = 0; x < kTileRows; x += kStep) {
          const f32x8 g = -load(gy + x);
          store(ga + x, load(ga + x) + g * load(bv + x));
          store(gb + x, load(gb + x) + g * load(a + x));
        }
        break;
      case OpCode::kOrNot:
        for (std::size_t x = 0; x < kTileRows; x += kStep) {
          const f32x8 g = -load(gy + x);
          store(ga + x, load(ga + x) + g * (one - load(bv + x)));
          store(gb + x, load(gb + x) + g * (one - load(a + x)));
        }
        break;
      case OpCode::kXnor:
        for (std::size_t x = 0; x < kTileRows; x += kStep) {
          const f32x8 g = -load(gy + x);
          store(ga + x, load(ga + x) + g * (one - two * load(bv + x)));
          store(gb + x, load(gb + x) + g * (one - two * load(a + x)));
        }
        break;
    }
  }

  // Chain through the sigmoid embedding and take the GD step (Eq. 10).
  const f32x8 lr = broadcast(config_.learning_rate);
  for (std::size_t i = 0; i < n_inputs; ++i) {
    if (input_slots[i] == kNoSlot) continue;
    const float* p = act + static_cast<std::size_t>(input_slots[i]) * kTileRows;
    const float* gp = grad + static_cast<std::size_t>(input_slots[i]) * kTileRows;
    float* v_row = v + i * kTileRows;
    for (std::size_t x = 0; x < kTileRows; x += kStep) {
      const f32x8 pv = load(p + x);
      const f32x8 gv = load(gp + x) * pv * (one - pv);
      store(v_row + x, load(v_row + x) - lr * gv);
    }
  }
}

void Engine::sweep(bool with_grad) {
  const bool want_loss = config_.compute_loss || !with_grad;
  tensor::parallel_for(config_.policy, n_tiles_,
                       [&](std::size_t begin, std::size_t end) {
                         for (std::size_t t = begin; t < end; ++t) {
                           process_tile(t, with_grad,
                                        want_loss ? &tile_loss_[t] : nullptr);
                         }
                       });
  if (want_loss) {
    // Reduced in tile order, so the sum is policy-independent.
    double total_loss = 0.0;
    for (const double tile_loss : tile_loss_) total_loss += tile_loss;
    last_loss_ = total_loss;
  }
}

void Engine::run_iteration() { sweep(/*with_grad=*/true); }

void Engine::forward_only() { sweep(/*with_grad=*/false); }

void Engine::harden(std::vector<std::uint64_t>& packed_out) const {
  const std::size_t n = compiled_->n_circuit_inputs();
  packed_out.assign(n * n_tiles_, 0);
  for (std::size_t t = 0; t < n_tiles_; ++t) {
    const float* v = v_.data() + t * n * kTileRows;
    // Padding rows (>= batch) never escape into the packed words.
    const std::size_t rows = std::min(kTileRows, config_.batch - t * kTileRows);
    const std::uint64_t row_mask =
        rows < 64 ? (1ULL << rows) - 1 : ~0ULL;
    for (std::size_t i = 0; i < n; ++i) {
      const float* v_row = v + i * kTileRows;
      std::uint64_t word = 0;
      for (std::size_t r = 0; r < kTileRows; ++r) {
        if (v_row[r] > 0.0f) word |= (1ULL << r);
      }
      packed_out[i * n_tiles_ + t] = word & row_mask;
    }
  }
}

float Engine::activation(std::uint32_t slot, std::size_t row) const {
  return activations_[act_index(slot, row)];
}

float Engine::v_value(std::size_t input, std::size_t row) const {
  return v_[v_index(input, row)];
}

void Engine::set_v(std::size_t input, std::size_t row, float value) {
  v_[v_index(input, row)] = value;
}

std::size_t Engine::memory_bytes() const {
  return (v_.size() + activations_.size() + gradients_.size() + v_grad_.size()) *
         sizeof(float);
}

std::size_t Engine::predicted_bytes(const CompiledCircuit& compiled,
                                    std::size_t batch) {
  const std::size_t padded =
      (batch + kTileRows - 1) / kTileRows * kTileRows;
  // v_ + v_grad_ (inputs) and activations_ + gradients_ (slots).
  return (2 * compiled.n_circuit_inputs() + 2 * compiled.n_slots()) * padded *
         sizeof(float);
}

}  // namespace hts::prob
