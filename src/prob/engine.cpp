#include "prob/engine.hpp"

#include <cmath>
#include <mutex>

namespace hts::prob {

// Storage is tiled: the batch is cut into tiles of kTileRows rows, and each
// tile stores all of its slots contiguously ([tile][slot][row-in-tile]).
// A GD iteration touches one tile at a time, so the working set per thread
// is slots * kTileRows * 4 bytes * 2 (activations + gradients) — cache
// resident for typical circuits — instead of streaming the whole batch per
// op.  kTileRows == 64 also makes hardening emit exactly one machine word
// per (input, tile).

namespace {
constexpr std::size_t kTileRows = prob::Engine::kTileRows;
}

Engine::Engine(const CompiledCircuit& compiled, Config config)
    : compiled_(&compiled), config_(config) {
  HTS_CHECK(config_.batch > 0);
  n_tiles_ = (config_.batch + kTileRows - 1) / kTileRows;
  const std::size_t padded = n_tiles_ * kTileRows;
  v_.resize(compiled_->n_circuit_inputs() * padded);
  activations_.resize(compiled_->n_slots() * padded);
  gradients_.resize(compiled_->n_slots() * padded);
  v_grad_.resize(compiled_->n_circuit_inputs() * padded);
  // Constant slots never change: fill once, per tile.
  for (const CompiledCircuit::ConstSlot& c : compiled_->const_slots()) {
    for (std::size_t t = 0; t < n_tiles_; ++t) {
      float* row = activations_.data() +
                   (t * compiled_->n_slots() + c.slot) * kTileRows;
      std::fill(row, row + kTileRows, c.value);
    }
  }
}

std::size_t Engine::act_index(std::uint32_t slot, std::size_t row) const {
  const std::size_t tile = row / kTileRows;
  return (tile * compiled_->n_slots() + slot) * kTileRows + (row % kTileRows);
}

std::size_t Engine::v_index(std::size_t input, std::size_t row) const {
  const std::size_t tile = row / kTileRows;
  return (tile * compiled_->n_circuit_inputs() + input) * kTileRows +
         (row % kTileRows);
}

void Engine::randomize(util::Rng& rng) {
  for (std::size_t i = 0; i < v_.size(); ++i) {
    v_[i] = static_cast<float>(rng.next_gaussian()) * config_.init_std;
  }
}

void Engine::process_tile(std::size_t tile, bool with_grad, double* loss_accum) {
  const std::size_t n_slots = compiled_->n_slots();
  const std::size_t n_inputs = compiled_->n_circuit_inputs();
  const auto& tape = compiled_->tape();
  float* act = activations_.data() + tile * n_slots * kTileRows;
  float* grad = gradients_.data() + tile * n_slots * kTileRows;
  float* v = v_.data() + tile * n_inputs * kTileRows;
  // Rows past the batch in the final tile are computed but never harvested
  // and excluded from the loss.
  const std::size_t rows =
      std::min(kTileRows, config_.batch - tile * kTileRows);

  // Embed: input slots get sigmoid(V).
  const auto& input_slots = compiled_->input_slot();
  for (std::size_t i = 0; i < n_inputs; ++i) {
    if (input_slots[i] == kNoSlot) continue;
    const float* v_row = v + i * kTileRows;
    float* a_row = act + static_cast<std::size_t>(input_slots[i]) * kTileRows;
    for (std::size_t r = 0; r < kTileRows; ++r) {
      a_row[r] = 1.0f / (1.0f + std::exp(-v_row[r]));
    }
  }

  // Forward sweep.
  for (const TapeOp& op : tape) {
    float* dst = act + static_cast<std::size_t>(op.dst) * kTileRows;
    const float* a = act + static_cast<std::size_t>(op.a) * kTileRows;
    const float* b = act + static_cast<std::size_t>(op.b) * kTileRows;
    switch (op.op) {
      case OpCode::kCopy:
        for (std::size_t r = 0; r < kTileRows; ++r) dst[r] = a[r];
        break;
      case OpCode::kNot:
        for (std::size_t r = 0; r < kTileRows; ++r) dst[r] = 1.0f - a[r];
        break;
      case OpCode::kAnd:
        for (std::size_t r = 0; r < kTileRows; ++r) dst[r] = a[r] * b[r];
        break;
      case OpCode::kOr:
        for (std::size_t r = 0; r < kTileRows; ++r) {
          dst[r] = a[r] + b[r] - a[r] * b[r];
        }
        break;
      case OpCode::kXor:
        for (std::size_t r = 0; r < kTileRows; ++r) {
          dst[r] = a[r] + b[r] - 2.0f * a[r] * b[r];
        }
        break;
    }
  }

  // Loss (optional, over valid rows only).
  if (loss_accum != nullptr) {
    double local_loss = 0.0;
    for (const CompiledCircuit::Output& out : compiled_->outputs()) {
      const float* y = act + static_cast<std::size_t>(out.slot) * kTileRows;
      for (std::size_t r = 0; r < rows; ++r) {
        const double diff = static_cast<double>(y[r]) - out.target;
        local_loss += diff * diff;
      }
    }
    *loss_accum = local_loss;
  }
  if (!with_grad) return;

  // Zero the tile's gradients, then seed dL/dy = 2 (y - t).
  std::fill(grad, grad + n_slots * kTileRows, 0.0f);
  for (const CompiledCircuit::Output& out : compiled_->outputs()) {
    const float* y = act + static_cast<std::size_t>(out.slot) * kTileRows;
    float* g_row = grad + static_cast<std::size_t>(out.slot) * kTileRows;
    for (std::size_t r = 0; r < kTileRows; ++r) {
      g_row[r] += 2.0f * (y[r] - out.target);
    }
  }

  // Backward sweep (Table I derivatives).
  for (auto it = tape.rbegin(); it != tape.rend(); ++it) {
    const TapeOp& op = *it;
    const float* gy = grad + static_cast<std::size_t>(op.dst) * kTileRows;
    float* ga = grad + static_cast<std::size_t>(op.a) * kTileRows;
    const float* a = act + static_cast<std::size_t>(op.a) * kTileRows;
    switch (op.op) {
      case OpCode::kCopy:
        for (std::size_t r = 0; r < kTileRows; ++r) ga[r] += gy[r];
        break;
      case OpCode::kNot:
        for (std::size_t r = 0; r < kTileRows; ++r) ga[r] -= gy[r];
        break;
      case OpCode::kAnd: {
        float* gb = grad + static_cast<std::size_t>(op.b) * kTileRows;
        const float* bv = act + static_cast<std::size_t>(op.b) * kTileRows;
        for (std::size_t r = 0; r < kTileRows; ++r) {
          ga[r] += gy[r] * bv[r];
          gb[r] += gy[r] * a[r];
        }
        break;
      }
      case OpCode::kOr: {
        float* gb = grad + static_cast<std::size_t>(op.b) * kTileRows;
        const float* bv = act + static_cast<std::size_t>(op.b) * kTileRows;
        for (std::size_t r = 0; r < kTileRows; ++r) {
          ga[r] += gy[r] * (1.0f - bv[r]);
          gb[r] += gy[r] * (1.0f - a[r]);
        }
        break;
      }
      case OpCode::kXor: {
        float* gb = grad + static_cast<std::size_t>(op.b) * kTileRows;
        const float* bv = act + static_cast<std::size_t>(op.b) * kTileRows;
        for (std::size_t r = 0; r < kTileRows; ++r) {
          ga[r] += gy[r] * (1.0f - 2.0f * bv[r]);
          gb[r] += gy[r] * (1.0f - 2.0f * a[r]);
        }
        break;
      }
    }
  }

  // Chain through the sigmoid embedding and take the GD step (Eq. 10).
  for (std::size_t i = 0; i < n_inputs; ++i) {
    if (input_slots[i] == kNoSlot) continue;
    const float* p = act + static_cast<std::size_t>(input_slots[i]) * kTileRows;
    const float* gp = grad + static_cast<std::size_t>(input_slots[i]) * kTileRows;
    float* v_row = v + i * kTileRows;
    for (std::size_t r = 0; r < kTileRows; ++r) {
      const float gv = gp[r] * p[r] * (1.0f - p[r]);
      v_row[r] -= config_.learning_rate * gv;
    }
  }
}

void Engine::sweep(bool with_grad) {
  std::mutex loss_mutex;
  double total_loss = 0.0;
  const bool want_loss = config_.compute_loss || !with_grad;
  tensor::parallel_for(config_.policy, n_tiles_,
                       [&](std::size_t begin, std::size_t end) {
                         double chunk_loss = 0.0;
                         for (std::size_t t = begin; t < end; ++t) {
                           double tile_loss = 0.0;
                           process_tile(t, with_grad,
                                        want_loss ? &tile_loss : nullptr);
                           chunk_loss += tile_loss;
                         }
                         if (want_loss) {
                           const std::lock_guard<std::mutex> lock(loss_mutex);
                           total_loss += chunk_loss;
                         }
                       });
  if (want_loss) last_loss_ = total_loss;
}

void Engine::run_iteration() { sweep(/*with_grad=*/true); }

void Engine::forward_only() { sweep(/*with_grad=*/false); }

void Engine::harden(std::vector<std::uint64_t>& packed_out) const {
  const std::size_t n = compiled_->n_circuit_inputs();
  packed_out.assign(n * n_tiles_, 0);
  for (std::size_t t = 0; t < n_tiles_; ++t) {
    const float* v = v_.data() + t * n * kTileRows;
    for (std::size_t i = 0; i < n; ++i) {
      const float* v_row = v + i * kTileRows;
      std::uint64_t word = 0;
      for (std::size_t r = 0; r < kTileRows; ++r) {
        if (v_row[r] > 0.0f) word |= (1ULL << r);
      }
      packed_out[i * n_tiles_ + t] = word;
    }
  }
}

float Engine::activation(std::uint32_t slot, std::size_t row) const {
  return activations_[act_index(slot, row)];
}

float Engine::v_value(std::size_t input, std::size_t row) const {
  return v_[v_index(input, row)];
}

void Engine::set_v(std::size_t input, std::size_t row, float value) {
  v_[v_index(input, row)] = value;
}

std::size_t Engine::memory_bytes() const {
  return (v_.size() + activations_.size() + gradients_.size() + v_grad_.size()) *
         sizeof(float);
}

std::size_t Engine::predicted_bytes(const CompiledCircuit& compiled,
                                    std::size_t batch) {
  const std::size_t padded =
      (batch + kTileRows - 1) / kTileRows * kTileRows;
  // v_ + v_grad_ (inputs) and activations_ + gradients_ (slots).
  return (2 * compiled.n_circuit_inputs() + 2 * compiled.n_slots()) * padded *
         sizeof(float);
}

}  // namespace hts::prob
