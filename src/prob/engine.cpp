#include "prob/engine.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "tensor/simd.hpp"

namespace hts::prob {

// Storage is tiled: the batch is cut into tiles of kTileRows rows, and each
// tile stores all of its slots contiguously ([tile][slot][row-in-tile]).
// A GD iteration touches one tile at a time, so the working set per thread
// is slots * kTileRows * 4 bytes * 2 (activations + gradients) — cache
// resident for typical circuits — instead of streaming the whole batch per
// op.  kTileRows == 64 also makes hardening emit exactly one machine word
// per (input, tile).
//
// Kernels process a tile as kTileRows / 8 width-8 SIMD vectors (see
// tensor/simd.hpp).  Per lane every kernel performs the same float
// operations in the same order as the scalar reference expressions from
// Table I, so vectorization changes no results; the only approximation in
// the engine is the optional fast sigmoid, which Config::fast_sigmoid
// switches off.  The library builds with -ffp-contract=off so fused ops
// (kAndNot = 1 - a*b, ...) round exactly like their two-op expansions.
//
// Two sweep drivers share the opcode-batched kernels below:
//   - the per-tile driver (kSerial / kDataParallel) walks the whole plan
//     linearly inside each tile, parallelizing across tiles only;
//   - the level driver (kLevelParallel) walks the same plan stage by stage,
//     splitting wide levels into (tile x op-range) work items so parallelism
//     also scales with level width.
// Every policy executes the identical plan-order float sequence (forward in
// plan order, backward in reverse plan order), so *all* results — forward
// activations, loss, gradients, and V after descent — are bit-identical
// across policies and thread counts.
//
// Kernel dispatch is run-batched: the plan clusters same-opcode ops into
// runs (ExecPlan::run_begin), and a sweep switches on the opcode once per
// run, then streams the run body through a tight per-opcode inner loop —
// the branch predictor sees one stable target instead of a per-op switch.

namespace {

constexpr std::size_t kTileRows = prob::Engine::kTileRows;

using tensor::simd::broadcast;
using tensor::simd::f32x8;
using tensor::simd::load;
using tensor::simd::store;

constexpr std::size_t kStep = tensor::simd::kWidth;
static_assert(kTileRows % kStep == 0);

/// Streams plan ops [begin, end) — all sharing one opcode — through a
/// forward kernel expression.  The kernel sees one (a, b) vector pair and
/// returns the destination vector; its float sequence must match the scalar
/// Table I reference exactly (the library builds -ffp-contract=off, so the
/// lambdas round like the historical per-op kernels).
template <typename Kernel>
inline void forward_loop(const ExecPlan& plan, std::uint32_t begin,
                         std::uint32_t end, float* act, Kernel&& kernel) {
  for (std::uint32_t i = begin; i < end; ++i) {
    float* dst = act + static_cast<std::size_t>(plan.dst[i]) * kTileRows;
    const float* a = act + static_cast<std::size_t>(plan.a[i]) * kTileRows;
    const float* b = act + static_cast<std::size_t>(plan.b[i]) * kTileRows;
    for (std::size_t x = 0; x < kTileRows; x += kStep) {
      store(dst + x, kernel(load(a + x), load(b + x)));
    }
  }
}

/// Forward kernels for one same-opcode run over one tile (Table I
/// relaxations): one switch per run, not per op.
inline void forward_run(OpCode code, const ExecPlan& plan, std::uint32_t begin,
                        std::uint32_t end, float* act) {
  const f32x8 one = broadcast(1.0f);
  const f32x8 two = broadcast(2.0f);
  switch (code) {
    case OpCode::kCopy:
      forward_loop(plan, begin, end, act, [](f32x8 a, f32x8) { return a; });
      break;
    case OpCode::kNot:
      forward_loop(plan, begin, end, act,
                   [one](f32x8 a, f32x8) { return one - a; });
      break;
    case OpCode::kAnd:
      forward_loop(plan, begin, end, act,
                   [](f32x8 a, f32x8 b) { return a * b; });
      break;
    case OpCode::kOr:
      forward_loop(plan, begin, end, act,
                   [](f32x8 a, f32x8 b) { return a + b - a * b; });
      break;
    case OpCode::kXor:
      forward_loop(plan, begin, end, act,
                   [two](f32x8 a, f32x8 b) { return a + b - two * a * b; });
      break;
    case OpCode::kAndNot:
      forward_loop(plan, begin, end, act,
                   [one](f32x8 a, f32x8 b) { return one - a * b; });
      break;
    case OpCode::kOrNot:
      forward_loop(plan, begin, end, act,
                   [one](f32x8 a, f32x8 b) { return one - (a + b - a * b); });
      break;
    case OpCode::kXnor:
      forward_loop(
          plan, begin, end, act,
          [one, two](f32x8 a, f32x8 b) { return one - (a + b - two * a * b); });
      break;
  }
}

/// Reverse-streams plan ops (begin, end] backward for the unary opcodes,
/// which accumulate only into the single operand's gradient.
template <typename Kernel>
inline void backward_unary_loop(const ExecPlan& plan, std::uint32_t begin,
                                std::uint32_t end, float* grad,
                                Kernel&& kernel) {
  for (std::uint32_t i = end; i-- > begin;) {
    const float* gy = grad + static_cast<std::size_t>(plan.dst[i]) * kTileRows;
    float* ga = grad + static_cast<std::size_t>(plan.a[i]) * kTileRows;
    for (std::size_t x = 0; x < kTileRows; x += kStep) {
      store(ga + x, kernel(load(ga + x), load(gy + x)));
    }
  }
}

/// Reverse-streams a binary run backward.  `da`/`db` produce the partial
/// derivatives from the operand activations; Negate folds a fused op's
/// trailing NOT into the upstream gradient.  Per vector chunk the `a`
/// gradient is stored before the `b` gradient is loaded, preserving the
/// historical sequence when an op reads the same slot twice.
template <bool Negate, typename Da, typename Db>
inline void backward_binary_loop(const ExecPlan& plan, std::uint32_t begin,
                                 std::uint32_t end, const float* act,
                                 float* grad, Da&& da, Db&& db) {
  for (std::uint32_t i = end; i-- > begin;) {
    const float* gy = grad + static_cast<std::size_t>(plan.dst[i]) * kTileRows;
    float* ga = grad + static_cast<std::size_t>(plan.a[i]) * kTileRows;
    float* gb = grad + static_cast<std::size_t>(plan.b[i]) * kTileRows;
    const float* a = act + static_cast<std::size_t>(plan.a[i]) * kTileRows;
    const float* bv = act + static_cast<std::size_t>(plan.b[i]) * kTileRows;
    for (std::size_t x = 0; x < kTileRows; x += kStep) {
      const f32x8 g = Negate ? -load(gy + x) : load(gy + x);
      store(ga + x, load(ga + x) + g * da(load(bv + x)));
      store(gb + x, load(gb + x) + g * db(load(a + x)));
    }
  }
}

/// Backward kernels for one same-opcode run (Table I derivatives; fused ops
/// negate the upstream gradient exactly as their trailing NOT would have).
/// Ops within the run unwind in reverse plan order.
inline void backward_run(OpCode code, const ExecPlan& plan, std::uint32_t begin,
                         std::uint32_t end, const float* act, float* grad) {
  const f32x8 one = broadcast(1.0f);
  const f32x8 two = broadcast(2.0f);
  const auto ident = [](f32x8 v) { return v; };
  const auto complement = [one](f32x8 v) { return one - v; };
  const auto xor_term = [one, two](f32x8 v) { return one - two * v; };
  switch (code) {
    case OpCode::kCopy:
      backward_unary_loop(plan, begin, end, grad,
                          [](f32x8 ga, f32x8 gy) { return ga + gy; });
      break;
    case OpCode::kNot:
      backward_unary_loop(plan, begin, end, grad,
                          [](f32x8 ga, f32x8 gy) { return ga - gy; });
      break;
    case OpCode::kAnd:
      backward_binary_loop<false>(plan, begin, end, act, grad, ident, ident);
      break;
    case OpCode::kOr:
      backward_binary_loop<false>(plan, begin, end, act, grad, complement,
                                  complement);
      break;
    case OpCode::kXor:
      backward_binary_loop<false>(plan, begin, end, act, grad, xor_term,
                                  xor_term);
      break;
    case OpCode::kAndNot:
      backward_binary_loop<true>(plan, begin, end, act, grad, ident, ident);
      break;
    case OpCode::kOrNot:
      backward_binary_loop<true>(plan, begin, end, act, grad, complement,
                                 complement);
      break;
    case OpCode::kXnor:
      backward_binary_loop<true>(plan, begin, end, act, grad, xor_term,
                                 xor_term);
      break;
  }
}

}  // namespace

Engine::Engine(const CompiledCircuit& compiled, Config config)
    : compiled_(&compiled), config_(config) {
  HTS_CHECK(config_.batch > 0);
  n_tiles_ = (config_.batch + kTileRows - 1) / kTileRows;
  const std::size_t padded = n_tiles_ * kTileRows;
  v_.resize(compiled_->n_circuit_inputs() * padded);
  activations_.resize(compiled_->n_slots() * padded);
  gradients_.resize(compiled_->n_slots() * padded);
  v_grad_.resize(compiled_->n_circuit_inputs() * padded);
  tile_loss_.assign(n_tiles_, 0.0);
  // Resolve bias terms once: in-cone inputs become slot terms, cone-free
  // inputs become direct V-side terms.  Zero-weight and out-of-range
  // entries drop here, so the hot loops below never re-test them.
  for (const Config::InputBias& bias : config_.input_biases) {
    if (bias.weight == 0.0f || bias.input >= compiled_->n_circuit_inputs()) {
      continue;
    }
    const std::uint32_t slot = compiled_->input_slot()[bias.input];
    if (slot == kNoSlot) {
      free_biases_.push_back({bias.input, bias.target, bias.weight});
    } else {
      slot_biases_.push_back({slot, bias.target, bias.weight});
    }
  }
  // Constant slots never change: fill once, per tile.
  for (const CompiledCircuit::ConstSlot& c : compiled_->const_slots()) {
    for (std::size_t t = 0; t < n_tiles_; ++t) {
      float* row = activations_.data() +
                   (t * compiled_->n_slots() + c.slot) * kTileRows;
      std::fill(row, row + kTileRows, c.value);
    }
  }
  if (config_.policy == tensor::Policy::kLevelParallel) build_schedule();
}

std::size_t Engine::act_index(std::uint32_t slot, std::size_t row) const {
  const std::size_t tile = row / kTileRows;
  return (tile * compiled_->n_slots() + slot) * kTileRows + (row % kTileRows);
}

std::size_t Engine::v_index(std::size_t input, std::size_t row) const {
  const std::size_t tile = row / kTileRows;
  return (tile * compiled_->n_circuit_inputs() + input) * kTileRows +
         (row % kTileRows);
}

void Engine::randomize(util::Rng& rng) {
  for (std::size_t i = 0; i < v_.size(); ++i) {
    v_[i] = static_cast<float>(rng.next_gaussian()) * config_.init_std;
  }
}

std::size_t Engine::rerandomize_rows(const std::vector<std::uint64_t>& mask,
                                     util::Rng& rng) {
  const std::size_t n_inputs = compiled_->n_circuit_inputs();
  std::size_t n_rows = 0;
  const std::size_t words = std::min(mask.size(), n_tiles_);
  for (std::size_t t = 0; t < words; ++t) {
    std::uint64_t bits = mask[t];
    while (bits != 0) {
      const auto r = static_cast<std::size_t>(std::countr_zero(bits));
      bits &= bits - 1;
      float* v = v_.data() + t * n_inputs * kTileRows + r;
      for (std::size_t i = 0; i < n_inputs; ++i) {
        v[i * kTileRows] =
            static_cast<float>(rng.next_gaussian()) * config_.init_std;
      }
      ++n_rows;
    }
  }
  return n_rows;
}

void Engine::pin_row_inputs(std::size_t row,
                            const std::vector<std::uint32_t>& slots,
                            const std::uint64_t* bits) {
  // 3 sigma clears essentially every Gaussian re-seed draw, so the hardened
  // row starts exactly on the requested pattern while staying well inside
  // the sigmoid's responsive range (descent keeps its vote).
  const float pin = 3.0f * config_.init_std;
  const std::size_t n_inputs = compiled_->n_circuit_inputs();
  const std::size_t t = row / kTileRows;
  const std::size_t r = row % kTileRows;
  if (t >= n_tiles_) return;
  float* v = v_.data() + t * n_inputs * kTileRows + r;
  for (std::size_t k = 0; k < slots.size(); ++k) {
    const std::uint32_t slot = slots[k];
    if (slot == kNoPinSlot || slot >= n_inputs) continue;
    const bool one = ((bits[k >> 6] >> (k & 63)) & 1ULL) != 0;
    v[static_cast<std::size_t>(slot) * kTileRows] = one ? pin : -pin;
  }
}

void Engine::sigmoid_row(const float* v_row, float* out) const {
  if (config_.fast_sigmoid) {
    for (std::size_t x = 0; x < kTileRows; x += kStep) {
      store(out + x, tensor::simd::fast_sigmoid(load(v_row + x)));
    }
  } else {
    for (std::size_t r = 0; r < kTileRows; ++r) {
      out[r] = 1.0f / (1.0f + std::exp(-v_row[r]));
    }
  }
}

void Engine::embed_tile(std::size_t tile) {
  const std::size_t n_inputs = compiled_->n_circuit_inputs();
  float* act = activations_.data() + tile * compiled_->n_slots() * kTileRows;
  const float* v = v_.data() + tile * n_inputs * kTileRows;
  const auto& input_slots = compiled_->input_slot();
  for (std::size_t i = 0; i < n_inputs; ++i) {
    if (input_slots[i] == kNoSlot) continue;
    const float* v_row = v + i * kTileRows;
    float* a_row = act + static_cast<std::size_t>(input_slots[i]) * kTileRows;
    if (config_.fast_sigmoid) {
      for (std::size_t x = 0; x < kTileRows; x += kStep) {
        store(a_row + x, tensor::simd::fast_sigmoid(load(v_row + x)));
      }
    } else {
      for (std::size_t r = 0; r < kTileRows; ++r) {
        a_row[r] = 1.0f / (1.0f + std::exp(-v_row[r]));
      }
    }
  }
}

double Engine::tile_loss(std::size_t tile) const {
  const float* act =
      activations_.data() + tile * compiled_->n_slots() * kTileRows;
  // Rows past the batch in the final tile are computed but never harvested
  // and excluded from the loss.
  const std::size_t rows =
      std::min(kTileRows, config_.batch - tile * kTileRows);
  double local_loss = 0.0;
  for (const CompiledCircuit::Output& out : compiled_->outputs()) {
    const float* y = act + static_cast<std::size_t>(out.slot) * kTileRows;
    for (std::size_t r = 0; r < rows; ++r) {
      const double diff = static_cast<double>(y[r]) - out.target;
      local_loss += diff * diff;
    }
  }
  // Bias terms, in a fixed order (slot terms then free terms) so the float
  // sum is policy-independent; no-op when input_biases is empty.
  for (const SlotBias& bias : slot_biases_) {
    const float* y = act + static_cast<std::size_t>(bias.slot) * kTileRows;
    for (std::size_t r = 0; r < rows; ++r) {
      const double diff = static_cast<double>(y[r]) - bias.target;
      local_loss += bias.weight * diff * diff;
    }
  }
  if (!free_biases_.empty()) {
    const float* v =
        v_.data() + tile * compiled_->n_circuit_inputs() * kTileRows;
    float p[kTileRows];
    for (const FreeBias& bias : free_biases_) {
      sigmoid_row(v + bias.input * kTileRows, p);
      for (std::size_t r = 0; r < rows; ++r) {
        const double diff = static_cast<double>(p[r]) - bias.target;
        local_loss += bias.weight * diff * diff;
      }
    }
  }
  return local_loss;
}

void Engine::seed_gradients(std::size_t tile) {
  const std::size_t n_slots = compiled_->n_slots();
  const float* act = activations_.data() + tile * n_slots * kTileRows;
  float* grad = gradients_.data() + tile * n_slots * kTileRows;
  const f32x8 two = broadcast(2.0f);
  // Zero the tile's gradients, then seed dL/dy = 2 (y - t).
  std::fill(grad, grad + n_slots * kTileRows, 0.0f);
  for (const CompiledCircuit::Output& out : compiled_->outputs()) {
    const float* y = act + static_cast<std::size_t>(out.slot) * kTileRows;
    float* g_row = grad + static_cast<std::size_t>(out.slot) * kTileRows;
    const f32x8 target = broadcast(out.target);
    for (std::size_t x = 0; x < kTileRows; x += kStep) {
      store(g_row + x, load(g_row + x) + two * (load(y + x) - target));
    }
  }
  // Slot-bias terms seed like extra outputs (dL/dp = 2 w (p - t)); inputs
  // are never op destinations, so backward only accumulates on top and the
  // regular update chains the sigmoid.  Free biases have no slot and are
  // handled in update_tile.
  for (const SlotBias& bias : slot_biases_) {
    const float* y = act + static_cast<std::size_t>(bias.slot) * kTileRows;
    float* g_row = grad + static_cast<std::size_t>(bias.slot) * kTileRows;
    const f32x8 target = broadcast(bias.target);
    const f32x8 w2 = broadcast(2.0f * bias.weight);
    for (std::size_t x = 0; x < kTileRows; x += kStep) {
      store(g_row + x, load(g_row + x) + w2 * (load(y + x) - target));
    }
  }
}

void Engine::update_tile(std::size_t tile) {
  const std::size_t n_slots = compiled_->n_slots();
  const std::size_t n_inputs = compiled_->n_circuit_inputs();
  const float* act = activations_.data() + tile * n_slots * kTileRows;
  const float* grad = gradients_.data() + tile * n_slots * kTileRows;
  float* v = v_.data() + tile * n_inputs * kTileRows;
  const auto& input_slots = compiled_->input_slot();
  const f32x8 one = broadcast(1.0f);
  const f32x8 lr = broadcast(config_.learning_rate);
  // Chain through the sigmoid embedding and take the GD step (Eq. 10).
  for (std::size_t i = 0; i < n_inputs; ++i) {
    if (input_slots[i] == kNoSlot) continue;
    const float* p = act + static_cast<std::size_t>(input_slots[i]) * kTileRows;
    const float* gp =
        grad + static_cast<std::size_t>(input_slots[i]) * kTileRows;
    float* v_row = v + i * kTileRows;
    for (std::size_t x = 0; x < kTileRows; x += kStep) {
      const f32x8 pv = load(p + x);
      const f32x8 gv = load(gp + x) * pv * (one - pv);
      store(v_row + x, load(v_row + x) - lr * gv);
    }
  }
  // Free-bias descent: inputs with no compiled slot never see circuit
  // gradient, so their bias term steps V directly.  p = sigmoid(v) is
  // recomputed with the embed sigmoid (v is still pre-update here — the
  // main loop above skipped these inputs).
  for (const FreeBias& bias : free_biases_) {
    float* v_row = v + static_cast<std::size_t>(bias.input) * kTileRows;
    float p[kTileRows];
    sigmoid_row(v_row, p);
    const f32x8 target = broadcast(bias.target);
    const f32x8 w2 = broadcast(2.0f * bias.weight);
    for (std::size_t x = 0; x < kTileRows; x += kStep) {
      const f32x8 pv = load(p + x);
      const f32x8 gv = w2 * (pv - target) * pv * (one - pv);
      store(v_row + x, load(v_row + x) - lr * gv);
    }
  }
}

// One full pass over a tile: the per-tile driver for kSerial and
// kDataParallel.  Walks the ExecPlan linearly (forward) and in reverse
// (backward) — the same op order the level driver executes stage by stage —
// through the run-batched kernels, so every policy computes bit-identical
// results.
void Engine::process_tile(std::size_t tile, bool with_grad, double* loss_accum) {
  const auto n_ops = static_cast<std::uint32_t>(compiled_->plan().n_ops());

  embed_tile(tile);
  forward_range(tile, 0, n_ops);

  // Loss (optional, over valid rows only).
  if (loss_accum != nullptr) *loss_accum = tile_loss(tile);
  if (!with_grad) return;

  seed_gradients(tile);
  backward_range(tile, 0, n_ops);
  update_tile(tile);
}

void Engine::forward_range(std::size_t tile, std::uint32_t begin,
                           std::uint32_t end) {
  const ExecPlan& plan = compiled_->plan();
  float* act = activations_.data() + tile * compiled_->n_slots() * kTileRows;
  // Locate the run containing `begin`, then dispatch once per (clamped) run.
  const auto& rb = plan.run_begin;
  auto k = static_cast<std::size_t>(
      std::upper_bound(rb.begin(), rb.end(), begin) - rb.begin() - 1);
  for (std::uint32_t i = begin; i < end; ++k) {
    const std::uint32_t run_end = std::min(rb[k + 1], end);
    forward_run(plan.op[i], plan, i, run_end, act);
    i = run_end;
  }
}

void Engine::backward_range(std::size_t tile, std::uint32_t begin,
                            std::uint32_t end) {
  if (begin == end) return;
  const ExecPlan& plan = compiled_->plan();
  const std::size_t n_slots = compiled_->n_slots();
  const float* act = activations_.data() + tile * n_slots * kTileRows;
  float* grad = gradients_.data() + tile * n_slots * kTileRows;
  // Reverse walk, run by run: a range fused over several levels unwinds them
  // in level order, each run unwinds its ops in reverse plan order, and a
  // single-level range accumulates shared-operand gradients in a fixed
  // (hence deterministic) order — the exact op-by-op reverse sequence.
  const auto& rb = plan.run_begin;
  auto k = static_cast<std::size_t>(
      std::upper_bound(rb.begin(), rb.end(), end - 1) - rb.begin() - 1);
  for (std::uint32_t i = end; i > begin; --k) {
    const std::uint32_t run_begin = std::max(rb[k], begin);
    backward_run(plan.op[run_begin], plan, run_begin, i, act, grad);
    i = run_begin;
  }
}

// Stage formation: a level at least kSplitWidth ops wide becomes its own
// stage with ~kChunkOps-sized intra-tile chunks (backward chunks respect the
// plan's operand-disjoint groups); runs of narrower levels fuse into one
// per-tile stage, so a deep chain of tiny levels costs one dispatch instead
// of one barrier per level.  Chunk boundaries depend only on the plan, never
// on the thread count, so results are machine-independent.
void Engine::build_schedule() {
  constexpr std::uint32_t kChunkOps = 128;
  constexpr std::uint32_t kSplitWidth = 2 * kChunkOps;
  const ExecPlan& plan = compiled_->plan();
  schedule_.clear();

  auto flush_run = [this](std::uint32_t begin, std::uint32_t end) {
    if (begin == end) return;
    Stage stage;
    stage.fwd.emplace_back(begin, end);
    stage.bwd.emplace_back(begin, end);
    stage.n_ops = end - begin;
    schedule_.push_back(std::move(stage));
  };

  std::uint32_t pending = 0;
  for (std::size_t l = 0; l < plan.n_levels(); ++l) {
    const std::uint32_t lb = plan.level_begin[l];
    const std::uint32_t le = plan.level_begin[l + 1];
    const std::uint32_t width = le - lb;
    if (width < kSplitWidth) continue;  // joins the pending fused run
    flush_run(pending, lb);
    pending = le;

    Stage stage;
    stage.n_ops = width;
    const std::uint32_t n_chunks = (width + kChunkOps - 1) / kChunkOps;
    for (std::uint32_t c = 0; c < n_chunks; ++c) {
      const auto b = static_cast<std::uint32_t>(
          lb + static_cast<std::uint64_t>(width) * c / n_chunks);
      const auto e = static_cast<std::uint32_t>(
          lb + static_cast<std::uint64_t>(width) * (c + 1) / n_chunks);
      if (b < e) stage.fwd.emplace_back(b, e);
    }
    // Backward chunks: greedily merge whole groups up to ~kChunkOps ops.
    std::uint32_t chunk_begin = lb;
    for (std::uint32_t g = plan.level_group[l]; g < plan.level_group[l + 1];
         ++g) {
      const std::uint32_t group_end = plan.group_begin[g + 1];
      if (group_end - chunk_begin >= kChunkOps) {
        stage.bwd.emplace_back(chunk_begin, group_end);
        chunk_begin = group_end;
      }
    }
    if (chunk_begin < le) stage.bwd.emplace_back(chunk_begin, le);
    schedule_.push_back(std::move(stage));
  }
  if (!plan.level_begin.empty()) flush_run(pending, plan.level_begin.back());
}

void Engine::dispatch_stage(const Stage& stage, bool backward) {
  const auto& chunks = backward ? stage.bwd : stage.fwd;
  if (chunks.empty()) return;
  const std::size_t n_chunks = chunks.size();
  const std::size_t items = n_tiles_ * n_chunks;
  auto run_item = [&](std::size_t item) {
    const std::size_t tile = item / n_chunks;
    const auto& range = chunks[item % n_chunks];
    if (backward) {
      backward_range(tile, range.first, range.second);
    } else {
      forward_range(tile, range.first, range.second);
    }
  };
  // A single-thread pool cannot overlap work and only adds wakeup latency
  // per stage; tiny stages never amortize the dispatch either.
  const bool inline_run = items == 1 ||
                          util::ThreadPool::global().size() <= 1 ||
                          static_cast<std::size_t>(stage.n_ops) * n_tiles_ < 1024;
  if (inline_run) {
    for (std::size_t i = 0; i < items; ++i) run_item(i);
    return;
  }
  util::ThreadPool::global().parallel_for(
      items, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) run_item(i);
      });
}

// Level-synchronous sweep: embed all tiles, run the forward stages in plan
// order, then (for GD iterations) seed gradients, run the stages reversed,
// and apply the update — each phase one data-parallel dispatch.  Per-op
// float sequences match the per-tile driver exactly, so forward activations
// and the loss are bit-identical across policies.
void Engine::sweep_level(bool with_grad) {
  const bool want_loss = config_.compute_loss || !with_grad;
  // A 1-thread pool gains nothing from level-major sweeps but still pays
  // their cache cost (every stage streams all tiles).  Walk the plan
  // tile-major instead: stages and chunks partition the plan in order, so a
  // linear forward walk and a linear reverse backward walk execute the same
  // per-op float sequences with identical per-slot accumulation order —
  // bit-identical to the stage-major dispatch (which tests pin down via
  // Config::force_level_stages).
  if (util::ThreadPool::global().size() <= 1 && !config_.force_level_stages) {
    // Identical to the per-tile driver: stages and chunks partition the plan
    // in order, so the tile-major walk and the stage-major dispatch execute
    // the same per-op float sequences with identical accumulation order.
    for (std::size_t t = 0; t < n_tiles_; ++t) {
      process_tile(t, with_grad, want_loss ? &tile_loss_[t] : nullptr);
    }
    if (want_loss) {
      double total_loss = 0.0;
      for (const double loss : tile_loss_) total_loss += loss;
      last_loss_ = total_loss;
    }
    return;
  }
  tensor::parallel_for(config_.policy, n_tiles_,
                       [&](std::size_t begin, std::size_t end) {
                         for (std::size_t t = begin; t < end; ++t) {
                           embed_tile(t);
                         }
                       });
  for (const Stage& stage : schedule_) dispatch_stage(stage, /*backward=*/false);
  if (want_loss) {
    tensor::parallel_for(config_.policy, n_tiles_,
                         [&](std::size_t begin, std::size_t end) {
                           for (std::size_t t = begin; t < end; ++t) {
                             tile_loss_[t] = tile_loss(t);
                           }
                         });
    // Reduced in tile order, so the sum is policy-independent.
    double total_loss = 0.0;
    for (const double loss : tile_loss_) total_loss += loss;
    last_loss_ = total_loss;
  }
  if (!with_grad) return;

  tensor::parallel_for(config_.policy, n_tiles_,
                       [&](std::size_t begin, std::size_t end) {
                         for (std::size_t t = begin; t < end; ++t) {
                           seed_gradients(t);
                         }
                       });
  for (auto it = schedule_.rbegin(); it != schedule_.rend(); ++it) {
    dispatch_stage(*it, /*backward=*/true);
  }
  tensor::parallel_for(config_.policy, n_tiles_,
                       [&](std::size_t begin, std::size_t end) {
                         for (std::size_t t = begin; t < end; ++t) {
                           update_tile(t);
                         }
                       });
}

void Engine::sweep(bool with_grad) {
  if (config_.policy == tensor::Policy::kLevelParallel) {
    sweep_level(with_grad);
    return;
  }
  const bool want_loss = config_.compute_loss || !with_grad;
  tensor::parallel_for(config_.policy, n_tiles_,
                       [&](std::size_t begin, std::size_t end) {
                         for (std::size_t t = begin; t < end; ++t) {
                           process_tile(t, with_grad,
                                        want_loss ? &tile_loss_[t] : nullptr);
                         }
                       });
  if (want_loss) {
    // Reduced in tile order, so the sum is policy-independent.
    double total_loss = 0.0;
    for (const double tile_loss : tile_loss_) total_loss += tile_loss;
    last_loss_ = total_loss;
  }
}

void Engine::run_iteration() { sweep(/*with_grad=*/true); }

void Engine::forward_only() { sweep(/*with_grad=*/false); }

void Engine::harden(std::vector<std::uint64_t>& packed_out) const {
  const std::size_t n = compiled_->n_circuit_inputs();
  packed_out.assign(n * n_tiles_, 0);
  for (std::size_t t = 0; t < n_tiles_; ++t) {
    const float* v = v_.data() + t * n * kTileRows;
    // Padding rows (>= batch) never escape into the packed words.
    const std::size_t rows = std::min(kTileRows, config_.batch - t * kTileRows);
    const std::uint64_t row_mask =
        rows < 64 ? (1ULL << rows) - 1 : ~0ULL;
    for (std::size_t i = 0; i < n; ++i) {
      const float* v_row = v + i * kTileRows;
      // Width-8 compare + movemask packing; the per-lane predicate is the
      // scalar `v > 0` exactly (NaN and ±0 contribute 0 bits).
      std::uint64_t word = 0;
      for (std::size_t x = 0; x < kTileRows; x += kStep) {
        word |= static_cast<std::uint64_t>(
                    tensor::simd::movemask_gt_zero(load(v_row + x)))
                << x;
      }
      packed_out[i * n_tiles_ + t] = word & row_mask;
    }
  }
}

void Engine::row_losses(std::vector<float>& out) const {
  out.assign(config_.batch, 0.0f);
  const std::size_t n_slots = compiled_->n_slots();
  for (std::size_t t = 0; t < n_tiles_; ++t) {
    const float* act = activations_.data() + t * n_slots * kTileRows;
    const std::size_t rows = std::min(kTileRows, config_.batch - t * kTileRows);
    float* o = out.data() + t * kTileRows;
    for (const CompiledCircuit::Output& output : compiled_->outputs()) {
      const float* y = act + static_cast<std::size_t>(output.slot) * kTileRows;
      for (std::size_t r = 0; r < rows; ++r) {
        const float diff = y[r] - output.target;
        o[r] += diff * diff;
      }
    }
    for (const SlotBias& bias : slot_biases_) {
      const float* y = act + static_cast<std::size_t>(bias.slot) * kTileRows;
      for (std::size_t r = 0; r < rows; ++r) {
        const float diff = y[r] - bias.target;
        o[r] += bias.weight * diff * diff;
      }
    }
    if (!free_biases_.empty()) {
      const float* v =
          v_.data() + t * compiled_->n_circuit_inputs() * kTileRows;
      float p[kTileRows];
      for (const FreeBias& bias : free_biases_) {
        sigmoid_row(v + bias.input * kTileRows, p);
        for (std::size_t r = 0; r < rows; ++r) {
          const float diff = p[r] - bias.target;
          o[r] += bias.weight * diff * diff;
        }
      }
    }
  }
}

float Engine::activation(std::uint32_t slot, std::size_t row) const {
  return activations_[act_index(slot, row)];
}

float Engine::v_value(std::size_t input, std::size_t row) const {
  return v_[v_index(input, row)];
}

void Engine::set_v(std::size_t input, std::size_t row, float value) {
  v_[v_index(input, row)] = value;
}

std::size_t Engine::memory_bytes() const {
  return (v_.size() + activations_.size() + gradients_.size() + v_grad_.size()) *
         sizeof(float);
}

std::size_t Engine::predicted_bytes(const CompiledCircuit& compiled,
                                    std::size_t batch) {
  const std::size_t padded =
      (batch + kTileRows - 1) / kTileRows * kTileRows;
  // v_ + v_grad_ (inputs) and activations_ + gradients_ (slots).
  return (2 * compiled.n_circuit_inputs() + 2 * compiled.n_slots()) * padded *
         sizeof(float);
}

}  // namespace hts::prob
