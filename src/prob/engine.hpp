#pragma once

// Batched gradient-descent engine over a compiled probabilistic circuit.
//
// Implements the paper's learning loop: soft inputs V in R^{b x n} embedded
// through a sigmoid (Eq. 6), the probabilistic forward pass (Eq. 7), the L2
// loss against the output targets (Eq. 8), analytic backward per Table I,
// and the plain GD update (Eq. 10).  Each batch row is an independent
// learning problem; one iteration is a single data-parallel dispatch, so
// the serial-vs-parallel policy comparison isolates the "GPU" speedup.
//
// The inner loops run on the width-8 SIMD kernels of tensor/simd.hpp: a
// tile's 64 rows are processed as 8 vectors per tape op.  The embed step
// uses simd::fast_sigmoid by default (see its documented error bound);
// Config::fast_sigmoid = false selects the exact std::exp path for A/B
// parity runs.
//
// Every policy executes the compiled ExecPlan in plan order (forward) and
// reverse plan order (backward) through opcode-run-batched kernels: the
// plan clusters same-opcode ops into runs, and kernels dispatch once per
// run with a tight per-opcode inner loop instead of a per-op switch.
// Because the op order and accumulation order are fixed by the plan, all
// results — activations, loss, and V after descent — are bit-identical
// across policies and thread counts.
//
// Scheduling (Config::policy):
//   kSerial        one thread walks the plan tile by tile,
//   kDataParallel  tiles are dispatched across the thread pool; within a
//                  tile the plan is walked linearly (batch/64-way parallel),
//   kLevelParallel the ExecPlan drives a level-synchronous sweep: wide
//                  levels are chunked into (tile x op-range) work items
//                  (backward chunks aligned to the plan's operand-disjoint
//                  groups), narrow level runs are fused and dispatched per
//                  tile.  Chunk boundaries are fixed at plan time, not by
//                  thread count.

#include <cstdint>
#include <vector>

#include "prob/compiled.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace hts::prob {

class Engine {
 public:
  /// Rows per storage tile; also the word width of harden().
  static constexpr std::size_t kTileRows = 64;

  struct Config {
    std::size_t batch = 1024;
    float learning_rate = 10.0f;  // the paper's setting
    float init_std = 2.0f;        // stddev of the Gaussian V initialization
    tensor::Policy policy = tensor::Policy::kDataParallel;
    bool compute_loss = false;  // accumulate L2 loss during iterations
    /// Embed with the vectorized polynomial sigmoid (default) or the exact
    /// std::exp one (bit-identical to the pre-SIMD engine; used for A/B).
    bool fast_sigmoid = true;
    /// kLevelParallel only: force the stage-major dispatcher even on a
    /// single-thread pool.  By default a 1-thread pool executes the plan
    /// tile-major (one cache-resident pass per tile, like the per-tile
    /// policies) because level-major sweeps stream the whole batch once per
    /// stage with no parallelism to pay for it.  Both orders produce
    /// bit-identical results — backward chunks are operand-disjoint — so
    /// this knob exists for tests and scheduler-overhead measurements.
    bool force_level_stages = false;
    /// An extra per-row loss term weight * (p_input - target)^2 steering a
    /// circuit input toward 0 or 1 (literal-weight requests).  Inputs inside
    /// the compiled cone seed extra output-style gradient and chain through
    /// the normal backward/update; inputs *outside* the cone (free
    /// variables, no compiled slot) take a direct V-side descent step — the
    /// only force that ever moves them, since plain descent never touches
    /// unconstrained inputs.  Empty (default) adds zero float ops, so the
    /// unweighted engine is bit-identical to before; every term is applied
    /// per tile, so all scheduling policies stay bit-identical to each
    /// other.  Entries with weight 0 or an out-of-range input are dropped.
    struct InputBias {
      std::uint32_t input = 0;
      float target = 1.0f;
      float weight = 1.0f;
    };
    std::vector<InputBias> input_biases;
  };

  Engine(const CompiledCircuit& compiled, Config config);

  [[nodiscard]] std::size_t batch() const { return config_.batch; }
  [[nodiscard]] std::size_t n_inputs() const { return compiled_->n_circuit_inputs(); }

  /// Inputs carrying an active bias term after resolution (in-cone plus
  /// free); accounting for GdLoopExtras::weighted_inputs.
  [[nodiscard]] std::size_t n_weighted_inputs() const {
    return slot_biases_.size() + free_biases_.size();
  }

  /// Draws fresh V ~ N(0, init_std^2) for every input and row.
  void randomize(util::Rng& rng);

  /// Redraws V (every input) for each row whose bit is set in `mask`
  /// (same word layout as harden(): bit r of word t is row 64t + r).
  /// Powers solved-row restarts: rows that already satisfied are re-seeded
  /// instead of re-descending a converged basin.  Returns the number of
  /// rows redrawn.  Deterministic draw order: tile, then row, then input.
  std::size_t rerandomize_rows(const std::vector<std::uint64_t>& mask,
                               util::Rng& rng);

  /// Sentinel for pin_row_inputs: positions mapped to it are skipped.
  static constexpr std::uint32_t kNoPinSlot = 0xffffffffu;

  /// Overwrites selected input slots of one row with a definite sign:
  /// position k drives input slots[k] toward 1 (V = +3·init_std) when bit k
  /// of `bits` is set and toward 0 (V = -3·init_std) otherwise; slots equal
  /// to kNoPinSlot (set variables with no circuit input) are skipped.  The
  /// diversity objective calls this after re-seeding a row so its next
  /// descent starts *inside* a chosen not-yet-banked projected class — the
  /// pin is an initialization bias, not a constraint: descent can still
  /// flip a pinned input if the formula demands it.
  void pin_row_inputs(std::size_t row, const std::vector<std::uint32_t>& slots,
                      const std::uint64_t* bits);

  /// One GD iteration: embed, forward, backward, update.  Single fused
  /// data-parallel dispatch over batch rows.
  void run_iteration();

  /// Embed + forward only (no gradients); used for testing and diagnostics.
  void forward_only();

  /// Sum over rows and outputs of (y - t)^2 from the most recent
  /// forward_only() call (always computed), or the most recent
  /// run_iteration() when compute_loss is set.
  [[nodiscard]] double last_loss() const { return last_loss_; }

  /// Per-row L2 loss over the constrained outputs from the activations of
  /// the most recent sweep: out[r] = sum_k (y_k[r] - t_k)^2 for r < batch.
  /// Powers plateau restarts: rows whose loss stopped improving are stuck
  /// in a basin and worth re-seeding.
  void row_losses(std::vector<float>& out) const;

  /// Hardens V into bits (V > 0) packed 64 rows per word: out[i * n_words()
  /// + w] holds rows [64w, 64w+63] of circuit input i.  Inputs outside the
  /// compiled cone harden from their (random) V too — those are the paper's
  /// unconstrained paths, where any random value satisfies.  Padding rows
  /// (>= batch) in the final word are always zero, so downstream consumers
  /// never observe uninitialized-V bits.
  void harden(std::vector<std::uint64_t>& packed_out) const;

  [[nodiscard]] std::size_t n_words() const { return n_tiles_; }

  /// Activation of a compiled slot for a row (post forward pass).
  [[nodiscard]] float activation(std::uint32_t slot, std::size_t row) const;

  /// Soft-input access for tests.
  [[nodiscard]] float v_value(std::size_t input, std::size_t row) const;
  void set_v(std::size_t input, std::size_t row, float value);

  /// Bytes held by this engine's buffers (the Fig. 3 memory metric).
  [[nodiscard]] std::size_t memory_bytes() const;

  /// What memory_bytes() would report for a hypothetical batch size, without
  /// allocating.  Lets the Fig. 3 sweep extend past physically allocatable
  /// points (the paper's V100 runs topped out at 32 GB too).
  [[nodiscard]] static std::size_t predicted_bytes(const CompiledCircuit& compiled,
                                                   std::size_t batch);

 private:
  /// One level-synchronous step of the execution plan: a single wide level
  /// chunked for intra-tile splitting, or a fused run of narrow levels
  /// executed per tile.  `fwd`/`bwd` hold [begin, end) plan-op ranges; each
  /// range paired with a tile is one work item.  Backward items walk their
  /// range in reverse so fused runs unwind in level order, and backward
  /// ranges never split an operand-disjoint group, so gradient accumulation
  /// is race-free and deterministic under any thread count.
  struct Stage {
    std::vector<std::pair<std::uint32_t, std::uint32_t>> fwd;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> bwd;
    std::uint32_t n_ops = 0;
  };

  /// Config::input_biases resolved against the compiled circuit: biases on
  /// in-cone inputs become slot terms (gradient seeded like an output),
  /// biases on cone-free inputs descend V directly in update_tile.
  struct SlotBias {
    std::uint32_t slot = 0;
    float target = 1.0f;
    float weight = 1.0f;
  };
  struct FreeBias {
    std::uint32_t input = 0;
    float target = 1.0f;
    float weight = 1.0f;
  };

  void process_tile(std::size_t tile, bool with_grad, double* loss_accum);
  void sweep(bool with_grad);
  void sweep_level(bool with_grad);
  void build_schedule();
  void dispatch_stage(const Stage& stage, bool backward);
  void embed_tile(std::size_t tile);
  /// Embeds one input row of a tile through the configured sigmoid (fast or
  /// exact, matching embed_tile exactly); used by the free-bias terms whose
  /// inputs have no activation slot.
  void sigmoid_row(const float* v_row, float* out) const;
  void forward_range(std::size_t tile, std::uint32_t begin, std::uint32_t end);
  void backward_range(std::size_t tile, std::uint32_t begin, std::uint32_t end);
  [[nodiscard]] double tile_loss(std::size_t tile) const;
  void seed_gradients(std::size_t tile);
  void update_tile(std::size_t tile);
  [[nodiscard]] std::size_t act_index(std::uint32_t slot, std::size_t row) const;
  [[nodiscard]] std::size_t v_index(std::size_t input, std::size_t row) const;

  const CompiledCircuit* compiled_;
  Config config_;
  /// Resolved bias terms (see SlotBias/FreeBias); both empty when
  /// Config::input_biases is.
  std::vector<SlotBias> slot_biases_;
  std::vector<FreeBias> free_biases_;
  /// Level-parallel stage schedule; built once at construction when
  /// Config::policy is kLevelParallel, empty otherwise.
  std::vector<Stage> schedule_;
  std::size_t n_tiles_ = 0;
  // All buffers are tiled [tile][slot-or-input][row-in-tile]; see engine.cpp.
  tensor::Buffer v_;
  tensor::Buffer activations_;
  tensor::Buffer gradients_;
  // Mirrors PyTorch's persistent V.grad allocation so memory_bytes() matches
  // the substrate the paper measured; the fused update never reads it.
  tensor::Buffer v_grad_;
  // Per-tile loss scratch, reduced in tile order after each dispatch — the
  // hot path never takes a lock, and the reduction order (hence the float
  // sum) is identical under every policy.
  std::vector<double> tile_loss_;
  double last_loss_ = 0.0;
};

}  // namespace hts::prob
