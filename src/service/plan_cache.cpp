#include "service/plan_cache.hpp"

#include <utility>

#include "service/request.hpp"
#include "telemetry/metrics.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"
#include "verify/plan_verifier.hpp"

namespace hts::service {

namespace {

/// SplitMix64-style mixing: every absorbed word avalanches through the
/// whole state, so structurally close formulas (one flipped literal) land
/// far apart.
[[nodiscard]] std::uint64_t mix(std::uint64_t h, std::uint64_t value) {
  h += 0x9e3779b97f4a7c15ULL + value;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

}  // namespace

PlanKey plan_fingerprint(const cnf::Formula& formula,
                         const PlanOptions& options) {
  PlanKey key;
  key.n_vars = formula.n_vars();
  key.n_clauses = formula.n_clauses();

  std::uint64_t h = 0x90d4f8bace5a1fb3ULL;
  h = mix(h, key.n_vars);
  for (const cnf::Clause& clause : formula.clauses()) {
    // A per-clause length word keeps clause boundaries unambiguous (the
    // flattened literal streams of {a,b},{c} and {a},{b,c} must differ).
    h = mix(h, clause.size());
    for (const cnf::Lit lit : clause) {
      h = mix(h, lit.code());
      ++key.n_literals;
    }
  }
  // verify_plans is deliberately NOT mixed in: verification never changes
  // the compiled artifacts, so verified and unverified requests must share
  // one cache entry.
  h = mix(h, (options.cone_only ? 1ULL : 0ULL) |
                 (options.optimize_tape ? 2ULL : 0ULL));
  h = mix(h, options.transform.max_block_clauses);
  h = mix(h, options.transform.simplify_max_vars);
  h = mix(h, options.transform.count_nots ? 1ULL : 0ULL);
  key.hash = h;
  return key;
}

CompiledPlan::CompiledPlan(const cnf::Formula& formula,
                           const PlanOptions& options) {
  const util::Timer timer;
  transformed = transform::transform_cnf(formula, options.transform);
  if (!transformed.proven_unsat) {
    compiled.emplace(
        transformed.circuit,
        prob::CompiledCircuit::Options{options.cone_only, options.optimize_tape});
    eval_plan.emplace(transformed.circuit);
    if (options.verify_plans && !verify::plans_verified()) {
      // The build-wide hook is off; this request asked for verification
      // explicitly, so lint both artifacts now (fatal on violation, like
      // the hook).
      const verify::Report tape_report = verify::verify_exec_plan(*compiled);
      HTS_CHECK_MSG(tape_report.ok(), tape_report.to_string().c_str());
      const verify::Report eval_report = verify::verify_eval_plan(*eval_plan);
      HTS_CHECK_MSG(eval_report.ok(), eval_report.to_string().c_str());
    }
  }
  compile_ms = timer.milliseconds();
}

PlanCache::PlanCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

std::shared_ptr<const CompiledPlan> PlanCache::get_or_compile(
    const cnf::Formula& formula, const PlanOptions& options, bool* cache_hit,
    util::FaultInjector* injector) {
  const PlanKey key = plan_fingerprint(formula, options);

  std::shared_ptr<Entry> entry;
  {
    util::LockGuard lock(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      entry = std::make_shared<Entry>();
      entry->last_use = ++use_seq_;
      entries_.emplace(key, entry);
      evict_locked();
    } else {
      entry = it->second;
      entry->last_use = ++use_seq_;
    }
  }

  // The first requester compiles while holding the entry's build mutex;
  // concurrent requesters for the same key block here instead of compiling
  // redundantly, then share the plan.  The cache-wide mutex is never held
  // across a compile, so other keys stay fully concurrent.
  // A throwing compile (the seam below, or a real failure inside
  // CompiledPlan) unwinds from here with the entry still resident and
  // `plan` still null — the next requester retries the compile, and
  // neither hit nor miss is counted for the aborted attempt.
  // Sampled before blocking on build_mutex: a hit whose entry was not yet
  // built at this point waited on another request's in-flight compile.
  const bool was_built = entry->built.load(std::memory_order_acquire);
  util::LockGuard build_lock(entry->build_mutex);
  const bool hit = entry->plan != nullptr;
  if (!hit) {
    if (injector != nullptr) injector->maybe_fault(fault_sites::kCompile);
    entry->plan = std::make_shared<const CompiledPlan>(formula, options);
    entry->built.store(true, std::memory_order_release);
  }
  const bool inflight_wait = hit && !was_built;
  {
    util::LockGuard lock(mutex_);
    if (hit) {
      ++stats_.hits;
      if (inflight_wait) ++stats_.inflight_waits;
    } else {
      ++stats_.misses;
    }
  }
  if (telemetry::metrics_enabled()) {
    telemetry::Registry& reg = telemetry::Registry::global();
    static telemetry::Counter& hits_total =
        reg.counter("hts_plan_cache_hits_total");
    static telemetry::Counter& misses_total =
        reg.counter("hts_plan_cache_misses_total");
    static telemetry::Counter& inflight_total =
        reg.counter("hts_plan_cache_inflight_waits_total");
    if (hit) {
      hits_total.increment();
      if (inflight_wait) inflight_total.increment();
    } else {
      misses_total.increment();
    }
  }
  if (cache_hit != nullptr) *cache_hit = hit;
  return entry->plan;
}

void PlanCache::evict_locked() {
  while (entries_.size() > capacity_) {
    // Least recently used among *built* entries only: evicting one whose
    // first requester is still compiling would let the next request for
    // that key start a duplicate compile of the identical plan.  When every
    // entry is mid-compile the cache runs over capacity until one lands.
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (!it->second->built.load(std::memory_order_acquire)) continue;
      if (victim == entries_.end() ||
          it->second->last_use < victim->second->last_use) {
        victim = it;
      }
    }
    if (victim == entries_.end()) return;
    // Dropping the map's reference is all eviction means: jobs holding the
    // plan keep it alive.
    entries_.erase(victim);
    ++stats_.evictions;
    if (telemetry::metrics_enabled()) {
      static telemetry::Counter& evictions_total =
          telemetry::Registry::global().counter("hts_plan_cache_evictions_total");
      evictions_total.increment();
    }
  }
}

PlanCache::Stats PlanCache::stats() const {
  util::LockGuard lock(mutex_);
  return stats_;
}

std::size_t PlanCache::size() const {
  util::LockGuard lock(mutex_);
  return entries_.size();
}

void PlanCache::clear() {
  util::LockGuard lock(mutex_);
  entries_.clear();
}

}  // namespace hts::service
