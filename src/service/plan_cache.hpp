#pragma once

// Compiled-plan cache: compile once, sample many.
//
// A sampling job needs three compiled artifacts before its first GD round:
// the CNF -> circuit transformation (Algorithm 1), the optimized
// probabilistic tape + execution plan (prob::CompiledCircuit), and the
// word-parallel validation plan (circuit::EvalPlan).  All three are pure
// functions of (formula, compile options) and immutable afterwards, so the
// dominant production pattern — many requests against the same formula with
// different seeds/deadlines — should pay compilation exactly once.
//
// The cache keys on a structural fingerprint of the formula (variable
// count, clause count, and a position-sensitive hash over every literal)
// mixed with the compile-relevant options; since the transformation and
// tape optimizer are deterministic, equal fingerprints yield equal compiled
// circuits.  Entries are shared_ptr-held: eviction (LRU, bounded entry
// count) drops the cache's reference while running jobs keep theirs.
// Concurrent misses on one key are collapsed — the first requester
// compiles under the entry's build mutex, the rest block on it and then
// share the plan (counted as hits: they did not compile).

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>

#include "circuit/eval_plan.hpp"
#include "cnf/formula.hpp"
#include "prob/compiled.hpp"
#include "transform/transform.hpp"
#include "util/fault_injector.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace hts::service {

/// The compile-relevant slice of a job's configuration: everything that
/// changes the compiled artifacts, nothing that doesn't (seed, deadline,
/// batch, and learning knobs are per-request and cache-neutral).
struct PlanOptions {
  bool cone_only = false;
  bool optimize_tape = true;
  transform::Config transform;
  /// Run the plan-IR verifier (verify/plan_verifier.hpp) over the freshly
  /// compiled tape and eval plan, aborting on any violation.  Redundant (and
  /// skipped) when the build-wide HTS_VERIFY_PLANS hook already verifies
  /// every construction; cache-neutral — verification never changes the
  /// artifacts, so it is excluded from the fingerprint and a hit on an
  /// already-verified entry stays a hit.
  bool verify_plans = false;
};

struct PlanKey {
  std::uint64_t hash = 0;
  // Cheap structural salts kept alongside the hash so a 64-bit collision
  // would additionally need matching shape to alias.
  std::uint64_t n_vars = 0;
  std::uint64_t n_clauses = 0;
  std::uint64_t n_literals = 0;

  [[nodiscard]] bool operator==(const PlanKey& other) const = default;
};

/// Structural fingerprint of (formula, options); position-sensitive over
/// clauses and literals, so permuted formulas are distinct keys (they would
/// compile to different tapes anyway — the transformation is order-aware).
[[nodiscard]] PlanKey plan_fingerprint(const cnf::Formula& formula,
                                       const PlanOptions& options);

/// Everything a job needs to start sampling a formula, compiled once and
/// shared read-only between every job holding the pointer.  When the
/// transformation proves the formula UNSAT the tape/eval plan are absent —
/// there is nothing to sample.
struct CompiledPlan {
  CompiledPlan(const cnf::Formula& formula, const PlanOptions& options);

  transform::Result transformed;
  std::optional<prob::CompiledCircuit> compiled;
  std::optional<circuit::EvalPlan> eval_plan;
  /// Wall-clock cost of building this plan (transform + tape + eval plan);
  /// what a cache hit saves.
  double compile_ms = 0.0;
};

class PlanCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    /// Hits that blocked on another requester's in-flight compile (a subset
    /// of `hits`): the dedup machinery actually collapsing concurrent misses.
    std::uint64_t inflight_waits = 0;
  };

  /// capacity: maximum resident entries (LRU beyond it); at least 1.
  explicit PlanCache(std::size_t capacity = 32);

  /// Returns the plan for (formula, options), compiling it on first sight.
  /// Safe from any number of threads; concurrent requests for one key
  /// compile once.  `cache_hit`, when given, reports whether *this* call
  /// avoided compiling.  `injector`, when given and armed, is evaluated at
  /// the "compile" seam just before a real compile runs.
  ///
  /// Failure containment: a throwing compile (injected or real) propagates
  /// to the caller but leaves the cache coherent — the entry stays resident
  /// and unbuilt, so the next requester for the key simply compiles again
  /// (counted as a miss) and publishes on success.  Waiters blocked on the
  /// in-flight compile observe the null plan and retry the same way; nobody
  /// is handed a half-built artifact.  (Unbuilt entries are exempt from LRU
  /// eviction, so a formula whose compile fails forever pins one capacity
  /// slot; acceptable until proven otherwise.)
  [[nodiscard]] std::shared_ptr<const CompiledPlan> get_or_compile(
      const cnf::Formula& formula, const PlanOptions& options,
      bool* cache_hit = nullptr,
      util::FaultInjector* injector = nullptr) HTS_EXCLUDES(mutex_);

  [[nodiscard]] Stats stats() const HTS_EXCLUDES(mutex_);
  [[nodiscard]] std::size_t size() const HTS_EXCLUDES(mutex_);
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  void clear() HTS_EXCLUDES(mutex_);

 private:
  struct Entry {
    /// Serializes the one-time compile; get_or_compile holds it only while
    /// plan is still null (first requester) or to read it (waiters).
    /// Lock order: build_mutex -> PlanCache::mutex_ (the stats update after
    /// a compile); never the reverse — eviction under the cache mutex reads
    /// the atomic `built` flag instead of taking build_mutex.
    util::Mutex build_mutex;
    std::shared_ptr<const CompiledPlan> plan HTS_GUARDED_BY(build_mutex);
    /// Published after the compile lands; lets evict_locked (which holds
    /// only the cache mutex) see build completion without touching
    /// build_mutex — taking it there would block eviction behind compiles.
    std::atomic<bool> built{false};
    /// Guarded by the *cache* mutex (PlanCache::mutex_), not build_mutex —
    /// a cross-object guard the analysis cannot express on a nested struct.
    std::uint64_t last_use = 0;
  };

  struct KeyHash {
    std::size_t operator()(const PlanKey& key) const noexcept {
      return static_cast<std::size_t>(key.hash);
    }
  };

  void evict_locked() HTS_REQUIRES(mutex_);

  const std::size_t capacity_;
  mutable util::Mutex mutex_;
  std::unordered_map<PlanKey, std::shared_ptr<Entry>, KeyHash> entries_
      HTS_GUARDED_BY(mutex_);
  std::uint64_t use_seq_ HTS_GUARDED_BY(mutex_) = 0;
  Stats stats_ HTS_GUARDED_BY(mutex_);
};

}  // namespace hts::service
