#pragma once

// Request, status, and accounting types of the in-process sampling service.
//
// A SamplingRequest is one client's job: a formula, a seed, a deadline, a
// unique-solution target, memory caps, and engine tuning overrides.  The
// service compiles the formula once (or pulls the compiled plan from the
// cache), time-slices GD rounds across the worker fleet, and streams unique
// solutions back through the request's SolutionStream as they are
// harvested.  JobStats is the per-request bill: what was produced, what it
// cost, and how long the request waited for a worker.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "cnf/formula.hpp"
#include "core/gradient_sampler.hpp"
#include "tensor/tensor.hpp"

namespace hts::service {

/// Named fault-injection seams of the service layer (see
/// util/fault_injector.hpp).  Each is evaluated on the corresponding path
/// and doubles as the error-attribution site recorded in ErrorInfo when a
/// real (non-injected) exception escapes that phase.
namespace fault_sites {
inline constexpr const char* kCompile = "compile";          // plan-cache compile
inline constexpr const char* kEngineAlloc = "engine_alloc"; // engine/bank/harvester build
inline constexpr const char* kHarvest = "harvest";          // post-collect checkpoint
inline constexpr const char* kStreamPush = "stream_push";   // solution delivery
inline constexpr const char* kSlice = "slice";              // worker slice body
}  // namespace fault_sites

/// Engine tuning defaults for service jobs.  Identical to the stand-alone
/// GradientSampler defaults except the kernel policy: a service worker runs
/// many jobs concurrently, so each engine keeps its kernels on its own
/// worker thread (kSerial) instead of fanning every tile out to the global
/// pool — concurrent requests are the parallelism axis, and stacking
/// data-parallel dispatch on top of a loaded fleet only adds queue
/// contention.  Override config.policy per request to compose deliberately.
[[nodiscard]] inline sampler::GradientConfig default_job_config() {
  sampler::GradientConfig config;
  config.policy = tensor::Policy::kSerial;
  return config;
}

struct SamplingRequest {
  /// The formula to sample (copied into the job; the caller's object need
  /// not outlive the request).
  cnf::Formula formula;

  /// Fairness key: the scheduler round-robins across clients when deadlines
  /// tie, so one client queueing many jobs cannot crowd out another.
  std::uint64_t client_id = 0;

  /// Base seed of the job's RNG streams.  Round r draws from
  /// util::Rng::stream(seed, r), so a job's solution stream is a pure
  /// function of (formula, seed, config) — independent of fleet size,
  /// scheduling order, and whatever else the server is running.
  std::uint64_t seed = 0x5eed;

  /// Wall-clock budget in milliseconds, counted from submission (queue wait
  /// included — that is what "deadline-aware" schedules against).  0 means
  /// no deadline.  An expired job finalizes with its partial results.
  double deadline_ms = 0.0;

  /// Finish successfully once this many unique solutions are banked.
  /// 0 means "run until the deadline or a cap" (requires deadline_ms,
  /// max_uniques, max_bank_bytes, or an eventual cancel() to terminate).
  std::size_t target_uniques = 1000;

  /// Hard per-request cap on banked uniques (0 = none).  The job finalizes
  /// as kCapped at the first harvest boundary at or past the cap, bounding
  /// the client's bank memory at roughly max_uniques keys + one batch.
  std::size_t max_uniques = 0;

  /// Hard cap on the unique bank's approximate heap bytes (0 = none); see
  /// ShardedUniqueBank::size_bytes().  Same kCapped semantics as above.
  std::size_t max_bank_bytes = 0;

  /// Bound on the solution stream's buffered assignments (0 = unbounded).
  /// A full stream applies backpressure: the job's worker blocks at the
  /// next delivery until the consumer drains (or the job aborts), so a slow
  /// consumer throttles exactly its own job.
  std::size_t stream_capacity = 0;

  /// Deliver projected assignments through the stream (on by default).
  /// Count-only clients turn this off and read JobStats instead; the bank
  /// still deduplicates, but no assignment is materialized or buffered.
  bool deliver_solutions = true;

  /// Callback delivery: when set, each new unique assignment is handed to
  /// this callable synchronously from the worker thread instead of being
  /// buffered in the stream (stream_capacity is then ignored).  Must be
  /// thread-safe across jobs sharing the callable and fast — the round is
  /// stalled while it runs.
  std::function<void(const cnf::Assignment&)> on_solution;

  /// Per-request sampling (projection) set over 0-based variables.  Empty
  /// defers to the formula's own 'c ind' declaration (if any).  Scopes the
  /// amplifier's flip support and — unless config.projected_dedup is turned
  /// off — keys unique solutions on the projection, so the stream delivers
  /// exactly one full witness per distinct projection and JobStats::n_unique
  /// counts projections.  The job takes a normalized copy (sorted, deduped,
  /// out-of-range entries dropped).  Intentionally not part of the
  /// plan-cache key (it never changes the compiled circuit).
  std::vector<cnf::Var> sampling_set;

  /// Engine/loop tuning.  n_workers and max_rounds are ignored (the service
  /// owns scheduling); transform/cone_only/optimize_tape participate in the
  /// plan-cache key, so two requests differing only in those compile
  /// separate plans.  config.amplify is the per-job flip-amplification knob
  /// (see sampler::AmplifyConfig) — amplified uniques stream like any other
  /// and are additionally billed in JobStats.  config.projected_dedup /
  /// config.diversity_restart / config.lit_weights are the per-job
  /// projected-sampling knobs (see GdLoopConfig); none of them touch the
  /// plan-cache key.
  sampler::GradientConfig config = default_job_config();
};

enum class JobStatus : std::uint8_t {
  kQueued,           // submitted, waiting for a worker slice
  kRunning,          // a worker holds the job (between slices it re-queues)
  kCompleted,        // reached target_uniques
  kDeadlineExpired,  // budget ran out; partial results delivered
  kCancelled,        // client cancel() or server shutdown
  kCapped,           // hit max_uniques / max_bank_bytes
  kUnsat,            // the transformation proved the formula unsatisfiable
  kFailed,           // an error escaped the job (see JobStats::error); the
                     // job is contained — stream closed, fleet unaffected
  kRejected,         // admission control refused it at submit(), before any
                     // compile (see JobStats::error for the reason)
};

[[nodiscard]] constexpr bool job_status_terminal(JobStatus status) {
  return status != JobStatus::kQueued && status != JobStatus::kRunning;
}

[[nodiscard]] constexpr const char* job_status_name(JobStatus status) {
  switch (status) {
    case JobStatus::kQueued: return "queued";
    case JobStatus::kRunning: return "running";
    case JobStatus::kCompleted: return "completed";
    case JobStatus::kDeadlineExpired: return "deadline";
    case JobStatus::kCancelled: return "cancelled";
    case JobStatus::kCapped: return "capped";
    case JobStatus::kUnsat: return "unsat";
    case JobStatus::kFailed: return "failed";
    case JobStatus::kRejected: return "rejected";
  }
  return "?";
}

/// What went wrong, in decreasing order of "the request itself was the
/// problem".  kTransient and kResource are the retryable categories: the
/// scheduler re-enqueues those with exponential backoff up to
/// ServerConfig::max_retries before finalizing kFailed.
enum class ErrorCategory : std::uint8_t {
  kNone,       // no error (the default on every non-failed job)
  kAdmission,  // rejected at submit(): infeasible deadline or quota
  kCompile,    // the formula's transform/compile threw
  kResource,   // allocation failure (std::bad_alloc); retryable
  kTransient,  // momentary failure, expected to pass; retryable
  kExecution,  // an exception escaped the slice (engine, harvest, delivery)
  kInternal,   // unclassifiable (non-std::exception) — contained, never retried
};

[[nodiscard]] constexpr const char* error_category_name(ErrorCategory category) {
  switch (category) {
    case ErrorCategory::kNone: return "none";
    case ErrorCategory::kAdmission: return "admission";
    case ErrorCategory::kCompile: return "compile";
    case ErrorCategory::kResource: return "resource";
    case ErrorCategory::kTransient: return "transient";
    case ErrorCategory::kExecution: return "execution";
    case ErrorCategory::kInternal: return "internal";
  }
  return "?";
}

/// The error that failed (or last troubled) a job: what kind, at which
/// seam, and the exception text.  `site` is one of the fault_sites names
/// for slice-time errors, or "submit" for admission rejections.
struct ErrorInfo {
  ErrorCategory category = ErrorCategory::kNone;
  std::string site;
  std::string message;

  [[nodiscard]] bool ok() const { return category == ErrorCategory::kNone; }
};

/// Per-request accounting, final once the job is terminal (wait() first).
/// Snapshots taken earlier are consistent but mid-flight.
struct JobStats {
  std::size_t n_unique = 0;        // banked unique solutions
  std::size_t delivered = 0;       // assignments handed to the sink
  std::uint64_t rounds = 0;        // GD rounds fully or partially executed
  std::uint64_t gd_iterations = 0; // engine sweeps across all rounds
  std::uint64_t rows_validated = 0;
  /// Flip-mutant rows validated by the amplifier and the unique solutions
  /// among them (zero unless config.amplify.enabled).
  std::uint64_t amplified_candidates = 0;
  std::uint64_t amplified_uniques = 0;
  /// Rows re-seeded by the diversity objective (zero unless
  /// config.diversity_restart with an active sampling set).
  std::uint64_t diversity_restarted_rows = 0;
  /// Engine inputs carrying a literal-weight bias (zero when
  /// config.lit_weights is empty or nothing resolved onto an input).
  std::size_t weighted_inputs = 0;
  double queue_wait_ms = 0.0;      // total time spent waiting for a worker
  double exec_ms = 0.0;            // total time holding a worker
  /// Build cost of this job's plan — nonzero only on the one request that
  /// actually compiled it (the entry's recorded one-time cost).  Requests
  /// that waited on another job's in-flight compile bill cache_wait_ms
  /// instead, so fleet-wide sums of compile_ms equal real compile work.
  double compile_ms = 0.0;
  /// Time blocked on the plan cache without compiling: an in-flight build
  /// by another request, or the (cheap) fingerprint + lookup on a hit.
  double cache_wait_ms = 0.0;
  /// Harvest/validation time inside this job's slices (phase-1 eval +
  /// word-parallel accept), and amplifier wave time; both already included
  /// in exec_ms, split out here from the same clock.
  double harvest_ms = 0.0;
  double amplify_ms = 0.0;
  double wall_ms = 0.0;            // submission -> terminal
  bool plan_cache_hit = false;     // plan reused (possibly after waiting on
                                   // another request's in-flight compile)
  std::size_t bank_bytes = 0;      // final bank footprint estimate
  /// Set when the job failed (kFailed), was rejected (kRejected), or
  /// survived transient errors on the way to another terminal status (the
  /// last such error is kept, with `retries` saying how many re-enqueues it
  /// cost).  ok() on every untroubled job.
  ErrorInfo error;
  /// Transient-retry re-enqueues consumed (bounded by ServerConfig::max_retries).
  std::uint32_t retries = 0;
  /// Admission accepted the job only after shrinking its round budget (see
  /// AdmissionConfig::allow_degrade); the stream is then a pure function of
  /// the *degraded* config, not the submitted one.
  bool degraded = false;
};

}  // namespace hts::service
