#include "service/server.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <thread>
#include <utility>

#include "core/harvester.hpp"
#include "core/round_runner.hpp"
#include "core/unique_bank.hpp"
#include "prob/engine.hpp"
#include "util/mutex.hpp"
#include "util/rng.hpp"
#include "util/stop_token.hpp"
#include "util/thread_annotations.hpp"
#include "util/timer.hpp"

namespace hts::service {

namespace detail {

/// One submitted request's full lifetime: scheduler bookkeeping, the lazily
/// built execution state (plan, engine, bank, harvester, runner — created
/// on the job's first slice, released at finalize so terminal jobs hold no
/// engine memory), and the cross-thread stats clients poll.
///
/// Concurrency contract: the execution-state block is touched only by the
/// worker currently holding the job (jobs are in exactly one of ready_/
/// running_/terminal, never two places); `status` is atomic; `stats` is
/// guarded by `mutex` (annotated — Clang -Wthread-safety enforces it).
/// `last_pop_seq` and `enqueued_at_ms` are guarded by the *server* mutex_
/// across the enqueue -> pop handoff, a cross-object guard the analysis
/// cannot express on this struct, so those two stay comment-documented.
/// Lock order is server mutex_ -> job mutex; no path takes them in reverse.
struct Job {
  explicit Job(SamplingRequest req)
      : request(std::move(req)),
        deadline(request.deadline_ms > 0.0 ? request.deadline_ms : -1.0),
        stream(std::make_shared<SolutionStream>(request.stream_capacity,
                                                request.on_solution)) {}

  SamplingRequest request;
  std::uint64_t id = 0;
  std::uint64_t submit_seq = 0;
  /// Clock starts at construction (== submission), so queue wait counts
  /// against the budget: that is the deadline the scheduler orders by.
  util::Deadline deadline;
  util::StopSource abort;
  std::atomic<bool> user_cancelled{false};
  std::shared_ptr<SolutionStream> stream;
  std::atomic<JobStatus> status{JobStatus::kQueued};

  // ---- execution state (worker-held; see contract above) ----
  sampler::GdLoopConfig loop_config;
  sampler::RunOptions run_options;
  sampler::GdProblem gd_problem;
  std::shared_ptr<const CompiledPlan> plan;
  std::unique_ptr<sampler::ShardedUniqueBank> bank;
  std::unique_ptr<prob::Engine> engine;
  sampler::RunResult result;
  std::unique_ptr<sampler::Harvester<sampler::ShardedUniqueBank>> harvester;
  std::unique_ptr<sampler::RoundRunner<sampler::ShardedUniqueBank>> runner;
  /// Rounds claimed so far; round r seeds util::Rng::stream(seed, r).
  std::uint64_t rounds_started = 0;
  /// Round-robin stamp of the job's own last pop (guarded by the server
  /// mutex): among one client's deadline-tied jobs, the least recently
  /// scheduled one runs next, so re-queued long jobs interleave with their
  /// siblings instead of monopolizing the FIFO head.
  std::uint64_t last_pop_seq = 0;
  /// lifetime mark of the latest enqueue (written and read under the
  /// server mutex across the enqueue -> pop handoff).
  double enqueued_at_ms = 0.0;

  // ---- cross-thread accounting ----
  mutable util::Mutex mutex;
  util::CondVar done_cv;
  JobStats stats HTS_GUARDED_BY(mutex);
  util::Timer lifetime;

  void cancel() {
    user_cancelled.store(true, std::memory_order_relaxed);
    abort.request_stop();
  }
};

}  // namespace detail

using detail::Job;

// ---- JobHandle ---------------------------------------------------------------

JobHandle::JobHandle(std::shared_ptr<detail::Job> job) : job_(std::move(job)) {}

std::uint64_t JobHandle::id() const { return job_->id; }

JobStatus JobHandle::status() const {
  return job_->status.load(std::memory_order_acquire);
}

JobStats JobHandle::stats() const {
  util::LockGuard lock(job_->mutex);
  return job_->stats;
}

SolutionStream& JobHandle::stream() const { return *job_->stream; }

void JobHandle::cancel() const { job_->cancel(); }

// status is atomic, but the waits still hold job mutex: finalize() stores
// the terminal status under it before notifying, so a waiter can never
// check the predicate, miss the store, and then sleep through the notify.

JobStatus JobHandle::wait() const {
  util::LockGuard lock(job_->mutex);
  while (!job_status_terminal(job_->status.load(std::memory_order_acquire))) {
    job_->done_cv.wait(job_->mutex);
  }
  return job_->status.load(std::memory_order_acquire);
}

bool JobHandle::wait_for(double timeout_ms) const {
  const util::Timer timer;
  util::LockGuard lock(job_->mutex);
  while (!job_status_terminal(job_->status.load(std::memory_order_acquire))) {
    const double left = timeout_ms - timer.milliseconds();
    if (left <= 0.0) return false;
    job_->done_cv.wait_for_ms(job_->mutex, left);
  }
  return true;
}

// ---- Server ------------------------------------------------------------------

Server::Server(ServerConfig config)
    : config_(config),
      n_workers_(config.n_workers != 0
                     ? config.n_workers
                     : std::max<std::size_t>(
                           1, std::thread::hardware_concurrency())),
      cache_(config.plan_cache_capacity),
      pool_(n_workers_) {
  if (config_.rounds_per_slice == 0) config_.rounds_per_slice = 1;
  {
    // No worker exists yet, but workers_alive_ is mutex_-guarded and the
    // analysis (rightly) has no "still single-threaded" notion — and the
    // first submitted worker starts concurrently with the rest of this body.
    util::LockGuard lock(mutex_);
    workers_alive_ = n_workers_;
  }
  for (std::size_t w = 0; w < n_workers_; ++w) {
    pool_.submit([this] { worker_loop(); });
  }
}

Server::~Server() { shutdown(); }

JobHandle Server::submit(SamplingRequest request) {
  auto job = std::make_shared<Job>(std::move(request));
  bool rejected = false;
  {
    util::LockGuard lock(mutex_);
    job->id = next_id_++;
    job->submit_seq = job->id;
    ++stats_.submitted;
    if (shutdown_) {
      rejected = true;
    } else {
      job->enqueued_at_ms = job->lifetime.milliseconds();
      ready_.push_back(job);
    }
  }
  if (rejected) {
    job->cancel();
    finalize(job, JobStatus::kCancelled);
  } else {
    work_cv_.notify_one();
  }
  return JobHandle(job);
}

void Server::shutdown() {
  std::vector<std::shared_ptr<Job>> outstanding;
  {
    util::LockGuard lock(mutex_);
    shutdown_ = true;
    outstanding.insert(outstanding.end(), ready_.begin(), ready_.end());
    outstanding.insert(outstanding.end(), running_.begin(), running_.end());
  }
  // Abort everything in flight; workers retire the ready queue (each pop
  // sees the cancel and finalizes without spending a slice) and then exit.
  for (const std::shared_ptr<Job>& job : outstanding) job->cancel();
  work_cv_.notify_all();
  util::LockGuard lock(mutex_);
  while (workers_alive_ != 0) workers_exit_cv_.wait(mutex_);
}

ServerStats Server::stats() const {
  util::LockGuard lock(mutex_);
  return stats_;
}

bool Server::schedules_before_locked(const Job& a, const Job& b) const {
  // Aborted jobs first: retiring one frees its slot without spending a
  // slice, so a cancelled job never waits behind real work.
  const bool abort_a = a.abort.stop_requested();
  const bool abort_b = b.abort.stop_requested();
  if (abort_a != abort_b) return abort_a;
  // EDF on remaining budget (both read "now" within one scan, so this
  // orders like absolute deadlines); no-deadline jobs report ~1e18 and sort
  // last together, where the round-robin below takes over.
  const double da = a.deadline.remaining_ms();
  const double db = b.deadline.remaining_ms();
  if (da != db) return da < db;
  const auto stamp = [this](std::uint64_t client) -> std::uint64_t {
    const auto it = client_last_pop_.find(client);
    return it == client_last_pop_.end() ? 0 : it->second;
  };
  const std::uint64_t ca = stamp(a.request.client_id);
  const std::uint64_t cb = stamp(b.request.client_id);
  if (ca != cb) return ca < cb;  // least recently scheduled client first
  // Within one client: round-robin across its jobs too (a re-queued job
  // carries a fresh stamp, so an unserved sibling goes first), then FIFO.
  if (a.last_pop_seq != b.last_pop_seq) return a.last_pop_seq < b.last_pop_seq;
  return a.submit_seq < b.submit_seq;
}

std::shared_ptr<Job> Server::pop_best_locked() {
  std::size_t best = 0;
  for (std::size_t i = 1; i < ready_.size(); ++i) {
    if (schedules_before_locked(*ready_[i], *ready_[best])) best = i;
  }
  std::shared_ptr<Job> job = ready_[best];
  ready_.erase(ready_.begin() +
               static_cast<std::ptrdiff_t>(best));
  client_last_pop_[job->request.client_id] = ++pop_seq_;
  job->last_pop_seq = pop_seq_;
  ++stats_.slices;
  {
    util::LockGuard jlock(job->mutex);
    job->stats.queue_wait_ms +=
        job->lifetime.milliseconds() - job->enqueued_at_ms;
  }
  return job;
}

void Server::reap_running_locked() {
  for (const std::shared_ptr<Job>& job : running_) {
    if (job->deadline.expired()) job->abort.request_stop();
  }
}

void Server::worker_loop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      util::LockGuard lock(mutex_);
      for (;;) {
        reap_running_locked();
        if (!ready_.empty()) break;
        if (shutdown_) {
          --workers_alive_;
          workers_exit_cv_.notify_all();
          return;
        }
        // Sleep until work arrives — but never past the nearest running
        // deadline, so an expired job's abort token fires promptly even
        // when every other worker is busy inside a slice.
        double margin_ms = std::numeric_limits<double>::infinity();
        for (const std::shared_ptr<Job>& running : running_) {
          margin_ms = std::min(margin_ms, running->deadline.remaining_ms());
        }
        if (margin_ms > 1e17) {
          work_cv_.wait(mutex_);
        } else {
          margin_ms = std::clamp(margin_ms, 1.0, 50.0);
          work_cv_.wait_for_ms(mutex_, margin_ms);
        }
      }
      job = pop_best_locked();
      job->status.store(JobStatus::kRunning, std::memory_order_release);
      running_.push_back(job);
    }

    const double slice_begin_ms = job->lifetime.milliseconds();
    const JobStatus outcome = run_slice(*job);
    {
      util::LockGuard jlock(job->mutex);
      job->stats.exec_ms += job->lifetime.milliseconds() - slice_begin_ms;
    }

    bool requeued = false;
    {
      util::LockGuard lock(mutex_);
      running_.erase(std::find(running_.begin(), running_.end(), job));
      if (outcome == JobStatus::kRunning) {
        job->enqueued_at_ms = job->lifetime.milliseconds();
        job->status.store(JobStatus::kQueued, std::memory_order_release);
        ready_.push_back(job);
        requeued = true;
      }
    }
    if (requeued) {
      work_cv_.notify_one();
    } else {
      finalize(job, outcome);
    }
  }
}

JobStatus Server::run_slice(Job& job) {
  const SamplingRequest& request = job.request;

  // A job can be aborted (cancel, shutdown, reaper) or expire while it sits
  // in the queue; retire it before paying for compilation or engine
  // allocation.
  if (job.user_cancelled.load(std::memory_order_relaxed)) {
    return JobStatus::kCancelled;
  }
  if (job.deadline.expired()) return JobStatus::kDeadlineExpired;
  if (job.abort.stop_requested()) return JobStatus::kCancelled;

  if (job.plan == nullptr) {
    // First slice: pull the compiled artifacts from the cache (or compile
    // them, once per distinct formula/options) and build the job's private
    // execution state around them.
    PlanOptions plan_options;
    plan_options.cone_only = request.config.cone_only;
    plan_options.optimize_tape = request.config.optimize_tape;
    plan_options.transform = request.config.transform;
    const util::Timer compile_timer;
    bool hit = false;
    job.plan = cache_.get_or_compile(request.formula, plan_options, &hit);
    {
      util::LockGuard jlock(job.mutex);
      job.stats.compile_ms = compile_timer.milliseconds();
      job.stats.plan_cache_hit = hit;
    }
    if (job.plan->transformed.proven_unsat) return JobStatus::kUnsat;

    job.loop_config = sampler::make_gd_loop_config(request.config);
    job.run_options.min_solutions = request.target_uniques;
    job.run_options.budget_ms = request.deadline_ms;
    job.run_options.seed = request.seed;
    const bool deliver =
        request.deliver_solutions || static_cast<bool>(request.on_solution);
    job.run_options.store_limit =
        deliver ? std::numeric_limits<std::size_t>::max() : 0;
    job.run_options.stop = job.abort.token();
    job.gd_problem.circuit = &job.plan->transformed.circuit;
    job.gd_problem.var_signal = &job.plan->transformed.var_signal;
    job.bank = std::make_unique<sampler::ShardedUniqueBank>(
        job.gd_problem.circuit->n_inputs());
    job.engine = std::make_unique<prob::Engine>(
        *job.plan->compiled, sampler::engine_config_for(job.loop_config));
    job.harvester =
        std::make_unique<sampler::Harvester<sampler::ShardedUniqueBank>>(
            job.gd_problem, request.formula, job.run_options, *job.bank,
            job.result, &*job.plan->eval_plan, /*inline_eval=*/true);
    job.runner = std::make_unique<
        sampler::RoundRunner<sampler::ShardedUniqueBank>>(
        job.loop_config, *job.engine, *job.harvester);
  }

  auto reached_target = [&] {
    return request.target_uniques > 0 &&
           job.bank->size() >= request.target_uniques;
  };
  auto capped = [&] {
    return (request.max_uniques > 0 &&
            job.bank->size() >= request.max_uniques) ||
           (request.max_bank_bytes > 0 &&
            job.bank->size_bytes() >= request.max_bank_bytes);
  };
  // New uniques land in job.result.solutions in harvest order; hand them to
  // the sink and update the live counters after every harvest.
  const util::StopToken abort_token = job.abort.token();
  auto checkpoint = [&](int) {
    for (cnf::Assignment& assignment : job.result.solutions) {
      if (!job.stream->push(std::move(assignment), abort_token,
                            job.deadline)) {
        break;  // dropped: consumer cancelled or the job is winding down
      }
    }
    job.result.solutions.clear();
    util::LockGuard jlock(job.mutex);
    job.stats.n_unique = job.bank->size();
    job.stats.delivered = job.stream->delivered();
    job.stats.rounds = job.rounds_started;
    job.stats.gd_iterations = job.runner->gd_iterations();
    job.stats.rows_validated = job.harvester->rows_validated();
  };
  auto stop_now = [&] {
    return reached_target() || capped() || job.deadline.expired() ||
           job.abort.stop_requested();
  };

  for (std::size_t s = 0; s < config_.rounds_per_slice; ++s) {
    if (stop_now()) break;
    // Per-round RNG streams make the job's trajectory a pure function of
    // (seed, round index) — scheduling order and fleet size never reach it.
    util::Rng rng = util::Rng::stream(request.seed, job.rounds_started);
    ++job.rounds_started;
    job.runner->run_round(rng, checkpoint, stop_now);
  }

  if (reached_target()) return JobStatus::kCompleted;
  if (job.user_cancelled.load(std::memory_order_relaxed)) {
    return JobStatus::kCancelled;
  }
  if (capped()) return JobStatus::kCapped;
  if (job.deadline.expired()) return JobStatus::kDeadlineExpired;
  if (job.abort.stop_requested()) return JobStatus::kCancelled;
  return JobStatus::kRunning;
}

void Server::finalize(const std::shared_ptr<Job>& job, JobStatus status) {
  {
    util::LockGuard jlock(job->mutex);
    JobStats& stats = job->stats;
    stats.wall_ms = job->lifetime.milliseconds();
    stats.rounds = job->rounds_started;
    if (job->bank) {
      stats.n_unique = job->bank->size();
      stats.bank_bytes = job->bank->size_bytes();
    }
    if (job->harvester) stats.rows_validated = job->harvester->rows_validated();
    if (job->runner) stats.gd_iterations = job->runner->gd_iterations();
    stats.delivered = job->stream->delivered();
  }
  // Release the execution state in dependency order (runner borrows
  // engine+harvester; harvester borrows bank/options/problem): a terminal
  // job reachable through lingering handles must not pin engine buffers or
  // the compiled plan.
  job->runner.reset();
  job->harvester.reset();
  job->engine.reset();
  job->bank.reset();
  job->result = sampler::RunResult{};
  job->plan.reset();
  job->stream->close();
  // Fleet counters move before the terminal status is visible, so a client
  // that wait()s and then reads Server::stats() observes its own job.
  {
    util::LockGuard lock(mutex_);
    // Drop the client's round-robin stamp once its last outstanding job is
    // gone — a long-lived server must not grow state per client_id ever
    // seen.  (A returning client restarts as "least recently scheduled",
    // exactly like a new one.)
    const std::uint64_t client = job->request.client_id;
    auto has_same_client = [client](const std::shared_ptr<Job>& other) {
      return other->request.client_id == client;
    };
    if (std::none_of(ready_.begin(), ready_.end(), has_same_client) &&
        std::none_of(running_.begin(), running_.end(), has_same_client)) {
      client_last_pop_.erase(client);
    }
    switch (status) {
      case JobStatus::kCompleted: ++stats_.completed; break;
      case JobStatus::kDeadlineExpired: ++stats_.deadline_expired; break;
      case JobStatus::kCancelled: ++stats_.cancelled; break;
      case JobStatus::kCapped: ++stats_.capped; break;
      case JobStatus::kUnsat: ++stats_.unsat; break;
      case JobStatus::kQueued:
      case JobStatus::kRunning: break;  // unreachable: finalize is terminal
    }
  }
  {
    util::LockGuard jlock(job->mutex);
    job->status.store(status, std::memory_order_release);
  }
  job->done_cv.notify_all();
}

}  // namespace hts::service
