#include "service/server.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <exception>
#include <limits>
#include <new>
#include <string>
#include <thread>
#include <utility>

#include "core/harvester.hpp"
#include "core/round_runner.hpp"
#include "core/unique_bank.hpp"
#include "prob/engine.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "util/mutex.hpp"
#include "util/rng.hpp"
#include "util/stop_token.hpp"
#include "util/thread_annotations.hpp"
#include "util/timer.hpp"

namespace hts::service {

namespace {

// ---- telemetry seams ---------------------------------------------------------
//
// Every record site below is gated on one relaxed load (metrics_enabled /
// trace_enabled); the registry/sink locks are leaves (util/mutex.hpp item
// 5), so these helpers are safe under Server::mutex_ and Job::mutex alike.
// Telemetry only ever *reads* job state — never the RNG, never ordering —
// so instrumented runs stream bit-identical solutions.

/// Async-track category of the per-job spans; (cat, job id) keys one
/// Perfetto track covering submit -> finalize.
constexpr const char* kJobCat = "job";

telemetry::Gauge& queue_depth_gauge() {
  static telemetry::Gauge& gauge =
      telemetry::Registry::global().gauge("hts_scheduler_queue_depth");
  return gauge;
}

void record_slice_ms(double slice_ms) {
  static telemetry::Histogram& slice_hist =
      telemetry::Registry::global().histogram(
          "hts_scheduler_slice_ms",
          {0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0});
  slice_hist.observe(slice_ms);
}

/// Per-client admission counters.  Client ids are formatted per event;
/// submit/retry frequency is scheduling-edge, not per-iteration, so the
/// by-name registry lookup is acceptable there.
void record_client_event(const char* name, std::uint64_t client_id) {
  telemetry::Registry::global()
      .counter(name, {{"client", std::to_string(client_id)}})
      .increment();
}

void record_finalized(JobStatus status) {
  telemetry::Registry::global()
      .counter("hts_jobs_finalized_total",
               {{"status", job_status_name(status)}})
      .increment();
}

/// Interns an error's site string onto the static fault_sites constants so
/// the trace event carries a stable pointer (TraceEvent names are never
/// copied).  Unknown sites collapse onto "slice".
const char* intern_site(const std::string& site) {
  for (const char* known :
       {fault_sites::kCompile, fault_sites::kEngineAlloc, fault_sites::kHarvest,
        fault_sites::kStreamPush, fault_sites::kSlice}) {
    if (site == known) return known;
  }
  return fault_sites::kSlice;
}

}  // namespace

namespace detail {

/// One submitted request's full lifetime: scheduler bookkeeping, the lazily
/// built execution state (plan, engine, bank, harvester, runner — created
/// on the job's first slice, released at finalize so terminal jobs hold no
/// engine memory), and the cross-thread stats clients poll.
///
/// Concurrency contract: the execution-state block is touched only by the
/// worker currently holding the job (jobs are in exactly one of ready_/
/// running_/terminal, never two places); `status` is atomic; `stats` is
/// guarded by `mutex` (annotated — Clang -Wthread-safety enforces it).
/// `last_pop_seq` and `enqueued_at_ms` are guarded by the *server* mutex_
/// across the enqueue -> pop handoff, a cross-object guard the analysis
/// cannot express on this struct, so those two stay comment-documented.
/// Lock order is server mutex_ -> job mutex; no path takes them in reverse.
struct Job {
  explicit Job(SamplingRequest req)
      : request(std::move(req)),
        deadline(request.deadline_ms > 0.0 ? request.deadline_ms : -1.0),
        stream(std::make_shared<SolutionStream>(request.stream_capacity,
                                                request.on_solution)) {}

  SamplingRequest request;
  std::uint64_t id = 0;
  std::uint64_t submit_seq = 0;
  /// Clock starts at construction (== submission), so queue wait counts
  /// against the budget: that is the deadline the scheduler orders by.
  util::Deadline deadline;
  util::StopSource abort;
  std::atomic<bool> user_cancelled{false};
  std::shared_ptr<SolutionStream> stream;
  std::atomic<JobStatus> status{JobStatus::kQueued};

  // ---- execution state (worker-held; see contract above) ----
  sampler::GdLoopConfig loop_config;
  sampler::RunOptions run_options;
  sampler::GdProblem gd_problem;
  std::shared_ptr<const CompiledPlan> plan;
  std::unique_ptr<sampler::ShardedUniqueBank> bank;
  std::unique_ptr<prob::Engine> engine;
  sampler::RunResult result;
  std::unique_ptr<sampler::Harvester<sampler::ShardedUniqueBank>> harvester;
  std::unique_ptr<sampler::RoundRunner<sampler::ShardedUniqueBank>> runner;
  /// Rounds claimed so far; round r seeds util::Rng::stream(seed, r).
  /// Rolled back when a round throws mid-flight, so a retry re-runs the
  /// faulted round with the same RNG stream (bank dedup keeps delivery
  /// exactly-once).
  std::uint64_t rounds_started = 0;
  /// Retry re-enqueues consumed so far (worker-held, like rounds_started;
  /// the client-visible copy is stats.retries).
  std::uint32_t retries = 0;
  /// The last claimed round threw mid-flight: the next slice must re-run it
  /// to its natural end (skipping the pre-round stop check) so the stream
  /// converges to the fault-free trajectory instead of stopping at the
  /// retry boundary with the round half-delivered.
  bool replay_round = false;
  /// Phase marker for error attribution: which seam the slice is currently
  /// inside, so a real (non-injected) exception is blamed on the right
  /// site.  Worker-held; read only by the worker that just caught.
  const char* fail_site = fault_sites::kSlice;
  /// Round-robin stamp of the job's own last pop (guarded by the server
  /// mutex): among one client's deadline-tied jobs, the least recently
  /// scheduled one runs next, so re-queued long jobs interleave with their
  /// siblings instead of monopolizing the FIFO head.
  std::uint64_t last_pop_seq = 0;
  /// lifetime mark of the latest enqueue (written and read under the
  /// server mutex across the enqueue -> pop handoff).
  double enqueued_at_ms = 0.0;
  /// Earliest lifetime mark at which a retried job may be popped again
  /// (exponential backoff); 0 = immediately.  Guarded by the server mutex,
  /// like enqueued_at_ms.
  double not_before_ms = 0.0;
  /// Whether this job was counted into client_usage_ at admission (rejected
  /// and post-shutdown jobs never are).  Guarded by the server mutex.
  bool usage_accounted = false;

  // ---- cross-thread accounting ----
  mutable util::Mutex mutex;
  util::CondVar done_cv;
  JobStats stats HTS_GUARDED_BY(mutex);
  util::Timer lifetime;

  /// The job's relative clock at an absolute util::monotonic_ns() stamp.
  /// Every boundary (enqueue, pop, slice end) captures `now_ns` once and
  /// derives both its *_ms stats delta and its trace-span timestamp from
  /// it, so the two bookkeeping views can never disagree.
  [[nodiscard]] double ms_at(std::uint64_t now_ns) const {
    return static_cast<double>(now_ns - lifetime.start_ns()) * 1e-6;
  }
  /// Absolute submission stamp (the async job track's begin).
  [[nodiscard]] std::uint64_t submit_ns() const { return lifetime.start_ns(); }

  void cancel() {
    user_cancelled.store(true, std::memory_order_relaxed);
    abort.request_stop();
  }
};

}  // namespace detail

using detail::Job;

// ---- JobHandle ---------------------------------------------------------------

JobHandle::JobHandle(std::shared_ptr<detail::Job> job) : job_(std::move(job)) {}

std::uint64_t JobHandle::id() const { return job_->id; }

JobStatus JobHandle::status() const {
  return job_->status.load(std::memory_order_acquire);
}

JobStats JobHandle::stats() const {
  util::LockGuard lock(job_->mutex);
  return job_->stats;
}

SolutionStream& JobHandle::stream() const { return *job_->stream; }

ErrorInfo JobHandle::error() const {
  util::LockGuard lock(job_->mutex);
  return job_->stats.error;
}

void JobHandle::cancel() const { job_->cancel(); }

// status is atomic, but the waits still hold job mutex: finalize() stores
// the terminal status under it before notifying, so a waiter can never
// check the predicate, miss the store, and then sleep through the notify.

JobStatus JobHandle::wait() const {
  util::LockGuard lock(job_->mutex);
  while (!job_status_terminal(job_->status.load(std::memory_order_acquire))) {
    job_->done_cv.wait(job_->mutex);
  }
  return job_->status.load(std::memory_order_acquire);
}

bool JobHandle::wait_for(double timeout_ms) const {
  const util::Timer timer;
  util::LockGuard lock(job_->mutex);
  while (!job_status_terminal(job_->status.load(std::memory_order_acquire))) {
    const double left = timeout_ms - timer.milliseconds();
    if (left <= 0.0) return false;
    job_->done_cv.wait_for_ms(job_->mutex, left);
  }
  return true;
}

// ---- Server ------------------------------------------------------------------

Server::Server(ServerConfig config)
    : config_(config),
      n_workers_(config.n_workers != 0
                     ? config.n_workers
                     : std::max<std::size_t>(
                           1, std::thread::hardware_concurrency())),
      cache_(config.plan_cache_capacity),
      pool_(n_workers_) {
  if (config_.rounds_per_slice == 0) config_.rounds_per_slice = 1;
  if (config_.retry_backoff_ms < 0.0) config_.retry_backoff_ms = 0.0;
  // Arm the injector before any worker exists; a malformed spec throws out
  // of the constructor (the pool joins its idle threads on unwind).
  injector_ = util::FaultInjector::from_spec(
      config_.fault_spec.empty() ? util::FaultInjector::env_spec()
                                 : config_.fault_spec);
  {
    // No worker exists yet, but workers_alive_ is mutex_-guarded and the
    // analysis (rightly) has no "still single-threaded" notion — and the
    // first submitted worker starts concurrently with the rest of this body.
    util::LockGuard lock(mutex_);
    workers_alive_ = n_workers_;
    avg_job_cost_ms_ = config_.admission.initial_job_cost_ms;
  }
  for (std::size_t w = 0; w < n_workers_; ++w) {
    pool_.submit([this, w] { worker_loop(w); });
  }
}

Server::~Server() { shutdown(); }

JobHandle Server::submit(SamplingRequest request) {
  auto job = std::make_shared<Job>(std::move(request));
  enum class Outcome : std::uint8_t { kAccepted, kShutdown, kRejected };
  Outcome outcome = Outcome::kAccepted;
  ErrorInfo error;
  std::uint64_t enqueue_ns = 0;
  {
    util::LockGuard lock(mutex_);
    job->id = next_id_++;
    job->submit_seq = job->id;
    ++stats_.submitted;
    if (shutdown_) {
      outcome = Outcome::kShutdown;
    } else if (!admit_locked(*job, &error)) {
      outcome = Outcome::kRejected;
    } else {
      ClientUsage& usage = client_usage_[job->request.client_id];
      ++usage.live_jobs;
      usage.reserved_bank_bytes += job->request.max_bank_bytes;
      job->usage_accounted = true;
      enqueue_ns = util::monotonic_ns();
      job->enqueued_at_ms = job->ms_at(enqueue_ns);
      ready_.push_back(job);
    }
  }
  // The job's async trace track opens at submission for every outcome;
  // finalize() closes it, so even an immediately rejected job renders as a
  // (tiny) balanced span.
  if (telemetry::trace_enabled()) {
    telemetry::TraceSink::global().async_begin("job", kJobCat, job->id,
                                               job->submit_ns());
  }
  switch (outcome) {
    case Outcome::kShutdown:
      job->cancel();
      finalize(job, JobStatus::kCancelled);
      break;
    case Outcome::kRejected: {
      // Rejected before any compile or engine work: record the reason and
      // finalize immediately — the stream closes, wait() returns, and a
      // blocked next() sees end-of-stream, all within submit().
      {
        util::LockGuard jlock(job->mutex);
        job->stats.error = error;
      }
      if (telemetry::metrics_enabled()) {
        record_client_event("hts_scheduler_rejected_total",
                            job->request.client_id);
      }
      if (telemetry::trace_enabled()) {
        telemetry::TraceSink::global().async_instant(
            "rejected", kJobCat, job->id, util::monotonic_ns());
      }
      finalize(job, JobStatus::kRejected);
      break;
    }
    case Outcome::kAccepted:
      if (telemetry::metrics_enabled()) {
        record_client_event("hts_scheduler_admitted_total",
                            job->request.client_id);
        queue_depth_gauge().add(1);
      }
      if (telemetry::trace_enabled()) {
        telemetry::TraceSink::global().async_begin("queue", kJobCat, job->id,
                                                   enqueue_ns);
      }
      work_cv_.notify_one();
      break;
  }
  return JobHandle(job);
}

bool Server::admit_locked(Job& job, ErrorInfo* error) {
  const SamplingRequest& request = job.request;
  const AdmissionConfig& admission = config_.admission;
  auto reject = [&](const std::string& message) {
    error->category = ErrorCategory::kAdmission;
    error->site = "submit";
    error->message = message;
    return false;
  };

  // Quotas first — they hold regardless of the feasibility switch.
  if (admission.max_client_jobs != 0 || admission.max_client_bank_bytes != 0) {
    const auto it = client_usage_.find(request.client_id);
    const ClientUsage usage =
        it == client_usage_.end() ? ClientUsage{} : it->second;
    if (admission.max_client_jobs != 0 &&
        usage.live_jobs >= admission.max_client_jobs) {
      return reject("client job quota exceeded (" +
                    std::to_string(usage.live_jobs) + "/" +
                    std::to_string(admission.max_client_jobs) + " live jobs)");
    }
    if (admission.max_client_bank_bytes != 0) {
      if (request.max_bank_bytes == 0) {
        return reject(
            "bank-byte quota in force: request must set max_bank_bytes");
      }
      if (usage.reserved_bank_bytes + request.max_bank_bytes >
          admission.max_client_bank_bytes) {
        return reject(
            "client bank-byte quota exceeded (" +
            std::to_string(usage.reserved_bank_bytes) + " reserved + " +
            std::to_string(request.max_bank_bytes) + " requested > " +
            std::to_string(admission.max_client_bank_bytes) + ")");
      }
    }
  }

  if (!admission.enabled || request.deadline_ms <= 0.0) return true;

  // Feasibility: project this request's queue wait from the calibrated
  // per-job cost and the work already ahead of it (running slices plus
  // queued jobs with earlier deadlines — EDF serves those first).
  std::size_t ahead = running_.size();
  for (const std::shared_ptr<Job>& queued : ready_) {
    if (queued->deadline.remaining_ms() < request.deadline_ms) ++ahead;
  }
  const double cost = avg_job_cost_ms_;
  const double wait =
      cost * static_cast<double>(ahead) / static_cast<double>(n_workers_);
  const double budget = request.deadline_ms / admission.safety_factor;
  const double slack = budget - wait;  // time left for the job's own work
  if (slack >= cost) return true;

  // Infeasible as submitted.  A shrunk batch costs roughly proportionally
  // less per round, so degrade by the factor needed to fit — if the config
  // allows it and the factor is sane.
  if (admission.max_degrade > 1.0 && slack > 0.0) {
    const double shrink = cost / slack;
    if (shrink <= admission.max_degrade) {
      job.request.config.batch =
          std::max(admission.min_degraded_batch,
                   static_cast<std::size_t>(
                       static_cast<double>(job.request.config.batch) / shrink));
      {
        util::LockGuard jlock(job.mutex);
        job.stats.degraded = true;
      }
      ++stats_.degraded;
      return true;
    }
  }
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "deadline infeasible: projected wait %.1fms + cost %.1fms "
                "exceeds deadline %.1fms / safety %.2f",
                wait, cost, request.deadline_ms, admission.safety_factor);
  return reject(buffer);
}

void Server::shutdown() {
  std::vector<std::shared_ptr<Job>> outstanding;
  {
    util::LockGuard lock(mutex_);
    shutdown_ = true;
    outstanding.insert(outstanding.end(), ready_.begin(), ready_.end());
    outstanding.insert(outstanding.end(), running_.begin(), running_.end());
  }
  // Abort everything in flight; workers retire the ready queue (each pop
  // sees the cancel and finalizes without spending a slice) and then exit.
  for (const std::shared_ptr<Job>& job : outstanding) job->cancel();
  work_cv_.notify_all();
  util::LockGuard lock(mutex_);
  while (workers_alive_ != 0) workers_exit_cv_.wait(mutex_);
}

ServerStats Server::stats() const {
  util::LockGuard lock(mutex_);
  return stats_;
}

StatsSnapshot Server::stats_snapshot() const {
  StatsSnapshot snapshot;
  {
    util::LockGuard lock(mutex_);
    snapshot.server = stats_;
    snapshot.queue_depth = ready_.size();
    snapshot.running = running_.size();
  }
  snapshot.plan_cache = cache_.stats();
  const telemetry::Registry& registry = telemetry::Registry::global();
  snapshot.metrics_json = registry.snapshot_json();
  snapshot.metrics_prometheus = registry.render_prometheus();
  return snapshot;
}

bool Server::schedules_before_locked(const Job& a, const Job& b) const {
  // Aborted jobs first: retiring one frees its slot without spending a
  // slice, so a cancelled job never waits behind real work.
  const bool abort_a = a.abort.stop_requested();
  const bool abort_b = b.abort.stop_requested();
  if (abort_a != abort_b) return abort_a;
  // EDF on remaining budget (both read "now" within one scan, so this
  // orders like absolute deadlines); no-deadline jobs report ~1e18 and sort
  // last together, where the round-robin below takes over.
  const double da = a.deadline.remaining_ms();
  const double db = b.deadline.remaining_ms();
  if (da != db) return da < db;
  const auto stamp = [this](std::uint64_t client) -> std::uint64_t {
    const auto it = client_last_pop_.find(client);
    return it == client_last_pop_.end() ? 0 : it->second;
  };
  const std::uint64_t ca = stamp(a.request.client_id);
  const std::uint64_t cb = stamp(b.request.client_id);
  if (ca != cb) return ca < cb;  // least recently scheduled client first
  // Within one client: round-robin across its jobs too (a re-queued job
  // carries a fresh stamp, so an unserved sibling goes first), then FIFO.
  if (a.last_pop_seq != b.last_pop_seq) return a.last_pop_seq < b.last_pop_seq;
  return a.submit_seq < b.submit_seq;
}

bool Server::eligible_locked(const Job& job) const {
  // Aborted/expired jobs bypass any backoff: retiring them is cheap and
  // frees their slot immediately.
  if (job.abort.stop_requested() || job.deadline.expired()) return true;
  return job.not_before_ms <= 0.0 ||
         job.lifetime.milliseconds() >= job.not_before_ms;
}

std::shared_ptr<Job> Server::pop_best_locked() {
  std::size_t best = ready_.size();
  for (std::size_t i = 0; i < ready_.size(); ++i) {
    if (!eligible_locked(*ready_[i])) continue;
    if (best == ready_.size() ||
        schedules_before_locked(*ready_[i], *ready_[best])) {
      best = i;
    }
  }
  if (best == ready_.size()) return nullptr;  // all queued jobs in backoff
  std::shared_ptr<Job> job = ready_[best];
  ready_.erase(ready_.begin() +
               static_cast<std::ptrdiff_t>(best));
  client_last_pop_[job->request.client_id] = ++pop_seq_;
  job->last_pop_seq = pop_seq_;
  ++stats_.slices;
  // One clock capture feeds the stats delta and the trace span alike.
  const std::uint64_t now_ns = util::monotonic_ns();
  {
    util::LockGuard jlock(job->mutex);
    job->stats.queue_wait_ms += job->ms_at(now_ns) - job->enqueued_at_ms;
  }
  if (telemetry::metrics_enabled()) queue_depth_gauge().sub(1);
  if (telemetry::trace_enabled()) {
    telemetry::TraceSink::global().async_end("queue", kJobCat, job->id, now_ns);
  }
  return job;
}

void Server::reap_running_locked() {
  for (const std::shared_ptr<Job>& job : running_) {
    if (job->deadline.expired()) job->abort.request_stop();
  }
}

void Server::worker_loop(std::size_t worker_index) {
  if (telemetry::trace_enabled()) {
    telemetry::TraceSink::global().set_thread_name(
        "worker-" + std::to_string(worker_index));
  }
  for (;;) {
    std::shared_ptr<Job> job;
    {
      util::LockGuard lock(mutex_);
      for (;;) {
        reap_running_locked();
        if (!ready_.empty()) {
          job = pop_best_locked();
          if (job != nullptr) break;
        }
        if (shutdown_ && ready_.empty()) {
          --workers_alive_;
          workers_exit_cv_.notify_all();
          return;
        }
        // Sleep until work arrives — but never past the nearest running
        // deadline (so an expired job's abort token fires promptly even
        // when every other worker is busy inside a slice) nor past the
        // nearest retry-backoff expiry (so a recovered job is not stranded
        // on an otherwise idle fleet).
        double margin_ms = std::numeric_limits<double>::infinity();
        for (const std::shared_ptr<Job>& running : running_) {
          margin_ms = std::min(margin_ms, running->deadline.remaining_ms());
        }
        for (const std::shared_ptr<Job>& queued : ready_) {
          margin_ms = std::min(
              margin_ms, queued->not_before_ms - queued->lifetime.milliseconds());
        }
        if (margin_ms > 1e17) {
          work_cv_.wait(mutex_);
        } else {
          margin_ms = std::clamp(margin_ms, 1.0, 50.0);
          work_cv_.wait_for_ms(mutex_, margin_ms);
        }
      }
      job->status.store(JobStatus::kRunning, std::memory_order_release);
      running_.push_back(job);
    }

    // Containment boundary: nothing a slice throws may reach the scheduler
    // loop.  Classify what escaped, attribute it to the seam the slice was
    // inside, and either retry (bounded, backed off) or finalize kFailed —
    // the worker and every other job continue either way.
    const std::uint64_t slice_begin_ns = util::monotonic_ns();
    if (telemetry::trace_enabled()) {
      telemetry::TraceSink::global().async_begin("slice", kJobCat, job->id,
                                                 slice_begin_ns);
    }
    JobStatus outcome = JobStatus::kRunning;
    ErrorInfo error;
    try {
      outcome = run_slice(*job);
    } catch (const util::TransientFaultError& fault) {
      error = {ErrorCategory::kTransient, fault.site(), fault.what()};
    } catch (const util::FaultError& fault) {
      error = {fault.site() == fault_sites::kCompile ? ErrorCategory::kCompile
                                                     : ErrorCategory::kExecution,
               fault.site(), fault.what()};
    } catch (const std::bad_alloc& e) {
      error = {ErrorCategory::kResource, job->fail_site, e.what()};
    } catch (const std::exception& e) {
      error = {job->fail_site == fault_sites::kCompile
                   ? ErrorCategory::kCompile
                   : ErrorCategory::kExecution,
               job->fail_site, e.what()};
    } catch (...) {
      error = {ErrorCategory::kInternal, job->fail_site,
               "non-standard exception"};
    }

    const std::uint64_t slice_end_ns = util::monotonic_ns();
    double backoff_ms = 0.0;
    bool retried = false;
    if (!error.ok()) {
      const bool retryable = error.category == ErrorCategory::kTransient ||
                             error.category == ErrorCategory::kResource;
      if (retryable && job->retries < config_.max_retries &&
          !job->abort.stop_requested() && !job->deadline.expired()) {
        // Exponential backoff: base, 2x base, 4x base, ...  The job keeps
        // its bank and built state, so the retried round re-runs with the
        // same RNG stream and dedups into the same bank (exactly-once
        // delivery; see rounds_started).
        backoff_ms =
            config_.retry_backoff_ms * static_cast<double>(1u << job->retries);
        ++job->retries;
        retried = true;
        outcome = JobStatus::kRunning;  // re-enqueue below
      } else {
        outcome = JobStatus::kFailed;
      }
      util::LockGuard jlock(job->mutex);
      job->stats.error = error;  // last trouble wins, kept even on recovery
      job->stats.retries = job->retries;
    }
    {
      // Same slice_begin_ns/slice_end_ns pair feeds exec_ms, the slice
      // histogram, and both trace spans — one clock read per boundary.
      util::LockGuard jlock(job->mutex);
      job->stats.exec_ms +=
          job->ms_at(slice_end_ns) - job->ms_at(slice_begin_ns);
    }
    if (telemetry::metrics_enabled()) {
      record_slice_ms(static_cast<double>(slice_end_ns - slice_begin_ns) *
                      1e-6);
      if (retried) {
        record_client_event("hts_scheduler_retried_total",
                            job->request.client_id);
      }
    }
    if (telemetry::trace_enabled()) {
      telemetry::TraceSink& sink = telemetry::TraceSink::global();
      // Worker-track view of the same interval: which worker ran the slice.
      sink.complete("slice", "service", slice_begin_ns, slice_end_ns);
      if (!error.ok()) {
        sink.async_instant(intern_site(error.site), kJobCat, job->id,
                           slice_end_ns);
      }
      if (retried) {
        sink.async_instant("retry", kJobCat, job->id, slice_end_ns);
      }
      sink.async_end("slice", kJobCat, job->id, slice_end_ns);
    }

    bool requeued = false;
    {
      util::LockGuard lock(mutex_);
      running_.erase(std::find(running_.begin(), running_.end(), job));
      if (outcome == JobStatus::kRunning) {
        const std::uint64_t requeue_ns = util::monotonic_ns();
        job->enqueued_at_ms = job->ms_at(requeue_ns);
        job->not_before_ms =
            backoff_ms > 0.0 ? job->enqueued_at_ms + backoff_ms : 0.0;
        if (backoff_ms > 0.0) ++stats_.retried;
        job->status.store(JobStatus::kQueued, std::memory_order_release);
        ready_.push_back(job);
        requeued = true;
        if (telemetry::metrics_enabled()) queue_depth_gauge().add(1);
        if (telemetry::trace_enabled()) {
          telemetry::TraceSink::global().async_begin("queue", kJobCat, job->id,
                                                     requeue_ns);
        }
      }
    }
    if (requeued) {
      work_cv_.notify_one();
    } else {
      finalize(job, outcome);
    }
  }
}

JobStatus Server::run_slice(Job& job) {
  const SamplingRequest& request = job.request;

  // A job can be aborted (cancel, shutdown, reaper) or expire while it sits
  // in the queue; retire it before paying for compilation or engine
  // allocation.
  if (job.user_cancelled.load(std::memory_order_relaxed)) {
    return JobStatus::kCancelled;
  }
  if (job.deadline.expired()) return JobStatus::kDeadlineExpired;
  if (job.abort.stop_requested()) return JobStatus::kCancelled;

  // The build phases below are individually guarded so a retried job
  // resumes from exactly the phase that threw: whatever was already built
  // (a compiled plan, a bank holding uniques from earlier rounds) survives
  // the unwind and is not rebuilt.
  if (job.plan == nullptr) {
    // First slice: pull the compiled artifacts from the cache (or compile
    // them, once per distinct formula/options).
    job.fail_site = fault_sites::kCompile;
    PlanOptions plan_options;
    plan_options.cone_only = request.config.cone_only;
    plan_options.optimize_tape = request.config.optimize_tape;
    plan_options.transform = request.config.transform;
    const std::uint64_t lookup_begin_ns = util::monotonic_ns();
    bool hit = false;
    job.plan =
        cache_.get_or_compile(request.formula, plan_options, &hit, &injector_);
    const std::uint64_t lookup_end_ns = util::monotonic_ns();
    const double lookup_ms =
        static_cast<double>(lookup_end_ns - lookup_begin_ns) * 1e-6;
    {
      // Billing: the plan's one-time build cost (recorded on the cache
      // entry) is charged only to the job that actually compiled it; a hit
      // — including a wait on another job's in-flight build — is pure cache
      // wait.  No double-accounting: fleet-wide sum(compile_ms) equals the
      // cost of the distinct plans built.
      util::LockGuard jlock(job.mutex);
      if (hit) {
        job.stats.cache_wait_ms += lookup_ms;
      } else {
        job.stats.compile_ms += job.plan->compile_ms;
        job.stats.cache_wait_ms +=
            std::max(0.0, lookup_ms - job.plan->compile_ms);
      }
      job.stats.plan_cache_hit = hit;
    }
    if (telemetry::trace_enabled()) {
      const char* span = hit ? "cache_wait" : "compile";
      telemetry::TraceSink& sink = telemetry::TraceSink::global();
      sink.complete(span, "service", lookup_begin_ns, lookup_end_ns);
      sink.async_begin(span, kJobCat, job.id, lookup_begin_ns);
      sink.async_end(span, kJobCat, job.id, lookup_end_ns);
    }
    if (job.plan->transformed.proven_unsat) return JobStatus::kUnsat;
  }

  if (job.runner == nullptr) {
    // Build the job's private execution state around the shared plan.
    job.fail_site = fault_sites::kEngineAlloc;
    injector_.maybe_fault(fault_sites::kEngineAlloc);
    if (job.bank == nullptr) {
      job.loop_config = sampler::make_gd_loop_config(request.config);
      job.run_options.min_solutions = request.target_uniques;
      job.run_options.budget_ms = request.deadline_ms;
      job.run_options.seed = request.seed;
      const bool deliver =
          request.deliver_solutions || static_cast<bool>(request.on_solution);
      job.run_options.store_limit =
          deliver ? std::numeric_limits<std::size_t>::max() : 0;
      job.run_options.stop = job.abort.token();
      job.gd_problem.circuit = &job.plan->transformed.circuit;
      job.gd_problem.var_signal = &job.plan->transformed.var_signal;
      job.gd_problem.input_vars = &job.plan->transformed.input_vars;
      // Sampling set (amplifier flip support + projected dedup): an
      // explicit per-request set wins, else the formula's own 'c ind'
      // declaration.  The problem owns a normalized copy — request sets
      // are caller-supplied and unvalidated, and ownership (rather than a
      // pointer into the request) means job moves and retry replay can
      // never dangle.
      if (!request.sampling_set.empty()) {
        job.gd_problem.sampling_set = sampler::normalize_sampling_set(
            request.sampling_set, job.gd_problem.var_signal->size());
      } else if (request.formula.has_sampling_set()) {
        job.gd_problem.sampling_set = request.formula.sampling_set();
      }
      job.bank = std::make_unique<sampler::ShardedUniqueBank>(
          sampler::bank_key_bits(job.gd_problem, job.loop_config));
    }
    if (job.engine == nullptr) {
      job.engine = std::make_unique<prob::Engine>(
          *job.plan->compiled,
          sampler::engine_config_for(job.loop_config, job.gd_problem));
    }
    if (job.harvester == nullptr) {
      job.harvester =
          std::make_unique<sampler::Harvester<sampler::ShardedUniqueBank>>(
              job.gd_problem, request.formula, job.run_options, *job.bank,
              job.result, &*job.plan->eval_plan, /*inline_eval=*/true,
              sampler::harvest_mode_for(job.gd_problem, job.loop_config));
    }
    job.runner = std::make_unique<
        sampler::RoundRunner<sampler::ShardedUniqueBank>>(
        job.loop_config, *job.engine, *job.harvester);
  }
  job.fail_site = fault_sites::kSlice;

  auto reached_target = [&] {
    return request.target_uniques > 0 &&
           job.bank->size() >= request.target_uniques;
  };
  auto capped = [&] {
    return (request.max_uniques > 0 &&
            job.bank->size() >= request.max_uniques) ||
           (request.max_bank_bytes > 0 &&
            job.bank->size_bytes() >= request.max_bank_bytes);
  };
  // New uniques land in job.result.solutions in harvest order; hand them to
  // the sink and update the live counters after every harvest.  On a throw
  // mid-delivery, the already-pushed prefix is erased and the rest stays
  // queued in job.result — a retry delivers exactly the missing suffix (the
  // re-run round's harvest re-inserts into the bank, so nothing is appended
  // twice).
  const util::StopToken abort_token = job.abort.token();
  auto checkpoint = [&](int) {
    job.fail_site = fault_sites::kHarvest;
    injector_.maybe_fault(fault_sites::kHarvest);
    job.fail_site = fault_sites::kStreamPush;
    const bool trace_deliver =
        telemetry::trace_enabled() && !job.result.solutions.empty();
    const std::uint64_t deliver_begin_ns =
        trace_deliver ? util::monotonic_ns() : 0;
    std::size_t pushed = 0;
    try {
      for (cnf::Assignment& assignment : job.result.solutions) {
        injector_.maybe_fault(fault_sites::kStreamPush);
        if (!job.stream->push(std::move(assignment), abort_token,
                              job.deadline)) {
          break;  // dropped: consumer cancelled or the job is winding down
        }
        ++pushed;
      }
    } catch (...) {
      job.result.solutions.erase(
          job.result.solutions.begin(),
          job.result.solutions.begin() + static_cast<std::ptrdiff_t>(pushed));
      throw;
    }
    if (trace_deliver) {
      telemetry::TraceSink::global().complete("deliver", "service",
                                              deliver_begin_ns,
                                              util::monotonic_ns());
    }
    job.result.solutions.clear();
    job.fail_site = fault_sites::kSlice;
    util::LockGuard jlock(job.mutex);
    job.stats.n_unique = job.bank->size();
    job.stats.delivered = job.stream->delivered();
    job.stats.rounds = job.rounds_started;
    job.stats.gd_iterations = job.runner->gd_iterations();
    job.stats.rows_validated = job.harvester->rows_validated();
    job.stats.amplified_candidates = job.runner->amplified_candidates();
    job.stats.amplified_uniques = job.runner->amplified_uniques();
    job.stats.diversity_restarted_rows = job.runner->diversity_restarted_rows();
    job.stats.weighted_inputs = job.engine->n_weighted_inputs();
    // Derived views of the phase timers the harvester/amplifier keep — the
    // same clock (util::monotonic_ns) every span uses, not a parallel one.
    job.stats.harvest_ms = job.harvester->harvest_ms();
    job.stats.amplify_ms = job.runner->amplify_ms();
  };
  auto stop_now = [&] {
    return reached_target() || capped() || job.deadline.expired() ||
           job.abort.stop_requested();
  };

  // Leftover deliveries from a faulted attempt (the aborted round banked
  // them, but the throw cut the push loop short) are drained before any
  // stop check — otherwise a retried job whose bank already meets the
  // target would finalize kCompleted with solutions undelivered.
  if (!job.result.solutions.empty()) checkpoint(0);

  for (std::size_t s = 0; s < config_.rounds_per_slice; ++s) {
    // A replayed round runs to its natural end even if the bank already
    // meets the target: the golden (fault-free) run would have finished the
    // round before stopping, and convergence to the golden stream is the
    // retry contract.  (Aborts and deadlines still cut in: the early-retire
    // checks above and run_round's own stop polls see them.)
    if (!job.replay_round && stop_now()) break;
    injector_.maybe_fault(fault_sites::kSlice);
    // Per-round RNG streams make the job's trajectory a pure function of
    // (seed, round index) — scheduling order and fleet size never reach it.
    util::Rng rng = util::Rng::stream(request.seed, job.rounds_started);
    ++job.rounds_started;
    try {
      job.runner->run_round(rng, checkpoint, stop_now);
      job.replay_round = false;
    } catch (...) {
      // Un-claim the round: a retry re-runs it with the identical RNG
      // stream, and the bank dedups whatever the aborted attempt already
      // harvested.
      --job.rounds_started;
      job.replay_round = true;
      throw;
    }
  }

  if (reached_target()) return JobStatus::kCompleted;
  if (job.user_cancelled.load(std::memory_order_relaxed)) {
    return JobStatus::kCancelled;
  }
  if (capped()) return JobStatus::kCapped;
  if (job.deadline.expired()) return JobStatus::kDeadlineExpired;
  if (job.abort.stop_requested()) return JobStatus::kCancelled;
  return JobStatus::kRunning;
}

void Server::finalize(const std::shared_ptr<Job>& job, JobStatus status) {
  // One clock read closes the job: wall_ms and the async track's end are
  // derived from the same stamp.
  const std::uint64_t finalize_ns = util::monotonic_ns();
  double exec_ms = 0.0;
  {
    util::LockGuard jlock(job->mutex);
    JobStats& stats = job->stats;
    stats.wall_ms = job->ms_at(finalize_ns);
    stats.rounds = job->rounds_started;
    if (job->bank) {
      stats.n_unique = job->bank->size();
      stats.bank_bytes = job->bank->size_bytes();
    }
    if (job->harvester) {
      stats.rows_validated = job->harvester->rows_validated();
      stats.harvest_ms = job->harvester->harvest_ms();
    }
    if (job->runner) {
      stats.gd_iterations = job->runner->gd_iterations();
      stats.amplified_candidates = job->runner->amplified_candidates();
      stats.amplified_uniques = job->runner->amplified_uniques();
      stats.diversity_restarted_rows = job->runner->diversity_restarted_rows();
      stats.amplify_ms = job->runner->amplify_ms();
    }
    if (job->engine) stats.weighted_inputs = job->engine->n_weighted_inputs();
    stats.delivered = job->stream->delivered();
    exec_ms = stats.exec_ms;
  }
  // Release the execution state in dependency order (runner borrows
  // engine+harvester; harvester borrows bank/options/problem): a terminal
  // job reachable through lingering handles must not pin engine buffers or
  // the compiled plan.
  job->runner.reset();
  job->harvester.reset();
  job->engine.reset();
  job->bank.reset();
  job->result = sampler::RunResult{};
  job->plan.reset();
  job->stream->close();
  // Fleet counters move before the terminal status is visible, so a client
  // that wait()s and then reads Server::stats() observes its own job.
  {
    util::LockGuard lock(mutex_);
    // Drop the client's round-robin stamp once its last outstanding job is
    // gone — a long-lived server must not grow state per client_id ever
    // seen.  (A returning client restarts as "least recently scheduled",
    // exactly like a new one.)
    const std::uint64_t client = job->request.client_id;
    auto has_same_client = [client](const std::shared_ptr<Job>& other) {
      return other->request.client_id == client;
    };
    if (std::none_of(ready_.begin(), ready_.end(), has_same_client) &&
        std::none_of(running_.begin(), running_.end(), has_same_client)) {
      client_last_pop_.erase(client);
    }
    // Release the client's quota reservation (only if admission granted one
    // — rejected and post-shutdown jobs were never accounted).
    if (job->usage_accounted) {
      const auto it = client_usage_.find(client);
      if (it != client_usage_.end()) {
        ClientUsage& usage = it->second;
        --usage.live_jobs;
        usage.reserved_bank_bytes -= job->request.max_bank_bytes;
        if (usage.live_jobs == 0) client_usage_.erase(it);
      }
      job->usage_accounted = false;
    }
    // Feed the admission model: jobs that actually held a worker calibrate
    // the per-job cost estimate (rejected/never-scheduled ones say nothing
    // about execution cost).
    if (exec_ms > 0.0) {
      const double alpha = config_.admission.cost_ewma_alpha;
      avg_job_cost_ms_ = (1.0 - alpha) * avg_job_cost_ms_ + alpha * exec_ms;
    }
    switch (status) {
      case JobStatus::kCompleted: ++stats_.completed; break;
      case JobStatus::kDeadlineExpired: ++stats_.deadline_expired; break;
      case JobStatus::kCancelled: ++stats_.cancelled; break;
      case JobStatus::kCapped: ++stats_.capped; break;
      case JobStatus::kUnsat: ++stats_.unsat; break;
      case JobStatus::kFailed: ++stats_.failed; break;
      case JobStatus::kRejected: ++stats_.rejected; break;
      case JobStatus::kQueued:
      case JobStatus::kRunning: break;  // unreachable: finalize is terminal
    }
  }
  {
    util::LockGuard jlock(job->mutex);
    job->status.store(status, std::memory_order_release);
  }
  job->done_cv.notify_all();
  if (telemetry::metrics_enabled()) record_finalized(status);
  if (telemetry::trace_enabled()) {
    telemetry::TraceSink& sink = telemetry::TraceSink::global();
    sink.async_instant(job_status_name(status), kJobCat, job->id, finalize_ns);
    sink.async_end("job", kJobCat, job->id, finalize_ns);
  }
}

}  // namespace hts::service
