#pragma once

// In-process sampling service: many concurrent SamplingRequests, one
// machine.
//
// A Server owns a fixed worker fleet (long-lived scheduler loops submitted
// to a util::ThreadPool it owns) and a compiled-plan cache.  submit() is
// non-blocking: the request joins a fair run queue and the returned
// JobHandle is the client's view of the job — its solution stream, live
// stats, cancellation, and completion wait.
//
// Scheduling is earliest-deadline-first over *time slices*: a worker pops
// the queued job with the nearest deadline (no-deadline jobs sort last, as
// batch traffic), runs a bounded number of GD rounds, and re-queues the
// job, so a long request cannot occupy a worker beyond one slice while a
// short-deadline request waits — no head-of-line blocking.  Deadline ties
// (notably the all-batch case) break round-robin across client_ids, then
// FIFO by submission, so one chatty client cannot crowd out another.
// Expired deadlines are noticed three ways: the job's own slice polls at
// iteration boundaries, idle workers reap running jobs' abort tokens (which
// interrupt even mid-harvest, at block boundaries), and expired queued jobs
// sort to the front where the next free worker retires them without
// spending a slice.
//
// Every job's solution stream is deterministic in (formula, seed, config):
// rounds execute sequentially per job and round r draws from
// util::Rng::stream(seed, r), so fleet size and scheduling interleave
// change only timing, never results.
//
// Faults are contained per job: any exception escaping a slice (compile,
// allocation, harvest, delivery) finalizes that job kFailed with an
// ErrorInfo naming the seam — its stream closed, the fleet and every other
// job untouched.  Retryable categories (kTransient/kResource) are
// re-enqueued with exponential backoff up to ServerConfig::max_retries
// first.  Admission control (AdmissionConfig) can reject or degrade
// requests at submit(), before any compile, and a deterministic
// fault injector (HTS_FAULT_SPEC) exercises every one of these paths
// reproducibly.

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "service/plan_cache.hpp"
#include "service/request.hpp"
#include "service/solution_stream.hpp"
#include "util/fault_injector.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_pool.hpp"

namespace hts::service {

namespace detail {
struct Job;
}

/// Admission control: decide at submit() — before any compile or engine
/// allocation — whether a request can plausibly be served, instead of
/// letting it queue, burn a compile, and time out anyway.
///
/// The feasibility model is deliberately cheap: the server keeps an EWMA of
/// finished jobs' execution cost (seeded with initial_job_cost_ms until the
/// first job lands), projects this request's queue wait as
///   est_wait = (running + earlier-deadline queued) * avg_cost / n_workers,
/// and admits when  safety_factor * (est_wait + avg_cost) <= deadline_ms.
/// An infeasible request is either *degraded* — its GD batch shrunk by the
/// factor needed to fit (cost scales roughly with batch), bounded by
/// max_degrade — or finalized kRejected with an ErrorInfo reason, without
/// ever touching the plan cache.
struct AdmissionConfig {
  /// Master switch for the deadline-feasibility check.  Off by default: an
  /// unconfigured server accepts everything, exactly as before.  Quotas
  /// below are enforced whenever nonzero, independent of this switch.
  bool enabled = false;
  /// Per-job execution-cost prior (ms) used until the EWMA has data.
  double initial_job_cost_ms = 5.0;
  /// EWMA weight of the newest finished job's exec cost.
  double cost_ewma_alpha = 0.2;
  /// Head-room multiplier on the projected wait + cost; > 1 rejects
  /// requests that would only fit if every estimate were exact.
  double safety_factor = 1.5;
  /// Largest batch-shrink factor admission may apply to fit a deadline
  /// (1.0 = never degrade, reject instead).  A degraded job's stream is a
  /// pure function of the *degraded* config; JobStats::degraded records it.
  double max_degrade = 1.0;
  /// Floor for a degraded GD batch — shrinking below this costs more in
  /// per-round overhead than it saves.
  std::size_t min_degraded_batch = 64;
  /// Per-client cap on live (queued + running) jobs; 0 = unlimited.
  std::size_t max_client_jobs = 0;
  /// Per-client cap on summed bank-byte reservations (each request reserves
  /// its max_bank_bytes); 0 = unlimited.  Under a nonzero cap, requests
  /// with max_bank_bytes == 0 are rejected — an unbounded bank cannot be
  /// reserved against a quota.
  std::size_t max_client_bank_bytes = 0;
};

struct ServerConfig {
  /// Worker fleet size; 0 = hardware concurrency.  Each worker runs one
  /// job slice at a time, so this bounds concurrently resident engines.
  std::size_t n_workers = 0;
  /// GD rounds per scheduling slice.  1 (default) gives the finest-grained
  /// fairness; raise it to amortize scheduling overhead on tiny instances.
  std::size_t rounds_per_slice = 1;
  /// Plan-cache capacity in entries (distinct formula/options pairs).
  std::size_t plan_cache_capacity = 32;
  /// Admission control & per-client quotas (see AdmissionConfig).
  AdmissionConfig admission = {};
  /// Re-enqueues granted to a job whose slice throws a retryable error
  /// (ErrorCategory kTransient/kResource) before it finalizes kFailed.
  std::uint32_t max_retries = 2;
  /// Base backoff before a retried job is eligible again; doubles per
  /// retry (10ms, 20ms, 40ms, ...).
  double retry_backoff_ms = 10.0;
  /// Fault-injection spec (util::FaultInjector grammar).  Empty = inherit
  /// the HTS_FAULT_SPEC environment variable; "none" = explicitly disarmed
  /// regardless of the environment.  Malformed specs throw from the Server
  /// constructor — a chaos run with a typo must not silently pass.
  std::string fault_spec = {};
};

/// Fleet-level counters (monotone over the server's lifetime).
struct ServerStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t deadline_expired = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t capped = 0;
  std::uint64_t unsat = 0;
  /// Jobs finalized kFailed (an error escaped and retries were exhausted
  /// or inapplicable).
  std::uint64_t failed = 0;
  /// Jobs refused at submit() by admission control or quotas.
  std::uint64_t rejected = 0;
  /// Jobs admitted with a shrunk batch (JobStats::degraded).
  std::uint64_t degraded = 0;
  /// Transient-retry re-enqueues across all jobs (not jobs retried).
  std::uint64_t retried = 0;
  /// Scheduling slices executed (queue pops that ran work).
  std::uint64_t slices = 0;
};

/// One live pull of everything the server knows about itself: fleet
/// counters, plan-cache stats, instantaneous queue state, and the telemetry
/// registry's two export formats.  This is the in-process surface a future
/// network front-end serves from /metrics (ROADMAP), and what serve_cli
/// --metrics prints.
struct StatsSnapshot {
  ServerStats server;
  PlanCache::Stats plan_cache;
  std::size_t queue_depth = 0;
  std::size_t running = 0;
  /// telemetry::Registry::global() renders (both formats); process-wide, so
  /// an embedding process with several Servers sees one merged registry.
  std::string metrics_json;
  std::string metrics_prometheus;
};

/// Client-side view of a submitted job.  Cheap to copy; the underlying job
/// outlives the server's interest in it as long as any handle remains.
class JobHandle {
 public:
  JobHandle() = default;

  [[nodiscard]] bool valid() const { return job_ != nullptr; }
  [[nodiscard]] std::uint64_t id() const;
  [[nodiscard]] JobStatus status() const;
  /// Consistent snapshot; final once status() is terminal.
  [[nodiscard]] JobStats stats() const;
  /// The job's error record (stats().error shortcut): the admission reason
  /// for kRejected, the failing seam + message for kFailed, the last
  /// retried trouble for jobs that recovered, ok() otherwise.
  [[nodiscard]] ErrorInfo error() const;
  /// The job's delivery channel (see SolutionStream).  Valid for the
  /// handle's lifetime; closed when the job reaches a terminal status.
  [[nodiscard]] SolutionStream& stream() const;
  /// Requests cooperative cancellation; the job finalizes kCancelled with
  /// whatever it has at the next boundary.  Idempotent, non-blocking.
  void cancel() const;
  /// Blocks until the job is terminal; returns the final status.
  JobStatus wait() const;
  /// Bounded wait; true when the job is terminal.
  bool wait_for(double timeout_ms) const;

 private:
  friend class Server;
  explicit JobHandle(std::shared_ptr<detail::Job> job);

  std::shared_ptr<detail::Job> job_;
};

class Server {
 public:
  explicit Server(ServerConfig config = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Enqueues a request; non-blocking.  After shutdown(), returns an
  /// already-cancelled handle.
  [[nodiscard]] JobHandle submit(SamplingRequest request) HTS_EXCLUDES(mutex_);

  /// Cancels every queued and running job, drains the fleet, and stops the
  /// workers.  Idempotent; called by the destructor.
  void shutdown() HTS_EXCLUDES(mutex_);

  [[nodiscard]] std::size_t n_workers() const { return n_workers_; }
  [[nodiscard]] ServerStats stats() const HTS_EXCLUDES(mutex_);
  /// Live in-process pull: fleet + cache counters, queue state, and the
  /// telemetry registry rendered as JSON and Prometheus text.
  [[nodiscard]] StatsSnapshot stats_snapshot() const HTS_EXCLUDES(mutex_);
  [[nodiscard]] PlanCache::Stats plan_cache_stats() const {
    return cache_.stats();
  }
  [[nodiscard]] std::size_t plan_cache_size() const { return cache_.size(); }
  /// The server's fault injector (disarmed unless a spec was configured);
  /// chaos tests read its hit/injection counters per seam.
  [[nodiscard]] const util::FaultInjector& fault_injector() const {
    return injector_;
  }

 private:
  /// Per-client live-resource accounting backing the admission quotas.
  struct ClientUsage {
    std::size_t live_jobs = 0;
    std::size_t reserved_bank_bytes = 0;
  };

  void worker_loop(std::size_t worker_index) HTS_EXCLUDES(mutex_);
  /// Admission decision for a fresh submission: quotas first, then the
  /// deadline-feasibility model (possibly degrading the job's batch in
  /// place).  False = reject, with the reason written to *error.
  [[nodiscard]] bool admit_locked(detail::Job& job, ErrorInfo* error)
      HTS_REQUIRES(mutex_);
  /// A queued job may run now: aborted/expired jobs always (they retire
  /// cheaply); retried jobs only once their backoff window has passed.
  [[nodiscard]] bool eligible_locked(const detail::Job& job) const
      HTS_REQUIRES(mutex_);
  /// Pops the scheduling-order minimum among *eligible* ready jobs
  /// (nullptr when none is eligible yet); updates the client round-robin
  /// stamp and the job's queue-wait accounting.
  [[nodiscard]] std::shared_ptr<detail::Job> pop_best_locked()
      HTS_REQUIRES(mutex_);
  [[nodiscard]] bool schedules_before_locked(const detail::Job& a,
                                             const detail::Job& b) const
      HTS_REQUIRES(mutex_);
  /// Fires the abort token of running jobs whose deadline has passed, so
  /// their slices wind down mid-harvest instead of at the next iteration.
  void reap_running_locked() HTS_REQUIRES(mutex_);
  /// Runs one slice; returns kRunning to continue (re-queue) or the
  /// terminal status.
  [[nodiscard]] JobStatus run_slice(detail::Job& job) HTS_EXCLUDES(mutex_);
  void finalize(const std::shared_ptr<detail::Job>& job, JobStatus status)
      HTS_EXCLUDES(mutex_);

  ServerConfig config_;
  std::size_t n_workers_ = 0;
  PlanCache cache_;
  /// Armed from ServerConfig::fault_spec / HTS_FAULT_SPEC before any worker
  /// starts; immutable afterwards (its counters are atomic), so workers use
  /// it lock-free.
  util::FaultInjector injector_;

  // Lock order: mutex_ -> detail::Job::mutex, never the reverse (see
  // util/mutex.hpp for the repo-wide contract).
  mutable util::Mutex mutex_;
  util::CondVar work_cv_;
  util::CondVar workers_exit_cv_;
  std::vector<std::shared_ptr<detail::Job>> ready_ HTS_GUARDED_BY(mutex_);
  std::vector<std::shared_ptr<detail::Job>> running_ HTS_GUARDED_BY(mutex_);
  std::unordered_map<std::uint64_t, std::uint64_t> client_last_pop_
      HTS_GUARDED_BY(mutex_);
  std::uint64_t pop_seq_ HTS_GUARDED_BY(mutex_) = 0;
  std::uint64_t next_id_ HTS_GUARDED_BY(mutex_) = 1;
  std::size_t workers_alive_ HTS_GUARDED_BY(mutex_) = 0;
  bool shutdown_ HTS_GUARDED_BY(mutex_) = false;
  ServerStats stats_ HTS_GUARDED_BY(mutex_);
  /// EWMA of finished jobs' exec_ms — the admission model's cost estimate.
  double avg_job_cost_ms_ HTS_GUARDED_BY(mutex_) = 0.0;
  /// Live per-client usage for quota checks; entries erased when a
  /// client's last job finalizes (no growth per client_id ever seen).
  std::unordered_map<std::uint64_t, ClientUsage> client_usage_
      HTS_GUARDED_BY(mutex_);

  /// Declared last so it is destroyed first; by then shutdown() has drained
  /// the worker loops, so the pool destructor joins idle threads.
  util::ThreadPool pool_;
};

}  // namespace hts::service
