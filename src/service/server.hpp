#pragma once

// In-process sampling service: many concurrent SamplingRequests, one
// machine.
//
// A Server owns a fixed worker fleet (long-lived scheduler loops submitted
// to a util::ThreadPool it owns) and a compiled-plan cache.  submit() is
// non-blocking: the request joins a fair run queue and the returned
// JobHandle is the client's view of the job — its solution stream, live
// stats, cancellation, and completion wait.
//
// Scheduling is earliest-deadline-first over *time slices*: a worker pops
// the queued job with the nearest deadline (no-deadline jobs sort last, as
// batch traffic), runs a bounded number of GD rounds, and re-queues the
// job, so a long request cannot occupy a worker beyond one slice while a
// short-deadline request waits — no head-of-line blocking.  Deadline ties
// (notably the all-batch case) break round-robin across client_ids, then
// FIFO by submission, so one chatty client cannot crowd out another.
// Expired deadlines are noticed three ways: the job's own slice polls at
// iteration boundaries, idle workers reap running jobs' abort tokens (which
// interrupt even mid-harvest, at block boundaries), and expired queued jobs
// sort to the front where the next free worker retires them without
// spending a slice.
//
// Every job's solution stream is deterministic in (formula, seed, config):
// rounds execute sequentially per job and round r draws from
// util::Rng::stream(seed, r), so fleet size and scheduling interleave
// change only timing, never results.

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "service/plan_cache.hpp"
#include "service/request.hpp"
#include "service/solution_stream.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_pool.hpp"

namespace hts::service {

namespace detail {
struct Job;
}

struct ServerConfig {
  /// Worker fleet size; 0 = hardware concurrency.  Each worker runs one
  /// job slice at a time, so this bounds concurrently resident engines.
  std::size_t n_workers = 0;
  /// GD rounds per scheduling slice.  1 (default) gives the finest-grained
  /// fairness; raise it to amortize scheduling overhead on tiny instances.
  std::size_t rounds_per_slice = 1;
  /// Plan-cache capacity in entries (distinct formula/options pairs).
  std::size_t plan_cache_capacity = 32;
};

/// Fleet-level counters (monotone over the server's lifetime).
struct ServerStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t deadline_expired = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t capped = 0;
  std::uint64_t unsat = 0;
  /// Scheduling slices executed (queue pops that ran work).
  std::uint64_t slices = 0;
};

/// Client-side view of a submitted job.  Cheap to copy; the underlying job
/// outlives the server's interest in it as long as any handle remains.
class JobHandle {
 public:
  JobHandle() = default;

  [[nodiscard]] bool valid() const { return job_ != nullptr; }
  [[nodiscard]] std::uint64_t id() const;
  [[nodiscard]] JobStatus status() const;
  /// Consistent snapshot; final once status() is terminal.
  [[nodiscard]] JobStats stats() const;
  /// The job's delivery channel (see SolutionStream).  Valid for the
  /// handle's lifetime; closed when the job reaches a terminal status.
  [[nodiscard]] SolutionStream& stream() const;
  /// Requests cooperative cancellation; the job finalizes kCancelled with
  /// whatever it has at the next boundary.  Idempotent, non-blocking.
  void cancel() const;
  /// Blocks until the job is terminal; returns the final status.
  JobStatus wait() const;
  /// Bounded wait; true when the job is terminal.
  bool wait_for(double timeout_ms) const;

 private:
  friend class Server;
  explicit JobHandle(std::shared_ptr<detail::Job> job);

  std::shared_ptr<detail::Job> job_;
};

class Server {
 public:
  explicit Server(ServerConfig config = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Enqueues a request; non-blocking.  After shutdown(), returns an
  /// already-cancelled handle.
  [[nodiscard]] JobHandle submit(SamplingRequest request) HTS_EXCLUDES(mutex_);

  /// Cancels every queued and running job, drains the fleet, and stops the
  /// workers.  Idempotent; called by the destructor.
  void shutdown() HTS_EXCLUDES(mutex_);

  [[nodiscard]] std::size_t n_workers() const { return n_workers_; }
  [[nodiscard]] ServerStats stats() const HTS_EXCLUDES(mutex_);
  [[nodiscard]] PlanCache::Stats plan_cache_stats() const {
    return cache_.stats();
  }
  [[nodiscard]] std::size_t plan_cache_size() const { return cache_.size(); }

 private:
  void worker_loop() HTS_EXCLUDES(mutex_);
  /// Pops the scheduling-order minimum from the ready queue; updates the
  /// client round-robin stamp and the job's queue-wait accounting.
  [[nodiscard]] std::shared_ptr<detail::Job> pop_best_locked()
      HTS_REQUIRES(mutex_);
  [[nodiscard]] bool schedules_before_locked(const detail::Job& a,
                                             const detail::Job& b) const
      HTS_REQUIRES(mutex_);
  /// Fires the abort token of running jobs whose deadline has passed, so
  /// their slices wind down mid-harvest instead of at the next iteration.
  void reap_running_locked() HTS_REQUIRES(mutex_);
  /// Runs one slice; returns kRunning to continue (re-queue) or the
  /// terminal status.
  [[nodiscard]] JobStatus run_slice(detail::Job& job) HTS_EXCLUDES(mutex_);
  void finalize(const std::shared_ptr<detail::Job>& job, JobStatus status)
      HTS_EXCLUDES(mutex_);

  ServerConfig config_;
  std::size_t n_workers_ = 0;
  PlanCache cache_;

  // Lock order: mutex_ -> detail::Job::mutex, never the reverse (see
  // util/mutex.hpp for the repo-wide contract).
  mutable util::Mutex mutex_;
  util::CondVar work_cv_;
  util::CondVar workers_exit_cv_;
  std::vector<std::shared_ptr<detail::Job>> ready_ HTS_GUARDED_BY(mutex_);
  std::vector<std::shared_ptr<detail::Job>> running_ HTS_GUARDED_BY(mutex_);
  std::unordered_map<std::uint64_t, std::uint64_t> client_last_pop_
      HTS_GUARDED_BY(mutex_);
  std::uint64_t pop_seq_ HTS_GUARDED_BY(mutex_) = 0;
  std::uint64_t next_id_ HTS_GUARDED_BY(mutex_) = 1;
  std::size_t workers_alive_ HTS_GUARDED_BY(mutex_) = 0;
  bool shutdown_ HTS_GUARDED_BY(mutex_) = false;
  ServerStats stats_ HTS_GUARDED_BY(mutex_);

  /// Declared last so it is destroyed first; by then shutdown() has drained
  /// the worker loops, so the pool destructor joins idle threads.
  util::ThreadPool pool_;
};

}  // namespace hts::service
