#pragma once

// Per-request delivery channel for harvested unique solutions.
//
// The worker running a job's slice pushes each newly banked assignment in
// harvest order; the client consumes from any thread via the blocking
// iterator (next), non-blocking polls (try_next / drain), or — configured
// at submit time — a synchronous callback that bypasses the buffer
// entirely.  A bounded stream applies backpressure: when the buffer is
// full, push() blocks the job's worker until the consumer drains, the job
// aborts, or its deadline expires, so a slow consumer throttles exactly its
// own job and nothing else (the fleet's other workers keep scheduling other
// requests).
//
// Delivery order is the job's deterministic harvest order: rounds execute
// sequentially per job and each round's accept phase is serial, so for a
// fixed (formula, seed, config) the stream contents — including order —
// are identical under any worker-fleet size.
//
// Shutdown semantics: whatever ends a job — completion, deadline, cancel,
// cap, UNSAT, failure (kFailed), admission rejection (kRejected), or server
// shutdown/destruction — its finalize path closes the stream, and close()
// wakes every blocked consumer AND producer.  A consumer blocked in next()
// therefore always returns (draining the buffer first, then end-of-stream);
// it can never hang on a job that will produce nothing more.  Push after
// close is dropped (returns false), so a late producer cannot resurrect a
// stream its consumers already saw end.
//
// Lock discipline (machine-checked under Clang -Wthread-safety): mutex_
// guards the buffer and every flag; it is a leaf lock — the callback runs
// outside it, and nothing else is acquired under it.

#include <cstddef>
#include <deque>
#include <functional>
#include <utility>
#include <vector>

#include "cnf/types.hpp"
#include "telemetry/metrics.hpp"
#include "util/mutex.hpp"
#include "util/stop_token.hpp"
#include "util/thread_annotations.hpp"
#include "util/timer.hpp"

namespace hts::service {

class SolutionStream {
 public:
  /// capacity 0 = unbounded buffer (push never blocks).  When `callback` is
  /// set the stream is in callback mode: push invokes it inline and the
  /// buffer/capacity machinery is bypassed.
  explicit SolutionStream(
      std::size_t capacity = 0,
      std::function<void(const cnf::Assignment&)> callback = {})
      : capacity_(capacity), callback_(std::move(callback)) {}

  // ---- producer side (the job's worker) ------------------------------------

  /// Delivers one assignment.  Blocks while a bounded buffer is full, until
  /// space opens or `abort`/`deadline` fires.  Returns false when the
  /// assignment was dropped (consumer cancelled, or abort/deadline while
  /// waiting); the job treats that as "stop delivering", not an error.
  bool push(cnf::Assignment&& assignment, const util::StopToken& abort,
            const util::Deadline& deadline) HTS_EXCLUDES(mutex_) {
    if (callback_) {
      {
        util::LockGuard lock(mutex_);
        if (cancelled_) return false;
        ++delivered_;
      }
      if (telemetry::metrics_enabled()) record_delivered();
      callback_(assignment);
      return true;
    }
    // Backpressure stall time is measured from the first full-buffer check
    // to the push (or drop), on the process monotonic clock; recorded after
    // mutex_ is released so the metric path never runs under the stream lock.
    double stall_begin_ms = -1.0;
    bool pushed = false;
    {
      util::LockGuard lock(mutex_);
      while (capacity_ != 0 && queue_.size() >= capacity_ && !cancelled_ &&
             !closed_) {
        if (abort.stop_requested() || deadline.expired()) break;
        if (stall_begin_ms < 0.0 && telemetry::metrics_enabled()) {
          stall_begin_ms = util::monotonic_ms();
        }
        // Bounded wait so an abort/deadline raised while we sleep is noticed
        // promptly even if no consumer ever wakes us.
        space_cv_.wait_for_ms(mutex_, 10.0);
      }
      const bool full = capacity_ != 0 && queue_.size() >= capacity_;
      if (!cancelled_ && !closed_ && !full) {
        queue_.push_back(std::move(assignment));
        ++delivered_;
        item_cv_.notify_one();
        pushed = true;
      }
    }
    if (telemetry::metrics_enabled()) {
      if (stall_begin_ms >= 0.0) {
        record_stall(util::monotonic_ms() - stall_begin_ms);
      }
      if (pushed) record_delivered();
    }
    return pushed;
  }

  /// No more items will be pushed (job terminal).  Wakes blocked consumers
  /// (who drain the buffer and then see end-of-stream) and any producer
  /// still blocked on backpressure (whose pushes now drop).
  void close() HTS_EXCLUDES(mutex_) {
    {
      util::LockGuard lock(mutex_);
      closed_ = true;
    }
    item_cv_.notify_all();
    space_cv_.notify_all();
  }

  // ---- consumer side (the client) ------------------------------------------

  /// Blocking iterator: waits for the next assignment.  Returns false when
  /// the stream is closed (job terminal) and drained — the end of the
  /// stream.
  bool next(cnf::Assignment& out) HTS_EXCLUDES(mutex_) {
    util::LockGuard lock(mutex_);
    while (queue_.empty() && !closed_ && !cancelled_) item_cv_.wait(mutex_);
    if (queue_.empty()) return false;
    out = std::move(queue_.front());
    queue_.pop_front();
    space_cv_.notify_one();
    return true;
  }

  /// Non-blocking poll; false when nothing is buffered right now.
  bool try_next(cnf::Assignment& out) HTS_EXCLUDES(mutex_) {
    util::LockGuard lock(mutex_);
    if (queue_.empty()) return false;
    out = std::move(queue_.front());
    queue_.pop_front();
    space_cv_.notify_one();
    return true;
  }

  /// Appends everything currently buffered to `out`; returns the count.
  std::size_t drain(std::vector<cnf::Assignment>& out) HTS_EXCLUDES(mutex_) {
    util::LockGuard lock(mutex_);
    const std::size_t n = queue_.size();
    for (cnf::Assignment& assignment : queue_) {
      out.push_back(std::move(assignment));
    }
    queue_.clear();
    if (n > 0) space_cv_.notify_all();
    return n;
  }

  /// Consumer abandons the stream: the buffer is discarded and every future
  /// push is dropped (the job itself keeps running — cancel the JobHandle
  /// to stop the work too).
  void cancel() HTS_EXCLUDES(mutex_) {
    {
      util::LockGuard lock(mutex_);
      cancelled_ = true;
      queue_.clear();
    }
    item_cv_.notify_all();
    space_cv_.notify_all();
  }

  [[nodiscard]] bool closed() const HTS_EXCLUDES(mutex_) {
    util::LockGuard lock(mutex_);
    return closed_;
  }
  /// Assignments accepted into the stream (buffered or callback-delivered).
  [[nodiscard]] std::size_t delivered() const HTS_EXCLUDES(mutex_) {
    util::LockGuard lock(mutex_);
    return delivered_;
  }
  [[nodiscard]] std::size_t buffered() const HTS_EXCLUDES(mutex_) {
    util::LockGuard lock(mutex_);
    return queue_.size();
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  // Telemetry seams (util/mutex.hpp lock-order item 5: the registry lock is
  // a leaf, and these run with no stream lock held).  References resolve
  // once per process; after that each call is a sharded relaxed add.
  static void record_delivered() {
    static telemetry::Counter& delivered =
        telemetry::Registry::global().counter("hts_stream_delivered_total");
    delivered.increment();
  }
  static void record_stall(double stall_ms) {
    static telemetry::Histogram& stall =
        telemetry::Registry::global().histogram(
            "hts_stream_stall_ms",
            {0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0});
    stall.observe(stall_ms);
  }

  const std::size_t capacity_;
  const std::function<void(const cnf::Assignment&)> callback_;
  mutable util::Mutex mutex_;
  util::CondVar item_cv_;
  util::CondVar space_cv_;
  std::deque<cnf::Assignment> queue_ HTS_GUARDED_BY(mutex_);
  std::size_t delivered_ HTS_GUARDED_BY(mutex_) = 0;
  bool closed_ HTS_GUARDED_BY(mutex_) = false;
  bool cancelled_ HTS_GUARDED_BY(mutex_) = false;
};

}  // namespace hts::service
