#include "solver/brute.hpp"

#include "util/check.hpp"

namespace hts::solver {

void for_each_model(const cnf::Formula& formula,
                    const std::function<bool(const cnf::Assignment&)>& visit) {
  const cnf::Var n = formula.n_vars();
  HTS_CHECK_MSG(n <= kMaxBruteVars, "brute-force enumeration bound exceeded");
  cnf::Assignment assignment(n, 0);
  const std::uint64_t total = 1ULL << n;
  for (std::uint64_t code = 0; code < total; ++code) {
    for (cnf::Var v = 0; v < n; ++v) {
      assignment[v] = static_cast<std::uint8_t>((code >> v) & 1ULL);
    }
    if (formula.satisfied_by(assignment)) {
      if (!visit(assignment)) return;
    }
  }
}

std::vector<cnf::Assignment> enumerate_models(const cnf::Formula& formula) {
  std::vector<cnf::Assignment> models;
  for_each_model(formula, [&](const cnf::Assignment& model) {
    models.push_back(model);
    return true;
  });
  return models;
}

std::uint64_t count_models(const cnf::Formula& formula) {
  std::uint64_t count = 0;
  for_each_model(formula, [&](const cnf::Assignment&) {
    ++count;
    return true;
  });
  return count;
}

}  // namespace hts::solver
