#pragma once

// Exhaustive enumeration over small variable counts — the exact oracle that
// CDCL, the samplers, and the transformation round-trips are tested against.

#include <cstdint>
#include <functional>
#include <vector>

#include "cnf/formula.hpp"

namespace hts::solver {

inline constexpr cnf::Var kMaxBruteVars = 26;

/// All satisfying assignments, in lexicographic order (variable 0 is the
/// least-significant position).  Requires n_vars <= kMaxBruteVars.
[[nodiscard]] std::vector<cnf::Assignment> enumerate_models(const cnf::Formula& formula);

/// Exact model count (same bound).
[[nodiscard]] std::uint64_t count_models(const cnf::Formula& formula);

/// Visits each model; stop early by returning false from the callback.
void for_each_model(const cnf::Formula& formula,
                    const std::function<bool(const cnf::Assignment&)>& visit);

}  // namespace hts::solver
