#include "solver/cdcl.hpp"

#include <algorithm>
#include <cmath>

namespace hts::solver {

using cnf::LBool;
using cnf::Lit;
using cnf::Var;

CdclSolver::CdclSolver(const CdclConfig& config)
    : config_(config), rng_(config.seed) {}

void CdclSolver::ensure_vars(Var n_vars) {
  while (assigns_.size() < n_vars) {
    const Var v = static_cast<Var>(assigns_.size());
    assigns_.push_back(LBool::kUndef);
    saved_phase_.push_back(0);
    level_.push_back(0);
    reason_.push_back(kNoReason);
    activity_.push_back(0.0);
    heap_pos_.push_back(-1);
    seen_.push_back(0);
    watches_.emplace_back();
    watches_.emplace_back();
    heap_insert(v);
  }
}

void CdclSolver::add_formula(const cnf::Formula& formula) {
  ensure_vars(formula.n_vars());
  for (const cnf::Clause& clause : formula.clauses()) add_clause(clause);
}

bool CdclSolver::add_clause(const cnf::Clause& clause) {
  if (!ok_) return false;
  HTS_CHECK_MSG(trail_lim_.empty(), "add_clause requires decision level 0");
  // Normalize: sort, dedupe, drop false literals, detect tautology.
  cnf::Clause lits = clause;
  for (const Lit l : lits) ensure_vars(l.var() + 1);
  std::sort(lits.begin(), lits.end());
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
  cnf::Clause filtered;
  for (std::size_t i = 0; i < lits.size(); ++i) {
    if (i + 1 < lits.size() && lits[i + 1] == ~lits[i]) return true;  // tautology
    if (value(lits[i]) == LBool::kTrue) return true;  // already satisfied
    if (value(lits[i]) == LBool::kFalse) continue;    // falsified at level 0
    filtered.push_back(lits[i]);
  }
  if (filtered.empty()) {
    ok_ = false;
    return false;
  }
  if (filtered.size() == 1) {
    enqueue(filtered[0], kNoReason);
    if (propagate() != kNoReason) {
      ok_ = false;
      return false;
    }
    return true;
  }
  clauses_.push_back(ClauseData{std::move(filtered), 0.0, 0, false, false});
  attach(static_cast<ClauseRef>(clauses_.size() - 1));
  return true;
}

void CdclSolver::attach(ClauseRef ref) {
  const auto& lits = clauses_[ref].lits;
  HTS_DCHECK(lits.size() >= 2);
  watches_[(~lits[0]).code()].push_back(Watcher{ref, lits[1]});
  watches_[(~lits[1]).code()].push_back(Watcher{ref, lits[0]});
}

void CdclSolver::enqueue(Lit lit, ClauseRef reason) {
  HTS_DCHECK(value(lit) == LBool::kUndef);
  assigns_[lit.var()] = lit.negated() ? LBool::kFalse : LBool::kTrue;
  level_[lit.var()] = static_cast<std::uint32_t>(trail_lim_.size());
  reason_[lit.var()] = reason;
  trail_.push_back(lit);
}

CdclSolver::ClauseRef CdclSolver::propagate() {
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];
    ++stats_.propagations;
    std::vector<Watcher>& ws = watches_[p.code()];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < ws.size(); ++i) {
      const Watcher w = ws[i];
      if (value(w.blocker) == LBool::kTrue) {
        ws[keep++] = w;
        continue;
      }
      ClauseData& clause = clauses_[w.clause];
      auto& lits = clause.lits;
      // Ensure the falsified literal (~p) sits at index 1.
      if (lits[0] == ~p) std::swap(lits[0], lits[1]);
      HTS_DCHECK(lits[1] == ~p);
      if (value(lits[0]) == LBool::kTrue) {
        ws[keep++] = Watcher{w.clause, lits[0]};
        continue;
      }
      // Look for a replacement watch.
      bool moved = false;
      for (std::size_t k = 2; k < lits.size(); ++k) {
        if (value(lits[k]) != LBool::kFalse) {
          std::swap(lits[1], lits[k]);
          watches_[(~lits[1]).code()].push_back(Watcher{w.clause, lits[0]});
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Unit or conflicting.
      if (value(lits[0]) == LBool::kFalse) {
        // Conflict: restore remaining watchers and bail out.
        for (std::size_t j = i; j < ws.size(); ++j) ws[keep++] = ws[j];
        ws.resize(keep);
        qhead_ = trail_.size();
        return w.clause;
      }
      ws[keep++] = w;
      enqueue(lits[0], w.clause);
    }
    ws.resize(keep);
  }
  return kNoReason;
}

void CdclSolver::bump_var(Var v) {
  activity_[v] += var_inc_;
  if (activity_[v] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  // Sift up if present in the heap.
  if (heap_pos_[v] >= 0) {
    std::size_t i = static_cast<std::size_t>(heap_pos_[v]);
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (activity_[order_[parent]] >= activity_[order_[i]]) break;
      std::swap(order_[parent], order_[i]);
      heap_pos_[order_[parent]] = static_cast<std::int32_t>(parent);
      heap_pos_[order_[i]] = static_cast<std::int32_t>(i);
      i = parent;
    }
  }
}

void CdclSolver::bump_clause(ClauseData& clause) {
  clause.activity += clause_inc_;
  if (clause.activity > 1e20) {
    for (ClauseData& c : clauses_) c.activity *= 1e-20;
    clause_inc_ *= 1e-20;
  }
}

void CdclSolver::heap_insert(Var v) {
  if (heap_pos_[v] >= 0) return;
  order_.push_back(v);
  std::size_t i = order_.size() - 1;
  heap_pos_[v] = static_cast<std::int32_t>(i);
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (activity_[order_[parent]] >= activity_[order_[i]]) break;
    std::swap(order_[parent], order_[i]);
    heap_pos_[order_[parent]] = static_cast<std::int32_t>(parent);
    heap_pos_[order_[i]] = static_cast<std::int32_t>(i);
    i = parent;
  }
}

Var CdclSolver::heap_pop_max() {
  HTS_DCHECK(!order_.empty());
  const Var top = order_[0];
  heap_pos_[top] = -1;
  if (order_.size() > 1) {
    order_[0] = order_.back();
    heap_pos_[order_[0]] = 0;
  }
  order_.pop_back();
  // Sift down.
  std::size_t i = 0;
  for (;;) {
    const std::size_t left = 2 * i + 1;
    const std::size_t right = 2 * i + 2;
    std::size_t best = i;
    if (left < order_.size() && activity_[order_[left]] > activity_[order_[best]]) {
      best = left;
    }
    if (right < order_.size() && activity_[order_[right]] > activity_[order_[best]]) {
      best = right;
    }
    if (best == i) break;
    std::swap(order_[i], order_[best]);
    heap_pos_[order_[i]] = static_cast<std::int32_t>(i);
    heap_pos_[order_[best]] = static_cast<std::int32_t>(best);
    i = best;
  }
  return top;
}

void CdclSolver::rebuild_order_heap() {
  order_.clear();
  std::fill(heap_pos_.begin(), heap_pos_.end(), -1);
  std::vector<Var> vars(assigns_.size());
  for (Var v = 0; v < vars.size(); ++v) vars[v] = v;
  rng_.shuffle(vars);
  for (const Var v : vars) heap_insert(v);
}

Lit CdclSolver::pick_branch() {
  Var chosen = cnf::kInvalidVar;
  // Optional random decision.
  if (config_.random_decision_freq > 0.0 &&
      rng_.next_bool(config_.random_decision_freq)) {
    // Draw a few candidates; fall through to the heap if all assigned.
    for (int attempt = 0; attempt < 8; ++attempt) {
      const Var v = static_cast<Var>(rng_.next_below(assigns_.size()));
      if (value(v) == LBool::kUndef) {
        chosen = v;
        break;
      }
    }
  }
  while (chosen == cnf::kInvalidVar) {
    if (order_.empty()) return Lit();  // should not happen; guarded by caller
    const Var v = heap_pop_max();
    if (value(v) == LBool::kUndef) chosen = v;
  }
  bool phase = false;
  switch (config_.polarity) {
    case CdclConfig::Polarity::kSaved:
      phase = saved_phase_[chosen] != 0;
      break;
    case CdclConfig::Polarity::kFalse:
      phase = false;
      break;
    case CdclConfig::Polarity::kTrue:
      phase = true;
      break;
    case CdclConfig::Polarity::kRandom:
      phase = rng_.next_bool();
      break;
  }
  return Lit(chosen, !phase);
}

void CdclSolver::backtrack(std::uint32_t target_level) {
  if (trail_lim_.size() <= target_level) return;
  const std::uint32_t bound = trail_lim_[target_level];
  for (std::size_t i = trail_.size(); i-- > bound;) {
    const Var v = trail_[i].var();
    saved_phase_[v] = assigns_[v] == LBool::kTrue ? 1 : 0;
    assigns_[v] = LBool::kUndef;
    reason_[v] = kNoReason;
    heap_insert(v);
  }
  trail_.resize(bound);
  trail_lim_.resize(target_level);
  qhead_ = trail_.size();
}

bool CdclSolver::lit_redundant(Lit lit, std::uint32_t abstract_levels) {
  // Recursive minimization (Sorensson-Biere) with an explicit stack.  Every
  // variable marked here lands in to_clear_, which analyze() resets in bulk;
  // a stale seen_ bit would silently corrupt the next conflict analysis.
  std::vector<Lit> stack{lit};
  const std::size_t checkpoint = to_clear_.size();
  while (!stack.empty()) {
    const Lit l = stack.back();
    stack.pop_back();
    const ClauseRef reason = reason_[l.var()];
    if (reason == kNoReason || reason == kDecisionReason) {
      for (std::size_t i = checkpoint; i < to_clear_.size(); ++i) {
        seen_[to_clear_[i]] = 0;
      }
      to_clear_.resize(checkpoint);
      return false;
    }
    for (const Lit q : clauses_[reason].lits) {
      if (q.var() == l.var() || seen_[q.var()] != 0 || level_[q.var()] == 0) continue;
      const std::uint32_t mask = 1u << (level_[q.var()] & 31);
      if (reason_[q.var()] == kNoReason || reason_[q.var()] == kDecisionReason ||
          (abstract_levels & mask) == 0) {
        for (std::size_t i = checkpoint; i < to_clear_.size(); ++i) {
          seen_[to_clear_[i]] = 0;
        }
        to_clear_.resize(checkpoint);
        return false;
      }
      seen_[q.var()] = 1;
      to_clear_.push_back(q.var());
      stack.push_back(q);
    }
  }
  return true;
}

void CdclSolver::analyze(ClauseRef conflict, std::vector<Lit>& learnt_out,
                         std::uint32_t& backtrack_level, std::uint32_t& lbd_out) {
  learnt_out.clear();
  learnt_out.push_back(Lit());  // slot for the asserting literal
  const std::uint32_t current_level = static_cast<std::uint32_t>(trail_lim_.size());

  std::uint32_t counter = 0;
  Lit p;
  bool have_p = false;
  std::size_t index = trail_.size();
  ClauseRef reason = conflict;

  for (;;) {
    HTS_DCHECK(reason != kNoReason);
    ClauseData& clause = clauses_[reason];
    if (clause.learned) bump_clause(clause);
    for (const Lit q : clause.lits) {
      if (have_p && q == p) continue;
      if (seen_[q.var()] != 0 || level_[q.var()] == 0) continue;
      seen_[q.var()] = 1;
      to_clear_.push_back(q.var());
      bump_var(q.var());
      if (level_[q.var()] >= current_level) {
        ++counter;
      } else {
        learnt_out.push_back(q);
      }
    }
    // Walk the trail to the next marked literal.
    while (seen_[trail_[index - 1].var()] == 0) --index;
    p = trail_[--index];
    have_p = true;
    seen_[p.var()] = 0;
    --counter;
    if (counter == 0) break;
    reason = reason_[p.var()];
  }
  learnt_out[0] = ~p;

  // Minimize.
  std::uint32_t abstract_levels = 0;
  for (std::size_t i = 1; i < learnt_out.size(); ++i) {
    abstract_levels |= 1u << (level_[learnt_out[i].var()] & 31);
  }
  std::size_t keep = 1;
  for (std::size_t i = 1; i < learnt_out.size(); ++i) {
    const ClauseRef r = reason_[learnt_out[i].var()];
    if (r == kNoReason || r == kDecisionReason ||
        !lit_redundant(learnt_out[i], abstract_levels)) {
      learnt_out[keep++] = learnt_out[i];
    }
  }
  learnt_out.resize(keep);

  // Backtrack level: highest level among the non-asserting literals.
  backtrack_level = 0;
  if (learnt_out.size() > 1) {
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < learnt_out.size(); ++i) {
      if (level_[learnt_out[i].var()] > level_[learnt_out[max_i].var()]) max_i = i;
    }
    std::swap(learnt_out[1], learnt_out[max_i]);
    backtrack_level = level_[learnt_out[1].var()];
  }

  // LBD: number of distinct levels in the learnt clause.
  std::vector<std::uint32_t> levels;
  levels.reserve(learnt_out.size());
  for (const Lit l : learnt_out) levels.push_back(level_[l.var()]);
  std::sort(levels.begin(), levels.end());
  lbd_out = static_cast<std::uint32_t>(
      std::unique(levels.begin(), levels.end()) - levels.begin());

  // Clear every flag set during analysis and minimization.
  for (const Var v : to_clear_) seen_[v] = 0;
  to_clear_.clear();
}

void CdclSolver::reduce_learned() {
  // Keep the better half of learned clauses (by activity; low-LBD protected).
  std::vector<ClauseRef> learned;
  for (ClauseRef i = 0; i < clauses_.size(); ++i) {
    if (clauses_[i].learned && !clauses_[i].deleted && clauses_[i].lbd > 2 &&
        clauses_[i].lits.size() > 2) {
      learned.push_back(i);
    }
  }
  if (learned.size() < 100) return;
  std::sort(learned.begin(), learned.end(), [this](ClauseRef a, ClauseRef b) {
    return clauses_[a].activity < clauses_[b].activity;
  });
  // Never delete a clause that is currently a reason.
  std::vector<std::uint8_t> is_reason(clauses_.size(), 0);
  for (const Lit l : trail_) {
    const ClauseRef r = reason_[l.var()];
    if (r != kNoReason && r != kDecisionReason) is_reason[r] = 1;
  }
  std::size_t removed = 0;
  for (std::size_t i = 0; i < learned.size() / 2; ++i) {
    const ClauseRef ref = learned[i];
    if (is_reason[ref] != 0) continue;
    clauses_[ref].deleted = true;
    ++removed;
  }
  if (removed == 0) return;
  stats_.removed += removed;
  // Rebuild watches without the deleted clauses.
  for (auto& ws : watches_) {
    std::size_t keep = 0;
    for (const Watcher& w : ws) {
      if (!clauses_[w.clause].deleted) ws[keep++] = w;
    }
    ws.resize(keep);
  }
}

std::uint64_t CdclSolver::luby(std::uint64_t n) const {
  // Luby sequence, 1-based: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
  HTS_DCHECK(n >= 1);
  std::uint64_t k = 1;
  while (((1ULL << k) - 1) < n) ++k;
  while (((1ULL << k) - 1) != n) {
    n -= (1ULL << (k - 1)) - 1;
    k = 1;
    while (((1ULL << k) - 1) < n) ++k;
  }
  return 1ULL << (k - 1);
}

Status CdclSolver::solve(const std::vector<Lit>& assumptions,
                         const util::Deadline* deadline) {
  if (!ok_) return Status::kUnsat;
  backtrack(0);

  std::uint64_t conflicts_this_solve = 0;
  std::uint64_t restart_count = 0;
  std::uint64_t restart_limit = config_.restart_base * luby(1);
  std::uint64_t conflicts_since_restart = 0;
  std::vector<Lit> learnt;

  for (;;) {
    const ClauseRef conflict = propagate();
    if (conflict != kNoReason) {
      ++stats_.conflicts;
      ++conflicts_this_solve;
      ++conflicts_since_restart;
      if (trail_lim_.empty()) {
        ok_ = false;
        return Status::kUnsat;
      }
      std::uint32_t bt_level = 0;
      std::uint32_t lbd = 0;
      analyze(conflict, learnt, bt_level, lbd);
      backtrack(bt_level);
      if (learnt.size() == 1) {
        enqueue(learnt[0], kNoReason);
      } else {
        clauses_.push_back(ClauseData{learnt, clause_inc_, lbd, true, false});
        attach(static_cast<ClauseRef>(clauses_.size() - 1));
        enqueue(learnt[0], static_cast<ClauseRef>(clauses_.size() - 1));
        ++stats_.learned;
      }
      decay_var_activity();
      clause_inc_ /= config_.clause_decay;
      if (stats_.learned > 0 && stats_.learned % 2000 == 0) reduce_learned();
      if (config_.conflict_budget > 0 &&
          conflicts_this_solve >= static_cast<std::uint64_t>(config_.conflict_budget)) {
        backtrack(0);
        return Status::kUnknown;
      }
      continue;
    }

    if (deadline != nullptr && deadline->expired()) {
      backtrack(0);
      return Status::kUnknown;
    }

    if (conflicts_since_restart >= restart_limit) {
      ++stats_.restarts;
      ++restart_count;
      conflicts_since_restart = 0;
      restart_limit = config_.restart_base * luby(restart_count + 1);
      backtrack(0);
      continue;
    }

    // Apply assumptions first.
    if (trail_lim_.size() < assumptions.size()) {
      const Lit a = assumptions[trail_lim_.size()];
      if (value(a) == LBool::kTrue) {
        trail_lim_.push_back(static_cast<std::uint32_t>(trail_.size()));
        continue;
      }
      if (value(a) == LBool::kFalse) {
        backtrack(0);
        return Status::kUnsat;  // assumptions conflict
      }
      trail_lim_.push_back(static_cast<std::uint32_t>(trail_.size()));
      enqueue(a, kDecisionReason);
      continue;
    }

    if (trail_.size() == assigns_.size()) {
      // Complete assignment: record the model.
      model_.assign(assigns_.size(), 0);
      for (Var v = 0; v < assigns_.size(); ++v) {
        model_[v] = assigns_[v] == LBool::kTrue ? 1 : 0;
      }
      backtrack(0);
      return Status::kSat;
    }

    ++stats_.decisions;
    const Lit decision = pick_branch();
    trail_lim_.push_back(static_cast<std::uint32_t>(trail_.size()));
    enqueue(decision, kDecisionReason);
  }
}

bool CdclSolver::block_model(const std::vector<Var>& projection) {
  HTS_CHECK_MSG(!model_.empty(), "block_model requires a prior SAT answer");
  cnf::Clause blocking;
  if (projection.empty()) {
    blocking.reserve(model_.size());
    for (Var v = 0; v < model_.size(); ++v) {
      blocking.push_back(Lit(v, model_[v] != 0));
    }
  } else {
    blocking.reserve(projection.size());
    for (const Var v : projection) {
      blocking.push_back(Lit(v, model_[v] != 0));
    }
  }
  return add_clause(blocking);
}

void CdclSolver::reshuffle(std::uint64_t seed) {
  rng_.reseed(seed);
  backtrack(0);
  for (double& a : activity_) a = rng_.next_double();
  var_inc_ = 1.0;
  rebuild_order_heap();
  if (config_.polarity == CdclConfig::Polarity::kRandom ||
      config_.polarity == CdclConfig::Polarity::kSaved) {
    for (auto& phase : saved_phase_) phase = rng_.next_bool() ? 1 : 0;
  }
}

Status solve_formula(const cnf::Formula& formula, cnf::Assignment* model_out) {
  CdclSolver solver;
  solver.add_formula(formula);
  const Status status = solver.solve();
  if (status == Status::kSat && model_out != nullptr) *model_out = solver.model();
  return status;
}

}  // namespace hts::solver
