#pragma once

// Conflict-driven clause learning SAT solver.
//
// The substrate under both CDCL-based baselines (the UniGen-like hash
// sampler and the CMSGen-like randomized sampler) and the test oracle for
// the gradient sampler.  Standard architecture: two-watched-literal
// propagation, first-UIP conflict analysis with recursive clause
// minimization, EVSIDS decision scores, phase saving, Luby restarts, and
// activity-driven learned-clause reduction.
//
// Randomization hooks (random polarities, random decision fraction) exist
// because CMSGen's whole design is "a CDCL solver randomized into a
// sampler"; they default off for plain solving.

#include <cstdint>
#include <vector>

#include "cnf/formula.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace hts::solver {

enum class Status : std::uint8_t { kSat, kUnsat, kUnknown };

struct CdclConfig {
  double var_decay = 0.95;
  double clause_decay = 0.999;
  /// Fraction of decisions taken uniformly at random (CMSGen-style
  /// diversification).
  double random_decision_freq = 0.0;
  enum class Polarity : std::uint8_t { kSaved, kFalse, kTrue, kRandom };
  Polarity polarity = Polarity::kSaved;
  std::uint64_t seed = 0x5eed;
  /// Luby restart unit (conflicts).
  std::uint64_t restart_base = 100;
  /// <= 0 disables the conflict budget.
  std::int64_t conflict_budget = -1;
};

class CdclSolver {
 public:
  explicit CdclSolver(const CdclConfig& config = {});

  /// Loads every clause of the formula (variables auto-registered).
  void add_formula(const cnf::Formula& formula);

  void ensure_vars(cnf::Var n_vars);
  /// Returns false if the clause is trivially conflicting at level 0 (the
  /// instance became UNSAT).
  bool add_clause(const cnf::Clause& clause);

  [[nodiscard]] cnf::Var n_vars() const { return static_cast<cnf::Var>(assigns_.size()); }

  /// Solves under optional assumptions.  kUnknown only when a budget or
  /// deadline interrupts the search.
  Status solve(const std::vector<cnf::Lit>& assumptions = {},
               const util::Deadline* deadline = nullptr);

  /// Model of the last kSat answer (complete over all registered vars).
  [[nodiscard]] const cnf::Assignment& model() const { return model_; }

  /// Blocks the last model (over the given variables; empty = all), forcing
  /// the next solve to find a different one.  Returns false if the instance
  /// became UNSAT (enumeration exhausted).
  bool block_model(const std::vector<cnf::Var>& projection = {});

  /// Re-randomizes decision order and polarities (between sampler calls).
  void reshuffle(std::uint64_t seed);

  // --- statistics ----------------------------------------------------------
  struct Stats {
    std::uint64_t conflicts = 0;
    std::uint64_t decisions = 0;
    std::uint64_t propagations = 0;
    std::uint64_t restarts = 0;
    std::uint64_t learned = 0;
    std::uint64_t removed = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  using ClauseRef = std::uint32_t;
  static constexpr ClauseRef kNoReason = static_cast<ClauseRef>(-1);
  static constexpr ClauseRef kDecisionReason = static_cast<ClauseRef>(-2);

  struct ClauseData {
    std::vector<cnf::Lit> lits;
    double activity = 0.0;
    std::uint32_t lbd = 0;
    bool learned = false;
    bool deleted = false;
  };

  struct Watcher {
    ClauseRef clause;
    cnf::Lit blocker;
  };

  // assignment access
  [[nodiscard]] cnf::LBool value(cnf::Var v) const { return assigns_[v]; }
  [[nodiscard]] cnf::LBool value(cnf::Lit l) const {
    const cnf::LBool v = assigns_[l.var()];
    if (v == cnf::LBool::kUndef) return cnf::LBool::kUndef;
    const bool b = (v == cnf::LBool::kTrue) != l.negated();
    return b ? cnf::LBool::kTrue : cnf::LBool::kFalse;
  }

  void enqueue(cnf::Lit lit, ClauseRef reason);
  [[nodiscard]] ClauseRef propagate();
  void analyze(ClauseRef conflict, std::vector<cnf::Lit>& learnt_out,
               std::uint32_t& backtrack_level, std::uint32_t& lbd_out);
  [[nodiscard]] bool lit_redundant(cnf::Lit lit, std::uint32_t abstract_levels);
  void backtrack(std::uint32_t level);
  [[nodiscard]] cnf::Lit pick_branch();
  void bump_var(cnf::Var v);
  void decay_var_activity() { var_inc_ /= config_.var_decay; }
  void bump_clause(ClauseData& clause);
  void reduce_learned();
  void attach(ClauseRef ref);
  [[nodiscard]] std::uint64_t luby(std::uint64_t i) const;
  void rebuild_order_heap();

  // order "heap": simple activity-sorted lazy structure
  void heap_insert(cnf::Var v);
  [[nodiscard]] cnf::Var heap_pop_max();

  CdclConfig config_;
  util::Rng rng_;

  std::vector<ClauseData> clauses_;
  std::vector<std::vector<Watcher>> watches_;  // indexed by lit code

  std::vector<cnf::LBool> assigns_;
  std::vector<std::uint8_t> saved_phase_;
  std::vector<std::uint32_t> level_;
  std::vector<ClauseRef> reason_;
  std::vector<cnf::Lit> trail_;
  std::vector<std::uint32_t> trail_lim_;
  std::size_t qhead_ = 0;

  std::vector<double> activity_;
  double var_inc_ = 1.0;
  double clause_inc_ = 1.0;
  std::vector<cnf::Var> order_;       // binary heap by activity
  std::vector<std::int32_t> heap_pos_;  // -1 when absent

  std::vector<std::uint8_t> seen_;  // scratch for analyze
  std::vector<cnf::Var> to_clear_;  // vars whose seen_ bit analyze must reset
  cnf::Assignment model_;
  Stats stats_;
  bool ok_ = true;  // false once UNSAT at level 0
};

/// Convenience: one-shot satisfiability check.
[[nodiscard]] Status solve_formula(const cnf::Formula& formula,
                                   cnf::Assignment* model_out = nullptr);

}  // namespace hts::solver
