#include "solver/preprocess.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/check.hpp"

namespace hts::solver {

using cnf::Clause;
using cnf::LBool;
using cnf::Lit;
using cnf::Var;

namespace {

/// Sorted-clause subset test: every literal of `small` appears in `big`.
bool subsumes(const Clause& small, const Clause& big) {
  if (small.size() > big.size()) return false;
  std::size_t j = 0;
  for (const Lit lit : small) {
    while (j < big.size() && big[j] < lit) ++j;
    if (j == big.size() || big[j] != lit) return false;
    ++j;
  }
  return true;
}

/// Resolvent of a and b on pivot var v; returns false if tautological.
bool resolve(const Clause& a, const Clause& b, Var v, Clause& out) {
  out.clear();
  for (const Lit lit : a) {
    if (lit.var() != v) out.push_back(lit);
  }
  for (const Lit lit : b) {
    if (lit.var() != v) out.push_back(lit);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  for (std::size_t i = 0; i + 1 < out.size(); ++i) {
    if (out[i + 1] == ~out[i]) return false;  // tautology
  }
  return true;
}

}  // namespace

bool Preprocessor::propagate_units(std::vector<Clause>& clauses) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Clause& clause : clauses) {
      if (clause.size() == 1) {
        const Lit unit = clause[0];
        const LBool want = unit.negated() ? LBool::kFalse : LBool::kTrue;
        if (fixed_[unit.var()] == LBool::kUndef) {
          fixed_[unit.var()] = want;
          ++stats_.units_fixed;
          changed = true;
        } else if (fixed_[unit.var()] != want) {
          return false;  // conflicting units
        }
      }
    }
    if (!changed) continue;
    // Apply the fixed values.
    std::vector<Clause> kept;
    kept.reserve(clauses.size());
    for (Clause& clause : clauses) {
      Clause reduced;
      bool satisfied = false;
      for (const Lit lit : clause) {
        const LBool value = fixed_[lit.var()];
        if (value == LBool::kUndef) {
          reduced.push_back(lit);
          continue;
        }
        if (lit.value_under(value == LBool::kTrue)) {
          satisfied = true;
          break;
        }
        // falsified literal: drop it
      }
      if (satisfied) continue;
      if (reduced.empty()) return false;  // empty clause
      kept.push_back(std::move(reduced));
    }
    clauses = std::move(kept);
  }
  return true;
}

void Preprocessor::subsume(std::vector<Clause>& clauses) {
  // Occurrence lists over sorted clauses.
  for (Clause& clause : clauses) std::sort(clause.begin(), clause.end());

  std::vector<std::uint8_t> dead(clauses.size(), 0);
  // Order by size so potential subsumers come first.
  std::vector<std::size_t> order(clauses.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return clauses[a].size() < clauses[b].size();
  });

  // Occurrence index (literal code -> clause ids) for candidate filtering.
  std::vector<std::vector<std::size_t>> occurs;
  auto rebuild_occurs = [&] {
    occurs.assign(occurs.size(), {});
    std::size_t max_code = 1;
    for (const Clause& c : clauses) {
      for (const Lit l : c) max_code = std::max<std::size_t>(max_code, l.code());
    }
    // Cover complements too (codes come in 2v / 2v+1 pairs): probes index
    // literals that may not occur anywhere.
    occurs.assign((max_code | 1) + 1, {});
    for (std::size_t i = 0; i < clauses.size(); ++i) {
      for (const Lit l : clauses[i]) occurs[l.code()].push_back(i);
    }
  };
  rebuild_occurs();

  for (const std::size_t i : order) {
    if (dead[i] || clauses[i].empty()) continue;
    // Candidates: clauses sharing the rarest literal of clause i.
    const Clause& small = clauses[i];
    std::size_t best_lit = 0;
    std::size_t best_count = static_cast<std::size_t>(-1);
    for (const Lit lit : small) {
      if (occurs[lit.code()].size() < best_count) {
        best_count = occurs[lit.code()].size();
        best_lit = lit.code();
      }
    }
    for (const std::size_t j : occurs[best_lit]) {
      if (j == i || dead[j]) continue;
      if (subsumes(small, clauses[j])) {
        dead[j] = 1;
        ++stats_.clauses_subsumed;
      }
    }
    // Self-subsuming resolution: small with one literal flipped subsumes j
    // => j can drop that literal.
    for (std::size_t flip = 0; flip < small.size(); ++flip) {
      Clause probe = small;
      probe[flip] = ~probe[flip];
      std::sort(probe.begin(), probe.end());
      // Resolving `small` with any superset of `probe` on small[flip].var()
      // lets that clause drop ~small[flip].
      const Lit drop = ~small[flip];
      for (const std::size_t j : occurs[drop.code()]) {
        if (j == i || dead[j]) continue;
        if (subsumes(probe, clauses[j])) {
          auto& target = clauses[j];
          const auto it = std::find(target.begin(), target.end(), drop);
          if (it != target.end()) {
            target.erase(it);
            ++stats_.clauses_strengthened;
          }
        }
      }
    }
  }

  std::vector<Clause> kept;
  kept.reserve(clauses.size());
  for (std::size_t i = 0; i < clauses.size(); ++i) {
    if (!dead[i]) kept.push_back(std::move(clauses[i]));
  }
  clauses = std::move(kept);
}

bool Preprocessor::eliminate_variables(std::vector<Clause>& clauses, Var n_vars) {
  for (Var v = 0; v < n_vars; ++v) {
    if (fixed_[v] != LBool::kUndef || eliminated_[v] != 0) continue;
    std::vector<std::size_t> pos;
    std::vector<std::size_t> neg;
    for (std::size_t i = 0; i < clauses.size(); ++i) {
      for (const Lit lit : clauses[i]) {
        if (lit.var() != v) continue;
        (lit.negated() ? neg : pos).push_back(i);
        break;
      }
    }
    if (pos.empty() && neg.empty()) continue;  // free variable
    if (pos.size() + neg.size() > config_.bve_max_occurrences) continue;

    // Tentatively resolve all pairs.
    std::vector<Clause> resolvents;
    bool blowup = false;
    Clause resolvent;
    for (const std::size_t pi : pos) {
      for (const std::size_t ni : neg) {
        if (!resolve(clauses[pi], clauses[ni], v, resolvent)) continue;
        if (resolvent.size() > config_.bve_max_resolvent) {
          blowup = true;
          break;
        }
        resolvents.push_back(resolvent);
      }
      if (blowup) break;
    }
    if (blowup) continue;
    if (static_cast<std::ptrdiff_t>(resolvents.size()) >
        static_cast<std::ptrdiff_t>(pos.size() + neg.size()) +
            config_.bve_growth_limit) {
      continue;
    }

    // Commit: record the occurrences for model reconstruction, then swap the
    // clause set.
    Elimination record;
    record.var = v;
    std::unordered_set<std::size_t> removed(pos.begin(), pos.end());
    removed.insert(neg.begin(), neg.end());
    for (const std::size_t i : removed) record.clauses.push_back(clauses[i]);
    elimination_stack_.push_back(std::move(record));
    eliminated_[v] = 1;
    ++stats_.vars_eliminated;

    std::vector<Clause> next;
    next.reserve(clauses.size() - removed.size() + resolvents.size());
    for (std::size_t i = 0; i < clauses.size(); ++i) {
      if (!removed.contains(i)) next.push_back(std::move(clauses[i]));
    }
    for (Clause& r : resolvents) {
      if (r.empty()) return false;
      next.push_back(std::move(r));
    }
    clauses = std::move(next);
  }
  return true;
}

bool Preprocessor::simplify(cnf::Formula& formula) {
  fixed_.assign(formula.n_vars(), LBool::kUndef);
  eliminated_.assign(formula.n_vars(), 0);

  std::vector<Clause> clauses = formula.clauses();
  // Normalize: sort, dedupe literals, drop tautologies.
  {
    std::vector<Clause> kept;
    kept.reserve(clauses.size());
    for (Clause& clause : clauses) {
      std::sort(clause.begin(), clause.end());
      clause.erase(std::unique(clause.begin(), clause.end()), clause.end());
      bool tautology = false;
      for (std::size_t i = 0; i + 1 < clause.size(); ++i) {
        if (clause[i + 1] == ~clause[i]) {
          tautology = true;
          break;
        }
      }
      if (!tautology) kept.push_back(std::move(clause));
    }
    clauses = std::move(kept);
  }

  if (!propagate_units(clauses)) return false;
  if (config_.enable_subsumption) subsume(clauses);
  if (!propagate_units(clauses)) return false;
  if (config_.enable_bve) {
    if (!eliminate_variables(clauses, formula.n_vars())) return false;
    if (!propagate_units(clauses)) return false;
    if (config_.enable_subsumption) subsume(clauses);
  }

  cnf::Formula simplified(formula.n_vars());
  for (Clause& clause : clauses) simplified.add_clause(std::move(clause));
  formula = std::move(simplified);
  return true;
}

void Preprocessor::extend_model(cnf::Assignment& model) const {
  HTS_CHECK(model.size() >= fixed_.size());
  // Fixed variables first.
  for (Var v = 0; v < fixed_.size(); ++v) {
    if (fixed_[v] == LBool::kTrue) model[v] = 1;
    if (fixed_[v] == LBool::kFalse) model[v] = 0;
  }
  // Eliminated variables in reverse elimination order: set each to satisfy
  // all clauses it was removed with.
  for (auto it = elimination_stack_.rbegin(); it != elimination_stack_.rend(); ++it) {
    const Var v = it->var;
    // Default 0; flip to 1 only if some clause needs it.
    model[v] = 0;
    for (const Clause& clause : it->clauses) {
      bool satisfied = false;
      bool v_positive_present = false;
      for (const Lit lit : clause) {
        if (lit.var() == v) {
          v_positive_present |= !lit.negated();
          continue;
        }
        if (lit.value_under(model[lit.var()] != 0)) {
          satisfied = true;
          break;
        }
      }
      if (!satisfied && v_positive_present) {
        model[v] = 1;
      }
    }
    // Second pass sanity: with the chosen value every clause must hold.
    for (const Clause& clause : it->clauses) {
      bool satisfied = false;
      for (const Lit lit : clause) {
        if (lit.value_under(model[lit.var()] != 0)) {
          satisfied = true;
          break;
        }
      }
      HTS_DCHECK(satisfied);
      (void)satisfied;
    }
  }
}

}  // namespace hts::solver
