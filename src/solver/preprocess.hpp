#pragma once

// CNF preprocessing in the SatELite tradition: unit propagation to fixpoint,
// subsumption, self-subsuming resolution (clause strengthening), and
// bounded variable elimination (BVE) with a model-reconstruction stack.
//
// Role: real sampler stacks (UniGen3/CMSGen on CryptoMiniSat) run heavy
// preprocessing before search; this module provides that substrate for the
// CDCL-based baselines and doubles as an alternative "simplify before
// transform" path for the gradient sampler.  Because samplers must report
// assignments over the *original* variables, elimination records enough
// information to extend any model of the simplified formula back to a full
// model of the original one.

#include <cstdint>
#include <vector>

#include "cnf/formula.hpp"

namespace hts::solver {

struct PreprocessConfig {
  /// A variable is eliminated only if resolving its occurrences grows the
  /// clause count by at most this many clauses (0 = classic "never grow").
  int bve_growth_limit = 0;
  /// Occurrence cap: variables appearing more often are never eliminated.
  std::size_t bve_max_occurrences = 16;
  /// Resolvents longer than this are treated as a blow-up (skip the var).
  std::size_t bve_max_resolvent = 12;
  bool enable_subsumption = true;
  bool enable_bve = true;
};

class Preprocessor {
 public:
  explicit Preprocessor(const PreprocessConfig& config = {}) : config_(config) {}

  /// Simplifies the formula in place.  Returns false when the formula was
  /// proven UNSAT (the formula is left in an unspecified but valid state).
  bool simplify(cnf::Formula& formula);

  /// Extends a model of the simplified formula over the original variable
  /// universe: fills in the values of fixed and eliminated variables.  The
  /// input must assign all surviving variables.
  void extend_model(cnf::Assignment& model) const;

  struct Stats {
    std::size_t units_fixed = 0;
    std::size_t clauses_subsumed = 0;
    std::size_t clauses_strengthened = 0;
    std::size_t vars_eliminated = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Variables fixed at preprocessing time (value in fixed_value()).
  [[nodiscard]] bool is_fixed(cnf::Var v) const {
    return fixed_[v] != cnf::LBool::kUndef;
  }
  [[nodiscard]] bool is_eliminated(cnf::Var v) const { return eliminated_[v] != 0; }

 private:
  bool propagate_units(std::vector<cnf::Clause>& clauses);
  void subsume(std::vector<cnf::Clause>& clauses);
  bool eliminate_variables(std::vector<cnf::Clause>& clauses, cnf::Var n_vars);

  PreprocessConfig config_;
  Stats stats_;
  std::vector<cnf::LBool> fixed_;
  std::vector<std::uint8_t> eliminated_;
  /// Reconstruction record: the clauses containing `var` at elimination
  /// time.  During extension, `var` is set to satisfy all of them.
  struct Elimination {
    cnf::Var var;
    std::vector<cnf::Clause> clauses;
  };
  std::vector<Elimination> elimination_stack_;
};

}  // namespace hts::solver
