#include "solver/walksat.hpp"

#include "util/check.hpp"

namespace hts::solver {

using cnf::Lit;
using cnf::Var;

WalkSat::WalkSat(const cnf::Formula& formula, WalkSatConfig config)
    : formula_(&formula), config_(config), rng_(config.seed) {
  occurs_.resize(2 * static_cast<std::size_t>(formula.n_vars()));
  const auto& clauses = formula.clauses();
  for (std::size_t ci = 0; ci < clauses.size(); ++ci) {
    for (const Lit lit : clauses[ci]) occurs_[lit.code()].push_back(ci);
  }
  n_true_.resize(clauses.size());
  unsat_pos_.resize(clauses.size());
}

void WalkSat::rebuild(const cnf::Assignment& assignment) {
  assignment_ = assignment;
  unsat_clauses_.clear();
  std::fill(unsat_pos_.begin(), unsat_pos_.end(), kNotInUnsat);
  const auto& clauses = formula_->clauses();
  for (std::size_t ci = 0; ci < clauses.size(); ++ci) {
    std::uint32_t n_true = 0;
    for (const Lit lit : clauses[ci]) {
      if (lit.value_under(assignment_[lit.var()] != 0)) ++n_true;
    }
    n_true_[ci] = n_true;
    if (n_true == 0) mark_unsat(ci);
  }
}

void WalkSat::mark_unsat(std::size_t clause) {
  if (unsat_pos_[clause] != kNotInUnsat) return;
  unsat_pos_[clause] = unsat_clauses_.size();
  unsat_clauses_.push_back(clause);
}

void WalkSat::mark_sat(std::size_t clause) {
  const std::size_t pos = unsat_pos_[clause];
  if (pos == kNotInUnsat) return;
  const std::size_t last = unsat_clauses_.back();
  unsat_clauses_[pos] = last;
  unsat_pos_[last] = pos;
  unsat_clauses_.pop_back();
  unsat_pos_[clause] = kNotInUnsat;
}

std::size_t WalkSat::break_count(Var v) const {
  // Clauses that would become unsatisfied by flipping v: those where the
  // literal of v currently true is the only true literal.
  const bool current = assignment_[v] != 0;
  const Lit true_lit(v, !current);  // literal satisfied under current value
  std::size_t breaks = 0;
  for (const std::size_t ci : occurs_[true_lit.code()]) {
    if (n_true_[ci] == 1) ++breaks;
  }
  return breaks;
}

void WalkSat::flip(Var v) {
  const bool old_value = assignment_[v] != 0;
  const Lit was_true(v, !old_value);
  const Lit now_true(v, old_value);
  assignment_[v] = old_value ? 0 : 1;
  for (const std::size_t ci : occurs_[was_true.code()]) {
    if (--n_true_[ci] == 0) mark_unsat(ci);
  }
  for (const std::size_t ci : occurs_[now_true.code()]) {
    if (++n_true_[ci] == 1) mark_sat(ci);
  }
  ++total_flips_;
}

std::optional<cnf::Assignment> WalkSat::search(const util::Deadline* deadline) {
  cnf::Assignment init(formula_->n_vars());
  for (auto& bit : init) bit = rng_.next_bool() ? 1 : 0;
  rebuild(init);

  for (std::uint64_t step = 0; step < config_.max_flips; ++step) {
    if (unsat_clauses_.empty()) return assignment_;
    if (deadline != nullptr && (step & 1023) == 0 && deadline->expired()) {
      return std::nullopt;
    }
    const std::size_t ci =
        unsat_clauses_[rng_.next_below(unsat_clauses_.size())];
    const cnf::Clause& clause = formula_->clause(ci);
    Var chosen = cnf::kInvalidVar;
    if (rng_.next_bool(config_.noise)) {
      chosen = clause[rng_.next_below(clause.size())].var();
    } else {
      std::size_t best_breaks = static_cast<std::size_t>(-1);
      for (const Lit lit : clause) {
        const std::size_t breaks = break_count(lit.var());
        if (breaks < best_breaks) {
          best_breaks = breaks;
          chosen = lit.var();
        }
      }
    }
    flip(chosen);
  }
  return unsat_clauses_.empty() ? std::optional<cnf::Assignment>(assignment_)
                                : std::nullopt;
}

}  // namespace hts::solver
