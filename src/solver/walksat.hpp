#pragma once

// WalkSAT stochastic local search (Selman et al.).
//
// Included as the classic local-search point in the solver family; also a
// useful diversity engine in its own right.  Not one of the paper's Table II
// baselines, but it anchors the "heuristic sampler" end of the spectrum in
// the extension benches.

#include <cstdint>
#include <optional>

#include "cnf/formula.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace hts::solver {

struct WalkSatConfig {
  double noise = 0.5;  // probability of a random (non-greedy) flip
  std::uint64_t max_flips = 100000;
  std::uint64_t seed = 0x5eed;
};

class WalkSat {
 public:
  explicit WalkSat(const cnf::Formula& formula, WalkSatConfig config = {});

  /// One restart from a fresh random assignment; returns a model when found
  /// within max_flips.
  [[nodiscard]] std::optional<cnf::Assignment> search(
      const util::Deadline* deadline = nullptr);

  [[nodiscard]] std::uint64_t total_flips() const { return total_flips_; }

 private:
  [[nodiscard]] std::size_t break_count(cnf::Var v) const;
  void flip(cnf::Var v);

  const cnf::Formula* formula_;
  WalkSatConfig config_;
  util::Rng rng_;
  cnf::Assignment assignment_;
  // Clause bookkeeping: number of true literals per clause, list of
  // currently-unsatisfied clause indices with positions for O(1) removal.
  std::vector<std::uint32_t> n_true_;
  std::vector<std::size_t> unsat_clauses_;
  std::vector<std::size_t> unsat_pos_;  // clause -> index in unsat_clauses_ (or npos)
  std::vector<std::vector<std::size_t>> occurs_;  // lit code -> clause indices
  std::uint64_t total_flips_ = 0;

  static constexpr std::size_t kNotInUnsat = static_cast<std::size_t>(-1);

  void rebuild(const cnf::Assignment& assignment);
  void mark_sat(std::size_t clause);
  void mark_unsat(std::size_t clause);
};

}  // namespace hts::solver
