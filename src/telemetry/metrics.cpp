#include "telemetry/metrics.hpp"

#include <algorithm>
#include <charconv>
#include <cinttypes>
#include <cstdio>
#include <functional>
#include <sstream>
#include <system_error>
#include <thread>

#include "util/env.hpp"

namespace hts::telemetry {

namespace detail {

namespace {
bool env_flag(const char* name) {
  return hts::util::env_int(name, 0) != 0;
}
}  // namespace

// Telemetry defaults off; HTS_TELEMETRY=1 / HTS_TRACE=1 arm it at process
// start, and embedders flip it programmatically before building a Server.
std::atomic<bool> g_metrics_enabled{env_flag("HTS_TELEMETRY")};
std::atomic<bool> g_trace_enabled{env_flag("HTS_TRACE")};

std::size_t tls_shard() {
  thread_local const std::size_t shard =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kShards;
  return shard;
}

}  // namespace detail

void set_metrics_enabled(bool on) {
  detail::g_metrics_enabled.store(on, std::memory_order_relaxed);
}

void set_trace_enabled(bool on) {
  detail::g_trace_enabled.store(on, std::memory_order_relaxed);
}

// ----------------------------------------------------------------- Histogram

namespace {
// Cells per shard, rounded up to a whole 64-byte line of u64s.
std::size_t padded_stride(std::size_t buckets) {
  return (buckets + 7) / 8 * 8;
}
}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  stride_ = padded_stride(bounds_.size() + 1);
  // make_unique value-initializes: every cell starts at zero.
  cells_ = std::make_unique<std::atomic<std::uint64_t>[]>(stride_ *
                                                          detail::kShards);
}

void Histogram::observe(double value) {
  // lower_bound: first bound >= value, i.e. Prometheus-inclusive upper
  // edges — an observation equal to a bound lands in that bound's bucket.
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  const std::size_t shard = detail::tls_shard();
  cells_[shard * stride_ + bucket].fetch_add(1, std::memory_order_relaxed);
  sums_[shard].v.fetch_add(value, std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  const std::size_t n_buckets = bounds_.size() + 1;
  for (std::size_t s = 0; s < detail::kShards; ++s)
    for (std::size_t b = 0; b < n_buckets; ++b)
      total += cells_[s * stride_ + b].load(std::memory_order_relaxed);
  return total;
}

double Histogram::sum() const {
  double total = 0.0;
  for (const SumCell& c : sums_) total += c.v.load(std::memory_order_relaxed);
  return total;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1, 0);
  for (std::size_t s = 0; s < detail::kShards; ++s)
    for (std::size_t b = 0; b < out.size(); ++b)
      out[b] += cells_[s * stride_ + b].load(std::memory_order_relaxed);
  return out;
}

double Histogram::percentile(double p) const {
  const std::vector<std::uint64_t> buckets = bucket_counts();
  std::uint64_t total = 0;
  for (std::uint64_t b : buckets) total += b;
  if (total == 0) return 0.0;
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 *
                      static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    const std::uint64_t next = cumulative + buckets[b];
    if (static_cast<double>(next) >= rank) {
      const double lo = b == 0 ? 0.0 : bounds_[b - 1];
      if (b >= bounds_.size()) return lo;  // +inf bucket: report its edge
      const double hi = bounds_[b];
      const double within =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(buckets[b]);
      return lo + (hi - lo) * std::clamp(within, 0.0, 1.0);
    }
    cumulative = next;
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

void Histogram::reset() {
  const std::size_t n = stride_ * detail::kShards;
  for (std::size_t i = 0; i < n; ++i)
    cells_[i].store(0, std::memory_order_relaxed);
  for (SumCell& c : sums_) c.v.store(0.0, std::memory_order_relaxed);
}

// ------------------------------------------------------------------ Registry

namespace {

std::string entry_key(const std::string& name, const Labels& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key += '\x1f';
    key += k;
    key += '\x1e';
    key += v;
  }
  return key;
}

/// Prometheus label-value escaping: backslash, double-quote, newline.
std::string escape_label(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string render_labels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += escape_label(v);
    out += '"';
  }
  out += '}';
  return out;
}

/// Like render_labels but with one extra label appended (histogram `le`).
std::string render_labels_plus(const Labels& labels, const std::string& key,
                               const std::string& value) {
  Labels extended = labels;
  extended.emplace_back(key, value);
  return render_labels(extended);
}

std::string format_double(double v) {
  // Shortest round-trip representation: "0.1" stays "0.1" in `le` labels
  // and JSON, not "0.10000000000000001".
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc()) {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
  }
  return std::string(buf, end);
}

std::string json_escape(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

Registry& Registry::global() {
  static Registry* instance = new Registry();  // leaked by design
  return *instance;
}

Counter& Registry::counter(const std::string& name, const Labels& labels) {
  util::LockGuard lock(mutex_);
  Entry& e = entries_[entry_key(name, labels)];
  if (!e.counter) {
    e.name = name;
    e.labels = labels;
    e.counter = std::make_unique<Counter>();
  }
  return *e.counter;
}

Gauge& Registry::gauge(const std::string& name, const Labels& labels) {
  util::LockGuard lock(mutex_);
  Entry& e = entries_[entry_key(name, labels)];
  if (!e.gauge) {
    e.name = name;
    e.labels = labels;
    e.gauge = std::make_unique<Gauge>();
  }
  return *e.gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds,
                               const Labels& labels) {
  util::LockGuard lock(mutex_);
  Entry& e = entries_[entry_key(name, labels)];
  if (!e.histogram) {
    e.name = name;
    e.labels = labels;
    e.histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return *e.histogram;
}

std::vector<MetricSnapshot> Registry::snapshot() const {
  util::LockGuard lock(mutex_);
  std::vector<MetricSnapshot> out;
  out.reserve(entries_.size());
  for (const auto& [key, e] : entries_) {
    (void)key;
    MetricSnapshot s;
    s.name = e.name;
    s.labels = e.labels;
    if (e.counter) {
      s.kind = MetricSnapshot::Kind::kCounter;
      s.value = static_cast<double>(e.counter->value());
    } else if (e.gauge) {
      s.kind = MetricSnapshot::Kind::kGauge;
      s.value = static_cast<double>(e.gauge->value());
    } else if (e.histogram) {
      s.kind = MetricSnapshot::Kind::kHistogram;
      s.count = e.histogram->count();
      s.sum = e.histogram->sum();
      s.bounds = e.histogram->bounds();
      s.buckets = e.histogram->bucket_counts();
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::string Registry::snapshot_json() const {
  const std::vector<MetricSnapshot> metrics = snapshot();
  std::ostringstream out;
  out << "{\"metrics\":[";
  bool first = true;
  for (const MetricSnapshot& m : metrics) {
    if (!first) out << ',';
    first = false;
    out << "{\"name\":\"" << json_escape(m.name) << "\",\"labels\":{";
    bool first_label = true;
    for (const auto& [k, v] : m.labels) {
      if (!first_label) out << ',';
      first_label = false;
      out << '"' << json_escape(k) << "\":\"" << json_escape(v) << '"';
    }
    out << "},";
    switch (m.kind) {
      case MetricSnapshot::Kind::kCounter:
        out << "\"type\":\"counter\",\"value\":" << format_double(m.value);
        break;
      case MetricSnapshot::Kind::kGauge:
        out << "\"type\":\"gauge\",\"value\":" << format_double(m.value);
        break;
      case MetricSnapshot::Kind::kHistogram: {
        out << "\"type\":\"histogram\",\"count\":" << m.count
            << ",\"sum\":" << format_double(m.sum) << ",\"bounds\":[";
        for (std::size_t i = 0; i < m.bounds.size(); ++i) {
          if (i != 0) out << ',';
          out << format_double(m.bounds[i]);
        }
        out << "],\"buckets\":[";
        for (std::size_t i = 0; i < m.buckets.size(); ++i) {
          if (i != 0) out << ',';
          out << m.buckets[i];
        }
        out << ']';
        break;
      }
    }
    out << '}';
  }
  out << "]}";
  return out.str();
}

std::string Registry::render_prometheus() const {
  const std::vector<MetricSnapshot> metrics = snapshot();
  std::ostringstream out;
  std::string last_typed;  // one # TYPE line per metric family
  for (const MetricSnapshot& m : metrics) {
    const char* type = m.kind == MetricSnapshot::Kind::kCounter   ? "counter"
                       : m.kind == MetricSnapshot::Kind::kGauge   ? "gauge"
                                                                  : "histogram";
    if (m.name != last_typed) {
      out << "# TYPE " << m.name << ' ' << type << '\n';
      last_typed = m.name;
    }
    switch (m.kind) {
      case MetricSnapshot::Kind::kCounter:
      case MetricSnapshot::Kind::kGauge:
        out << m.name << render_labels(m.labels) << ' '
            << format_double(m.value) << '\n';
        break;
      case MetricSnapshot::Kind::kHistogram: {
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < m.buckets.size(); ++b) {
          cumulative += m.buckets[b];
          const std::string le =
              b < m.bounds.size() ? format_double(m.bounds[b]) : "+Inf";
          out << m.name << "_bucket"
              << render_labels_plus(m.labels, "le", le) << ' ' << cumulative
              << '\n';
        }
        out << m.name << "_sum" << render_labels(m.labels) << ' '
            << format_double(m.sum) << '\n';
        out << m.name << "_count" << render_labels(m.labels) << ' '
            << cumulative << '\n';
        break;
      }
    }
  }
  return out.str();
}

void Registry::reset_values() {
  util::LockGuard lock(mutex_);
  for (auto& [key, e] : entries_) {
    (void)key;
    if (e.counter) e.counter->reset();
    if (e.gauge) e.gauge->reset();
    if (e.histogram) e.histogram->reset();
  }
}

}  // namespace hts::telemetry
