#pragma once

// Process-wide metrics registry: counters, gauges, and fixed-bucket
// histograms with thread-sharded, cache-line-padded cells aggregated on
// read.  Hot-path writers touch one relaxed atomic in their own shard; a
// snapshot sums the shards, so recording never contends with exporting.
//
// Design contract (tested by tests/telemetry_test.cpp):
//   - Recording must never perturb results: no RNG, no ordering, no lock
//     acquisition on the record path.  All cells are plain atomics.
//   - The disabled path costs one predictable branch: every record site in
//     the repo is written `if (telemetry::metrics_enabled()) { ... }`, and
//     metrics_enabled() is a single relaxed atomic<bool> load.
//   - Metric objects are registered once by (name, static labels) and live
//     for the process lifetime (the registry leaks by design, so record
//     sites may run during static destruction without use-after-free).
//
// Export surfaces: snapshot() for in-process assertions, snapshot_json()
// for tooling, and render_prometheus() in text-exposition format for a
// future /metrics endpoint (see ROADMAP: network front-end).

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace hts::telemetry {

// ---------------------------------------------------------------- enable flag

namespace detail {
extern std::atomic<bool> g_metrics_enabled;
extern std::atomic<bool> g_trace_enabled;

/// Index of the calling thread's shard, cached in a thread_local.  Threads
/// hash onto kShards cells; collisions only cost contention, never
/// correctness.
inline constexpr std::size_t kShards = 16;
[[nodiscard]] std::size_t tls_shard();
}  // namespace detail

/// One relaxed load — the whole cost of a disabled record site.
[[nodiscard]] inline bool metrics_enabled() {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}
void set_metrics_enabled(bool on);

[[nodiscard]] inline bool trace_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}
void set_trace_enabled(bool on);

// ------------------------------------------------------------------- metrics

/// Monotone event count, sharded per thread.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n) {
    cells_[detail::tls_shard()].v.fetch_add(n, std::memory_order_relaxed);
  }
  void increment() { add(1); }

  [[nodiscard]] std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }

  void reset() {
    for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Cell, detail::kShards> cells_;
};

/// Signed instantaneous level (queue depth, in-flight jobs).  A single
/// atomic: gauges move on scheduling edges, not per-iteration hot loops.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void add(std::int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  void sub(std::int64_t n) { v_.fetch_sub(n, std::memory_order_relaxed); }
  void set(std::int64_t n) { v_.store(n, std::memory_order_relaxed); }

  [[nodiscard]] std::int64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

  void reset() { set(0); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket histogram: `bounds` are the inclusive upper edges of the
/// finite buckets; one implicit +inf bucket catches the rest.  Bucket
/// counts and the running sum are sharded like Counter cells.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double value);

  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] double sum() const;
  /// Aggregated per-bucket counts, bounds.size() + 1 entries (last = +inf).
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }

  /// Percentile in [0, 100] by linear interpolation inside the owning
  /// bucket (the +inf bucket reports its lower edge).  Returns 0 when
  /// empty.  Snapshot-grade accuracy, not exact order statistics.
  [[nodiscard]] double percentile(double p) const;

  void reset();

 private:
  std::vector<double> bounds_;
  // Per-shard bucket counts, shard-major, with the stride rounded up to a
  // whole cache line so shards never false-share.
  std::size_t stride_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> cells_;
  struct alignas(64) SumCell {
    std::atomic<double> v{0.0};
  };
  std::array<SumCell, detail::kShards> sums_;
};

// ------------------------------------------------------------------ registry

/// A label set attached at registration time (static labels only — no
/// per-observation labels, so the hot path never formats strings).
using Labels = std::vector<std::pair<std::string, std::string>>;

struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Labels labels;
  Kind kind = Kind::kCounter;
  // Counter/gauge value (counters as the unsigned total, gauges signed).
  double value = 0.0;
  // Histogram-only fields.
  std::uint64_t count = 0;
  double sum = 0.0;
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;
};

/// Name + static-label keyed registry.  get-or-create is mutex-guarded and
/// expected at setup frequency; the returned references are stable for the
/// process lifetime, so callers cache them (typically as function-local
/// statics or constructor-resolved members).
class Registry {
 public:
  /// The process-wide registry.  Leaks on purpose: record sites may run
  /// during static destruction.
  static Registry& global();

  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       const Labels& labels = {});

  [[nodiscard]] std::vector<MetricSnapshot> snapshot() const;
  [[nodiscard]] std::string snapshot_json() const;
  /// Prometheus text-exposition format (# TYPE lines, label escaping,
  /// _bucket/_sum/_count expansion for histograms).
  [[nodiscard]] std::string render_prometheus() const;

  /// Zero every cell but keep all registrations (tests isolate scenarios
  /// without invalidating cached references).
  void reset_values();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

 private:
  Registry() = default;

  struct Entry {
    std::string name;
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable util::Mutex mutex_;
  // Keyed by name + serialized labels; std::map keeps export output sorted.
  std::map<std::string, Entry> entries_ HTS_GUARDED_BY(mutex_);
};

}  // namespace hts::telemetry
