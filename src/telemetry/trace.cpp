#include "telemetry/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/env.hpp"
#include "util/timer.hpp"

namespace hts::telemetry {

namespace {

// Per-thread ring capacity: spans fire at phase boundaries (a handful per
// slice), so 128K events cover hours of serving; HTS_TRACE_RING overrides
// for stress tests.
std::size_t ring_capacity() {
  static const std::size_t capacity = static_cast<std::size_t>(
      std::max<long long>(1024, hts::util::env_int("HTS_TRACE_RING", 131072)));
  return capacity;
}

std::string json_escape(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

/// Chrome trace ts/dur are microseconds; keep ns precision as a fraction.
std::string format_us(std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03u",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned>(ns % 1000));
  return buf;
}

}  // namespace

TraceSink& TraceSink::global() {
  static TraceSink* instance = new TraceSink();  // leaked by design
  return *instance;
}

TraceSink::ThreadBuffer& TraceSink::local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer;
  if (!buffer) {
    util::LockGuard lock(mutex_);
    buffer = std::make_shared<ThreadBuffer>(next_tid_++, ring_capacity());
    buffers_.push_back(buffer);
  }
  return *buffer;
}

void TraceSink::record(const TraceEvent& event) {
  ThreadBuffer& buf = local_buffer();
  util::LockGuard lock(buf.mutex);
  if (buf.events.size() >= buf.capacity) {
    ++buf.dropped;  // drop-newest: never block or reorder the hot path
    return;
  }
  TraceEvent e = event;
  e.tid = buf.tid;
  buf.events.push_back(e);
}

void TraceSink::complete(const char* name, const char* cat,
                         std::uint64_t begin_ns, std::uint64_t end_ns) {
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.phase = TraceEvent::Phase::kComplete;
  e.ts_ns = begin_ns;
  e.dur_ns = end_ns >= begin_ns ? end_ns - begin_ns : 0;
  record(e);
}

void TraceSink::instant(const char* name, const char* cat) {
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.phase = TraceEvent::Phase::kInstant;
  e.ts_ns = util::monotonic_ns();
  record(e);
}

void TraceSink::async_begin(const char* name, const char* cat,
                            std::uint64_t id, std::uint64_t ts_ns) {
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.phase = TraceEvent::Phase::kAsyncBegin;
  e.ts_ns = ts_ns;
  e.id = id;
  record(e);
}

void TraceSink::async_end(const char* name, const char* cat, std::uint64_t id,
                          std::uint64_t ts_ns) {
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.phase = TraceEvent::Phase::kAsyncEnd;
  e.ts_ns = ts_ns;
  e.id = id;
  record(e);
}

void TraceSink::async_instant(const char* name, const char* cat,
                              std::uint64_t id, std::uint64_t ts_ns) {
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.phase = TraceEvent::Phase::kAsyncInstant;
  e.ts_ns = ts_ns;
  e.id = id;
  record(e);
}

void TraceSink::set_thread_name(const std::string& name) {
  ThreadBuffer& buf = local_buffer();
  util::LockGuard lock(buf.mutex);
  buf.thread_name = name;
}

std::vector<TraceEvent> TraceSink::snapshot_events() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    util::LockGuard lock(mutex_);
    buffers = buffers_;
  }
  std::vector<TraceEvent> out;
  for (const auto& buf : buffers) {
    util::LockGuard lock(buf->mutex);
    out.insert(out.end(), buf->events.begin(), buf->events.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return out;
}

std::string TraceSink::render_chrome_json() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    util::LockGuard lock(mutex_);
    buffers = buffers_;
  }
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  std::uint64_t total_dropped = 0;
  for (const auto& buf : buffers) {
    util::LockGuard lock(buf->mutex);
    total_dropped += buf->dropped;
    if (!buf->thread_name.empty()) {
      if (!first) out << ',';
      first = false;
      out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
          << buf->tid << ",\"args\":{\"name\":\""
          << json_escape(buf->thread_name) << "\"}}";
    }
    for (const TraceEvent& e : buf->events) {
      if (!first) out << ',';
      first = false;
      out << "{\"name\":\"" << json_escape(e.name) << "\",\"cat\":\""
          << json_escape(*e.cat ? e.cat : "hts") << "\",\"pid\":1,\"tid\":"
          << e.tid << ",\"ts\":" << format_us(e.ts_ns);
      switch (e.phase) {
        case TraceEvent::Phase::kComplete:
          out << ",\"ph\":\"X\",\"dur\":" << format_us(e.dur_ns);
          break;
        case TraceEvent::Phase::kInstant:
          out << ",\"ph\":\"i\",\"s\":\"t\"";
          break;
        case TraceEvent::Phase::kAsyncBegin:
          out << ",\"ph\":\"b\",\"id\":" << e.id;
          break;
        case TraceEvent::Phase::kAsyncEnd:
          out << ",\"ph\":\"e\",\"id\":" << e.id;
          break;
        case TraceEvent::Phase::kAsyncInstant:
          out << ",\"ph\":\"n\",\"id\":" << e.id;
          break;
      }
      out << '}';
    }
  }
  out << "],\"otherData\":{\"clock\":\"monotonic_ns\",\"dropped\":"
      << total_dropped << "}}";
  return out.str();
}

bool TraceSink::write_chrome_json(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << render_chrome_json();
  return static_cast<bool>(out);
}

std::uint64_t TraceSink::dropped() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    util::LockGuard lock(mutex_);
    buffers = buffers_;
  }
  std::uint64_t total = 0;
  for (const auto& buf : buffers) {
    util::LockGuard lock(buf->mutex);
    total += buf->dropped;
  }
  return total;
}

void TraceSink::clear() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    util::LockGuard lock(mutex_);
    buffers = buffers_;
  }
  for (const auto& buf : buffers) {
    util::LockGuard lock(buf->mutex);
    buf->events.clear();
    buf->thread_name.clear();
    buf->dropped = 0;
  }
}

}  // namespace hts::telemetry
