#pragma once

// Span tracing: fixed-capacity per-thread ring buffers of trace events on
// the process monotonic clock (util::monotonic_ns), drained to Chrome
// trace-event JSON loadable in Perfetto.  Layout contract:
//   - one track per worker thread (ph:"X" complete events + ph:"i" instants
//     recorded on whichever thread did the work), and
//   - one async track per job (ph:"b"/"e"/"n" nestable events, cat "job",
//     id = the job id), covering submit -> finalize with nested queue /
//     compile / cache_wait / slice / deliver phases.
//
// Record-path contract (mirrors metrics.hpp): every site is gated on
// telemetry::trace_enabled() (one relaxed load), event names are static
// strings (no allocation or formatting on the hot path), and recording
// takes only the calling thread's own buffer mutex — a leaf lock, safe
// under any of the repo's other locks (util/mutex.hpp item 5).  When a ring
// fills the newest events are dropped and counted, never blocking.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace hts::telemetry {

struct TraceEvent {
  enum class Phase : std::uint8_t {
    kComplete,      // ph:"X"  duration on the recording thread's track
    kInstant,       // ph:"i"  thread-scoped point event
    kAsyncBegin,    // ph:"b"  nestable async begin   (cat+id keyed)
    kAsyncEnd,      // ph:"e"  nestable async end
    kAsyncInstant,  // ph:"n"  nestable async instant
  };
  const char* name = "";  // static string; never freed
  const char* cat = "";   // static string; async events key on (cat, id)
  Phase phase = Phase::kComplete;
  std::uint64_t ts_ns = 0;   // util::monotonic_ns at the event
  std::uint64_t dur_ns = 0;  // kComplete only
  std::uint64_t id = 0;      // async track id (job id)
  std::uint32_t tid = 0;     // recording thread's stable trace tid
};

class TraceSink {
 public:
  /// The process-wide sink.  Leaks on purpose (see Registry::global()).
  static TraceSink& global();

  // Record paths: callers gate on telemetry::trace_enabled() first.
  void complete(const char* name, const char* cat, std::uint64_t begin_ns,
                std::uint64_t end_ns);
  void instant(const char* name, const char* cat);
  void async_begin(const char* name, const char* cat, std::uint64_t id,
                   std::uint64_t ts_ns);
  void async_end(const char* name, const char* cat, std::uint64_t id,
                 std::uint64_t ts_ns);
  void async_instant(const char* name, const char* cat, std::uint64_t id,
                     std::uint64_t ts_ns);

  /// Names the calling thread's track in the exported trace (ph:"M"
  /// thread_name metadata), e.g. "worker-3".
  void set_thread_name(const std::string& name);

  /// Merged snapshot of all threads' events, sorted by timestamp; for
  /// C++-side assertions (nesting, monotonicity) without JSON parsing.
  [[nodiscard]] std::vector<TraceEvent> snapshot_events() const;

  /// Chrome trace-event JSON ({"traceEvents":[...], "otherData":{...}}).
  [[nodiscard]] std::string render_chrome_json() const;
  /// Renders to a file; returns false on I/O failure.
  bool write_chrome_json(const std::string& path) const;

  /// Events dropped because a per-thread ring filled (0 in healthy runs;
  /// exported in otherData so tooling can distrust truncated traces).
  [[nodiscard]] std::uint64_t dropped() const;

  /// Drops all recorded events and thread names; rings and tids survive so
  /// cached thread-local buffers stay valid (tests isolate scenarios).
  void clear();

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

 private:
  TraceSink() = default;

  /// Per-thread ring.  The owning thread appends under `mutex`; drains
  /// take the sink mutex_ then one buffer mutex at a time.
  struct ThreadBuffer {
    explicit ThreadBuffer(std::uint32_t tid_in, std::size_t capacity_in)
        : tid(tid_in), capacity(capacity_in) {
      events.reserve(capacity);
    }
    const std::uint32_t tid;
    const std::size_t capacity;
    mutable util::Mutex mutex;
    std::vector<TraceEvent> events HTS_GUARDED_BY(mutex);
    std::string thread_name HTS_GUARDED_BY(mutex);
    std::uint64_t dropped HTS_GUARDED_BY(mutex) = 0;
  };

  ThreadBuffer& local_buffer();
  void record(const TraceEvent& event);

  mutable util::Mutex mutex_;
  // shared_ptr so events survive thread exit until the next clear().
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_ HTS_GUARDED_BY(mutex_);
  std::uint32_t next_tid_ HTS_GUARDED_BY(mutex_) = 1;
};

}  // namespace hts::telemetry
