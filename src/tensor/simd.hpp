#pragma once

// Fixed-width (8-lane) float SIMD primitives for the tape-engine kernels.
//
// Two implementations behind one interface, selected at compile time:
//   - GCC/Clang: the portable vector extension (`vector_size(32)`), which
//     lowers to AVX/AVX2 on x86-64 and to NEON pairs on AArch64 without any
//     target-specific intrinsics.
//   - Other compilers: a plain 8-lane struct whose operators are scalar
//     loops; -O2 auto-vectorizes them where the hardware allows.
// Loads and stores go through memcpy so tile pointers only need float
// alignment (tiles are 64-float rows carved out of a std::vector).
//
// The same two-backend split provides `u64x4`, four 64-bit lanes of bitwise
// logic for the word-parallel circuit evaluator (circuit/eval_plan.hpp):
// one vector op evaluates a gate for 4 x 64 = 256 batch rows.  Bitwise ops
// are exact, so backend choice can never change results.
//
// Besides the arithmetic lanes this header provides `fast_sigmoid`, a
// branch-free polynomial sigmoid used by the engine's embed kernel when
// Engine::Config::fast_sigmoid is set.  Accuracy contract (asserted by
// tests/simd_test.cpp over dense sweeps):
//   - absolute error <= 2^-22 (~2.4e-7) for all finite x (measured max
//     1.2e-7), and
//   - <= 48 ULP of the exact float sigmoid for x in [-16, 16] (measured 16).
// The relative error collapses for x < -87 (the true sigmoid underflows to
// subnormals and 0, the approximation saturates at 2^-126 via the exponent
// clamp), which is harmless here: activations feed an L2 loss read to ~1e-5
// and hardening thresholds V, not sigmoid(V).  The exact `std::exp` embed
// path stays available for A/B parity runs.

#include <cstdint>
#include <cstring>

namespace hts::tensor::simd {

inline constexpr std::size_t kWidth = 8;

#if defined(__GNUC__) || defined(__clang__)
#define HTS_SIMD_VECTOR_EXT 1

typedef float f32x8 __attribute__((vector_size(32)));
typedef std::int32_t i32x8 __attribute__((vector_size(32)));

inline f32x8 broadcast(float x) { return f32x8{x, x, x, x, x, x, x, x}; }

inline f32x8 load(const float* p) {
  f32x8 v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline void store(float* p, f32x8 v) { std::memcpy(p, &v, sizeof(v)); }

inline f32x8 select(i32x8 mask, f32x8 a, f32x8 b) {
  i32x8 ai;
  i32x8 bi;
  std::memcpy(&ai, &a, sizeof(ai));
  std::memcpy(&bi, &b, sizeof(bi));
  const i32x8 ri = (ai & mask) | (bi & ~mask);
  f32x8 r;
  std::memcpy(&r, &ri, sizeof(r));
  return r;
}

inline f32x8 min(f32x8 a, f32x8 b) { return select(a < b, a, b); }
inline f32x8 max(f32x8 a, f32x8 b) { return select(a > b, a, b); }

inline i32x8 to_int(f32x8 v) { return __builtin_convertvector(v, i32x8); }

inline f32x8 bitcast_f32(i32x8 v) {
  f32x8 r;
  std::memcpy(&r, &v, sizeof(r));
  return r;
}

/// Bit i of the result is set when lane i is strictly positive — the same
/// per-row predicate harden() applies (NaN and ±0 yield 0).  The vector
/// compare produces all-ones/all-zero lanes; the pack loop is branch-free
/// and unrolls to shift-or chains (movmskps-style on x86).
inline std::uint32_t movemask_gt_zero(f32x8 v) {
  const i32x8 m = v > broadcast(0.0f);
  std::uint32_t bits = 0;
  for (std::size_t i = 0; i < kWidth; ++i) {
    bits |= (static_cast<std::uint32_t>(m[i]) & 1u) << i;
  }
  return bits;
}

// --- 64-bit word lanes (bit-parallel circuit evaluation) --------------------

inline constexpr std::size_t kWordLanes = 4;

typedef std::uint64_t u64x4 __attribute__((vector_size(32)));

inline u64x4 broadcast_u64(std::uint64_t x) { return u64x4{x, x, x, x}; }

inline u64x4 load_u64(const std::uint64_t* p) {
  u64x4 v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline void store_u64(std::uint64_t* p, u64x4 v) { std::memcpy(p, &v, sizeof(v)); }

#else  // portable fallback: an 8-lane struct with loop operators

struct f32x8 {
  float lane[kWidth];
};
struct i32x8 {
  std::int32_t lane[kWidth];
};

inline f32x8 broadcast(float x) {
  f32x8 v;
  for (std::size_t i = 0; i < kWidth; ++i) v.lane[i] = x;
  return v;
}

inline f32x8 load(const float* p) {
  f32x8 v;
  std::memcpy(v.lane, p, sizeof(v.lane));
  return v;
}

inline void store(float* p, f32x8 v) { std::memcpy(p, v.lane, sizeof(v.lane)); }

inline f32x8 operator+(f32x8 a, f32x8 b) {
  f32x8 r;
  for (std::size_t i = 0; i < kWidth; ++i) r.lane[i] = a.lane[i] + b.lane[i];
  return r;
}
inline f32x8 operator-(f32x8 a, f32x8 b) {
  f32x8 r;
  for (std::size_t i = 0; i < kWidth; ++i) r.lane[i] = a.lane[i] - b.lane[i];
  return r;
}
inline f32x8 operator*(f32x8 a, f32x8 b) {
  f32x8 r;
  for (std::size_t i = 0; i < kWidth; ++i) r.lane[i] = a.lane[i] * b.lane[i];
  return r;
}
inline f32x8 operator/(f32x8 a, f32x8 b) {
  f32x8 r;
  for (std::size_t i = 0; i < kWidth; ++i) r.lane[i] = a.lane[i] / b.lane[i];
  return r;
}
inline f32x8 operator-(f32x8 a) {
  f32x8 r;
  for (std::size_t i = 0; i < kWidth; ++i) r.lane[i] = -a.lane[i];
  return r;
}
inline f32x8& operator+=(f32x8& a, f32x8 b) { return a = a + b; }
inline f32x8& operator-=(f32x8& a, f32x8 b) { return a = a - b; }

inline f32x8 min(f32x8 a, f32x8 b) {
  f32x8 r;
  for (std::size_t i = 0; i < kWidth; ++i) {
    r.lane[i] = a.lane[i] < b.lane[i] ? a.lane[i] : b.lane[i];
  }
  return r;
}
inline f32x8 max(f32x8 a, f32x8 b) {
  f32x8 r;
  for (std::size_t i = 0; i < kWidth; ++i) {
    r.lane[i] = a.lane[i] > b.lane[i] ? a.lane[i] : b.lane[i];
  }
  return r;
}

inline i32x8 to_int(f32x8 v) {
  i32x8 r;
  for (std::size_t i = 0; i < kWidth; ++i) {
    r.lane[i] = static_cast<std::int32_t>(v.lane[i]);
  }
  return r;
}

inline i32x8 operator+(i32x8 a, std::int32_t b) {
  i32x8 r;
  for (std::size_t i = 0; i < kWidth; ++i) r.lane[i] = a.lane[i] + b;
  return r;
}
inline i32x8 operator<<(i32x8 a, int b) {
  i32x8 r;
  for (std::size_t i = 0; i < kWidth; ++i) r.lane[i] = a.lane[i] << b;
  return r;
}

inline f32x8 bitcast_f32(i32x8 v) {
  f32x8 r;
  std::memcpy(r.lane, v.lane, sizeof(r.lane));
  return r;
}

/// See the vector-extension overload: bit i set iff lane i > 0.
inline std::uint32_t movemask_gt_zero(f32x8 v) {
  std::uint32_t bits = 0;
  for (std::size_t i = 0; i < kWidth; ++i) {
    bits |= static_cast<std::uint32_t>(v.lane[i] > 0.0f) << i;
  }
  return bits;
}

// --- 64-bit word lanes (bit-parallel circuit evaluation) --------------------

inline constexpr std::size_t kWordLanes = 4;

struct u64x4 {
  std::uint64_t lane[kWordLanes];
};

inline u64x4 broadcast_u64(std::uint64_t x) {
  u64x4 v;
  for (std::size_t i = 0; i < kWordLanes; ++i) v.lane[i] = x;
  return v;
}

inline u64x4 load_u64(const std::uint64_t* p) {
  u64x4 v;
  std::memcpy(v.lane, p, sizeof(v.lane));
  return v;
}

inline void store_u64(std::uint64_t* p, u64x4 v) {
  std::memcpy(p, v.lane, sizeof(v.lane));
}

inline u64x4 operator&(u64x4 a, u64x4 b) {
  u64x4 r;
  for (std::size_t i = 0; i < kWordLanes; ++i) r.lane[i] = a.lane[i] & b.lane[i];
  return r;
}
inline u64x4 operator|(u64x4 a, u64x4 b) {
  u64x4 r;
  for (std::size_t i = 0; i < kWordLanes; ++i) r.lane[i] = a.lane[i] | b.lane[i];
  return r;
}
inline u64x4 operator^(u64x4 a, u64x4 b) {
  u64x4 r;
  for (std::size_t i = 0; i < kWordLanes; ++i) r.lane[i] = a.lane[i] ^ b.lane[i];
  return r;
}
inline u64x4 operator~(u64x4 a) {
  u64x4 r;
  for (std::size_t i = 0; i < kWordLanes; ++i) r.lane[i] = ~a.lane[i];
  return r;
}

#endif  // HTS_SIMD_VECTOR_EXT

/// 2^x for x clamped to [-126, 126].  Round-to-nearest integer split via the
/// 1.5*2^23 magic-number trick (valid because |x| < 2^22 post-clamp), a
/// degree-6 Taylor polynomial of 2^f on f in [-0.5, 0.5] (remainder
/// ~1.2e-7 relative), and exponent reassembly through the IEEE-754 bit
/// layout.  Entirely branch-free, so it vectorizes as a straight-line body.
inline f32x8 fast_exp2(f32x8 x) {
  x = min(max(x, broadcast(-126.0f)), broadcast(126.0f));
  const f32x8 magic = broadcast(12582912.0f);  // 1.5 * 2^23
  const f32x8 k = (x + magic) - magic;         // nearest integer
  const f32x8 f = x - k;                       // fractional part in [-0.5, 0.5]
  // Taylor coefficients of 2^f = exp(f ln 2): (ln 2)^n / n!.
  f32x8 p = broadcast(1.5403530e-4f);
  p = p * f + broadcast(1.3333558e-3f);
  p = p * f + broadcast(9.6181291e-3f);
  p = p * f + broadcast(5.5504109e-2f);
  p = p * f + broadcast(2.4022651e-1f);
  p = p * f + broadcast(6.9314718e-1f);
  p = p * f + broadcast(1.0f);
  const f32x8 scale = bitcast_f32((to_int(k) + 127) << 23);
  return p * scale;
}

/// sigmoid(x) = 1 / (1 + 2^(-x * log2 e)); see the accuracy contract above.
inline f32x8 fast_sigmoid(f32x8 x) {
  const f32x8 log2e = broadcast(1.4426950408889634f);
  const f32x8 e = fast_exp2(-(x * log2e));
  return broadcast(1.0f) / (broadcast(1.0f) + e);
}

}  // namespace hts::tensor::simd
