#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>

namespace hts::tensor {

namespace {

// Thread-safety audit: tensor state shared across threads is exactly these
// two accounting atomics (relaxed — the peak is advisory, see the CAS loop
// in record_alloc); kernel dispatch borrows util::ThreadPool, whose lock
// discipline is capability-annotated in util/thread_pool.hpp.  Tensor
// buffers themselves are single-owner and partitioned across workers by
// parallel_for, so they carry no locks.
std::atomic<std::int64_t> g_live_bytes{0};
std::atomic<std::int64_t> g_peak_bytes{0};

}  // namespace

const char* policy_name(Policy policy) {
  switch (policy) {
    case Policy::kSerial:
      return "serial";
    case Policy::kDataParallel:
      return "tile-parallel";
    case Policy::kLevelParallel:
      return "level-parallel";
  }
  return "unknown";
}

void parallel_for(Policy policy, std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (policy == Policy::kSerial) {
    fn(0, n);
    return;
  }
  util::ThreadPool::global().parallel_for(n, fn);
}

std::int64_t live_bytes() { return g_live_bytes.load(std::memory_order_relaxed); }

std::int64_t peak_bytes() { return g_peak_bytes.load(std::memory_order_relaxed); }

void reset_peak_bytes() {
  g_peak_bytes.store(g_live_bytes.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
}

namespace detail {

void record_alloc(std::int64_t bytes) {
  const std::int64_t live =
      g_live_bytes.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  std::int64_t peak = g_peak_bytes.load(std::memory_order_relaxed);
  while (live > peak &&
         !g_peak_bytes.compare_exchange_weak(peak, live, std::memory_order_relaxed)) {
  }
}

void record_free(std::int64_t bytes) {
  g_live_bytes.fetch_sub(bytes, std::memory_order_relaxed);
}

}  // namespace detail

void sigmoid(Policy policy, const float* in, float* out, std::size_t n) {
  parallel_for(policy, n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      out[i] = 1.0f / (1.0f + std::exp(-in[i]));
    }
  });
}

void sigmoid_backward(Policy policy, const float* grad, const float* p, float* out,
                      std::size_t n) {
  parallel_for(policy, n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      out[i] = grad[i] * p[i] * (1.0f - p[i]);
    }
  });
}

void sgd_step(Policy policy, float* v, const float* g, float lr, std::size_t n) {
  parallel_for(policy, n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) v[i] -= lr * g[i];
  });
}

}  // namespace hts::tensor
