#pragma once

// Batched float storage and data-parallel execution policies.
//
// This module stands in for the paper's PyTorch/V100 substrate.  Kernels are
// written once and dispatched either serially (models the CPU run of the
// Fig. 4 ablation) or across a thread pool (models the GPU's batch-parallel
// execution).  Allocation is tracked byte-accurately so the Fig. 3 (right)
// memory-vs-batch-size curve can be measured without nvidia-smi.

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <vector>

#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace hts::tensor {

/// Execution policy for batched kernels.
enum class Policy : std::uint8_t {
  kSerial,        // single thread ("CPU")
  kDataParallel,  // thread-pool over batch rows ("GPU simulator")
  /// Thread-pool over the levelized execution plan: the prob engine splits
  /// each tape level's independent ops into (tile x op-range) work items, so
  /// parallelism scales with level width *within* a 64-row tile, not only
  /// with batch/64 tiles.  Elementwise kernels treat it like kDataParallel.
  kLevelParallel,
};

/// Short stable name for bench tables and JSON records.
[[nodiscard]] const char* policy_name(Policy policy);

/// Dispatches fn(begin, end) over [0, n) according to the policy
/// (kLevelParallel dispatches like kDataParallel: level structure only
/// matters to the prob engine's tape sweeps).
void parallel_for(Policy policy, std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& fn);

// --- allocation accounting --------------------------------------------------

/// Live bytes currently held by Buffer instances.
[[nodiscard]] std::int64_t live_bytes();
/// High-water mark since the last reset_peak_bytes().
[[nodiscard]] std::int64_t peak_bytes();
void reset_peak_bytes();

namespace detail {
void record_alloc(std::int64_t bytes);
void record_free(std::int64_t bytes);
}  // namespace detail

/// A tracked, contiguous float buffer.  Deliberately minimal: the prob
/// engine addresses it as a slot-major matrix (slot*batch + row) so the
/// inner loops stream contiguous memory per operation.
class Buffer {
 public:
  Buffer() = default;
  explicit Buffer(std::size_t n, float fill = 0.0f) { resize(n, fill); }

  Buffer(const Buffer& other) : data_(other.data_) {
    detail::record_alloc(static_cast<std::int64_t>(data_.capacity() * sizeof(float)));
  }
  Buffer& operator=(const Buffer& other) {
    if (this != &other) {
      detail::record_free(static_cast<std::int64_t>(data_.capacity() * sizeof(float)));
      data_ = other.data_;
      detail::record_alloc(static_cast<std::int64_t>(data_.capacity() * sizeof(float)));
    }
    return *this;
  }
  Buffer(Buffer&& other) noexcept = default;
  Buffer& operator=(Buffer&& other) noexcept = default;

  ~Buffer() {
    detail::record_free(static_cast<std::int64_t>(data_.capacity() * sizeof(float)));
  }

  void resize(std::size_t n, float fill = 0.0f) {
    detail::record_free(static_cast<std::int64_t>(data_.capacity() * sizeof(float)));
    data_.assign(n, fill);
    data_.shrink_to_fit();
    detail::record_alloc(static_cast<std::int64_t>(data_.capacity() * sizeof(float)));
  }

  void fill(float value) { std::fill(data_.begin(), data_.end(), value); }

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] float* data() { return data_.data(); }
  [[nodiscard]] const float* data() const { return data_.data(); }
  [[nodiscard]] float& operator[](std::size_t i) { return data_[i]; }
  [[nodiscard]] float operator[](std::size_t i) const { return data_[i]; }

 private:
  std::vector<float> data_;
};

// --- elementwise kernels ------------------------------------------------------

/// out[i] = 1 / (1 + exp(-in[i])) over [0, n).
void sigmoid(Policy policy, const float* in, float* out, std::size_t n);

/// Gradient chain through the sigmoid: out[i] = grad[i] * p[i] * (1 - p[i]),
/// where p is the already-computed sigmoid output.
void sigmoid_backward(Policy policy, const float* grad, const float* p, float* out,
                      std::size_t n);

/// v[i] -= lr * g[i] (plain gradient-descent step, the paper's optimizer).
void sgd_step(Policy policy, float* v, const float* g, float lr, std::size_t n);

}  // namespace hts::tensor
