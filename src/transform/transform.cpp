#include "transform/transform.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "bdd/bdd.hpp"
#include "circuit/expr_import.hpp"
#include "expr/expr.hpp"
#include "util/timer.hpp"

namespace hts::transform {

namespace {

using cnf::Clause;
using cnf::Lit;
using cnf::Var;
using expr::ExprId;

/// One recovered definition, in discovery order.
struct Definition {
  enum class Kind : std::uint8_t {
    kGate,        // var := expression (intermediate variable)
    kConstant,    // var pinned to target (primary output)
    kAuxOutput,   // auxiliary output := expression, constrained to 1
  };
  Kind kind;
  Var var = cnf::kInvalidVar;  // unused for kAuxOutput
  ExprId expression = expr::kNoExpr;
  bool target = true;  // for kConstant
};

class Extractor {
 public:
  Extractor(const cnf::Formula& formula, const Config& config)
      : formula_(formula), config_(config), roles_(formula.n_vars(), VarRole::kUnseen) {}

  Result run() {
    util::Timer timer;
    const auto& clauses = formula_.clauses();
    for (std::size_t i = 0; i < clauses.size(); ++i) {
      block_.push_back(i);
      for (const Lit lit : clauses[i]) block_vars_.insert(lit.var());
      try_extract();
      const bool last = (i + 1 == clauses.size());
      if (!block_.empty() &&
          (last || !shares_variable(clauses[i + 1]) ||
           block_.size() >= config_.max_block_clauses)) {
        flush_block();
      }
    }
    Result result = build_circuit();
    result.stats.transform_ms = timer.milliseconds();
    result.stats.n_gate_definitions = n_gate_definitions_;
    result.stats.n_const_promotions = n_const_promotions_;
    result.stats.n_flushed_blocks = n_flushed_blocks_;
    result.stats.cnf_ops = formula_.op_count_2input(config_.count_nots);
    result.stats.circuit_ops = result.circuit.op_count_2input(config_.count_nots);
    result.stats.n_primary_inputs = result.circuit.n_inputs();
    result.stats.n_primary_outputs = result.circuit.outputs().size();
    result.proven_unsat = proven_unsat_;
    return result;
  }

 private:
  // --- candidate search ----------------------------------------------------

  /// True iff clause shares a variable with the pending block.
  [[nodiscard]] bool shares_variable(const Clause& clause) const {
    for (const Lit lit : clause) {
      if (block_vars_.contains(lit.var())) return true;
    }
    return false;
  }

  void clear_block() {
    block_.clear();
    block_vars_.clear();
  }

  /// Variables of the block in order of first appearance.
  [[nodiscard]] std::vector<Var> block_variables() const {
    std::vector<Var> vars;
    std::unordered_set<Var> seen;
    for (const std::size_t ci : block_) {
      for (const Lit lit : formula_.clause(ci)) {
        if (seen.insert(lit.var()).second) vars.push_back(lit.var());
      }
    }
    return vars;
  }

  /// FindBooleanExpression(v, SC): conjunction over block clauses containing
  /// `probe` (v or ~v per `negated_form`) of the OR of the remaining
  /// literals.  Returns kNoExpr if some clause lacks v entirely (the block
  /// cannot define v).
  [[nodiscard]] ExprId derive(Var v, bool negated_form) {
    std::vector<ExprId> conjuncts;
    for (const std::size_t ci : block_) {
      const Clause& clause = formula_.clause(ci);
      bool mentions = false;
      bool matches_probe = false;
      std::vector<ExprId> disjuncts;
      for (const Lit lit : clause) {
        if (lit.var() == v) {
          mentions = true;
          if (lit.negated() == negated_form) matches_probe = true;
          continue;
        }
        const ExprId leaf = exprs_.var(lit.var());
        disjuncts.push_back(lit.negated() ? exprs_.mk_not(leaf) : leaf);
      }
      if (!mentions) return expr::kNoExpr;
      if (!matches_probe) continue;  // clause satisfied when v has probe value
      conjuncts.push_back(exprs_.mk_or(std::move(disjuncts)));
    }
    return exprs_.mk_and(std::move(conjuncts));
  }

  void try_extract() {
    for (const Var v : block_variables()) {
      const VarRole role = roles_[v];
      if (role == VarRole::kPrimaryInput || role == VarRole::kPrimaryOutput) {
        continue;
      }
      const ExprId f = derive(v, /*negated_form=*/true);
      if (f == expr::kNoExpr) continue;
      const ExprId g = derive(v, /*negated_form=*/false);
      HTS_DCHECK(g != expr::kNoExpr);
      bool complement = false;
      try {
        complement = exprs_.complementary(f, g);
      } catch (const bdd::CapacityError&) {
        complement = false;  // too large to decide: treat as not-a-definition
      }
      if (!complement) continue;

      const ExprId simplified = exprs_.simplify(f, config_.simplify_max_vars);
      if (exprs_.is_const(simplified)) {
        // Constant constraint: v is a primary output pinned to f's value.
        definitions_.push_back(Definition{Definition::Kind::kConstant, v,
                                          simplified,
                                          simplified == exprs_.const1()});
        roles_[v] = VarRole::kPrimaryOutput;
        ++n_const_promotions_;
      } else {
        if (role == VarRole::kIntermediate) {
          // Re-definition of an already-driven variable is not allowed by
          // the acyclicity rule; leave the block to the flush path.
          continue;
        }
        definitions_.push_back(
            Definition{Definition::Kind::kGate, v, simplified, true});
        roles_[v] = VarRole::kIntermediate;
        for (const std::uint32_t w : exprs_.support(simplified)) {
          if (roles_[w] == VarRole::kUnseen) roles_[w] = VarRole::kPrimaryInput;
        }
        ++n_gate_definitions_;
      }
      clear_block();
      return;
    }
  }

  // --- under-specified blocks ----------------------------------------------

  void flush_block() {
    std::vector<ExprId> conjuncts;
    conjuncts.reserve(block_.size());
    for (const std::size_t ci : block_) {
      std::vector<ExprId> disjuncts;
      for (const Lit lit : formula_.clause(ci)) {
        const ExprId leaf = exprs_.var(lit.var());
        disjuncts.push_back(lit.negated() ? exprs_.mk_not(leaf) : leaf);
      }
      conjuncts.push_back(exprs_.mk_or(std::move(disjuncts)));
    }
    ExprId conj = exprs_.mk_and(std::move(conjuncts));
    conj = exprs_.simplify(conj, config_.simplify_max_vars);
    clear_block();
    ++n_flushed_blocks_;

    if (conj == exprs_.const1()) return;  // tautological block
    if (conj == exprs_.const0()) {
      proven_unsat_ = true;
      return;
    }
    for (const std::uint32_t w : exprs_.support(conj)) {
      if (roles_[w] == VarRole::kUnseen) roles_[w] = VarRole::kPrimaryInput;
    }
    definitions_.push_back(
        Definition{Definition::Kind::kAuxOutput, cnf::kInvalidVar, conj, true});
  }

  // --- circuit construction -------------------------------------------------

  Result build_circuit() {
    Result result;
    result.roles = roles_;
    result.var_signal.assign(formula_.n_vars(), circuit::kNoSignal);

    std::unordered_map<std::uint32_t, circuit::SignalId> var_to_signal;
    std::unordered_map<ExprId, circuit::SignalId> memo;

    auto input_signal_of = [&](Var v) {
      circuit::SignalId& slot = result.var_signal[v];
      if (slot == circuit::kNoSignal) {
        slot = result.circuit.add_input("x" + std::to_string(v + 1));
        result.input_vars.push_back(v);
        var_to_signal[v] = slot;
      }
      return slot;
    };
    auto bind_name = [&](circuit::SignalId signal, const std::string& name) {
      // Collapsed definitions (e.g. buffer chains) may alias one signal to
      // several variables; keep all names, like the paper's Fig. 1(b) nodes
      // labeled "x2, x3, x4".
      const std::string& existing = result.circuit.name(signal);
      result.circuit.set_name(signal,
                              existing.empty() ? name : existing + "," + name);
    };

    // Inputs must exist before the expressions that read them; walk the
    // definitions in discovery order, create input signals for every
    // still-unbound support variable, then lower the expression.
    std::size_t aux_counter = 0;
    for (const Definition& def : definitions_) {
      for (const std::uint32_t w : exprs_.support(def.expression)) {
        if (result.var_signal[w] == circuit::kNoSignal) input_signal_of(w);
      }
      switch (def.kind) {
        case Definition::Kind::kGate: {
          const circuit::SignalId signal = circuit::lower_expr(
              result.circuit, exprs_, def.expression, var_to_signal, memo);
          bind_name(signal, "x" + std::to_string(def.var + 1));
          result.var_signal[def.var] = signal;
          var_to_signal[def.var] = signal;
          break;
        }
        case Definition::Kind::kConstant:
          result.circuit.add_output(input_signal_of(def.var), def.target);
          break;
        case Definition::Kind::kAuxOutput: {
          const circuit::SignalId signal = circuit::lower_expr(
              result.circuit, exprs_, def.expression, var_to_signal, memo);
          bind_name(signal, "aux" + std::to_string(aux_counter++));
          result.circuit.add_output(signal, true);
          break;
        }
      }
    }

    // Any variable never mentioned by a definition is free: give it an input
    // signal so assignments project 1:1.
    for (Var v = 0; v < formula_.n_vars(); ++v) {
      if (result.var_signal[v] == circuit::kNoSignal) {
        input_signal_of(v);
        if (result.roles[v] == VarRole::kUnseen) {
          result.roles[v] = VarRole::kPrimaryInput;
        }
      }
    }
    return result;
  }

  const cnf::Formula& formula_;
  Config config_;
  expr::Manager exprs_;
  std::vector<VarRole> roles_;
  std::vector<std::size_t> block_;  // pending clause indices (SC)
  std::unordered_set<Var> block_vars_;
  std::vector<Definition> definitions_;
  std::size_t n_gate_definitions_ = 0;
  std::size_t n_const_promotions_ = 0;
  std::size_t n_flushed_blocks_ = 0;
  bool proven_unsat_ = false;
};

}  // namespace

cnf::Assignment Result::project(const std::vector<std::uint8_t>& signal_values) const {
  cnf::Assignment assignment(var_signal.size(), 0);
  for (Var v = 0; v < var_signal.size(); ++v) {
    HTS_DCHECK(var_signal[v] != circuit::kNoSignal);
    assignment[v] = signal_values[var_signal[v]];
  }
  return assignment;
}

Result transform_cnf(const cnf::Formula& formula, const Config& config) {
  Extractor extractor(formula, config);
  return extractor.run();
}

}  // namespace hts::transform
