#pragma once

// Algorithm 1 from the paper: transforms a CNF into an equisatisfiable
// multi-level, multi-output Boolean function (a circuit::Circuit).
//
// Sketch: clauses are buffered into a sub-clause block SC.  After each
// append, every variable v of SC that is not yet classified is tried as the
// block's output: f is the conjunction over clauses containing ~v of the OR
// of their remaining literals (the function forced on v when v=1), g the
// same over clauses containing v.  When every clause of SC mentions v and
// f == ~g exactly, the block's conjunction is precisely the Tseitin
// definition v <-> f, so v becomes an intermediate variable defined by
// simplify(f); a constant f instead promotes v to a primary output
// constrained to that constant.  Blocks that never resolve (under-specified
// constraints, e.g. a bare (x1 | x2) with the output variable eliminated)
// are flushed: the block's conjunction becomes an auxiliary output gate
// constrained to 1.  Every clause is consumed by exactly one of these three
// exact rules, which is what makes the result equisatisfiable and lets
// solutions map 1:1 back onto original variables.
//
// The resulting circuit has "constrained paths" (cones of the constrained
// outputs, which gradient descent must solve) and "unconstrained paths"
// (everything else; any random input works) — see Fig. 1 of the paper.

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "cnf/formula.hpp"

namespace hts::transform {

enum class VarRole : std::uint8_t {
  kUnseen = 0,
  kPrimaryInput,
  kIntermediate,
  kPrimaryOutput,
};

struct Config {
  /// Pending-block cap: blocks larger than this flush as an auxiliary
  /// constraint (keeps worst-case cost linear; Tseitin signatures are tiny).
  std::size_t max_block_clauses = 64;
  /// Quine-McCluskey resynthesis bound (larger supports keep factored form).
  std::uint32_t simplify_max_vars = 10;
  /// Count inverters as ops in the reduction statistics (the probabilistic
  /// model executes NOT as 1-x, so the paper's op counts include them).
  bool count_nots = true;
};

struct Stats {
  double transform_ms = 0.0;
  std::size_t n_gate_definitions = 0;   // recovered v <-> f definitions
  std::size_t n_const_promotions = 0;   // variables pinned to constants
  std::size_t n_flushed_blocks = 0;     // under-specified blocks
  std::size_t n_primary_inputs = 0;     // circuit inputs after extraction
  std::size_t n_primary_outputs = 0;    // constrained outputs
  std::uint64_t cnf_ops = 0;            // flat-CNF 2-input-equivalent ops
  std::uint64_t circuit_ops = 0;        // extracted-circuit ops
  /// The paper's Fig. 4 (middle) metric: cnf_ops / circuit_ops.
  [[nodiscard]] double ops_reduction() const {
    return circuit_ops == 0 ? 0.0
                            : static_cast<double>(cnf_ops) /
                                  static_cast<double>(circuit_ops);
  }
};

struct Result {
  circuit::Circuit circuit;

  /// Original CNF variable -> circuit signal carrying its value.  Every
  /// original variable has a signal (free variables become inputs).
  std::vector<circuit::SignalId> var_signal;

  /// Role assigned to each original variable by Algorithm 1.
  std::vector<VarRole> roles;

  /// circuit.inputs()[i] corresponds to original variable input_vars[i];
  /// cnf::kInvalidVar for auxiliary inputs (there are none today, kept for
  /// forward compatibility).
  std::vector<cnf::Var> input_vars;

  /// True if a flushed block simplified to constant false (formula UNSAT).
  bool proven_unsat = false;

  Stats stats;

  /// Projects circuit signal values back to an assignment over the original
  /// CNF variables.
  [[nodiscard]] cnf::Assignment project(
      const std::vector<std::uint8_t>& signal_values) const;

  [[nodiscard]] std::size_t n_primary_inputs() const {
    return circuit.n_inputs();
  }
  [[nodiscard]] std::size_t n_primary_outputs() const {
    return circuit.outputs().size();
  }
};

/// Runs Algorithm 1 on the formula.
[[nodiscard]] Result transform_cnf(const cnf::Formula& formula,
                                   const Config& config = {});

}  // namespace hts::transform
