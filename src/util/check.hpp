#pragma once

// Lightweight invariant checking for the hts libraries.
//
// HTS_CHECK is active in all build types: it guards API contracts whose
// violation would otherwise corrupt downstream state (e.g. literal indices
// out of range).  HTS_DCHECK compiles away in NDEBUG builds and is used on
// hot paths (solver propagation, tensor kernels).

#include <cstdio>
#include <cstdlib>

namespace hts::util {

[[noreturn]] inline void check_failed(const char* cond, const char* file, int line,
                                      const char* msg) {
  std::fprintf(stderr, "HTS_CHECK failed: %s at %s:%d%s%s\n", cond, file, line,
               msg[0] != '\0' ? " — " : "", msg);
  std::abort();
}

}  // namespace hts::util

#define HTS_CHECK(cond)                                              \
  do {                                                               \
    if (!(cond)) ::hts::util::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (false)

#define HTS_CHECK_MSG(cond, msg)                                      \
  do {                                                                \
    if (!(cond)) ::hts::util::check_failed(#cond, __FILE__, __LINE__, msg); \
  } while (false)

#ifdef NDEBUG
#define HTS_DCHECK(cond) \
  do {                   \
  } while (false)
#else
#define HTS_DCHECK(cond) HTS_CHECK(cond)
#endif
