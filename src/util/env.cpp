#include "util/env.hpp"

#include <cstdlib>

namespace hts::util {

double env_double(const std::string& name, double fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || raw[0] == '\0') return fallback;
  char* end = nullptr;
  const double value = std::strtod(raw, &end);
  if (end == raw) return fallback;
  return value;
}

std::int64_t env_int(const std::string& name, std::int64_t fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || raw[0] == '\0') return fallback;
  char* end = nullptr;
  const long long value = std::strtoll(raw, &end, 10);
  if (end == raw) return fallback;
  return static_cast<std::int64_t>(value);
}

std::string env_string(const std::string& name, const std::string& fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || raw[0] == '\0') return fallback;
  return raw;
}

}  // namespace hts::util
