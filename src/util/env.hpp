#pragma once

// Environment-variable knobs for the bench harnesses (HTS_BENCH_BUDGET_MS,
// HTS_BENCH_SCALE, ...).  Centralized so every bench binary reads the same
// spelling and defaults.

#include <cstdint>
#include <string>

namespace hts::util {

/// Reads a double from the environment, falling back to fallback when unset
/// or unparsable.
[[nodiscard]] double env_double(const std::string& name, double fallback);

/// Reads an integer from the environment.
[[nodiscard]] std::int64_t env_int(const std::string& name, std::int64_t fallback);

/// Reads a string from the environment (fallback when unset or empty).
[[nodiscard]] std::string env_string(const std::string& name,
                                     const std::string& fallback);

}  // namespace hts::util
