#include "util/fault_injector.hpp"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "telemetry/metrics.hpp"
#include "util/env.hpp"

namespace hts::util {

namespace {

/// SplitMix64-style avalanche (same constants as the plan fingerprint): the
/// per-hit probability draw must decorrelate across (seed, site, index).
[[nodiscard]] std::uint64_t mix(std::uint64_t h, std::uint64_t value) {
  h += 0x9e3779b97f4a7c15ULL + value;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

[[nodiscard]] std::uint64_t hash_string(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) h = mix(h, static_cast<std::uint64_t>(c));
  return h;
}

[[noreturn]] void bad_spec(const std::string& fragment, const char* why) {
  throw std::invalid_argument("HTS_FAULT_SPEC: " + std::string(why) + " in \"" +
                              fragment + "\"");
}

[[nodiscard]] std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::size_t begin = 0;
  while (begin <= s.size()) {
    const std::size_t end = s.find(sep, begin);
    if (end == std::string::npos) {
      parts.push_back(s.substr(begin));
      break;
    }
    parts.push_back(s.substr(begin, end - begin));
    begin = end + 1;
  }
  return parts;
}

[[nodiscard]] std::uint64_t parse_u64(const std::string& s,
                                      const std::string& fragment) {
  if (s.empty()) bad_spec(fragment, "empty number");
  char* end = nullptr;
  const unsigned long long value = std::strtoull(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size()) bad_spec(fragment, "malformed number");
  return static_cast<std::uint64_t>(value);
}

[[nodiscard]] double parse_prob(const std::string& s,
                                const std::string& fragment) {
  if (s.empty()) bad_spec(fragment, "empty probability");
  char* end = nullptr;
  const double value = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size() || value < 0.0 || value > 1.0) {
    bad_spec(fragment, "probability must be in [0,1]");
  }
  return value;
}

}  // namespace

FaultInjector FaultInjector::from_spec(const std::string& spec) {
  FaultInjector injector;
  if (spec.empty() || spec == "none") return injector;

  std::vector<std::string> rules = split(spec, ';');
  std::size_t first = 0;
  if (!rules.empty() && rules[0].rfind("seed=", 0) == 0) {
    injector.seed_ = parse_u64(rules[0].substr(5), rules[0]);
    first = 1;
  }
  for (std::size_t r = first; r < rules.size(); ++r) {
    const std::string& text = rules[r];
    if (text.empty()) continue;
    const std::vector<std::string> fields = split(text, ':');
    if (fields.size() < 2) bad_spec(text, "rule needs <site>:<trigger>");
    const std::string& site = fields[0];
    if (site.empty()) bad_spec(text, "empty site name");
    if (injector.sites_.count(site) != 0) bad_spec(text, "duplicate site");

    Rule rule;
    const std::string& trigger = fields[1];
    if (trigger.rfind("every=", 0) == 0) {
      rule.trigger = Rule::Trigger::kEvery;
      rule.every = parse_u64(trigger.substr(6), text);
      if (rule.every == 0) bad_spec(text, "every=0");
    } else if (trigger.rfind("at=", 0) == 0) {
      rule.trigger = Rule::Trigger::kAt;
      for (const std::string& index : split(trigger.substr(3), ',')) {
        rule.at.push_back(parse_u64(index, text));
      }
      std::sort(rule.at.begin(), rule.at.end());
    } else if (trigger.rfind("prob=", 0) == 0) {
      rule.trigger = Rule::Trigger::kProb;
      rule.prob = parse_prob(trigger.substr(5), text);
    } else {
      bad_spec(text, "unknown trigger (want every=/at=/prob=)");
    }

    for (std::size_t f = 2; f < fields.size(); ++f) {
      const std::string& option = fields[f];
      if (option.rfind("kind=", 0) == 0) {
        const std::string kind = option.substr(5);
        if (kind == "fail") {
          rule.kind = Kind::kFail;
        } else if (kind == "bad_alloc") {
          rule.kind = Kind::kBadAlloc;
        } else if (kind == "transient") {
          rule.kind = Kind::kTransient;
        } else {
          bad_spec(text, "unknown kind (want fail/bad_alloc/transient)");
        }
      } else if (option.rfind("max=", 0) == 0) {
        if (rule.trigger == Rule::Trigger::kProb) {
          // The Mth probabilistic match depends on every earlier hit, not
          // just the current index — it would break per-hit determinism.
          bad_spec(text, "max= is only valid with every=/at=");
        }
        rule.max = parse_u64(option.substr(4), text);
      } else {
        bad_spec(text, "unknown option (want kind=/max=)");
      }
    }

    auto entry = std::make_unique<Site>();
    entry->rule = rule;
    injector.sites_.emplace(site, std::move(entry));
  }
  injector.armed_ = !injector.sites_.empty();
  return injector;
}

std::string FaultInjector::env_spec() {
  return env_string("HTS_FAULT_SPEC", "");
}

bool FaultInjector::matches(const Rule& rule, const std::string& site,
                            std::uint64_t index) const {
  switch (rule.trigger) {
    case Rule::Trigger::kEvery: {
      if ((index + 1) % rule.every != 0) return false;
      const std::uint64_t ordinal = (index + 1) / rule.every - 1;
      return rule.max == 0 || ordinal < rule.max;
    }
    case Rule::Trigger::kAt: {
      const auto it = std::lower_bound(rule.at.begin(), rule.at.end(), index);
      if (it == rule.at.end() || *it != index) return false;
      const auto ordinal =
          static_cast<std::uint64_t>(it - rule.at.begin());
      return rule.max == 0 || ordinal < rule.max;
    }
    case Rule::Trigger::kProb: {
      std::uint64_t h = mix(seed_, hash_string(site));
      h = mix(h, index);
      // Top 53 bits -> uniform double in [0, 1).
      const double draw =
          static_cast<double>(h >> 11) * 0x1.0p-53;
      return draw < rule.prob;
    }
  }
  return false;
}

void FaultInjector::fault_slow(const char* site) {
  const auto it = sites_.find(site);
  if (it == sites_.end()) return;
  Site& entry = *it->second;
  const std::uint64_t index =
      entry.hits.fetch_add(1, std::memory_order_relaxed);
  if (!matches(entry.rule, it->first, index)) return;
  entry.injected.fetch_add(1, std::memory_order_relaxed);
  if (telemetry::metrics_enabled()) {
    // Label values are the bounded set of configured seam names, so the
    // registry stays small; lookup is by-name (mutex-guarded) because this
    // path is about to throw anyway — it is never hot.
    telemetry::Registry::global()
        .counter("hts_fault_injections_total", {{"site", it->first}})
        .increment();
  }
  const std::string what = "injected fault at " + it->first + " (hit " +
                           std::to_string(index) + ")";
  switch (entry.rule.kind) {
    case Kind::kFail: throw FaultError(it->first, what);
    case Kind::kBadAlloc: throw std::bad_alloc();
    case Kind::kTransient: throw TransientFaultError(it->first, what);
  }
}

std::uint64_t FaultInjector::hits(const std::string& site) const {
  const auto it = sites_.find(site);
  return it == sites_.end()
             ? 0
             : it->second->hits.load(std::memory_order_relaxed);
}

std::uint64_t FaultInjector::injected(const std::string& site) const {
  const auto it = sites_.find(site);
  return it == sites_.end()
             ? 0
             : it->second->injected.load(std::memory_order_relaxed);
}

}  // namespace hts::util
