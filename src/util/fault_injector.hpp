#pragma once

// Deterministic fault injection for chaos testing the service layer.
//
// A FaultInjector is a set of per-site rules parsed from a spec string
// (conventionally the HTS_FAULT_SPEC environment variable).  Components
// place named seams on their failure-prone paths — `injector.maybe_fault
// ("compile")` — and the injector throws at exactly the hits the spec
// selects.  The decision for a given hit is a pure function of
// (spec seed, site name, hit index): two runs with the same spec inject at
// the same (site, index) pairs, so a chaos run that found a bug is exactly
// reproducible, and a test can assert which seams fired.  (Which *job* a
// given hit lands on still depends on scheduling — determinism is per
// seam-hit, not per victim.)
//
// Spec grammar (';'-separated rules, one rule per site):
//
//   spec    := "none" | [ "seed=" <u64> ";" ] rule { ";" rule }
//   rule    := <site> ":" trigger { ":" option }
//   trigger := "every=" <N>            every Nth hit (indices N-1, 2N-1, ...)
//            | "at=" <i> { "," <i> }   exactly these hit indices
//            | "prob=" <p>             each hit independently with
//                                      probability p, decided by
//                                      hash(seed, site, index)
//   option  := "kind=" ( "fail" | "bad_alloc" | "transient" )
//            | "max=" <M>              at most M injections (every/at only —
//                                      a prob rule's Mth match is not a pure
//                                      function of one hit index)
//
// Example:
//   HTS_FAULT_SPEC="seed=7;compile:at=0;engine_alloc:every=40:kind=bad_alloc"
//   (add e.g. "...;harvest:prob=0.02:kind=transient" for a probabilistic
//   transient at the harvest seam)
//
// Kinds: "fail" throws FaultError (a permanent error), "bad_alloc" throws
// std::bad_alloc (exercising the same catch path a real allocation failure
// takes), "transient" throws TransientFaultError (the service retries these
// with backoff).  An empty spec or "none" leaves the injector disarmed:
// maybe_fault is then a single well-predicted branch, which is all the hot
// path ever pays in production.
//
// Thread-safety: rules are immutable after parse; per-site hit counters are
// atomics, so seams may be evaluated from any number of threads.  Each
// injector owns its counters — two Servers with the same spec inject
// independently and identically.

#include <atomic>
#include <cstdint>
#include <memory>
#include <new>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

namespace hts::util {

/// Thrown by an armed injector at a matching hit.  Carries the seam name so
/// catch sites can attribute the failure without guessing.
class FaultError : public std::runtime_error {
 public:
  FaultError(std::string site, const std::string& what)
      : std::runtime_error(what), site_(std::move(site)) {}

  [[nodiscard]] const std::string& site() const { return site_; }

 private:
  std::string site_;
};

/// A fault the thrower expects to succeed on retry (the injected analogue
/// of momentary resource pressure); the service re-enqueues these with
/// bounded exponential backoff instead of failing the job.
class TransientFaultError : public FaultError {
 public:
  using FaultError::FaultError;
};

class FaultInjector {
 public:
  enum class Kind : std::uint8_t { kFail, kBadAlloc, kTransient };

  /// Disarmed: every maybe_fault is a no-op.
  FaultInjector() = default;

  FaultInjector(FaultInjector&&) = default;
  FaultInjector& operator=(FaultInjector&&) = default;

  /// Parses a spec (see grammar above).  Empty or "none" yields a disarmed
  /// injector; malformed specs throw std::invalid_argument with the
  /// offending fragment — a chaos run with a typo'd spec must fail loudly,
  /// not silently run fault-free.
  [[nodiscard]] static FaultInjector from_spec(const std::string& spec);

  /// The conventional environment spec (HTS_FAULT_SPEC; empty when unset).
  [[nodiscard]] static std::string env_spec();

  [[nodiscard]] bool armed() const { return armed_; }

  /// Evaluates `site`'s rule at the site's next hit index; throws the
  /// configured exception when the rule matches.  Sites without a rule (and
  /// disarmed injectors) never throw.
  void maybe_fault(const char* site) {
    if (!armed_) return;
    fault_slow(site);
  }

  /// Hits observed at `site` so far (0 for unknown sites).
  [[nodiscard]] std::uint64_t hits(const std::string& site) const;
  /// Faults injected at `site` so far.
  [[nodiscard]] std::uint64_t injected(const std::string& site) const;

 private:
  struct Rule {
    enum class Trigger : std::uint8_t { kEvery, kAt, kProb };
    Trigger trigger = Trigger::kEvery;
    std::uint64_t every = 0;
    std::vector<std::uint64_t> at;  // sorted
    double prob = 0.0;
    Kind kind = Kind::kFail;
    std::uint64_t max = 0;  // 0 = unlimited
  };
  struct Site {
    Rule rule;
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> injected{0};
  };

  void fault_slow(const char* site);
  [[nodiscard]] bool matches(const Rule& rule, const std::string& site,
                             std::uint64_t index) const;

  std::uint64_t seed_ = 0;
  bool armed_ = false;
  // unique_ptr keeps Site's atomics at a stable address and the map movable.
  std::unordered_map<std::string, std::unique_ptr<Site>> sites_;
};

}  // namespace hts::util
