#pragma once

// Capability-annotated wrappers over std::mutex / std::condition_variable /
// std::lock_guard, so Clang's -Wthread-safety analysis (see
// thread_annotations.hpp) can prove the repo's lock discipline on every
// build.  The std types carry no capability attributes, so code using them
// directly is invisible to the analysis; these wrappers are drop-in
// replacements with identical semantics and zero overhead.
//
// CondVar::wait takes the Mutex directly (not a unique_lock) and is
// annotated HTS_REQUIRES(mu): the caller must already hold mu, the wait
// releases and re-acquires it internally via the adopt/release dance, and
// the capability is held again on return — exactly the state the analysis
// assumes, so no HTS_NO_THREAD_SAFETY_ANALYSIS escape hatch is needed
// anywhere.  Predicate waits are written as explicit loops at the call
// sites (`while (!pred()) cv.wait(mu);`): a predicate lambda would be
// analyzed as a separate unannotated function and its guarded-field reads
// would (rightly) warn.
//
// Lock-ordering contract (checked by TSan at runtime and by review; the
// analysis cannot express cross-object order):
//
//   1. service::Server::mutex_  ->  detail::Job::mutex      (never reverse)
//   2. service::PlanCache: Entry::build_mutex -> PlanCache::mutex_ (stats
//      update after a compile); eviction holds only the cache mutex and
//      reads the entry's atomic `built` flag, so the reverse edge never
//      forms.
//   3. sampler::ShardedUniqueBank shard mutexes are leaves: at most one
//      shard is held at a time and nothing is acquired under it.
//   4. util::ThreadPool::mutex_ is a leaf: pool tasks run with no pool lock
//      held.
//   5. telemetry::Registry::mutex_ and telemetry::TraceSink's per-thread
//      buffer mutexes are leaves: record sites may fire while holding any
//      of the locks above (e.g. a trace event under Server::mutex_), and
//      nothing is ever acquired under them.  TraceSink's drain path takes
//      the sink registry mutex and then one buffer mutex at a time; record
//      paths take only the calling thread's own buffer mutex, so the two
//      never deadlock.

#include <condition_variable>
#include <chrono>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace hts::util {

class CondVar;

/// std::mutex with the `capability` attribute: fields annotated
/// HTS_GUARDED_BY(mu) can only be touched while mu is held.
class HTS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() HTS_ACQUIRE() { mu_.lock(); }
  void unlock() HTS_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() HTS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Scoped lock over Mutex (std::lock_guard analogue); the analysis tracks
/// the capability as held for the guard's lifetime.
class HTS_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mu) HTS_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~LockGuard() HTS_RELEASE() { mu_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to Mutex at each wait.  wait/wait_for_ms
/// release and re-acquire the caller's already-held capability, matching
/// the HTS_REQUIRES annotation on both ends of the call.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (or spuriously woken); mu is held on entry and
  /// on return.  Callers re-check their predicate in a loop.
  void wait(Mutex& mu) HTS_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller's capability still owns the mutex
  }

  /// Bounded wait; returns false on timeout.  mu is held on entry and on
  /// return either way.
  bool wait_for_ms(Mutex& mu, double timeout_ms) HTS_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status =
        cv_.wait_for(lock, std::chrono::duration<double, std::milli>(timeout_ms));
    lock.release();
    return status == std::cv_status::no_timeout;
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace hts::util
