#pragma once

// Shared levelization and opcode-run partitioning for compiled execution
// plans.
//
// Both compiled evaluators — the engine's float tape (prob::ExecPlan) and
// the harvest side's bitwise word plan (circuit::EvalPlan) — assign ASAP
// levels over their slot DAG, regroup ops by level (stable counting sort),
// and then dispatch kernels once per maximal same-opcode run.  The level
// and run boundary rules live here so the two plans can never diverge: an
// op's level is one past the highest operand level, and a run breaks where
// the opcode changes or a level begins (runs never cross levels; callers
// may still clamp a run to any sub-range).

#include <algorithm>
#include <cstdint>
#include <vector>

namespace hts::util {

/// Result of levelize_asap: level l spans plan positions
/// [level_begin[l], level_begin[l + 1]), and order[k] is the original op
/// index at plan position k (stable within a level).
struct LevelOrder {
  std::vector<std::uint32_t> level_begin;
  std::vector<std::uint32_t> order;

  [[nodiscard]] std::size_t n_levels() const {
    return level_begin.empty() ? 0 : level_begin.size() - 1;
  }
};

/// ASAP-levelizes a topologically ordered op list: `op_level(i, slot_level)`
/// returns op i's level from its operands' slot levels (max over operands;
/// undefined slots sit at level 0), `dst(i)` the slot it defines.
template <typename OpLevelFn, typename DstFn>
[[nodiscard]] LevelOrder levelize_asap(std::size_t n_ops, std::size_t n_slots,
                                       OpLevelFn&& op_level, DstFn&& dst) {
  LevelOrder out;
  std::vector<std::uint32_t> slot_level(n_slots, 0);
  std::vector<std::uint32_t> levels(n_ops, 0);
  std::uint32_t n_levels = 0;
  for (std::size_t i = 0; i < n_ops; ++i) {
    const std::uint32_t lvl = op_level(i, slot_level);
    levels[i] = lvl;
    slot_level[dst(i)] = lvl + 1;
    n_levels = std::max(n_levels, lvl + 1);
  }

  out.level_begin.assign(static_cast<std::size_t>(n_levels) + 1, 0);
  for (std::size_t i = 0; i < n_ops; ++i) ++out.level_begin[levels[i] + 1];
  for (std::size_t l = 1; l <= n_levels; ++l) {
    out.level_begin[l] += out.level_begin[l - 1];
  }
  out.order.resize(n_ops);
  std::vector<std::uint32_t> cursor(out.level_begin);
  for (std::size_t i = 0; i < n_ops; ++i) {
    out.order[cursor[levels[i]]++] = static_cast<std::uint32_t>(i);
  }
  return out;
}

/// Partitions `op` (plan order) into maximal same-opcode runs bounded by
/// `level_begin` (level l spans [level_begin[l], level_begin[l + 1])).
/// Returns the run boundaries: run k spans [result[k], result[k + 1]); a
/// plan of n ops always ends with result.back() == n (so an empty plan
/// yields {0} and zero runs).
template <typename Op>
[[nodiscard]] std::vector<std::uint32_t> partition_opcode_runs(
    const std::vector<Op>& op, const std::vector<std::uint32_t>& level_begin) {
  std::vector<std::uint32_t> run_begin;
  const auto n = static_cast<std::uint32_t>(op.size());
  std::size_t lvl = 0;
  for (std::uint32_t k = 0; k < n; ++k) {
    while (level_begin[lvl + 1] <= k) ++lvl;
    if (k == 0 || op[k] != op[k - 1] || level_begin[lvl] == k) {
      run_begin.push_back(k);
    }
  }
  run_begin.push_back(n);
  return run_begin;
}

/// Longest run of a partition returned by partition_opcode_runs.
[[nodiscard]] inline std::size_t max_run_length(
    const std::vector<std::uint32_t>& run_begin) {
  std::size_t longest = 0;
  for (std::size_t k = 0; k + 1 < run_begin.size(); ++k) {
    longest = std::max<std::size_t>(longest, run_begin[k + 1] - run_begin[k]);
  }
  return longest;
}

}  // namespace hts::util
