#include "util/rng.hpp"

#include <cmath>

namespace hts::util {

double Rng::sqrt_neg2log(double s) { return std::sqrt(-2.0 * std::log(s) / s); }

}  // namespace hts::util
