#pragma once

// Deterministic, fast pseudo-random number generation.
//
// All stochastic components in the library (sampler initialization, random
// polarities in the CDCL baselines, instance generators) draw from Rng so a
// single 64-bit seed reproduces an entire experiment end to end.

#include <cstdint>
#include <utility>

namespace hts::util {

/// SplitMix64 — used to expand a user seed into generator state.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Xoshiro256** PRNG.  Small state, excellent statistical quality, and much
/// faster than std::mt19937_64 — RNG throughput matters when randomizing
/// millions of unconstrained primary inputs per batch.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5a175a3cfULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  [[nodiscard]] std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be nonzero.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection method (unbiased).
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0ULL - bound) % bound;
      while (low < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t next_in_range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [0, 1).
  [[nodiscard]] float next_float() {
    return static_cast<float>(next_u64() >> 40) * 0x1.0p-24f;
  }

  /// Bernoulli draw.
  [[nodiscard]] bool next_bool(double p_true = 0.5) { return next_double() < p_true; }

  /// Standard normal via Marsaglia polar method (no trig).
  [[nodiscard]] double next_gaussian() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u = 0.0;
    double v = 0.0;
    double s = 0.0;
    do {
      u = 2.0 * next_double() - 1.0;
      v = 2.0 * next_double() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = sqrt_neg2log(s);
    spare_ = v * mul;
    has_spare_ = true;
    return u * mul;
  }

  /// Fisher-Yates shuffle of a random-access container.
  template <typename Container>
  void shuffle(Container& items) {
    const std::uint64_t n = items.size();
    if (n < 2) return;
    for (std::uint64_t i = n - 1; i > 0; --i) {
      const std::uint64_t j = next_below(i + 1);
      using std::swap;
      swap(items[i], items[j]);
    }
  }

  /// A statistically independent child generator (for per-thread streams).
  [[nodiscard]] Rng fork() { return Rng(next_u64() ^ 0x9e3779b97f4a7c15ULL); }

  /// Decorrelated stream `stream_id` of a base seed: the (seed, stream) pair
  /// is expanded through two SplitMix64 steps so worker i's sequence shares
  /// no lattice structure with worker j's even for adjacent ids.  Unlike
  /// fork(), the result depends only on (seed, stream_id), never on how much
  /// of the parent sequence was consumed — round-parallel workers get
  /// schedule-independent streams.
  [[nodiscard]] static Rng stream(std::uint64_t seed, std::uint64_t stream_id) {
    std::uint64_t sm = seed;
    sm = splitmix64(sm) + stream_id * 0x9e3779b97f4a7c15ULL;
    return Rng(splitmix64(sm));
  }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  [[nodiscard]] static double sqrt_neg2log(double s);

  std::uint64_t state_[4] = {};
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace hts::util
