#pragma once

// Cooperative cancellation for long-running sampling loops.
//
// A StopSource owns a shared flag; StopTokens are cheap views of it that
// components poll at natural yield points (GD round and iteration
// boundaries, harvest blocks).  A default-constructed token observes
// nothing and never requests a stop, so plumbing a token through an API is
// free for callers that do not cancel — the polling sites cost one relaxed
// atomic load when a source is attached and a null check when not.
//
// This is the request-abort primitive of the service layer: a job's
// deadline reaper and its client-facing cancel() both fire the same source,
// and the GD loop winds down at the next boundary with whatever partial
// results it has banked.  (std::stop_token is jthread-centric and cannot be
// observed without a jthread; this standalone pair is the few lines we
// need.)
//
// Thread-safety: lock-free by design — the flag is a monotone one-way
// atomic (false -> true, relaxed order suffices: observers act on it at
// their next poll either way), so there is no mutex to annotate and Clang's
// capability analysis (util/thread_annotations.hpp) has nothing to track
// here.  The shared_ptr control block makes token lifetime safe across
// threads on its own.

#include <atomic>
#include <memory>

namespace hts::util {

class StopToken {
 public:
  /// Default token: never stops (no source attached).
  StopToken() = default;

  [[nodiscard]] bool stop_requested() const {
    return flag_ != nullptr && flag_->load(std::memory_order_relaxed);
  }

  /// True when a source is attached (a request could ever arrive).
  [[nodiscard]] bool stop_possible() const { return flag_ != nullptr; }

 private:
  friend class StopSource;
  explicit StopToken(std::shared_ptr<const std::atomic<bool>> flag)
      : flag_(std::move(flag)) {}

  std::shared_ptr<const std::atomic<bool>> flag_;
};

class StopSource {
 public:
  StopSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void request_stop() { flag_->store(true, std::memory_order_relaxed); }

  [[nodiscard]] bool stop_requested() const {
    return flag_->load(std::memory_order_relaxed);
  }

  /// A token observing this source; outlives the source safely (shared
  /// ownership of the flag).
  [[nodiscard]] StopToken token() const { return StopToken(flag_); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace hts::util
