#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/check.hpp"

namespace hts::util {

void Table::add_row(std::vector<std::string> row) {
  HTS_CHECK_MSG(row.size() == header_.size(), "table row width mismatch");
  rows_.push_back(std::move(row));
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 < row.size()) {
        out << std::string(width[c] - row[c].size() + 2, ' ');
      }
    }
    out << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      // Values with commas (grouped numbers) are quoted.
      const bool quote = row[c].find(',') != std::string::npos;
      if (quote) out << '"';
      out << row[c];
      if (quote) out << '"';
      if (c + 1 < row.size()) out << ',';
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string format_fixed(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

std::string format_grouped(double value, int decimals) {
  std::string plain = format_fixed(value, decimals);
  const auto dot = plain.find('.');
  std::size_t int_end = (dot == std::string::npos) ? plain.size() : dot;
  std::size_t int_begin = (!plain.empty() && plain[0] == '-') ? 1 : 0;
  std::string grouped;
  grouped.reserve(plain.size() + plain.size() / 3);
  grouped.append(plain, 0, int_begin);
  const std::size_t digits = int_end - int_begin;
  for (std::size_t i = 0; i < digits; ++i) {
    if (i > 0 && (digits - i) % 3 == 0) grouped.push_back(',');
    grouped.push_back(plain[int_begin + i]);
  }
  grouped.append(plain, int_end, std::string::npos);
  return grouped;
}

std::string format_si(double value) {
  const double magnitude = std::fabs(value);
  if (magnitude >= 1e9) return format_fixed(value / 1e9, 2) + "G";
  if (magnitude >= 1e6) return format_fixed(value / 1e6, 2) + "M";
  if (magnitude >= 1e3) return format_fixed(value / 1e3, 2) + "k";
  return format_fixed(value, 2);
}

std::string format_speedup(double ratio) { return format_fixed(ratio, 1) + "x"; }

}  // namespace hts::util
