#pragma once

// Console table / CSV emission used by the bench harnesses so their output
// mirrors the paper's tables and figure series.

#include <string>
#include <vector>

namespace hts::util {

/// Column-aligned ASCII table with a header row, printed like the paper's
/// Table II.  All cells are strings; format_* helpers build them.
class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  void add_row(std::vector<std::string> row);

  /// Renders with column alignment and a separator under the header.
  [[nodiscard]] std::string to_string() const;

  /// Comma-separated form for downstream plotting.
  [[nodiscard]] std::string to_csv() const;

  [[nodiscard]] std::size_t n_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision decimal, e.g. format_fixed(3.14159, 2) == "3.14".
[[nodiscard]] std::string format_fixed(double value, int decimals);

/// Thousands-separated count, e.g. 4777137.7 -> "4,777,137.7".
[[nodiscard]] std::string format_grouped(double value, int decimals = 1);

/// Engineering shorthand, e.g. 2.47e6 -> "2.47M".
[[nodiscard]] std::string format_si(double value);

/// "12.3x" speedup cell.
[[nodiscard]] std::string format_speedup(double ratio);

}  // namespace hts::util
