#pragma once

// Clang thread-safety (capability) annotation macros.
//
// These expand to Clang's `__attribute__((...))` capability attributes when
// compiling under Clang and to nothing elsewhere, so GCC builds are
// unaffected while any Clang build (CI's build-test matrix, the TSan job,
// and the dedicated static-analysis job) runs `-Wthread-safety` over every
// annotated type.  The annotations turn the repo's locking discipline into
// compile-time contracts:
//
//   - HTS_GUARDED_BY(mu) on a field: reads and writes require holding mu.
//   - HTS_REQUIRES(mu) on a function: callers must hold mu (the `_locked`
//     helper convention, e.g. Server::pop_best_locked).
//   - HTS_EXCLUDES(mu) on a function: callers must NOT hold mu (public
//     entry points that lock internally; catches self-deadlock).
//   - HTS_ACQUIRE/HTS_RELEASE on lock/unlock-shaped functions.
//   - HTS_CAPABILITY / HTS_SCOPED_CAPABILITY on the util::Mutex /
//     util::LockGuard wrappers (util/mutex.hpp).
//
// Some relationships are outside the analysis' vocabulary and stay
// documented in comments instead (see util/mutex.hpp's file comment):
// cross-object guards (a field of struct A guarded by B's mutex, e.g.
// detail::Job::last_pop_seq under the *server* mutex), pointer-target
// guards through containers, and lock *ordering* between distinct objects.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#if defined(__clang__)
#define HTS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define HTS_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Declares a type to be a capability (a mutex-like resource the analysis
/// tracks as held/not-held).
#define HTS_CAPABILITY(x) HTS_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type whose constructor acquires and destructor releases
/// a capability.
#define HTS_SCOPED_CAPABILITY HTS_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be accessed while holding the given capability.
#define HTS_GUARDED_BY(x) HTS_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field whose *pointee* may only be accessed while holding the
/// given capability (the pointer itself is unguarded).
#define HTS_PT_GUARDED_BY(x) HTS_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the capability to be held on entry (and does not
/// release it).
#define HTS_REQUIRES(...) \
  HTS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the capability and holds it past return.
#define HTS_ACQUIRE(...) HTS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases a held capability.
#define HTS_RELEASE(...) HTS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function attempts the acquisition; the first argument is the return value
/// meaning "acquired".
#define HTS_TRY_ACQUIRE(...) \
  HTS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function must be called with the capability NOT held (it acquires it
/// internally); catches recursive self-deadlock at compile time.
#define HTS_EXCLUDES(...) HTS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Asserts (without acquiring) that the capability is held at this point.
#define HTS_ASSERT_CAPABILITY(x) HTS_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the given capability.
#define HTS_RETURN_CAPABILITY(x) HTS_THREAD_ANNOTATION(lock_returned(x))

/// Declares a required acquisition order between two capabilities visible in
/// one scope.
#define HTS_ACQUIRED_BEFORE(...) \
  HTS_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define HTS_ACQUIRED_AFTER(...) \
  HTS_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Escape hatch: disables the analysis for one function.  Policy (enforced
/// by review, stated in ISSUE/README): not used anywhere in this codebase —
/// condition-variable waits go through util::CondVar, whose adopt/release
/// implementation needs no suppression.
#define HTS_NO_THREAD_SAFETY_ANALYSIS \
  HTS_THREAD_ANNOTATION(no_thread_safety_analysis)
