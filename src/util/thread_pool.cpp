#include "util/thread_pool.hpp"

#include <algorithm>

namespace hts::util {

ThreadPool::ThreadPool(std::size_t n_threads) {
  if (n_threads == 0) {
    n_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    LockGuard lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      LockGuard lock(mutex_);
      while (!stop_ && queue_.empty()) work_ready_.wait(mutex_);
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.back());
      queue_.pop_back();
      // Detached tasks still queued at shutdown are dropped, per submit()'s
      // contract: starting a long-lived service loop during teardown would
      // leave the destructor joining a worker that never returns.
      // parallel_for chunks are different — a caller is blocked on their
      // countdown, so they always run.
      if (stop_ && task.detached) continue;
    }
    if (task.detached) {
      // Fire-and-forget: nothing to count down, no caller to wake.
      task.detached();
      continue;
    }
    (*task.fn)(task.begin, task.end);
    {
      LockGuard lock(mutex_);
      if (--*task.remaining == 0) work_done_.notify_all();
    }
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    LockGuard lock(mutex_);
    Task entry;
    entry.detached = std::move(task);
    queue_.push_back(std::move(entry));
  }
  work_ready_.notify_one();
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t n_workers = workers_.size();
  // Chunk so each worker gets a handful of tasks; the tail chunk may be short.
  const std::size_t n_chunks = std::min(n, n_workers * 4);
  if (n_chunks <= 1) {
    fn(0, n);
    return;
  }
  const std::size_t chunk = (n + n_chunks - 1) / n_chunks;
  // Per-call completion count: concurrent parallel_for calls from distinct
  // threads each wait only for their own chunks.  Written under mutex_ from
  // here on (see Task::remaining).
  std::size_t remaining = 0;
  {
    LockGuard lock(mutex_);
    for (std::size_t begin = 0; begin < n; begin += chunk) {
      Task task;
      task.fn = &fn;
      task.begin = begin;
      task.end = std::min(begin + chunk, n);
      task.remaining = &remaining;
      queue_.push_back(std::move(task));
      ++remaining;
    }
  }
  work_ready_.notify_all();
  LockGuard lock(mutex_);
  while (remaining != 0) work_done_.wait(mutex_);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace hts::util
