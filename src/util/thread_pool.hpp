#pragma once

// A work-stealing-free, chunked parallel-for thread pool.
//
// This is the "GPU simulator" substrate: the paper's sampler is data-parallel
// across batch rows, and we reproduce the GPU-vs-CPU ablation (Fig. 4, left)
// by running identical kernels either serially or across this pool.

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hts::util {

class ThreadPool {
 public:
  /// n_threads == 0 selects the hardware concurrency.
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Runs fn(begin, end) over a partition of [0, n) across the pool and the
  /// calling thread, blocking until all chunks complete.  fn must be safe to
  /// invoke concurrently on disjoint ranges.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// Global pool sized to the machine; shared by tensor kernels.
  static ThreadPool& global();

 private:
  struct Task {
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
    std::size_t begin = 0;
    std::size_t end = 0;
    /// Per-call chunk countdown living on the caller's stack (the caller
    /// blocks until it reaches zero, so the pointer outlives the task).
    /// Guarded by mutex_.  Distinct calls track completion independently,
    /// so concurrent callers — e.g. round-parallel GD workers dispatching
    /// data-parallel kernels — never wait on each other's chunks.
    std::size_t* remaining = nullptr;
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::vector<Task> queue_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  bool stop_ = false;
};

}  // namespace hts::util
