#pragma once

// A work-stealing-free, chunked parallel-for thread pool.
//
// This is the "GPU simulator" substrate: the paper's sampler is data-parallel
// across batch rows, and we reproduce the GPU-vs-CPU ablation (Fig. 4, left)
// by running identical kernels either serially or across this pool.
//
// Lock discipline (machine-checked under Clang -Wthread-safety): mutex_
// guards the queue and the stop flag; it is a leaf lock — tasks always run
// with no pool lock held (see util/mutex.hpp for the repo-wide order).

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace hts::util {

class ThreadPool {
 public:
  /// n_threads == 0 selects the hardware concurrency.
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Runs fn(begin, end) over a partition of [0, n) across the pool and the
  /// calling thread, blocking until all chunks complete.  fn must be safe to
  /// invoke concurrently on disjoint ranges.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn)
      HTS_EXCLUDES(mutex_);

  /// Enqueues a single fire-and-forget task; returns immediately.  The task
  /// runs on one pool worker (never the caller), interleaved with
  /// parallel_for chunks through the same queue.  The service layer's worker
  /// fleet is built on this: each long-lived scheduler loop is one submitted
  /// task, so the fleet shares the pool type (and its shutdown discipline)
  /// with the data-parallel kernels instead of owning raw std::threads.
  /// Tasks still queued when the pool is destroyed are dropped; tasks must
  /// not outlive-block the pool unless the owner drains them first.
  void submit(std::function<void()> task) HTS_EXCLUDES(mutex_);

  /// Global pool sized to the machine; shared by tensor kernels.
  static ThreadPool& global();

 private:
  struct Task {
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
    std::size_t begin = 0;
    std::size_t end = 0;
    /// Per-call chunk countdown living on the caller's stack (the caller
    /// blocks until it reaches zero, so the pointer outlives the task).
    /// The *pointee* is guarded by mutex_ — a cross-object relationship the
    /// analysis cannot express on a nested struct, so it stays a comment;
    /// every dereference in thread_pool.cpp is under a mutex_ guard.
    /// Distinct calls track completion independently, so concurrent callers
    /// — e.g. round-parallel GD workers dispatching data-parallel kernels —
    /// never wait on each other's chunks.
    std::size_t* remaining = nullptr;
    /// submit() tasks carry their callable by value (fn stays null and no
    /// completion is tracked — fire and forget).
    std::function<void()> detached;
  };

  void worker_loop() HTS_EXCLUDES(mutex_);

  std::vector<std::thread> workers_;
  Mutex mutex_;
  std::vector<Task> queue_ HTS_GUARDED_BY(mutex_);
  CondVar work_ready_;
  CondVar work_done_;
  bool stop_ HTS_GUARDED_BY(mutex_) = false;
};

}  // namespace hts::util
