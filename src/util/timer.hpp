#pragma once

// Wall-clock timing used by the sampling harnesses and benches.

#include <chrono>
#include <cstdint>

namespace hts::util {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

  [[nodiscard]] std::uint64_t nanoseconds() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A soft deadline: components poll expired() to honour sampling timeouts
/// (the paper gives each sampler a 2 h budget; our benches scale it down).
class Deadline {
 public:
  /// budget_ms <= 0 means "no deadline".
  explicit Deadline(double budget_ms = -1.0) : budget_ms_(budget_ms) {}

  [[nodiscard]] bool expired() const {
    return budget_ms_ > 0.0 && timer_.milliseconds() >= budget_ms_;
  }

  [[nodiscard]] double remaining_ms() const {
    if (budget_ms_ <= 0.0) return 1e18;
    return budget_ms_ - timer_.milliseconds();
  }

  [[nodiscard]] double elapsed_ms() const { return timer_.milliseconds(); }
  [[nodiscard]] double budget_ms() const { return budget_ms_; }

 private:
  Timer timer_;
  double budget_ms_;
};

}  // namespace hts::util
