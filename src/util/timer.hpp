#pragma once

// Wall-clock timing used by the sampling harnesses and benches.
//
// Every duration this repo reports — Timer/Deadline here, the *_ms fields in
// JobStats/GdLoopExtras, and the telemetry span/metric layer — derives from
// the single monotonic clock below, so the two bookkeeping paths (ad-hoc
// stats and trace spans) can never disagree about when something happened.

#include <chrono>
#include <cstdint>

namespace hts::util {

/// Nanoseconds on the process-wide monotonic clock.  The origin is the first
/// call in the process (a function-local static), so values are small,
/// strictly comparable across threads, and safe to difference.
[[nodiscard]] inline std::uint64_t monotonic_ns() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point origin = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - origin)
          .count());
}

/// Same clock in microseconds (Chrome trace-event `ts` units).
[[nodiscard]] inline double monotonic_us() {
  return static_cast<double>(monotonic_ns()) * 1e-3;
}

/// Same clock in milliseconds (the unit every *_ms stats field uses).
[[nodiscard]] inline double monotonic_ms() {
  return static_cast<double>(monotonic_ns()) * 1e-6;
}

class Timer {
 public:
  Timer() : start_ns_(monotonic_ns()) {}

  void reset() { start_ns_ = monotonic_ns(); }

  [[nodiscard]] double seconds() const {
    return static_cast<double>(monotonic_ns() - start_ns_) * 1e-9;
  }

  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

  [[nodiscard]] std::uint64_t nanoseconds() const {
    return monotonic_ns() - start_ns_;
  }

  /// The monotonic_ns() stamp this timer (re)started at.
  [[nodiscard]] std::uint64_t start_ns() const { return start_ns_; }

 private:
  std::uint64_t start_ns_;
};

/// A soft deadline: components poll expired() to honour sampling timeouts
/// (the paper gives each sampler a 2 h budget; our benches scale it down).
class Deadline {
 public:
  /// budget_ms <= 0 means "no deadline".
  explicit Deadline(double budget_ms = -1.0) : budget_ms_(budget_ms) {}

  [[nodiscard]] bool expired() const {
    return budget_ms_ > 0.0 && timer_.milliseconds() >= budget_ms_;
  }

  [[nodiscard]] double remaining_ms() const {
    if (budget_ms_ <= 0.0) return 1e18;
    return budget_ms_ - timer_.milliseconds();
  }

  [[nodiscard]] double elapsed_ms() const { return timer_.milliseconds(); }
  [[nodiscard]] double budget_ms() const { return budget_ms_; }

 private:
  Timer timer_;
  double budget_ms_;
};

}  // namespace hts::util
