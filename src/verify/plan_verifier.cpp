#include "verify/plan_verifier.hpp"

#include <algorithm>
#include <atomic>
#include <unordered_map>
#include <utility>

#include "util/env.hpp"

namespace hts::verify {

namespace {

using prob::op_is_binary;
using prob::TapeOp;
using circuit::word_op_is_binary;

std::string slot_str(std::uint32_t slot) {
  return "slot " + std::to_string(slot);
}

/// Accumulates diagnostics up to the cap; callers consult full() to stop
/// scanning a rule early without losing the truncation marker.
class Reporter {
 public:
  explicit Reporter(std::size_t cap) : cap_(cap) {}

  [[nodiscard]] bool full() const {
    return report_.diagnostics.size() >= cap_;
  }

  void add(Rule rule, std::size_t op_index, std::string message) {
    if (full()) {
      report_.truncated = true;
      return;
    }
    report_.diagnostics.push_back(
        Diagnostic{rule, op_index, std::move(message)});
  }

  [[nodiscard]] Report take() { return std::move(report_); }

 private:
  std::size_t cap_;
  Report report_;
};

/// A boundary array partitions [0, n) iff it starts at 0, ends at n, and
/// strictly increases (constructed plans have no empty level/group/run).
bool check_partition(std::span<const std::uint32_t> begin, std::size_t n,
                     const char* name, Reporter& reporter) {
  if (begin.empty() || begin.front() != 0 || begin.back() != n) {
    reporter.add(Rule::kShape, kWholePlan,
                 std::string(name) + " does not span [0, " +
                     std::to_string(n) + ")");
    return false;
  }
  for (std::size_t i = 1; i < begin.size(); ++i) {
    if (begin[i] <= begin[i - 1]) {
      reporter.add(Rule::kShape, kWholePlan,
                   std::string(name) + "[" + std::to_string(i) +
                       "] does not increase (empty or inverted range)");
      return false;
    }
  }
  return true;
}

/// Tracks single-assignment slot definitions shared by the tape- and
/// plan-order walks; base definitions (inputs, constants) seed the set.
class DefSet {
 public:
  explicit DefSet(std::size_t n_slots) : defined_(n_slots, 0) {}

  /// Defines a base slot; false when already defined (kSsa at the caller).
  bool define_base(std::uint32_t slot) {
    if (defined_[slot] != 0) return false;
    defined_[slot] = 1;
    return true;
  }

  [[nodiscard]] bool is_defined(std::uint32_t slot) const {
    return defined_[slot] != 0;
  }

  bool define(std::uint32_t slot) { return define_base(slot); }

 private:
  std::vector<std::uint8_t> defined_;
};

/// Seeds base definitions (inputs + constants) into `defs`, reporting
/// double definitions as kSsa.  Slot bounds were checked before this runs.
template <typename InputSlotFn>
void seed_base_defs(std::size_t n_inputs, InputSlotFn&& input_slot,
                    std::span<const std::uint32_t> const_slots, DefSet& defs,
                    Reporter& reporter) {
  for (std::size_t i = 0; i < n_inputs; ++i) {
    const std::int32_t slot = input_slot(i);
    if (slot == prob::kNoSlot) continue;
    if (!defs.define_base(static_cast<std::uint32_t>(slot))) {
      reporter.add(Rule::kSsa, kWholePlan,
                   "input " + std::to_string(i) + " redefines " +
                       slot_str(static_cast<std::uint32_t>(slot)));
    }
  }
  for (std::size_t c = 0; c < const_slots.size(); ++c) {
    if (!defs.define_base(const_slots[c])) {
      reporter.add(Rule::kSsa, kWholePlan,
                   "constant " + std::to_string(c) + " redefines " +
                       slot_str(const_slots[c]));
    }
  }
}

// ---- ExecPlan (float tape) ------------------------------------------------

/// Shape gate: all later rules index these arrays, so a failure here ends
/// the verification (the report carries the reason).
bool check_exec_shape(const ExecPlanView& v, Reporter& reporter) {
  const std::size_t n = v.op.size();
  bool ok = true;
  if (v.dst.size() != n || v.a.size() != n || v.b.size() != n) {
    reporter.add(Rule::kShape, kWholePlan,
                 "plan arrays disagree in length (op " + std::to_string(n) +
                     ", dst " + std::to_string(v.dst.size()) + ", a " +
                     std::to_string(v.a.size()) + ", b " +
                     std::to_string(v.b.size()) + ")");
    ok = false;
  }
  if (v.tape.size() != n) {
    reporter.add(Rule::kShape, kWholePlan,
                 "tape has " + std::to_string(v.tape.size()) +
                     " ops but plan has " + std::to_string(n));
    ok = false;
  }
  ok = check_partition(v.level_begin, n, "level_begin", reporter) && ok;
  ok = check_partition(v.group_begin, n, "group_begin", reporter) && ok;
  ok = check_partition(v.run_begin, n, "run_begin", reporter) && ok;
  if (!ok) return false;

  // The group partition must refine the level partition: level l owns the
  // contiguous groups [level_group[l], level_group[l + 1]), and those
  // groups tile exactly [level_begin[l], level_begin[l + 1]).
  const std::size_t n_levels = v.level_begin.size() - 1;
  const std::size_t n_groups = v.group_begin.size() - 1;
  if (v.level_group.size() != n_levels + 1 || v.level_group.front() != 0 ||
      v.level_group.back() != n_groups) {
    reporter.add(Rule::kShape, kWholePlan,
                 "level_group does not map " + std::to_string(n_levels) +
                     " levels onto " + std::to_string(n_groups) + " groups");
    return false;
  }
  for (std::size_t l = 0; l + 1 < v.level_group.size(); ++l) {
    if (v.level_group[l] >= v.level_group[l + 1]) {
      reporter.add(Rule::kShape, kWholePlan,
                   "level " + std::to_string(l) + " owns no groups");
      return false;
    }
  }
  for (std::size_t l = 0; l < n_levels; ++l) {
    if (v.group_begin[v.level_group[l]] != v.level_begin[l]) {
      reporter.add(Rule::kShape, kWholePlan,
                   "group partition does not align with level " +
                       std::to_string(l) + " (group starts at " +
                       std::to_string(v.group_begin[v.level_group[l]]) +
                       ", level at " + std::to_string(v.level_begin[l]) + ")");
      return false;
    }
  }

  // Unary plan entries mirror a into b so every kernel may load both
  // operand lanes unconditionally.
  for (std::size_t k = 0; k < n && !reporter.full(); ++k) {
    if (!op_is_binary(v.op[k]) && v.b[k] != v.a[k]) {
      reporter.add(Rule::kShape, k,
                   "unary plan op does not mirror a into b (a = " +
                       std::to_string(v.a[k]) + ", b = " +
                       std::to_string(v.b[k]) + ")");
      ok = false;
    }
  }
  return ok;
}

/// Bounds gate: later rules index defined[]/avail[] arrays by slot, so any
/// out-of-range index ends the verification.
bool check_exec_bounds(const ExecPlanView& v, Reporter& reporter) {
  bool ok = true;
  auto bad = [&](std::size_t index, const std::string& what,
                 std::uint32_t slot) {
    reporter.add(Rule::kSlotBounds, index,
                 what + " references " + slot_str(slot) + " outside [0, " +
                     std::to_string(v.n_slots) + ")");
    ok = false;
  };
  for (std::size_t i = 0; i < v.tape.size() && !reporter.full(); ++i) {
    const TapeOp& t = v.tape[i];
    if (t.dst >= v.n_slots) bad(i, "tape dst", t.dst);
    if (t.a >= v.n_slots) bad(i, "tape operand a", t.a);
    if (op_is_binary(t.op) && t.b >= v.n_slots) bad(i, "tape operand b", t.b);
  }
  for (std::size_t k = 0; k < v.op.size() && !reporter.full(); ++k) {
    if (v.dst[k] >= v.n_slots) bad(k, "plan dst", v.dst[k]);
    if (v.a[k] >= v.n_slots) bad(k, "plan operand a", v.a[k]);
    if (v.b[k] >= v.n_slots) bad(k, "plan operand b", v.b[k]);
  }
  for (std::size_t i = 0; i < v.input_slot.size() && !reporter.full(); ++i) {
    const std::int32_t slot = v.input_slot[i];
    if (slot == prob::kNoSlot) continue;
    if (slot < 0 || static_cast<std::size_t>(slot) >= v.n_slots) {
      reporter.add(Rule::kSlotBounds, kWholePlan,
                   "input " + std::to_string(i) + " maps to slot " +
                       std::to_string(slot) + " outside [0, " +
                       std::to_string(v.n_slots) + ")");
      ok = false;
    }
  }
  for (const prob::CompiledCircuit::ConstSlot& c : v.const_slots) {
    if (c.slot >= v.n_slots) bad(kWholePlan, "constant", c.slot);
  }
  for (const prob::CompiledCircuit::Output& out : v.outputs) {
    if (out.slot >= v.n_slots) bad(kWholePlan, "output", out.slot);
  }
  return ok;
}

void verify_exec_impl(const ExecPlanView& v, const Options& options,
                      Reporter& reporter) {
  if (!check_exec_shape(v, reporter)) return;
  if (!check_exec_bounds(v, reporter)) return;

  const std::size_t n = v.op.size();
  std::vector<std::uint32_t> const_slot_ids;
  const_slot_ids.reserve(v.const_slots.size());
  for (const prob::CompiledCircuit::ConstSlot& c : v.const_slots) {
    const_slot_ids.push_back(c.slot);
  }
  auto input_slot_at = [&v](std::size_t i) { return v.input_slot[i]; };

  // ---- tape order: SSA + def-before-use (the tape is the optimizer's
  // output and must itself be a topological SSA program) ----
  DefSet tape_defs(v.n_slots);
  seed_base_defs(v.input_slot.size(), input_slot_at, const_slot_ids,
                 tape_defs, reporter);
  for (std::size_t i = 0; i < n && !reporter.full(); ++i) {
    const TapeOp& t = v.tape[i];
    if (!tape_defs.is_defined(t.a)) {
      reporter.add(Rule::kDefBeforeUse, i,
                   "tape operand a reads " + slot_str(t.a) +
                       " before its definition");
    }
    if (op_is_binary(t.op) && !tape_defs.is_defined(t.b)) {
      reporter.add(Rule::kDefBeforeUse, i,
                   "tape operand b reads " + slot_str(t.b) +
                       " before its definition");
    }
    if (!tape_defs.define(t.dst)) {
      reporter.add(Rule::kSsa, i,
                   "tape op redefines " + slot_str(t.dst));
    }
  }

  // ---- plan order: SSA + def-before-use + exact ASAP levels ----
  // avail[slot] is one past the level of the slot's producer (base slots
  // sit at 0), so an op's exact ASAP level is the max over its operands'
  // avail — the same rule util::levelize_asap applies during construction,
  // recomputed here independently over the *published* order.
  DefSet plan_defs(v.n_slots);
  seed_base_defs(v.input_slot.size(), input_slot_at, const_slot_ids,
                 plan_defs, reporter);
  std::vector<std::uint32_t> avail(v.n_slots, 0);
  std::size_t level = 0;
  for (std::size_t k = 0; k < n && !reporter.full(); ++k) {
    while (v.level_begin[level + 1] <= k) ++level;
    if (!plan_defs.is_defined(v.a[k])) {
      reporter.add(Rule::kDefBeforeUse, k,
                   "plan operand a reads " + slot_str(v.a[k]) +
                       " before its definition (plan order)");
    }
    if (op_is_binary(v.op[k]) && !plan_defs.is_defined(v.b[k])) {
      reporter.add(Rule::kDefBeforeUse, k,
                   "plan operand b reads " + slot_str(v.b[k]) +
                       " before its definition (plan order)");
    }
    std::uint32_t asap = avail[v.a[k]];
    if (op_is_binary(v.op[k])) asap = std::max(asap, avail[v.b[k]]);
    if (asap != level) {
      reporter.add(Rule::kLevelOrder, k,
                   "plan op published at level " + std::to_string(level) +
                       " but its exact ASAP level is " + std::to_string(asap));
    }
    if (!plan_defs.define(v.dst[k])) {
      reporter.add(Rule::kSsa, k,
                   "plan op redefines " + slot_str(v.dst[k]) +
                       " (plan order)");
    }
    avail[v.dst[k]] = static_cast<std::uint32_t>(level) + 1;
  }

  // ---- backward groups: operand-disjoint within each level ----
  // The chunked backward sweep accumulates gradients into operand slots
  // concurrently across groups; a shared operand would be a data race.
  {
    std::unordered_map<std::uint32_t, std::uint32_t> operand_group;
    const std::size_t n_levels = v.level_begin.size() - 1;
    for (std::size_t l = 0; l < n_levels && !reporter.full(); ++l) {
      operand_group.clear();
      for (std::uint32_t g = v.level_group[l]; g < v.level_group[l + 1]; ++g) {
        for (std::uint32_t k = v.group_begin[g]; k < v.group_begin[g + 1];
             ++k) {
          const std::uint32_t operands[2] = {v.a[k], v.b[k]};
          const std::size_t n_operands = op_is_binary(v.op[k]) ? 2 : 1;
          for (std::size_t j = 0; j < n_operands; ++j) {
            const auto [it, fresh] = operand_group.try_emplace(operands[j], g);
            if (!fresh && it->second != g) {
              reporter.add(Rule::kGroupDisjoint, k,
                           "groups " + std::to_string(it->second) + " and " +
                               std::to_string(g) + " of level " +
                               std::to_string(l) + " share operand " +
                               slot_str(operands[j]));
            }
          }
        }
      }
    }
  }

  // ---- opcode runs: uniform, level-bounded, maximal ----
  {
    std::vector<std::uint8_t> is_run_begin(n + 1, 0);
    for (const std::uint32_t rb : v.run_begin) is_run_begin[rb] = 1;
    std::vector<std::uint8_t> is_level_begin(n + 1, 0);
    for (const std::uint32_t lb : v.level_begin) is_level_begin[lb] = 1;
    for (const std::uint32_t lb : v.level_begin) {
      if (is_run_begin[lb] == 0) {
        reporter.add(Rule::kRunPartition, lb,
                     "a run crosses the level boundary at plan index " +
                         std::to_string(lb));
      }
    }
    for (std::size_t r = 0; r + 1 < v.run_begin.size() && !reporter.full();
         ++r) {
      for (std::uint32_t k = v.run_begin[r] + 1; k < v.run_begin[r + 1]; ++k) {
        if (v.op[k] != v.op[v.run_begin[r]]) {
          reporter.add(Rule::kRunPartition, k,
                       "run " + std::to_string(r) + " mixes opcodes");
          break;
        }
      }
    }
    for (std::size_t r = 1; r + 1 < v.run_begin.size() && !reporter.full();
         ++r) {
      const std::uint32_t k = v.run_begin[r];
      if (is_level_begin[k] == 0 && v.op[k] == v.op[k - 1]) {
        reporter.add(Rule::kRunPartition, k,
                     "adjacent runs share an opcode inside one level (run "
                     "partition is not maximal)");
      }
    }
  }

  // ---- permutation: the plan executes exactly the tape's ops ----
  // dst is SSA-unique, so matching through it pairs every plan entry with
  // its tape op; equal counts (shape) then make the pairing a bijection.
  {
    std::unordered_map<std::uint32_t, std::size_t> tape_by_dst;
    tape_by_dst.reserve(n);
    for (std::size_t i = 0; i < n; ++i) tape_by_dst.emplace(v.tape[i].dst, i);
    for (std::size_t k = 0; k < n && !reporter.full(); ++k) {
      const auto it = tape_by_dst.find(v.dst[k]);
      if (it == tape_by_dst.end()) {
        reporter.add(Rule::kPermutation, k,
                     "plan op defines " + slot_str(v.dst[k]) +
                         " which no tape op defines");
        continue;
      }
      const TapeOp& t = v.tape[it->second];
      const bool binary = op_is_binary(v.op[k]);
      if (t.op != v.op[k] || t.a != v.a[k] || (binary && t.b != v.b[k])) {
        reporter.add(Rule::kPermutation, k,
                     "plan op disagrees with tape op " +
                         std::to_string(it->second) + " on " +
                         slot_str(v.dst[k]));
      }
    }
  }

  // ---- liveness: DCE soundness and renumbering compactness ----
  // Backward walk from the outputs over the tape; optimized tapes promise
  // every op reaches an output and every slot survived for a reason.
  std::vector<std::uint8_t> live(v.n_slots, 0);
  for (const prob::CompiledCircuit::Output& out : v.outputs) {
    live[out.slot] = 1;
  }
  for (std::size_t i = n; i-- > 0;) {
    const TapeOp& t = v.tape[i];
    if (live[t.dst] == 0) {
      if (options.optimized && !reporter.full()) {
        reporter.add(Rule::kDeadCode, i,
                     "tape op defines " + slot_str(t.dst) +
                         " which reaches no output (DCE missed it)");
      }
      continue;
    }
    live[t.a] = 1;
    if (op_is_binary(t.op)) live[t.b] = 1;
  }
  for (std::uint32_t s = 0; s < v.n_slots && !reporter.full(); ++s) {
    if (!tape_defs.is_defined(s)) {
      reporter.add(Rule::kSlotLiveness, kWholePlan,
                   slot_str(s) + " is never defined");
    } else if (options.optimized && live[s] == 0) {
      reporter.add(Rule::kSlotLiveness, kWholePlan,
                   slot_str(s) +
                       " is dead but survived the liveness renumbering");
    }
  }
}

// ---- EvalPlan (bitwise word plan) -----------------------------------------

bool check_eval_shape(const EvalPlanView& v, Reporter& reporter) {
  const std::size_t n = v.op.size();
  bool ok = true;
  if (v.dst.size() != n || v.a.size() != n || v.b.size() != n) {
    reporter.add(Rule::kShape, kWholePlan,
                 "plan arrays disagree in length (op " + std::to_string(n) +
                     ", dst " + std::to_string(v.dst.size()) + ", a " +
                     std::to_string(v.a.size()) + ", b " +
                     std::to_string(v.b.size()) + ")");
    ok = false;
  }
  if (v.n_slots < v.n_signals) {
    reporter.add(Rule::kShape, kWholePlan,
                 "n_slots " + std::to_string(v.n_slots) +
                     " < n_signals " + std::to_string(v.n_signals) +
                     " (signal s must live in slot s)");
    ok = false;
  }
  ok = check_partition(v.run_begin, n, "run_begin", reporter) && ok;
  if (!ok) return false;
  for (std::size_t k = 0; k < n && !reporter.full(); ++k) {
    if (!word_op_is_binary(v.op[k]) && v.b[k] != v.a[k]) {
      reporter.add(Rule::kShape, k,
                   "unary plan op does not mirror a into b (a = " +
                       std::to_string(v.a[k]) + ", b = " +
                       std::to_string(v.b[k]) + ")");
      ok = false;
    }
  }
  return ok;
}

bool check_eval_bounds(const EvalPlanView& v, Reporter& reporter) {
  bool ok = true;
  auto bad = [&](std::size_t index, const std::string& what,
                 std::uint32_t slot, std::size_t bound) {
    reporter.add(Rule::kSlotBounds, index,
                 what + " references " + slot_str(slot) + " outside [0, " +
                     std::to_string(bound) + ")");
    ok = false;
  };
  for (std::size_t k = 0; k < v.op.size() && !reporter.full(); ++k) {
    if (v.dst[k] >= v.n_slots) bad(k, "plan dst", v.dst[k], v.n_slots);
    if (v.a[k] >= v.n_slots) bad(k, "plan operand a", v.a[k], v.n_slots);
    if (v.b[k] >= v.n_slots) bad(k, "plan operand b", v.b[k], v.n_slots);
  }
  // Inputs, constants, and outputs are circuit signals; signal s lives in
  // slot s, so their bound is n_signals, not n_slots.
  for (const circuit::SignalId s : v.inputs) {
    if (s >= v.n_signals) bad(kWholePlan, "input signal", s, v.n_signals);
  }
  for (const circuit::EvalPlan::ConstSlot& c : v.const_slots) {
    if (c.slot >= v.n_signals) {
      bad(kWholePlan, "constant signal", c.slot, v.n_signals);
    }
  }
  for (const circuit::OutputConstraint& out : v.outputs) {
    if (out.signal >= v.n_signals) {
      bad(kWholePlan, "output signal", out.signal, v.n_signals);
    }
  }
  return ok;
}

void verify_eval_impl(const EvalPlanView& v, Reporter& reporter) {
  if (!check_eval_shape(v, reporter)) return;
  if (!check_eval_bounds(v, reporter)) return;

  const std::size_t n = v.op.size();
  std::vector<std::uint32_t> const_slot_ids;
  const_slot_ids.reserve(v.const_slots.size());
  for (const circuit::EvalPlan::ConstSlot& c : v.const_slots) {
    const_slot_ids.push_back(c.slot);
  }

  DefSet defs(v.n_slots);
  seed_base_defs(
      v.inputs.size(),
      [&v](std::size_t i) { return static_cast<std::int32_t>(v.inputs[i]); },
      const_slot_ids, defs, reporter);

  // One walk covers SSA, def-before-use, and level order: the plan stores
  // no level table, so levels are recomputed from the exact ASAP rule and
  // the published order must be non-decreasing in them (that *is* the
  // levelized-order contract).  level_of[k] feeds the run checks below.
  std::vector<std::uint32_t> avail(v.n_slots, 0);
  std::vector<std::uint32_t> level_of(n, 0);
  std::uint32_t prev_level = 0;
  for (std::size_t k = 0; k < n && !reporter.full(); ++k) {
    if (!defs.is_defined(v.a[k])) {
      reporter.add(Rule::kDefBeforeUse, k,
                   "plan operand a reads " + slot_str(v.a[k]) +
                       " before its definition");
    }
    if (word_op_is_binary(v.op[k]) && !defs.is_defined(v.b[k])) {
      reporter.add(Rule::kDefBeforeUse, k,
                   "plan operand b reads " + slot_str(v.b[k]) +
                       " before its definition");
    }
    std::uint32_t asap = avail[v.a[k]];
    if (word_op_is_binary(v.op[k])) asap = std::max(asap, avail[v.b[k]]);
    level_of[k] = asap;
    if (k > 0 && asap < prev_level) {
      reporter.add(Rule::kLevelOrder, k,
                   "plan op at ASAP level " + std::to_string(asap) +
                       " follows an op at level " +
                       std::to_string(prev_level) +
                       " (plan is not sorted by level)");
    }
    prev_level = std::max(prev_level, asap);
    if (!defs.define(v.dst[k])) {
      reporter.add(Rule::kSsa, k, "plan op redefines " + slot_str(v.dst[k]));
    }
    avail[v.dst[k]] = asap + 1;
  }

  // ---- opcode runs: uniform, level-bounded, maximal ----
  {
    std::vector<std::uint8_t> is_run_begin(n + 1, 0);
    for (const std::uint32_t rb : v.run_begin) is_run_begin[rb] = 1;
    auto level_changes_at = [&level_of](std::size_t k) {
      return k == 0 || level_of[k] != level_of[k - 1];
    };
    for (std::size_t k = 1; k < n && !reporter.full(); ++k) {
      if (level_changes_at(k) && is_run_begin[k] == 0) {
        reporter.add(Rule::kRunPartition, k,
                     "a run crosses the level boundary at plan index " +
                         std::to_string(k));
      }
    }
    for (std::size_t r = 0; r + 1 < v.run_begin.size() && !reporter.full();
         ++r) {
      for (std::uint32_t k = v.run_begin[r] + 1; k < v.run_begin[r + 1]; ++k) {
        if (v.op[k] != v.op[v.run_begin[r]]) {
          reporter.add(Rule::kRunPartition, k,
                       "run " + std::to_string(r) + " mixes opcodes");
          break;
        }
      }
    }
    for (std::size_t r = 1; r + 1 < v.run_begin.size() && !reporter.full();
         ++r) {
      const std::uint32_t k = v.run_begin[r];
      if (!level_changes_at(k) && v.op[k] == v.op[k - 1]) {
        reporter.add(Rule::kRunPartition, k,
                     "adjacent runs share an opcode inside one level (run "
                     "partition is not maximal)");
      }
    }
  }

  // Every slot must be defined: signals feed satisfied()/signal_word
  // lookups and temporaries feed later tree ops, so an undefined slot
  // would read stale scratch.
  for (std::uint32_t s = 0; s < v.n_slots && !reporter.full(); ++s) {
    if (!defs.is_defined(s)) {
      reporter.add(Rule::kSlotLiveness, kWholePlan,
                   slot_str(s) + " is never defined");
    }
  }
}

}  // namespace

const char* rule_name(Rule rule) {
  switch (rule) {
    case Rule::kShape:
      return "shape";
    case Rule::kSlotBounds:
      return "slot-bounds";
    case Rule::kSsa:
      return "ssa";
    case Rule::kDefBeforeUse:
      return "def-before-use";
    case Rule::kLevelOrder:
      return "level-order";
    case Rule::kGroupDisjoint:
      return "group-disjoint";
    case Rule::kRunPartition:
      return "run-partition";
    case Rule::kPermutation:
      return "permutation";
    case Rule::kDeadCode:
      return "dead-code";
    case Rule::kSlotLiveness:
      return "slot-liveness";
  }
  return "unknown";
}

std::string Report::to_string() const {
  if (ok()) return "plan verified: ok";
  std::string out = "plan verification failed (" +
                    std::to_string(diagnostics.size()) + " diagnostic" +
                    (diagnostics.size() == 1 ? "" : "s") +
                    (truncated ? ", truncated" : "") + "):";
  for (const Diagnostic& d : diagnostics) {
    out += "\n  [";
    out += rule_name(d.rule);
    out += "] ";
    if (d.op_index != kWholePlan) {
      out += "op " + std::to_string(d.op_index) + ": ";
    }
    out += d.message;
  }
  return out;
}

ExecPlanView ExecPlanView::of(const prob::CompiledCircuit& compiled) {
  const prob::ExecPlan& plan = compiled.plan();
  ExecPlanView view;
  view.n_slots = compiled.n_slots();
  view.tape = compiled.tape();
  view.op = plan.op;
  view.dst = plan.dst;
  view.a = plan.a;
  view.b = plan.b;
  view.level_begin = plan.level_begin;
  view.group_begin = plan.group_begin;
  view.level_group = plan.level_group;
  view.run_begin = plan.run_begin;
  view.input_slot = compiled.input_slot();
  view.const_slots = compiled.const_slots();
  view.outputs = compiled.outputs();
  return view;
}

EvalPlanView EvalPlanView::of(const circuit::EvalPlan& plan) {
  EvalPlanView view;
  view.n_slots = plan.n_slots();
  view.n_signals = plan.n_signals();
  view.op = plan.ops();
  view.dst = plan.dsts();
  view.a = plan.operand_a();
  view.b = plan.operand_b();
  view.run_begin = plan.run_begin();
  view.inputs = plan.input_signals();
  view.const_slots = plan.const_slots();
  view.outputs = plan.output_constraints();
  return view;
}

Report verify_exec_plan(const ExecPlanView& view, Options options) {
  Reporter reporter(options.max_diagnostics);
  verify_exec_impl(view, options, reporter);
  return reporter.take();
}

Report verify_eval_plan(const EvalPlanView& view, Options options) {
  Reporter reporter(options.max_diagnostics);
  verify_eval_impl(view, reporter);
  return reporter.take();
}

Report verify_exec_plan(const prob::CompiledCircuit& compiled) {
  Options options;
  options.optimized = compiled.options().optimize;
  return verify_exec_plan(ExecPlanView::of(compiled), options);
}

Report verify_eval_plan(const circuit::EvalPlan& plan) {
  return verify_eval_plan(EvalPlanView::of(plan), Options{});
}

namespace {

#ifndef HTS_VERIFY_PLANS_DEFAULT
#define HTS_VERIFY_PLANS_DEFAULT 0
#endif

bool initial_verify_plans() {
  return util::env_int("HTS_VERIFY_PLANS", HTS_VERIFY_PLANS_DEFAULT) != 0;
}

std::atomic<bool>& verify_flag() {
  static std::atomic<bool> flag{initial_verify_plans()};
  return flag;
}

}  // namespace

bool plans_verified() {
  return verify_flag().load(std::memory_order_relaxed);
}

void set_verify_plans(bool on) {
  verify_flag().store(on, std::memory_order_relaxed);
}

}  // namespace hts::verify
