#pragma once

// Plan-IR verifier: proves a compiled tape well-formed before it runs.
//
// Both compiled evaluators hand hot loops a structure-of-arrays plan whose
// soundness the kernels assume rather than check: the engine's float tape
// (prob::ExecPlan) chunks its backward sweep along group boundaries on the
// promise that groups never share an operand slot, and the word evaluator
// (circuit::EvalPlan) streams whole same-opcode runs through one kernel on
// the promise that a run never mixes opcodes or crosses a level.  A bug in
// levelization, grouping, or any optimizer rewrite would not crash — it
// would silently mis-evaluate, and the sampler would harvest garbage that
// only a downstream differential test might catch.  This module makes the
// promises checkable: every structural invariant the executors rely on is
// restated here as an independent rule over the finished plan, implemented
// against the *specification* (exact ASAP levels, maximal runs, operand
// disjointness) rather than by re-running the construction code.
//
// Rules, in the order they are checked:
//   kShape        parallel arrays agree in length; level/group/run boundary
//                 arrays are monotone partitions of [0, n_ops); the group
//                 partition refines the level partition; unary plan entries
//                 mirror operand `a` into `b` (kernels load both).
//   kSlotBounds   every slot index (tape, plan, inputs, constants, outputs)
//                 lies inside [0, n_slots).
//   kSsa          each slot is defined exactly once (base definitions —
//                 inputs and constants — included); checked over the tape
//                 and over the plan order independently.
//   kDefBeforeUse an op's operands are defined by earlier ops (or are base
//                 slots); checked over both orders, so the plan order is
//                 itself a topological order.
//   kLevelOrder   the published level of every plan op equals its exact
//                 ASAP level (one past the highest operand level, base
//                 slots below level 0) — a swapped or padded levelization
//                 cannot hide.
//   kGroupDisjoint within a level, no two backward groups read or write a
//                 common slot (the race-freedom contract of the chunked
//                 backward sweep).
//   kRunPartition runs are uniform in opcode, never cross a level boundary,
//                 and are maximal (adjacent runs in one level differ in
//                 opcode).
//   kPermutation  the plan executes exactly the tape's multiset of ops — a
//                 bijection matched through the (SSA-unique) dst slot.
//   kDeadCode     optimized tapes only: every op reaches an output through
//                 the use-def chain (DCE left nothing dead behind).
//   kSlotLiveness every slot is defined by an input, a constant, or an op;
//                 optimized tapes additionally prove every slot live, so
//                 the liveness renumbering compacted correctly.
//
// Failures come back as structured Diagnostics (rule, op index, message) in
// a Report; nothing throws and nothing aborts, so callers choose the
// policy.  The compile-time hooks (CompiledCircuit / EvalPlan constructors)
// treat a non-empty report as a fatal invariant violation via HTS_CHECK;
// they are compiled in unconditionally and gated by the runtime switch
// below (CMake option HTS_VERIFY_PLANS picks the build default, the
// HTS_VERIFY_PLANS environment variable overrides it at process start).
//
// The *_view entry points verify raw arrays with no construction-path
// coupling: tests mutate a healthy plan's arrays directly and assert the
// verifier pins the exact rule broken.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "circuit/eval_plan.hpp"
#include "prob/compiled.hpp"

namespace hts::verify {

enum class Rule : std::uint8_t {
  kShape,
  kSlotBounds,
  kSsa,
  kDefBeforeUse,
  kLevelOrder,
  kGroupDisjoint,
  kRunPartition,
  kPermutation,
  kDeadCode,
  kSlotLiveness,
};

[[nodiscard]] const char* rule_name(Rule rule);

/// Marks a diagnostic that concerns the plan as a whole rather than one op.
inline constexpr std::size_t kWholePlan = static_cast<std::size_t>(-1);

struct Diagnostic {
  Rule rule;
  /// Index of the offending op — a plan position for plan-order rules, a
  /// tape index for tape-order rules (the message says which) — or
  /// kWholePlan for whole-plan findings (shape, slot liveness).
  std::size_t op_index = kWholePlan;
  std::string message;
};

struct Report {
  std::vector<Diagnostic> diagnostics;
  /// True when max_diagnostics stopped the scan early (the plan may hold
  /// more violations than reported).
  bool truncated = false;

  [[nodiscard]] bool ok() const { return diagnostics.empty(); }
  /// Human-readable rendering, one "rule@op: message" line per diagnostic.
  [[nodiscard]] std::string to_string() const;
};

struct Options {
  /// Enables the rules that only hold after the optimizer ran (kDeadCode,
  /// the liveness half of kSlotLiveness): a raw tape legitimately carries
  /// ops that reach no output.
  bool optimized = false;
  /// Diagnostic cap; scanning stops once reached (Report::truncated).
  std::size_t max_diagnostics = 16;
};

// ---- raw-array views ------------------------------------------------------
// Decoupled from the owning objects so tests can verify deliberately
// corrupted copies.  Spans alias caller storage; the caller keeps it alive
// across the verify call.

struct ExecPlanView {
  std::size_t n_slots = 0;
  std::span<const prob::TapeOp> tape;
  // Plan arrays (ExecPlan members, same order and meaning).
  std::span<const prob::OpCode> op;
  std::span<const std::uint32_t> dst;
  std::span<const std::uint32_t> a;
  std::span<const std::uint32_t> b;
  std::span<const std::uint32_t> level_begin;
  std::span<const std::uint32_t> group_begin;
  std::span<const std::uint32_t> level_group;
  std::span<const std::uint32_t> run_begin;
  // Base definitions and roots.
  std::span<const std::int32_t> input_slot;  // kNoSlot entries are skipped
  std::span<const prob::CompiledCircuit::ConstSlot> const_slots;
  std::span<const prob::CompiledCircuit::Output> outputs;

  [[nodiscard]] static ExecPlanView of(const prob::CompiledCircuit& compiled);
};

struct EvalPlanView {
  std::size_t n_slots = 0;
  std::size_t n_signals = 0;
  std::span<const circuit::WordOp> op;
  std::span<const std::uint32_t> dst;
  std::span<const std::uint32_t> a;
  std::span<const std::uint32_t> b;
  std::span<const std::uint32_t> run_begin;
  std::span<const circuit::SignalId> inputs;
  std::span<const circuit::EvalPlan::ConstSlot> const_slots;
  std::span<const circuit::OutputConstraint> outputs;

  [[nodiscard]] static EvalPlanView of(const circuit::EvalPlan& plan);
};

// ---- entry points ---------------------------------------------------------

[[nodiscard]] Report verify_exec_plan(const ExecPlanView& view,
                                      Options options);
[[nodiscard]] Report verify_eval_plan(const EvalPlanView& view,
                                      Options options = {});

/// Convenience overload; Options::optimized follows the circuit's own
/// compile options.
[[nodiscard]] Report verify_exec_plan(const prob::CompiledCircuit& compiled);
[[nodiscard]] Report verify_eval_plan(const circuit::EvalPlan& plan);

// ---- runtime switch -------------------------------------------------------

/// Whether the constructor hooks verify every plan as it is built.  The
/// process-start default is the HTS_VERIFY_PLANS_DEFAULT compile definition
/// (CMake option HTS_VERIFY_PLANS: ON in Debug, OFF otherwise), overridden
/// by a non-zero/zero HTS_VERIFY_PLANS environment variable — so one Debug
/// build can be timed with and without verification.
[[nodiscard]] bool plans_verified();

/// Flips the constructor hooks at runtime (tests use this to exercise both
/// paths in one binary).
void set_verify_plans(bool on);

}  // namespace hts::verify
