#include "verilog/verilog.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

namespace hts::verilog {

namespace {

using circuit::GateType;
using circuit::SignalId;

// --- lexer -------------------------------------------------------------------

enum class TokKind : std::uint8_t {
  kIdent,
  kPunct,   // ( ) , ; =
  kConst0,  // 1'b0
  kConst1,  // 1'b1
  kOp,      // ~ & | ^
  kEnd,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
  std::size_t line = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) { advance(); }

  [[nodiscard]] const Token& peek() const { return current_; }

  Token take() {
    Token t = current_;
    advance();
    return t;
  }

  [[nodiscard]] std::size_t line() const { return line_; }

 private:
  void advance() {
    skip_space_and_comments();
    current_.line = line_;
    if (pos_ >= text_.size()) {
      current_ = Token{TokKind::kEnd, "", line_};
      return;
    }
    const char c = text_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_' || c == '\\') {
      std::size_t begin = pos_;
      if (c == '\\') {
        // Escaped identifier: up to whitespace.
        ++pos_;
        begin = pos_;
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])) == 0) {
          ++pos_;
        }
      } else {
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) != 0 ||
                text_[pos_] == '_' || text_[pos_] == '$')) {
          ++pos_;
        }
      }
      current_ = Token{TokKind::kIdent, text_.substr(begin, pos_ - begin), line_};
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      // Only the 1'b0 / 1'b1 literals are meaningful here.
      const std::size_t begin = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) != 0 ||
              text_[pos_] == '\'')) {
        ++pos_;
      }
      const std::string lit = text_.substr(begin, pos_ - begin);
      if (lit == "1'b0") {
        current_ = Token{TokKind::kConst0, lit, line_};
      } else if (lit == "1'b1") {
        current_ = Token{TokKind::kConst1, lit, line_};
      } else {
        throw ParseError("unsupported literal '" + lit + "'", line_);
      }
      return;
    }
    ++pos_;
    switch (c) {
      case '(': case ')': case ',': case ';': case '=':
        current_ = Token{TokKind::kPunct, std::string(1, c), line_};
        return;
      case '~': case '&': case '|': case '^':
        current_ = Token{TokKind::kOp, std::string(1, c), line_};
        return;
      default:
        throw ParseError(std::string("unexpected character '") + c + "'", line_);
    }
  }

  void skip_space_and_comments() {
    for (;;) {
      while (pos_ < text_.size() &&
             std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
        if (text_[pos_] == '\n') ++line_;
        ++pos_;
      }
      if (pos_ + 1 < text_.size() && text_[pos_] == '/' && text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
        continue;
      }
      if (pos_ + 1 < text_.size() && text_[pos_] == '/' && text_[pos_ + 1] == '*') {
        pos_ += 2;
        while (pos_ + 1 < text_.size() &&
               !(text_[pos_] == '*' && text_[pos_ + 1] == '/')) {
          if (text_[pos_] == '\n') ++line_;
          ++pos_;
        }
        if (pos_ + 1 >= text_.size()) throw ParseError("unterminated comment", line_);
        pos_ += 2;
        continue;
      }
      return;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  Token current_;
};

// --- parser ------------------------------------------------------------------

const std::unordered_map<std::string, GateType> kGatePrimitives = {
    {"and", GateType::kAnd},   {"or", GateType::kOr},
    {"nand", GateType::kNand}, {"nor", GateType::kNor},
    {"xor", GateType::kXor},   {"xnor", GateType::kXnor},
    {"not", GateType::kNot},   {"buf", GateType::kBuf},
};

class Parser {
 public:
  explicit Parser(const std::string& text) : lex_(text) {}

  Module parse() {
    expect_ident("module");
    module_.name = expect(TokKind::kIdent).text;
    expect_punct("(");
    // Port list: names only (direction comes from the declarations).
    if (!is_punct(")")) {
      for (;;) {
        port_order_.push_back(expect(TokKind::kIdent).text);
        if (is_punct(")")) break;
        expect_punct(",");
      }
    }
    expect_punct(")");
    expect_punct(";");

    // Body: declarations first (any order), then gates / assigns.
    for (;;) {
      const Token t = lex_.peek();
      if (t.kind == TokKind::kEnd) throw ParseError("missing endmodule", t.line);
      if (t.kind != TokKind::kIdent) {
        throw ParseError("expected statement, got '" + t.text + "'", t.line);
      }
      if (t.text == "endmodule") {
        lex_.take();
        break;
      }
      if (t.text == "input") {
        parse_decl(Decl::kInput);
      } else if (t.text == "output") {
        parse_decl(Decl::kOutput);
      } else if (t.text == "wire") {
        parse_decl(Decl::kWire);
      } else if (t.text == "assign") {
        parse_assign();
      } else if (kGatePrimitives.contains(t.text)) {
        parse_gate();
      } else {
        throw ParseError("unsupported construct '" + t.text + "'", t.line);
      }
    }
    finish();
    return std::move(module_);
  }

 private:
  enum class Decl : std::uint8_t { kInput, kOutput, kWire };

  void parse_decl(Decl decl) {
    lex_.take();  // keyword
    for (;;) {
      const Token name = expect(TokKind::kIdent);
      declare(name.text, decl, name.line);
      if (is_punct(";")) break;
      expect_punct(",");
    }
    expect_punct(";");
  }

  void declare(const std::string& name, Decl decl, std::size_t line) {
    if (decl_.contains(name)) throw ParseError("duplicate net '" + name + "'", line);
    decl_[name] = decl;
    if (decl == Decl::kInput) {
      const SignalId s = module_.circuit.add_input(name);
      module_.net[name] = s;
      module_.input_names.push_back(name);
    }
    if (decl == Decl::kOutput) output_decl_order_.push_back(name);
  }

  /// Resolves a net that must already carry a value (gate/assign operand).
  SignalId use(const std::string& name, std::size_t line) {
    const auto it = module_.net.find(name);
    if (it == module_.net.end()) {
      if (!decl_.contains(name)) {
        throw ParseError("use of undeclared net '" + name + "'", line);
      }
      throw ParseError("net '" + name + "' used before it is driven "
                       "(declare gates in topological order)",
                       line);
    }
    return it->second;
  }

  void drive(const std::string& name, SignalId signal, std::size_t line) {
    if (!decl_.contains(name)) {
      throw ParseError("assignment to undeclared net '" + name + "'", line);
    }
    if (decl_[name] == Decl::kInput) {
      throw ParseError("cannot drive input port '" + name + "'", line);
    }
    if (module_.net.contains(name)) {
      throw ParseError("net '" + name + "' driven twice", line);
    }
    module_.net[name] = signal;
    module_.circuit.set_name(signal, name);
  }

  void parse_gate() {
    const Token keyword = lex_.take();
    const GateType type = kGatePrimitives.at(keyword.text);
    // Optional instance name.
    if (lex_.peek().kind == TokKind::kIdent) lex_.take();
    expect_punct("(");
    const Token out = expect(TokKind::kIdent);
    std::vector<SignalId> fanins;
    while (is_punct(",")) {
      expect_punct(",");
      const Token in = expect(TokKind::kIdent);
      fanins.push_back(use(in.text, in.line));
    }
    expect_punct(")");
    expect_punct(";");
    if (fanins.empty()) {
      throw ParseError("gate '" + keyword.text + "' needs at least one input",
                       keyword.line);
    }
    if ((type == GateType::kNot || type == GateType::kBuf) && fanins.size() != 1) {
      throw ParseError(keyword.text + " takes exactly one input", keyword.line);
    }
    drive(out.text, module_.circuit.add_gate(type, std::move(fanins)), out.line);
  }

  // assign LHS = expr;  with precedence  ~  >  &  >  ^  >  |
  void parse_assign() {
    lex_.take();  // 'assign'
    const Token lhs = expect(TokKind::kIdent);
    expect_punct("=");
    const SignalId value = parse_or();
    expect_punct(";");
    // The expression may alias an existing signal (e.g. assign y = a;):
    // insert a BUF so the named net has a dedicated driver.
    drive(lhs.text, module_.circuit.add_gate(GateType::kBuf, {value}), lhs.line);
  }

  SignalId parse_or() {
    SignalId left = parse_xor();
    while (is_op("|")) {
      lex_.take();
      const SignalId right = parse_xor();
      left = module_.circuit.add_gate(GateType::kOr, {left, right});
    }
    return left;
  }

  SignalId parse_xor() {
    SignalId left = parse_and();
    while (is_op("^")) {
      lex_.take();
      const SignalId right = parse_and();
      left = module_.circuit.add_gate(GateType::kXor, {left, right});
    }
    return left;
  }

  SignalId parse_and() {
    SignalId left = parse_unary();
    while (is_op("&")) {
      lex_.take();
      const SignalId right = parse_unary();
      left = module_.circuit.add_gate(GateType::kAnd, {left, right});
    }
    return left;
  }

  SignalId parse_unary() {
    if (is_op("~")) {
      lex_.take();
      return module_.circuit.add_gate(GateType::kNot, {parse_unary()});
    }
    const Token t = lex_.take();
    if (t.kind == TokKind::kConst0) return module_.circuit.add_const(false);
    if (t.kind == TokKind::kConst1) return module_.circuit.add_const(true);
    if (t.kind == TokKind::kPunct && t.text == "(") {
      const SignalId inner = parse_or();
      expect_punct(")");
      return inner;
    }
    if (t.kind == TokKind::kIdent) return use(t.text, t.line);
    throw ParseError("expected operand, got '" + t.text + "'", t.line);
  }

  void finish() {
    // Ports must be declared; outputs must be driven.
    for (const std::string& port : port_order_) {
      if (!decl_.contains(port)) {
        throw ParseError("port '" + port + "' never declared", lex_.line());
      }
    }
    for (const std::string& name : output_decl_order_) {
      const auto it = module_.net.find(name);
      if (it == module_.net.end()) {
        throw ParseError("output '" + name + "' is never driven", lex_.line());
      }
      module_.output_ports.push_back(it->second);
      module_.output_names.push_back(name);
    }
  }

  // --- token helpers ---------------------------------------------------------

  Token expect(TokKind kind) {
    const Token t = lex_.take();
    if (t.kind != kind) throw ParseError("unexpected token '" + t.text + "'", t.line);
    return t;
  }

  void expect_punct(const std::string& p) {
    const Token t = lex_.take();
    if (t.kind != TokKind::kPunct || t.text != p) {
      throw ParseError("expected '" + p + "', got '" + t.text + "'", t.line);
    }
  }

  void expect_ident(const std::string& word) {
    const Token t = lex_.take();
    if (t.kind != TokKind::kIdent || t.text != word) {
      throw ParseError("expected '" + word + "', got '" + t.text + "'", t.line);
    }
  }

  [[nodiscard]] bool is_punct(const std::string& p) const {
    return lex_.peek().kind == TokKind::kPunct && lex_.peek().text == p;
  }

  [[nodiscard]] bool is_op(const std::string& op) const {
    return lex_.peek().kind == TokKind::kOp && lex_.peek().text == op;
  }

  Lexer lex_;
  Module module_;
  std::unordered_map<std::string, Decl> decl_;
  std::vector<std::string> port_order_;
  std::vector<std::string> output_decl_order_;
};

}  // namespace

Module parse_module(const std::string& text) { return Parser(text).parse(); }

Module parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open verilog file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_module(buffer.str());
}

std::string write_module(const circuit::Circuit& circuit,
                         const std::string& module_name) {
  using circuit::GateType;
  std::ostringstream out;
  auto net_name = [&](SignalId s) {
    const std::string& given = circuit.name(s);
    if (!given.empty()) {
      // Names may hold alias lists ("x2,x3"); take the first.
      const auto comma = given.find(',');
      return comma == std::string::npos ? given : given.substr(0, comma);
    }
    return "n" + std::to_string(s);
  };

  std::vector<SignalId> outputs;
  for (const auto& constraint : circuit.outputs()) outputs.push_back(constraint.signal);

  out << "module " << module_name << " (";
  bool first = true;
  for (const SignalId s : circuit.inputs()) {
    if (!first) out << ", ";
    first = false;
    out << net_name(s);
  }
  for (const SignalId s : outputs) {
    if (!first) out << ", ";
    first = false;
    out << net_name(s);
  }
  out << ");\n";

  for (const SignalId s : circuit.inputs()) out << "  input " << net_name(s) << ";\n";
  for (const SignalId s : outputs) out << "  output " << net_name(s) << ";\n";
  for (SignalId s = 0; s < circuit.n_signals(); ++s) {
    const GateType type = circuit.gate(s).type;
    if (type == GateType::kInput) continue;
    bool is_output = false;
    for (const SignalId o : outputs) is_output |= o == s;
    if (!is_output) out << "  wire " << net_name(s) << ";\n";
  }

  for (SignalId s = 0; s < circuit.n_signals(); ++s) {
    const circuit::Gate& gate = circuit.gate(s);
    const char* primitive = nullptr;
    switch (gate.type) {
      case GateType::kInput:
        continue;
      case GateType::kConst0:
        out << "  assign " << net_name(s) << " = 1'b0;\n";
        continue;
      case GateType::kConst1:
        out << "  assign " << net_name(s) << " = 1'b1;\n";
        continue;
      case GateType::kBuf:
        primitive = "buf";
        break;
      case GateType::kNot:
        primitive = "not";
        break;
      case GateType::kAnd:
        primitive = "and";
        break;
      case GateType::kOr:
        primitive = "or";
        break;
      case GateType::kXor:
        primitive = "xor";
        break;
      case GateType::kNand:
        primitive = "nand";
        break;
      case GateType::kNor:
        primitive = "nor";
        break;
      case GateType::kXnor:
        primitive = "xnor";
        break;
    }
    out << "  " << primitive << " g" << s << " (" << net_name(s);
    for (const SignalId fanin : gate.fanins) out << ", " << net_name(fanin);
    out << ");\n";
  }

  if (!circuit.outputs().empty()) {
    out << "  // output constraints (sampling targets):\n";
    for (const auto& constraint : circuit.outputs()) {
      out << "  //   " << net_name(constraint.signal) << " == "
          << (constraint.target ? 1 : 0) << "\n";
    }
  }
  out << "endmodule\n";
  return out.str();
}

}  // namespace hts::verilog
