#pragma once

// Structural Verilog frontend/backend for the circuit IR.
//
// The paper's CRV motivation (and its DEMOTIC sibling) starts from design
// constraints written in HDL; this module lets users hand such netlists
// directly to the samplers, skipping CNF entirely, or dump extracted
// circuits for inspection in standard tools.
//
// Supported subset (gate-level structural Verilog):
//   module NAME (port, ...);
//     input a, b;  output y;  wire w1, w2;
//     and  g1 (y, a, b);           // first terminal = output
//     or / nand / nor / xor / xnor / not / buf
//     assign w = expr;             // ~ & | ^ parentheses, 1'b0 / 1'b1
//   endmodule
//
// Everything else (behavioural blocks, vectors, parameters) is rejected
// with a position-tagged error.

#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "circuit/circuit.hpp"

namespace hts::verilog {

class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& message, std::size_t line)
      : std::runtime_error("verilog line " + std::to_string(line) + ": " + message),
        line_(line) {}
  [[nodiscard]] std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

struct Module {
  std::string name;
  circuit::Circuit circuit;
  /// Declared output ports in declaration order (not yet constrained —
  /// callers add_output with their chosen targets).
  std::vector<circuit::SignalId> output_ports;
  std::vector<std::string> output_names;
  /// Input ports in declaration order (== circuit.inputs()).
  std::vector<std::string> input_names;
  /// name -> signal for every named net.
  std::unordered_map<std::string, circuit::SignalId> net;
};

/// Parses one module.  Throws ParseError on malformed or unsupported input.
[[nodiscard]] Module parse_module(const std::string& text);

/// Reads a .v file from disk.
[[nodiscard]] Module parse_file(const std::string& path);

/// Emits a circuit as a structural Verilog module.  Output constraints are
/// emitted as a comment block (Verilog has no native way to say "must be 1").
[[nodiscard]] std::string write_module(const circuit::Circuit& circuit,
                                       const std::string& module_name);

}  // namespace hts::verilog
