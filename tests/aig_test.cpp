// Tests for the AIG: strashing laws, CSE across gate types, round-trip
// equivalence of optimize_with_aig (randomized sweeps), signal-map fidelity,
// and op-count reductions on redundant circuits.

#include <gtest/gtest.h>

#include "aig/aig.hpp"
#include "util/rng.hpp"

namespace hts::aig {
namespace {

using circuit::Circuit;
using circuit::GateType;
using circuit::SignalId;

TEST(Aig, ConstantsAndTrivialRules) {
  Aig aig;
  const Lit a = aig.add_input();
  EXPECT_EQ(aig.land(a, kLitFalse), kLitFalse);
  EXPECT_EQ(aig.land(a, kLitTrue), a);
  EXPECT_EQ(aig.land(a, a), a);
  EXPECT_EQ(aig.land(a, lit_not(a)), kLitFalse);
  EXPECT_EQ(aig.n_ands(), 0u);
}

TEST(Aig, StrashingDeduplicates) {
  Aig aig;
  const Lit a = aig.add_input();
  const Lit b = aig.add_input();
  const Lit ab1 = aig.land(a, b);
  const Lit ab2 = aig.land(b, a);  // commuted
  EXPECT_EQ(ab1, ab2);
  EXPECT_EQ(aig.n_ands(), 1u);
}

TEST(Aig, DerivedOpsSemantics) {
  Aig aig;
  const Lit a = aig.add_input();
  const Lit b = aig.add_input();
  const Lit o = aig.lor(a, b);
  const Lit x = aig.lxor(a, b);
  for (int bits = 0; bits < 4; ++bits) {
    const std::vector<std::uint8_t> in{static_cast<std::uint8_t>(bits & 1),
                                       static_cast<std::uint8_t>((bits >> 1) & 1)};
    EXPECT_EQ(aig.eval(o, in), (in[0] != 0) || (in[1] != 0));
    EXPECT_EQ(aig.eval(x, in), (in[0] != 0) != (in[1] != 0));
    EXPECT_EQ(aig.eval(lit_not(o), in), !((in[0] != 0) || (in[1] != 0)));
  }
}

TEST(AigOptimize, RemovesDuplicateLogic) {
  // Two structurally identical AND cones: after strashing, one survives.
  Circuit c;
  const SignalId a = c.add_input();
  const SignalId b = c.add_input();
  const SignalId g1 = c.add_gate(GateType::kAnd, {a, b});
  const SignalId g2 = c.add_gate(GateType::kAnd, {a, b});  // duplicate
  const SignalId o = c.add_gate(GateType::kOr, {g1, g2});  // or(x, x) = x
  c.add_output(o, true);
  const OptimizeResult result = optimize_with_aig(c);
  EXPECT_EQ(result.ands_after, 1u);
  EXPECT_LT(result.ands_after, result.ands_before);
  // Same logic: output satisfied iff a & b.
  for (int bits = 0; bits < 4; ++bits) {
    const std::vector<std::uint8_t> in{static_cast<std::uint8_t>(bits & 1),
                                       static_cast<std::uint8_t>((bits >> 1) & 1)};
    EXPECT_EQ(result.circuit.outputs_satisfied(result.circuit.eval(in)),
              (in[0] != 0) && (in[1] != 0));
  }
}

TEST(AigOptimize, FoldsConstantsAndDoubleNegation) {
  Circuit c;
  const SignalId a = c.add_input();
  const SignalId k1 = c.add_const(true);
  const SignalId n1 = c.add_gate(GateType::kNot, {a});
  const SignalId n2 = c.add_gate(GateType::kNot, {n1});  // == a
  const SignalId g = c.add_gate(GateType::kAnd, {n2, k1});  // == a
  c.add_output(g, true);
  const OptimizeResult result = optimize_with_aig(c);
  EXPECT_EQ(result.ands_after, 0u);  // whole circuit collapses to the input
  EXPECT_EQ(result.circuit.eval({1})[result.signal_map[g]], 1);
  EXPECT_EQ(result.circuit.eval({0})[result.signal_map[g]], 0);
}

TEST(AigOptimize, SignalMapCoversEverySignal) {
  Circuit c;
  const SignalId a = c.add_input();
  const SignalId b = c.add_input();
  const SignalId x = c.add_gate(GateType::kXor, {a, b});
  const SignalId n = c.add_gate(GateType::kNor, {a, x});
  c.add_output(n, false);
  const OptimizeResult result = optimize_with_aig(c);
  ASSERT_EQ(result.signal_map.size(), c.n_signals());
  for (int bits = 0; bits < 4; ++bits) {
    const std::vector<std::uint8_t> in{static_cast<std::uint8_t>(bits & 1),
                                       static_cast<std::uint8_t>((bits >> 1) & 1)};
    const auto old_values = c.eval(in);
    const auto new_values = result.circuit.eval(in);
    for (SignalId s = 0; s < c.n_signals(); ++s) {
      EXPECT_EQ(old_values[s], new_values[result.signal_map[s]])
          << "signal " << s << " bits " << bits;
    }
  }
}

class AigRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(AigRoundTrip, RandomCircuitsStayEquivalent) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761u + 13);
  Circuit c;
  const std::size_t n_in = 3 + rng.next_below(4);
  for (std::size_t i = 0; i < n_in; ++i) c.add_input();
  const int n_gates = 5 + static_cast<int>(rng.next_below(15));
  for (int g = 0; g < n_gates; ++g) {
    const auto pick = [&] {
      return static_cast<SignalId>(rng.next_below(c.n_signals()));
    };
    const SignalId a = pick();
    SignalId b = pick();
    const GateType types[8] = {GateType::kAnd, GateType::kOr,  GateType::kXor,
                               GateType::kNand, GateType::kNor, GateType::kXnor,
                               GateType::kNot, GateType::kBuf};
    const GateType type = types[rng.next_below(8)];
    if (type == GateType::kNot || type == GateType::kBuf) {
      c.add_gate(type, {a});
    } else if (a == b) {
      c.add_gate(GateType::kNot, {a});
    } else {
      c.add_gate(type, {a, b});
    }
  }
  c.add_output(static_cast<SignalId>(c.n_signals() - 1), rng.next_bool());
  c.add_output(static_cast<SignalId>(c.n_signals() / 2), rng.next_bool());

  const OptimizeResult result = optimize_with_aig(c);
  // Exhaustive equivalence over all inputs (<= 2^6).
  std::vector<std::uint8_t> in(n_in);
  for (std::uint64_t bits = 0; bits < (1ULL << n_in); ++bits) {
    for (std::size_t i = 0; i < n_in; ++i) {
      in[i] = static_cast<std::uint8_t>((bits >> i) & 1);
    }
    const auto old_values = c.eval(in);
    const auto new_values = result.circuit.eval(in);
    ASSERT_EQ(c.outputs_satisfied(old_values),
              result.circuit.outputs_satisfied(new_values))
        << "bits " << bits;
    for (SignalId s = 0; s < c.n_signals(); ++s) {
      ASSERT_EQ(old_values[s], new_values[result.signal_map[s]])
          << "signal " << s << " bits " << bits;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, AigRoundTrip, ::testing::Range(0, 25));

}  // namespace
}  // namespace hts::aig
