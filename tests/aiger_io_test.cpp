// Tests for AIGER I/O: write/parse round trips (randomized), header and
// structural validation, symbol tables, constant folding across the format
// boundary, and error reporting.

#include <gtest/gtest.h>

#include "aig/aiger_io.hpp"
#include "util/rng.hpp"

namespace hts::aig {
namespace {

TEST(AigerIo, WritesCanonicalHeader) {
  Aig aig;
  const Lit a = aig.add_input();
  const Lit b = aig.add_input();
  const Lit g = aig.land(a, b);
  const std::string text = write_aiger(aig, {g});
  EXPECT_EQ(text.rfind("aag 3 2 0 1 1", 0), 0u) << text;
}

TEST(AigerIo, ParseRejectsGarbage) {
  EXPECT_THROW((void)parse_aiger("not an aiger file"), AigerError);
  EXPECT_THROW((void)parse_aiger("aig 1 1 0 0 0\n2\n"), AigerError);  // binary
  EXPECT_THROW((void)parse_aiger("aag 2 1 1 0 0\n2\n4 0\n"), AigerError);  // latch
  EXPECT_THROW((void)parse_aiger("aag 1 1 0 0 0\n3\n"), AigerError);  // odd input
}

TEST(AigerIo, ParseRejectsForwardReference) {
  // AND 1 (var 2) references var 3 before definition.
  EXPECT_THROW((void)parse_aiger("aag 3 1 0 1 2\n2\n4\n4 6 2\n6 2 2\n"), AigerError);
}

TEST(AigerIo, SymbolTableRoundTrip) {
  Aig aig;
  const Lit a = aig.add_input();
  const Lit b = aig.add_input();
  const Lit g = aig.lor(a, b);
  const std::string text = write_aiger(aig, {g}, {"req", "ack"}, {"grant"});
  const AigerModule module = parse_aiger(text);
  ASSERT_EQ(module.input_names.size(), 2u);
  EXPECT_EQ(module.input_names[0], "req");
  EXPECT_EQ(module.input_names[1], "ack");
  ASSERT_EQ(module.output_names.size(), 1u);
  EXPECT_EQ(module.output_names[0], "grant");
}

TEST(AigerIo, ConstantOutputsSurvive) {
  Aig aig;
  const Lit a = aig.add_input();
  const std::string text = write_aiger(aig, {kLitTrue, kLitFalse, lit_not(a)});
  const AigerModule module = parse_aiger(text);
  ASSERT_EQ(module.outputs.size(), 3u);
  EXPECT_EQ(module.outputs[0], kLitTrue);
  EXPECT_EQ(module.outputs[1], kLitFalse);
  EXPECT_TRUE(module.aig.eval(module.outputs[2], {0}));
  EXPECT_FALSE(module.aig.eval(module.outputs[2], {1}));
}

class AigerRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(AigerRoundTrip, RandomAigsPreserveSemantics) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 779 + 5);
  Aig aig;
  std::vector<Lit> pool;
  const std::size_t n_in = 3 + rng.next_below(4);
  for (std::size_t i = 0; i < n_in; ++i) pool.push_back(aig.add_input());
  for (int step = 0; step < 15; ++step) {
    Lit x = pool[rng.next_below(pool.size())];
    Lit y = pool[rng.next_below(pool.size())];
    if (rng.next_bool()) x = lit_not(x);
    if (rng.next_bool()) y = lit_not(y);
    switch (rng.next_below(3)) {
      case 0:
        pool.push_back(aig.land(x, y));
        break;
      case 1:
        pool.push_back(aig.lor(x, y));
        break;
      default:
        pool.push_back(aig.lxor(x, y));
        break;
    }
  }
  std::vector<Lit> outputs{pool.back(), lit_not(pool[pool.size() / 2])};
  const std::string text = write_aiger(aig, outputs);
  const AigerModule module = parse_aiger(text);
  ASSERT_EQ(module.aig.n_inputs(), n_in);
  ASSERT_EQ(module.outputs.size(), outputs.size());

  std::vector<std::uint8_t> in(n_in);
  for (std::uint64_t bits = 0; bits < (1ULL << n_in); ++bits) {
    for (std::size_t i = 0; i < n_in; ++i) {
      in[i] = static_cast<std::uint8_t>((bits >> i) & 1);
    }
    for (std::size_t o = 0; o < outputs.size(); ++o) {
      ASSERT_EQ(module.aig.eval(module.outputs[o], in), aig.eval(outputs[o], in))
          << "bits " << bits << " output " << o;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, AigerRoundTrip, ::testing::Range(0, 15));

TEST(AigerIo, OptimizedCircuitExportsCleanly) {
  // End-to-end: transform-style circuit -> AIG -> AIGER text -> parse.
  circuit::Circuit c;
  const auto a = c.add_input("a");
  const auto b = c.add_input("b");
  const auto x = c.add_gate(circuit::GateType::kXor, {a, b});
  const auto n = c.add_gate(circuit::GateType::kNand, {x, a});
  c.add_output(n, true);
  const OptimizeResult opt = optimize_with_aig(c);

  // Rebuild an AIG from the optimized circuit for export.
  Aig aig;
  std::vector<Lit> lits(opt.circuit.n_signals(), kLitFalse);
  for (const auto input : opt.circuit.inputs()) lits[input] = aig.add_input();
  for (circuit::SignalId s = 0; s < opt.circuit.n_signals(); ++s) {
    const auto& gate = opt.circuit.gate(s);
    using circuit::GateType;
    if (gate.type == GateType::kAnd) {
      lits[s] = aig.land(lits[gate.fanins[0]], lits[gate.fanins[1]]);
    } else if (gate.type == GateType::kNot) {
      lits[s] = lit_not(lits[gate.fanins[0]]);
    } else if (gate.type == GateType::kConst0) {
      lits[s] = kLitFalse;
    }
  }
  const auto target = opt.circuit.outputs()[0].signal;
  const std::string text = write_aiger(aig, {lits[target]});
  const AigerModule module = parse_aiger(text);
  for (int bits = 0; bits < 4; ++bits) {
    const std::vector<std::uint8_t> in{static_cast<std::uint8_t>(bits & 1),
                                       static_cast<std::uint8_t>((bits >> 1) & 1)};
    const auto values = c.eval(in);
    EXPECT_EQ(module.aig.eval(module.outputs[0], in), values[n] != 0) << bits;
  }
}

}  // namespace
}  // namespace hts::aig
