// Differential and determinism tests for flip amplification
// (core/amplifier.hpp).
//
// - Every solution an amplified run accepts is re-checked against the
//   scalar evaluators (Circuit::eval / eval64) and against the CNF.
// - amplify.enabled = false is bit-identical to the legacy stream, whatever
//   the other amplify knobs say.
// - A fixed-seed amplified stream is a pure function of (formula, seed,
//   config): identical across kernel scheduling policies, across repeated
//   runs, and across service fleet sizes.
// - Repeated amplified collects allocate nothing (operator-new hook), the
//   same bar Harvester::collect meets.
// - The sampling set ('c ind' / per-request) scopes the flip support.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "benchgen/families.hpp"
#include "circuit/circuit.hpp"
#include "cnf/dimacs.hpp"
#include "core/amplifier.hpp"
#include "core/gradient_sampler.hpp"
#include "core/harvester.hpp"
#include "core/unique_bank.hpp"
#include "service/server.hpp"
#include "util/rng.hpp"

// --- global allocation counting hook (see harvest_diff_test.cpp) ------------

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace hts {
namespace {

/// OR of all n inputs constrained true: every assignment except all-zero
/// satisfies, so flips almost always succeed and amplification yields are
/// large and predictable.
circuit::Circuit wide_or_circuit(std::size_t n_inputs) {
  circuit::Circuit c;
  std::vector<circuit::SignalId> inputs;
  inputs.reserve(n_inputs);
  for (std::size_t i = 0; i < n_inputs; ++i) inputs.push_back(c.add_input());
  c.add_output(c.add_gate(circuit::GateType::kOr, std::move(inputs)), true);
  return c;
}

/// Amplification harness over an identity-projected circuit problem: the
/// harvester's projected assignments are exactly the circuit input bits, so
/// every accepted solution can be re-evaluated scalar.
struct IdentityHarness {
  explicit IdentityHarness(const circuit::Circuit& c,
                           sampler::AmplifyConfig amplify = {.enabled = true})
      : circuit(&c), var_signal(c.inputs()), bank(c.n_inputs()) {
    problem.circuit = &c;
    problem.var_signal = &var_signal;
    options.store_limit = 1 << 20;
    config.amplify = amplify;
    harvester.emplace(problem, formula, options, bank, result);
    amplifier.emplace(config, *harvester);
  }

  const circuit::Circuit* circuit;
  std::vector<circuit::SignalId> var_signal;
  sampler::GdProblem problem;
  cnf::Formula formula;  // never consulted: verify_against_cnf defaults off
  sampler::RunOptions options;
  sampler::GdLoopConfig config;
  sampler::RunResult result;
  sampler::UniqueBank bank;
  std::optional<sampler::Harvester<sampler::UniqueBank>> harvester;
  std::optional<sampler::Amplifier<sampler::UniqueBank>> amplifier;
};

std::vector<std::uint64_t> random_words(util::Rng& rng, std::size_t n) {
  std::vector<std::uint64_t> words(n);
  for (std::uint64_t& w : words) w = rng.next_u64();
  return words;
}

// --- every amplified acceptance satisfies the circuit, scalar-checked -------

TEST(Amplifier, AmplifiedSolutionsSatisfyScalarEval) {
  const circuit::Circuit c = wide_or_circuit(20);
  IdentityHarness h(c);

  // One harvested batch seeds the bases; amplify() then runs both waves.
  util::Rng rng(42);
  const std::vector<std::uint64_t> packed = random_words(rng, c.n_inputs());
  h.harvester->collect(packed, 1, 64);
  const std::size_t before_amplify = h.bank.size();
  ASSERT_GT(before_amplify, 0u);
  h.amplifier->amplify();

  EXPECT_GT(h.amplifier->amplified_uniques(), 0u);
  EXPECT_EQ(h.bank.size(), before_amplify + h.amplifier->amplified_uniques());
  // Candidate billing: per base, one single-flip wave over the full support
  // plus a capped pair wave.
  EXPECT_GE(h.amplifier->amplified_candidates(),
            before_amplify * c.n_inputs());

  // Scalar re-check of the *entire* accepted stream (harvested + amplified):
  // both the per-assignment interpreter and the word evaluator must agree
  // that every stored solution satisfies the output constraints.
  ASSERT_EQ(h.result.solutions.size(), h.bank.size());
  for (const cnf::Assignment& solution : h.result.solutions) {
    ASSERT_EQ(solution.size(), c.n_inputs());
    EXPECT_TRUE(c.outputs_satisfied(c.eval(solution)));
    std::vector<std::uint64_t> input_words(c.n_inputs());
    for (std::size_t i = 0; i < solution.size(); ++i) {
      input_words[i] = solution[i] != 0 ? ~0ULL : 0ULL;
    }
    EXPECT_EQ(c.outputs_satisfied64(c.eval64(input_words)), ~0ULL);
  }
}

TEST(Amplifier, PairWaveRespectsCapAndZeroCapSkipsIt) {
  const circuit::Circuit c = wide_or_circuit(16);
  // A base with several set bits keeps nearly every single flip satisfying,
  // so the uncapped pair count would be ~C(16,2) = 120.
  std::vector<std::uint64_t> base = {0xffffULL};

  IdentityHarness capped(c, {.enabled = true, .max_pairs_per_base = 5});
  capped.amplifier->amplify_key(base.data());
  EXPECT_EQ(capped.amplifier->amplified_candidates(), c.n_inputs() + 5);

  IdentityHarness no_pairs(c, {.enabled = true, .max_pairs_per_base = 0});
  no_pairs.amplifier->amplify_key(base.data());
  EXPECT_EQ(no_pairs.amplifier->amplified_candidates(), c.n_inputs());
}

// --- zero allocations on repeated amplified collects ------------------------

TEST(Amplifier, RepeatedAmplifiedCollectsDoNotAllocate) {
  const circuit::Circuit c = wide_or_circuit(24);
  IdentityHarness h(c);
  h.options.store_limit = 0;  // storing solutions may allocate by design

  // Warm: harvest one 64-row batch, amplify its fresh bases (both waves run;
  // all scratch reaches steady-state capacity), then re-amplify one known
  // base so the duplicate path is warm too.
  util::Rng rng(7);
  const std::vector<std::uint64_t> packed = random_words(rng, c.n_inputs());
  h.harvester->collect(packed, 1, 64);
  ASSERT_GT(h.bank.size(), 0u);
  h.amplifier->amplify();
  ASSERT_GT(h.amplifier->amplified_uniques(), 0u);
  const std::vector<std::uint64_t> base = {0x00fff7ULL};
  h.amplifier->amplify_key(base.data());

  // Measured: a full collect + amplify of the same batch (all duplicates)
  // and a re-amplification of the same base must not touch the heap.
  const std::size_t uniques = h.bank.size();
  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  h.harvester->collect(packed, 1, 64);
  h.amplifier->amplify();
  h.amplifier->amplify_key(base.data());
  const std::uint64_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "repeated amplified collect performed heap allocations";
  EXPECT_EQ(h.bank.size(), uniques);
}

// --- sampling set scopes the flip support -----------------------------------

TEST(Amplifier, SupportIsAllInputsWithoutSamplingSet) {
  const circuit::Circuit c = wide_or_circuit(6);
  IdentityHarness h(c);
  const std::vector<std::size_t> expect = {0, 1, 2, 3, 4, 5};
  EXPECT_EQ(h.amplifier->support(), expect);
}

TEST(Amplifier, SamplingSetAndInputVarsScopeSupport) {
  const circuit::Circuit c = wide_or_circuit(5);
  IdentityHarness h(c);
  // Input i carries original variable 10+i, except input 3 which is
  // auxiliary; the sampling set picks variables 10 and 14 plus an absent 99.
  const std::vector<cnf::Var> input_vars = {10, 11, 12, cnf::kInvalidVar, 14};
  const std::vector<cnf::Var> sampling_set = {10, 14, 99};
  sampler::GdProblem scoped = h.problem;
  scoped.input_vars = &input_vars;
  scoped.sampling_set = sampling_set;
  sampler::RunResult result;
  sampler::UniqueBank bank(c.n_inputs());
  sampler::Harvester<sampler::UniqueBank> harvester(scoped, h.formula,
                                                    h.options, bank, result);
  sampler::Amplifier<sampler::UniqueBank> amplifier(h.config, harvester);
  const std::vector<std::size_t> expect = {0, 4};
  EXPECT_EQ(amplifier.support(), expect);
}

TEST(Amplifier, DimacsIndScopesGradientSamplerAmplification) {
  // 6 free variables under one clause; 'c ind' restricts flips to 1..3.
  const cnf::Formula formula = cnf::parse_dimacs_string(
      "c ind 1 2 3 0\np cnf 6 1\n1 2 3 4 5 6 0\n");
  ASSERT_TRUE(formula.has_sampling_set());

  sampler::GradientConfig config;
  config.batch = 64;
  config.max_rounds = 1;
  config.amplify.enabled = true;
  config.amplify.max_pairs_per_base = 0;
  sampler::RunOptions options;
  options.min_solutions = 0;
  options.budget_ms = -1.0;
  options.seed = 5;

  sampler::GradientSampler sampler(config);
  const sampler::RunResult result = sampler.run(formula, options);
  EXPECT_EQ(result.n_invalid, 0u);
  const sampler::GdLoopExtras& extras = sampler.extras();
  ASSERT_GT(extras.amplified_candidates, 0u);
  // Single-flip waves only, over a 3-variable support: candidates must be a
  // multiple of 3 and far below what the full input set would produce.
  EXPECT_EQ(extras.amplified_candidates % 3, 0u);
}

// --- off is bit-identical, on is deterministic ------------------------------

TEST(Amplifier, DisabledIsBitIdenticalWhateverTheOtherKnobsSay) {
  benchgen::GenOptions gen;
  gen.scale = 0.05;
  const auto instance = benchgen::make_instance("75-10-1-q", gen);

  sampler::RunOptions options;
  options.min_solutions = 0;
  options.budget_ms = -1.0;
  options.store_limit = 1 << 20;
  options.seed = 0x90dd;

  sampler::GradientConfig legacy;
  legacy.batch = 256;
  legacy.max_rounds = 2;

  sampler::GradientConfig disabled = legacy;
  disabled.amplify.enabled = false;  // explicit: the off path under test
  disabled.amplify.max_pairs_per_base = 7;
  disabled.amplify.max_bases_per_collect = 3;

  sampler::GradientSampler a(legacy);
  sampler::GradientSampler b(disabled);
  const sampler::RunResult ra = a.run(instance.formula, options);
  const sampler::RunResult rb = b.run(instance.formula, options);
  EXPECT_EQ(ra.n_unique, rb.n_unique);
  EXPECT_EQ(ra.n_valid, rb.n_valid);
  ASSERT_EQ(ra.solutions, rb.solutions);
  EXPECT_EQ(b.extras().amplified_candidates, 0u);
  EXPECT_EQ(b.extras().amplified_uniques, 0u);
}

TEST(Amplifier, AmplifiedStreamIsDeterministicAcrossPoliciesAndReruns) {
  benchgen::GenOptions gen;
  gen.scale = 0.05;
  for (const auto& name : {"or-50-10-7-UC-10", "75-10-1-q"}) {
    const auto instance = benchgen::make_instance(name, gen);
    constexpr tensor::Policy kPolicies[] = {tensor::Policy::kSerial,
                                            tensor::Policy::kDataParallel,
                                            tensor::Policy::kLevelParallel};
    bool have_reference = false;
    sampler::RunResult reference;
    std::uint64_t reference_uniques = 0;
    for (const tensor::Policy policy : kPolicies) {
      for (int rerun = 0; rerun < 2; ++rerun) {
        sampler::GradientConfig config;
        config.batch = 256;
        config.policy = policy;
        config.max_rounds = 2;
        config.amplify.enabled = true;
        config.amplify.max_pairs_per_base = 64;
        sampler::GradientSampler sampler(config);
        sampler::RunOptions options;
        options.min_solutions = 0;
        options.budget_ms = -1.0;
        options.store_limit = 1 << 20;
        options.verify_against_cnf = true;
        options.seed = 0x90dd;
        const sampler::RunResult result =
            sampler.run(instance.formula, options);
        EXPECT_EQ(result.n_invalid, 0u) << name;
        if (!have_reference) {
          have_reference = true;
          reference = result;
          reference_uniques = sampler.extras().amplified_uniques;
          EXPECT_GT(reference_uniques, 0u) << name;
          continue;
        }
        EXPECT_EQ(result.n_unique, reference.n_unique)
            << name << " policy " << tensor::policy_name(policy);
        ASSERT_EQ(result.solutions, reference.solutions)
            << name << " policy " << tensor::policy_name(policy);
        EXPECT_EQ(sampler.extras().amplified_uniques, reference_uniques)
            << name << " policy " << tensor::policy_name(policy);
      }
    }
  }
}

// --- service: per-job amplification, deterministic under any fleet size -----

TEST(Amplifier, ServiceStreamsAreFleetSizeInvariantWithAmplification) {
  // (x1|x2) & (x3|x4) & (~x1|~x3) over 7 vars: 40 solutions.
  const std::string dimacs = "p cnf 7 3\n1 2 0\n3 4 0\n-1 -3 0\n";
  bool have_reference = false;
  std::vector<cnf::Assignment> reference;
  std::uint64_t reference_amplified = 0;
  for (const std::size_t n_workers : {1u, 2u, 4u}) {
    service::Server server({.n_workers = n_workers});
    service::SamplingRequest request;
    request.formula = cnf::parse_dimacs_string(dimacs);
    request.seed = 321;
    request.target_uniques = 35;
    request.config.batch = 128;
    request.config.iterations = 3;
    request.config.amplify.enabled = true;
    request.sampling_set = {0, 1, 2, 3};  // per-request projection override
    // This test pins the *flip-support* scoping under full-assignment dedup.
    // Projected dedup (the default) would cap the stream at the 5 projected
    // classes — far below the 35-unique target — so it is explicitly off
    // here; tests/projected_test.cpp covers the projected semantics.
    request.config.projected_dedup = false;
    service::JobHandle handle = server.submit(std::move(request));
    ASSERT_EQ(handle.wait(), service::JobStatus::kCompleted);
    std::vector<cnf::Assignment> solutions;
    cnf::Assignment assignment;
    while (handle.stream().next(assignment)) solutions.push_back(assignment);
    const service::JobStats stats = handle.stats();
    EXPECT_GT(stats.amplified_candidates, 0u) << n_workers << " workers";
    if (!have_reference) {
      have_reference = true;
      reference = solutions;
      reference_amplified = stats.amplified_uniques;
      ASSERT_GE(reference.size(), 35u);
      continue;
    }
    ASSERT_EQ(solutions, reference) << n_workers << " workers";
    EXPECT_EQ(stats.amplified_uniques, reference_amplified)
        << n_workers << " workers";
  }
}

}  // namespace
}  // namespace hts
