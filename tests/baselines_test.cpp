// Tests for the three baseline samplers: validity of every solution,
// target/deadline behaviour, diversity, coverage of the full solution space
// on enumerable instances, and a looseness-bounded uniformity check for the
// UniGen-like hash sampler.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "baselines/cmsgen_like.hpp"
#include "transform/transform.hpp"
#include "baselines/diff_sampler.hpp"
#include "baselines/unigen_like.hpp"
#include "baselines/walksat_sampler.hpp"
#include "cnf/dimacs.hpp"
#include "solver/brute.hpp"

namespace hts::baselines {
namespace {

// 10 constrained models x 2^2 free variables = 40 solutions.
cnf::Formula small_formula() {
  return cnf::parse_dimacs_string("p cnf 6 3\n1 2 0\n3 4 0\n-1 -3 0\n");
}

sampler::RunOptions fast_options(std::size_t min_solutions = 10) {
  sampler::RunOptions options;
  options.min_solutions = min_solutions;
  options.budget_ms = 8000.0;
  options.store_limit = 2048;
  options.verify_against_cnf = true;
  options.seed = 99;
  return options;
}

// --- shared behaviour across all baselines ------------------------------------

enum class Kind { kCmsGen, kUniGen, kDiff, kWalkSat };

std::unique_ptr<sampler::Sampler> make(Kind kind) {
  switch (kind) {
    case Kind::kCmsGen:
      return std::make_unique<CmsGenLike>();
    case Kind::kUniGen:
      return std::make_unique<UniGenLike>();
    case Kind::kDiff: {
      DiffSamplerConfig config;
      config.batch = 256;
      config.policy = tensor::Policy::kSerial;
      return std::make_unique<DiffSampler>(config);
    }
    case Kind::kWalkSat:
      return std::make_unique<WalkSatSampler>();
  }
  return nullptr;
}

class AllBaselines : public ::testing::TestWithParam<Kind> {};

TEST_P(AllBaselines, SolutionsValidAndTargetReached) {
  const cnf::Formula f = small_formula();
  auto sampler_ptr = make(GetParam());
  const sampler::RunResult result = sampler_ptr->run(f, fast_options(10));
  EXPECT_GE(result.n_unique, 10u) << sampler_ptr->name();
  EXPECT_EQ(result.n_invalid, 0u) << sampler_ptr->name();
  for (const cnf::Assignment& solution : result.solutions) {
    EXPECT_TRUE(f.satisfied_by(solution));
  }
}

TEST_P(AllBaselines, UniqueNeverExceedsModelCount) {
  const cnf::Formula f = small_formula();
  const std::uint64_t exact = solver::count_models(f);
  auto sampler_ptr = make(GetParam());
  sampler::RunOptions options = fast_options(0);  // run to budget
  options.budget_ms = 600.0;
  const sampler::RunResult result = sampler_ptr->run(f, options);
  EXPECT_LE(result.n_unique, exact) << sampler_ptr->name();
}

TEST_P(AllBaselines, UnsatYieldsNothing) {
  const cnf::Formula f =
      cnf::parse_dimacs_string("p cnf 2 4\n1 2 0\n1 -2 0\n-1 2 0\n-1 -2 0\n");
  auto sampler_ptr = make(GetParam());
  sampler::RunOptions options = fast_options(1);
  options.budget_ms = 300.0;
  const sampler::RunResult result = sampler_ptr->run(f, options);
  EXPECT_EQ(result.n_unique, 0u) << sampler_ptr->name();
}

INSTANTIATE_TEST_SUITE_P(Baselines, AllBaselines,
                         ::testing::Values(Kind::kCmsGen, Kind::kUniGen,
                                           Kind::kDiff, Kind::kWalkSat),
                         [](const auto& info) {
                           switch (info.param) {
                             case Kind::kCmsGen:
                               return "CmsGen";
                             case Kind::kUniGen:
                               return "UniGen";
                             case Kind::kDiff:
                               return "Diff";
                             case Kind::kWalkSat:
                               return "WalkSat";
                           }
                           return "?";
                         });

// --- sampler-specific behaviour ---------------------------------------------------

TEST(CmsGen, SolverBackedUnsatDetection) {
  const cnf::Formula f = cnf::parse_dimacs_string("p cnf 1 2\n1 0\n-1 0\n");
  CmsGenLike sampler;
  const sampler::RunResult result = sampler.run(f, fast_options(1));
  EXPECT_TRUE(result.proven_unsat);
}

TEST(CmsGen, CoversWholeSolutionSpace) {
  const cnf::Formula f = small_formula();
  const auto models = solver::enumerate_models(f);
  CmsGenLike sampler;
  sampler::RunOptions options = fast_options(models.size());
  const sampler::RunResult result = sampler.run(f, options);
  EXPECT_EQ(result.n_unique, models.size());
  std::set<cnf::Assignment> found(result.solutions.begin(), result.solutions.end());
  EXPECT_EQ(found.size(), models.size());
}

TEST(UniGen, ApproximateUniformityOnTinyInstance) {
  // 3 free-ish solutions: (x1|x2) over 2 vars. Draw many samples; each of
  // the 3 models should receive a non-trivial share.  UniGen's guarantee is
  // (1+eps)-uniformity; the check here is deliberately loose.
  const cnf::Formula f = cnf::parse_dimacs_string("p cnf 2 1\n1 2 0\n");
  UniGenConfig config;
  config.samples_per_cell = 2;
  UniGenLike sampler(config);

  std::map<std::vector<std::uint8_t>, int> histogram;
  int total = 0;
  for (int round = 0; round < 40; ++round) {
    sampler::RunOptions options;
    options.min_solutions = 0;
    options.budget_ms = 50.0;
    options.store_limit = 16;
    options.seed = 1000 + static_cast<std::uint64_t>(round);
    const sampler::RunResult result = sampler.run(f, options);
    for (const auto& solution : result.solutions) {
      ++histogram[solution];
      ++total;
    }
  }
  ASSERT_GE(total, 30);
  EXPECT_EQ(histogram.size(), 3u);  // all models observed
  for (const auto& [model, count] : histogram) {
    const double share = static_cast<double>(count) / total;
    EXPECT_GT(share, 0.10);  // no model starved
    EXPECT_LT(share, 0.65);  // no model dominates
  }
}

TEST(Diff, FlatProblemStructure) {
  const cnf::Formula f = small_formula();
  const FlatProblem problem = build_flat_problem(f);
  // One input per var; one output constraint per clause.
  EXPECT_EQ(problem.circuit.n_inputs(), f.n_vars());
  EXPECT_EQ(problem.circuit.outputs().size(), f.n_clauses());
  // Flat circuit evaluation == clause satisfaction.
  std::vector<std::uint8_t> in{1, 0, 0, 1, 0, 0};
  const auto values = problem.circuit.eval(in);
  EXPECT_EQ(problem.circuit.outputs_satisfied(values),
            f.satisfied_by(cnf::Assignment{1, 0, 0, 1, 0, 0}));
}

TEST(Diff, OpCountExceedsTransformedForm) {
  // The whole point of the paper: flat CNF relaxation executes more ops than
  // the extracted multi-level form.
  const cnf::Formula f = cnf::parse_dimacs_string(
      "p cnf 5 5\n-5 1 2 3 4 0\n5 -1 0\n5 -2 0\n5 -3 0\n5 -4 0\n");
  const FlatProblem flat = build_flat_problem(f);
  const auto transformed = transform::transform_cnf(f);
  EXPECT_GT(flat.circuit.op_count_2input(),
            transformed.circuit.op_count_2input());
}

TEST(WalkSatSampler, ProgressRecorded) {
  const cnf::Formula f = small_formula();
  WalkSatSampler sampler;
  const sampler::RunResult result = sampler.run(f, fast_options(5));
  EXPECT_GE(result.progress.size(), 1u);
}

}  // namespace
}  // namespace hts::baselines
