// Tests for the ROBDD package: canonicity, Boolean algebra laws, cofactors,
// quantification, satcount / model indexing, and the CNF builder.

#include <gtest/gtest.h>

#include "bdd/bdd.hpp"
#include "bdd/builder.hpp"
#include "cnf/dimacs.hpp"
#include "util/rng.hpp"

namespace hts::bdd {
namespace {

TEST(Bdd, TerminalsAndVars) {
  Manager mgr(3);
  EXPECT_EQ(mgr.apply_not(kTrue), kFalse);
  EXPECT_EQ(mgr.apply_not(kFalse), kTrue);
  const NodeId x = mgr.make_var(0);
  EXPECT_EQ(mgr.make_var(0), x);  // canonical
  EXPECT_NE(mgr.make_var(1), x);
}

TEST(Bdd, BasicLaws) {
  Manager mgr(4);
  const NodeId x = mgr.make_var(0);
  const NodeId y = mgr.make_var(1);
  EXPECT_EQ(mgr.apply_and(x, kTrue), x);
  EXPECT_EQ(mgr.apply_and(x, kFalse), kFalse);
  EXPECT_EQ(mgr.apply_or(x, kFalse), x);
  EXPECT_EQ(mgr.apply_or(x, kTrue), kTrue);
  EXPECT_EQ(mgr.apply_and(x, mgr.apply_not(x)), kFalse);
  EXPECT_EQ(mgr.apply_or(x, mgr.apply_not(x)), kTrue);
  EXPECT_EQ(mgr.apply_xor(x, x), kFalse);
  EXPECT_EQ(mgr.apply_xor(x, mgr.apply_not(x)), kTrue);
  // Commutativity via canonicity.
  EXPECT_EQ(mgr.apply_and(x, y), mgr.apply_and(y, x));
  // De Morgan.
  EXPECT_EQ(mgr.apply_not(mgr.apply_and(x, y)),
            mgr.apply_or(mgr.apply_not(x), mgr.apply_not(y)));
}

TEST(Bdd, CanonicityDetectsEquivalence) {
  Manager mgr(3);
  const NodeId x = mgr.make_var(0);
  const NodeId y = mgr.make_var(1);
  const NodeId z = mgr.make_var(2);
  // (x & y) | (x & z) == x & (y | z)
  const NodeId lhs = mgr.apply_or(mgr.apply_and(x, y), mgr.apply_and(x, z));
  const NodeId rhs = mgr.apply_and(x, mgr.apply_or(y, z));
  EXPECT_EQ(lhs, rhs);
}

TEST(Bdd, EvalMatchesStructure) {
  Manager mgr(3);
  const NodeId f = mgr.apply_or(mgr.apply_and(mgr.make_var(0), mgr.make_var(1)),
                                mgr.make_var(2));
  for (int bits = 0; bits < 8; ++bits) {
    const std::vector<std::uint8_t> a{
        static_cast<std::uint8_t>(bits & 1), static_cast<std::uint8_t>((bits >> 1) & 1),
        static_cast<std::uint8_t>((bits >> 2) & 1)};
    const bool expected = (a[0] != 0 && a[1] != 0) || a[2] != 0;
    EXPECT_EQ(mgr.eval(f, a), expected);
  }
}

TEST(Bdd, RestrictAndExists) {
  Manager mgr(2);
  const NodeId x = mgr.make_var(0);
  const NodeId y = mgr.make_var(1);
  const NodeId f = mgr.apply_xor(x, y);
  EXPECT_EQ(mgr.restrict_var(f, 0, false), y);
  EXPECT_EQ(mgr.restrict_var(f, 0, true), mgr.apply_not(y));
  EXPECT_EQ(mgr.exists(f, 0), kTrue);
  EXPECT_EQ(mgr.exists(mgr.apply_and(x, y), 0), y);
}

TEST(Bdd, SatcountSmallFunctions) {
  Manager mgr(3);
  const NodeId x = mgr.make_var(0);
  const NodeId y = mgr.make_var(1);
  EXPECT_DOUBLE_EQ(mgr.satcount(kTrue), 8.0);
  EXPECT_DOUBLE_EQ(mgr.satcount(kFalse), 0.0);
  EXPECT_DOUBLE_EQ(mgr.satcount(x), 4.0);
  EXPECT_DOUBLE_EQ(mgr.satcount(mgr.apply_and(x, y)), 2.0);
  EXPECT_DOUBLE_EQ(mgr.satcount(mgr.apply_or(x, y)), 6.0);
  EXPECT_DOUBLE_EQ(mgr.satcount(mgr.apply_xor(x, y)), 4.0);
}

TEST(Bdd, SupportListsDependencies) {
  Manager mgr(5);
  const NodeId f =
      mgr.apply_and(mgr.make_var(1), mgr.apply_or(mgr.make_var(3), mgr.make_var(4)));
  EXPECT_EQ(mgr.support(f), (std::vector<std::uint32_t>{1, 3, 4}));
  EXPECT_TRUE(mgr.support(kTrue).empty());
}

TEST(Bdd, PickModelSatisfies) {
  Manager mgr(4);
  const NodeId f = mgr.apply_and(mgr.apply_xor(mgr.make_var(0), mgr.make_var(1)),
                                 mgr.make_var(3));
  std::vector<std::uint8_t> model;
  ASSERT_TRUE(mgr.pick_model(f, model));
  EXPECT_TRUE(mgr.eval(f, model));
  EXPECT_FALSE(mgr.pick_model(kFalse, model));
}

TEST(Bdd, NthModelEnumeratesAllDistinct) {
  Manager mgr(4);
  // f = (x0 | x1) & ~x3 : count = 3 * 2 * 1... enumerate and check.
  const NodeId f = mgr.apply_and(mgr.apply_or(mgr.make_var(0), mgr.make_var(1)),
                                 mgr.apply_not(mgr.make_var(3)));
  const auto count = static_cast<std::uint64_t>(mgr.satcount(f));
  EXPECT_EQ(count, 6u);
  std::set<std::vector<std::uint8_t>> seen;
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto model = mgr.nth_model(f, i);
    EXPECT_TRUE(mgr.eval(f, model)) << i;
    seen.insert(model);
  }
  EXPECT_EQ(seen.size(), count);
}

TEST(Bdd, RandomFunctionsAgreeWithTruthTables) {
  util::Rng rng(4242);
  for (int trial = 0; trial < 20; ++trial) {
    const std::uint32_t n = 2 + rng.next_below(4);
    Manager mgr(n);
    // Random function as a random DAG of applies.
    std::vector<NodeId> pool;
    for (std::uint32_t v = 0; v < n; ++v) pool.push_back(mgr.make_var(v));
    for (int step = 0; step < 8; ++step) {
      const NodeId x = pool[rng.next_below(pool.size())];
      const NodeId y = pool[rng.next_below(pool.size())];
      switch (rng.next_below(4)) {
        case 0:
          pool.push_back(mgr.apply_and(x, y));
          break;
        case 1:
          pool.push_back(mgr.apply_or(x, y));
          break;
        case 2:
          pool.push_back(mgr.apply_xor(x, y));
          break;
        default:
          pool.push_back(mgr.apply_not(x));
          break;
      }
    }
    const NodeId f = pool.back();
    std::uint64_t expected_count = 0;
    for (std::uint64_t bits = 0; bits < (1ULL << n); ++bits) {
      std::vector<std::uint8_t> a(n);
      for (std::uint32_t v = 0; v < n; ++v) {
        a[v] = static_cast<std::uint8_t>((bits >> v) & 1);
      }
      if (mgr.eval(f, a)) ++expected_count;
    }
    EXPECT_DOUBLE_EQ(mgr.satcount(f), static_cast<double>(expected_count))
        << "trial " << trial;
  }
}

TEST(Bdd, CapacityErrorThrown) {
  Manager mgr(16, /*max_nodes=*/24);
  NodeId f = kTrue;
  EXPECT_THROW(
      {
        for (std::uint32_t v = 0; v < 16; ++v) {
          f = mgr.apply_xor(f, mgr.make_var(v));
        }
      },
      CapacityError);
}

TEST(BddBuilder, CnfConjunction) {
  const cnf::Formula f = cnf::parse_dimacs_string(
      "p cnf 3 3\n1 -2 0\n2 3 0\n-1 -3 0\n");
  Manager mgr(3);
  const NodeId node = build_from_cnf(mgr, f);
  std::uint64_t expected = 0;
  for (int bits = 0; bits < 8; ++bits) {
    cnf::Assignment a{static_cast<std::uint8_t>(bits & 1),
                      static_cast<std::uint8_t>((bits >> 1) & 1),
                      static_cast<std::uint8_t>((bits >> 2) & 1)};
    if (f.satisfied_by(a)) {
      ++expected;
      EXPECT_TRUE(mgr.eval(node, a));
    } else {
      EXPECT_FALSE(mgr.eval(node, a));
    }
  }
  EXPECT_DOUBLE_EQ(mgr.satcount(node), static_cast<double>(expected));
}

TEST(BddBuilder, UnsatCnfCollapsesToFalse) {
  const cnf::Formula f = cnf::parse_dimacs_string("p cnf 1 2\n1 0\n-1 0\n");
  Manager mgr(1);
  EXPECT_EQ(build_from_cnf(mgr, f), kFalse);
}

}  // namespace
}  // namespace hts::bdd
