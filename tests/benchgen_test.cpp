// Tests for the benchmark-instance generators: witnesses satisfy the
// encodings, generation is deterministic, sizes land in the published
// ballparks, name dispatch covers the full grammar, and the transformation
// digests every family.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "benchgen/families.hpp"
#include "benchgen/suite.hpp"
#include "transform/transform.hpp"

namespace hts::benchgen {
namespace {

GenOptions tiny_scale() {
  GenOptions options;
  options.scale = 0.02;  // shrink the big families for unit-test speed
  return options;
}

TEST(Suite, ManifestSizes) {
  EXPECT_EQ(table2_names().size(), 14u);
  EXPECT_EQ(ablation_names().size(), 4u);
  const std::vector<std::string> suite = suite60_names();
  EXPECT_EQ(suite.size(), 60u);
  // No duplicates in the 60-instance manifest.
  const std::set<std::string> unique(suite.begin(), suite.end());
  EXPECT_EQ(unique.size(), 60u);
}

TEST(Suite, AblationSubsetOfTable2) {
  const auto t2 = table2_names();
  for (const auto& name : ablation_names()) {
    EXPECT_NE(std::find(t2.begin(), t2.end(), name), t2.end()) << name;
  }
}

TEST(Families, WitnessSatisfiesEveryTable2Instance) {
  for (const auto& name : table2_names()) {
    const Instance instance = make_instance(name, tiny_scale());
    EXPECT_EQ(instance.name, name);
    ASSERT_EQ(instance.witness.size(), instance.formula.n_vars()) << name;
    EXPECT_TRUE(instance.formula.satisfied_by(instance.witness)) << name;
  }
}

TEST(Families, DeterministicGeneration) {
  const Instance a = make_instance("or-50-10-7-UC-10");
  const Instance b = make_instance("or-50-10-7-UC-10");
  EXPECT_EQ(a.formula.n_vars(), b.formula.n_vars());
  EXPECT_EQ(a.formula.n_clauses(), b.formula.n_clauses());
  ASSERT_EQ(a.formula.n_clauses(), b.formula.n_clauses());
  for (std::size_t i = 0; i < a.formula.n_clauses(); ++i) {
    EXPECT_EQ(a.formula.clause(i), b.formula.clause(i)) << i;
  }
  EXPECT_EQ(a.witness, b.witness);
}

TEST(Families, SeedMixChangesInstance) {
  GenOptions mixed;
  mixed.seed_mix = 7;
  const Instance a = make_instance("75-10-1-q");
  const Instance b = make_instance("75-10-1-q", mixed);
  // Same structure family and size class, different random draw.
  bool identical = a.formula.n_clauses() == b.formula.n_clauses();
  if (identical) {
    for (std::size_t i = 0; i < a.formula.n_clauses(); ++i) {
      if (a.formula.clause(i) != b.formula.clause(i)) {
        identical = false;
        break;
      }
    }
  }
  EXPECT_FALSE(identical);
}

TEST(Families, OrInstanceShape) {
  const Instance instance = make_instance("or-50-10-7-UC-10");
  EXPECT_EQ(instance.family, "or");
  // Published: 50 PIs, 4 POs, 100 vars, 254 clauses — match the order of
  // magnitude, not the digits.
  EXPECT_NEAR(static_cast<double>(instance.circuit.n_inputs()), 50.0, 15.0);
  EXPECT_GE(instance.circuit.outputs().size(), 2u);
  EXPECT_LE(instance.circuit.outputs().size(), 8u);
  EXPECT_NEAR(static_cast<double>(instance.formula.n_vars()), 100.0, 60.0);
  EXPECT_NEAR(static_cast<double>(instance.formula.n_clauses()), 254.0, 160.0);
}

TEST(Families, QInstanceShape) {
  const Instance instance = make_instance("75-10-1-q");
  EXPECT_EQ(instance.family, "q");
  EXPECT_EQ(instance.circuit.outputs().size(), 1u);  // single PO like the suite
  // Published: 452 vars, 443 clauses, 83 PIs.
  EXPECT_NEAR(static_cast<double>(instance.formula.n_vars()), 452.0, 200.0);
  EXPECT_GT(instance.circuit.n_inputs(), 10u);
  EXPECT_LT(instance.circuit.n_inputs(), 200u);
  // Chain-heavy: depth must be substantial.
  EXPECT_GT(instance.circuit.depth(), 30u);
}

TEST(Families, QVariantChangesPiCount) {
  const Instance low = make_instance("90-10-1-q");
  const Instance high = make_instance("90-10-10-q");
  // Higher variant -> lower MUX rate -> fewer PIs (mirrors 51 vs 31).
  EXPECT_GT(low.circuit.n_inputs(), high.circuit.n_inputs());
}

TEST(Families, S15850Shape) {
  const Instance instance = make_instance("s15850a_3_2", tiny_scale());
  EXPECT_EQ(instance.family, "s15850a");
  EXPECT_LE(instance.circuit.outputs().size(), 3u);
  EXPECT_GE(instance.circuit.outputs().size(), 1u);
  EXPECT_TRUE(instance.formula.satisfied_by(instance.witness));
}

TEST(Families, S15850FullScaleMatchesPublishedSizes) {
  const Instance instance = make_instance("s15850a_15_7");
  // Published: 600 PIs, ~10995 vars, ~24836 clauses.
  EXPECT_EQ(instance.circuit.n_inputs(), 600u);
  EXPECT_NEAR(static_cast<double>(instance.formula.n_vars()), 10995.0, 2500.0);
  EXPECT_NEAR(static_cast<double>(instance.formula.n_clauses()), 24836.0, 8000.0);
}

TEST(Families, ProdShape) {
  const Instance instance = make_instance("Prod-8", tiny_scale());
  EXPECT_EQ(instance.family, "prod");
  EXPECT_EQ(instance.circuit.outputs().size(), 2u);  // the published 2 POs
  EXPECT_TRUE(instance.formula.satisfied_by(instance.witness));
}

TEST(Families, ProdClauseDensityHigh) {
  const Instance instance = make_instance("Prod-8", GenOptions{0.1, 0});
  const double ratio = static_cast<double>(instance.formula.n_clauses()) /
                       static_cast<double>(instance.formula.n_vars());
  // Published Prod-8 ratio is ~5.0; wide gates + XORs should push past 3.
  EXPECT_GT(ratio, 3.0);
}

TEST(Families, BadNamesRejected) {
  EXPECT_THROW((void)make_instance("nonsense"), std::invalid_argument);
  EXPECT_THROW((void)make_instance("or-xx-1-1-UC-1"), std::invalid_argument);
  EXPECT_THROW((void)make_instance("Prod-abc"), std::invalid_argument);
}

TEST(Families, Suite60AllGenerate) {
  for (const auto& name : suite60_names()) {
    GenOptions options = tiny_scale();
    const Instance instance = make_instance(name, options);
    EXPECT_TRUE(instance.formula.satisfied_by(instance.witness)) << name;
    EXPECT_GT(instance.formula.n_clauses(), 0u) << name;
  }
}

TEST(Families, TransformDigestsEachFamily) {
  // Algorithm 1 must process one representative of each family, recover
  // gates, and reduce the op count.
  for (const auto& name :
       {"or-50-10-7-UC-10", "75-10-1-q", "s15850a_3_2", "Prod-8"}) {
    const Instance instance = make_instance(name, tiny_scale());
    const auto result = transform::transform_cnf(instance.formula);
    EXPECT_FALSE(result.proven_unsat) << name;
    EXPECT_GT(result.stats.n_gate_definitions, 0u) << name;
    EXPECT_GT(result.stats.ops_reduction(), 1.0) << name;
    // The witness must satisfy the circuit's constraints when replayed.
    std::vector<std::uint8_t> inputs;
    inputs.reserve(result.circuit.n_inputs());
    for (std::size_t i = 0; i < result.circuit.n_inputs(); ++i) {
      const cnf::Var v = result.input_vars[i];
      inputs.push_back(instance.witness[v]);
    }
    const auto values = result.circuit.eval(inputs);
    EXPECT_TRUE(result.circuit.outputs_satisfied(values)) << name;
  }
}

}  // namespace
}  // namespace hts::benchgen
