// Chaos suite for the fault-tolerant service layer: a multi-client fleet is
// stressed under a deterministic fault spec that fires at every registered
// seam, and the run must be *survivable* (no crash, no deadlock, every job
// terminal) and *attributable* (failed jobs name the seam that killed them).
// The determinism contract does the heavy lifting for correctness: a job's
// stream is a pure function of (formula, seed, config), so any job the
// faults did not touch must deliver a stream bit-identical to the fault-free
// golden run.  Recovered jobs converge to the same stream: a retry flushes
// whatever the aborted attempt banked but had not yet delivered, then
// replays the interrupted round with the identical per-round RNG stream to
// its natural end (even past the unique target, exactly as the golden run
// would have) — the bank dedups the replayed prefix, so delivery stays
// exactly-once and in golden order.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cnf/dimacs.hpp"
#include "service/server.hpp"

namespace hts::service {
namespace {

/// Distinct-by-construction formula family: the clause core of the service
/// tests' fixture plus `extra` free variables, so each variant fingerprints
/// to its own plan-cache key (n_vars differs) and the compile seam is hit
/// once per variant instead of once per run.
cnf::Formula formula_variant(std::size_t extra) {
  const std::size_t n_vars = 7 + extra;
  return cnf::parse_dimacs_string("p cnf " + std::to_string(n_vars) +
                                  " 3\n1 2 0\n3 4 0\n-1 -3 0\n");
}

constexpr std::size_t kClients = 6;
constexpr std::size_t kJobsPerClient = 35;  // 210 jobs >= the 200-job bar
constexpr std::size_t kVariants = 24;

struct JobOutcome {
  JobStatus status = JobStatus::kQueued;
  JobStats stats;
  std::vector<cnf::Assignment> stream;
};

SamplingRequest chaos_request(std::size_t index) {
  SamplingRequest request;
  request.formula = formula_variant(index % kVariants);
  request.client_id = index % kClients;
  request.seed = 1000 + index;
  request.target_uniques = 8;
  request.config.batch = 128;
  request.config.iterations = 2;
  return request;
}

/// Runs the full fleet under `fault_spec` on `server` and collects every
/// job's terminal status, stats, and complete stream.  The function
/// returning at all is the no-deadlock assertion; wait() covers every job,
/// so nothing is left mid-flight.
std::vector<JobOutcome> run_fleet(Server& server) {
  std::vector<JobHandle> handles;
  handles.reserve(kClients * kJobsPerClient);
  for (std::size_t i = 0; i < kClients * kJobsPerClient; ++i) {
    handles.push_back(server.submit(chaos_request(i)));
  }
  std::vector<JobOutcome> outcomes(handles.size());
  for (std::size_t i = 0; i < handles.size(); ++i) {
    outcomes[i].status = handles[i].wait();
    outcomes[i].stats = handles[i].stats();
    cnf::Assignment assignment;
    while (handles[i].stream().next(assignment)) {
      outcomes[i].stream.push_back(assignment);
    }
  }
  return outcomes;
}

std::vector<JobOutcome> run_fleet(const std::string& fault_spec) {
  ServerConfig config{.n_workers = 4};
  config.fault_spec = fault_spec;
  config.max_retries = 2;
  config.retry_backoff_ms = 1.0;
  Server server(std::move(config));
  return run_fleet(server);
}

/// kind-per-seam of the chaos spec below; a job failed at a seam must carry
/// the category that kind classifies to.
ErrorCategory expected_category(const std::string& site) {
  if (site == fault_sites::kCompile) return ErrorCategory::kCompile;
  if (site == fault_sites::kEngineAlloc) return ErrorCategory::kResource;
  if (site == fault_sites::kHarvest) return ErrorCategory::kTransient;
  if (site == fault_sites::kStreamPush) return ErrorCategory::kTransient;
  if (site == fault_sites::kSlice) return ErrorCategory::kExecution;
  return ErrorCategory::kInternal;
}

/// Every seam armed, every kind exercised: permanent fails at compile and
/// slice, allocation failures at engine build, transients (retried) at
/// harvest and delivery.
const char* kChaosSpec =
    "seed=3;"
    "compile:every=7;"
    "engine_alloc:every=9:kind=bad_alloc;"
    "harvest:every=23:kind=transient;"
    "stream_push:every=41:kind=transient;"
    "slice:every=31";

TEST(ServiceChaos, FleetSurvivesFaultsAtEverySeamWithGoldenFidelity) {
  // Golden first: explicitly disarmed ("none" overrides any ambient
  // HTS_FAULT_SPEC), every job must complete.
  const std::vector<JobOutcome> golden = run_fleet("none");
  for (const JobOutcome& outcome : golden) {
    ASSERT_EQ(outcome.status, JobStatus::kCompleted);
    ASSERT_TRUE(outcome.stats.error.ok());
  }

  ServerConfig chaos_config{.n_workers = 4};
  chaos_config.fault_spec = kChaosSpec;
  chaos_config.max_retries = 2;
  chaos_config.retry_backoff_ms = 1.0;
  Server server(std::move(chaos_config));
  const std::vector<JobOutcome> chaos = run_fleet(server);

  // Every registered seam was actually exercised and actually injected —
  // a chaos run that silently skipped a seam proves nothing.
  for (const char* site :
       {fault_sites::kCompile, fault_sites::kEngineAlloc, fault_sites::kHarvest,
        fault_sites::kStreamPush, fault_sites::kSlice}) {
    EXPECT_GT(server.fault_injector().hits(site), 0u) << site;
    EXPECT_GT(server.fault_injector().injected(site), 0u) << site;
  }

  std::size_t failed = 0;
  std::size_t recovered = 0;
  std::size_t untouched = 0;
  for (std::size_t i = 0; i < chaos.size(); ++i) {
    const JobOutcome& outcome = chaos[i];
    ASSERT_TRUE(job_status_terminal(outcome.status));  // nothing in flight
    if (outcome.status == JobStatus::kFailed) {
      // Correct attribution: the recorded seam is one of ours and carries
      // the category its configured kind maps to.
      ++failed;
      const ErrorInfo& error = outcome.stats.error;
      EXPECT_EQ(error.category, expected_category(error.site))
          << error.site << ": " << error.message;
      EXPECT_FALSE(error.message.empty());
      continue;
    }
    ASSERT_EQ(outcome.status, JobStatus::kCompleted);
    if (outcome.stats.retries > 0) {
      // Recovered through retry: flush-then-replay converges the stream to
      // the golden trajectory, so even a job that faulted mid-delivery ends
      // bit-identical — same solutions, same order, exactly once.
      ++recovered;
      const std::set<cnf::Assignment> chaos_set(outcome.stream.begin(),
                                                outcome.stream.end());
      EXPECT_EQ(chaos_set.size(), outcome.stream.size());  // no duplicates
      EXPECT_EQ(outcome.stream, golden[i].stream) << "job " << i;
    } else {
      // Untouched by any fault: bit-identical stream, order included.
      ++untouched;
      EXPECT_EQ(outcome.stream, golden[i].stream) << "job " << i;
    }
  }
  // The spec is aggressive enough that all three populations exist; if one
  // is empty the chaos run is not exercising what it claims to.
  EXPECT_GT(failed, 0u);
  EXPECT_GT(recovered, 0u);
  EXPECT_GT(untouched, 0u);
  EXPECT_EQ(failed + recovered + untouched, chaos.size());
  EXPECT_EQ(server.stats().failed, failed);
}

TEST(ServiceChaos, ShutdownMidChaosDrainsCleanly) {
  ServerConfig config{.n_workers = 4};
  config.fault_spec = kChaosSpec;
  config.retry_backoff_ms = 5.0;
  Server server(config);
  std::vector<JobHandle> handles;
  for (std::size_t i = 0; i < 80; ++i) {
    SamplingRequest request = chaos_request(i);
    request.target_uniques = 1000000;  // endless: shutdown must cut them off
    handles.push_back(server.submit(std::move(request)));
  }
  // Let the fleet get properly into flight (some rounds, some faults).
  while (server.stats().slices < 20) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.shutdown();
  for (const JobHandle& handle : handles) {
    const JobStatus status = handle.status();  // terminal without waiting
    EXPECT_TRUE(job_status_terminal(status));
    // Endless jobs end cancelled (shutdown) or failed (a fault got there
    // first); either way their streams are closed.
    EXPECT_TRUE(status == JobStatus::kCancelled ||
                status == JobStatus::kFailed)
        << job_status_name(status);
    EXPECT_TRUE(handle.stream().closed());
  }
}

TEST(ServiceChaos, EnvSpecArmsTheServerAndNoneOverridesIt) {
  ASSERT_EQ(setenv("HTS_FAULT_SPEC", "compile:at=0", /*overwrite=*/1), 0);
  {
    Server server(ServerConfig{.n_workers = 1});  // empty config spec: env
    EXPECT_TRUE(server.fault_injector().armed());
    JobHandle handle = server.submit(chaos_request(0));
    EXPECT_EQ(handle.wait(), JobStatus::kFailed);
    EXPECT_EQ(handle.error().site, fault_sites::kCompile);
  }
  {
    ServerConfig config{.n_workers = 1};
    config.fault_spec = "none";  // explicit sentinel beats the environment
    Server server(config);
    EXPECT_FALSE(server.fault_injector().armed());
    JobHandle handle = server.submit(chaos_request(0));
    EXPECT_EQ(handle.wait(), JobStatus::kCompleted);
  }
  ASSERT_EQ(unsetenv("HTS_FAULT_SPEC"), 0);
}

TEST(ServiceChaos, MalformedSpecFailsServerConstructionLoudly) {
  ServerConfig config{.n_workers = 1};
  config.fault_spec = "compile:whenever";
  EXPECT_THROW((void)Server(std::move(config)), std::invalid_argument);
}

}  // namespace
}  // namespace hts::service
