// Tests for CircuitSampler — direct sampling from circuit form (the paper's
// future-work suggestion): solutions meet output constraints, agree with the
// CNF pipeline on the same problem, and respect the input-indexed layout.

#include <gtest/gtest.h>

#include <set>

#include "circuit/tseitin.hpp"
#include "core/circuit_sampler.hpp"
#include "core/gradient_sampler.hpp"
#include "solver/brute.hpp"

namespace hts::sampler {
namespace {

using circuit::Circuit;
using circuit::GateType;
using circuit::SignalId;

/// out = (s & d1) | (~s & d0) forced to 1; 3 inputs.
Circuit mux_circuit() {
  Circuit c;
  const SignalId s = c.add_input("s");
  const SignalId d1 = c.add_input("d1");
  const SignalId d0 = c.add_input("d0");
  const SignalId t1 = c.add_gate(GateType::kAnd, {s, d1});
  const SignalId ns = c.add_gate(GateType::kNot, {s});
  const SignalId t0 = c.add_gate(GateType::kAnd, {ns, d0});
  c.add_output(c.add_gate(GateType::kOr, {t1, t0}), true);
  return c;
}

CircuitSamplerConfig fast_config() {
  CircuitSamplerConfig config;
  config.batch = 256;
  config.policy = tensor::Policy::kSerial;
  return config;
}

TEST(CircuitSampler, SolutionsMeetOutputConstraints) {
  const Circuit c = mux_circuit();
  CircuitSampler sampler(c, fast_config());
  RunOptions options;
  options.min_solutions = 4;  // the MUX has exactly 4 satisfying inputs
  options.budget_ms = 5000.0;
  options.store_limit = 16;
  const RunResult result = sampler.run(options);
  EXPECT_EQ(result.n_unique, 4u);
  for (const cnf::Assignment& inputs : result.solutions) {
    ASSERT_EQ(inputs.size(), 3u);
    const auto values = c.eval({inputs[0], inputs[1], inputs[2]});
    EXPECT_TRUE(c.outputs_satisfied(values));
  }
}

TEST(CircuitSampler, ExhaustsSolutionSpaceExactly) {
  const Circuit c = mux_circuit();
  // Brute-force the reference: inputs where the MUX output is 1.
  std::set<std::vector<std::uint8_t>> expected;
  for (int bits = 0; bits < 8; ++bits) {
    const std::vector<std::uint8_t> in{
        static_cast<std::uint8_t>(bits & 1), static_cast<std::uint8_t>((bits >> 1) & 1),
        static_cast<std::uint8_t>((bits >> 2) & 1)};
    if (c.outputs_satisfied(c.eval(in))) expected.insert(in);
  }
  CircuitSampler sampler(c, fast_config());
  RunOptions options;
  options.min_solutions = expected.size();
  options.budget_ms = 5000.0;
  options.store_limit = 16;
  const RunResult result = sampler.run(options);
  std::set<std::vector<std::uint8_t>> found;
  for (const auto& s : result.solutions) found.insert({s[0], s[1], s[2]});
  EXPECT_EQ(found, expected);
}

TEST(CircuitSampler, SamplingSetReachesProjectedDedup) {
  // Regression: the configured sampling set used to be dropped on the floor
  // before reaching GdProblem, so projected dedup (and the amplifier's flip
  // support) never saw it.  Projecting the MUX onto {s, d1} merges the two
  // s=0, d0=1 witnesses: 4 full solutions, 3 projected classes.
  const Circuit c = mux_circuit();
  CircuitSamplerConfig config = fast_config();
  config.sampling_set = {0, 1};
  config.max_rounds = 8;
  CircuitSampler sampler(c, config);
  RunOptions options;
  options.min_solutions = 3;
  options.budget_ms = 5000.0;
  options.store_limit = 16;
  const RunResult result = sampler.run(options);
  EXPECT_EQ(result.n_unique, 3u);
  std::set<std::vector<std::uint8_t>> projections;
  for (const auto& s : result.solutions) {
    EXPECT_TRUE(c.outputs_satisfied(c.eval({s[0], s[1], s[2]})));
    EXPECT_TRUE(projections.insert({s[0], s[1]}).second)
        << "duplicate projection delivered";
  }
  EXPECT_EQ(projections.size(), 3u);
}

TEST(CircuitSampler, AgreesWithCnfPipeline) {
  // The direct path and the Tseitin->transform->sample path must sample the
  // same input space.
  const Circuit c = mux_circuit();
  CircuitSampler direct(c, fast_config());
  RunOptions options;
  options.min_solutions = 4;
  options.budget_ms = 5000.0;
  options.store_limit = 16;
  const RunResult direct_result = direct.run(options);

  const auto enc = circuit::tseitin_encode(c);
  GradientConfig gd;
  gd.batch = 256;
  gd.policy = tensor::Policy::kSerial;
  GradientSampler via_cnf(gd);
  RunOptions cnf_options = options;
  cnf_options.verify_against_cnf = true;
  const RunResult cnf_result = via_cnf.run(enc.formula, cnf_options);

  EXPECT_EQ(direct_result.n_unique, 4u);
  EXPECT_EQ(cnf_result.n_unique, 4u);
  EXPECT_EQ(cnf_result.n_invalid, 0u);
}

TEST(CircuitSampler, UnsatisfiableConstraintYieldsNothing) {
  Circuit c;
  const SignalId a = c.add_input();
  const SignalId na = c.add_gate(GateType::kNot, {a});
  const SignalId never = c.add_gate(GateType::kAnd, {a, na});
  c.add_output(never, true);
  CircuitSampler sampler(c, fast_config());
  RunOptions options;
  options.min_solutions = 1;
  options.budget_ms = 150.0;
  const RunResult result = sampler.run(options);
  EXPECT_EQ(result.n_unique, 0u);
  EXPECT_TRUE(result.timed_out);
}

TEST(CircuitSampler, MaxRoundsBoundsWork) {
  const Circuit c = mux_circuit();
  CircuitSamplerConfig config = fast_config();
  config.max_rounds = 1;
  CircuitSampler sampler(c, config);
  RunOptions options;
  options.min_solutions = 0;
  options.budget_ms = -1.0;
  const RunResult result = sampler.run(options);
  EXPECT_EQ(sampler.extras().rounds, 1u);
  EXPECT_GT(result.n_valid, 0u);
}

TEST(CircuitSampler, MultiOutputConstraints) {
  // Two constrained outputs with opposite targets.
  Circuit c;
  const SignalId a = c.add_input();
  const SignalId b = c.add_input();
  const SignalId x = c.add_gate(GateType::kXor, {a, b});
  const SignalId n = c.add_gate(GateType::kAnd, {a, b});
  c.add_output(x, true);   // a != b
  c.add_output(n, false);  // not both
  CircuitSampler sampler(c, fast_config());
  RunOptions options;
  options.min_solutions = 2;  // exactly (1,0) and (0,1)
  options.budget_ms = 5000.0;
  options.store_limit = 8;
  const RunResult result = sampler.run(options);
  EXPECT_EQ(result.n_unique, 2u);
  for (const auto& s : result.solutions) {
    EXPECT_NE(s[0], s[1]);
  }
}

}  // namespace
}  // namespace hts::sampler
