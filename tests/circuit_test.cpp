// Tests for the circuit IR: construction invariants, evaluation (scalar and
// 64x bit-parallel), cone/level analysis, op counting, expression lowering,
// and the Tseitin encoder (signature shapes + equisatisfiability against
// brute force).

#include <gtest/gtest.h>

#include "circuit/circuit.hpp"
#include "circuit/expr_import.hpp"
#include "circuit/tseitin.hpp"
#include "solver/brute.hpp"
#include "util/rng.hpp"

namespace hts::circuit {
namespace {

/// a small mux circuit: out = (s & d1) | (~s & d0), constrained to 1.
struct MuxFixture {
  Circuit circuit;
  SignalId s, d1, d0, out;
  MuxFixture() {
    s = circuit.add_input("s");
    d1 = circuit.add_input("d1");
    d0 = circuit.add_input("d0");
    const SignalId t1 = circuit.add_gate(GateType::kAnd, {s, d1});
    const SignalId ns = circuit.add_gate(GateType::kNot, {s});
    const SignalId t0 = circuit.add_gate(GateType::kAnd, {ns, d0});
    out = circuit.add_gate(GateType::kOr, {t1, t0});
    circuit.add_output(out, true);
  }
};

TEST(Circuit, EvalMatchesMuxSemantics) {
  MuxFixture fx;
  for (int bits = 0; bits < 8; ++bits) {
    const std::vector<std::uint8_t> in{
        static_cast<std::uint8_t>(bits & 1), static_cast<std::uint8_t>((bits >> 1) & 1),
        static_cast<std::uint8_t>((bits >> 2) & 1)};
    const auto values = fx.circuit.eval(in);
    const bool expected = in[0] != 0 ? in[1] != 0 : in[2] != 0;
    EXPECT_EQ(values[fx.out] != 0, expected) << bits;
    EXPECT_EQ(fx.circuit.outputs_satisfied(values), expected);
  }
}

TEST(Circuit, Eval64AgreesWithScalarEval) {
  util::Rng rng(321);
  MuxFixture fx;
  // 64 random stimulus lanes packed into one word per input.
  std::vector<std::uint64_t> words(3);
  std::vector<std::vector<std::uint8_t>> lanes(64, std::vector<std::uint8_t>(3));
  for (int r = 0; r < 64; ++r) {
    for (int i = 0; i < 3; ++i) {
      lanes[r][i] = rng.next_bool() ? 1 : 0;
      if (lanes[r][i] != 0) words[i] |= 1ULL << r;
    }
  }
  const auto packed = fx.circuit.eval64(words);
  const std::uint64_t ok = fx.circuit.outputs_satisfied64(packed);
  for (int r = 0; r < 64; ++r) {
    const auto scalar = fx.circuit.eval(lanes[r]);
    for (SignalId sig = 0; sig < fx.circuit.n_signals(); ++sig) {
      EXPECT_EQ((packed[sig] >> r) & 1, scalar[sig]) << "lane " << r << " sig " << sig;
    }
    EXPECT_EQ((ok >> r) & 1, fx.circuit.outputs_satisfied(scalar) ? 1u : 0u);
  }
}

TEST(Circuit, AllGateTypesEvaluate) {
  Circuit c;
  const SignalId a = c.add_input();
  const SignalId b = c.add_input();
  const SignalId g_and = c.add_gate(GateType::kAnd, {a, b});
  const SignalId g_or = c.add_gate(GateType::kOr, {a, b});
  const SignalId g_xor = c.add_gate(GateType::kXor, {a, b});
  const SignalId g_nand = c.add_gate(GateType::kNand, {a, b});
  const SignalId g_nor = c.add_gate(GateType::kNor, {a, b});
  const SignalId g_xnor = c.add_gate(GateType::kXnor, {a, b});
  const SignalId g_not = c.add_gate(GateType::kNot, {a});
  const SignalId g_buf = c.add_gate(GateType::kBuf, {b});
  const SignalId k0 = c.add_const(false);
  const SignalId k1 = c.add_const(true);
  for (int bits = 0; bits < 4; ++bits) {
    const bool av = (bits & 1) != 0;
    const bool bv = (bits & 2) != 0;
    const auto v = c.eval({static_cast<std::uint8_t>(av), static_cast<std::uint8_t>(bv)});
    EXPECT_EQ(v[g_and] != 0, av && bv);
    EXPECT_EQ(v[g_or] != 0, av || bv);
    EXPECT_EQ(v[g_xor] != 0, av != bv);
    EXPECT_EQ(v[g_nand] != 0, !(av && bv));
    EXPECT_EQ(v[g_nor] != 0, !(av || bv));
    EXPECT_EQ(v[g_xnor] != 0, av == bv);
    EXPECT_EQ(v[g_not] != 0, !av);
    EXPECT_EQ(v[g_buf] != 0, bv);
    EXPECT_EQ(v[k0], 0);
    EXPECT_EQ(v[k1], 1);
  }
}

TEST(Circuit, WideGatesEvaluate) {
  Circuit c;
  std::vector<SignalId> ins;
  for (int i = 0; i < 5; ++i) ins.push_back(c.add_input());
  const SignalId wide_and = c.add_gate(GateType::kAnd, ins);
  const SignalId wide_or = c.add_gate(GateType::kOr, ins);
  const SignalId wide_xor = c.add_gate(GateType::kXor, ins);
  util::Rng rng(9);
  for (int trial = 0; trial < 32; ++trial) {
    std::vector<std::uint8_t> in(5);
    int ones = 0;
    for (auto& bit : in) {
      bit = rng.next_bool() ? 1 : 0;
      ones += bit;
    }
    const auto v = c.eval(in);
    EXPECT_EQ(v[wide_and] != 0, ones == 5);
    EXPECT_EQ(v[wide_or] != 0, ones > 0);
    EXPECT_EQ(v[wide_xor] != 0, (ones % 2) == 1);
  }
}

TEST(Circuit, ConstrainedConeSeparatesPaths) {
  // Two disjoint cones; only one is constrained (the paper's Fig. 1 split).
  Circuit c;
  const SignalId a = c.add_input();
  const SignalId b = c.add_input();
  const SignalId ca = c.add_gate(GateType::kNot, {a});  // unconstrained path
  const SignalId cb = c.add_gate(GateType::kNot, {b});
  c.add_output(cb, true);
  const auto cone = c.constrained_cone();
  EXPECT_FALSE(cone[a]);
  EXPECT_FALSE(cone[ca]);
  EXPECT_TRUE(cone[b]);
  EXPECT_TRUE(cone[cb]);
}

TEST(Circuit, LevelsAndDepth) {
  MuxFixture fx;
  const auto levels = fx.circuit.levels();
  EXPECT_EQ(levels[fx.s], 0u);
  EXPECT_EQ(levels[fx.out], fx.circuit.depth());
  EXPECT_EQ(fx.circuit.depth(), 3u);  // NOT -> AND -> OR on the d0 branch
}

TEST(Circuit, OpCount2Input) {
  MuxFixture fx;
  // AND + AND + OR = 3, NOT = 1.
  EXPECT_EQ(fx.circuit.op_count_2input(true), 4u);
  EXPECT_EQ(fx.circuit.op_count_2input(false), 3u);

  Circuit wide;
  std::vector<SignalId> ins;
  for (int i = 0; i < 6; ++i) ins.push_back(wide.add_input());
  wide.add_gate(GateType::kNand, ins);
  EXPECT_EQ(wide.op_count_2input(true), 6u);  // 5 ANDs + 1 NOT
  EXPECT_EQ(wide.op_count_2input(false), 5u);
}

TEST(Circuit, FaninOrderingEnforced) {
  Circuit c;
  const SignalId a = c.add_input();
  EXPECT_EQ(c.n_inputs(), 1u);
  // A gate may reference only existing signals; this is the acyclicity
  // guarantee. (Death test: HTS_CHECK aborts.)
  EXPECT_DEATH((void)c.add_gate(GateType::kNot, {static_cast<SignalId>(5)}), "fanin");
  (void)a;
}

// --- expression lowering -----------------------------------------------------

TEST(ExprImport, LowersDagWithSharing) {
  expr::Manager exprs;
  const expr::ExprId x = exprs.var(0);
  const expr::ExprId y = exprs.var(1);
  const expr::ExprId shared = exprs.mk_and2(x, y);
  const expr::ExprId root = exprs.mk_or2(shared, exprs.mk_xor2(shared, exprs.var(2)));

  Circuit c;
  std::unordered_map<std::uint32_t, SignalId> var_to_signal{
      {0, c.add_input()}, {1, c.add_input()}, {2, c.add_input()}};
  std::unordered_map<expr::ExprId, SignalId> memo;
  const SignalId out = lower_expr(c, exprs, root, var_to_signal, memo);

  // Shared AND lowered once: inputs(3) + AND + XOR + OR = 6 signals.
  EXPECT_EQ(c.n_signals(), 6u);
  for (int bits = 0; bits < 8; ++bits) {
    std::vector<std::uint8_t> in{static_cast<std::uint8_t>(bits & 1),
                                 static_cast<std::uint8_t>((bits >> 1) & 1),
                                 static_cast<std::uint8_t>((bits >> 2) & 1)};
    EXPECT_EQ(c.eval(in)[out] != 0, exprs.eval(root, in)) << bits;
  }
}

TEST(ExprImport, LowersConstants) {
  expr::Manager exprs;
  Circuit c;
  std::unordered_map<std::uint32_t, SignalId> var_to_signal;
  std::unordered_map<expr::ExprId, SignalId> memo;
  const SignalId zero = lower_expr(c, exprs, exprs.const0(), var_to_signal, memo);
  const SignalId one = lower_expr(c, exprs, exprs.const1(), var_to_signal, memo);
  const auto v = c.eval({});
  EXPECT_EQ(v[zero], 0);
  EXPECT_EQ(v[one], 1);
}

// --- Tseitin -----------------------------------------------------------------

TEST(Tseitin, InverterSignatureMatchesEq1) {
  Circuit c;
  const SignalId x = c.add_input();
  (void)c.add_gate(GateType::kNot, {x});
  const auto enc = tseitin_encode(c);
  // Eq. (1): (f | x) & (~f | ~x) — two binary clauses.
  ASSERT_EQ(enc.formula.n_clauses(), 2u);
  EXPECT_EQ(enc.formula.clause(0).size(), 2u);
  EXPECT_EQ(enc.formula.clause(1).size(), 2u);
}

TEST(Tseitin, OrSignatureMatchesEq2) {
  Circuit c;
  std::vector<SignalId> ins;
  for (int i = 0; i < 3; ++i) ins.push_back(c.add_input());
  (void)c.add_gate(GateType::kOr, ins);
  const auto enc = tseitin_encode(c);
  // (~f | x1 | x2 | x3) + 3 binaries (f | ~xi).
  ASSERT_EQ(enc.formula.n_clauses(), 4u);
}

TEST(Tseitin, SolutionsMatchCircuitExactly) {
  // For every assignment of the CNF variables: satisfies CNF <=> consistent
  // circuit simulation meeting the output constraints.
  MuxFixture fx;
  const auto enc = tseitin_encode(fx.circuit);
  ASSERT_LE(enc.formula.n_vars(), solver::kMaxBruteVars);

  std::size_t cnf_models = 0;
  solver::for_each_model(enc.formula, [&](const cnf::Assignment&) {
    ++cnf_models;
    return true;
  });

  std::size_t circuit_models = 0;
  for (int bits = 0; bits < 8; ++bits) {
    const std::vector<std::uint8_t> in{
        static_cast<std::uint8_t>(bits & 1), static_cast<std::uint8_t>((bits >> 1) & 1),
        static_cast<std::uint8_t>((bits >> 2) & 1)};
    const auto values = fx.circuit.eval(in);
    if (fx.circuit.outputs_satisfied(values)) ++circuit_models;
  }
  // Tseitin is a bijection between circuit input solutions and CNF models.
  EXPECT_EQ(cnf_models, circuit_models);
}

TEST(Tseitin, WitnessFromSimulationSatisfies) {
  util::Rng rng(77);
  // Random circuits: simulate a random input, map signal values onto CNF
  // vars, check the witness satisfies the encoding (with output units).
  for (int trial = 0; trial < 25; ++trial) {
    Circuit c;
    const std::size_t n_in = 2 + rng.next_below(4);
    for (std::size_t i = 0; i < n_in; ++i) c.add_input();
    for (int g = 0; g < 12; ++g) {
      const auto pick = [&] {
        return static_cast<SignalId>(rng.next_below(c.n_signals()));
      };
      const SignalId a = pick();
      SignalId b = pick();
      const int type = static_cast<int>(rng.next_below(6));
      switch (type) {
        case 0:
          c.add_gate(GateType::kNot, {a});
          break;
        case 1:
          c.add_gate(GateType::kBuf, {a});
          break;
        default: {
          if (a == b) b = pick();
          if (a == b) {
            c.add_gate(GateType::kNot, {a});
            break;
          }
          const GateType types[4] = {GateType::kAnd, GateType::kOr, GateType::kXor,
                                     GateType::kNor};
          c.add_gate(types[type - 2], {a, b});
          break;
        }
      }
    }
    std::vector<std::uint8_t> in(n_in);
    for (auto& bit : in) bit = rng.next_bool() ? 1 : 0;
    const auto values = c.eval(in);
    c.add_output(static_cast<SignalId>(c.n_signals() - 1),
                 values[c.n_signals() - 1] != 0);

    const auto enc = tseitin_encode(c);
    cnf::Assignment witness(enc.formula.n_vars(), 0);
    for (SignalId s = 0; s < c.n_signals(); ++s) {
      witness[enc.signal_var[s]] = values[s];
    }
    EXPECT_TRUE(enc.formula.satisfied_by(witness)) << "trial " << trial;
  }
}

TEST(Tseitin, WideXorUsesChainVars) {
  Circuit c;
  std::vector<SignalId> ins;
  for (int i = 0; i < 4; ++i) ins.push_back(c.add_input());
  (void)c.add_gate(GateType::kXor, ins);
  const auto enc = tseitin_encode(c);
  // 5 signal vars + 2 chain vars.
  EXPECT_EQ(enc.formula.n_vars(), 7u);
  // 3 xor2 blocks x 4 clauses.
  EXPECT_EQ(enc.formula.n_clauses(), 12u);
}

TEST(Tseitin, XnorAndXorAgreeWithEval) {
  util::Rng rng(31);
  for (const GateType type : {GateType::kXor, GateType::kXnor}) {
    Circuit c;
    std::vector<SignalId> ins;
    for (int i = 0; i < 3; ++i) ins.push_back(c.add_input());
    const SignalId g = c.add_gate(type, ins);
    const auto enc = tseitin_encode(c);
    // Check: for each input assignment, exactly one completion of the
    // aux/chain vars satisfies the CNF, and it assigns g correctly.
    std::size_t models = 0;
    solver::for_each_model(enc.formula, [&](const cnf::Assignment& m) {
      // Simulate the circuit from the model's input values.
      std::vector<std::uint8_t> in(3);
      for (int i = 0; i < 3; ++i) in[i] = m[enc.signal_var[ins[i]]];
      const auto values = c.eval(in);
      EXPECT_EQ(m[enc.signal_var[g]], values[g]);
      ++models;
      return true;
    });
    EXPECT_EQ(models, 8u);  // one model per input assignment
  }
}

TEST(Tseitin, OutputUnitsRestrictModels) {
  Circuit c;
  const SignalId a = c.add_input();
  const SignalId b = c.add_input();
  const SignalId g = c.add_gate(GateType::kAnd, {a, b});
  c.add_output(g, true);
  const auto with_units = tseitin_encode(c, true);
  const auto without_units = tseitin_encode(c, false);
  EXPECT_EQ(solver::count_models(with_units.formula), 1u);   // a=b=1
  EXPECT_EQ(solver::count_models(without_units.formula), 4u);
}

}  // namespace
}  // namespace hts::circuit
